package lmoffload

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (run them all with `go test -bench=. -benchmem`),
// plus micro-benchmarks for the hot substrates. Each figure/table benchmark
// regenerates its experiment and reports the headline quantity as a custom
// metric so `go test -bench` output doubles as the reproduction record.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// BenchmarkFigure3 regenerates the offloading x quantization motivation
// study (Figure 3).
func BenchmarkFigure3(b *testing.B) {
	var last *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if bar := last.Bar("gpu-attn, kv4"); bar != nil {
		b.ReportMetric(bar.ModelTput, "kv4-tok/s")
	}
}

// BenchmarkFigure4 regenerates the (de)quantization time breakdown.
func BenchmarkFigure4(b *testing.B) {
	var last *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if row := last.Row("gpu-attn, w4+kv4"); row != nil {
		b.ReportMetric(row.Dequant*1e3, "dequant-ms/token")
	}
}

// BenchmarkTable1 regenerates the per-token I/O traffic accounting.
func BenchmarkTable1(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.WithoutOffload.KVCacheUp/1e9, "kv-up-GB/token")
}

// BenchmarkFigure5 regenerates the parallelism characterization sweeps.
func BenchmarkFigure5(b *testing.B) {
	var last *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.BestInterOp()), "best-inter-op")
}

// BenchmarkTable3 regenerates the full framework comparison grid.
func BenchmarkTable3(b *testing.B) {
	var last *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.VsFlexGen.Mean, "x-vs-flexgen")
	b.ReportMetric(last.VsZeRO.Mean, "x-vs-zero")
}

// BenchmarkFigure7 regenerates the quantization-aware modeling ablation.
func BenchmarkFigure7(b *testing.B) {
	var last *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var maxGain float64
	for _, p := range last.Points {
		if p.GainPct > maxGain {
			maxGain = p.GainPct
		}
	}
	b.ReportMetric(maxGain, "max-gain-%")
}

// BenchmarkFigure8 regenerates the parallelism-control task study.
func BenchmarkFigure8(b *testing.B) {
	var last *experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ComputeReductionPct, "compute-reduction-%")
	b.ReportMetric(last.EndToEndReductionPct, "e2e-reduction-%")
}

// BenchmarkTable5 regenerates the LLC miss study.
func BenchmarkTable5(b *testing.B) {
	var last *experiments.Table5Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.LoadReductionPct(), "load-miss-reduction-%")
}

// BenchmarkFigure9 regenerates the multi-GPU weak-scaling study.
func BenchmarkFigure9(b *testing.B) {
	var last *experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.MaxGainPct, "max-gain-%")
	b.ReportMetric(last.GapGrowth, "gap-growth-x")
}

// BenchmarkAblations runs the design-choice sweeps from DESIGN.md §4.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks -------------------------------------------

// BenchmarkPolicySearch measures one full quantization-aware policy search.
func BenchmarkPolicySearch(b *testing.B) {
	plat := SingleGPUA100()
	work, _ := NewWorkload(64, 32, 64, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(plat, OPT30B, work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateDecode measures the discrete-event simulator on the
// motivation workload.
func BenchmarkSimulateDecode(b *testing.B) {
	plat := SingleGPUA100()
	work, _ := NewWorkload(64, 128, 64, 10)
	s := Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(plat, OPT30B, work, s, FlexGenProfile(), 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantizeRoundTrip measures the real group-wise quantization
// kernels on a 1M-element tensor.
func BenchmarkQuantizeRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	t := tensor.RandN(rng, 1, 1024, 1024)
	cfg := quant.DefaultConfig()
	b.SetBytes(t.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := quant.Quantize(t, cfg)
		if err != nil {
			b.Fatal(err)
		}
		quant.Dequantize(q)
	}
}

// BenchmarkMatMulParallel measures the blocked matmul across pool widths.
func BenchmarkMatMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.RandN(rng, 1, 256, 256)
	c := tensor.RandN(rng, 1, 256, 256)
	pool := threadpool.MustNew(4)
	for _, width := range []int{1, 2, 4} {
		width := width
		name := map[int]string{1: "serial", 2: "width2", 4: "width4"}[width]
		b.Run(name, func(b *testing.B) {
			b.SetBytes(a.Bytes() * 2)
			for i := 0; i < b.N; i++ {
				tensor.MatMul(pool, width, a, c)
			}
		})
	}
}

// BenchmarkTinyEngineDecode measures the functional engine's real decode
// throughput on the tiny model with KV quantization.
func BenchmarkTinyEngineDecode(b *testing.B) {
	cfg := model.Tiny()
	prompts := [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}}
	pol := EnginePolicy{QuantKV: true, KVCfg: quant.Config{Bits: 4, GroupSize: 32}, IntraOp: 1, Prefetch: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTinyInference(cfg, pol, prompts, 4, 1<<30, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalCheck runs the real-engine strategy matrix.
func BenchmarkFunctionalCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FunctionalCheck(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleSweep runs the OPT-family scale study.
func BenchmarkScaleSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ScaleSweep(32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelValidation runs the model-vs-simulator calibration report.
func BenchmarkModelValidation(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ValidateModel(12, 7)
		if err != nil {
			b.Fatal(err)
		}
		last = r.MAPEModel
	}
	b.ReportMetric(last*100, "beta-margin-%")
}

// BenchmarkServeThroughput compares the two serving disciplines on the same
// ragged request mix (baselined in BENCH_serve.json): "static" admits a wave
// of requests into the Session and drains it to the slowest member before
// the next wave; "continuous" pushes the same requests through the
// internal/serve scheduler, which refills slots at decode-step boundaries.
// Custom metrics report tokens/s and, for continuous, the scheduler's
// TTFT p50/p99.
func BenchmarkServeThroughput(b *testing.B) {
	const (
		slots = 4
		nReqs = 12
	)
	cfg := model.Tiny()
	rng := rand.New(rand.NewSource(7))
	prompts := make([][]int, nReqs)
	budgets := make([]int, nReqs)
	for i := range prompts {
		prompts[i] = make([]int, 2+rng.Intn(5))
		for j := range prompts[i] {
			prompts[i][j] = rng.Intn(cfg.Vocab)
		}
		budgets[i] = 2 + rng.Intn(14)
	}
	var total int64
	for _, g := range budgets {
		total += int64(g)
	}
	newEngine := func(b *testing.B) *runtime.Engine {
		m, err := model.NewModel(rand.New(rand.NewSource(7)), cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 2, Prefetch: true, GPUBatch: slots}, 1<<30, threadpool.MustNew(2))
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}

	b.Run("static", func(b *testing.B) {
		ctx := context.Background()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			sess, err := newEngine(b).NewSession(slots)
			if err != nil {
				b.Fatal(err)
			}
			for base := 0; base < nReqs; base += slots {
				wave := budgets[base:min(base+slots, nReqs)]
				left := make([]int, len(wave))
				for s := range wave {
					if _, err := sess.Admit(ctx, s, prompts[base+s]); err != nil {
						b.Fatal(err)
					}
					left[s] = wave[s] - 1
					if left[s] == 0 {
						sess.Retire(s)
					}
				}
				for sess.NumActive() > 0 {
					toks, err := sess.Step(ctx)
					if err != nil {
						b.Fatal(err)
					}
					for _, st := range toks {
						if left[st.Slot]--; left[st.Slot] == 0 {
							sess.Retire(st.Slot)
						}
					}
				}
			}
		}
		b.ReportMetric(float64(total)*float64(b.N)/time.Since(start).Seconds(), "tok/s")
	})

	b.Run("continuous", func(b *testing.B) {
		scfg := serve.DefaultConfig(cfg.Vocab)
		scfg.Slots = slots
		scfg.QueueDepth = nReqs
		var ttft50, ttft99 time.Duration
		start := time.Now()
		for i := 0; i < b.N; i++ {
			sched, err := serve.New(newEngine(b), scfg)
			if err != nil {
				b.Fatal(err)
			}
			streams := make([]*serve.Stream, nReqs)
			for r := range prompts {
				if streams[r], err = sched.Submit(context.Background(), serve.Request{Prompt: prompts[r], MaxNewTokens: budgets[r]}); err != nil {
					b.Fatal(err)
				}
			}
			for _, st := range streams {
				if _, err := st.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			sum := sched.Metrics().Serve
			ttft50, ttft99 = sum.TTFTP50, sum.TTFTP99
			sched.Close()
		}
		b.ReportMetric(float64(total)*float64(b.N)/time.Since(start).Seconds(), "tok/s")
		b.ReportMetric(float64(ttft50)/float64(time.Millisecond), "ttft-p50-ms")
		b.ReportMetric(float64(ttft99)/float64(time.Millisecond), "ttft-p99-ms")
	})
}

// BenchmarkAutoTune measures the coupled policy/parallelism loop.
func BenchmarkAutoTune(b *testing.B) {
	work, _ := NewWorkload(64, 32, 64, 10)
	plat := SingleGPUA100()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AutoTune(plat, OPT30B, work, 4); err != nil {
			b.Fatal(err)
		}
	}
}
