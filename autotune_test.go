package lmoffload

import "testing"

func TestAutoTuneConverges(t *testing.T) {
	work, err := NewWorkload(64, 32, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AutoTune(SingleGPUA100(), OPT30B, work, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 || res.Iterations > 5 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.Policy.Throughput <= 0 {
		t.Error("non-positive tuned throughput")
	}
	if res.Parallelism.InterOpCompute < 1 || res.Parallelism.IntraOp < 1 {
		t.Errorf("parallelism setting incomplete: %+v", res.Parallelism)
	}
	if res.Profile.CPUCompute <= 0 || res.Profile.CPUCompute > 1 {
		t.Errorf("derived CPU efficiency %g out of range", res.Profile.CPUCompute)
	}
	// The coupled result should be at least as good as a single blind pass.
	plain, err := Plan(SingleGPUA100(), OPT30B, work)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy.Throughput < plain.Throughput*0.8 {
		t.Errorf("autotuned throughput %.1f far below plain plan %.1f", res.Policy.Throughput, plain.Throughput)
	}
}

func TestAutoTuneValidation(t *testing.T) {
	work, _ := NewWorkload(64, 8, 64, 2)
	if _, err := AutoTune(SingleGPUA100(), OPT30B, work, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestAutoTuneSmallHeadCountModel(t *testing.T) {
	// A custom model with fewer heads than the default head-group count
	// must clamp gracefully.
	mod := ModelConfig{Name: "narrow", Layers: 8, Hidden: 512, FFN: 1024, Heads: 4, Vocab: 1000, BytesPerElem: 2}
	work, _ := NewWorkload(32, 8, 8, 2)
	res, err := AutoTune(SingleGPUA100(), mod, work, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parallelism.InterOpCompute > 4 {
		t.Errorf("inter-op %d exceeds the model's %d heads", res.Parallelism.InterOpCompute, mod.Heads)
	}
}
