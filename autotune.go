package lmoffload

import (
	"fmt"

	"repro/internal/parallelism"
	"repro/internal/perfmodel"
	"repro/internal/policy"
)

// AutoTuneResult couples the two halves of LM-Offload: the offloading policy
// (§3) and the thread-level parallelism setting (§4) that were tuned
// against each other.
type AutoTuneResult struct {
	Policy      PolicyResult
	Parallelism ParallelismSetting
	// Profile is the execution profile the final policy was evaluated
	// under, with the CPU efficiency derived from the tuned threading.
	Profile ExecProfile
	// Iterations is how many policy/parallelism rounds ran before the
	// strategy stabilized.
	Iterations int
}

// AutoTune closes the loop between the policy search and parallelism
// control: the chosen policy determines the load/store volumes Algorithm 3
// assigns threads against, and the tuned threading determines the CPU
// efficiency the performance model evaluates policies with. The loop runs
// until the strategy stops changing (at most maxIters rounds).
//
// This is the composition the paper's system performs implicitly — §4's
// setting feeds the §3 model's cpu_flops effectiveness — surfaced as one
// call.
func AutoTune(plat *Platform, mod ModelConfig, work Workload, maxIters int) (*AutoTuneResult, error) {
	if maxIters < 1 {
		return nil, fmt.Errorf("lmoffload: maxIters must be >= 1, got %d", maxIters)
	}
	machine, err := parallelism.NewMachineModel(plat.CPU)
	if err != nil {
		return nil, err
	}
	ctrl, err := parallelism.NewController(machine, plat.Link.BandwidthPerDir*0.5)
	if err != nil {
		return nil, err
	}
	groups := parallelism.DefaultHeadGroups
	if groups > mod.Heads {
		groups = mod.Heads
	}
	og, err := parallelism.BuildAttentionGraph(mod, work, work.PromptLen+work.GenLen/2, groups)
	if err != nil {
		return nil, err
	}

	exec := perfmodel.LMOffloadProfile()
	out := &AutoTuneResult{}
	var prev perfmodel.Strategy
	for iter := 0; iter < maxIters; iter++ {
		out.Iterations = iter + 1

		res, err := policy.Plan(plat, mod, work, exec, policy.DefaultOptions())
		if err != nil {
			return nil, err
		}
		out.Policy = res

		// Feed the chosen policy's actual transfer volumes to Algorithm 3.
		e := res.Estimator
		transfers := []parallelism.TransferTask{
			{Name: "load_weight", Bytes: e.WeightUpTime() * plat.Link.BandwidthPerDir * exec.LinkEff},
			{Name: "load_cache", Bytes: e.KVUpTime() * plat.Link.BandwidthPerDir * exec.LinkEff},
			{Name: "store_cache", Bytes: e.KVDownTime() * plat.Link.BandwidthPerDir * exec.LinkEff},
			{Name: "load_activation", Bytes: e.ActUpTime() * plat.Link.BandwidthPerDir * exec.LinkEff},
			{Name: "store_activation", Bytes: e.ActDownTime() * plat.Link.BandwidthPerDir * exec.LinkEff},
		}
		setting, err := ctrl.Optimize(og, transfers)
		if err != nil {
			return nil, err
		}
		out.Parallelism = setting

		// Close the loop: the tuned threading's efficiency becomes the
		// model's CPU-compute effectiveness for the next round.
		eff := ctrl.CPUEfficiency(og, setting)
		if eff > 0 {
			exec.CPUCompute = eff
		}
		out.Profile = exec

		if iter > 0 && res.Strategy == prev {
			break
		}
		prev = res.Strategy
	}
	return out, nil
}
