package lmoffload

import (
	"fmt"

	"repro/internal/parallelism"
	"repro/internal/perfmodel"
	"repro/internal/policy"
)

// AutoTuneResult couples the two halves of LM-Offload: the offloading policy
// (§3) and the thread-level parallelism setting (§4) that were tuned
// against each other.
type AutoTuneResult struct {
	Policy      PolicyResult
	Parallelism ParallelismSetting
	// Profile is the execution profile the final policy was evaluated
	// under, with the CPU efficiency derived from the tuned threading.
	Profile ExecProfile
	// Iterations is how many policy/parallelism rounds ran before the
	// strategy stabilized.
	Iterations int
}

// AutoTune closes the loop between the policy search and parallelism
// control: the chosen policy determines the load/store volumes Algorithm 3
// assigns threads against, and the tuned threading determines the CPU
// efficiency the performance model evaluates policies with. The loop runs
// until the strategy stops changing (at most maxIters rounds).
//
// This is the composition the paper's system performs implicitly — §4's
// setting feeds the §3 model's cpu_flops effectiveness — surfaced as one
// call.
func AutoTune(plat *Platform, mod ModelConfig, work Workload, maxIters int) (*AutoTuneResult, error) {
	return AutoTuneWithProfile(plat, mod, work, perfmodel.LMOffloadProfile(), maxIters)
}

// tuneSetup builds the controller and operator graph shared by the autotune
// entry points.
func tuneSetup(plat *Platform, mod ModelConfig, work Workload) (*parallelism.Controller, *parallelism.OpGraph, error) {
	machine, err := parallelism.NewMachineModel(plat.CPU)
	if err != nil {
		return nil, nil, err
	}
	ctrl, err := parallelism.NewController(machine, plat.Link.BandwidthPerDir*0.5)
	if err != nil {
		return nil, nil, err
	}
	groups := parallelism.DefaultHeadGroups
	if groups > mod.Heads {
		groups = mod.Heads
	}
	og, err := parallelism.BuildAttentionGraph(mod, work, work.PromptLen+work.GenLen/2, groups)
	if err != nil {
		return nil, nil, err
	}
	return ctrl, og, nil
}

// policyTransfers converts a planned policy's modeled transfer times back
// into the per-step volumes Algorithm 3 assigns threads against.
func policyTransfers(plat *Platform, exec ExecProfile, res PolicyResult) []parallelism.TransferTask {
	e := res.Estimator
	return []parallelism.TransferTask{
		{Name: "load_weight", Bytes: e.WeightUpTime() * plat.Link.BandwidthPerDir * exec.LinkEff},
		{Name: "load_cache", Bytes: e.KVUpTime() * plat.Link.BandwidthPerDir * exec.LinkEff},
		{Name: "store_cache", Bytes: e.KVDownTime() * plat.Link.BandwidthPerDir * exec.LinkEff},
		{Name: "load_activation", Bytes: e.ActUpTime() * plat.Link.BandwidthPerDir * exec.LinkEff},
		{Name: "store_activation", Bytes: e.ActDownTime() * plat.Link.BandwidthPerDir * exec.LinkEff},
	}
}

// AutoTuneWithProfile is AutoTune starting from an explicit execution profile
// instead of the LM-Offload default. The online adapt loop uses it to re-run
// the whole policy/parallelism search under coefficients refit to a drifted
// machine (perfmodel.RefitProfile).
func AutoTuneWithProfile(plat *Platform, mod ModelConfig, work Workload, exec ExecProfile, maxIters int) (*AutoTuneResult, error) {
	if maxIters < 1 {
		return nil, fmt.Errorf("lmoffload: maxIters must be >= 1, got %d", maxIters)
	}
	ctrl, og, err := tuneSetup(plat, mod, work)
	if err != nil {
		return nil, err
	}

	out := &AutoTuneResult{}
	var prev perfmodel.Strategy
	for iter := 0; iter < maxIters; iter++ {
		out.Iterations = iter + 1

		res, err := policy.Plan(plat, mod, work, exec, policy.DefaultOptions())
		if err != nil {
			return nil, err
		}
		out.Policy = res

		// Feed the chosen policy's actual transfer volumes to Algorithm 3.
		setting, err := ctrl.Optimize(og, policyTransfers(plat, exec, res))
		if err != nil {
			return nil, err
		}
		out.Parallelism = setting

		// Close the loop: the tuned threading's efficiency becomes the
		// model's CPU-compute effectiveness for the next round.
		eff := ctrl.CPUEfficiency(og, setting)
		if eff > 0 {
			exec.CPUCompute = eff
		}
		out.Profile = exec

		if iter > 0 && res.Strategy == prev {
			break
		}
		prev = res.Strategy
	}
	return out, nil
}

// EvaluateIntraOp prices a forced intra-op width under a given profile: it
// plans the policy for that profile, derives the transfer volumes, and
// profiles the width without letting Algorithm 3 choose a different one. The
// adapt loop divides the current width's step time by AutoTuneWithProfile's
// tuned step time to get an apples-to-apples predicted gain.
func EvaluateIntraOp(plat *Platform, mod ModelConfig, work Workload, exec ExecProfile, intra int) (ParallelismSetting, error) {
	ctrl, og, err := tuneSetup(plat, mod, work)
	if err != nil {
		return ParallelismSetting{}, err
	}
	res, err := policy.Plan(plat, mod, work, exec, policy.DefaultOptions())
	if err != nil {
		return ParallelismSetting{}, err
	}
	return ctrl.Evaluate(og, policyTransfers(plat, exec, res), intra)
}
