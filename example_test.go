package lmoffload_test

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	lmoffload "repro"
	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/serve"
)

// ExamplePlan shows the quantization-aware policy search on the paper's
// motivation setup.
func ExamplePlan() {
	work, err := lmoffload.NewWorkload(64, 128, 64, 10)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lmoffload.Plan(lmoffload.SingleGPUA100(), lmoffload.OPT30B, work)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Strategy.AttnOnCPU, res.Strategy.QuantKV)
	// Output: false true
}

// ExampleEstimateThroughput evaluates an explicit strategy with the
// analytical model.
func ExampleEstimateThroughput() {
	work, _ := lmoffload.NewWorkload(64, 128, 64, 10)
	s := lmoffload.Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}
	plain := s
	plain.QuantKV = false
	qTput, err := lmoffload.EstimateThroughput(lmoffload.SingleGPUA100(), lmoffload.OPT30B, work, s, lmoffload.FlexGenProfile())
	if err != nil {
		log.Fatal(err)
	}
	pTput, err := lmoffload.EstimateThroughput(lmoffload.SingleGPUA100(), lmoffload.OPT30B, work, plain, lmoffload.FlexGenProfile())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(qTput > pTput)
	// Output: true
}

// ExampleTuneParallelism runs Algorithm 3 for the §4.1 study setup.
func ExampleTuneParallelism() {
	work, _ := lmoffload.NewWorkload(64, 8, 64, 10)
	setting, err := lmoffload.TuneParallelism(lmoffload.SingleGPUA100(), lmoffload.OPT30B, work)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(setting.InterOpCompute)
	// Output: 12
}

// Example_continuousServing pushes two requests through the continuous-batching
// scheduler and checks the streamed tokens against the offline engine —
// batching composition never changes a sequence's tokens.
func Example_continuousServing() {
	newEngine := func() *runtime.Engine {
		m, err := model.NewModel(rand.New(rand.NewSource(42)), model.Tiny())
		if err != nil {
			log.Fatal(err)
		}
		eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<30, nil)
		if err != nil {
			log.Fatal(err)
		}
		return eng
	}

	sched, err := serve.New(newEngine(), serve.DefaultConfig(model.Tiny().Vocab))
	if err != nil {
		log.Fatal(err)
	}
	reqs := []serve.Request{
		{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 6},
		{Prompt: []int{9, 8, 7}, MaxNewTokens: 4},
	}
	// Submit both up front so they decode in the same batch.
	var streams []*serve.Stream
	for _, req := range reqs {
		st, err := sched.Submit(context.Background(), req)
		if err != nil {
			log.Fatal(err)
		}
		streams = append(streams, st)
	}
	var served [][]int
	for _, st := range streams {
		toks, err := st.Wait()
		if err != nil {
			log.Fatal(err)
		}
		served = append(served, toks)
	}
	sched.Close()

	match := true
	for i, req := range reqs {
		want, err := newEngine().Generate(context.Background(), [][]int{req.Prompt}, req.MaxNewTokens)
		if err != nil {
			log.Fatal(err)
		}
		for j := range want[0] {
			if served[i][j] != want[0][j] {
				match = false
			}
		}
	}
	fmt.Println(len(served[0]), len(served[1]), match)
	// Output: 6 4 true
}

// ExampleRunTinyInference executes a real tiny model through the offloading
// engine.
func ExampleRunTinyInference() {
	out, err := lmoffload.RunTinyInference(
		lmoffload.TinyModel(),
		lmoffload.EnginePolicy{IntraOp: 1},
		[][]int{{1, 2, 3, 4}}, 4, 1<<30, 42, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(out.Tokens), len(out.Tokens[0]))
	// Output: 1 4
}
