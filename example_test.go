package lmoffload_test

import (
	"fmt"
	"log"

	lmoffload "repro"
)

// ExamplePlan shows the quantization-aware policy search on the paper's
// motivation setup.
func ExamplePlan() {
	work, err := lmoffload.NewWorkload(64, 128, 64, 10)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lmoffload.Plan(lmoffload.SingleGPUA100(), lmoffload.OPT30B, work)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Strategy.AttnOnCPU, res.Strategy.QuantKV)
	// Output: false true
}

// ExampleEstimateThroughput evaluates an explicit strategy with the
// analytical model.
func ExampleEstimateThroughput() {
	work, _ := lmoffload.NewWorkload(64, 128, 64, 10)
	s := lmoffload.Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}
	plain := s
	plain.QuantKV = false
	qTput, err := lmoffload.EstimateThroughput(lmoffload.SingleGPUA100(), lmoffload.OPT30B, work, s, lmoffload.FlexGenProfile())
	if err != nil {
		log.Fatal(err)
	}
	pTput, err := lmoffload.EstimateThroughput(lmoffload.SingleGPUA100(), lmoffload.OPT30B, work, plain, lmoffload.FlexGenProfile())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(qTput > pTput)
	// Output: true
}

// ExampleTuneParallelism runs Algorithm 3 for the §4.1 study setup.
func ExampleTuneParallelism() {
	work, _ := lmoffload.NewWorkload(64, 8, 64, 10)
	setting, err := lmoffload.TuneParallelism(lmoffload.SingleGPUA100(), lmoffload.OPT30B, work)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(setting.InterOpCompute)
	// Output: 12
}

// ExampleRunTinyInference executes a real tiny model through the offloading
// engine.
func ExampleRunTinyInference() {
	out, err := lmoffload.RunTinyInference(
		lmoffload.TinyModel(),
		lmoffload.EnginePolicy{IntraOp: 1},
		[][]int{{1, 2, 3, 4}}, 4, 1<<30, 42, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(out.Tokens), len(out.Tokens[0]))
	// Output: 1 4
}
