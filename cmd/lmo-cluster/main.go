// Command lmo-cluster fronts N in-process engine replicas with the
// health-aware router: requests POSTed to /generate are scored against every
// replica (predicted drain + prefill of the uncached suffix + queue
// pressure), dispatched to the cheapest routable one, hedged to a second
// replica when the primary is degraded or blows through its predicted TTFT,
// and failed over — token-exactly — when a replica dies mid-request.
// /healthz reports fleet routability (503 when no replica is routable);
// /stats reports the router counters plus per-replica serving metrics.
//
// Every replica is built from the same seed, so the fleet models N identical
// deployments of one model; fault injection (per-replica windows toggled by
// the chaos harness) exercises the failover machinery.
//
// Usage:
//
//	lmo-cluster [-addr :8080] [-replicas 3] [-model tiny|small] [-slots 4]
//	            [-queue 64] [-max-new 64] [-default-new 16] [-eos -1]
//	            [-workers 4] [-seed 42] [-arena-mb 2048] [-admission]
//	            [-prefix-cache-mb 0] [-faults spec] [-hedge]
//	            [-hedge-factor 3] [-max-attempts 0] [-trace file]
//
// Example session:
//
//	lmo-cluster -replicas 3 -hedge &
//	curl -s localhost:8080/generate -d '{"prompt":[1,2,3],"max_new_tokens":8}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/threadpool"
	"repro/internal/xtrace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	replicas := flag.Int("replicas", 3, "number of in-process engine replicas")
	modelName := flag.String("model", "tiny", "executable model: tiny or small")
	slots := flag.Int("slots", 4, "concurrent decode slots per replica")
	queueDepth := flag.Int("queue", 64, "admission queue depth per replica")
	maxNew := flag.Int("max-new", 64, "per-request generation cap")
	defaultNew := flag.Int("default-new", 16, "generation budget when a request omits max_new_tokens")
	eos := flag.Int("eos", -1, "EOS token ID terminating a stream early (-1 = off)")
	workers := flag.Int("workers", 4, "compute pool width per replica")
	seed := flag.Int64("seed", 42, "weights seed (shared: every replica is the identical deployment)")
	arenaMB := flag.Int64("arena-mb", 2048, "GPU arena capacity per replica in MiB")
	admission := flag.Bool("admission", true, "performance-model-guided admission control per replica")
	prefixMB := flag.Int64("prefix-cache-mb", 0, "shared-prefix KV cache budget per replica in MiB (0 = off); routing favors the replica holding the longest cached prefix")
	faultSpec := flag.String("faults", "", `per-replica fault injection rules, e.g. "weight-transfer:p=0.1"`)
	hedge := flag.Bool("hedge", false, "hedge slow or degraded primaries with a second attempt (first token wins)")
	hedgeFactor := flag.Float64("hedge-factor", 3, "hedge when observed TTFT exceeds this multiple of the prediction")
	maxAttempts := flag.Int("max-attempts", 0, "dispatch attempts per request across replicas (0 = one per replica)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON (route/hedge/failover spans) to this file on shutdown")
	flag.Parse()

	var cfg model.Config
	switch *modelName {
	case "tiny":
		cfg = model.Tiny()
	case "small":
		cfg = model.Small()
	default:
		fmt.Fprintf(os.Stderr, "lmo-cluster: unknown model %q\n", *modelName)
		os.Exit(2)
	}
	if *replicas <= 0 {
		fmt.Fprintln(os.Stderr, "lmo-cluster: need at least one replica")
		os.Exit(2)
	}

	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.Slots = *slots
	scfg.QueueDepth = *queueDepth
	scfg.MaxNewTokens = *maxNew
	scfg.DefaultNewTokens = *defaultNew
	scfg.EOS = *eos
	scfg.AdmissionControl = *admission
	scfg.PrefixCacheBytes = *prefixMB << 20

	var rules map[faults.Site]faults.Rule
	if *faultSpec != "" {
		var err error
		rules, err = faults.ParseRules(*faultSpec)
		if err != nil {
			fatal(err)
		}
	}

	var rec *xtrace.Recorder
	if *traceFile != "" {
		rec = xtrace.NewRecorder(0)
	}

	reps := make([]*cluster.Replica, *replicas)
	scheds := make([]*serve.Scheduler, *replicas)
	for i := range reps {
		// Same weights seed per replica: N identical deployments. The fault
		// stream is per-replica (seed+i) so chaos windows differ.
		m, err := model.NewModel(rand.New(rand.NewSource(*seed)), cfg)
		if err != nil {
			fatal(err)
		}
		pol := runtime.Policy{IntraOp: *workers, Prefetch: true}
		eng, err := runtime.NewEngine(m, pol, *arenaMB<<20, threadpool.MustNew(*workers))
		if err != nil {
			fatal(err)
		}
		var inj *faults.Injector
		if rules != nil {
			if inj, err = faults.New(*seed+int64(i), rules); err != nil {
				fatal(err)
			}
			eng.SetFaultInjector(inj)
		}
		if rec != nil {
			eng.SetTracer(rec)
		}
		s, err := serve.New(eng, scfg)
		if err != nil {
			fatal(err)
		}
		scheds[i] = s
		reps[i] = cluster.NewReplica(fmt.Sprintf("r%d", i), s, inj)
	}

	pol := cluster.DefaultPolicy()
	pol.HedgeFactor = *hedgeFactor
	c, err := cluster.New(reps, scfg, cluster.Options{Policy: pol, Hedge: *hedge, MaxAttempts: *maxAttempts})
	if err != nil {
		fatal(err)
	}
	if rec != nil {
		c.SetTracer(rec)
	}

	srv := &http.Server{Addr: *addr, Handler: cluster.NewHandler(c)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "lmo-cluster: draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		c.Wait()
		for _, s := range scheds {
			s.Close()
		}
		if rec != nil {
			if err := rec.WriteFile(*traceFile); err != nil {
				fmt.Fprintln(os.Stderr, "lmo-cluster:", err)
			} else {
				fmt.Printf("trace: %d spans written to %s (%d dropped by the ring)\n",
					rec.Len(), *traceFile, rec.Dropped())
			}
		}
	}()
	hedgeState := "off"
	if *hedge {
		hedgeState = "on"
	}
	fmt.Printf("lmo-cluster: %d x %s replicas, %d slots each, hedging %s, listening on %s\n",
		*replicas, cfg.Name, *slots, hedgeState, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lmo-cluster:", err)
	os.Exit(1)
}
