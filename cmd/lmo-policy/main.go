// Command lmo-policy runs LM-Offload's quantization-aware policy search for
// a model and workload and prints the chosen strategy alongside the FlexGen
// and ZeRO-Inference baselines.
//
// Usage:
//
//	lmo-policy [-model OPT-30B] [-prompt 64] [-gen 32] [-batch 64] [-platform a100|v100]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baselines"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/stats"
)

func main() {
	modelName := flag.String("model", "OPT-30B", "model configuration (OPT-13B/30B/66B, LLaMA-13B/30B/65B)")
	prompt := flag.Int("prompt", 64, "prompt length")
	gen := flag.Int("gen", 32, "generation length")
	batch := flag.Int("batch", 64, "GPU batch size")
	platName := flag.String("platform", "a100", "platform: a100 (single GPU) or v100 (multi-GPU node)")
	flag.Parse()

	mod, err := model.ByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-policy:", err)
		os.Exit(2)
	}
	var plat *hw.Platform
	switch *platName {
	case "a100":
		plat = hw.SingleGPUA100()
	case "v100":
		plat = hw.MultiGPUV100().WithGPUCount(1)
	default:
		fmt.Fprintf(os.Stderr, "lmo-policy: unknown platform %q\n", *platName)
		os.Exit(2)
	}

	fg, err := baselines.FlexGen(plat, mod, *batch, *prompt, *gen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-policy: flexgen:", err)
		os.Exit(1)
	}
	zr, err := baselines.ZeRO(plat, mod, *prompt, *gen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-policy: zero:", err)
		os.Exit(1)
	}
	lm, err := baselines.LMOffload(plat, mod, *batch, *prompt, *gen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-policy: lm-offload:", err)
		os.Exit(1)
	}

	fmt.Printf("policy search: %s on %s, s=%d n=%d bsz=%d\n\n", mod.Name, plat.Name, *prompt, *gen, *batch)
	t := stats.NewTable("framework", "strategy", "bls", "tok/s", "vs LM-Offload")
	for _, sys := range []*baselines.System{fg, zr, lm} {
		t.AddRowf("%s\t%v\t%d\t%.1f\t%.2fx",
			sys.Name, sys.Strategy, sys.Work.BlockSize(), sys.Throughput(), sys.Throughput()/lm.Throughput())
	}
	fmt.Println(t.String())

	// Walk through the decision procedures behind LM-Offload's choice.
	ex, err := policy.Explain(policy.Result{Strategy: lm.Strategy, Throughput: lm.Throughput(), Estimator: lm.Estimator})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-policy: explain:", err)
		os.Exit(1)
	}
	fmt.Println(ex.Format())
}
