package main

import "repro/internal/experiments"

// experiment is one runnable table/figure reproduction. csv is optional:
// experiments with plottable series also emit comma-separated rows.
type experiment struct {
	name string
	run  func() (string, error)
	csv  func() (string, error)
}

// registry lists every experiment in paper order.
func registry() []experiment {
	// The workload grid is the slowest experiment; memoize so -csv does not
	// replay the whole grid a second time.
	var workloadGrid *experiments.WorkloadResult
	workload := func() (*experiments.WorkloadResult, error) {
		if workloadGrid != nil {
			return workloadGrid, nil
		}
		r, err := experiments.WorkloadGrid(24, false)
		if err != nil {
			return nil, err
		}
		workloadGrid = r
		return r, nil
	}
	// The drift experiment runs a live adaptation lifecycle three times;
	// memoize it the same way so -csv reuses the run.
	var driftRes *experiments.DriftResult
	drift := func() (*experiments.DriftResult, error) {
		if driftRes != nil {
			return driftRes, nil
		}
		r, err := experiments.DriftAdapt(2)
		if err != nil {
			return nil, err
		}
		driftRes = r
		return r, nil
	}
	// The chunked A/B replays the long-prompt arrival once per arm; memoize
	// so -csv reuses the run.
	var chunkedRes *experiments.ChunkedResult
	chunked := func() (*experiments.ChunkedResult, error) {
		if chunkedRes != nil {
			return chunkedRes, nil
		}
		r, err := experiments.ChunkedBench()
		if err != nil {
			return nil, err
		}
		if err := r.CheckAcceptance(); err != nil {
			return nil, err
		}
		chunkedRes = r
		return r, nil
	}
	// The kernels A/B reruns both arms several times; memoize so -csv reuses
	// the run, and gate the acceptance bar exactly like the chunked bench.
	var kernelsRes *experiments.KernelsResult
	kernels := func() (*experiments.KernelsResult, error) {
		if kernelsRes != nil {
			return kernelsRes, nil
		}
		r, err := experiments.KernelsBench()
		if err != nil {
			return nil, err
		}
		if err := r.CheckAcceptance(); err != nil {
			return nil, err
		}
		kernelsRes = r
		return r, nil
	}
	return []experiment{
		{name: "fig3", run: func() (string, error) {
			r, err := experiments.Figure3()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{name: "fig4", run: func() (string, error) {
			r, err := experiments.Figure4()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{name: "tab1", run: func() (string, error) {
			r, err := experiments.Table1()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{name: "fig5", run: func() (string, error) {
			r, err := experiments.Figure5()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := experiments.Figure5()
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "tab3", run: func() (string, error) {
			r, err := experiments.Table3(nil, nil)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := experiments.Table3(nil, nil)
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "fig7", run: func() (string, error) {
			r, err := experiments.Figure7()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{name: "fig8", run: func() (string, error) {
			r, err := experiments.Figure8()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{name: "tab5", run: func() (string, error) {
			r, err := experiments.Table5()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{name: "fig9", run: func() (string, error) {
			r, err := experiments.Figure9()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := experiments.Figure9()
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "functional", run: func() (string, error) {
			r, err := experiments.FunctionalCheck()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{name: "scale", run: func() (string, error) {
			r, err := experiments.ScaleSweep(32)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := experiments.ScaleSweep(32)
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "whatif", run: func() (string, error) {
			r, err := experiments.PlatformWhatIf(32)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{name: "validation", run: func() (string, error) {
			r, err := experiments.ValidateModel(24, 7)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{name: "ablations", run: func() (string, error) {
			r, err := experiments.Ablations()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{name: "serving", run: func() (string, error) {
			r, err := experiments.ServingThroughput(4, 32)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := experiments.ServingThroughput(4, 32)
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "overload", run: func() (string, error) {
			r, err := experiments.Overload(48)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := experiments.Overload(48)
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "availability", run: func() (string, error) {
			r, err := experiments.Availability()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := experiments.Availability()
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "prefix", run: func() (string, error) {
			r, err := experiments.PrefixReuse(12)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := experiments.PrefixReuse(12)
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "cluster", run: func() (string, error) {
			r, err := experiments.ClusterBench(60)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := experiments.ClusterBench(60)
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "workload", run: func() (string, error) {
			r, err := workload()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := workload()
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "drift", run: func() (string, error) {
			r, err := drift()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := drift()
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "chunked", run: func() (string, error) {
			r, err := chunked()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := chunked()
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "kernels", run: func() (string, error) {
			r, err := kernels()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := kernels()
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
		{name: "conformance", run: func() (string, error) {
			r, err := experiments.Conformance()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}, csv: func() (string, error) {
			r, err := experiments.Conformance()
			if err != nil {
				return "", err
			}
			return r.CSV(), nil
		}},
	}
}
