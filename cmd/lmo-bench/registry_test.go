package main

import (
	"strings"
	"testing"
)

// TestRegistryRunsEveryExperiment executes every registered experiment once,
// guarding the CLI wiring end to end.
func TestRegistryRunsEveryExperiment(t *testing.T) {
	seen := map[string]bool{}
	for _, exp := range registry() {
		exp := exp
		t.Run(exp.name, func(t *testing.T) {
			if seen[exp.name] {
				t.Fatalf("duplicate experiment name %q", exp.name)
			}
			seen[exp.name] = true
			out, err := exp.run()
			if err != nil {
				t.Fatal(err)
			}
			if strings.TrimSpace(out) == "" {
				t.Error("empty output")
			}
			if exp.csv != nil {
				rows, err := exp.csv()
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(rows, ",") {
					t.Error("CSV output has no columns")
				}
			}
		})
	}
	// Every paper table/figure is registered.
	for _, want := range []string{"fig3", "fig4", "tab1", "fig5", "tab3", "fig7", "fig8", "tab5", "fig9"} {
		if !seen[want] {
			t.Errorf("experiment %q missing from the registry", want)
		}
	}
}
