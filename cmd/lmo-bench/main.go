// Command lmo-bench regenerates the paper's tables and figures on stdout.
//
// Usage:
//
//	lmo-bench [-run all|fig3|fig4|tab1|fig5|tab3|fig7|fig8|tab5|fig9|ablations]
//
// Each experiment prints its rows alongside the paper's reported values so
// the output doubles as the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, fig3, fig4, tab1, fig5, tab3, fig7, fig8, tab5, fig9, functional, scale, whatif, validation, ablations, availability, workload, drift, chunked, conformance")
	csvDir := flag.String("csv", "", "also write <experiment>.csv files for plottable experiments into this directory")
	flag.Parse()

	selected := strings.Split(*run, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	ran := 0
	for _, exp := range registry() {
		if !want(exp.name) {
			continue
		}
		start := time.Now()
		out, err := exp.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmo-bench: %s: %v\n", exp.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *csvDir != "" && exp.csv != nil {
			rows, err := exp.csv()
			if err != nil {
				fmt.Fprintf(os.Stderr, "lmo-bench: %s csv: %v\n", exp.name, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, exp.name+".csv")
			if err := os.WriteFile(path, []byte(rows), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "lmo-bench: %s csv: %v\n", exp.name, err)
				os.Exit(1)
			}
			fmt.Printf("[wrote %s]\n", path)
		}
		fmt.Printf("[%s completed in %v]\n\n", exp.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "lmo-bench: no experiment matches %q\n", *run)
		os.Exit(2)
	}
}
