// Command lmo-sim runs the discrete-event simulator for one strategy and
// prints the schedule analysis: steady-state step time, throughput, resource
// utilizations, and the bottleneck — alongside the analytical model's view.
//
// Usage:
//
//	lmo-sim [-model OPT-30B] [-gen 128] [-wg 55] [-cg 0] [-kvbits 4]
//	        [-wbits 0] [-cpu-attn] [-profile flexgen|zero|lmoffload] [-steps 4]
//	        [-chunk 0]
//
// With -chunk N, the prompt's prefill is additionally simulated in N-token
// chunks — the serving engine's chunked-admission schedule — and compared
// against the monolithic prefill and the analytical chunked closed form.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

func main() {
	modelName := flag.String("model", "OPT-30B", "model configuration")
	gen := flag.Int("gen", 128, "generation length")
	wg := flag.Float64("wg", 55, "percent of weights on GPU")
	cg := flag.Float64("cg", 0, "percent of KV cache on GPU")
	kvBits := flag.Int("kvbits", 4, "KV quantization bits (0 = off)")
	wBits := flag.Int("wbits", 0, "weight quantization bits (0 = off)")
	cpuAttn := flag.Bool("cpu-attn", false, "offload attention to the CPU")
	profile := flag.String("profile", "flexgen", "execution profile: flexgen, zero, lmoffload")
	steps := flag.Int("steps", 4, "decode steps to simulate")
	curve := flag.Bool("curve", false, "print the per-token latency curve instead of the average")
	chunk := flag.Int("chunk", 0, "also simulate a chunked prefill at this many tokens per chunk (0 = off)")
	faultSpec := flag.String("faults", "", `resource fault windows, e.g. "h2d@0.5+0.2,gpu@1.0+0.5x3" (outage, or xF slowdown)`)
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of the simulated schedule to this file")
	flag.Parse()

	mod, err := model.ByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-sim:", err)
		os.Exit(2)
	}
	var exec perfmodel.ExecProfile
	switch *profile {
	case "flexgen":
		exec = perfmodel.FlexGenProfile()
	case "zero":
		exec = perfmodel.ZeROProfile()
	case "lmoffload":
		exec = perfmodel.LMOffloadProfile()
	default:
		fmt.Fprintf(os.Stderr, "lmo-sim: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	strat := perfmodel.Strategy{
		AttnOnCPU:     *cpuAttn,
		WeightsGPUPct: *wg / 100,
		CacheGPUPct:   *cg / 100,
		GroupSize:     64,
	}
	if *cpuAttn {
		strat.CacheGPUPct = 0
	}
	if *kvBits > 0 && !*cpuAttn {
		strat.QuantKV = true
		strat.KVBits = *kvBits
	}
	if *wBits > 0 {
		strat.QuantWeights = true
		strat.WeightBits = *wBits
	}

	work := trace.Workload{PromptLen: 64, GenLen: *gen, GPUBatch: 64, NumBatches: 10}
	est, err := perfmodel.New(hw.SingleGPUA100(), mod, work, strat, exec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-sim:", err)
		os.Exit(1)
	}
	events, err := sim.ParseFaultEvents(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-sim:", err)
		os.Exit(2)
	}
	var rec *xtrace.Recorder
	if *traceFile != "" {
		rec = xtrace.NewRecorder(0)
	}
	res, err := sim.SimulateDecodeTraced(est, *steps, rec, events...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-sim:", err)
		os.Exit(1)
	}
	if rec != nil {
		if err := rec.WriteFile(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "lmo-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d spans written to %s\n", rec.Len(), *traceFile)
	}

	fmt.Printf("strategy: %v under %s profile, %s\n\n", strat, exec.Name, work)
	if len(events) > 0 {
		clean, err := sim.SimulateDecode(est, *steps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-sim:", err)
			os.Exit(1)
		}
		for _, ev := range events {
			kind := "outage"
			if ev.Factor >= 1 {
				kind = fmt.Sprintf("%gx slowdown", ev.Factor)
			}
			fmt.Printf("fault: %s on %s during [%.3gs, %.3gs)\n", kind, ev.Resource, ev.Start, ev.End())
		}
		fmt.Printf("throughput retention under faults: %.1f%% (clean %.1f tok/s)\n\n",
			100*res.Throughput/clean.Throughput, clean.Throughput)
	}
	fmt.Printf("simulated %d decode steps (%d tasks)\n", res.SimulatedSteps, res.Tasks)
	fmt.Printf("steady-state step time: %.2f ms/layer (analytical model: %.2f ms)\n",
		res.StepTime*1e3, est.TGen()*1e3)
	fmt.Printf("throughput: %.1f tok/s (analytical: %.1f tok/s)\n\n", res.Throughput, est.Throughput())
	for _, r := range []string{"h2d", "d2h", "gpu", "cpu"} {
		fmt.Printf("  %-4s utilization %5.1f%%\n", r, res.Utilization[r]*100)
	}
	fmt.Printf("\nbottleneck resource: %s\n", res.Bottleneck())

	if *chunk > 0 {
		cres, err := sim.SimulateChunkedPrefill(est, *chunk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-sim:", err)
			os.Exit(1)
		}
		mono, err := sim.SimulatePrefill(est)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("\nchunked prefill: %d-token prompt in %d chunks of %d\n",
			est.Work.PromptLen, cres.Chunks, *chunk)
		fmt.Printf("  makespan: %.2f ms simulated (monolithic %.2f ms, analytical chunked %.2f ms)\n",
			cres.Total*1e3, mono.Total*1e3, est.TPrefillChunked(*chunk)*1e3)
		for _, kind := range []string{"load_weight", "prefill_compute", "store_cache"} {
			fmt.Printf("  %-15s busy %8.2f ms\n", kind, cres.TaskBusy[kind]*1e3)
		}
	}

	if *curve {
		fmt.Println("\nper-token step time (ms/layer):")
		pts := est.LatencyCurve()
		stride := len(pts) / 16
		if stride < 1 {
			stride = 1
		}
		for t := 0; t < len(pts); t += stride {
			fmt.Printf("  token %3d: %.2f\n", t, pts[t]*1e3)
		}
	}
}
