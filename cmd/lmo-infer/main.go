// Command lmo-infer runs the functional offloading engine on a real tiny
// transformer: actual tensors, actual group-wise quantization, the zig-zag
// schedule with asynchronous weight prefetch, and a capacity-enforced GPU
// arena. It verifies the offloaded output against the unoffloaded reference
// model and prints the I/O accounting.
//
// Fault tolerance is exercised through -faults (deterministic fault
// injection), -ckpt-every/-checkpoint/-resume (generation checkpointing),
// and -step-timeout (per-step deadlines).
//
// Usage:
//
//	lmo-infer [-model tiny|small] [-batch 4] [-prompt 8] [-gen 16]
//	          [-kvbits 0|2|4|8] [-wbits 0|2|4|8] [-cpu-attn] [-workers 4]
//	          [-faults spec] [-ckpt-every N] [-checkpoint file] [-resume file]
//	          [-step-timeout dur]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/threadpool"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

func main() {
	modelName := flag.String("model", "tiny", "executable model: tiny or small")
	batch := flag.Int("batch", 4, "sequences in the batch")
	prompt := flag.Int("prompt", 8, "prompt length")
	gen := flag.Int("gen", 16, "tokens to generate")
	kvBits := flag.Int("kvbits", 4, "KV quantization bits (0 = off)")
	wBits := flag.Int("wbits", 0, "weight quantization bits (0 = off)")
	cpuAttn := flag.Bool("cpu-attn", false, "offload attention to the CPU (keeps KV host-resident)")
	workers := flag.Int("workers", 4, "compute pool width")
	seed := flag.Int64("seed", 42, "weights/prompts seed")
	faultSpec := flag.String("faults", "", `fault injection rules, e.g. "weight-transfer:p=0.1,kv-corruption:p=0.05,worker-panic:p=0.02:n=3"`)
	stepTimeout := flag.Duration("step-timeout", 0, "per-step deadline (0 = none)")
	ckptEvery := flag.Int("ckpt-every", 0, "snapshot generation state every N decode steps (0 = off)")
	ckptFile := flag.String("checkpoint", "", "write the final snapshot to this file (requires -ckpt-every)")
	resumeFile := flag.String("resume", "", "resume generation from a checkpoint file instead of starting fresh")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in chrome://tracing or Perfetto)")
	quantKernels := flag.Bool("quant-kernels", false, "fused quantized-domain compute kernels: consume packed weight/KV blocks directly instead of dequantize-then-matmul (bit-identical tokens)")
	flag.Parse()

	var cfg model.Config
	switch *modelName {
	case "tiny":
		cfg = model.Tiny()
	case "small":
		cfg = model.Small()
	default:
		fmt.Fprintf(os.Stderr, "lmo-infer: unknown model %q\n", *modelName)
		os.Exit(2)
	}

	pol := runtime.Policy{
		AttnOnCPU:   *cpuAttn,
		IntraOp:     *workers,
		Prefetch:    true,
		StepTimeout: *stepTimeout,
	}
	if *kvBits > 0 && !*cpuAttn {
		pol.QuantKV = true
		pol.KVCfg = quant.Config{Bits: *kvBits, GroupSize: 32}
	}
	if *wBits > 0 {
		pol.QuantWeights = true
		pol.WeightCfg = quant.Config{Bits: *wBits, GroupSize: 32}
	}
	pol.QuantKernels = *quantKernels

	rng := rand.New(rand.NewSource(*seed))
	work := trace.Workload{PromptLen: *prompt, GenLen: *gen, GPUBatch: *batch, NumBatches: 1}
	if err := work.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "lmo-infer:", err)
		os.Exit(2)
	}
	prompts := work.Prompts(rng, cfg.Vocab)

	m, err := model.NewModel(rand.New(rand.NewSource(*seed)), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-infer:", err)
		os.Exit(1)
	}
	pool := threadpool.MustNew(*workers)
	eng, err := runtime.NewEngine(m, pol, 1<<31, pool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-infer:", err)
		os.Exit(1)
	}

	var inj *faults.Injector
	if *faultSpec != "" {
		rules, err := faults.ParseRules(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(2)
		}
		if inj, err = faults.New(*seed, rules); err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(2)
		}
		eng.SetFaultInjector(inj)
	}
	if *ckptEvery > 0 {
		if err := eng.EnableCheckpointing(*ckptEvery); err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(2)
		}
	}
	var rec *xtrace.Recorder
	if *traceFile != "" {
		rec = xtrace.NewRecorder(0)
		eng.SetTracer(rec)
	}

	ctx := context.Background()
	var out [][]int
	if *resumeFile != "" {
		f, err := os.Open(*resumeFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(1)
		}
		ck, err := runtime.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(1)
		}
		fmt.Printf("resuming from %s: step %d/%d, %d sequences\n", *resumeFile, ck.Step, ck.GenLen, len(ck.Prompts))
		out, err = eng.Resume(ctx, ck, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(1)
		}
	} else {
		out, err = eng.Generate(ctx, prompts, *gen)
		if err != nil {
			// Persist the last good snapshot so the run can be resumed past
			// the failure point — this is the scenario checkpoints exist for.
			if *ckptFile != "" {
				if ck := eng.LastCheckpoint(); ck != nil {
					if werr := writeCheckpoint(ck, *ckptFile); werr != nil {
						fmt.Fprintln(os.Stderr, "lmo-infer:", werr)
					} else {
						fmt.Fprintf(os.Stderr, "lmo-infer: partial checkpoint (step %d/%d) written to %s\n",
							ck.Step, ck.GenLen, *ckptFile)
					}
				}
			}
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("model %s: %d layers, hidden %d, %d heads, vocab %d\n",
		cfg.Name, cfg.Layers, cfg.Hidden, cfg.Heads, cfg.Vocab)
	fmt.Printf("policy: cpu-attn=%v kv-quant=%v weight-quant=%v workers=%d\n\n",
		pol.AttnOnCPU, pol.QuantKV, pol.QuantWeights, *workers)
	for i, seq := range out {
		if i >= 4 {
			fmt.Printf("... (%d more sequences)\n", len(out)-4)
			break
		}
		fmt.Printf("seq %d: %v\n", i, seq)
	}
	if rec != nil {
		if err := rec.WriteFile(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d spans written to %s (%d dropped by the ring)\n", rec.Len(), *traceFile, rec.Dropped())
	}
	fmt.Printf("\nengine stats: %s\n", eng.Stats())
	if inj != nil {
		st := eng.Stats()
		fmt.Printf("faults: %s\n", inj)
		fmt.Printf("recovery: retries=%d cleared=%d degradations=%v checkpoints=%d\n",
			st.TotalRetries(), st.FaultsCleared, st.Degradations, st.Checkpoints)
	}

	if *ckptFile != "" {
		ck := eng.LastCheckpoint()
		if ck == nil {
			fmt.Fprintln(os.Stderr, "lmo-infer: no checkpoint captured (set -ckpt-every)")
			os.Exit(1)
		}
		if err := writeCheckpoint(ck, *ckptFile); err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint (step %d/%d) written to %s\n", ck.Step, ck.GenLen, *ckptFile)
	}

	// Verify against the unoffloaded reference when nothing is quantized and
	// the run started fresh. Fault recovery must be semantically transparent,
	// so this holds even under injection.
	if !pol.QuantKV && !pol.QuantWeights && *resumeFile == "" && len(out[0]) == *gen {
		ref, err := model.NewModel(rand.New(rand.NewSource(*seed)), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(1)
		}
		want, err := ref.Generate(pool, *workers, prompts, *gen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(1)
		}
		for i := range want {
			for j := range want[i] {
				if out[i][j] != want[i][j] {
					fmt.Fprintf(os.Stderr, "lmo-infer: VERIFICATION FAILED at seq %d token %d\n", i, j)
					os.Exit(1)
				}
			}
		}
		fmt.Println("verification: offloaded output matches the reference model exactly")
	}
}

// writeCheckpoint serializes ck to path, creating or truncating the file.
func writeCheckpoint(ck *runtime.Checkpoint, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := ck.Save(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
