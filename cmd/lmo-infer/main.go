// Command lmo-infer runs the functional offloading engine on a real tiny
// transformer: actual tensors, actual group-wise quantization, the zig-zag
// schedule with asynchronous weight prefetch, and a capacity-enforced GPU
// arena. It verifies the offloaded output against the unoffloaded reference
// model and prints the I/O accounting.
//
// Usage:
//
//	lmo-infer [-model tiny|small] [-batch 4] [-prompt 8] [-gen 16]
//	          [-kvbits 0|2|4|8] [-wbits 0|2|4|8] [-cpu-attn] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/threadpool"
	"repro/internal/trace"
)

func main() {
	modelName := flag.String("model", "tiny", "executable model: tiny or small")
	batch := flag.Int("batch", 4, "sequences in the batch")
	prompt := flag.Int("prompt", 8, "prompt length")
	gen := flag.Int("gen", 16, "tokens to generate")
	kvBits := flag.Int("kvbits", 4, "KV quantization bits (0 = off)")
	wBits := flag.Int("wbits", 0, "weight quantization bits (0 = off)")
	cpuAttn := flag.Bool("cpu-attn", false, "offload attention to the CPU (keeps KV host-resident)")
	workers := flag.Int("workers", 4, "compute pool width")
	seed := flag.Int64("seed", 42, "weights/prompts seed")
	flag.Parse()

	var cfg model.Config
	switch *modelName {
	case "tiny":
		cfg = model.Tiny()
	case "small":
		cfg = model.Small()
	default:
		fmt.Fprintf(os.Stderr, "lmo-infer: unknown model %q\n", *modelName)
		os.Exit(2)
	}

	pol := runtime.Policy{
		AttnOnCPU: *cpuAttn,
		IntraOp:   *workers,
		Prefetch:  true,
	}
	if *kvBits > 0 && !*cpuAttn {
		pol.QuantKV = true
		pol.KVCfg = quant.Config{Bits: *kvBits, GroupSize: 32}
	}
	if *wBits > 0 {
		pol.QuantWeights = true
		pol.WeightCfg = quant.Config{Bits: *wBits, GroupSize: 32}
	}

	rng := rand.New(rand.NewSource(*seed))
	work := trace.Workload{PromptLen: *prompt, GenLen: *gen, GPUBatch: *batch, NumBatches: 1}
	if err := work.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "lmo-infer:", err)
		os.Exit(2)
	}
	prompts := work.Prompts(rng, cfg.Vocab)

	m, err := model.NewModel(rand.New(rand.NewSource(*seed)), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-infer:", err)
		os.Exit(1)
	}
	pool := threadpool.MustNew(*workers)
	eng, err := runtime.NewEngine(m, pol, 1<<31, pool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-infer:", err)
		os.Exit(1)
	}
	out, err := eng.Generate(prompts, *gen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-infer:", err)
		os.Exit(1)
	}

	fmt.Printf("model %s: %d layers, hidden %d, %d heads, vocab %d\n",
		cfg.Name, cfg.Layers, cfg.Hidden, cfg.Heads, cfg.Vocab)
	fmt.Printf("policy: cpu-attn=%v kv-quant=%v weight-quant=%v workers=%d\n\n",
		pol.AttnOnCPU, pol.QuantKV, pol.QuantWeights, *workers)
	for i, seq := range out {
		if i >= 4 {
			fmt.Printf("... (%d more sequences)\n", len(out)-4)
			break
		}
		fmt.Printf("seq %d: %v\n", i, seq)
	}
	fmt.Printf("\nengine stats: %s\n", eng.Stats())

	// Verify against the unoffloaded reference when nothing is quantized.
	if !pol.QuantKV && !pol.QuantWeights {
		ref, err := model.NewModel(rand.New(rand.NewSource(*seed)), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(1)
		}
		want, err := ref.Generate(pool, *workers, prompts, *gen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmo-infer:", err)
			os.Exit(1)
		}
		for i := range want {
			for j := range want[i] {
				if out[i][j] != want[i][j] {
					fmt.Fprintf(os.Stderr, "lmo-infer: VERIFICATION FAILED at seq %d token %d\n", i, j)
					os.Exit(1)
				}
			}
		}
		fmt.Println("verification: offloaded output matches the reference model exactly")
	}
}
