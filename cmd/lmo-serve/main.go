// Command lmo-serve runs the continuous-batching HTTP server over the
// functional offloading engine: requests POSTed to /generate join a bounded
// admission queue, get admitted into free KV slots at decode-step
// boundaries, and stream back either a JSON token list or SSE events.
// /healthz reports the circuit-breaker state (healthy/degraded/shedding,
// 503 while shedding); /stats reports queue depth, batch occupancy,
// TTFT/TPOT latency quantiles, tokens/s, and the overload-protection
// counters (spills, evictions, structured 429s, pressure level).
//
// With admission control on (the default), the server estimates each
// request's peak arena footprint before admitting it and sheds load with
// structured 429/503 responses carrying Retry-After instead of OOMing.
//
// Usage:
//
//	lmo-serve [-addr :8080] [-model tiny|small] [-slots 4] [-queue 64]
//	          [-max-new 64] [-eos -1] [-kvbits 0|2|4|8] [-cpu-attn]
//	          [-workers 4] [-seed 42] [-faults spec] [-step-timeout dur]
//	          [-arena-mb 2048] [-admission] [-hwm 0.85] [-lwm 0.65]
//	          [-tpot-budget dur] [-host-kv-mb 0] [-prefix-cache-mb 0]
//	          [-chunk-tokens 0] [-fair-share -tenants "free=1,pro=2/3"]
//	          [-latency-samples 4096] [-adapt]
//
// With -chunk-tokens N, prompts longer than N are admitted incrementally:
// one N-token prefill chunk runs between decode steps, so a long arrival
// never stalls the live batch for more than one chunk's compute. Served
// tokens are bit-identical to monolithic admission.
//
// With -adapt, a background controller watches the TPOT estimator's windowed
// accuracy and the measured TPOT against a stable baseline; when the machine
// drifts (thermal throttling, co-tenants), it refits the performance model's
// hardware coefficients, re-runs the autotune search off the hot path, and
// hot-swaps the execution policy at a decode-step boundary — canarying the
// swap and rolling it back automatically if measured TPOT regresses. /stats
// gains an "adapt" block (state, drift factor, swap/commit/rollback
// counters). Requires -admission (the TPOT estimator feeds the detector).
//
// With -fair-share, -tenants declares per-tenant active-slot quotas, queue
// depths, and weighted-round-robin shares; requests carrying a "tenant"
// field bill against their tenant and untagged requests bill to "default".
// /stats then reports per-tenant queued/active/completed counters.
//
// Example session:
//
//	lmo-serve &
//	curl -s localhost:8080/generate -d '{"prompt":[1,2,3],"max_new_tokens":8}'
//	curl -s -N localhost:8080/generate -d '{"prompt":[1,2,3],"stream":true}'
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"time"

	lmoffload "repro"
	"repro/internal/adapt"
	"repro/internal/adapt/tune"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/threadpool"
	"repro/internal/xtrace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelName := flag.String("model", "tiny", "executable model: tiny or small")
	slots := flag.Int("slots", 4, "concurrent decode slots (continuous-batch width)")
	queueDepth := flag.Int("queue", 64, "admission queue depth")
	maxNew := flag.Int("max-new", 64, "per-request generation cap")
	defaultNew := flag.Int("default-new", 16, "generation budget when a request omits max_new_tokens")
	eos := flag.Int("eos", -1, "EOS token ID terminating a stream early (-1 = off)")
	kvBits := flag.Int("kvbits", 0, "KV quantization bits (0 = off; quantized KV is lossy)")
	cpuAttn := flag.Bool("cpu-attn", false, "keep the KV cache host-resident and attention on the CPU")
	workers := flag.Int("workers", 4, "compute pool width")
	seed := flag.Int64("seed", 42, "weights seed")
	faultSpec := flag.String("faults", "", `fault injection rules, e.g. "weight-transfer:p=0.1,kv-corruption:p=0.05"`)
	stepTimeout := flag.Duration("step-timeout", 0, "per-step deadline (0 = none)")
	arenaMB := flag.Int64("arena-mb", 2048, "GPU arena capacity in MiB")
	admission := flag.Bool("admission", true, "performance-model-guided admission control and KV-pressure ladder")
	hwm := flag.Float64("hwm", 0.85, "high watermark as a fraction of the arena's KV headroom")
	lwm := flag.Float64("lwm", 0.65, "low watermark (hysteresis floor) as a fraction of KV headroom")
	tpotBudget := flag.Duration("tpot-budget", 0, "reject admissions predicted to push TPOT past this (0 = off)")
	hostKVMB := flag.Int64("host-kv-mb", 0, "host-side KV byte budget in MiB (0 = unlimited)")
	prefixMB := flag.Int64("prefix-cache-mb", 0, "shared-prefix KV cache budget in MiB (0 = off); admissions reuse cached prompt prefixes and prefill only the suffix")
	chunkTokens := flag.Int("chunk-tokens", 0, "chunked prefill: admit prompts longer than this incrementally, one chunk between decode steps, bounding the TPOT spike a long arrival can inflict (0 = monolithic admission)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of the serving run to this file on shutdown")
	tenants := flag.String("tenants", "", `fair-share tenants as name=slots[/weight[/depth]] entries, e.g. "free=1,pro=2/3,batch=1/1/16" (slots 0 = suspended; requests tagged "tenant" bill per-tenant, untagged ones bill to "default")`)
	fairShare := flag.Bool("fair-share", false, "enable weighted fair-share scheduling (requires -tenants)")
	latencySamples := flag.Int("latency-samples", 0, "TTFT/TPOT latency reservoir capacity per ring (0 = default 4096)")
	adaptOn := flag.Bool("adapt", false, "online self-tuning: drift detection, background re-search, guarded policy hot-swap with canary rollback (requires -admission)")
	quantKernels := flag.Bool("quant-kernels", false, "fused quantized-domain compute kernels: consume packed weight/KV blocks directly instead of dequantize-then-matmul (bit-identical tokens)")
	flag.Parse()

	if *fairShare != (*tenants != "") {
		fmt.Fprintln(os.Stderr, "lmo-serve: -fair-share and -tenants must be used together")
		os.Exit(2)
	}
	if *adaptOn && !*admission {
		fmt.Fprintln(os.Stderr, "lmo-serve: -adapt requires -admission (the TPOT estimator feeds the drift detector)")
		os.Exit(2)
	}

	var cfg model.Config
	switch *modelName {
	case "tiny":
		cfg = model.Tiny()
	case "small":
		cfg = model.Small()
	default:
		fmt.Fprintf(os.Stderr, "lmo-serve: unknown model %q\n", *modelName)
		os.Exit(2)
	}

	pol := runtime.Policy{
		AttnOnCPU:   *cpuAttn,
		IntraOp:     *workers,
		Prefetch:    true,
		StepTimeout: *stepTimeout,
	}
	if *kvBits > 0 && !*cpuAttn {
		pol.QuantKV = true
		pol.KVCfg = quant.Config{Bits: *kvBits, GroupSize: 32}
	}
	pol.QuantKernels = *quantKernels

	m, err := model.NewModel(rand.New(rand.NewSource(*seed)), cfg)
	if err != nil {
		fatal(err)
	}
	pool := threadpool.MustNew(*workers)
	eng, err := runtime.NewEngine(m, pol, *arenaMB<<20, pool)
	if err != nil {
		fatal(err)
	}
	if *faultSpec != "" {
		rules, err := faults.ParseRules(*faultSpec)
		if err != nil {
			fatal(err)
		}
		inj, err := faults.New(*seed, rules)
		if err != nil {
			fatal(err)
		}
		eng.SetFaultInjector(inj)
	}

	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.Slots = *slots
	scfg.QueueDepth = *queueDepth
	scfg.MaxNewTokens = *maxNew
	scfg.DefaultNewTokens = *defaultNew
	scfg.EOS = *eos
	scfg.AdmissionControl = *admission
	scfg.ArenaHighWater = *hwm
	scfg.ArenaLowWater = *lwm
	scfg.TPOTBudget = *tpotBudget
	scfg.HostKVBudget = *hostKVMB << 20
	scfg.PrefixCacheBytes = *prefixMB << 20
	scfg.ChunkTokens = *chunkTokens
	scfg.LatencySampleCap = *latencySamples
	if *tenants != "" {
		tcs, err := serve.ParseTenantSpec(*tenants)
		if err != nil {
			fatal(err)
		}
		scfg.Tenants = tcs
	}
	var col *perfmodel.EstCollector
	if *adaptOn {
		col = perfmodel.NewEstCollector()
		scfg.EstObserver = col
	}
	var rec *xtrace.Recorder
	if *traceFile != "" {
		rec = xtrace.NewRecorder(0)
		eng.SetTracer(rec)
	}
	sched, err := serve.New(eng, scfg)
	if err != nil {
		fatal(err)
	}
	var ctl *adapt.Controller
	if *adaptOn {
		work, err := lmoffload.NewWorkload(64, *maxNew, 64, 10)
		if err != nil {
			fatal(err)
		}
		searcher := &tune.AutoTuneSearcher{
			Plat:       lmoffload.SingleGPUA100(),
			Mod:        lmoffload.OPT30B,
			Work:       work,
			Base:       perfmodel.LMOffloadProfile(),
			MaxIters:   4,
			MaxIntraOp: *workers,
		}
		ctl, err = adapt.New(sched, col, searcher, adapt.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		if rec != nil {
			ctl.SetTracer(rec)
		}
		sched.SetAdaptStatsFunc(ctl.StatsMap)
		ctl.Start()
	}

	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(sched)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "lmo-serve: draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		if ctl != nil {
			ctl.Stop()
		}
		sched.Close()
		if rec != nil {
			if err := rec.WriteFile(*traceFile); err != nil {
				fmt.Fprintln(os.Stderr, "lmo-serve:", err)
			} else {
				fmt.Printf("trace: %d spans written to %s (%d dropped by the ring)\n",
					rec.Len(), *traceFile, rec.Dropped())
			}
		}
	}()
	fmt.Printf("lmo-serve: %s model, %d slots, queue %d, listening on %s\n",
		cfg.Name, *slots, *queueDepth, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	// ListenAndServe returns the instant Shutdown begins; wait for the drain
	// (and the trace write) to finish before exiting.
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lmo-serve:", err)
	os.Exit(1)
}
