// Command lmo-parallelism explores thread-level parallelism control (§4):
// it prints the Figure 5 sweeps, runs Algorithm 3, and reports the tuned
// setting against the PyTorch default.
//
// Usage:
//
//	lmo-parallelism [-model OPT-30B] [-gen 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/parallelism"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	modelName := flag.String("model", "OPT-30B", "model configuration")
	gen := flag.Int("gen", 8, "generation length")
	flag.Parse()

	mod, err := model.ByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-parallelism:", err)
		os.Exit(2)
	}
	plat := hw.SingleGPUA100()
	work := trace.Workload{PromptLen: 64, GenLen: *gen, GPUBatch: 64, NumBatches: 10}
	machine, err := parallelism.NewMachineModel(plat.CPU)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-parallelism:", err)
		os.Exit(1)
	}
	ctrl, err := parallelism.NewController(machine, plat.Link.BandwidthPerDir*0.5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-parallelism:", err)
		os.Exit(1)
	}
	groups := parallelism.DefaultHeadGroups
	if groups > mod.Heads {
		groups = mod.Heads
	}
	og, err := parallelism.BuildAttentionGraph(mod, work, work.PromptLen+work.GenLen/2, groups)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-parallelism:", err)
		os.Exit(1)
	}
	transfers := []parallelism.TransferTask{
		{Name: "load_weight", Bytes: float64(mod.LayerWeightBytes()) * 0.45},
		{Name: "load_cache", Bytes: 0},
		{Name: "store_cache", Bytes: 0},
		{Name: "load_activation", Bytes: float64(mod.ActivationBytes(work))},
		{Name: "store_activation", Bytes: float64(mod.ActivationBytes(work))},
	}

	fmt.Printf("parallelism control: %s, %s, %d-core / %d-thread host\n\n", mod.Name, work, machine.Cores, machine.Threads)
	fmt.Printf("compute dependency graph: %d operators, max concurrency %d (Kahn levels)\n\n", len(og.Ops), og.MaxConcurrency())

	intra, err := ctrl.SweepIntraOp(og, transfers, []int{1, 2, 4, 8, 16, 32, 56})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-parallelism:", err)
		os.Exit(1)
	}
	t := stats.NewTable("intra-op", "step ms")
	for _, p := range intra {
		t.AddRowf("%d\t%.2f", p.Parallelism, p.StepTime*1e3)
	}
	fmt.Println(t.String())

	def, err := ctrl.DefaultSetting(og, transfers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-parallelism:", err)
		os.Exit(1)
	}
	tuned, err := ctrl.Optimize(og, transfers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmo-parallelism:", err)
		os.Exit(1)
	}
	imp := parallelism.Compare(def, tuned)
	fmt.Printf("default:  intra-op %d, inter-op %d, compute %.1f ms, step %.1f ms\n",
		def.IntraOp, def.InterOp, def.ComputeTime*1e3, def.StepTime*1e3)
	fmt.Printf("tuned:    intra-op %d, inter-op %d (compute %d + 5 transfer tasks), compute %.1f ms, step %.1f ms\n",
		tuned.IntraOp, tuned.InterOp, tuned.InterOpCompute, tuned.ComputeTime*1e3, tuned.StepTime*1e3)
	fmt.Printf("transfer threads: %v\n", tuned.TransferThreads)
	fmt.Printf("improvement: compute %.0f%%, step %.0f%% (paper: 32%% / 38%%)\n",
		imp.ComputeReduction*100, imp.StepReduction*100)
}
