package serve

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
)

// FuzzAdmissionEstimate fuzzes the footprint estimator's arithmetic: no
// geometry or request shape — including adversarial near-overflow ones — may
// produce a negative, wrapped, or non-monotone estimate. For small shapes it
// additionally closes the loop against the real engine: an arena sized to
// exactly the estimate must serve the request without an arena-capacity
// failure, i.e. "the estimate said it fits" is a real guarantee, not a hint.
func FuzzAdmissionEstimate(f *testing.F) {
	f.Add(64, 4, int64(1<<20), int64(1<<17), 2, 1.2, 8, 32)
	f.Add(64, 4, int64(0), int64(131072), 1, 1.15, 4, 8)
	f.Add(1<<30, 8, int64(math.MaxInt64-10), int64(math.MaxInt64/2), 4, 1.5, math.MaxInt32, math.MaxInt32)
	f.Add(1, 1, int64(0), int64(0), 0, 1.0, 0, 0)
	f.Add(4096, 2, int64(1<<40), int64(1<<33), 2, 2.0, 2048, 2048)
	f.Add(64, 4, int64(-5), int64(131072), 1, 0.5, -3, -9)

	f.Fuzz(func(t *testing.T, hidden, bpe int, base, layerB int64, buffers int, slack float64, plen, ntok int) {
		a := perfmodel.AdmissionModel{
			HiddenDim:     hidden,
			BytesPerElem:  bpe,
			ResidentBase:  base,
			LayerBytes:    layerB,
			WeightBuffers: buffers,
			Slack:         slack,
		}
		if a.Validate() != nil {
			t.Skip()
		}
		kv := a.SlotKVBytes(plen, ntok)
		if kv < 0 {
			t.Fatalf("SlotKVBytes(%d, %d) = %d < 0", plen, ntok, kv)
		}
		if ntok >= 0 && ntok < math.MaxInt {
			if kv2 := a.SlotKVBytes(plen, ntok+1); kv2 < kv {
				t.Fatalf("SlotKVBytes not monotone: %d tokens -> %d, %d tokens -> %d", ntok, kv, ntok+1, kv2)
			}
		}
		peak := a.PeakBytes(kv)
		if peak < 0 {
			t.Fatalf("PeakBytes(%d) = %d < 0", kv, peak)
		}
		if peak < kv || peak < base {
			t.Fatalf("PeakBytes(%d) = %d wrapped below its terms (base %d)", kv, peak, base)
		}
		if s := a.ScaledKV(kv); s < kv {
			t.Fatalf("ScaledKV(%d) = %d shrank with slack %g >= 1", kv, s, slack)
		}

		// Engine-backed leg, bounded to cheap shapes: size the arena to the
		// estimate and run the admitted request to completion.
		if plen < 1 || plen > 12 || ntok < 1 || ntok > 12 {
			return
		}
		m, err := model.NewModel(rand.New(rand.NewSource(modelSeed)), model.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		probe, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<30, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(model.Tiny().Vocab)
		real := newAdmissionModel(probe, cfg)
		estimate := real.PeakBytes(real.SlotKVBytes(plen, ntok))

		eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, estimate, nil)
		if err != nil {
			t.Fatalf("engine rejected arena == estimate %d: %v", estimate, err)
		}
		sched, err := New(eng, cfg)
		if err != nil {
			t.Fatalf("scheduler rejected arena == estimate %d: %v", estimate, err)
		}
		defer sched.Close()
		prompt := make([]int, plen)
		for i := range prompt {
			prompt[i] = (i*7 + plen) % cfg.Vocab
		}
		st, err := sched.Submit(context.Background(), Request{Prompt: prompt, MaxNewTokens: ntok})
		if err != nil {
			t.Fatalf("estimate-sized arena refused admission (plen %d, ntok %d, estimate %d): %v", plen, ntok, estimate, err)
		}
		if _, err := st.Wait(); err != nil {
			t.Fatalf("admitted request failed inside its estimate (plen %d, ntok %d): %v", plen, ntok, err)
		}
		if peak := eng.ArenaPeak(); peak > estimate {
			t.Fatalf("actual arena peak %d exceeded the admission estimate %d", peak, estimate)
		}
	})
}
