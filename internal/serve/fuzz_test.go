package serve

import (
	"testing"

	"repro/internal/model"
)

// FuzzServeRequest throws arbitrary bytes at the HTTP admission decoder.
// Invariants: no panic; on success the normalized request is one the
// scheduler accepts (non-empty in-vocab prompt, budget within [1, max]);
// on failure the request is zero-valued.
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(`{"prompt":[1,2,3],"max_new_tokens":5}`))
	f.Add([]byte(`{"prompt":[],"max_new_tokens":0}`))
	f.Add([]byte(`{"prompt":[1],"stream":true}`))
	f.Add([]byte(`{"prompt":[-1]}`))
	f.Add([]byte(`{"prompt":[999999999]}`))
	f.Add([]byte(`{"prompt":[1],"max_new_tokens":-7}`))
	f.Add([]byte(`{"prompt":[1]}{"prompt":[2]}`))
	f.Add([]byte(`{"prompt":[1],"unknown":true}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"prompt":null}`))

	cfg := DefaultConfig(model.Tiny().Vocab)
	f.Fuzz(func(t *testing.T, body []byte) {
		req, _, err := DecodeGenerateRequest(body, cfg)
		if err != nil {
			if req.Prompt != nil || req.MaxNewTokens != 0 {
				t.Fatalf("error path returned non-zero request %+v", req)
			}
			return
		}
		if len(req.Prompt) == 0 || len(req.Prompt) > cfg.MaxPromptLen {
			t.Fatalf("accepted prompt length %d outside (0, %d]", len(req.Prompt), cfg.MaxPromptLen)
		}
		for _, tok := range req.Prompt {
			if tok < 0 || tok >= cfg.Vocab {
				t.Fatalf("accepted out-of-vocab token %d", tok)
			}
		}
		if req.MaxNewTokens < 1 || req.MaxNewTokens > cfg.MaxNewTokens {
			t.Fatalf("accepted budget %d outside [1, %d]", req.MaxNewTokens, cfg.MaxNewTokens)
		}
	})
}

// FuzzAdmissionQueue drives the bounded FIFO with a fuzzer-chosen op tape.
// Invariants: length never exceeds capacity; push fails exactly when full;
// pop returns entries in submission order and nil exactly when empty.
func FuzzAdmissionQueue(f *testing.F) {
	f.Add(uint8(4), []byte{0, 0, 0, 1, 0, 1, 1, 1})
	f.Add(uint8(1), []byte{0, 0, 1, 1})
	f.Add(uint8(8), []byte{0, 1, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, capByte uint8, ops []byte) {
		capacity := int(capByte%16) + 1
		q := &admitQueue{capacity: capacity}
		next, expect := 0, 0 // sequence numbers: next to push, next expected from pop
		for _, op := range ops {
			switch op % 2 {
			case 0: // push, sequence number stamped into the budget field
				ok := q.push(&pending{req: Request{MaxNewTokens: next}})
				if inFlight := next - expect; ok != (inFlight < capacity) {
					t.Fatalf("push ok=%v with in-flight=%d cap=%d", ok, inFlight, capacity)
				}
				if ok {
					next++
				}
			case 1: // pop
				p := q.pop()
				if p == nil {
					if next != expect {
						t.Fatalf("pop returned nil with %d queued", next-expect)
					}
					continue
				}
				if p.req.MaxNewTokens != expect {
					t.Fatalf("FIFO violated: popped %d, want %d", p.req.MaxNewTokens, expect)
				}
				expect++
			}
			if q.len() > capacity {
				t.Fatalf("queue length %d exceeds capacity %d", q.len(), capacity)
			}
			if q.len() != next-expect {
				t.Fatalf("len=%d disagrees with model=%d", q.len(), next-expect)
			}
		}
	})
}
