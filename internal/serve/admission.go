package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/perfmodel"
	"repro/internal/runtime"
)

// ErrOverloaded is the sentinel all admission-controller rejections wrap;
// errors.Is(err, ErrOverloaded) matches any OverloadError.
var ErrOverloaded = errors.New("serve: overloaded")

// OverloadError is a structured admission rejection: the HTTP layer maps it
// to 429 (memory/latency pressure) or 503 (breaker shedding) with a
// Retry-After derived from the predicted drain time.
type OverloadError struct {
	// Reason is a short machine-readable cause: "arena-pressure",
	// "tpot-budget", "never-fits", or "shedding".
	Reason string
	// RetryAfter is the predicted time until the pressure drains (zero when
	// the step-cost model has no estimate yet).
	RetryAfter time.Duration
	// State is the breaker state at rejection time.
	State BreakerState
	// Permanent marks rejections no amount of waiting can fix — the request
	// can never be admitted on this deployment (its KV at final length
	// exceeds the arena's whole headroom). The HTTP layer maps permanent
	// rejections to 422 with no Retry-After, so clients stop retrying them;
	// transient pressure stays 429/503.
	Permanent bool
}

func (e *OverloadError) Error() string {
	if e.Permanent {
		return fmt.Sprintf("serve: request can never be admitted (%s, state %s)", e.Reason, e.State)
	}
	if e.RetryAfter > 0 {
		return fmt.Sprintf("serve: overloaded (%s, state %s, retry after %v)", e.Reason, e.State, e.RetryAfter)
	}
	return fmt.Sprintf("serve: overloaded (%s, state %s)", e.Reason, e.State)
}

// Is makes errors.Is(err, ErrOverloaded) true for every OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// newAdmissionModel builds the perfmodel admission estimator from the
// engine's actual deployment: its pinned resident bytes, its largest
// streamed layer buffer, and the prefetch depth. This is the closed loop the
// tentpole asks for — the analytical model parameterized by the running
// engine rather than by a hypothetical platform.
func newAdmissionModel(eng *runtime.Engine, cfg Config) perfmodel.AdmissionModel {
	buffers := 1
	if eng.Policy().Prefetch {
		buffers = 2 // current + prefetched next layer
	}
	return perfmodel.AdmissionModel{
		HiddenDim:     eng.ModelConfig().Hidden,
		BytesPerElem:  4, // staged KV working copies are float32
		ResidentBase:  eng.ResidentBaseBytes(),
		LayerBytes:    eng.MaxStreamLayerBytes(),
		WeightBuffers: buffers,
		Slack:         cfg.FootprintSlack,
	}
}
