package serve

import (
	"fmt"

	"repro/internal/runtime"
	"repro/internal/xtrace"
)

// This file is the scheduler's side of online policy hot-swapping: an adapt
// controller (internal/adapt) hands it a candidate runtime.ExecPolicy via
// RequestSwap, and the loop installs it at the top of its next iteration — a
// step boundary by construction, so no decode step ever runs under a mix of
// old and new settings and served tokens are unchanged (the swappable fields
// are numerics-free by design; see runtime.ExecPolicy).
//
// The breaker interlock is enforced twice: once at request time, so callers
// learn immediately that the server is degraded, and again at apply time,
// because the breaker may have tripped between the request and the next step
// boundary. A swap refused at apply time is dropped, not queued — the adapt
// controller observes the refusal as a confirmation timeout and retries under
// its own cooldown discipline.

// ErrSwapUnhealthy is returned (wrapped) when a swap is refused because the
// circuit breaker is not Healthy.
var ErrSwapUnhealthy = fmt.Errorf("serve: exec-policy swap refused: breaker not healthy")

// RequestSwap asks the scheduler to install p at its next step boundary. It
// validates eagerly and refuses while the scheduler is closed or the breaker
// is anything but Healthy — swapping execution strategy on a degraded or
// shedding server would confound the breaker's own recovery signal. Only one
// swap can be pending; a second request overwrites the first (latest wins).
// The application itself is asynchronous: poll ExecPolicy to confirm.
func (s *Scheduler) RequestSwap(p runtime.ExecPolicy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if s.cfg.AdmissionControl && s.brk.current() != Healthy {
		s.mu.Lock()
		s.swapsRefused++
		s.mu.Unlock()
		return ErrSwapUnhealthy
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	cp := p
	s.pendingSwap = &cp
	s.mu.Unlock()
	s.kick()
	return nil
}

// applyPendingSwap drains the swap mailbox from the loop goroutine. Called at
// the top of every loop iteration — a step boundary — so the engine's policy
// fields are never written while a step reads them.
func (s *Scheduler) applyPendingSwap() {
	s.mu.Lock()
	p := s.pendingSwap
	s.pendingSwap = nil
	s.mu.Unlock()
	if p == nil {
		return
	}
	// Re-check the interlock: the breaker may have degraded since the request
	// was accepted. Refusals drop the swap; the adapt controller re-requests.
	if s.cfg.AdmissionControl && s.brk.current() != Healthy {
		s.mu.Lock()
		s.swapsRefused++
		s.mu.Unlock()
		return
	}
	if err := s.eng.ApplyExecPolicy(*p); err != nil {
		// Validated at request time, so this is unreachable short of a
		// concurrent engine misconfiguration; count it as a refusal.
		s.mu.Lock()
		s.swapsRefused++
		s.mu.Unlock()
		return
	}
	s.traceEvent(xtrace.TaskPolicySwap, xtrace.At(s.stepIdx, -1, -1))
	s.mu.Lock()
	s.curExec = *p
	s.swapsApplied++
	s.mu.Unlock()
}

// ExecPolicy returns the exec policy most recently applied to the engine.
// Safe from any goroutine (it reads the scheduler's mirror, not the engine's
// loop-owned fields).
func (s *Scheduler) ExecPolicy() runtime.ExecPolicy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curExec
}

// Stable reports whether the serving plant is in a state where policy
// experiments are safe: breaker Healthy (vacuously true without admission
// control) and not shutting down. The adapt controller treats false as a hard
// interlock — no swap requests, canaries paused.
func (s *Scheduler) Stable() bool {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return false
	}
	if !s.cfg.AdmissionControl {
		return true
	}
	return s.brk.current() == Healthy
}

// SetAdaptStatsFunc registers a closure that snapshots the adapt controller's
// status for Metrics / the /stats endpoint. Pass nil to unregister. The
// closure must be safe to call from any goroutine.
func (s *Scheduler) SetAdaptStatsFunc(f func() map[string]any) {
	s.mu.Lock()
	s.adaptStats = f
	s.mu.Unlock()
}
