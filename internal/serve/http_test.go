package serve

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
)

func testServer(t *testing.T, cfg Config) (*httptest.Server, *Scheduler) {
	t.Helper()
	m, err := model.NewModel(rand.New(rand.NewSource(modelSeed)), model.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(sched))
	t.Cleanup(func() {
		srv.Close()
		sched.Close()
	})
	return srv, sched
}

func TestHTTPGenerateJSON(t *testing.T) {
	srv, _ := testServer(t, DefaultConfig(model.Tiny().Vocab))
	resp, err := http.Post(srv.URL+"/generate", "application/json",
		strings.NewReader(`{"prompt":[1,2,3],"max_new_tokens":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Tokens) != 5 {
		t.Fatalf("got %d tokens %v, want 5", len(out.Tokens), out.Tokens)
	}
	want := soloReference(t, []int{1, 2, 3}, 5, -1)
	assertTokensEqual(t, "http json", out.Tokens, want)
}

func TestHTTPGenerateSSE(t *testing.T) {
	srv, _ := testServer(t, DefaultConfig(model.Tiny().Vocab))
	resp, err := http.Post(srv.URL+"/generate", "application/json",
		strings.NewReader(`{"prompt":[1,2,3],"max_new_tokens":4,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var tokens []int
	var done string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: done":
			if !sc.Scan() {
				t.Fatal("done event missing data line")
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &done); err != nil {
				t.Fatal(err)
			}
		case strings.HasPrefix(line, "data: "):
			var ev struct {
				Step  int `json:"step"`
				Token int `json:"token"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE event %q: %v", line, err)
			}
			if ev.Step != len(tokens) {
				t.Fatalf("event step %d out of order, want %d", ev.Step, len(tokens))
			}
			tokens = append(tokens, ev.Token)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done != "ok" {
		t.Fatalf("terminal status = %q, want ok", done)
	}
	want := soloReference(t, []int{1, 2, 3}, 4, -1)
	assertTokensEqual(t, "http sse", tokens, want)
}

func TestHTTPBadRequests(t *testing.T) {
	srv, _ := testServer(t, DefaultConfig(model.Tiny().Vocab))
	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"prompt":[1,2`},
		{"unknown field", `{"prompt":[1],"temperature":0.7}`},
		{"trailing data", `{"prompt":[1]}{"prompt":[2]}`},
		{"empty prompt", `{"prompt":[]}`},
		{"no prompt", `{}`},
		{"negative budget", `{"prompt":[1],"max_new_tokens":-3}`},
		{"oversize budget", `{"prompt":[1],"max_new_tokens":100000}`},
		{"token out of vocab", `{"prompt":[99999]}`},
		{"negative token", `{"prompt":[-1]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/generate", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/generate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /generate status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPQueueFull(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 1
	cfg.QueueDepth = 1
	srv, _ := testServer(t, cfg)

	// Occupy the only slot: start a long SSE request and read its first
	// token, which proves it is admitted and decoding.
	occupant, err := http.Post(srv.URL+"/generate", "application/json",
		strings.NewReader(`{"prompt":[1,2,3],"max_new_tokens":256,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer occupant.Body.Close() // closing cancels the occupant at cleanup
	sc := bufio.NewScanner(occupant.Body)
	for sc.Scan() && !strings.HasPrefix(sc.Text(), "data: ") {
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Fill the single queue entry; the blocking POST completes much later, so
	// watch /stats until the scheduler reports it enqueued.
	go func() {
		resp, err := http.Post(srv.URL+"/generate", "application/json",
			strings.NewReader(`{"prompt":[4,5],"max_new_tokens":256}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var stats struct {
			QueueDepth int `json:"queue_depth"`
		}
		err = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if stats.QueueDepth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Slot busy + queue full: the next request must bounce with 429.
	resp, err := http.Post(srv.URL+"/generate", "application/json",
		strings.NewReader(`{"prompt":[6],"max_new_tokens":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
}

// TestWriteOverloadTransientVsPermanent pins the wire mapping of structured
// rejections: transient pressure is 429 with Retry-After (so clients back off
// and retry), shedding is 503, and a permanent never-fits rejection is 422
// with NO Retry-After and "permanent": true — the regression was surfacing
// never-fits as a 429 with RetryAfter zero, which well-behaved clients retry
// forever.
func TestWriteOverloadTransientVsPermanent(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteOverload(rec, &OverloadError{Reason: "arena-pressure", RetryAfter: 1500 * time.Millisecond})
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("transient status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("transient Retry-After = %q, want \"2\" (1.5s rounded up)", got)
	}
	var body map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["permanent"] != false {
		t.Errorf("transient body permanent = %v, want false", body["permanent"])
	}

	rec = httptest.NewRecorder()
	WriteOverload(rec, &OverloadError{Reason: "shedding"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("shedding status = %d, want 503", rec.Code)
	}

	rec = httptest.NewRecorder()
	WriteOverload(rec, &OverloadError{Reason: "never-fits", Permanent: true})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("permanent status = %d, want 422", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Errorf("permanent rejection carries Retry-After %q; clients would retry a request that can never fit", got)
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["permanent"] != true || body["reason"] != "never-fits" {
		t.Errorf("permanent body = %v, want permanent true / reason never-fits", body)
	}
}

// TestHTTPNeverFitsEndToEnd drives the permanent rejection through the full
// stack: a request whose final-length KV exceeds the whole arena headroom
// gets 422 (not 429) from /generate, with no Retry-After.
func TestHTTPNeverFitsEndToEnd(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.MaxPromptLen = 64
	cfg.MaxNewTokens = 64

	m, err := model.NewModel(rand.New(rand.NewSource(modelSeed)), model.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	probe, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	capacity := probe.ResidentBaseBytes() + probe.MaxStreamLayerBytes() + 60<<10
	m2, err := model.NewModel(rand.New(rand.NewSource(modelSeed)), model.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := runtime.NewEngine(m2, runtime.Policy{IntraOp: 1}, capacity, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(sched))
	t.Cleanup(func() {
		srv.Close()
		sched.Close()
	})

	// 64 prompt + 64 new tokens: ~75 KiB slack-scaled KV against 60 KiB of
	// headroom — can never be admitted, no matter how long the client waits.
	body := `{"prompt":[` + strings.Repeat("1,", 63) + `1],"max_new_tokens":64}`
	resp, err := http.Post(srv.URL+"/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("never-fits status = %d, want 422", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "" {
		t.Errorf("never-fits response carries Retry-After %q", got)
	}
	var payload map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload["permanent"] != true {
		t.Errorf("never-fits body = %v, want permanent true", payload)
	}
}

// TestHTTPStatsPrefixFields: the prefix counters appear in /stats exactly
// when the cache is configured.
func TestHTTPStatsPrefixFields(t *testing.T) {
	readStats := func(t *testing.T, url string) map[string]any {
		t.Helper()
		resp, err := http.Get(url + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		return stats
	}

	off, _ := testServer(t, DefaultConfig(model.Tiny().Vocab))
	if stats := readStats(t, off.URL); stats["prefix_hits"] != nil {
		t.Errorf("/stats exposes prefix fields with the cache off: %v", stats)
	}

	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.PrefixCacheBytes = 4 << 20
	on, _ := testServer(t, cfg)
	// Serve the same prompt twice so the second admission hits the cache.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(on.URL+"/generate", "application/json",
			strings.NewReader(`{"prompt":[`+strings.Repeat("2,", 31)+`2],"max_new_tokens":3}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	stats := readStats(t, on.URL)
	for _, key := range []string{
		"prefix_hits", "prefix_misses", "prefix_hit_rate", "prefix_reused_tokens",
		"prefix_inserts", "prefix_evictions", "prefix_cache_bytes", "prefix_cache_capacity",
	} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing %q with the cache on", key)
		}
	}
	if stats["prefix_hits"].(float64) < 1 {
		t.Errorf("repeated prompt produced no cache hit: %v", stats)
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	srv, sched := testServer(t, DefaultConfig(model.Tiny().Vocab))
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}
	if health["state"] != "healthy" {
		t.Fatalf("/healthz state = %q, want healthy", health["state"])
	}

	// Serve one request so the counters are non-zero.
	post, err := http.Post(srv.URL+"/generate", "application/json",
		strings.NewReader(`{"prompt":[1,2,3],"max_new_tokens":3}`))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"uptime_sec", "queue_depth", "active_slots", "total_slots",
		"tokens_generated", "tokens_per_sec", "admitted", "completed",
		"canceled", "rejected", "batch_steps", "avg_occupancy",
		"queue_peak", "ttft_p50_ms", "ttft_p99_ms", "ttft_mean_ms",
		"tpot_mean_ms", "rejected_429", "spilled", "evicted",
		"breaker_state", "breaker_transitions", "pressure_level",
		"predicted_peak_bytes", "arena_capacity", "arena_peak",
		"estimate_ratio",
	} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing %q", key)
		}
	}
	if stats["admitted"].(float64) < 1 || stats["completed"].(float64) < 1 {
		t.Errorf("stats did not count the served request: %v", stats)
	}
	if m := sched.Metrics(); m.TotalSlots != DefaultConfig(model.Tiny().Vocab).Slots {
		t.Errorf("TotalSlots = %d", m.TotalSlots)
	}
}
