package serve

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
)

func testServer(t *testing.T, cfg Config) (*httptest.Server, *Scheduler) {
	t.Helper()
	m, err := model.NewModel(rand.New(rand.NewSource(modelSeed)), model.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(sched))
	t.Cleanup(func() {
		srv.Close()
		sched.Close()
	})
	return srv, sched
}

func TestHTTPGenerateJSON(t *testing.T) {
	srv, _ := testServer(t, DefaultConfig(model.Tiny().Vocab))
	resp, err := http.Post(srv.URL+"/generate", "application/json",
		strings.NewReader(`{"prompt":[1,2,3],"max_new_tokens":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Tokens) != 5 {
		t.Fatalf("got %d tokens %v, want 5", len(out.Tokens), out.Tokens)
	}
	want := soloReference(t, []int{1, 2, 3}, 5, -1)
	assertTokensEqual(t, "http json", out.Tokens, want)
}

func TestHTTPGenerateSSE(t *testing.T) {
	srv, _ := testServer(t, DefaultConfig(model.Tiny().Vocab))
	resp, err := http.Post(srv.URL+"/generate", "application/json",
		strings.NewReader(`{"prompt":[1,2,3],"max_new_tokens":4,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var tokens []int
	var done string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: done":
			if !sc.Scan() {
				t.Fatal("done event missing data line")
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &done); err != nil {
				t.Fatal(err)
			}
		case strings.HasPrefix(line, "data: "):
			var ev struct {
				Step  int `json:"step"`
				Token int `json:"token"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE event %q: %v", line, err)
			}
			if ev.Step != len(tokens) {
				t.Fatalf("event step %d out of order, want %d", ev.Step, len(tokens))
			}
			tokens = append(tokens, ev.Token)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done != "ok" {
		t.Fatalf("terminal status = %q, want ok", done)
	}
	want := soloReference(t, []int{1, 2, 3}, 4, -1)
	assertTokensEqual(t, "http sse", tokens, want)
}

func TestHTTPBadRequests(t *testing.T) {
	srv, _ := testServer(t, DefaultConfig(model.Tiny().Vocab))
	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"prompt":[1,2`},
		{"unknown field", `{"prompt":[1],"temperature":0.7}`},
		{"trailing data", `{"prompt":[1]}{"prompt":[2]}`},
		{"empty prompt", `{"prompt":[]}`},
		{"no prompt", `{}`},
		{"negative budget", `{"prompt":[1],"max_new_tokens":-3}`},
		{"oversize budget", `{"prompt":[1],"max_new_tokens":100000}`},
		{"token out of vocab", `{"prompt":[99999]}`},
		{"negative token", `{"prompt":[-1]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/generate", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/generate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /generate status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPQueueFull(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 1
	cfg.QueueDepth = 1
	srv, _ := testServer(t, cfg)

	// Occupy the only slot: start a long SSE request and read its first
	// token, which proves it is admitted and decoding.
	occupant, err := http.Post(srv.URL+"/generate", "application/json",
		strings.NewReader(`{"prompt":[1,2,3],"max_new_tokens":256,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer occupant.Body.Close() // closing cancels the occupant at cleanup
	sc := bufio.NewScanner(occupant.Body)
	for sc.Scan() && !strings.HasPrefix(sc.Text(), "data: ") {
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Fill the single queue entry; the blocking POST completes much later, so
	// watch /stats until the scheduler reports it enqueued.
	go func() {
		resp, err := http.Post(srv.URL+"/generate", "application/json",
			strings.NewReader(`{"prompt":[4,5],"max_new_tokens":256}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var stats struct {
			QueueDepth int `json:"queue_depth"`
		}
		err = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if stats.QueueDepth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Slot busy + queue full: the next request must bounce with 429.
	resp, err := http.Post(srv.URL+"/generate", "application/json",
		strings.NewReader(`{"prompt":[6],"max_new_tokens":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	srv, sched := testServer(t, DefaultConfig(model.Tiny().Vocab))
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}
	if health["state"] != "healthy" {
		t.Fatalf("/healthz state = %q, want healthy", health["state"])
	}

	// Serve one request so the counters are non-zero.
	post, err := http.Post(srv.URL+"/generate", "application/json",
		strings.NewReader(`{"prompt":[1,2,3],"max_new_tokens":3}`))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"uptime_sec", "queue_depth", "active_slots", "total_slots",
		"tokens_generated", "tokens_per_sec", "admitted", "completed",
		"canceled", "rejected", "batch_steps", "avg_occupancy",
		"queue_peak", "ttft_p50_ms", "ttft_p99_ms", "ttft_mean_ms",
		"tpot_mean_ms", "rejected_429", "spilled", "evicted",
		"breaker_state", "breaker_transitions", "pressure_level",
		"predicted_peak_bytes", "arena_capacity", "arena_peak",
		"estimate_ratio",
	} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing %q", key)
		}
	}
	if stats["admitted"].(float64) < 1 || stats["completed"].(float64) < 1 {
		t.Errorf("stats did not count the served request: %v", stats)
	}
	if m := sched.Metrics(); m.TotalSlots != DefaultConfig(model.Tiny().Vocab).Slots {
		t.Errorf("TotalSlots = %d", m.TotalSlots)
	}
}
