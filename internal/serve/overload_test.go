package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/threadpool"
)

// smallArenaEngine builds a Tiny engine whose arena leaves exactly kvHeadroom
// bytes beyond the weight working set, so watermark crossings are reachable
// with short sequences. The working set is probed from a throwaway engine
// (resident base + one streamed layer buffer under a no-prefetch policy).
func smallArenaEngine(t *testing.T, kvHeadroom int64, workers int) *runtime.Engine {
	t.Helper()
	probe := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	capacity := probe.ResidentBaseBytes() + probe.MaxStreamLayerBytes() + kvHeadroom

	m, err := model.NewModel(rand.New(rand.NewSource(modelSeed)), model.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	var pool *threadpool.Pool
	if workers > 1 {
		pool = threadpool.MustNew(workers)
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, capacity, pool)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// soloSessionReference replays one prompt through a dedicated single-slot
// session, optionally with the slot's KV quantized — the exactness baseline
// for requests the pressure ladder moved to quantized storage (lossy KV is
// still deterministic, so served output must equal this solo replay).
func soloSessionReference(t *testing.T, prompt []int, genLen int, quantized bool, qcfg quant.Config) []int {
	t.Helper()
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sess, err := eng.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	if quantized {
		if err := sess.SetQuantizeNewSlots(true, qcfg); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	tok, err := sess.AdmitKV(ctx, 0, prompt, quantized)
	if err != nil {
		t.Fatal(err)
	}
	out := []int{tok}
	for len(out) < genLen {
		toks, err := sess.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, toks[0].Token)
	}
	sess.Retire(0)
	return out
}

// overloadTrace is a seeded bursty arrival process: calm stretches at a
// sustainable pace interleaved with bursts arriving ~4x faster than the
// server drains, with ragged prompt lengths and budgets.
func overloadTrace(seed int64, n, vocab int) []arrival {
	rng := rand.New(rand.NewSource(seed))
	var out []arrival
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		burst := (i/8)%2 == 1
		if burst {
			at += time.Duration(rng.ExpFloat64() * float64(500*time.Microsecond))
		} else {
			at += time.Duration(rng.ExpFloat64() * float64(4*time.Millisecond))
		}
		plen := 4 + rng.Intn(28)
		prompt := make([]int, plen)
		for j := range prompt {
			prompt[j] = rng.Intn(vocab)
		}
		out = append(out, arrival{delay: at, req: Request{Prompt: prompt, MaxNewTokens: 8 + rng.Intn(56)}})
	}
	return out
}

// TestOverloadSoak is the chaos soak: a bursty 4x-rate trace against a
// deliberately tiny KV headroom, with transfer/mem-pressure fault windows
// toggling mid-burst. The server may shed load (structured overload errors)
// but must not OOM, panic, leak arena bytes, or corrupt anything: every
// request that completes is token-exact against a solo replay, the queue
// stays bounded, the admission estimate dominates the observed arena peak,
// and health returns to normal after the storm.
func TestOverloadSoak(t *testing.T) {
	n := 48
	if testing.Short() {
		n = 24
	}
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 3
	cfg.QueueDepth = 8
	cfg.MaxPromptLen = 64
	cfg.MaxNewTokens = 64
	cfg.HostKVBudget = 1 << 20

	eng := smallArenaEngine(t, 64<<10, 2)
	inj := faults.MustNew(13, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 0.05},
		faults.KVTransfer:     {Prob: 0.04},
		faults.MemPressure:    {Prob: 0.02, Max: 4},
	})
	inj.SetActive(false)
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(runtime.RetryConfig{MaxAttempts: 4})

	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fault windows: toggle the injector on and off while the trace runs.
	stopFaults := make(chan struct{})
	var faultWG sync.WaitGroup
	faultWG.Add(1)
	go func() {
		defer faultWG.Done()
		on := false
		for {
			select {
			case <-stopFaults:
				inj.SetActive(false)
				return
			case <-time.After(15 * time.Millisecond):
				on = !on
				inj.SetActive(on)
			}
		}
	}()

	trace := overloadTrace(21, n, cfg.Vocab)
	outs := make([][]int, len(trace))
	errs := make([]error, len(trace))
	kvq := make([]bool, len(trace))
	var wg sync.WaitGroup
	for i, a := range trace {
		wg.Add(1)
		go func(i int, a arrival) {
			defer wg.Done()
			time.Sleep(a.delay)
			st, err := sched.Submit(context.Background(), a.req)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = st.Wait()
			kvq[i] = st.KVQuantized()
		}(i, a)
	}
	wg.Wait()
	close(stopFaults)
	faultWG.Wait()

	completed, shed := 0, 0
	for i := range trace {
		switch {
		case errs[i] == nil:
			completed++
		case errors.Is(errs[i], ErrOverloaded) || errors.Is(errs[i], ErrQueueFull):
			shed++
		default:
			t.Fatalf("request %d failed with a non-overload error: %v", i, errs[i])
		}
	}
	if completed == 0 {
		t.Fatal("soak completed zero requests; server never recovered")
	}
	t.Logf("soak: %d completed, %d shed", completed, shed)

	// Token exactness for every completed request, against the reference
	// matching the storage mode the ladder chose for it.
	for i := range trace {
		if errs[i] != nil {
			continue
		}
		var want []int
		if kvq[i] {
			want = soloSessionReference(t, trace[i].req.Prompt, trace[i].req.MaxNewTokens, true, cfg.LadderKV)
		} else {
			want = soloReference(t, trace[i].req.Prompt, trace[i].req.MaxNewTokens, cfg.EOS)
		}
		assertTokensEqual(t, "soak request", outs[i], want)
	}

	m := sched.Metrics()
	if m.Serve.QueuePeak > cfg.QueueDepth {
		t.Errorf("queue peak %d exceeded bound %d", m.Serve.QueuePeak, cfg.QueueDepth)
	}
	if m.PredictedPeakBytes < eng.ArenaPeak() {
		t.Errorf("admission estimate %d below observed arena peak %d", m.PredictedPeakBytes, eng.ArenaPeak())
	}
	if m.EstimateRatio >= 2 {
		t.Errorf("over-estimate ratio %.2f not < 2x", m.EstimateRatio)
	}
	if got := eng.Stats().ArenaFreeErrorCount(); got != 0 {
		t.Errorf("%d arena free underflows during soak", got)
	}

	// Monotone recovery: with the storm over, health must walk back to
	// healthy within a bounded number of evaluations.
	recovered := false
	for i := 0; i < 10*cfg.HealthyStreak; i++ {
		if sched.Health() == Healthy {
			recovered = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !recovered {
		t.Errorf("health never returned to healthy post-burst (state %s)", sched.Health())
	}

	sched.Close()
	if used := eng.ArenaUsed(); used != 0 {
		t.Errorf("arena leak after soak drain: %d bytes", used)
	}
}

// TestEvictionResume drives the ladder to its last rung via a tiny host KV
// budget: one of two long-running raw requests is evicted mid-decode,
// re-queued, and resumed by re-prefilling prompt+produced — and still ends
// token-exact against the solo reference.
func TestEvictionResume(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	cfg.QueueDepth = 4
	cfg.MaxNewTokens = 64
	// Tiny host budget: two 64-token sequences overflow it mid-flight.
	cfg.HostKVBudget = 160 << 10

	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}

	reqs := []Request{
		{Prompt: []int{3, 1, 4, 1, 5, 9, 2, 6}, MaxNewTokens: 56},
		{Prompt: []int{2, 7, 1, 8, 2, 8, 1, 8}, MaxNewTokens: 56},
	}
	outs := make([][]int, len(reqs))
	errs := make([]error, len(reqs))
	kvq := make([]bool, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			st, err := sched.Submit(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = st.Wait()
			kvq[i] = st.KVQuantized()
		}(i, req)
	}
	wg.Wait()
	m := sched.Metrics()
	sched.Close()

	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		var want []int
		if kvq[i] {
			want = soloSessionReference(t, reqs[i].Prompt, reqs[i].MaxNewTokens, true, cfg.LadderKV)
		} else {
			want = soloReference(t, reqs[i].Prompt, reqs[i].MaxNewTokens, cfg.EOS)
		}
		assertTokensEqual(t, "evicted request", outs[i], want)
	}
	if m.Serve.Evicted < 1 {
		t.Errorf("host-budget squeeze evicted nothing (metrics %+v)", m.Serve)
	}
}

// TestSpillUnderArenaPressure drives the ladder's middle rungs from GPU-side
// pressure alone: requests sized to cross the high watermark mid-decode (but
// still fit absolutely) must first flip new slots to quantized storage (rung
// 1) and then spill the largest staged slot to the host (rung 2) — and every
// request still completes token-exact.
func TestSpillUnderArenaPressure(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	cfg.QueueDepth = 4

	// 32 KiB headroom: a 52-token sequence peaks at ~0.93 of it (above the
	// 0.85 watermark) while its slack-scaled footprint still fits.
	eng := smallArenaEngine(t, 32<<10, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}

	reqs := []Request{
		{Prompt: []int{3, 1, 4, 1, 5, 9, 2, 6}, MaxNewTokens: 44},
		{Prompt: []int{2, 7, 1, 8, 2, 8, 1, 8}, MaxNewTokens: 44},
	}
	outs := make([][]int, len(reqs))
	errs := make([]error, len(reqs))
	kvq := make([]bool, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			st, err := sched.Submit(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = st.Wait()
			kvq[i] = st.KVQuantized()
		}(i, req)
	}
	wg.Wait()
	m := sched.Metrics()
	sched.Close()

	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		var want []int
		if kvq[i] {
			want = soloSessionReference(t, reqs[i].Prompt, reqs[i].MaxNewTokens, true, cfg.LadderKV)
		} else {
			want = soloReference(t, reqs[i].Prompt, reqs[i].MaxNewTokens, cfg.EOS)
		}
		assertTokensEqual(t, "spilled request", outs[i], want)
	}
	if m.Serve.Spilled < 1 {
		t.Errorf("arena pressure spilled nothing (metrics %+v)", m.Serve)
	}
	if used := eng.ArenaUsed(); used != 0 {
		t.Errorf("arena leak after spill drain: %d bytes", used)
	}
}

// TestBreakerHysteresis pins the state machine: upgrades are immediate,
// downgrades need a full clean streak, and recovery from shedding passes
// through degraded.
func TestBreakerHysteresis(t *testing.T) {
	b := breaker{needStreak: 3}
	if st, _ := b.evaluate(breakerSignals{faults: true}); st != Degraded {
		t.Fatalf("one signal gave %s, want degraded", st)
	}
	if st, _ := b.evaluate(breakerSignals{faults: true, queueSwamped: true}); st != Shedding {
		t.Fatalf("two signals gave %s, want shedding", st)
	}
	// A lone critical arena signal is enough for shedding.
	b2 := breaker{needStreak: 3}
	if st, _ := b2.evaluate(breakerSignals{arenaCritical: true}); st != Shedding {
		t.Fatal("critical arena did not trip shedding")
	}
	// Two clean evaluations are not enough to step down...
	for i := 0; i < 2; i++ {
		if st, changed := b.evaluate(breakerSignals{}); changed || st != Shedding {
			t.Fatalf("downgrade after %d clean evals (state %s)", i+1, st)
		}
	}
	// ...the third is, and lands on degraded, not healthy.
	st, changed := b.evaluate(breakerSignals{})
	if !changed || st != Degraded {
		t.Fatalf("third clean eval gave %s (changed %v), want degraded", st, changed)
	}
	// A dirty evaluation mid-streak resets it.
	b.evaluate(breakerSignals{})
	b.evaluate(breakerSignals{})
	b.evaluate(breakerSignals{faults: true, ladderHigh: true}) // back to shedding
	if st, _ := b.evaluate(breakerSignals{}); st != Shedding {
		t.Fatalf("streak survived a dirty evaluation: %s", st)
	}
	if n := b.transitionCount(); n == 0 {
		t.Error("transition counter never moved")
	}
}

// TestSheddingRejectsSubmissions: a breaker forced to shedding turns
// submissions away with a structured 503-style error before they queue.
func TestSheddingRejectsSubmissions(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	sched.brk.evaluate(breakerSignals{arenaCritical: true})
	_, err = sched.Submit(context.Background(), Request{Prompt: []int{1, 2}, MaxNewTokens: 4})
	var ovl *OverloadError
	if !errors.As(err, &ovl) || ovl.Reason != "shedding" {
		t.Fatalf("shedding submit returned %v, want OverloadError{shedding}", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("OverloadError does not match ErrOverloaded sentinel")
	}
	if got := sched.Metrics().Serve.Rejected429; got < 1 {
		t.Errorf("Rejected429 = %d after a shed submission", got)
	}
}

// TestNeverFitsRejected: a request whose footprint can never fit the arena
// is rejected at submit time, not queued to fail later.
func TestNeverFitsRejected(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.MaxPromptLen = 4096
	cfg.MaxNewTokens = 1 << 20

	eng := smallArenaEngine(t, 32<<10, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	// 32 KiB headroom holds ~64 Tiny tokens (512 B/token scaled); ask for
	// far more.
	prompt := make([]int, 64)
	_, err = sched.Submit(context.Background(), Request{Prompt: prompt, MaxNewTokens: 4096})
	var ovl *OverloadError
	if !errors.As(err, &ovl) || ovl.Reason != "never-fits" {
		t.Fatalf("oversize request returned %v, want OverloadError{never-fits}", err)
	}

	// A modest request on the same scheduler still completes.
	st, err := sched.Submit(context.Background(), Request{Prompt: []int{1, 2, 3}, MaxNewTokens: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Wait(); err != nil {
		t.Fatalf("small request after a never-fits rejection failed: %v", err)
	}
}

// TestFaultWindowGating: an inactive injector must fire nothing, and
// reactivation restores fault injection — the soak harness depends on both.
func TestFaultWindowGating(t *testing.T) {
	inj := faults.MustNew(5, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 1.0},
	})
	inj.SetActive(false)
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(runtime.RetryConfig{MaxAttempts: 3})
	if _, err := eng.Generate(context.Background(), [][]int{{1, 2, 3}}, 2); err != nil {
		t.Fatalf("generation failed with an inactive injector: %v", err)
	}
	if n := len(inj.Counts()); n != 0 {
		t.Fatalf("inactive injector fired %d sites", n)
	}
	inj.SetActive(true)
	if _, err := eng.Generate(context.Background(), [][]int{{1, 2, 3}}, 2); err == nil && len(inj.Counts()) == 0 {
		t.Fatal("reactivated injector never fired")
	}
}
