package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
)

// TestSwapTokenExactAcrossBoundary is the differential guarantee behind the
// whole adapt loop: hot-swapping the exec policy repeatedly while a batch is
// mid-generation changes not one served token relative to the sequential
// reference.
func TestSwapTokenExactAcrossBoundary(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	eng := tinyEngine(t, runtime.Policy{IntraOp: 2, Prefetch: true}, 3)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{
		{1, 2, 3, 4},
		{9, 8, 7, 6, 5},
		{20, 21, 22},
		{40, 41, 42, 43},
	}
	const genLen = 16
	outs := make([][]int, len(prompts))
	errs := make([]error, len(prompts))
	var wg sync.WaitGroup
	for i, p := range prompts {
		wg.Add(1)
		go func(i int, prompt []int) {
			defer wg.Done()
			st, err := sched.Submit(context.Background(), Request{Prompt: prompt, MaxNewTokens: genLen})
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = st.Wait()
		}(i, p)
	}
	// Hammer swaps from outside while generation runs: widths up and down,
	// prefetch toggled. Every application lands on a step boundary.
	swaps := []runtime.ExecPolicy{
		{IntraOp: 1},
		{IntraOp: 3, Prefetch: true},
		{IntraOp: 2, InterOp: 2},
		{IntraOp: 1, StepTimeout: time.Second},
		{IntraOp: 2, Prefetch: true},
	}
	for i := 0; i < 20; i++ {
		if err := sched.RequestSwap(swaps[i%len(swaps)]); err != nil {
			t.Fatalf("swap %d refused: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	m := sched.Metrics()
	sched.Close()
	if m.SwapsApplied == 0 {
		t.Fatal("no swap was ever applied during the run")
	}
	for i := range prompts {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		want := soloReference(t, prompts[i], genLen, cfg.EOS)
		assertTokensEqual(t, "swapped request", outs[i], want)
	}
}

// TestSwapInterlocks: swaps are refused while the breaker is anything but
// Healthy, invalid policies are rejected eagerly, Stable mirrors the breaker,
// and a closed scheduler refuses.
func TestSwapInterlocks(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Stable() {
		t.Fatal("fresh idle scheduler must be stable")
	}
	if err := sched.RequestSwap(runtime.ExecPolicy{IntraOp: 0}); err == nil {
		t.Fatal("invalid policy accepted")
	}

	before := sched.ExecPolicy()
	for _, st := range []BreakerState{Degraded, Shedding} {
		sched.brk.mu.Lock()
		sched.brk.state = st
		sched.brk.mu.Unlock()
		if sched.Stable() {
			t.Fatalf("Stable() true while breaker %v", st)
		}
		if err := sched.RequestSwap(runtime.ExecPolicy{IntraOp: 2}); err == nil {
			t.Fatalf("swap accepted while breaker %v", st)
		}
	}
	if got := sched.ExecPolicy(); got != before {
		t.Fatalf("refused swaps mutated policy: %+v", got)
	}
	m := sched.Metrics()
	if m.SwapsRefused != 2 || m.SwapsApplied != 0 {
		t.Fatalf("refusal accounting: applied=%d refused=%d, want 0/2", m.SwapsApplied, m.SwapsRefused)
	}

	// Back to healthy: the swap lands and the mirror follows.
	sched.brk.mu.Lock()
	sched.brk.state = Healthy
	sched.brk.mu.Unlock()
	want := runtime.ExecPolicy{IntraOp: 1, Prefetch: false, StepTimeout: 500 * time.Millisecond}
	if err := sched.RequestSwap(want); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sched.ExecPolicy() != want {
		if time.Now().After(deadline) {
			t.Fatalf("swap never applied; policy still %+v", sched.ExecPolicy())
		}
		time.Sleep(time.Millisecond)
	}
	sched.Close()
	if err := sched.RequestSwap(runtime.ExecPolicy{IntraOp: 1}); err == nil {
		t.Fatal("swap accepted after Close")
	}
}

// TestSwapApplyTimeRecheck: a swap accepted while Healthy is dropped at the
// step boundary if the breaker degraded in between — the apply-time interlock
// the request-time check cannot cover.
func TestSwapApplyTimeRecheck(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	// Park a pending swap without waking the loop (the scheduler is idle and
	// blocked on wake; planting state directly models "breaker tripped between
	// request and apply").
	p := runtime.ExecPolicy{IntraOp: 2}
	sched.mu.Lock()
	sched.pendingSwap = &p
	sched.mu.Unlock()
	sched.brk.mu.Lock()
	sched.brk.state = Shedding
	sched.brk.mu.Unlock()
	before := sched.ExecPolicy()
	sched.kick()
	deadline := time.Now().Add(2 * time.Second)
	for {
		m := sched.Metrics()
		if m.SwapsRefused >= 1 {
			if m.SwapsApplied != 0 {
				t.Fatalf("swap applied despite shedding breaker: %+v", m)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("apply-time refusal never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	if got := sched.ExecPolicy(); got != before {
		t.Fatalf("policy changed despite refusal: %+v", got)
	}
	// Restore health so Close's drain isn't affected by the planted state.
	sched.brk.mu.Lock()
	sched.brk.state = Healthy
	sched.brk.mu.Unlock()
}
