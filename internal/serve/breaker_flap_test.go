package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/runtime"
)

// TestBreakerHysteresisLadder pins the state machine's asymmetry: upgrades
// are immediate, downgrades take HealthyStreak consecutive clean evaluations,
// recovery is one level at a time, and a single dirty evaluation resets the
// streak — a flapping signal cannot tunnel the breaker back to Healthy.
func TestBreakerHysteresisLadder(t *testing.T) {
	b := &breaker{needStreak: 3}

	// Two raised signals jump straight to Shedding.
	if st, changed := b.evaluate(breakerSignals{faults: true, queueSwamped: true}); st != Shedding || !changed {
		t.Fatalf("two signals -> (%v, %v), want immediate Shedding", st, changed)
	}

	// Clean evaluations: no change until the streak completes, then exactly
	// one level down (Shedding recovers through Degraded, never skips).
	for i := 0; i < 2; i++ {
		if st, changed := b.evaluate(breakerSignals{}); st != Shedding || changed {
			t.Fatalf("clean eval %d -> (%v, %v), want Shedding unchanged (streak %d/3)", i+1, st, changed, i+1)
		}
	}
	if st, _ := b.evaluate(breakerSignals{}); st != Degraded {
		t.Fatalf("third clean eval -> %v, want Degraded (one level at a time)", st)
	}

	// Flap: two clean evals, then a raised signal. The streak must reset —
	// Degraded persists through the next two clean evals.
	b.evaluate(breakerSignals{})
	b.evaluate(breakerSignals{})
	if st, _ := b.evaluate(breakerSignals{faults: true}); st != Degraded {
		t.Fatalf("dirty eval at Degraded -> %v, want Degraded (matching target holds)", st)
	}
	for i := 0; i < 2; i++ {
		if st, changed := b.evaluate(breakerSignals{}); st != Degraded || changed {
			t.Fatalf("post-flap clean eval %d -> (%v, %v), want Degraded (streak must have reset)", i+1, st, changed)
		}
	}
	if st, _ := b.evaluate(breakerSignals{}); st != Healthy {
		t.Fatalf("final clean eval -> %v, want Healthy", st)
	}

	// An arena-critical signal sheds regardless of count.
	if st, _ := b.evaluate(breakerSignals{arenaCritical: true}); st != Shedding {
		t.Fatalf("arena-critical -> %v, want Shedding", st)
	}
}

// TestBreakerFlapUnderConcurrentSubmit drives a live scheduler with
// concurrent submissions while the fault-injection window flaps open and
// closed. Invariants: every request ends with a definite status (tokens,
// overload, or queue-full), the breaker leaves Healthy while faults flap and
// walks back down after the window closes for good, and no torn state
// appears under the race detector.
func TestBreakerFlapUnderConcurrentSubmit(t *testing.T) {
	if testing.Short() {
		t.Skip("flap soak skipped in -short")
	}
	vocab := model.Tiny().Vocab
	cfg := DefaultConfig(vocab)
	cfg.Slots = 2
	cfg.QueueDepth = 8
	cfg.MaxPromptLen = 64
	cfg.MaxNewTokens = 8
	cfg.DefaultNewTokens = 4
	cfg.HealthyStreak = 2

	eng := smallArenaEngine(t, 96<<10, 1)
	inj := faults.MustNew(29, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 0.3},
		faults.KVTransfer:     {Prob: 0.25},
	})
	inj.SetActive(false)
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(runtime.RetryConfig{MaxAttempts: 6, Jitter: false})

	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	// Flapper: open and close the fault window on a short period while load
	// runs, ending closed.
	stopFlap := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		active := false
		for {
			select {
			case <-stopFlap:
				inj.SetActive(false)
				return
			case <-time.After(15 * time.Millisecond):
				active = !active
				inj.SetActive(active)
			}
		}
	}()

	// Health watcher: sample the breaker concurrently with the loop's own
	// evaluations — this is the cross-goroutine read the race detector vets.
	var sawDegradedOrWorse sync.Once
	degraded := make(chan struct{})
	stopWatch := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		for {
			select {
			case <-stopWatch:
				return
			case <-time.After(2 * time.Millisecond):
				if sched.Health() != Healthy {
					sawDegradedOrWorse.Do(func() { close(degraded) })
				}
			}
		}
	}()

	const n = 48
	rng := rand.New(rand.NewSource(5))
	var mu sync.Mutex
	completed, shed := 0, 0
	var firstBad error
	var reqWG sync.WaitGroup
	for i := 0; i < n; i++ {
		prompt := make([]int, 3+rng.Intn(6))
		for j := range prompt {
			prompt[j] = rng.Intn(vocab)
		}
		reqWG.Add(1)
		go func(prompt []int) {
			defer reqWG.Done()
			st, err := sched.Submit(context.Background(), Request{Prompt: prompt, MaxNewTokens: 3})
			if err == nil {
				_, err = st.Wait()
			}
			mu.Lock()
			defer mu.Unlock()
			var ovl *OverloadError
			switch {
			case err == nil:
				completed++
			case errors.As(err, &ovl), errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
				shed++
			default:
				if firstBad == nil {
					firstBad = err
				}
			}
		}(prompt)
		time.Sleep(time.Duration(rng.ExpFloat64() * float64(3*time.Millisecond)))
	}
	reqWG.Wait()
	close(stopFlap)
	flapWG.Wait()
	close(stopWatch)
	watchWG.Wait()

	if firstBad != nil {
		t.Fatalf("request ended without a definite status: %v", firstBad)
	}
	if completed+shed != n {
		t.Fatalf("accounted %d of %d requests", completed+shed, n)
	}
	if completed == 0 {
		t.Fatal("no request completed across the flap windows")
	}

	// With aggressive fault rates the breaker must have left Healthy at some
	// point (the watcher or the transition counter caught it).
	select {
	case <-degraded:
	default:
		if sched.Metrics().BreakerTransitions == 0 {
			t.Fatal("breaker never left Healthy despite 30% fault windows")
		}
	}

	// After the window closes for good, hysteresis walks the breaker back to
	// Healthy — one level per HealthyStreak clean evaluations, evaluated
	// lazily by Health() even on an idle server.
	deadline := time.Now().Add(10 * time.Second)
	for sched.Health() != Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("breaker stuck at %v after faults stopped", sched.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("flap soak: %d completed, %d shed, %d breaker transitions",
		completed, shed, sched.Metrics().BreakerTransitions)
}
