package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// fqPending builds a queue-only pending (no stream or context needed for
// fairQueue unit tests).
func fqPending(tenant string) *pending {
	return &pending{tenant: tenant, req: Request{Prompt: []int{1}, MaxNewTokens: 1}}
}

func fairCfg(tenants map[string]TenantConfig) Config {
	cfg := DefaultConfig(128)
	cfg.Tenants = tenants
	return cfg
}

func alwaysEligible(string) bool { return true }

func TestFairQueueSingleTenantFIFO(t *testing.T) {
	cfg := DefaultConfig(128)
	cfg.QueueDepth = 2
	q := newFairQueue(cfg)
	a, b, c := fqPending(""), fqPending(""), fqPending("")
	if err := q.push(a); err != nil {
		t.Fatal(err)
	}
	if err := q.push(b); err != nil {
		t.Fatal(err)
	}
	if err := q.push(c); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull push: %v", err)
	}
	if got := q.next(alwaysEligible); got != a {
		t.Fatal("FIFO order violated")
	}
	q.take(a)
	if got := q.next(alwaysEligible); got != b {
		t.Fatal("FIFO order violated after take")
	}
	// The resume lane preempts the FIFO and ignores capacity.
	r := fqPending("")
	q.pushFront(r)
	if err := q.push(c); err != nil {
		t.Fatalf("push after take: %v", err)
	}
	if got := q.next(alwaysEligible); got != r {
		t.Fatal("resume lane not dispatched first")
	}
	q.take(r)
	q.take(b)
	q.take(c)
	if q.len() != 0 {
		t.Fatalf("leftover %d", q.len())
	}
}

func TestFairQueueWeightedRoundRobin(t *testing.T) {
	q := newFairQueue(fairCfg(map[string]TenantConfig{
		"a": {Slots: 4, Weight: 3},
		"b": {Slots: 4, Weight: 1},
	}))
	for i := 0; i < 9; i++ {
		if err := q.push(fqPending("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := q.push(fqPending("b")); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for {
		p := q.next(alwaysEligible)
		if p == nil {
			break
		}
		q.take(p)
		order = append(order, p.tenant)
	}
	// Weight 3:1 → each full round is aaab.
	if got := strings.Join(order, ""); got != "aaabaaabaaab" {
		t.Fatalf("dispatch order %q, want aaabaaabaaab", got)
	}
}

func TestFairQueueEligibilitySkips(t *testing.T) {
	q := newFairQueue(fairCfg(map[string]TenantConfig{
		"a": {Slots: 1, Weight: 1},
		"b": {Slots: 1, Weight: 1},
	}))
	pa, pb := fqPending("a"), fqPending("b")
	if err := q.push(pa); err != nil {
		t.Fatal(err)
	}
	if err := q.push(pb); err != nil {
		t.Fatal(err)
	}
	blocked := map[string]bool{"a": true}
	elig := func(name string) bool { return !blocked[name] }
	if got := q.next(elig); got != pb {
		t.Fatal("ineligible tenant not skipped")
	}
	q.take(pb)
	blocked["b"] = true
	if got := q.next(elig); got != nil {
		t.Fatal("dispatch from fully ineligible set")
	}
	blocked = map[string]bool{}
	if got := q.next(elig); got != pa {
		t.Fatal("re-eligible tenant not dispatched")
	}
}

func TestFairQueueUnknownTenantRejected(t *testing.T) {
	q := newFairQueue(fairCfg(map[string]TenantConfig{"a": {Slots: 1}}))
	if err := q.push(fqPending("ghost")); err == nil {
		t.Fatal("push of unresolved tenant must fail")
	}
	// The reserved default lane exists even without an explicit entry.
	if err := q.push(fqPending(DefaultTenant)); err != nil {
		t.Fatal(err)
	}
}

// FuzzFairShareQueue drives arbitrary push/dispatch/complete interleavings
// over three tenants with fuzzed weights, quotas, and queue depths, checking
// the queueing invariants: per-tenant depth never exceeds its capacity, push
// fails exactly when the owning queue is full, dispatches never violate the
// active-slot quota the eligibility callback encodes, nothing is lost or
// duplicated, and — over the final drain with everything eligible — no
// continuously-backlogged tenant is starved past two full credit rounds.
func FuzzFairShareQueue(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0xff, 0x41}, uint8(3), uint8(1), uint8(2), uint8(1), uint8(2), uint8(3))
	f.Add([]byte{0x10, 0x21, 0x32, 0x03, 0x14, 0x25}, uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, ops []byte, wA, wB, wC, qA, qB, qC uint8) {
		names := []string{"a", "b", "c"}
		weights := map[string]int{"a": 1 + int(wA%8), "b": 1 + int(wB%8), "c": 1 + int(wC%8)}
		quotas := map[string]int{"a": 1 + int(qA%4), "b": 1 + int(qB%4), "c": 1 + int(qC%4)}
		const depth = 8
		tenants := map[string]TenantConfig{}
		for _, n := range names {
			tenants[n] = TenantConfig{Slots: quotas[n], Weight: weights[n], QueueDepth: depth}
		}
		cfg := fairCfg(tenants)
		cfg.QueueDepth = depth
		q := newFairQueue(cfg)

		active := map[string]int{}
		var inflight []*pending
		pushed, dispatched, failed := 0, 0, 0
		eligible := func(name string) bool { return active[name] < quotas[name] }

		dispatch := func() {
			p := q.next(eligible)
			if p == nil {
				return
			}
			if active[p.tenant] >= quotas[p.tenant] {
				t.Fatalf("dispatched %s past quota %d", p.tenant, quotas[p.tenant])
			}
			before := q.len()
			q.take(p)
			if q.len() != before-1 {
				t.Fatalf("take changed len by %d", before-q.len())
			}
			active[p.tenant]++
			inflight = append(inflight, p)
			dispatched++
		}

		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // push to tenant op>>2 % 3
				name := names[int(op>>2)%3]
				before := q.depth(name)
				err := q.push(fqPending(name))
				if err != nil {
					if before != depth {
						t.Fatalf("push to %s failed at depth %d (cap %d)", name, before, depth)
					}
					failed++
				} else {
					if before >= depth {
						t.Fatalf("push to %s succeeded at depth %d (cap %d)", name, before, depth)
					}
					pushed++
				}
			case 2:
				dispatch()
			case 3: // complete the oldest in-flight request
				if len(inflight) > 0 {
					done := inflight[0]
					inflight = inflight[1:]
					active[done.tenant]--
				}
			}
			total := 0
			for _, n := range names {
				d := q.depth(n)
				if d > depth {
					t.Fatalf("tenant %s depth %d exceeds cap %d", n, d, depth)
				}
				total += d
			}
			total += q.depth(DefaultTenant)
			if total != q.len() {
				t.Fatalf("depth sum %d != len %d", total, q.len())
			}
		}

		// Final drain, everything eligible: every queued request must come
		// out exactly once, and any tenant continuously backlogged through a
		// window of two full credit rounds must be dispatched in that window.
		for _, p := range inflight {
			active[p.tenant]--
			_ = p
		}
		for k := range active {
			active[k] = 0
		}
		sumWeights := 0
		for _, n := range names {
			sumWeights += weights[n]
		}
		window := 2 * sumWeights
		var seq []string
		backlogged := map[string][]bool{}
		for {
			p := q.next(alwaysEligible)
			if p == nil {
				break
			}
			for _, n := range names {
				backlogged[n] = append(backlogged[n], q.depth(n) > 0)
			}
			q.take(p)
			seq = append(seq, p.tenant)
			if len(seq) > pushed+dispatched+1000 {
				t.Fatal("drain does not terminate")
			}
		}
		if q.len() != 0 {
			t.Fatalf("drain left %d queued", q.len())
		}
		if dispatched+len(seq) != pushed {
			t.Fatalf("pushed %d but dispatched %d + drained %d", pushed, dispatched, len(seq))
		}
		for _, n := range names {
			for start := 0; start+window <= len(seq); start++ {
				covered := true
				hit := false
				for i := start; i < start+window; i++ {
					if !backlogged[n][i] {
						covered = false
						break
					}
					if seq[i] == n {
						hit = true
					}
				}
				if covered && !hit {
					t.Fatalf("tenant %s (weight %d) starved through window %d..%d of %v",
						n, weights[n], start, start+window, seq)
				}
			}
		}
	})
}

// tenantScheduler builds a scheduler on a tiny engine with the given tenant
// map and returns it with its vocab.
func tenantScheduler(t *testing.T, tenants map[string]TenantConfig, mutate func(*Config)) *Scheduler {
	t.Helper()
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	cfg.Tenants = tenants
	if mutate != nil {
		mutate(&cfg)
	}
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestTenantSuspendedPermanent(t *testing.T) {
	sched := tenantScheduler(t, map[string]TenantConfig{
		"open":   {Slots: 2},
		"frozen": {Slots: 0},
	}, nil)
	defer sched.Close()
	_, err := sched.Submit(context.Background(), Request{Prompt: []int{1, 2}, MaxNewTokens: 2, Tenant: "frozen"})
	var ovl *OverloadError
	if !errors.As(err, &ovl) || !ovl.Permanent || ovl.Reason != "tenant-suspended" {
		t.Fatalf("suspended tenant submit: %v", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("suspension must match ErrOverloaded")
	}
	// The suspension maps to HTTP 422 with no Retry-After.
	rec := httptest.NewRecorder()
	WriteOverload(rec, ovl)
	if rec.Code != 422 {
		t.Fatalf("status %d, want 422", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("permanent rejection must not carry Retry-After")
	}
	// A healthy tenant is unaffected.
	st, err := sched.Submit(context.Background(), Request{Prompt: []int{1, 2}, MaxNewTokens: 2, Tenant: "open"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestTenantQuotaBoundsActiveSlots(t *testing.T) {
	sched := tenantScheduler(t, map[string]TenantConfig{
		"small": {Slots: 1, Weight: 1},
	}, func(c *Config) { c.Slots = 3 })
	defer sched.Close()
	const n = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violation error
	var vmu sync.Mutex
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := sched.Metrics()
			if tm, ok := m.Tenants["small"]; ok && tm.Active > 1 {
				vmu.Lock()
				violation = errors.New("tenant small exceeded its 1-slot quota")
				vmu.Unlock()
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := sched.Submit(context.Background(), Request{
				Prompt: []int{1 + i%8, 2, 3}, MaxNewTokens: 6, Tenant: "small"})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := st.Wait(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	vmu.Lock()
	defer vmu.Unlock()
	if violation != nil {
		t.Fatal(violation)
	}
	m := sched.Metrics()
	tm := m.Tenants["small"]
	if tm.Submitted != n || tm.Admitted != n || tm.Completed != n {
		t.Fatalf("tenant counters %+v, want %d submitted/admitted/completed", tm, n)
	}
}

func TestUnknownTenantBillsDefault(t *testing.T) {
	sched := tenantScheduler(t, map[string]TenantConfig{
		"vip": {Slots: 2, Weight: 2},
	}, nil)
	defer sched.Close()
	st, err := sched.Submit(context.Background(), Request{Prompt: []int{3, 4}, MaxNewTokens: 2, Tenant: "nobody"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Wait(); err != nil {
		t.Fatal(err)
	}
	m := sched.Metrics()
	tm, ok := m.Tenants[DefaultTenant]
	if !ok || tm.Completed != 1 {
		t.Fatalf("unknown tenant not billed to %q: %+v", DefaultTenant, m.Tenants)
	}
}

func TestTenantStatsPayload(t *testing.T) {
	sched := tenantScheduler(t, map[string]TenantConfig{
		"pro": {Slots: 2, Weight: 3},
	}, nil)
	defer sched.Close()
	st, err := sched.Submit(context.Background(), Request{Prompt: []int{5, 6}, MaxNewTokens: 2, Tenant: "pro"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Wait(); err != nil {
		t.Fatal(err)
	}
	payload := statsPayload(sched.Metrics())
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Tenants map[string]TenantMetrics `json:"tenants"`
		Drain   *float64                 `json:"predicted_drain_ms"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Drain == nil {
		t.Fatal("/stats missing predicted_drain_ms")
	}
	if decoded.Tenants["pro"].Completed != 1 {
		t.Fatalf("/stats tenants payload %+v", decoded.Tenants)
	}
}

// TestFairShareNoStarvationUnderFlood: a batch tenant floods the queue ahead
// of an interactive tenant; with fair-share scheduling the interactive
// request still completes while batch work remains queued.
func TestFairShareNoStarvationUnderFlood(t *testing.T) {
	sched := tenantScheduler(t, map[string]TenantConfig{
		"batch": {Slots: 1, Weight: 1, QueueDepth: 64},
		"inter": {Slots: 1, Weight: 1},
	}, func(c *Config) { c.Slots = 2 })
	defer sched.Close()
	const flood = 24
	streams := make([]*Stream, 0, flood)
	for i := 0; i < flood; i++ {
		st, err := sched.Submit(context.Background(), Request{
			Prompt: []int{1 + i%7, 2}, MaxNewTokens: 8, Tenant: "batch"})
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, st)
	}
	st, err := sched.Submit(context.Background(), Request{Prompt: []int{9, 9}, MaxNewTokens: 2, Tenant: "inter"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-st.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("interactive request starved behind the batch flood")
	}
	m := sched.Metrics()
	if m.Tenants["batch"].Completed == flood {
		t.Fatal("interactive request finished only after the whole flood drained")
	}
	for _, bs := range streams {
		if _, err := bs.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialMultiTenantChat replays a generated multi-tenant chat
// workload (shared-prefix sessions, fair-share quotas, prefix cache on)
// through the scheduler and checks every request's tokens against a solo
// Generate replay — the PR 2 differential contract extended to the workload
// generators.
func TestDifferentialMultiTenantChat(t *testing.T) {
	trace := workload.AssignTenants(
		workload.Chat(workload.Spec{Seed: 77, N: 36, Vocab: model.Tiny().Vocab}),
		7, "free", "pro")
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 2)
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 3
	cfg.Tenants = map[string]TenantConfig{
		"free": {Slots: 1, Weight: 1},
		"pro":  {Slots: 2, Weight: 3},
	}
	cfg.PrefixCacheBytes = 1 << 20
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]int, len(trace))
	errs := make([]error, len(trace))
	var wg sync.WaitGroup
	start := time.Now()
	for i, r := range trace {
		wg.Add(1)
		go func(i int, r workload.Request) {
			defer wg.Done()
			if d := time.Until(start.Add(r.At)); d > 0 {
				time.Sleep(d)
			}
			st, err := sched.Submit(context.Background(), Request{
				Prompt: r.Prompt, MaxNewTokens: r.MaxNewTokens, Tenant: r.Tenant})
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = st.Wait()
		}(i, r)
	}
	wg.Wait()
	sched.Close()
	for i, r := range trace {
		if errs[i] != nil {
			t.Fatalf("request %d (%s sess=%d turn=%d): %v", i, r.Tenant, r.Session, r.Turn, errs[i])
		}
		want := soloReference(t, r.Prompt, r.MaxNewTokens, cfg.EOS)
		assertTokensEqual(t, "chat request "+itoa(i), outs[i], want)
	}
	m := sched.Metrics()
	if m.Tenants["free"].Completed+m.Tenants["pro"].Completed != int64(len(trace)) {
		t.Fatalf("tenant completion counters %+v do not cover the trace", m.Tenants)
	}
	if m.Serve.PrefixHits == 0 {
		t.Fatal("chat workload produced no prefix-cache hits")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestServeSampleCapConfigurable is the ring-capacity regression test: with
// the default cap a long cell overwrites its earliest samples; configuring
// LatencySampleCap preserves them. Exercised at the Stats layer with
// deterministic samples.
func TestServeSampleCapConfigurable(t *testing.T) {
	small := runtime.NewStats()
	small.SetServeSampleCap(8)
	large := runtime.NewStats()
	large.SetServeSampleCap(64)
	// 32 admissions: a huge early TTFT followed by tiny ones. A ring that
	// drops early samples forgets the spike; a large-enough one keeps it.
	feed := func(st *runtime.Stats) {
		st.RecordAdmission(10 * time.Second)
		for i := 0; i < 31; i++ {
			st.RecordAdmission(time.Millisecond)
		}
	}
	feed(small)
	feed(large)
	if p99 := small.ServeSummary().TTFTP99; p99 >= 10*time.Second {
		t.Fatalf("8-sample ring kept the overwritten spike: p99 %v", p99)
	}
	if p99 := large.ServeSummary().TTFTP99; p99 < 10*time.Second {
		t.Fatalf("64-sample ring lost the early spike: p99 %v", p99)
	}
	// The cap latches at the first sample: resizing afterwards must not
	// corrupt or drop what is already recorded.
	large.SetServeSampleCap(4)
	large.RecordAdmission(time.Millisecond)
	if got := large.ServeSummary().Admitted; got != 33 {
		t.Fatalf("admitted %d after post-latch resize, want 33", got)
	}
}

func TestParseTenantSpec(t *testing.T) {
	tcs, err := ParseTenantSpec("free=1, pro=2/3, batch=1/1/16, off=0")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]TenantConfig{
		"free":  {Slots: 1},
		"pro":   {Slots: 2, Weight: 3},
		"batch": {Slots: 1, Weight: 1, QueueDepth: 16},
		"off":   {Slots: 0},
	}
	if len(tcs) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(tcs), len(want))
	}
	for name, w := range want {
		if got := tcs[name]; got != w {
			t.Errorf("tenant %s = %+v, want %+v", name, got, w)
		}
	}
	for _, bad := range []string{
		"", "   ", "free", "=1", "free=1/2/3/4", "free=x", "free=-1",
		"free=1/0", "free=1,free=2",
	} {
		if _, err := ParseTenantSpec(bad); err == nil {
			t.Errorf("ParseTenantSpec(%q) accepted, want error", bad)
		}
	}
}
