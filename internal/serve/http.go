package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// maxRequestBody bounds /generate request bodies; a prompt at MaxPromptLen
// encodes far below this.
const maxRequestBody = 1 << 20

// GenerateRequest is the /generate JSON wire format.
type GenerateRequest struct {
	Prompt       []int `json:"prompt"`
	MaxNewTokens int   `json:"max_new_tokens,omitempty"`
	// Stream selects SSE token streaming instead of a single JSON response.
	Stream bool `json:"stream,omitempty"`
	// Tenant bills the request under a configured tenant (fair-share quotas
	// and per-tenant /stats); empty maps to the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// GenerateResponse is the non-streaming /generate reply.
type GenerateResponse struct {
	Tokens []int `json:"tokens"`
}

// DecodeGenerateRequest parses and validates a /generate body against the
// serving limits, returning the normalized request and the streaming flag.
// It is the fuzzed admission surface: any malformed, oversize, or
// out-of-range input must return an error, never panic or produce a request
// the scheduler would refuse.
func DecodeGenerateRequest(body []byte, cfg Config) (Request, bool, error) {
	if len(body) > maxRequestBody {
		return Request{}, false, fmt.Errorf("serve: request body %d bytes exceeds %d", len(body), maxRequestBody)
	}
	var wire GenerateRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return Request{}, false, fmt.Errorf("serve: malformed request: %w", err)
	}
	// Trailing garbage after the JSON object is malformed too.
	if dec.More() {
		return Request{}, false, fmt.Errorf("serve: trailing data after request object")
	}
	req, err := cfg.normalize(Request{Prompt: wire.Prompt, MaxNewTokens: wire.MaxNewTokens, Tenant: wire.Tenant})
	if err != nil {
		return Request{}, false, err
	}
	return req, wire.Stream, nil
}

// NewHandler exposes the scheduler over HTTP: POST /generate (JSON in,
// JSON or SSE out), GET /healthz, and GET /stats.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		state := s.Health()
		w.Header().Set("Content-Type", "application/json")
		if state == Shedding {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, map[string]string{"state": state.String()})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, statsPayload(s.Metrics()))
	})
	mux.HandleFunc("/generate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, stream, err := DecodeGenerateRequest(body, s.cfg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := s.Submit(r.Context(), req)
		var ovl *OverloadError
		switch {
		case errors.As(err, &ovl):
			WriteOverload(w, ovl)
			return
		case errors.Is(err, ErrQueueFull):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case errors.Is(err, ErrClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if stream {
			streamSSE(w, st)
			return
		}
		tokens, err := st.Wait()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, GenerateResponse{Tokens: tokens})
	})
	return mux
}

// WriteOverload maps a structured admission rejection onto the wire: 503
// when the breaker is shedding and 429 for transient memory/latency
// pressure, both carrying a Retry-After header (whole seconds, rounded up,
// only when the drain predictor has an estimate); permanent rejections — a
// request that can never fit this deployment — return 422 with no
// Retry-After, so a well-behaved client stops resubmitting a request no
// amount of waiting can admit. The JSON body always carries the
// machine-readable cause. Exported so the cluster frontend answers routed
// rejections with byte-identical semantics.
func WriteOverload(w http.ResponseWriter, e *OverloadError) {
	status := http.StatusTooManyRequests
	switch {
	case e.Permanent:
		status = http.StatusUnprocessableEntity
	case e.Reason == "shedding":
		status = http.StatusServiceUnavailable
	}
	if !e.Permanent && e.RetryAfter > 0 {
		secs := int64((e.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, map[string]any{
		"error":          "overloaded",
		"reason":         e.Reason,
		"retry_after_ms": ms(e.RetryAfter),
		"state":          e.State.String(),
		"permanent":      e.Permanent,
	})
}

// streamSSE delivers a request's tokens as server-sent events: one
// `data: {"step":N,"token":T}` event per token, then `event: done` carrying
// the terminal status.
func streamSSE(w http.ResponseWriter, st *Stream) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	step := 0
	for tok := range st.Tokens() {
		fmt.Fprintf(w, "data: {\"step\":%d,\"token\":%d}\n\n", step, tok)
		step++
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, err := st.Wait()
	status := "ok"
	if err != nil {
		status = err.Error()
	}
	fmt.Fprintf(w, "event: done\ndata: %q\n\n", status)
	if flusher != nil {
		flusher.Flush()
	}
}

// statsPayload flattens Metrics into the /stats JSON document.
func statsPayload(m Metrics) map[string]any {
	out := map[string]any{
		"uptime_sec":       m.Uptime.Seconds(),
		"queue_depth":      m.QueueDepth,
		"active_slots":     m.ActiveSlots,
		"total_slots":      m.TotalSlots,
		"tokens_generated": m.TokensGenerated,
		"tokens_per_sec":   m.TokensPerSec,
		"admitted":         m.Serve.Admitted,
		"completed":        m.Serve.Completed,
		"canceled":         m.Serve.Canceled,
		"rejected":         m.Serve.Rejected,
		"batch_steps":      m.Serve.BatchSteps,
		"avg_occupancy":    m.Serve.AvgOccupancy,
		"queue_peak":       m.Serve.QueuePeak,
		"ttft_p50_ms":      ms(m.Serve.TTFTP50),
		"ttft_p99_ms":      ms(m.Serve.TTFTP99),
		"ttft_mean_ms":     ms(m.Serve.TTFTMean),
		"tpot_mean_ms":     ms(m.Serve.TPOTMean),

		"rejected_429":         m.Serve.Rejected429,
		"spilled":              m.Serve.Spilled,
		"evicted":              m.Serve.Evicted,
		"breaker_state":        m.Breaker.String(),
		"breaker_transitions":  m.BreakerTransitions,
		"pressure_level":       m.PressureLevel,
		"predicted_peak_bytes": m.PredictedPeakBytes,
		"arena_capacity":       m.ArenaCapacity,
		"arena_peak":           m.ArenaPeak,
		"estimate_ratio":       m.EstimateRatio,
		"predicted_tpot_ms":    ms(m.PredictedTPOT),
		"predicted_drain_ms":   ms(m.PredictedDrain),
	}
	// Per-tenant accounting appears only when fair-share scheduling is on.
	if m.Tenants != nil {
		out["tenants"] = m.Tenants
	}
	// Prefix-cache fields appear only when the shared-prefix store is on.
	if m.PrefixCacheCapacity > 0 {
		out["prefix_hits"] = m.Serve.PrefixHits
		out["prefix_misses"] = m.Serve.PrefixMisses
		out["prefix_hit_rate"] = m.PrefixHitRate
		out["prefix_reused_tokens"] = m.Serve.PrefixReusedTokens
		out["prefix_inserts"] = m.Serve.PrefixInserts
		out["prefix_evictions"] = m.Serve.PrefixEvictions
		out["prefix_cache_bytes"] = m.PrefixCacheBytes
		out["prefix_cache_capacity"] = m.PrefixCacheCapacity
	}
	// Exec-policy hot-swap fields appear once any swap has been requested;
	// the adapt controller's own status block appears when one is attached.
	if m.SwapsApplied > 0 || m.SwapsRefused > 0 || m.Adapt != nil {
		out["exec_policy"] = map[string]any{
			"intra_op":        m.ExecPolicy.IntraOp,
			"inter_op":        m.ExecPolicy.InterOp,
			"prefetch":        m.ExecPolicy.Prefetch,
			"step_timeout_ms": ms(m.ExecPolicy.StepTimeout),
		}
		out["swaps_applied"] = m.SwapsApplied
		out["swaps_refused"] = m.SwapsRefused
	}
	if m.Adapt != nil {
		out["adapt"] = m.Adapt
	}
	// Span aggregates appear only while tracing is enabled, keyed by the
	// shared task vocabulary.
	if m.TraceTasks != nil {
		tasks := make(map[string]float64, len(m.TraceTasks))
		for name, d := range m.TraceTasks {
			tasks[name] = ms(d)
		}
		out["trace_tasks_ms"] = tasks
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
