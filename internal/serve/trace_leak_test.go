package serve

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/model"
	rt "repro/internal/runtime"
	"repro/internal/xtrace"
)

// submitBatch pushes n requests through the scheduler and waits for all of
// them to finish.
func submitBatch(t *testing.T, sched *Scheduler, rng *rand.Rand, n, genLen int) {
	t.Helper()
	vocab := model.Tiny().Vocab
	streams := make([]*Stream, 0, n)
	for i := 0; i < n; i++ {
		prompt := make([]int, 4)
		for j := range prompt {
			prompt[j] = rng.Intn(vocab)
		}
		st, err := sched.Submit(context.Background(), Request{Prompt: prompt, MaxNewTokens: genLen})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		streams = append(streams, st)
	}
	for i, st := range streams {
		if _, err := st.Wait(); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

// TestTracerEnableDisableMidServeNoLeak turns tracing on and off while the
// scheduler is serving and checks that the toggle neither breaks requests
// nor leaks goroutines: the recorder has no background machinery, so
// enabling tracing must add zero goroutines and disabling must strand none.
func TestTracerEnableDisableMidServeNoLeak(t *testing.T) {
	eng := tinyEngine(t, rt.Policy{IntraOp: 1}, 1)
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	cfg.QueueDepth = 8
	cfg.MaxNewTokens = 8
	cfg.DefaultNewTokens = 8
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	submitBatch(t, sched, rng, 4, 8) // warm up with tracing off

	baseline := runtime.NumGoroutine()

	rec := xtrace.NewRecorder(0)
	eng.SetTracer(rec) // enable mid-serve
	submitBatch(t, sched, rng, 4, 8)
	if rec.Len() == 0 {
		t.Error("no spans recorded while tracing was enabled")
	}

	eng.SetTracer(nil) // disable mid-serve
	before := rec.Len()
	submitBatch(t, sched, rng, 4, 8)
	if rec.Len() != before {
		t.Errorf("recorder grew from %d to %d spans after SetTracer(nil)", before, rec.Len())
	}

	// The toggle must not have added goroutines. Allow the runtime a moment
	// to retire request-scoped goroutines from the last batch.
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > baseline {
		t.Errorf("goroutines grew from %d to %d across tracer enable/disable", baseline, n)
	}
	sched.Close()
}

// TestTracerRingWraparoundUnderServe serves through a deliberately tiny
// ring: wraparound must drop oldest spans (counted, not panicked) while the
// scheduler keeps serving correctly.
func TestTracerRingWraparoundUnderServe(t *testing.T) {
	eng := tinyEngine(t, rt.Policy{IntraOp: 1}, 1)
	rec := xtrace.NewRecorder(32) // far smaller than one request's span count
	eng.SetTracer(rec)
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	cfg.QueueDepth = 8
	cfg.MaxNewTokens = 8
	cfg.DefaultNewTokens = 8
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	submitBatch(t, sched, rand.New(rand.NewSource(5)), 6, 8)

	if rec.Len() != 32 {
		t.Errorf("ring retained %d spans, want full capacity 32", rec.Len())
	}
	if rec.Dropped() == 0 {
		t.Error("expected wraparound drops with a 32-span ring under serve load")
	}
}
