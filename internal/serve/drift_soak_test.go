package serve

import (
	"context"
	"math/rand"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/perfmodel"
	rt "repro/internal/runtime"
	"repro/internal/xtrace"
)

// flipSearcher is a deterministic stand-in for the autotune searcher: it
// always proposes the other of two widths with a confident predicted gain, so
// the soak exercises the swap machinery without modeling noise.
type flipSearcher struct{}

func (flipSearcher) Search(factor float64, cur rt.ExecPolicy) (adapt.Candidate, error) {
	next := cur
	if cur.IntraOp == 2 {
		next.IntraOp = 1
	} else {
		next.IntraOp = 2
	}
	return adapt.Candidate{Policy: next, PredictedGain: 1.5, Profile: "soak"}, nil
}

// TestDriftChaosSoak drives the full adaptation loop against a live
// scheduler under Poisson load and injected machine drift:
//
//  1. a sustained slowdown raises drift and produces a confirmed swap;
//  2. the slowdown is escalated mid-canary (a co-tenant landing during the
//     experiment), so the canary measures a regression and rolls back;
//  3. with the slowdown then flat, the next cycle's canary passes and the
//     policy commits;
//  4. with the breaker forced to Shedding, zero swaps are applied no matter
//     what the controller wants;
//  5. teardown leaks no goroutines.
func TestDriftChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak: several seconds of wall clock")
	}
	baselineGoroutines := goruntime.NumGoroutine()

	col := perfmodel.NewEstCollector()
	col.SetWindowSize(16)
	inj := faults.MustNew(1, nil)
	eng := tinyEngine(t, rt.Policy{IntraOp: 2, Prefetch: true}, 2)
	eng.SetFaultInjector(inj)
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 3
	cfg.QueueDepth = 64
	cfg.MaxNewTokens = 12
	cfg.DefaultNewTokens = 12
	cfg.EstObserver = col
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}

	acfg := adapt.Config{
		Interval:        40 * time.Millisecond,
		MinSamples:      4,
		QErrThreshold:   1.4,
		RatioThreshold:  1.25,
		DriftStreak:     2,
		ClearStreak:     4,
		MinGain:         1.05,
		CanaryTicks:     3,
		CanaryRegress:   1.2,
		Cooldown:        200 * time.Millisecond,
		MaxSwapsPerHour: 1000,
		ConfirmTimeout:  3 * time.Second,
	}
	ctl, err := adapt.New(sched, col, flipSearcher{}, acfg)
	if err != nil {
		t.Fatal(err)
	}
	// A dedicated recorder for adaptation events: the handful of lifecycle
	// markers can never be wrapped out by engine spans.
	adaptRec := xtrace.NewRecorder(0)
	ctl.SetTracer(adaptRec)
	sched.SetAdaptStatsFunc(ctl.StatsMap)
	ctl.Start()

	// Poisson-ish background load: a few workers submitting short requests
	// back to back, tolerating overload rejections.
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	var served atomic.Int64
	for w := 0; w < 6; w++ {
		loadWG.Add(1)
		go func(seed int64) {
			defer loadWG.Done()
			rng := rand.New(rand.NewSource(seed))
			vocab := model.Tiny().Vocab
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				prompt := make([]int, 2+rng.Intn(4))
				for j := range prompt {
					prompt[j] = rng.Intn(vocab)
				}
				st, err := sched.Submit(context.Background(), Request{Prompt: prompt, MaxNewTokens: 4 + rng.Intn(8)})
				if err == nil {
					if _, werr := st.Wait(); werr == nil {
						served.Add(1)
					}
				} else {
					time.Sleep(10 * time.Millisecond)
				}
				time.Sleep(time.Duration(rng.ExpFloat64() * float64(8*time.Millisecond)))
			}
		}(int64(100 + w))
	}

	waitFor := func(what string, deadline time.Duration, cond func() bool) {
		t.Helper()
		end := time.Now().Add(deadline)
		for !cond() {
			if time.Now().After(end) {
				t.Fatalf("soak: %s never happened (status %+v, metrics swaps=%d/%d)",
					what, ctl.Status(), sched.Metrics().SwapsApplied, sched.Metrics().SwapsRefused)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 0: nominal traffic anchors the baseline.
	waitFor("baseline anchor", 20*time.Second, func() bool { return ctl.Status().BaselineTPOT > 0 })

	// Phase 1: sustained 2.5x slowdown -> drift -> confirmed swap.
	factor := 2.5
	if err := inj.SetDrift(faults.SustainedSlowdown(0, factor)); err != nil {
		t.Fatal(err)
	}
	waitFor("first confirmed swap", 30*time.Second, func() bool { return ctl.Status().SwapsConfirmed >= 1 })

	// Phase 2: escalate the slowdown the moment each canary opens, so the
	// canary window measures a world strictly worse than its pre-swap window
	// and rolls the swap back. (If a canary slips through and commits, the
	// escalation loop re-raises drift and hits the next one.)
	var raisedFor int64
	end := time.Now().Add(40 * time.Second)
	for ctl.Status().Rollbacks == 0 {
		if time.Now().After(end) {
			t.Fatalf("soak: rollback never happened (status %+v)", ctl.Status())
		}
		st := ctl.Status()
		if st.State == adapt.Canary && st.SwapsConfirmed > raisedFor {
			if factor < 12 {
				factor *= 2
			}
			if err := inj.SetDrift(faults.SustainedSlowdown(0, factor)); err != nil {
				t.Fatal(err)
			}
			raisedFor = st.SwapsConfirmed
		} else if st.State == adapt.Stable && st.Commits > 0 && factor < 12 {
			// A canary committed before we could hit it; push drift again.
			factor *= 2
			if err := inj.SetDrift(faults.SustainedSlowdown(0, factor)); err != nil {
				t.Fatal(err)
			}
			time.Sleep(100 * time.Millisecond)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 3: the slowdown is now flat, so the post-rollback re-search gets
	// a clean canary and commits.
	waitFor("post-rollback commit", 40*time.Second, func() bool { return ctl.Status().Commits >= 1 })

	// Phase 4: force the breaker to Shedding and hold it there; no swap may
	// be applied while the server is unhealthy, whatever the controller
	// wants. (Re-forced every few ms because the loop's own evaluations walk
	// the state back down.)
	appliedBefore := sched.Metrics().SwapsApplied
	holdEnd := time.Now().Add(800 * time.Millisecond)
	for time.Now().Before(holdEnd) {
		sched.brk.mu.Lock()
		sched.brk.state = Shedding
		sched.brk.mu.Unlock()
		if sched.Stable() {
			t.Fatal("scheduler reports stable while breaker forced to shedding")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := sched.Metrics().SwapsApplied; got != appliedBefore {
		t.Fatalf("%d swap(s) applied while the breaker was shedding", got-appliedBefore)
	}
	sched.brk.mu.Lock()
	sched.brk.state = Healthy
	sched.brk.mu.Unlock()

	// Teardown and verdicts.
	close(stopLoad)
	loadWG.Wait()
	ctl.Stop()
	sched.Close()
	if err := inj.SetDrift(nil); err != nil {
		t.Fatal(err)
	}

	if served.Load() == 0 {
		t.Fatal("soak served no requests")
	}
	st := ctl.Status()
	if st.SwapsConfirmed < 2 || st.Rollbacks < 1 || st.Commits < 1 {
		t.Fatalf("soak did not exercise the full lifecycle: %+v", st)
	}
	// The adapt lane recorded the lifecycle markers.
	seen := map[string]bool{}
	for _, sp := range adaptRec.Spans() {
		seen[sp.Name] = true
	}
	for _, want := range []string{xtrace.TaskDriftDetect, xtrace.TaskPolicyRollback, xtrace.TaskPolicyCommit} {
		if !seen[want] {
			t.Errorf("adapt trace missing %q marker (got %v)", want, seen)
		}
	}
	// The /stats adapt block is wired through the scheduler.
	m := sched.Metrics()
	if m.Adapt == nil || m.Adapt["state"] == nil {
		t.Fatalf("adapt stats block missing from metrics: %+v", m.Adapt)
	}

	// Goroutine-leak check: everything spawned during the soak must retire.
	deadline := time.Now().Add(5 * time.Second)
	n := goruntime.NumGoroutine()
	for n > baselineGoroutines+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		n = goruntime.NumGoroutine()
	}
	if n > baselineGoroutines+2 {
		t.Errorf("goroutines grew from %d to %d across the soak", baselineGoroutines, n)
	}
}
