package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/runtime"
)

// TestPrefixDifferentialSharedPrefixTrace: concurrent requests sharing a
// prompt prefix, served with the prefix cache on, are token-exact against the
// sequential no-cache reference — the tentpole's exactness contract — and the
// cache actually engages (hits, inserts, reused tokens all non-zero).
func TestPrefixDifferentialSharedPrefixTrace(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	cfg.PrefixCacheBytes = 8 << 20
	cfg.PrefixBlockTokens = 8

	shared := make([]int, 24)
	for i := range shared {
		shared[i] = (i*5 + 1) % cfg.Vocab
	}
	var reqs []Request
	for i := 0; i < 8; i++ {
		prompt := append([]int(nil), shared...)
		for j := 0; j <= i; j++ {
			prompt = append(prompt, (i*13+j*3+2)%cfg.Vocab)
		}
		reqs = append(reqs, Request{Prompt: prompt, MaxNewTokens: 6})
	}

	eng := tinyEngine(t, runtime.Policy{IntraOp: 2, Prefetch: true}, 2)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]int, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			st, err := sched.Submit(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = st.Wait()
		}(i, req)
	}
	wg.Wait()
	m := sched.Metrics()
	sched.Close()

	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		want := soloReference(t, reqs[i].Prompt, reqs[i].MaxNewTokens, cfg.EOS)
		assertTokensEqual(t, "prefix-cached request", outs[i], want)
	}
	if m.Serve.PrefixHits < 1 || m.Serve.PrefixInserts < 1 || m.Serve.PrefixReusedTokens < 1 {
		t.Errorf("prefix cache never engaged: %+v", m.Serve)
	}
	if m.PrefixCacheCapacity != cfg.PrefixCacheBytes {
		t.Errorf("PrefixCacheCapacity = %d, want %d", m.PrefixCacheCapacity, cfg.PrefixCacheBytes)
	}
	if m.PrefixHitRate <= 0 || m.PrefixHitRate > 1 {
		t.Errorf("PrefixHitRate = %g outside (0, 1]", m.PrefixHitRate)
	}
}

// prefixSoakTrace is a bursty shared-prefix arrival process: every prompt
// extends one of two common prefixes, so cache hits interleave with the
// pressure ladder's spills and evictions.
func prefixSoakTrace(seed int64, n, vocab int) []arrival {
	rng := rand.New(rand.NewSource(seed))
	prefixes := [][]int{make([]int, 16), make([]int, 16)}
	for i := range prefixes[0] {
		prefixes[0][i] = rng.Intn(vocab)
		prefixes[1][i] = rng.Intn(vocab)
	}
	var out []arrival
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		if (i/8)%2 == 1 {
			at += time.Duration(rng.ExpFloat64() * float64(500*time.Microsecond))
		} else {
			at += time.Duration(rng.ExpFloat64() * float64(4*time.Millisecond))
		}
		prompt := append([]int(nil), prefixes[rng.Intn(2)]...)
		for j := 0; j < 4+rng.Intn(16); j++ {
			prompt = append(prompt, rng.Intn(vocab))
		}
		out = append(out, arrival{delay: at, req: Request{Prompt: prompt, MaxNewTokens: 8 + rng.Intn(40)}})
	}
	return out
}

// TestPrefixSoak mixes prefix-cache hits with the full pressure ladder under
// fault windows: a bursty shared-prefix trace against a tiny KV headroom and
// host budget, so hits, inserts, prefix-block drops, spills, and evictions
// all interleave. Completed requests stay token-exact against the matching
// no-cache solo reference, and nothing leaks. Run with -race in CI.
func TestPrefixSoak(t *testing.T) {
	n := 48
	if testing.Short() {
		n = 24
	}
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 3
	cfg.QueueDepth = 8
	cfg.MaxPromptLen = 64
	cfg.MaxNewTokens = 64
	cfg.HostKVBudget = 1 << 20
	cfg.PrefixCacheBytes = 256 << 10
	cfg.PrefixBlockTokens = 8

	eng := smallArenaEngine(t, 64<<10, 2)
	inj := faults.MustNew(13, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 0.05},
		faults.KVTransfer:     {Prob: 0.04},
		faults.MemPressure:    {Prob: 0.02, Max: 4},
	})
	inj.SetActive(false)
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(runtime.RetryConfig{MaxAttempts: 4})

	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}

	stopFaults := make(chan struct{})
	var faultWG sync.WaitGroup
	faultWG.Add(1)
	go func() {
		defer faultWG.Done()
		on := false
		for {
			select {
			case <-stopFaults:
				inj.SetActive(false)
				return
			case <-time.After(15 * time.Millisecond):
				on = !on
				inj.SetActive(on)
			}
		}
	}()

	trace := prefixSoakTrace(29, n, cfg.Vocab)
	outs := make([][]int, len(trace))
	errs := make([]error, len(trace))
	kvq := make([]bool, len(trace))
	var wg sync.WaitGroup
	for i, a := range trace {
		wg.Add(1)
		go func(i int, a arrival) {
			defer wg.Done()
			time.Sleep(a.delay)
			st, err := sched.Submit(context.Background(), a.req)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = st.Wait()
			kvq[i] = st.KVQuantized()
		}(i, a)
	}
	wg.Wait()
	close(stopFaults)
	faultWG.Wait()

	completed, shed := 0, 0
	for i := range trace {
		switch {
		case errs[i] == nil:
			completed++
		case errors.Is(errs[i], ErrOverloaded) || errors.Is(errs[i], ErrQueueFull):
			shed++
		default:
			t.Fatalf("request %d failed with a non-overload error: %v", i, errs[i])
		}
	}
	if completed == 0 {
		t.Fatal("prefix soak completed zero requests")
	}
	m := sched.Metrics()
	t.Logf("prefix soak: %d completed, %d shed, %d hits, %d inserts, %d prefix evictions, %d spills, %d evictions",
		completed, shed, m.Serve.PrefixHits, m.Serve.PrefixInserts, m.Serve.PrefixEvictions,
		m.Serve.Spilled, m.Serve.Evicted)

	for i := range trace {
		if errs[i] != nil {
			continue
		}
		var want []int
		if kvq[i] {
			want = soloSessionReference(t, trace[i].req.Prompt, trace[i].req.MaxNewTokens, true, cfg.LadderKV)
		} else {
			want = soloReference(t, trace[i].req.Prompt, trace[i].req.MaxNewTokens, cfg.EOS)
		}
		assertTokensEqual(t, "prefix soak request", outs[i], want)
	}

	if m.Serve.PrefixHits < 1 {
		t.Errorf("shared-prefix trace produced no cache hits: %+v", m.Serve)
	}
	if m.PredictedPeakBytes < eng.ArenaPeak() {
		t.Errorf("admission estimate %d below observed arena peak %d with reuse on",
			m.PredictedPeakBytes, eng.ArenaPeak())
	}
	if got := eng.Stats().ArenaFreeErrorCount(); got != 0 {
		t.Errorf("%d arena free underflows during prefix soak", got)
	}
	sched.Close()
	if used := eng.ArenaUsed(); used != 0 {
		t.Errorf("arena leak after prefix soak drain: %d bytes", used)
	}
}

// TestDrainUnderSlowStep is the regression for the scheduler-lifecycle bug:
// stepBatch used to run Step under context.Background(), so a step stalled in
// a fault window kept running — and wedged Close — even after every request
// in the batch had been cancelled. With the step context derived from the
// scheduler lifecycle and the batch's request contexts, abandoning all
// requests unwinds the stalled step and drain completes promptly.
func TestDrainUnderSlowStep(t *testing.T) {
	const stall = 30 * time.Second
	inj := faults.MustNew(7, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 1, Stall: stall},
	})
	inj.SetActive(false)
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	eng.SetFaultInjector(inj)

	sched, err := New(eng, DefaultConfig(model.Tiny().Vocab))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// A budget far beyond what the test lets run: decode must still be in
	// flight when the fault window opens.
	st, err := sched.Submit(ctx, Request{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 256})
	if err != nil {
		t.Fatal(err)
	}
	// The first token proves the faults-off prefill finished and decode is on.
	<-st.Tokens()
	inj.SetActive(true) // every subsequent decode step stalls for 30s
	time.Sleep(30 * time.Millisecond)
	cancel() // abandon the only request the stalled step serves

	closed := make(chan struct{})
	go func() {
		sched.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged behind a stalled step no request is waiting for")
	}
	if _, err := st.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("abandoned request finished with %v, want context.Canceled", err)
	}
}

// TestTPOTExcludesPrefillGaps pins the deliver-side TPOT fix with a
// deterministic clock: prefill (admit) tokens restart the gap window without
// contributing, so neither the initial prefill nor an eviction resume's dead
// time skews the mean decode inter-token gap.
func TestTPOTExcludesPrefillGaps(t *testing.T) {
	base := time.Unix(1000, 0)
	p := &pending{}
	if got := p.tpot(); got != 0 {
		t.Fatalf("empty pending tpot = %v, want 0", got)
	}
	p.noteAdmitToken(base) // prefill token: no gap
	if got := p.tpot(); got != 0 {
		t.Fatalf("tpot after prefill only = %v, want 0", got)
	}
	p.noteDecodeToken(base.Add(10 * time.Millisecond)) // gap 10ms
	p.noteDecodeToken(base.Add(20 * time.Millisecond)) // gap 10ms
	// Eviction + resume: 500ms of queue dead time, then the re-prefill token.
	p.noteAdmitToken(base.Add(520 * time.Millisecond)) // no gap recorded
	p.noteDecodeToken(base.Add(530 * time.Millisecond)) // gap 10ms
	if got := p.tpot(); got != 10*time.Millisecond {
		t.Errorf("tpot = %v, want 10ms (prefill/resume gaps must not count)", got)
	}
	// The old formula — (last - first) / (produced - 1) — would have reported
	// (530-0)/3 ≈ 176ms here, poisoned by the resume dead time.
	if p.tpotGaps != 3 {
		t.Errorf("gap count = %d, want 3", p.tpotGaps)
	}
}
