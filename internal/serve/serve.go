// Package serve is the online serving layer on top of the offloading
// engine: a bounded admission queue feeding a continuous-batching scheduler
// that joins requests into free KV slots at decode-step boundaries, streams
// tokens per request, and retires sequences on EOS, max-tokens, cancellation,
// or deadline expiry. Because the engine computes strictly per sequence,
// every request's tokens are bit-identical to a dedicated offline run — the
// package's differential tests pin that invariant down, faults included.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/perfmodel"
	"repro/internal/quant"
)

// Admission and lifecycle errors surfaced by Submit and the streams.
var (
	// ErrQueueFull rejects a request when the admission queue is at capacity
	// — the backpressure signal load balancers retry against.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("serve: scheduler closed")
)

// Config bounds the scheduler: batch width, queue depth, and per-request
// limits every submission is validated against.
type Config struct {
	// Slots is the maximum number of concurrently decoding sequences (the
	// session's KV slot count).
	Slots int
	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrQueueFull rather than buffering unboundedly.
	QueueDepth int
	// MaxPromptLen rejects oversize prompts at admission.
	MaxPromptLen int
	// MaxNewTokens caps a request's generation budget; DefaultNewTokens is
	// applied when a request leaves it zero.
	MaxNewTokens     int
	DefaultNewTokens int
	// EOS is the token ID that terminates a stream early (emitted, then the
	// slot retires). Negative disables EOS detection.
	EOS int
	// Vocab rejects prompt tokens outside [0, Vocab) — the engine's Embed
	// panics on them, so they must never reach a slot.
	Vocab int

	// ChunkTokens enables chunked prefill: a prompt longer than this many
	// tokens is admitted incrementally, one bounded chunk between decode
	// steps, so a long prefill never stalls the live batch for more than one
	// chunk's cost (the TPOT-spike bound). The chunk-sized work items replace
	// the all-or-nothing prefill-cost deferral gate. Zero disables chunking
	// (monolithic admission, PR 2 behavior). Served tokens are bit-identical
	// either way.
	ChunkTokens int

	// AdmissionControl enables the performance-model-guided overload
	// protection: footprint estimates gate admission (structured 429s with
	// Retry-After), the KV-pressure ladder sheds memory before the arena
	// OOMs, and the health circuit breaker trips to shedding under sustained
	// faults. Off, the scheduler admits blindly (PR 2 behavior).
	AdmissionControl bool
	// ArenaHighWater and ArenaLowWater are fractions of the arena's KV
	// headroom (capacity minus the weight working set). Predicted pressure
	// above the high watermark stops admissions and escalates the ladder;
	// hysteresis de-escalates only after HealthyStreak evaluations below the
	// low watermark.
	ArenaHighWater float64
	ArenaLowWater  float64
	// FootprintSlack scales footprint estimates (≥ 1) so transient
	// double-buffering during retries stays inside the estimate.
	FootprintSlack float64
	// TPOTBudget rejects admissions whose predicted time-per-output-token at
	// the resulting occupancy exceeds the budget. Zero disables the check.
	TPOTBudget time.Duration
	// HostKVBudget bounds the session's host-side KV bytes; pressure against
	// it escalates the ladder toward eviction. Zero is unlimited.
	HostKVBudget int64
	// LadderKV is the quantization applied to newly admitted slots at the
	// ladder's first rung. Its group size must divide the model's hidden
	// dimension (checked at New) so quantized slots stay token-exact.
	LadderKV quant.Config
	// HealthyStreak is how many consecutive healthy evaluations de-escalate
	// the ladder and the circuit breaker by one level.
	HealthyStreak int

	// PrefixCacheBytes budgets the shared-prefix KV cache: admissions seed
	// their slot from the longest cached prompt prefix and prefill only the
	// suffix, with served tokens staying byte-identical to a cold prefill.
	// Zero disables reuse. The cache is host memory, charged against
	// HostKVBudget's pressure accounting when that is set.
	PrefixCacheBytes int64
	// PrefixBlockTokens is the prefix cache's block granularity; zero takes
	// runtime.DefaultPrefixBlockTokens.
	PrefixBlockTokens int

	// Tenants enables multi-tenant fair-share scheduling: each entry gets its
	// own bounded admission queue, an active-slot quota, and a weighted
	// round-robin share of admissions. Requests with an empty or unknown
	// tenant bill to the reserved DefaultTenant. Nil/empty keeps the
	// single-tenant FIFO.
	Tenants map[string]TenantConfig

	// LatencySampleCap overrides the TTFT/TPOT sample-ring capacity backing
	// ServeSummary's quantiles (zero keeps the runtime default). Long
	// benchmark cells set it so late samples don't displace early ones from
	// the window the quantiles are computed over.
	LatencySampleCap int

	// EstObserver, when set, receives (predicted, actual) pairs for the
	// scheduler's inline estimators — StepCost TPOT at each decode step and
	// fitted PrefillCost at each admission — letting harnesses score q-error
	// without touching loop-owned models. Must be safe for concurrent use.
	EstObserver perfmodel.EstObserver
}

// DefaultConfig returns serving limits sized for the functional models.
func DefaultConfig(vocab int) Config {
	return Config{
		Slots:            4,
		QueueDepth:       64,
		MaxPromptLen:     512,
		MaxNewTokens:     256,
		DefaultNewTokens: 32,
		EOS:              -1,
		Vocab:            vocab,
		AdmissionControl: true,
		ArenaHighWater:   0.85,
		ArenaLowWater:    0.65,
		FootprintSlack:   1.15,
		LadderKV:         quant.Config{Bits: 4, GroupSize: 32},
		HealthyStreak:    3,
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	if c.Slots <= 0 {
		return fmt.Errorf("serve: slots must be positive, got %d", c.Slots)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("serve: queue depth must be positive, got %d", c.QueueDepth)
	}
	if c.MaxPromptLen <= 0 {
		return fmt.Errorf("serve: max prompt length must be positive, got %d", c.MaxPromptLen)
	}
	if c.MaxNewTokens <= 0 {
		return fmt.Errorf("serve: max new tokens must be positive, got %d", c.MaxNewTokens)
	}
	if c.DefaultNewTokens <= 0 || c.DefaultNewTokens > c.MaxNewTokens {
		return fmt.Errorf("serve: default new tokens %d outside (0, %d]", c.DefaultNewTokens, c.MaxNewTokens)
	}
	if c.Vocab <= 0 {
		return fmt.Errorf("serve: vocab must be positive, got %d", c.Vocab)
	}
	if c.ChunkTokens < 0 {
		return fmt.Errorf("serve: negative chunk tokens %d", c.ChunkTokens)
	}
	if c.AdmissionControl {
		if !(c.ArenaLowWater > 0 && c.ArenaLowWater < c.ArenaHighWater && c.ArenaHighWater <= 1) {
			return fmt.Errorf("serve: watermarks must satisfy 0 < low (%g) < high (%g) <= 1",
				c.ArenaLowWater, c.ArenaHighWater)
		}
		if c.FootprintSlack < 1 {
			return fmt.Errorf("serve: footprint slack %g must be >= 1", c.FootprintSlack)
		}
		if c.TPOTBudget < 0 {
			return fmt.Errorf("serve: negative TPOT budget %v", c.TPOTBudget)
		}
		if c.HostKVBudget < 0 {
			return fmt.Errorf("serve: negative host KV budget %d", c.HostKVBudget)
		}
		if err := c.LadderKV.Validate(); err != nil {
			return fmt.Errorf("serve: ladder KV config: %w", err)
		}
		if c.HealthyStreak <= 0 {
			return fmt.Errorf("serve: healthy streak must be positive, got %d", c.HealthyStreak)
		}
	}
	if c.PrefixCacheBytes < 0 {
		return fmt.Errorf("serve: negative prefix cache budget %d", c.PrefixCacheBytes)
	}
	if c.PrefixBlockTokens < 0 {
		return fmt.Errorf("serve: negative prefix block tokens %d", c.PrefixBlockTokens)
	}
	if c.LatencySampleCap < 0 {
		return fmt.Errorf("serve: negative latency sample cap %d", c.LatencySampleCap)
	}
	for name, tc := range c.Tenants {
		if name == "" {
			return fmt.Errorf("serve: tenant with empty name (use %q for the catch-all)", DefaultTenant)
		}
		if tc.Slots < 0 || tc.QueueDepth < 0 || tc.Weight < 0 {
			return fmt.Errorf("serve: tenant %s: slots/queue-depth/weight must be non-negative, got %d/%d/%d",
				name, tc.Slots, tc.QueueDepth, tc.Weight)
		}
	}
	return nil
}

// Request is one generation job: a prompt and its token budget.
type Request struct {
	Prompt []int
	// MaxNewTokens bounds the generated tokens (EOS may stop earlier).
	// Zero takes the config default.
	MaxNewTokens int
	// Tenant bills the request under a configured tenant for quota and
	// fair-share accounting. Empty (or unknown) maps to DefaultTenant;
	// ignored entirely when Config.Tenants is empty.
	Tenant string
}

// normalize applies defaults and validates the request against the limits.
// It returns the effective request.
func (c Config) normalize(req Request) (Request, error) {
	if req.MaxNewTokens == 0 {
		req.MaxNewTokens = c.DefaultNewTokens
	}
	if req.MaxNewTokens < 0 || req.MaxNewTokens > c.MaxNewTokens {
		return req, fmt.Errorf("serve: max_new_tokens %d outside [1, %d]", req.MaxNewTokens, c.MaxNewTokens)
	}
	if len(req.Prompt) == 0 {
		return req, fmt.Errorf("serve: empty prompt")
	}
	if len(req.Prompt) > c.MaxPromptLen {
		return req, fmt.Errorf("serve: prompt length %d exceeds limit %d", len(req.Prompt), c.MaxPromptLen)
	}
	for i, tok := range req.Prompt {
		if tok < 0 || tok >= c.Vocab {
			return req, fmt.Errorf("serve: prompt token %d at position %d outside vocab [0, %d)", tok, i, c.Vocab)
		}
	}
	return req, nil
}

// Stream delivers one request's tokens as they are generated. Tokens() is
// closed when the request finishes; Wait() blocks for completion and returns
// the full output. The token channel is buffered to the request's budget, so
// the scheduler never blocks on a slow consumer.
type Stream struct {
	ch   chan int
	done chan struct{}

	mu      sync.Mutex
	tokens  []int
	err     error
	kvQuant bool // slot stored its KV quantized (pressure ladder rung 1)
}

func newStream(budget int) *Stream {
	return &Stream{ch: make(chan int, budget), done: make(chan struct{})}
}

// Tokens returns the live token channel; it is closed on completion.
func (st *Stream) Tokens() <-chan int { return st.ch }

// Done is closed when the request finishes (successfully or not).
func (st *Stream) Done() <-chan struct{} { return st.done }

// Wait blocks until the request finishes and returns every generated token
// plus the terminal error (nil on EOS/max-tokens completion).
func (st *Stream) Wait() ([]int, error) {
	<-st.done
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]int(nil), st.tokens...), st.err
}

// KVQuantized reports whether the request's KV was stored quantized (the
// pressure ladder's quantize-new-slots rung, or a store-wide QuantKV
// policy). Differential checks use it to pick the matching solo reference.
func (st *Stream) KVQuantized() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.kvQuant
}

// setKVQuant records the slot's storage mode at admission.
func (st *Stream) setKVQuant(q bool) {
	st.mu.Lock()
	st.kvQuant = q
	st.mu.Unlock()
}

// snapshot returns the tokens generated so far — the evict path's resume
// state (prompt + produced tokens re-prefill bit-identically).
func (st *Stream) snapshot() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]int(nil), st.tokens...)
}

// push records and delivers one token. The channel send cannot block: at
// most MaxNewTokens tokens are ever pushed and the buffer holds all of them.
func (st *Stream) push(tok int) {
	st.mu.Lock()
	st.tokens = append(st.tokens, tok)
	st.mu.Unlock()
	st.ch <- tok
}

// finish seals the stream. It is called exactly once, by the scheduler loop.
func (st *Stream) finish(err error) {
	st.mu.Lock()
	st.err = err
	st.mu.Unlock()
	close(st.ch)
	close(st.done)
}

// admitQueue is the bounded FIFO admission queue. Invariants (fuzzed in
// FuzzAdmissionQueue): length never exceeds capacity, push fails exactly
// when full, and pop returns requests in arrival order.
type admitQueue struct {
	capacity int
	items    []*pending
}

// push enqueues p, reporting false when the queue is full.
func (q *admitQueue) push(p *pending) bool {
	if len(q.items) >= q.capacity {
		return false
	}
	q.items = append(q.items, p)
	return true
}

// pop dequeues the oldest request, or nil when empty.
func (q *admitQueue) pop() *pending {
	if len(q.items) == 0 {
		return nil
	}
	p := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return p
}

// peek returns the oldest request without dequeuing it, or nil when empty.
// The admission gate peeks before popping so a deferred request keeps its
// place at the head of the line.
func (q *admitQueue) peek() *pending {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// pushFront re-enqueues a request at the head of the line, exempt from the
// capacity bound: the evict path re-queues a request that was already
// admitted once, and dropping it to enforce capacity would turn a shed into
// a lost request.
func (q *admitQueue) pushFront(p *pending) {
	q.items = append([]*pending{p}, q.items...)
}

// remove deletes p by identity, reporting whether it was present.
func (q *admitQueue) remove(p *pending) bool {
	for i, it := range q.items {
		if it == p {
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			return true
		}
	}
	return false
}

func (q *admitQueue) len() int { return len(q.items) }
