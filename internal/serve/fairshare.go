package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultTenant is the reserved tenant name requests with no (or an unknown)
// tenant bill to when multi-tenancy is enabled. Configuring it explicitly
// overrides the implicit open default.
const DefaultTenant = "default"

// TenantConfig is one tenant's admission contract.
type TenantConfig struct {
	// Slots is the tenant's active-slot quota — how many of the scheduler's
	// slots its requests may hold at once. Zero in an explicit entry means the
	// tenant is suspended: its submissions are rejected permanently (HTTP 422).
	Slots int
	// QueueDepth bounds the tenant's admission queue; zero takes the global
	// Config.QueueDepth.
	QueueDepth int
	// Weight is the tenant's fair-share weight: the dispatcher grants each
	// tenant Weight admissions per round-robin round. Zero means 1.
	Weight int
}

// ParseTenantSpec parses the CLI tenant grammar: comma-separated
// name=slots[/weight[/depth]] entries, e.g. "free=1,pro=2/3,batch=1/1/16".
// Slots 0 declares the tenant suspended; omitted weight/depth take the
// fair-share defaults (weight 1, global queue depth).
func ParseTenantSpec(spec string) (map[string]TenantConfig, error) {
	out := map[string]TenantConfig{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("serve: tenant entry %q: want name=slots[/weight[/depth]]", entry)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("serve: tenant %q configured twice", name)
		}
		parts := strings.Split(rest, "/")
		if len(parts) > 3 {
			return nil, fmt.Errorf("serve: tenant entry %q: want name=slots[/weight[/depth]]", entry)
		}
		var tc TenantConfig
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 0 {
				return nil, fmt.Errorf("serve: tenant entry %q: bad number %q", entry, p)
			}
			switch i {
			case 0:
				tc.Slots = v
			case 1:
				if v == 0 {
					return nil, fmt.Errorf("serve: tenant entry %q: weight must be >= 1", entry)
				}
				tc.Weight = v
			case 2:
				tc.QueueDepth = v
			}
		}
		out[name] = tc
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: tenant spec %q is empty", spec)
	}
	return out, nil
}

// fill applies the per-tenant zero-value defaults (Slots is left alone:
// zero is the suspended sentinel, meaningful only on explicit entries).
func (c Config) fillTenant(tc TenantConfig) TenantConfig {
	if tc.QueueDepth == 0 {
		tc.QueueDepth = c.QueueDepth
	}
	if tc.Weight == 0 {
		tc.Weight = 1
	}
	return tc
}

// fairShare reports whether multi-tenant fair-share scheduling is on.
func (c Config) fairShare() bool { return len(c.Tenants) > 0 }

// tenantConfig resolves a request's tenant tag to its effective name and
// contract. With no tenants configured every request shares one FIFO and the
// tag is metadata only. Otherwise empty/unknown tags bill to DefaultTenant,
// governed by an explicit "default" entry when present and by an open
// default (global slots/depth, weight 1) when not.
func (c Config) tenantConfig(name string) (string, TenantConfig) {
	if !c.fairShare() {
		return name, TenantConfig{Slots: c.Slots, QueueDepth: c.QueueDepth, Weight: 1}
	}
	if name == "" {
		name = DefaultTenant
	}
	if tc, ok := c.Tenants[name]; ok {
		return name, c.fillTenant(tc)
	}
	if tc, ok := c.Tenants[DefaultTenant]; ok {
		return DefaultTenant, c.fillTenant(tc)
	}
	return DefaultTenant, TenantConfig{Slots: c.Slots, QueueDepth: c.QueueDepth, Weight: 1}
}

// tenantState is one tenant's live queueing state inside fairQueue.
type tenantState struct {
	name   string
	cfg    TenantConfig
	q      admitQueue
	credit int
}

// fairQueue is the scheduler's admission queue. With no tenants configured it
// degenerates to the PR 2 bounded FIFO. With tenants it keeps one bounded
// FIFO per tenant and dispatches by weighted round-robin with credits: each
// refill round grants every tenant Weight admissions, the cursor walks the
// (sorted) tenant order, and a tenant with queued work is skipped only while
// it is out of credit or its caller-supplied eligibility (active-slot quota)
// says no. Resumed evictees sit in a capacity-exempt front lane dispatched
// before everything, preserving the PR 3 recompute-on-resume contract.
//
// Invariants (fuzzed in FuzzFairShareQueue): per-tenant depth never exceeds
// its capacity, push fails exactly when the owning queue is full, no request
// is ever lost or duplicated, and an always-eligible tenant with queued work
// is dispatched at least once per refill round (no starvation).
type fairQueue struct {
	fair    bool
	front   []*pending // evict-resume lane: capacity-exempt, dispatched first
	fifo    admitQueue // single-tenant mode
	tenants map[string]*tenantState
	order   []string // sorted tenant names: deterministic round-robin walk
	cursor  int
}

// newFairQueue builds the queue for the config's tenancy mode.
func newFairQueue(cfg Config) *fairQueue {
	q := &fairQueue{fifo: admitQueue{capacity: cfg.QueueDepth}}
	if !cfg.fairShare() {
		return q
	}
	q.fair = true
	q.tenants = map[string]*tenantState{}
	add := func(name string, tc TenantConfig) {
		q.tenants[name] = &tenantState{
			name:   name,
			cfg:    tc,
			q:      admitQueue{capacity: tc.QueueDepth},
			credit: tc.Weight,
		}
		q.order = append(q.order, name)
	}
	for name, tc := range cfg.Tenants {
		add(name, cfg.fillTenant(tc))
	}
	if _, ok := q.tenants[DefaultTenant]; !ok {
		_, tc := cfg.tenantConfig("")
		add(DefaultTenant, tc)
	}
	sortStrings(q.order)
	return q
}

// sortStrings is a dependency-free insertion sort (the tenant list is tiny
// and sorted once).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// push enqueues p on its tenant's queue (the shared FIFO in single-tenant
// mode), reporting a wrapped ErrQueueFull when that queue is at capacity.
func (q *fairQueue) push(p *pending) error {
	if !q.fair {
		if !q.fifo.push(p) {
			return ErrQueueFull
		}
		return nil
	}
	ts := q.tenants[p.tenant]
	if ts == nil {
		// Submit resolves tenants before queueing; an unknown name here is a
		// bug, not traffic.
		return fmt.Errorf("serve: unresolved tenant %q", p.tenant)
	}
	if !ts.q.push(p) {
		return fmt.Errorf("serve: tenant %s: %w", p.tenant, ErrQueueFull)
	}
	return nil
}

// pushFront re-enqueues an evicted request on the capacity-exempt resume
// lane, ahead of every tenant queue.
func (q *fairQueue) pushFront(p *pending) {
	q.front = append([]*pending{p}, q.front...)
}

// next returns the request the dispatcher would admit now, without removing
// it: the resume lane's head if any (evictees bypass eligibility — their
// quota slot was freed by the eviction itself), otherwise the weighted
// round-robin choice among tenants that have queued work, credit, and an
// eligible quota. Credits refill en masse when every workable tenant is out,
// which is the only state next mutates; repeated calls without an intervening
// take return the same request.
func (q *fairQueue) next(eligible func(tenant string) bool) *pending {
	if len(q.front) > 0 {
		return q.front[0]
	}
	if !q.fair {
		return q.fifo.peek()
	}
	for pass := 0; pass < 2; pass++ {
		workable := false
		for i := 0; i < len(q.order); i++ {
			ts := q.tenants[q.order[(q.cursor+i)%len(q.order)]]
			if ts.q.len() == 0 || !eligible(ts.name) {
				continue
			}
			workable = true
			if ts.credit > 0 {
				return ts.q.peek()
			}
		}
		if !workable {
			return nil
		}
		// Every workable tenant exhausted its credit: start a new round.
		for _, name := range q.order {
			q.tenants[name].credit = q.tenants[name].cfg.Weight
		}
	}
	return nil
}

// take removes p (previously returned by next) from whichever lane holds it,
// charging the owning tenant's credit and advancing the cursor when that
// credit runs out. Removal is by identity, so a racing push cannot make take
// remove the wrong request.
func (q *fairQueue) take(p *pending) {
	for i, fp := range q.front {
		if fp == p {
			copy(q.front[i:], q.front[i+1:])
			q.front[len(q.front)-1] = nil
			q.front = q.front[:len(q.front)-1]
			return
		}
	}
	if !q.fair {
		q.fifo.remove(p)
		return
	}
	for idx, name := range q.order {
		ts := q.tenants[name]
		if ts.q.remove(p) {
			ts.credit--
			if ts.credit <= 0 {
				q.cursor = (idx + 1) % len(q.order)
			} else {
				q.cursor = idx
			}
			return
		}
	}
}

// len is the total queued count across every lane.
func (q *fairQueue) len() int {
	n := len(q.front) + q.fifo.len()
	for _, ts := range q.tenants {
		n += ts.q.len()
	}
	return n
}

// depth returns one tenant's queued count (resume lane excluded).
func (q *fairQueue) depth(tenant string) int {
	if ts := q.tenants[tenant]; ts != nil {
		return ts.q.len()
	}
	return 0
}

// snapshot returns every queued request (resume lane first, then tenants in
// round-robin order, then the FIFO) for drain estimation.
func (q *fairQueue) snapshot() []*pending {
	out := append([]*pending(nil), q.front...)
	for _, name := range q.order {
		out = append(out, q.tenants[name].q.items...)
	}
	out = append(out, q.fifo.items...)
	return out
}
