package serve

import "time"

// RouteSnapshot is the scheduler state a cluster router scores replicas by:
// queue/slot occupancy, the breaker position, and the loop-published
// performance-model predictions (drain, TPOT, prefill coefficients). All
// fields are copied under the scheduler mutex, so snapshots are safe to take
// from any goroutine while the loop runs.
type RouteSnapshot struct {
	Breaker     BreakerState
	QueueDepth  int
	ActiveSlots int
	TotalSlots  int
	// PredictedDrain is the loop's estimate of how long the current queue and
	// batch take to finish — the same figure Retry-After is derived from.
	PredictedDrain time.Duration
	// PredictedTPOT is the step-cost model's latency at the current occupancy.
	PredictedTPOT time.Duration
	// PrefillReady reports whether the prefill-cost fit has enough samples;
	// PrefillFixed/PrefillPerToken are its coefficients in seconds.
	PrefillReady    bool
	PrefillFixed    float64
	PrefillPerToken float64
}

// PredictPrefill applies the snapshot's prefill-cost coefficients to a token
// count (zero before the fit is ready or for nothing to prefill).
func (rs RouteSnapshot) PredictPrefill(tokens int) time.Duration {
	if !rs.PrefillReady || tokens <= 0 {
		return 0
	}
	return time.Duration((rs.PrefillFixed + rs.PrefillPerToken*float64(tokens)) * float64(time.Second))
}

// RouteSnapshot captures the routing view of this scheduler.
func (s *Scheduler) RouteSnapshot() RouteSnapshot {
	s.mu.Lock()
	view := s.press
	depth := s.queue.len()
	active := s.active
	s.mu.Unlock()
	return RouteSnapshot{
		Breaker:         s.brk.current(),
		QueueDepth:      depth,
		ActiveSlots:     active,
		TotalSlots:      s.cfg.Slots,
		PredictedDrain:  view.drain,
		PredictedTPOT:   view.tpotNow,
		PrefillReady:    view.prefillReady,
		PrefillFixed:    view.prefillFixed,
		PrefillPerToken: view.prefillPerT,
	}
}

// PrefixMatchTokens reports how many leading prompt tokens this scheduler's
// prefix cache already holds (capped one short of the prompt so an admission
// always prefills at least one token) — the router's affinity signal. Zero
// without a prefix store.
func (s *Scheduler) PrefixMatchTokens(prompt []int) int {
	if s.prefixStore == nil || len(prompt) == 0 {
		return 0
	}
	return s.prefixStore.MatchTokens(prompt, len(prompt)-1)
}

// Config returns the scheduler's effective configuration (a copy).
func (s *Scheduler) Config() Config { return s.cfg }
