package serve

import "sync"

// BreakerState is the scheduler's health circuit-breaker position. The
// breaker watches three overload signals — fault rate (engine retries),
// arena-pressure ladder level, and queue depth — and walks
// Healthy → Degraded → Shedding as they worsen. Upgrades are immediate;
// downgrades need HealthyStreak consecutive clean evaluations (hysteresis),
// so the server does not flap at a boundary.
type BreakerState int

const (
	// Healthy accepts traffic normally.
	Healthy BreakerState = iota
	// Degraded still accepts traffic but signals pressure: the ladder is
	// escalated, faults are arriving, or the queue is deep. /healthz reports
	// it so load balancers can prefer other replicas.
	Degraded
	// Shedding refuses new submissions outright (HTTP 503) until the streak
	// of clean evaluations walks the breaker back down.
	Shedding
)

// String returns the state's wire name (the /healthz JSON value).
func (b BreakerState) String() string {
	switch b {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Shedding:
		return "shedding"
	default:
		return "unknown"
	}
}

// breakerSignals is one evaluation's input: how many overload indicators are
// currently raised.
type breakerSignals struct {
	faults        bool // engine retries observed since the last evaluation
	ladderHigh    bool // pressure ladder at or above the spill rung
	queueSwamped  bool // queue depth at or beyond capacity
	arenaCritical bool // predicted pressure above the high watermark with the ladder maxed
}

func (sig breakerSignals) raised() int {
	n := 0
	for _, b := range []bool{sig.faults, sig.ladderHigh, sig.queueSwamped, sig.arenaCritical} {
		if b {
			n++
		}
	}
	return n
}

// target maps raised signal counts to the state the breaker should be at or
// above: one signal is Degraded, two or more (or a critical arena) is
// Shedding.
func (sig breakerSignals) target() BreakerState {
	switch {
	case sig.arenaCritical || sig.raised() >= 2:
		return Shedding
	case sig.raised() >= 1:
		return Degraded
	default:
		return Healthy
	}
}

// breaker is the mutexed state machine. The scheduler loop evaluates it once
// per iteration; Health() also evaluates lazily so an idle server still
// recovers.
type breaker struct {
	mu          sync.Mutex
	state       BreakerState
	streak      int // consecutive evaluations wanting a lower state
	needStreak  int
	transitions int64
}

// evaluate folds one observation into the state machine and returns the
// resulting state plus whether it changed.
func (b *breaker) evaluate(sig breakerSignals) (BreakerState, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	want := sig.target()
	switch {
	case want > b.state:
		// Upgrades are immediate: overload protection must not lag.
		b.state = want
		b.streak = 0
		b.transitions++
		return b.state, true
	case want < b.state:
		b.streak++
		if b.streak >= b.needStreak {
			// One level at a time: Shedding recovers through Degraded.
			b.state--
			b.streak = 0
			b.transitions++
			return b.state, true
		}
	default:
		b.streak = 0
	}
	return b.state, false
}

// current returns the state without evaluating.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transitionCount returns how many state changes have occurred.
func (b *breaker) transitionCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.transitions
}
