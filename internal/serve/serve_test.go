package serve

import (
	"context"
	"errors"
	"math/rand"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/threadpool"
)

const modelSeed = 42

func tinyEngine(t *testing.T, pol runtime.Policy, workers int) *runtime.Engine {
	t.Helper()
	m, err := model.NewModel(rand.New(rand.NewSource(modelSeed)), model.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	var pool *threadpool.Pool
	if workers > 1 {
		pool = threadpool.MustNew(workers)
	}
	eng, err := runtime.NewEngine(m, pol, 1<<30, pool)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// soloReference runs one prompt on a dedicated offline engine — the
// sequential baseline of the differential suite — and truncates at the
// first EOS the way the scheduler does (EOS emitted, then the stream ends).
func soloReference(t *testing.T, prompt []int, genLen, eos int) []int {
	t.Helper()
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	out, err := eng.Generate(context.Background(), [][]int{prompt}, genLen)
	if err != nil {
		t.Fatal(err)
	}
	toks := out[0]
	if eos >= 0 {
		for i, tok := range toks {
			if tok == eos {
				return toks[:i+1]
			}
		}
	}
	return toks
}

func assertTokensEqual(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: got %d tokens %v, want %d %v", label, len(got), got, len(want), want)
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: token %d = %d, want %d (got %v, want %v)", label, i, got[i], want[i], got, want)
			return
		}
	}
}

// arrival is one trace entry: a request submitted after a delay.
type arrival struct {
	delay time.Duration
	req   Request
}

// runTrace submits the arrivals on schedule against a fresh scheduler,
// waits for every stream, closes the scheduler, and returns the outputs.
func runTrace(t *testing.T, eng *runtime.Engine, cfg Config, trace []arrival) ([][]int, []error) {
	t.Helper()
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]int, len(trace))
	errs := make([]error, len(trace))
	var wg sync.WaitGroup
	for i, a := range trace {
		wg.Add(1)
		go func(i int, a arrival) {
			defer wg.Done()
			time.Sleep(a.delay)
			st, err := sched.Submit(context.Background(), a.req)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = st.Wait()
		}(i, a)
	}
	wg.Wait()
	sched.Close()
	return outs, errs
}

// poissonTrace builds a deterministic Poisson-ish arrival trace: seeded
// exponential inter-arrival gaps, random prompt lengths and budgets.
func poissonTrace(seed int64, n, vocab, maxPrompt, maxNew int, meanGap time.Duration) []arrival {
	rng := rand.New(rand.NewSource(seed))
	var out []arrival
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += time.Duration(rng.ExpFloat64() * float64(meanGap))
		plen := 1 + rng.Intn(maxPrompt)
		prompt := make([]int, plen)
		for j := range prompt {
			prompt[j] = rng.Intn(vocab)
		}
		out = append(out, arrival{delay: at, req: Request{Prompt: prompt, MaxNewTokens: 1 + rng.Intn(maxNew)}})
	}
	return out
}

// TestDifferentialUniformTrace: simultaneous equal-shape requests through a
// 2-slot scheduler (forcing queuing behind the batch) are token-exact
// against the sequential reference.
func TestDifferentialUniformTrace(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	var trace []arrival
	for i := 0; i < 6; i++ {
		prompt := []int{1 + i, 2 + i, 3 + i, 4 + i}
		trace = append(trace, arrival{req: Request{Prompt: prompt, MaxNewTokens: 6}})
	}
	eng := tinyEngine(t, runtime.Policy{IntraOp: 2, Prefetch: true}, 2)
	outs, errs := runTrace(t, eng, cfg, trace)
	for i := range trace {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		want := soloReference(t, trace[i].req.Prompt, trace[i].req.MaxNewTokens, cfg.EOS)
		assertTokensEqual(t, "uniform trace", outs[i], want)
	}
	if used := eng.ArenaUsed(); used != 0 {
		t.Errorf("arena leak after drain: %d bytes", used)
	}
}

// TestDifferentialPoissonTrace: a seeded Poisson arrival trace with ragged
// prompts and varied budgets, continuously batched, stays token-exact.
func TestDifferentialPoissonTrace(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 3
	trace := poissonTrace(7, 10, model.Tiny().Vocab, 6, 8, 2*time.Millisecond)
	eng := tinyEngine(t, runtime.Policy{IntraOp: 2, Prefetch: true}, 2)
	outs, errs := runTrace(t, eng, cfg, trace)
	for i := range trace {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		want := soloReference(t, trace[i].req.Prompt, trace[i].req.MaxNewTokens, cfg.EOS)
		assertTokensEqual(t, "poisson trace", outs[i], want)
	}
}

// TestDifferentialFaultedTrace: the same exactness must survive injected
// transfer faults, KV corruption, memory pressure, and worker panics — the
// serving-layer counterpart of the chaos tests.
func TestDifferentialFaultedTrace(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	trace := poissonTrace(11, 8, model.Tiny().Vocab, 5, 6, time.Millisecond)
	eng := tinyEngine(t, runtime.Policy{IntraOp: 2, Prefetch: true}, 4)
	inj := faults.MustNew(7, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 0.08},
		faults.KVTransfer:     {Prob: 0.06},
		faults.KVCorruption:   {Prob: 0.06},
		faults.MemPressure:    {Prob: 0.03, Max: 4},
		faults.WorkerPanic:    {Prob: 0.04, Max: 2},
	})
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(runtime.RetryConfig{MaxAttempts: 4})
	outs, errs := runTrace(t, eng, cfg, trace)
	for i := range trace {
		if errs[i] != nil {
			t.Fatalf("request %d did not survive the chaos: %v (injector %s)", i, errs[i], inj)
		}
		want := soloReference(t, trace[i].req.Prompt, trace[i].req.MaxNewTokens, cfg.EOS)
		assertTokensEqual(t, "faulted trace", outs[i], want)
	}
	if len(inj.Counts()) == 0 {
		t.Error("no faults fired; chaos differential is vacuous")
	}
	if used := eng.ArenaUsed(); used != 0 {
		t.Errorf("arena leak after faulted drain: %d bytes", used)
	}
}

// TestEOSTerminatesStream: when the reference output contains the EOS token,
// the served stream ends at it (inclusive), matching the truncated
// reference.
func TestEOSTerminatesStream(t *testing.T) {
	prompt := []int{1, 2, 3, 4}
	const budget = 10
	full := soloReference(t, prompt, budget, -1)
	eos := full[2] // force an EOS hit on the third generated token
	want := soloReference(t, prompt, budget, eos)
	if len(want) >= len(full) {
		t.Fatalf("test setup broken: EOS %d does not truncate %v", eos, full)
	}

	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 1
	cfg.EOS = eos
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	outs, errs := runTrace(t, eng, cfg, []arrival{{req: Request{Prompt: prompt, MaxNewTokens: budget}}})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	assertTokensEqual(t, "eos stream", outs[0], want)
}

// TestQueueBackpressure: with a single busy slot and a depth-2 queue, extra
// submissions reject with ErrQueueFull and are counted.
func TestQueueBackpressure(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 1
	cfg.QueueDepth = 2
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	req := Request{Prompt: []int{1, 2, 3}, MaxNewTokens: 64}
	var streams []*Stream
	var full int
	// Burst far past slot+queue capacity; at least one submission must hit
	// the bound (the loop can drain at most one queue entry per admission).
	for i := 0; i < 12; i++ {
		st, err := sched.Submit(context.Background(), req)
		switch {
		case err == nil:
			streams = append(streams, st)
		case errors.Is(err, ErrQueueFull):
			full++
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if full == 0 {
		t.Error("burst of 12 into slots=1/queue=2 never hit ErrQueueFull")
	}
	for _, st := range streams {
		if _, err := st.Wait(); err != nil {
			t.Errorf("accepted request failed: %v", err)
		}
	}
	if got := eng.Stats().ServeSummary().Rejected; got != int64(full) {
		t.Errorf("Rejected = %d, want %d", got, full)
	}
}

// TestSubmitValidation: malformed requests reject without touching a slot.
func TestSubmitValidation(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	bad := []Request{
		{Prompt: nil},
		{Prompt: make([]int, cfg.MaxPromptLen+1)},
		{Prompt: []int{1}, MaxNewTokens: -1},
		{Prompt: []int{1}, MaxNewTokens: cfg.MaxNewTokens + 1},
		{Prompt: []int{-1}},
		{Prompt: []int{cfg.Vocab}},
	}
	for i, req := range bad {
		if _, err := sched.Submit(context.Background(), req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	if got := eng.Stats().ServeSummary().Rejected; got != int64(len(bad)) {
		t.Errorf("Rejected = %d, want %d", got, len(bad))
	}
}

// TestSubmitAfterClose rejects with ErrClosed.
func TestSubmitAfterClose(t *testing.T) {
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sched, err := New(eng, DefaultConfig(model.Tiny().Vocab))
	if err != nil {
		t.Fatal(err)
	}
	sched.Close()
	if _, err := sched.Submit(context.Background(), Request{Prompt: []int{1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

// TestCancellationRetiresSlot: a cancelled in-flight request finishes with
// context.Canceled at the next step boundary, frees its slot for the queued
// successor, and the successor's tokens are unaffected by the evicted
// neighbour.
func TestCancellationRetiresSlot(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 1
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	ctx, cancel := context.WithCancel(context.Background())
	long, err := sched.Submit(ctx, Request{Prompt: []int{5, 6, 7}, MaxNewTokens: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the victim to start producing, then cancel it.
	<-long.Tokens()
	cancel()
	if _, err := long.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled request err = %v, want context.Canceled", err)
	}

	next := Request{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 5}
	st, err := sched.Submit(context.Background(), next)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Wait()
	if err != nil {
		t.Fatal(err)
	}
	want := soloReference(t, next.Prompt, next.MaxNewTokens, cfg.EOS)
	assertTokensEqual(t, "post-cancel request", got, want)
	if eng.Stats().ServeSummary().Canceled == 0 {
		t.Error("cancellation not counted")
	}
}

// TestSchedulerStress hammers one scheduler with concurrent submitters,
// cancellers, and deadline-bound clients, then asserts a clean drain: every
// stream terminates, no goroutine outlives Close, and the arena holds no
// leaked staging bytes.
func TestSchedulerStress(t *testing.T) {
	const clients = 24
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 3
	cfg.QueueDepth = clients
	before := goroutine_count()
	eng := tinyEngine(t, runtime.Policy{IntraOp: 2, Prefetch: true}, 4)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	type job struct {
		req    Request
		mode   int // 0 = run to completion, 1 = cancel mid-flight, 2 = short deadline
		cancel time.Duration
	}
	jobs := make([]job, clients)
	for i := range jobs {
		plen := 1 + rng.Intn(5)
		prompt := make([]int, plen)
		for j := range prompt {
			prompt[j] = rng.Intn(cfg.Vocab)
		}
		jobs[i] = job{
			req:    Request{Prompt: prompt, MaxNewTokens: 4 + rng.Intn(12)},
			mode:   i % 3,
			cancel: time.Duration(1+rng.Intn(20)) * time.Millisecond,
		}
	}

	var wg sync.WaitGroup
	for i, jb := range jobs {
		wg.Add(1)
		go func(i int, jb job) {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc
			switch jb.mode {
			case 1:
				ctx, cancel = context.WithCancel(ctx)
				go func() { time.Sleep(jb.cancel); cancel() }()
			case 2:
				ctx, cancel = context.WithTimeout(ctx, jb.cancel)
				defer cancel()
			}
			st, err := sched.Submit(ctx, jb.req)
			if errors.Is(err, ErrQueueFull) {
				return
			}
			if err != nil {
				t.Errorf("client %d submit: %v", i, err)
				return
			}
			toks, err := st.Wait()
			if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("client %d: unexpected terminal error %v", i, err)
			}
			if err == nil && len(toks) == 0 {
				t.Errorf("client %d: completed with no tokens", i)
			}
		}(i, jb)
	}
	wg.Wait()
	sched.Close()

	if used := eng.ArenaUsed(); used != 0 {
		t.Errorf("arena leak after stress drain: %d bytes", used)
	}
	sum := eng.Stats().ServeSummary()
	if sum.Admitted == 0 {
		t.Error("stress run admitted nothing")
	}
	if sum.Completed+sum.Canceled+sum.Rejected == 0 {
		t.Error("stress run recorded no outcomes")
	}
	// Every scheduler goroutine must have exited.
	deadline := time.Now().Add(3 * time.Second)
	for goroutine_count() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := goroutine_count(); n > before {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf[:goruntime.Stack(buf, true)])
	}
}

func goroutine_count() int { return goruntime.NumGoroutine() }

// TestMetricsSnapshot: after a served batch, the metrics reflect the
// admissions, completions, occupancy, and latency samples.
func TestMetricsSnapshot(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var streams []*Stream
	for i := 0; i < 4; i++ {
		st, err := sched.Submit(context.Background(), Request{Prompt: []int{1, 2, 3}, MaxNewTokens: 4})
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, st)
	}
	for _, st := range streams {
		if _, err := st.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	m := sched.Metrics()
	sched.Close()
	if m.Serve.Admitted != 4 || m.Serve.Completed != 4 {
		t.Errorf("admitted/completed = %d/%d, want 4/4", m.Serve.Admitted, m.Serve.Completed)
	}
	if m.Serve.BatchSteps == 0 || m.Serve.AvgOccupancy <= 0 {
		t.Errorf("batch accounting empty: steps=%d occupancy=%f", m.Serve.BatchSteps, m.Serve.AvgOccupancy)
	}
	if m.Serve.TTFTP50 <= 0 || m.Serve.TTFTP99 < m.Serve.TTFTP50 {
		t.Errorf("TTFT quantiles inconsistent: p50=%v p99=%v", m.Serve.TTFTP50, m.Serve.TTFTP99)
	}
	if m.TokensGenerated != 16 {
		t.Errorf("TokensGenerated = %d, want 16", m.TokensGenerated)
	}
	if m.ActiveSlots != 0 || m.QueueDepth != 0 {
		t.Errorf("drained scheduler reports active=%d queued=%d", m.ActiveSlots, m.QueueDepth)
	}
}
