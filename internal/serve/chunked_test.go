package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/runtime"
)

// TestDifferentialChunkedTrace: chunked admission must be invisible in the
// tokens — a Poisson trace with prompts spanning well past the chunk size is
// token-exact against the sequential reference at every chunk size,
// including the degenerate one-token chunk.
func TestDifferentialChunkedTrace(t *testing.T) {
	for _, chunk := range []int{1, 16} {
		t.Run(fmt.Sprintf("chunk%d", chunk), func(t *testing.T) {
			cfg := DefaultConfig(model.Tiny().Vocab)
			cfg.Slots = 2
			cfg.ChunkTokens = chunk
			trace := poissonTrace(19, 10, model.Tiny().Vocab, 40, 8, 2*time.Millisecond)
			eng := tinyEngine(t, runtime.Policy{IntraOp: 2, Prefetch: true}, 2)
			outs, errs := runTrace(t, eng, cfg, trace)
			for i := range trace {
				if errs[i] != nil {
					t.Fatalf("request %d: %v", i, errs[i])
				}
				want := soloReference(t, trace[i].req.Prompt, trace[i].req.MaxNewTokens, cfg.EOS)
				assertTokensEqual(t, fmt.Sprintf("request %d", i), outs[i], want)
			}
		})
	}
}

// TestDifferentialChunkedPrefixReuse: chunked prefill composes with the
// shared-prefix cache — repeated prompts seed from committed blocks and
// resume chunking from the seeded boundary, still token-exact.
func TestDifferentialChunkedPrefixReuse(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	cfg.ChunkTokens = 8
	cfg.PrefixCacheBytes = 4 << 20
	cfg.PrefixBlockTokens = 8

	shared := make([]int, 30)
	for i := range shared {
		shared[i] = (i * 13) % model.Tiny().Vocab
	}
	var trace []arrival
	for i := 0; i < 6; i++ {
		prompt := append(append([]int{}, shared...), i%model.Tiny().Vocab)
		trace = append(trace, arrival{
			delay: time.Duration(i) * time.Millisecond,
			req:   Request{Prompt: prompt, MaxNewTokens: 6},
		})
	}
	eng := tinyEngine(t, runtime.Policy{IntraOp: 2, Prefetch: true}, 2)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	for i, a := range trace {
		time.Sleep(a.delay)
		st, err := sched.Submit(context.Background(), a.req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		out, err := st.Wait()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		want := soloReference(t, a.req.Prompt, a.req.MaxNewTokens, cfg.EOS)
		assertTokensEqual(t, fmt.Sprintf("request %d", i), out, want)
	}
	if hits := sched.Metrics().Serve.PrefixHits; hits == 0 {
		t.Error("repeated shared-prefix prompts produced no prefix hits")
	}
}

// TestChunkedCancellationMidPrefill: cancelling a request while its prefill
// is mid-chunk releases the slot and leaves the scheduler healthy — the next
// request is token-exact.
func TestChunkedCancellationMidPrefill(t *testing.T) {
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 1
	cfg.ChunkTokens = 2
	cfg.MaxPromptLen = 512
	eng := tinyEngine(t, runtime.Policy{IntraOp: 1}, 1)
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	long := make([]int, 400)
	for i := range long {
		long[i] = (i * 7) % model.Tiny().Vocab
	}
	ctx, cancel := context.WithCancel(context.Background())
	st, err := sched.Submit(ctx, Request{Prompt: long, MaxNewTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 400 tokens at 2/chunk is 200 loop iterations: cancel lands mid-prefill.
	time.Sleep(2 * time.Millisecond)
	cancel()
	if _, err := st.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled mid-prefill request returned %v, want context.Canceled", err)
	}

	next := Request{Prompt: []int{3, 1, 4, 1, 5, 9, 2, 6}, MaxNewTokens: 6}
	st2, err := sched.Submit(context.Background(), next)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	want := soloReference(t, next.Prompt, next.MaxNewTokens, cfg.EOS)
	assertTokensEqual(t, "post-cancel request", out, want)
}

// TestChunkedSoak is the chunked-prefill chaos soak: a bursty trace of long
// prompts (every one spanning many chunks) with transfer/corruption/panic
// fault windows toggling mid-prefill. Faults may force chunk retries or fail
// a request, but every request must end in a terminal state, completed
// requests must be token-exact against the solo reference, and the drain
// must leak neither goroutines nor arena bytes.
func TestChunkedSoak(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 12
	}
	cfg := DefaultConfig(model.Tiny().Vocab)
	cfg.Slots = 2
	cfg.QueueDepth = n
	cfg.MaxPromptLen = 512
	cfg.MaxNewTokens = 16
	cfg.DefaultNewTokens = 8
	cfg.ChunkTokens = 8

	baselineGoroutines := goruntime.NumGoroutine()
	eng := tinyEngine(t, runtime.Policy{IntraOp: 2, Prefetch: true}, 2)
	inj := faults.MustNew(31, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 0.04},
		faults.KVTransfer:     {Prob: 0.03},
		faults.KVCorruption:   {Prob: 0.03},
		faults.WorkerPanic:    {Prob: 0.03, Max: 3},
	})
	inj.SetActive(false)
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(runtime.RetryConfig{MaxAttempts: 4})
	sched, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fault windows: with 40+-token prompts at 8 tokens/chunk, every toggle
	// lands inside some request's multi-chunk prefill.
	stopFaults := make(chan struct{})
	var faultWG sync.WaitGroup
	faultWG.Add(1)
	go func() {
		defer faultWG.Done()
		on := false
		for {
			select {
			case <-stopFaults:
				inj.SetActive(false)
				return
			case <-time.After(10 * time.Millisecond):
				on = !on
				inj.SetActive(on)
			}
		}
	}()

	rng := rand.New(rand.NewSource(77))
	type result struct {
		out []int
		err error
	}
	reqs := make([]Request, n)
	delays := make([]time.Duration, n)
	at := time.Duration(0)
	for i := range reqs {
		if (i/4)%2 == 1 { // bursty: alternating tight and relaxed arrivals
			at += time.Duration(rng.ExpFloat64() * float64(time.Millisecond))
		} else {
			at += time.Duration(rng.ExpFloat64() * float64(6*time.Millisecond))
		}
		plen := 40 + rng.Intn(180)
		prompt := make([]int, plen)
		for j := range prompt {
			prompt[j] = rng.Intn(cfg.Vocab)
		}
		reqs[i] = Request{Prompt: prompt, MaxNewTokens: 2 + rng.Intn(10)}
		delays[i] = at
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(delays[i])
			st, err := sched.Submit(context.Background(), reqs[i])
			if err != nil {
				results[i].err = err
				return
			}
			results[i].out, results[i].err = st.Wait()
		}(i)
	}
	wg.Wait()
	close(stopFaults)
	faultWG.Wait()

	completed := 0
	for i, r := range results {
		if r.err != nil {
			// Exhausted retries and overload sheds are legal terminal states;
			// anything else is a scheduler bug.
			if !errors.Is(r.err, ErrOverloaded) && !errors.Is(r.err, ErrQueueFull) && !faults.IsTransient(r.err) {
				t.Errorf("request %d failed with a non-fault, non-overload error: %v", i, r.err)
			}
			continue
		}
		completed++
		want := soloReference(t, reqs[i].Prompt, reqs[i].MaxNewTokens, cfg.EOS)
		assertTokensEqual(t, fmt.Sprintf("soak request %d", i), r.out, want)
	}
	if completed == 0 {
		t.Fatal("chunked soak completed zero requests")
	}
	if len(inj.Counts()) == 0 {
		t.Error("no faults fired; the chaos soak is vacuous")
	}
	t.Logf("chunked soak: %d/%d completed, faults %v", completed, n, inj.Counts())

	sched.Close()
	if used := eng.ArenaUsed(); used != 0 {
		t.Errorf("arena leak after soak drain: %d bytes", used)
	}
	deadline := time.Now().Add(5 * time.Second)
	g := goruntime.NumGoroutine()
	for g > baselineGoroutines+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		g = goruntime.NumGoroutine()
	}
	if g > baselineGoroutines+2 {
		t.Errorf("goroutines grew from %d to %d across the soak", baselineGoroutines, g)
	}
}

// TestChunkedLongPromptDoesNotStallDecode is the TPOT-spike regression: a
// long-prompt arrival must not freeze concurrent decode streams. The check
// counts decode tokens delivered during the long request's prefill window —
// an event count fixed by the scheduler's interleaving (one chunk per loop
// iteration, decode stepping in between), not a wall-clock ratio, so it is
// stable under -race. Monolithic admission delivers (near) zero tokens in
// that window because the engine loop is inside the prefill for its whole
// duration; chunked admission keeps the stream flowing.
func TestChunkedLongPromptDoesNotStallDecode(t *testing.T) {
	const (
		longLen   = 1024
		chunk     = 32
		decodeLen = 120
	)
	run := func(t *testing.T, chunkTokens int) (during int) {
		t.Helper()
		cfg := DefaultConfig(model.Tiny().Vocab)
		cfg.Slots = 2
		cfg.ChunkTokens = chunkTokens
		cfg.MaxPromptLen = longLen
		cfg.MaxNewTokens = decodeLen
		eng := tinyEngine(t, runtime.Policy{IntraOp: 2, Prefetch: true}, 2)
		sched, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sched.Close()

		decode, err := sched.Submit(context.Background(), Request{
			Prompt: []int{1, 2, 3, 4, 5, 6}, MaxNewTokens: decodeLen,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Let the decode stream produce a few tokens before the long arrival.
		got := 0
		for got < 5 {
			if _, ok := <-decode.Tokens(); !ok {
				t.Fatal("decode stream ended early")
			}
			got++
		}
		long := make([]int, longLen)
		for i := range long {
			long[i] = (i * 11) % model.Tiny().Vocab
		}
		lst, err := sched.Submit(context.Background(), Request{Prompt: long, MaxNewTokens: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Count decode tokens until the long request's first token arrives
		// (the end of its prefill).
		firstLong := lst.Tokens()
		counting := true
		for counting {
			select {
			case _, ok := <-firstLong:
				if !ok {
					t.Fatal("long stream ended before first token")
				}
				counting = false
			case _, ok := <-decode.Tokens():
				if !ok {
					counting = false // decode budget exhausted first
				} else {
					during++
				}
			}
		}
		if _, err := decode.Wait(); err != nil {
			t.Fatal(err)
		}
		if _, err := lst.Wait(); err != nil {
			t.Fatal(err)
		}
		return during
	}

	chunked := run(t, chunk)
	mono := run(t, 0)
	// 1024 tokens at 32/chunk is 32 loop iterations with a decode step in
	// each; monolithic admission blocks the loop for the whole prefill.
	if chunked < 10 {
		t.Errorf("chunked: only %d decode tokens delivered during the long prefill, want >= 10", chunked)
	}
	if mono >= chunked {
		t.Errorf("monolithic admission delivered %d tokens during the prefill window, chunked %d — chunking should dominate", mono, chunked)
	}
}
