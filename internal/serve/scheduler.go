package serve

import (
	"context"
	"sync"
	"time"

	"repro/internal/runtime"
)

// pending is one request's lifecycle record, owned by the scheduler loop
// once submitted.
type pending struct {
	req       Request
	ctx       context.Context
	stream    *Stream
	submitted time.Time

	slot     int
	produced int
	firstTok time.Time
	lastTok  time.Time
}

// Scheduler drives a continuous-batching session: submissions land in a
// bounded queue; a single loop goroutine admits them into free slots at
// decode-step boundaries, steps the shared batch, fans tokens out to the
// per-request streams, and retires finished or cancelled sequences so their
// slots recycle immediately.
type Scheduler struct {
	eng   *runtime.Engine
	sess  *runtime.Session
	cfg   Config
	start time.Time

	mu     sync.Mutex
	queue  admitQueue
	closed bool
	active int // slots occupied, mirrored under mu for Metrics

	wake chan struct{} // 1-buffered submit/close signal for the idle loop
	done chan struct{} // closed when the loop drains and exits

	// Loop-owned state (no locking needed): slot -> in-flight request.
	running map[int]*pending
}

// New builds a scheduler over the engine and starts its loop. The engine
// must be dedicated to this scheduler (sessions own the engine's arena and
// stats) and its fault injector, if any, wired beforehand.
func New(eng *runtime.Engine, cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sess, err := eng.NewSession(cfg.Slots)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		eng:     eng,
		sess:    sess,
		cfg:     cfg,
		start:   time.Now(),
		queue:   admitQueue{capacity: cfg.QueueDepth},
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		running: make(map[int]*pending),
	}
	go s.loop()
	return s, nil
}

// Submit validates and enqueues a request, returning its token stream. The
// context governs the request's whole lifetime: cancellation or deadline
// expiry removes it from the queue or retires its slot at the next step
// boundary, with the stream finishing on ctx.Err().
func (s *Scheduler) Submit(ctx context.Context, req Request) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := s.cfg.normalize(req)
	if err != nil {
		s.eng.Stats().RecordRejection()
		return nil, err
	}
	p := &pending{req: req, ctx: ctx, stream: newStream(req.MaxNewTokens), submitted: time.Now()}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.eng.Stats().RecordRejection()
		return nil, ErrClosed
	}
	if !s.queue.push(p) {
		s.mu.Unlock()
		s.eng.Stats().RecordRejection()
		return nil, ErrQueueFull
	}
	s.mu.Unlock()
	s.kick()
	return p.stream, nil
}

// Close stops admission and waits for the queue and every in-flight request
// to drain. Queued requests still run to completion; callers wanting faster
// shutdown cancel their request contexts.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.kick()
	<-s.done
}

// Metrics is a point-in-time view of the serving state, combining the
// scheduler's queue/slot occupancy with the engine's extended stats.
type Metrics struct {
	QueueDepth  int
	ActiveSlots int
	TotalSlots  int
	Uptime      time.Duration

	// TokensGenerated and TokensPerSec cover every token the engine produced
	// since the scheduler started (prefill first-tokens included).
	TokensGenerated int64
	TokensPerSec    float64

	Serve runtime.ServeSummary
}

// Metrics snapshots the serving metrics.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	depth := s.queue.len()
	active := s.active
	s.mu.Unlock()
	st := s.eng.Stats()
	summary := st.ServeSummary()
	uptime := time.Since(s.start)
	tokens := st.TokensGeneratedCount()
	m := Metrics{
		QueueDepth:      depth,
		ActiveSlots:     active,
		TotalSlots:      s.cfg.Slots,
		Uptime:          uptime,
		TokensGenerated: tokens,
		Serve:           summary,
	}
	if uptime > 0 {
		m.TokensPerSec = float64(tokens) / uptime.Seconds()
	}
	return m
}

// noteActive mirrors the loop-owned occupancy into the mu-guarded counter
// Metrics reads.
func (s *Scheduler) noteActive(delta int) {
	s.mu.Lock()
	s.active += delta
	s.mu.Unlock()
}

// kick nudges an idle loop; the 1-buffered channel makes signals sticky so a
// submit racing the loop's idle check is never lost.
func (s *Scheduler) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop is the scheduler's only mutator of the session. Each iteration works
// one step boundary: retire cancelled slots, admit from the queue, then run
// one decode step over the active batch and deliver its tokens.
func (s *Scheduler) loop() {
	defer close(s.done)
	for {
		s.retireCancelled()
		s.admit()
		if s.sess.NumActive() == 0 {
			s.mu.Lock()
			idle := s.queue.len() == 0
			finished := idle && s.closed
			s.mu.Unlock()
			if finished {
				return
			}
			if idle {
				<-s.wake
			}
			continue
		}
		s.stepBatch()
	}
}

// retireCancelled retires every active slot whose request context ended,
// finishing its stream with the context error.
func (s *Scheduler) retireCancelled() {
	for slot, p := range s.running {
		if err := p.ctx.Err(); err != nil {
			s.sess.Retire(slot)
			delete(s.running, slot)
			s.noteActive(-1)
			p.stream.finish(err)
			s.eng.Stats().RecordCancellation()
		}
	}
}

// admit moves queued requests into free slots, prefilling each and emitting
// its first token. Requests whose context already ended are dropped without
// consuming a slot.
func (s *Scheduler) admit() {
	for s.sess.NumActive() < s.cfg.Slots {
		s.mu.Lock()
		p := s.queue.pop()
		s.mu.Unlock()
		if p == nil {
			return
		}
		if err := p.ctx.Err(); err != nil {
			p.stream.finish(err)
			s.eng.Stats().RecordCancellation()
			continue
		}
		slot := s.freeSlot()
		tok, err := s.sess.Admit(p.ctx, slot, p.req.Prompt)
		if err != nil {
			p.stream.finish(err)
			if p.ctx.Err() != nil {
				s.eng.Stats().RecordCancellation()
			} else {
				s.eng.Stats().RecordRejection()
			}
			continue
		}
		now := time.Now()
		p.slot, p.firstTok, p.lastTok = slot, now, now
		s.running[slot] = p
		s.noteActive(1)
		s.eng.Stats().RecordAdmission(now.Sub(p.submitted))
		s.deliver(p, tok)
	}
}

// freeSlot returns an inactive slot index; admit only calls it when one
// exists (NumActive < Slots).
func (s *Scheduler) freeSlot() int {
	for slot := 0; slot < s.cfg.Slots; slot++ {
		if !s.sess.IsActive(slot) && s.running[slot] == nil {
			return slot
		}
	}
	panic("serve: no free slot despite NumActive < Slots")
}

// stepBatch advances the whole active batch one token and fans the results
// out. A step error after the session's own retries and degradations is
// batch-fatal: every in-flight request fails with it.
func (s *Scheduler) stepBatch() {
	toks, err := s.sess.Step(context.Background())
	if err != nil {
		for slot, p := range s.running {
			s.sess.Retire(slot)
			delete(s.running, slot)
			s.noteActive(-1)
			p.stream.finish(err)
			s.eng.Stats().RecordCancellation()
		}
		return
	}
	s.mu.Lock()
	depth := s.queue.len()
	s.mu.Unlock()
	s.eng.Stats().RecordBatchStep(len(toks), depth)
	for _, st := range toks {
		if p := s.running[st.Slot]; p != nil {
			p.lastTok = time.Now()
			s.deliver(p, st.Token)
		}
	}
}

// deliver pushes one token to the request's stream and completes the request
// when it hits EOS or its budget.
func (s *Scheduler) deliver(p *pending, tok int) {
	p.stream.push(tok)
	p.produced++
	if (s.cfg.EOS >= 0 && tok == s.cfg.EOS) || p.produced >= p.req.MaxNewTokens {
		s.sess.Retire(p.slot)
		delete(s.running, p.slot)
		s.noteActive(-1)
		var tpot time.Duration
		if p.produced > 1 {
			tpot = p.lastTok.Sub(p.firstTok) / time.Duration(p.produced-1)
		}
		p.stream.finish(nil)
		s.eng.Stats().RecordCompletion(tpot)
	}
}
