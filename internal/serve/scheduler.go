package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/xtrace"
)

// pending is one request's lifecycle record, owned by the scheduler loop
// once submitted.
type pending struct {
	req       Request
	ctx       context.Context
	stream    *Stream
	submitted time.Time
	// tenant is the resolved billing tenant (DefaultTenant for empty/unknown
	// tags; equal to req.Tenant only when that tenant is configured).
	tenant string

	slot     int
	produced int
	lastTok  time.Time

	// TPOT accounting: the sum and count of *decode* inter-token gaps only.
	// Tokens that arrive with an admission (the prefill's first token, and
	// every re-prefill token after an eviction resume) restart the window
	// without contributing a gap, so prefill latency and eviction dead time
	// never skew the decode-latency metric.
	tpotAccum time.Duration
	tpotGaps  int

	// Overload-protection state.
	admittedOnce bool  // TTFT/admission recorded; set on first successful admit
	kvQuant      bool  // sticky per-request KV storage mode (ladder rung 1)
	estimate     int64 // admission-time predicted peak arena bytes
	// prefillDeferrals counts suffix-cost gate deferrals, bounding how long
	// a long-cold-prefill head request can be held back (FIFO liveness).
	prefillDeferrals int
	// resumePrompt replaces req.Prompt after an eviction: the original
	// prompt plus every token already delivered, so re-prefill regenerates
	// the exact continuation (recompute-on-resume).
	resumePrompt []int
}

// promptLen returns the effective prompt length (resume prompt after evict).
func (p *pending) promptLen() int {
	if p.resumePrompt != nil {
		return len(p.resumePrompt)
	}
	return len(p.req.Prompt)
}

// effectivePrompt returns the tokens the next admission will prefill.
func (p *pending) effectivePrompt() []int {
	if p.resumePrompt != nil {
		return p.resumePrompt
	}
	return p.req.Prompt
}

// noteAdmitToken stamps a token delivered by an admission's prefill: it
// restarts the decode-gap window without recording a gap.
func (p *pending) noteAdmitToken(now time.Time) { p.lastTok = now }

// noteDecodeToken stamps a token delivered by a decode step, accumulating
// the gap since the previous token of this admission window.
func (p *pending) noteDecodeToken(now time.Time) {
	if !p.lastTok.IsZero() {
		p.tpotAccum += now.Sub(p.lastTok)
		p.tpotGaps++
	}
	p.lastTok = now
}

// tpot returns the request's mean decode inter-token gap (zero when every
// token came from prefills).
func (p *pending) tpot() time.Duration {
	if p.tpotGaps == 0 {
		return 0
	}
	return p.tpotAccum / time.Duration(p.tpotGaps)
}

// finalKVTokens is the slot's token count at completion: original prompt
// plus the full budget, invariant across evict/resume (produced tokens move
// from budget to prompt).
func (p *pending) finalKVTokens() (promptLen, newTokens int) {
	return len(p.req.Prompt), p.req.MaxNewTokens
}

// pressureView is the loop-published snapshot of overload state that Submit,
// Health, and Metrics read under the scheduler mutex.
type pressureView struct {
	level             int
	gpuFrac, hostFrac float64
	predictedPeak     int64 // current batch's predicted peak at final lengths
	maxPredictedPeak  int64 // high-water of admission-time estimates
	drain             time.Duration
	tpotNext          time.Duration // predicted TPOT if one more slot joins
	tpotNow           time.Duration // predicted TPOT at the current occupancy

	// Prefill-cost coefficients (seconds), published so routers can predict
	// a candidate admission's prefill stall without touching the loop-owned
	// PrefillCostModel from another goroutine.
	prefillReady              bool
	prefillFixed, prefillPerT float64
}

// Scheduler drives a continuous-batching session: submissions land in a
// bounded queue; a single loop goroutine admits them into free slots at
// decode-step boundaries, steps the shared batch, fans tokens out to the
// per-request streams, and retires finished or cancelled sequences so their
// slots recycle immediately.
//
// With Config.AdmissionControl, the loop additionally closes the paper's
// performance model back onto serving: footprint estimates gate admission,
// a KV-pressure ladder (quantize new slots → spill → evict) sheds memory
// before the arena OOMs, and a circuit breaker walks
// healthy → degraded → shedding under sustained overload.
type Scheduler struct {
	eng   *runtime.Engine
	sess  *runtime.Session
	cfg   Config
	start time.Time

	// Admission-control machinery (zero-valued when disabled).
	adm         perfmodel.AdmissionModel
	kvHeadroom  int64 // arena capacity minus the weight working set
	cost        *perfmodel.StepCostModel
	prefillCost *perfmodel.PrefillCostModel
	brk         breaker

	// prefixStore is the shared-prefix KV cache (nil when disabled).
	prefixStore *runtime.PrefixStore

	// lifeCtx is the scheduler's lifecycle context: batch steps derive from
	// it (never from context.Background()), so a hung step can be unwound
	// once every request it serves has been abandoned, and drain cannot be
	// wedged behind work nobody is waiting for.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc

	mu          sync.Mutex
	queue       *fairQueue
	closed      bool
	active      int // slots occupied, mirrored under mu for Metrics
	press       pressureView
	lastRetries int64
	// Hot-swap state (adaptswap.go): the pending-policy mailbox the loop
	// drains at step boundaries, the last-applied policy mirror readers see,
	// lifetime swap counters, and the adapt loop's stats closure.
	pendingSwap  *runtime.ExecPolicy
	curExec      runtime.ExecPolicy
	swapsApplied int64
	swapsRefused int64
	adaptStats   func() map[string]any
	// Multi-tenant accounting (populated only when cfg.Tenants is set):
	// active slots per tenant (the fair-share eligibility input) and the
	// lifetime per-tenant counters Metrics reports.
	tenantActive map[string]int
	tenantCounts map[string]*TenantMetrics

	wake chan struct{} // 1-buffered submit/close signal for the idle loop
	done chan struct{} // closed when the loop drains and exits

	// Loop-owned state (no locking needed): slot -> in-flight request,
	// pressure-ladder level, the de-escalation streak, and the decode-step
	// counter labelling step spans.
	running      map[int]*pending
	level        int
	healthyEvals int
	stepIdx      int
	// chunking maps slot -> request with a chunked prefill in flight
	// (Config.ChunkTokens > 0). These slots are occupied but not yet
	// decoding; the loop advances one chunk per iteration between decode
	// steps, so no step stalls for more than one chunk's cost.
	chunking map[int]*pending
}

// New builds a scheduler over the engine and starts its loop. The engine
// must be dedicated to this scheduler (sessions own the engine's arena and
// stats) and its fault injector, if any, wired beforehand. With admission
// control, the arena must leave positive KV headroom beyond the weight
// working set, and the ladder's quantization groups must align to the
// model's rows.
func New(eng *runtime.Engine, cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sess, err := eng.NewSession(cfg.Slots)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		eng:          eng,
		sess:         sess,
		cfg:          cfg,
		start:        time.Now(),
		queue:        newFairQueue(cfg),
		wake:         make(chan struct{}, 1),
		done:         make(chan struct{}),
		running:      make(map[int]*pending),
		chunking:     make(map[int]*pending),
		tenantActive: make(map[string]int),
		tenantCounts: make(map[string]*TenantMetrics),
	}
	s.curExec = eng.ExecPolicy()
	if cfg.LatencySampleCap > 0 {
		eng.Stats().SetServeSampleCap(cfg.LatencySampleCap)
	}
	s.lifeCtx, s.lifeCancel = context.WithCancel(context.Background())
	if cfg.PrefixCacheBytes > 0 {
		ps, err := runtime.NewPrefixStore(cfg.PrefixCacheBytes, cfg.PrefixBlockTokens,
			eng.ModelConfig().Layers, eng.ModelConfig().Hidden)
		if err != nil {
			return nil, err
		}
		sess.UsePrefixStore(ps)
		s.prefixStore = ps
	}
	s.prefillCost = &perfmodel.PrefillCostModel{}
	if cfg.AdmissionControl {
		s.adm = newAdmissionModel(eng, cfg)
		if err := s.adm.Validate(); err != nil {
			return nil, err
		}
		s.kvHeadroom = eng.ArenaCapacity() - s.adm.ResidentBase - int64(s.adm.WeightBuffers)*s.adm.LayerBytes
		if s.kvHeadroom <= 0 {
			return nil, fmt.Errorf("serve: arena capacity %d leaves no KV headroom beyond the weight working set (%d resident + %d buffered)",
				eng.ArenaCapacity(), s.adm.ResidentBase, int64(s.adm.WeightBuffers)*s.adm.LayerBytes)
		}
		if eng.ModelConfig().Hidden%cfg.LadderKV.GroupSize != 0 {
			return nil, fmt.Errorf("serve: ladder KV group size %d must divide the model hidden dimension %d",
				cfg.LadderKV.GroupSize, eng.ModelConfig().Hidden)
		}
		s.cost = &perfmodel.StepCostModel{}
		s.brk.needStreak = cfg.HealthyStreak
	}
	go s.loop()
	return s, nil
}

// Submit validates and enqueues a request, returning its token stream. The
// context governs the request's whole lifetime: cancellation or deadline
// expiry removes it from the queue or retires its slot at the next step
// boundary, with the stream finishing on ctx.Err(). Under admission control,
// overloaded states reject with a structured *OverloadError instead of
// queuing work the server cannot absorb.
func (s *Scheduler) Submit(ctx context.Context, req Request) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := s.cfg.normalize(req)
	if err != nil {
		s.eng.Stats().RecordRejection()
		return nil, err
	}
	tenant, tcfg := s.cfg.tenantConfig(req.Tenant)
	if s.cfg.fairShare() {
		s.bumpTenant(tenant, func(m *TenantMetrics) { m.Submitted++ })
		if tcfg.Slots == 0 {
			// An explicit zero-slot quota suspends the tenant: no amount of
			// waiting admits it, so the rejection is permanent (HTTP 422).
			s.bumpTenant(tenant, func(m *TenantMetrics) { m.Rejected++ })
			s.eng.Stats().RecordOverloadRejection()
			return nil, &OverloadError{Reason: "tenant-suspended", State: s.brk.current(), Permanent: true}
		}
	}
	if s.cfg.AdmissionControl {
		if err := s.admitCheck(req); err != nil {
			s.eng.Stats().RecordOverloadRejection()
			s.bumpTenant(tenant, func(m *TenantMetrics) { m.Rejected++ })
			return nil, err
		}
	}
	p := &pending{req: req, tenant: tenant, ctx: ctx, stream: newStream(req.MaxNewTokens), submitted: time.Now()}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.eng.Stats().RecordRejection()
		return nil, ErrClosed
	}
	if err := s.queue.push(p); err != nil {
		s.mu.Unlock()
		s.eng.Stats().RecordRejection()
		s.bumpTenant(tenant, func(m *TenantMetrics) { m.Rejected++ })
		return nil, err
	}
	s.mu.Unlock()
	s.kick()
	return p.stream, nil
}

// bumpTenant applies a counter update under the scheduler mutex (no-op in
// single-tenant mode).
func (s *Scheduler) bumpTenant(name string, f func(*TenantMetrics)) {
	if !s.cfg.fairShare() {
		return
	}
	s.mu.Lock()
	m := s.tenantCounts[name]
	if m == nil {
		m = &TenantMetrics{}
		s.tenantCounts[name] = m
	}
	f(m)
	s.mu.Unlock()
}

// tenantEligibleLocked is the fair-share dispatcher's quota check: a tenant
// may only take a slot while its active count is below its quota. Called by
// fairQueue.next with s.mu held.
func (s *Scheduler) tenantEligibleLocked(name string) bool {
	if !s.cfg.fairShare() {
		return true
	}
	_, tc := s.cfg.tenantConfig(name)
	if tc.Slots <= 0 {
		return false
	}
	return s.tenantActive[name] < tc.Slots
}

// admitCheck is the submit-side admission controller: it rejects against the
// breaker and the loop-published pressure snapshot. Per-request footprint
// gating against the watermarks happens in the loop (which defers instead of
// dropping); here only requests that could never fit, or that arrive while
// the server is already past its watermarks, are turned away.
func (s *Scheduler) admitCheck(req Request) error {
	if st := s.brk.current(); st == Shedding {
		s.mu.Lock()
		drain := s.press.drain
		s.mu.Unlock()
		return &OverloadError{Reason: "shedding", RetryAfter: drain, State: st}
	}
	if s.adm.ScaledKV(s.adm.SlotKVBytes(len(req.Prompt), req.MaxNewTokens)) > s.kvHeadroom {
		// No drain can ever make this request fit: its own final-length KV
		// exceeds the whole arena headroom. Permanent → HTTP 422, never 429.
		return &OverloadError{Reason: "never-fits", State: s.brk.current(), Permanent: true}
	}
	s.mu.Lock()
	view := s.press
	s.mu.Unlock()
	if view.gpuFrac >= s.cfg.ArenaHighWater || view.hostFrac >= s.cfg.ArenaHighWater {
		return &OverloadError{Reason: "arena-pressure", RetryAfter: view.drain, State: s.brk.current()}
	}
	if s.cfg.TPOTBudget > 0 && view.tpotNext > s.cfg.TPOTBudget {
		return &OverloadError{Reason: "tpot-budget", RetryAfter: view.drain, State: s.brk.current()}
	}
	return nil
}

// Health evaluates and returns the breaker state. Evaluating here (not just
// in the loop) lets an idle server walk back to healthy between polls.
func (s *Scheduler) Health() BreakerState {
	if !s.cfg.AdmissionControl {
		return Healthy
	}
	s.mu.Lock()
	view := s.press
	s.mu.Unlock()
	st, changed := s.brk.evaluate(s.signals(view.level, view.gpuFrac, view.hostFrac))
	if changed {
		s.eng.Stats().RecordBreakerTransition()
	}
	return st
}

// signals assembles the breaker inputs from the given pressure state plus
// the live fault and queue counters.
func (s *Scheduler) signals(level int, gpuFrac, hostFrac float64) breakerSignals {
	total := s.eng.Stats().TotalRetries()
	s.mu.Lock()
	faults := total > s.lastRetries
	s.lastRetries = total
	qlen := s.queue.len()
	s.mu.Unlock()
	return breakerSignals{
		faults:        faults,
		ladderHigh:    level >= 2,
		queueSwamped:  qlen >= s.cfg.QueueDepth,
		arenaCritical: level >= 3 && (gpuFrac >= s.cfg.ArenaHighWater || hostFrac >= s.cfg.ArenaHighWater),
	}
}

// Close stops admission and waits for the queue and every in-flight request
// to drain. Queued requests still run to completion; callers wanting faster
// shutdown cancel their request contexts.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.kick()
	<-s.done
}

// Metrics is a point-in-time view of the serving state, combining the
// scheduler's queue/slot occupancy with the engine's extended stats.
type Metrics struct {
	QueueDepth  int
	ActiveSlots int
	TotalSlots  int
	Uptime      time.Duration

	// TokensGenerated and TokensPerSec cover every token the engine produced
	// since the scheduler started (prefill first-tokens included).
	TokensGenerated int64
	TokensPerSec    float64

	Serve runtime.ServeSummary

	// Overload protection (meaningful with Config.AdmissionControl).
	Breaker            BreakerState
	BreakerTransitions int64
	PressureLevel      int
	PredictedPeakBytes int64 // admission-time estimate high-water
	ArenaCapacity      int64
	ArenaPeak          int64
	// EstimateRatio is PredictedPeakBytes over the arena's actual peak — the
	// admission model's over-estimate factor (0 until something ran).
	EstimateRatio float64
	// PredictedTPOT is the step-cost model's latency prediction at the
	// current batch occupancy (0 while idle or before the fit is ready).
	PredictedTPOT time.Duration
	// TraceTasks is the per-task traced time since tracing was enabled (nil
	// while tracing is off) — the /stats view of the span aggregates.
	TraceTasks map[string]time.Duration

	// Shared-prefix cache (zero-valued when Config.PrefixCacheBytes is 0).
	// PrefixHitRate is hits over hits+misses; byte fields mirror the
	// store's arena accounting.
	PrefixHitRate       float64
	PrefixCacheBytes    int64
	PrefixCacheCapacity int64

	// PredictedDrain is the loop's current estimate of the time to drain the
	// running batch plus the queued prefill backlog — the number behind
	// Retry-After, exposed so harnesses can score it against measured drains.
	PredictedDrain time.Duration

	// Tenants holds the per-tenant accounting when fair-share scheduling is
	// on (nil otherwise), keyed by resolved tenant name.
	Tenants map[string]TenantMetrics

	// Hot-swap view: the exec policy currently applied to the engine, the
	// lifetime counts of swaps applied and refused at the breaker interlock,
	// and — when an adapt controller registered itself — its status snapshot.
	ExecPolicy   runtime.ExecPolicy
	SwapsApplied int64
	SwapsRefused int64
	Adapt        map[string]any
}

// TenantMetrics is one tenant's point-in-time serving view: current queue
// and slot occupancy plus lifetime request counters.
type TenantMetrics struct {
	Queued int `json:"queued"`
	Active int `json:"active"`

	Submitted int64 `json:"submitted"`
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
}

// Metrics snapshots the serving metrics.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	depth := s.queue.len()
	active := s.active
	view := s.press
	curExec := s.curExec
	swapsApplied, swapsRefused := s.swapsApplied, s.swapsRefused
	adaptFn := s.adaptStats
	var tenants map[string]TenantMetrics
	if s.cfg.fairShare() {
		tenants = make(map[string]TenantMetrics, len(s.tenantCounts))
		for name, tm := range s.tenantCounts {
			snap := *tm
			snap.Queued = s.queue.depth(name)
			snap.Active = s.tenantActive[name]
			tenants[name] = snap
		}
		// Tenants with traffic counters appear above; configured-but-idle
		// tenants still show their (zero) occupancy.
		for name := range s.queue.tenants {
			if _, ok := tenants[name]; !ok {
				tenants[name] = TenantMetrics{Queued: s.queue.depth(name), Active: s.tenantActive[name]}
			}
		}
	}
	s.mu.Unlock()
	st := s.eng.Stats()
	summary := st.ServeSummary()
	uptime := time.Since(s.start)
	tokens := st.TokensGeneratedCount()
	m := Metrics{
		QueueDepth:         depth,
		ActiveSlots:        active,
		TotalSlots:         s.cfg.Slots,
		Uptime:             uptime,
		TokensGenerated:    tokens,
		Serve:              summary,
		Breaker:            s.brk.current(),
		BreakerTransitions: s.brk.transitionCount(),
		PressureLevel:      view.level,
		PredictedPeakBytes: view.maxPredictedPeak,
		ArenaCapacity:      s.eng.ArenaCapacity(),
		ArenaPeak:          s.eng.ArenaPeak(),
		PredictedTPOT:      view.tpotNow,
		PredictedDrain:     view.drain,
		Tenants:            tenants,
		ExecPolicy:         curExec,
		SwapsApplied:       swapsApplied,
		SwapsRefused:       swapsRefused,
	}
	if adaptFn != nil {
		m.Adapt = adaptFn()
	}
	if s.prefixStore != nil {
		ps := s.prefixStore.Stats()
		m.PrefixCacheBytes = ps.UsedBytes
		m.PrefixCacheCapacity = ps.CapacityBytes
		if total := summary.PrefixHits + summary.PrefixMisses; total > 0 {
			m.PrefixHitRate = float64(summary.PrefixHits) / float64(total)
		}
	}
	if rec := s.eng.Tracer(); rec != nil {
		agg := xtrace.Aggregate(rec.Spans())
		tt := make(map[string]time.Duration, len(agg.Tasks))
		for name, ts := range agg.Tasks {
			tt[name] = ts.Total
		}
		m.TraceTasks = tt
	}
	if uptime > 0 {
		m.TokensPerSec = float64(tokens) / uptime.Seconds()
	}
	if m.ArenaPeak > 0 && m.PredictedPeakBytes > 0 {
		m.EstimateRatio = float64(m.PredictedPeakBytes) / float64(m.ArenaPeak)
	}
	return m
}

// trace records one serving-lifecycle span (queue_wait, admit, step) into
// the engine's span recorder on the serve lane. Nil-safe and ~free while
// tracing is off.
func (s *Scheduler) trace(name string, t0 time.Time, l xtrace.Labels) {
	if rec := s.eng.Tracer(); rec != nil {
		rec.Record(name, xtrace.LaneServe, t0, time.Since(t0), l)
	}
}

// traceEvent records an instantaneous serving marker (retire).
func (s *Scheduler) traceEvent(name string, l xtrace.Labels) {
	if rec := s.eng.Tracer(); rec != nil {
		rec.Event(name, xtrace.LaneServe, time.Now(), l)
	}
}

// noteActive mirrors the loop-owned occupancy into the mu-guarded counters
// Metrics and the fair-share quota check read; p attributes the slot to its
// tenant.
func (s *Scheduler) noteActive(p *pending, delta int) {
	s.mu.Lock()
	s.active += delta
	if s.cfg.fairShare() {
		s.tenantActive[p.tenant] += delta
	}
	s.mu.Unlock()
}

// kick nudges an idle loop; the 1-buffered channel makes signals sticky so a
// submit racing the loop's idle check is never lost.
func (s *Scheduler) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop is the scheduler's only mutator of the session. Each iteration works
// one step boundary: manage memory pressure, retire cancelled slots, admit
// from the queue, then run one decode step over the active batch and deliver
// its tokens.
func (s *Scheduler) loop() {
	defer close(s.done)
	defer s.lifeCancel()
	for {
		s.applyPendingSwap()
		s.retireCancelled()
		if s.cfg.AdmissionControl {
			s.managePressure()
		}
		s.admit()
		s.advanceChunk()
		if s.sess.NumActive() == 0 {
			s.mu.Lock()
			idle := s.queue.len() == 0 && len(s.chunking) == 0
			finished := idle && s.closed
			s.mu.Unlock()
			if finished {
				return
			}
			if idle {
				<-s.wake
			}
			continue
		}
		s.stepBatch()
	}
}

// retireCancelled frees the slots of requests whose context ended, so a
// cancelled request stops consuming decode steps at the next boundary. A
// cancelled mid-prefill chunk abandons its partial chunks the same way; the
// prefix blocks its completed chunks committed stay cached for a retry.
func (s *Scheduler) retireCancelled() {
	for slot, p := range s.running {
		if err := p.ctx.Err(); err != nil {
			s.sess.Retire(slot)
			delete(s.running, slot)
			s.noteActive(p, -1)
			s.traceEvent(xtrace.TaskRetire, xtrace.At(-1, -1, slot))
			p.stream.finish(err)
			s.eng.Stats().RecordCancellation()
			s.bumpTenant(p.tenant, func(m *TenantMetrics) { m.Canceled++ })
		}
	}
	for slot, p := range s.chunking {
		if err := p.ctx.Err(); err != nil {
			s.sess.CancelPrefill(slot)
			delete(s.chunking, slot)
			s.noteActive(p, -1)
			s.traceEvent(xtrace.TaskRetire, xtrace.At(-1, -1, slot))
			p.stream.finish(err)
			s.eng.Stats().RecordCancellation()
			s.bumpTenant(p.tenant, func(m *TenantMetrics) { m.Canceled++ })
		}
	}
}

// managePressure is the KV-pressure ladder: it measures the scaled staging
// pressure against the arena's KV headroom (and the host budget), escalates
// one rung per iteration above the high watermark — quantize new slots,
// spill the largest staged slot, evict the lowest-priority slot — and walks
// back down one rung per HealthyStreak of evaluations below the low
// watermark. It then feeds the breaker and publishes the pressure snapshot.
func (s *Scheduler) managePressure() {
	gpuFrac, hostFrac := s.pressureFractions()
	hwm, lwm := s.cfg.ArenaHighWater, s.cfg.ArenaLowWater
	switch {
	case s.sess.NumActive() == 0:
		// Idle: nothing is staged, so pressure is definitionally gone. Walk
		// the ladder fully down so a calm server restores normal storage.
		if s.level != 0 {
			s.level = 0
			s.healthyEvals = 0
			s.sess.SetQuantizeNewSlots(false, quant.Config{})
		}
	case gpuFrac >= hwm || hostFrac >= hwm:
		s.escalate(gpuFrac >= hwm)
		s.healthyEvals = 0
		// Re-measure: a spill or evict changes the pressure immediately.
		gpuFrac, hostFrac = s.pressureFractions()
	case gpuFrac < lwm && hostFrac < lwm:
		s.healthyEvals++
		if s.healthyEvals >= s.cfg.HealthyStreak && s.level > 0 {
			s.level--
			s.healthyEvals = 0
			if s.level < 1 {
				s.sess.SetQuantizeNewSlots(false, quant.Config{})
			}
		}
	default:
		s.healthyEvals = 0
	}
	st, changed := s.brk.evaluate(s.signals(s.level, gpuFrac, hostFrac))
	_ = st
	if changed {
		s.eng.Stats().RecordBreakerTransition()
	}
	s.publishPressure(gpuFrac, hostFrac)
}

// pressureFractions measures current pressure: the largest staged slot's
// slack-scaled bytes over the KV headroom, and host KV bytes over the host
// budget (zero when unbudgeted).
func (s *Scheduler) pressureFractions() (gpuFrac, hostFrac float64) {
	var maxStaged int64
	for slot := range s.running {
		if b := s.sess.StagedKVBytes(slot); b > maxStaged {
			maxStaged = b
		}
	}
	gpuFrac = float64(s.adm.ScaledKV(maxStaged)) / float64(s.kvHeadroom)
	if s.cfg.HostKVBudget > 0 {
		host := s.sess.HostKVBytes()
		// In-flight chunked prefills retain their raw rows host-side until the
		// final chunk; that is real host memory and must feel the budget.
		host += s.sess.ChunkHostBytes()
		if s.prefixStore != nil {
			// Cached prefix blocks are host memory too; counting them here is
			// what lets the ladder's drop-prefix rung actually relieve the
			// pressure it sees.
			host += s.prefixStore.UsedBytes()
		}
		hostFrac = float64(host) / float64(s.cfg.HostKVBudget)
	}
	return gpuFrac, hostFrac
}

// escalate takes the next ladder rung. gpuHigh distinguishes arena staging
// pressure (relieved by spilling) from host pressure (relieved only by
// eviction).
//
// Before any rung that touches a live slot, host pressure first drops
// unreferenced prefix-cache blocks: they are the only memory in the system
// whose reclaim costs future hit rate rather than a live request's storage
// mode or progress. GPU staging pressure skips this rung — prefix blocks
// are host-resident and free no arena bytes.
func (s *Scheduler) escalate(gpuHigh bool) {
	if !gpuHigh && s.prefixStore != nil {
		if n := s.prefixStore.EvictUnreferenced(); n > 0 {
			s.eng.Stats().RecordPrefixEvictions(int64(n))
			s.traceEvent(xtrace.TaskPrefixEvict, xtrace.NoLabels)
			return
		}
	}
	switch {
	case s.level == 0:
		s.level = 1
		// Rung 1: new slots store their KV quantized — ~8x less host KV and
		// proportionally less staging for every future admission.
		s.sess.SetQuantizeNewSlots(true, s.cfg.LadderKV)
	case s.level == 1:
		s.level = 2
		if gpuHigh {
			s.spillLargest()
		}
	default:
		s.level = 3
		s.evictOne(gpuHigh)
	}
}

// spillLargest moves the biggest staged slot's KV to the host cache (rung
// 2): its attention runs on the CPU from now on and its staging pressure
// drops to zero, exactness preserved.
func (s *Scheduler) spillLargest() {
	victim, best := -1, int64(0)
	for slot := range s.running {
		if b := s.sess.StagedKVBytes(slot); b > best {
			victim, best = slot, b
		}
	}
	if victim < 0 {
		return
	}
	// A failed spill leaves the staged copy authoritative; the ladder simply
	// tries again next iteration.
	_ = s.sess.SpillSlot(context.Background(), victim)
}

// evictOne retires the lowest-priority slot — the fewest-tokens-produced
// sequence whose KV is stored raw — and re-queues it at the head of the line
// for recompute-on-resume (rung 3). Raw-only because a re-prefill regenerates
// a raw slot's KV bit-identically, while a quantized slot's lossy history
// cannot be reproduced from tokens; quantized slots are spilled instead.
// With a single active slot there is nothing to gain (the evictee would be
// re-admitted immediately), so eviction needs at least two.
func (s *Scheduler) evictOne(gpuHigh bool) {
	var victim *pending
	for _, p := range s.running {
		if s.sess.SlotQuantizedKV(p.slot) {
			continue
		}
		if victim == nil || p.produced < victim.produced {
			victim = p
		}
	}
	if victim == nil || len(s.running) < 2 {
		if gpuHigh {
			s.spillLargest()
		}
		return
	}
	resume := make([]int, 0, len(victim.req.Prompt)+victim.produced)
	resume = append(resume, victim.req.Prompt...)
	resume = append(resume, victim.stream.snapshot()...)
	s.sess.Retire(victim.slot)
	delete(s.running, victim.slot)
	s.noteActive(victim, -1)
	s.traceEvent(xtrace.TaskRetire, xtrace.At(-1, -1, victim.slot))
	victim.resumePrompt = resume
	s.mu.Lock()
	s.queue.pushFront(victim)
	s.mu.Unlock()
	s.eng.Stats().RecordEviction()
}

// publishPressure refreshes the mu-guarded snapshot Submit and Health read.
func (s *Scheduler) publishPressure(gpuFrac, hostFrac float64) {
	var maxKV, remaining int64
	for _, p := range s.running {
		pl, nt := p.finalKVTokens()
		if kv := s.adm.SlotKVBytes(pl, nt); kv > maxKV {
			maxKV = kv
		}
		remaining += int64(p.req.MaxNewTokens - p.produced)
	}
	for _, p := range s.chunking {
		pl, nt := p.finalKVTokens()
		if kv := s.adm.SlotKVBytes(pl, nt); kv > maxKV {
			maxKV = kv
		}
		remaining += int64(p.req.MaxNewTokens)
	}
	occ := len(s.running)
	var predicted int64
	if occ+len(s.chunking) > 0 {
		predicted = s.adm.PeakBytes(maxKV)
	}
	drain := s.cost.PredictDrain(remaining, occ)
	// Fold the queued prefill backlog into the drain estimate at *suffix*
	// cost: a queue full of cached-prefix requests drains far faster than
	// its raw prompt lengths suggest, and Retry-After should say so.
	if s.prefillCost.Ready() {
		s.mu.Lock()
		queued := s.queue.snapshot()
		s.mu.Unlock()
		for _, q := range queued {
			drain += s.prefillCost.PredictChunked(s.suffixTokens(q), s.cfg.ChunkTokens)
		}
		// In-flight chunked prefills still owe their remaining chunks.
		for slot := range s.chunking {
			done, total := s.sess.PrefillProgress(slot)
			drain += s.prefillCost.PredictChunked(total-done, s.cfg.ChunkTokens)
		}
	}
	tpotNext := s.cost.PredictTPOT(occ + 1)
	tpotNow := s.cost.PredictTPOT(occ)
	prefillReady := s.prefillCost.Ready()
	prefillFixed, prefillPerT := s.prefillCost.Coefficients()
	s.mu.Lock()
	s.press.level = s.level
	s.press.gpuFrac = gpuFrac
	s.press.hostFrac = hostFrac
	s.press.predictedPeak = predicted
	s.press.drain = drain
	s.press.tpotNext = tpotNext
	s.press.tpotNow = tpotNow
	s.press.prefillReady = prefillReady
	s.press.prefillFixed = prefillFixed
	s.press.prefillPerT = prefillPerT
	s.mu.Unlock()
}

// gateDecision is the loop-side admission gate's verdict on the queue head.
type gateDecision int

const (
	gateAdmit gateDecision = iota
	gateDefer
	gateReject
)

// gateHead decides whether the queue head can join the batch now. Deferring
// keeps it queued (FIFO order preserved); rejecting finishes it with a
// structured overload error. The watermark tightens to the low mark while
// the ladder is escalated (hysteresis: drain below lwm before admitting
// freely again).
func (s *Scheduler) gateHead(p *pending) gateDecision {
	pl, nt := p.finalKVTokens()
	cand := s.adm.ScaledKV(s.adm.SlotKVBytes(pl, nt))
	if cand > s.kvHeadroom {
		return gateReject
	}
	if s.sess.NumActive() == 0 {
		// Livelock guard: with an empty batch nothing drains, so anything
		// that absolutely fits must be admitted.
		return gateAdmit
	}
	thr := s.cfg.ArenaHighWater
	if s.level > 0 {
		thr = s.cfg.ArenaLowWater
	}
	newMax := cand
	for _, q := range s.running {
		qpl, qnt := q.finalKVTokens()
		if b := s.adm.ScaledKV(s.adm.SlotKVBytes(qpl, qnt)); b > newMax {
			newMax = b
		}
	}
	for _, q := range s.chunking {
		qpl, qnt := q.finalKVTokens()
		if b := s.adm.ScaledKV(s.adm.SlotKVBytes(qpl, qnt)); b > newMax {
			newMax = b
		}
	}
	if float64(newMax) > thr*float64(s.kvHeadroom) {
		return gateDefer
	}
	if s.cfg.HostKVBudget > 0 &&
		float64(s.sess.HostKVBytes()) >= thr*float64(s.cfg.HostKVBudget) {
		return gateDefer
	}
	if s.cfg.TPOTBudget > 0 {
		if t := s.cost.PredictTPOT(s.sess.NumActive() + 1); t > s.cfg.TPOTBudget {
			return gateDefer
		}
		// Suffix-cost gate: an admission stalls every active slot for the
		// prefill's duration, so the head is costed at the tokens it will
		// actually prefill — its prompt minus whatever the prefix cache
		// already holds. A cached-prefix request sails through where an
		// equally long cold one defers. Deferrals are bounded so a cold
		// head eventually admits regardless (FIFO liveness). With chunked
		// prefill the gate is unnecessary — per-step prefill exposure is
		// bounded to one chunk by construction — so it only applies to
		// prompts short enough to admit monolithically.
		if s.prefillCost.Ready() && p.prefillDeferrals < maxPrefillDeferrals &&
			!(s.cfg.ChunkTokens > 0 && p.promptLen() > s.cfg.ChunkTokens) {
			suffix := s.suffixTokens(p)
			if s.prefillCost.Predict(suffix) > time.Duration(prefillStallSteps)*s.cfg.TPOTBudget {
				p.prefillDeferrals++
				return gateDefer
			}
		}
	}
	return gateAdmit
}

// prefillStallSteps is how many TPOT budgets an admission's predicted
// prefill stall may cost the running batch before the gate defers it;
// maxPrefillDeferrals bounds those deferrals per request.
const (
	prefillStallSteps   = 4
	maxPrefillDeferrals = 16
)

// suffixTokens predicts how many tokens admitting p will actually prefill:
// its effective prompt minus the longest cached prefix (capped so at least
// one token always prefills).
func (s *Scheduler) suffixTokens(p *pending) int {
	prompt := p.effectivePrompt()
	n := len(prompt)
	if s.prefixStore != nil {
		n -= s.prefixStore.MatchTokens(prompt, len(prompt)-1)
	}
	return n
}

// takeQueued removes a request (previously returned by next) from the queue,
// charging its tenant's fair-share credit.
func (s *Scheduler) takeQueued(p *pending) {
	s.mu.Lock()
	s.queue.take(p)
	s.mu.Unlock()
}

// admit moves queued requests into free slots, prefilling each and emitting
// its first token. The dispatch choice is the fair queue's: FIFO order in
// single-tenant mode, weighted round-robin under per-tenant quotas
// otherwise. Requests whose context already ended are dropped without
// consuming a slot. Under admission control the dispatched candidate is
// gated against the watermarks first — deferred requests stay queued in
// place.
func (s *Scheduler) admit() {
	for s.sess.NumActive()+len(s.chunking) < s.cfg.Slots {
		s.mu.Lock()
		p := s.queue.next(s.tenantEligibleLocked)
		s.mu.Unlock()
		if p == nil {
			return
		}
		if err := p.ctx.Err(); err != nil {
			s.takeQueued(p)
			p.stream.finish(err)
			s.eng.Stats().RecordCancellation()
			s.bumpTenant(p.tenant, func(m *TenantMetrics) { m.Canceled++ })
			continue
		}
		if s.cfg.AdmissionControl {
			switch s.gateHead(p) {
			case gateDefer:
				return
			case gateReject:
				s.takeQueued(p)
				p.stream.finish(&OverloadError{Reason: "never-fits", State: s.brk.current(), Permanent: true})
				s.eng.Stats().RecordOverloadRejection()
				s.bumpTenant(p.tenant, func(m *TenantMetrics) { m.Rejected++ })
				continue
			}
		}
		s.takeQueued(p)
		slot := s.freeSlot()
		prompt := p.req.Prompt
		if p.resumePrompt != nil {
			prompt = p.resumePrompt
		}
		// queue_wait covers submission to the admission decision; an evicted
		// request's resume admissions are not re-counted (its wait is the
		// original one).
		if !p.admittedOnce {
			s.trace(xtrace.TaskQueueWait, p.submitted, xtrace.At(-1, -1, slot))
		}
		if s.cfg.ChunkTokens > 0 && len(prompt) > s.cfg.ChunkTokens {
			// Chunked admission: open the prefill now, advance it one bounded
			// chunk per loop iteration (advanceChunk), and deliver the first
			// token when the final chunk lands. The slot is occupied from here
			// on, so occupancy gating and tenant quotas see it immediately.
			if s.cfg.AdmissionControl && !p.admittedOnce {
				p.kvQuant = s.sess.QuantizeNewSlots()
			}
			if err := s.sess.BeginPrefill(slot, prompt, p.kvQuant); err != nil {
				p.stream.finish(err)
				s.eng.Stats().RecordRejection()
				continue
			}
			p.slot = slot
			s.chunking[slot] = p
			s.noteActive(p, 1)
			continue
		}
		tAdmit := time.Now()
		var tok int
		var err error
		if s.cfg.AdmissionControl {
			if !p.admittedOnce {
				p.kvQuant = s.sess.QuantizeNewSlots()
			}
			tok, err = s.sess.AdmitKV(p.ctx, slot, prompt, p.kvQuant)
		} else {
			tok, err = s.sess.Admit(p.ctx, slot, prompt)
		}
		admitDur := time.Since(tAdmit)
		s.trace(xtrace.TaskAdmit, tAdmit, xtrace.At(-1, -1, slot))
		if err != nil {
			p.stream.finish(err)
			if p.ctx.Err() != nil {
				s.eng.Stats().RecordCancellation()
			} else {
				s.eng.Stats().RecordRejection()
			}
			continue
		}
		now := time.Now()
		p.slot = slot
		// The admission's token came from prefill: restart the decode-gap
		// window without recording a gap, so TPOT only ever averages
		// decode-step intervals.
		p.noteAdmitToken(now)
		s.running[slot] = p
		s.noteActive(p, 1)
		if !p.admittedOnce {
			p.admittedOnce = true
			p.stream.setKVQuant(s.sess.SlotQuantizedKV(slot))
			s.eng.Stats().RecordAdmission(now.Sub(p.submitted))
			s.bumpTenant(p.tenant, func(m *TenantMetrics) { m.Admitted++ })
		}
		if s.cfg.AdmissionControl {
			// The prefill-cost fit observes the tokens this admission
			// actually prefilled — the suffix beyond any prefix-cache seed.
			// The estimator observation uses the prediction as of *before*
			// this sample lands in the fit.
			suffix := len(prompt) - s.sess.SlotReusedTokens(slot)
			if obs := s.cfg.EstObserver; obs != nil && s.prefillCost.Ready() {
				obs.ObserveEstimate(perfmodel.EstPrefill,
					s.prefillCost.Predict(suffix).Seconds(), admitDur.Seconds())
			}
			s.prefillCost.Observe(suffix, admitDur)
			s.recordEstimate(p)
		}
		s.deliver(p, tok)
	}
}

// recordEstimate stores the admission-time peak prediction for p (covering
// the whole batch it joined, at final lengths) and folds it into the
// published high-water estimate.
func (s *Scheduler) recordEstimate(p *pending) {
	var maxKV int64
	for _, q := range s.running {
		qpl, qnt := q.finalKVTokens()
		if kv := s.adm.SlotKVBytes(qpl, qnt); kv > maxKV {
			maxKV = kv
		}
	}
	for _, q := range s.chunking {
		qpl, qnt := q.finalKVTokens()
		if kv := s.adm.SlotKVBytes(qpl, qnt); kv > maxKV {
			maxKV = kv
		}
	}
	p.estimate = s.adm.PeakBytes(maxKV)
	s.mu.Lock()
	if p.estimate > s.press.maxPredictedPeak {
		s.press.maxPredictedPeak = p.estimate
	}
	s.mu.Unlock()
}

// freeSlot returns an inactive slot index; admit only calls it when one
// exists (NumActive + chunking < Slots). A slot with a chunked prefill in
// flight is occupied even though the session does not count it active yet.
func (s *Scheduler) freeSlot() int {
	for slot := 0; slot < s.cfg.Slots; slot++ {
		if !s.sess.IsActive(slot) && s.running[slot] == nil && s.chunking[slot] == nil {
			return slot
		}
	}
	panic("serve: no free slot despite NumActive < Slots")
}

// advanceChunk advances exactly one in-flight chunked prefill by one chunk —
// the oldest submission first, so chunked admissions complete in FIFO order.
// Running at most one chunk per loop iteration is what bounds a decode step's
// prefill exposure to ChunkTokens by construction. Chunk durations feed the
// prefill-cost fit (each chunk is one (tokens, duration) sample); the final
// chunk activates the slot and delivers the first token exactly as a
// monolithic admission would have.
func (s *Scheduler) advanceChunk() {
	if len(s.chunking) == 0 {
		return
	}
	var p *pending
	for _, q := range s.chunking {
		if p == nil || q.submitted.Before(p.submitted) {
			p = q
		}
	}
	prev, _ := s.sess.PrefillProgress(p.slot)
	t0 := time.Now()
	done, total, tok, err := s.sess.PrefillChunk(p.ctx, p.slot, s.cfg.ChunkTokens)
	dur := time.Since(t0)
	if err != nil {
		s.sess.CancelPrefill(p.slot)
		delete(s.chunking, p.slot)
		s.noteActive(p, -1)
		s.traceEvent(xtrace.TaskRetire, xtrace.At(-1, -1, p.slot))
		p.stream.finish(err)
		if p.ctx.Err() != nil {
			s.eng.Stats().RecordCancellation()
			s.bumpTenant(p.tenant, func(m *TenantMetrics) { m.Canceled++ })
		} else {
			s.eng.Stats().RecordRejection()
		}
		return
	}
	if s.cfg.AdmissionControl {
		adv := done - prev
		if obs := s.cfg.EstObserver; obs != nil && s.prefillCost.Ready() {
			obs.ObserveEstimate(perfmodel.EstPrefill,
				s.prefillCost.Predict(adv).Seconds(), dur.Seconds())
		}
		s.prefillCost.Observe(adv, dur)
	}
	if done < total {
		return
	}
	delete(s.chunking, p.slot)
	s.trace(xtrace.TaskAdmit, t0, xtrace.At(-1, -1, p.slot))
	now := time.Now()
	s.running[p.slot] = p
	// The first token came from prefill: restart the decode-gap window
	// without recording a gap (same TPOT discipline as monolithic admit).
	p.noteAdmitToken(now)
	if !p.admittedOnce {
		p.admittedOnce = true
		p.stream.setKVQuant(s.sess.SlotQuantizedKV(p.slot))
		s.eng.Stats().RecordAdmission(now.Sub(p.submitted))
		s.bumpTenant(p.tenant, func(m *TenantMetrics) { m.Admitted++ })
	}
	if s.cfg.AdmissionControl {
		s.recordEstimate(p)
	}
	s.deliver(p, tok)
}

// stepBatch advances the whole active batch one token and fans the results
// out. A step error after the session's own retries and degradations is
// batch-fatal: every in-flight request fails with it.
//
// The step runs under a context derived from the scheduler's lifecycle —
// never context.Background() — and additionally cancelled once every request
// in the batch has abandoned its own context. Close keeps its documented
// semantics (in-flight requests run to completion) but a step that stalls in
// a fault window can no longer wedge drain when nobody is waiting for its
// result.
func (s *Scheduler) stepBatch() {
	stepCtx, cancel := s.stepContext()
	defer cancel()
	t0 := time.Now()
	toks, err := s.sess.Step(stepCtx)
	// Measure the step window immediately: the cost model must fit the
	// decode step itself, not the step plus tracing and fan-out overhead.
	stepDur := time.Since(t0)
	s.trace(xtrace.TaskStep, t0, xtrace.At(s.stepIdx, -1, -1))
	s.stepIdx++
	if err != nil {
		for slot, p := range s.running {
			s.sess.Retire(slot)
			delete(s.running, slot)
			s.noteActive(p, -1)
			s.traceEvent(xtrace.TaskRetire, xtrace.At(-1, -1, slot))
			p.stream.finish(err)
			s.eng.Stats().RecordCancellation()
			s.bumpTenant(p.tenant, func(m *TenantMetrics) { m.Canceled++ })
		}
		return
	}
	if s.cfg.AdmissionControl {
		// Score the TPOT prediction this step would have been quoted before
		// folding the measurement into the fit.
		if obs := s.cfg.EstObserver; obs != nil {
			if pred := s.cost.PredictTPOT(len(toks)); pred > 0 {
				obs.ObserveEstimate(perfmodel.EstTPOT, pred.Seconds(), stepDur.Seconds())
			}
		}
		s.cost.Observe(len(toks), stepDur)
	}
	s.mu.Lock()
	depth := s.queue.len()
	s.mu.Unlock()
	s.eng.Stats().RecordBatchStep(len(toks), depth)
	// One timestamp for the whole fan-out: tokens of the same step are
	// simultaneous, and per-token clock reads would smear delivery overhead
	// into later slots' TPOT gaps.
	now := time.Now()
	for _, st := range toks {
		if p := s.running[st.Slot]; p != nil {
			p.noteDecodeToken(now)
			s.deliver(p, st.Token)
		}
	}
}

// stepContext derives the batch step's context: child of the scheduler
// lifecycle, cancelled early once every running request's own context is
// done. The watcher goroutine waits on each request context in turn (order
// is irrelevant — all must be done) and exits promptly when the step
// finishes first.
func (s *Scheduler) stepContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(s.lifeCtx)
	if len(s.running) == 0 {
		return ctx, cancel
	}
	ctxs := make([]context.Context, 0, len(s.running))
	for _, p := range s.running {
		ctxs = append(ctxs, p.ctx)
	}
	go func() {
		for _, c := range ctxs {
			select {
			case <-c.Done():
			case <-ctx.Done():
				return
			}
		}
		cancel()
	}()
	return ctx, cancel
}

// deliver pushes one token to the request's stream and completes the request
// when it hits EOS or its budget.
func (s *Scheduler) deliver(p *pending, tok int) {
	p.stream.push(tok)
	p.produced++
	if (s.cfg.EOS >= 0 && tok == s.cfg.EOS) || p.produced >= p.req.MaxNewTokens {
		s.sess.Retire(p.slot)
		delete(s.running, p.slot)
		s.noteActive(p, -1)
		s.traceEvent(xtrace.TaskRetire, xtrace.At(-1, -1, p.slot))
		p.stream.finish(nil)
		s.eng.Stats().RecordCompletion(p.tpot())
		s.bumpTenant(p.tenant, func(m *TenantMetrics) { m.Completed++ })
	}
}
