package baselines

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/trace"
)

func TestFlexGenMatchesPublishedPolicyShape(t *testing.T) {
	plat := hw.SingleGPUA100()
	sys, err := FlexGen(plat, model.OPT30B, 64, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Strategy
	if !s.AttnOnCPU {
		t.Error("FlexGen should offload decode attention to the CPU")
	}
	if s.QuantWeights || s.QuantKV {
		t.Errorf("FlexGen's published configs use no compression, got %v", s)
	}
	// Table 3: OPT-30B wg=55, cg=0, hg=0.
	if s.WeightsGPUPct < 0.3 || s.WeightsGPUPct > 0.8 {
		t.Errorf("FlexGen wg = %.0f%%, want ~55%%", s.WeightsGPUPct*100)
	}
	if s.CacheGPUPct != 0 {
		t.Errorf("FlexGen cg = %.0f%%, want 0", s.CacheGPUPct*100)
	}
	if sys.Throughput() <= 0 {
		t.Error("non-positive FlexGen throughput")
	}
}

func TestZeROAllOrNothing(t *testing.T) {
	plat := hw.SingleGPUA100()
	sys, err := ZeRO(plat, model.OPT30B, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Strategy
	// Table 3 ZeRO rows: wg=100, cg=0, hg=100, 4-bit weights, bsz <= 64.
	if s.WeightsGPUPct != 1 {
		t.Errorf("ZeRO wg = %.0f%%, want 100%% (30B weights fit at 4 bits)", s.WeightsGPUPct*100)
	}
	if !s.QuantWeights || s.WeightBits != 4 {
		t.Errorf("ZeRO must use 4-bit weights, got %v", s)
	}
	if s.CacheGPUPct != 0 || s.ActGPUPct != 1 {
		t.Errorf("ZeRO placement cg=%.0f hg=%.0f, want 0/100", s.CacheGPUPct*100, s.ActGPUPct*100)
	}
	if sys.Work.GPUBatch > 64 {
		t.Errorf("ZeRO batch %d exceeds the paper's 64", sys.Work.GPUBatch)
	}
	if sys.Work.NumBatches != 1 {
		t.Errorf("ZeRO has no zig-zag blocks, got %d batches", sys.Work.NumBatches)
	}
}

func TestZeROShrinksBatchForBigModels(t *testing.T) {
	plat := hw.SingleGPUA100()
	small, err := ZeRO(plat, model.OPT30B, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ZeRO(plat, model.OPT66B, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if big.Work.GPUBatch >= small.Work.GPUBatch {
		t.Errorf("ZeRO batch should shrink for OPT-66B: %d >= %d", big.Work.GPUBatch, small.Work.GPUBatch)
	}
}

func TestLMOffloadBeatsBaselines(t *testing.T) {
	// Table 3's headline: LM-Offload wins on (almost) every configuration.
	// Check the four evaluated models at n = 32.
	plat := hw.SingleGPUA100()
	for _, mod := range model.Evaluated() {
		lm, err := LMOffload(plat, mod, 64, 64, 32)
		if err != nil {
			t.Fatalf("%s: %v", mod.Name, err)
		}
		fg, err := FlexGen(plat, mod, 64, 64, 32)
		if err != nil {
			t.Fatalf("%s: %v", mod.Name, err)
		}
		zr, err := ZeRO(plat, mod, 64, 32)
		if err != nil {
			t.Fatalf("%s: %v", mod.Name, err)
		}
		if lm.Throughput() <= fg.Throughput() {
			t.Errorf("%s: LM-Offload (%.1f) does not beat FlexGen (%.1f)", mod.Name, lm.Throughput(), fg.Throughput())
		}
		// The paper itself has near-ties and one loss against ZeRO (OPT-30B
		// n=128, LLaMA-65B n=32), so require LM-Offload within 15% at worst.
		if lm.Throughput() < zr.Throughput()*0.85 {
			t.Errorf("%s: LM-Offload (%.1f) far below ZeRO (%.1f)", mod.Name, lm.Throughput(), zr.Throughput())
		}
	}
}

func TestLMOffloadBeatsZeROOnAverage(t *testing.T) {
	// §5.2: 1.57x average over ZeRO-Inference across the sweep.
	plat := hw.SingleGPUA100()
	var sum float64
	var count int
	for _, mod := range model.Evaluated() {
		for _, n := range []int{8, 32, 128} {
			lm, err := LMOffload(plat, mod, 64, 64, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", mod.Name, n, err)
			}
			zr, err := ZeRO(plat, mod, 64, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", mod.Name, n, err)
			}
			sum += lm.Throughput() / zr.Throughput()
			count++
		}
	}
	if avg := sum / float64(count); avg < 1.15 {
		t.Errorf("average ZeRO speedup %.2fx below 1.15x (paper: 1.57x)", avg)
	}
}

func TestLMOffloadEnablesLargerBatchesThanZeRO(t *testing.T) {
	// §5.2: LM-Offload runs ~24x larger batches than ZeRO-Inference.
	plat := hw.SingleGPUA100()
	lm, err := LMOffload(plat, model.OPT30B, 64, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := ZeRO(plat, model.OPT30B, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(lm.Work.BlockSize()) / float64(zr.Work.BlockSize())
	if ratio < 8 {
		t.Errorf("LM-Offload/ZeRO batch ratio = %.1fx, want >= 8x (paper ~24x)", ratio)
	}
}

func TestLMOffloadNoPCBetweenFlexGenAndFull(t *testing.T) {
	// Fig. 7: the quantization-aware policy alone (no parallelism control)
	// already beats FlexGen; the full system is at least as good.
	plat := hw.SingleGPUA100()
	fg, err := FlexGen(plat, model.OPT30B, 64, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	nopc, err := LMOffloadNoPC(plat, model.OPT30B, 64, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	full, err := LMOffload(plat, model.OPT30B, 64, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if nopc.Throughput() <= fg.Throughput() {
		t.Errorf("no-PC LM-Offload (%.1f) should beat FlexGen (%.1f)", nopc.Throughput(), fg.Throughput())
	}
	if full.Throughput() < nopc.Throughput() {
		t.Errorf("full LM-Offload (%.1f) should be >= no-PC (%.1f)", full.Throughput(), nopc.Throughput())
	}
}

func TestTable3SpeedupBands(t *testing.T) {
	// The abstract's headline numbers: up to 2.95x over FlexGen (2.34x avg)
	// and up to 2.88x over ZeRO (1.57x avg). Require the geometric shape:
	// every FlexGen ratio in [1.2, 6],average above 1.5.
	plat := hw.SingleGPUA100()
	var sum float64
	var count int
	for _, n := range []int{8, 32, 128} {
		lm, err := LMOffload(plat, model.OPT30B, 64, 64, n)
		if err != nil {
			t.Fatal(err)
		}
		fg, err := FlexGen(plat, model.OPT30B, 64, 64, n)
		if err != nil {
			t.Fatal(err)
		}
		r := lm.Throughput() / fg.Throughput()
		if r < 1.2 || r > 6 {
			t.Errorf("n=%d: LM-Offload/FlexGen = %.2fx outside [1.2, 6]", n, r)
		}
		sum += r
		count++
	}
	if avg := sum / float64(count); avg < 1.5 {
		t.Errorf("average FlexGen speedup %.2fx below 1.5x (paper: 2.34x)", avg)
	}
}

func TestBaselinesOnInvalidInputs(t *testing.T) {
	plat := hw.SingleGPUA100()
	if _, err := FlexGen(plat, model.OPT30B, 0, 64, 8); err == nil {
		t.Error("FlexGen accepted zero batch")
	}
	if _, err := LMOffload(plat, model.OPT30B, 64, 0, 8); err == nil {
		t.Error("LMOffload accepted zero prompt")
	}
}

func TestWorkloadsMatchAcrossSystems(t *testing.T) {
	// Table 3 compares FlexGen and LM-Offload at the same batch geometry.
	plat := hw.SingleGPUA100()
	fg, err := FlexGen(plat, model.LLaMA30B, 64, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := LMOffload(plat, model.LLaMA30B, 64, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if fg.Work != lm.Work {
		t.Errorf("workloads differ: FlexGen %v vs LM-Offload %v", fg.Work, lm.Work)
	}
	if fg.Work != (trace.Workload{}) && fg.Work.GPUBatch != 64 {
		t.Errorf("GPU batch = %d, want 64", fg.Work.GPUBatch)
	}
}

func TestH100ShiftsThePolicy(t *testing.T) {
	// Doubled GPU memory and link bandwidth: OPT-30B fits far more weights
	// on the H100, and every system speeds up.
	a, err := LMOffload(hw.SingleGPUA100(), model.OPT30B, 64, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	h, err := LMOffload(hw.SingleGPUH100(), model.OPT30B, 64, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if h.Throughput() <= a.Throughput() {
		t.Errorf("H100 (%.1f) not faster than A100 (%.1f)", h.Throughput(), a.Throughput())
	}
}
