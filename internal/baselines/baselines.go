// Package baselines implements the two comparison systems of the paper's
// evaluation as policy generators over the shared performance model:
//
//   - FlexGen (§2.2): zig-zag block scheduling with an LP placement search
//     whose objective is quantization-blind, CPU-offloaded decode attention
//     by default, no compression in its published Table 3 configurations,
//     and PyTorch default threading.
//   - ZeRO-Inference: all-or-nothing tensor placement (no partial
//     offloading), 4-bit weight quantization (its default for large models),
//     KV cache on CPU with GPU attention, and small batch sizes bounded by
//     the GPU working set.
//
// Both produce perfmodel strategies and workloads so every system is
// evaluated under exactly the same analytical model and simulator; only the
// policies and execution profiles differ, as in the paper.
package baselines

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/trace"
)

// System bundles a policy result with the execution profile it runs under.
type System struct {
	Name     string
	Work     trace.Workload
	Strategy perfmodel.Strategy
	Exec     perfmodel.ExecProfile
	// Estimator evaluates the system.
	Estimator *perfmodel.Estimator
}

// Throughput returns the modeled tokens/s.
func (s *System) Throughput() float64 { return s.Estimator.Throughput() }

// FlexGen builds FlexGen's configuration for a workload axis: it chooses the
// block size to fill host memory, runs the quantization-blind LP policy
// search with CPU attention (FlexGen's decode default, §2.2), and evaluates
// under the FlexGen execution profile.
func FlexGen(plat *hw.Platform, mod model.Config, gpuBatch, promptLen, genLen int) (*System, error) {
	work, err := policy.ChooseBlock(plat, mod, gpuBatch, promptLen, genLen, 1)
	if err != nil {
		return nil, fmt.Errorf("baselines: flexgen block choice: %w", err)
	}
	opts := policy.DefaultOptions()
	opts.QuantAware = false        // the paper's core criticism
	opts.AllowGPUAttention = false // FlexGen offloads decode attention
	opts.Bits = nil                // published Table 3 rows use no compression
	exec := perfmodel.FlexGenProfile()
	res, err := policy.Plan(plat, mod, work, exec, opts)
	if err != nil {
		return nil, fmt.Errorf("baselines: flexgen policy: %w", err)
	}
	return &System{Name: "FlexGen", Work: work, Strategy: res.Strategy, Exec: exec, Estimator: res.Estimator}, nil
}

// ZeRO builds ZeRO-Inference's configuration: whole-tensor placement only.
// Weights are 4-bit quantized and pinned to the GPU when they fit (otherwise
// fully streamed from CPU); the KV cache lives on the CPU and crosses the
// link every token because attention always runs on the GPU; the batch size
// is the largest power of two whose working set fits the remaining GPU
// memory, capped at 64 as in the paper's runs.
func ZeRO(plat *hw.Platform, mod model.Config, promptLen, genLen int) (*System, error) {
	exec := perfmodel.ZeROProfile()
	const bits = 4
	// DeepSpeed's fused 4-bit kernels use coarse per-channel scales, so the
	// metadata overhead is negligible next to FlexGen's 64-element groups.
	const groupSize = 512
	weightBytesQ := float64(mod.WeightBytes()) * (bits/16.0 + 8.0/(groupSize*2))
	gpuMem := float64(plat.GPU0().MemBytes) * 0.92

	weightsOnGPU := weightBytesQ <= gpuMem

	build := func(bsz int) (*System, error) {
		work := trace.Workload{PromptLen: promptLen, GenLen: genLen, GPUBatch: bsz, NumBatches: 1}
		s := zeroStrategy(weightsOnGPU, bits)
		est, err := perfmodel.New(plat, mod, work, s, exec)
		if err != nil {
			return nil, err
		}
		return &System{Name: "ZeRO-Inference", Work: work, Strategy: s, Exec: exec, Estimator: est}, nil
	}
	for bsz := 64; bsz > 1; bsz /= 2 {
		sys, err := build(bsz)
		if err != nil {
			return nil, err
		}
		m := sys.Estimator.Memory()
		// DeepSpeed's inference engine pre-allocates activation workspace
		// proportional to batch x sequence x hidden (several buffers per
		// layer group); this is what pushes OPT-66B down to batches of 4-32
		// in Table 3 even though the 4-bit weights themselves fit.
		workspace := zeroWorkspaceBytes(mod, promptLen+genLen, bsz)
		if float64(m.GPU)+workspace <= gpuMem {
			return sys, nil
		}
	}
	return build(1)
}

// zeroWorkspaceBytes models DeepSpeed's pre-allocated inference activation
// workspace, which scales with batch x sequence x hidden. The multiplier is
// calibrated so the feasible batch sizes reproduce Table 3's: 64 for the 30B
// models at every generation length, shrinking to 4-32 for OPT-66B and
// LLaMA-65B as the sequence grows.
func zeroWorkspaceBytes(mod model.Config, seq, bsz int) float64 {
	return float64(bsz) * float64(seq) * float64(mod.Hidden) * float64(mod.BytesPerElem) * 100
}

func zeroStrategy(weightsOnGPU bool, bits int) perfmodel.Strategy {
	s := perfmodel.Strategy{
		QuantWeights: true,
		WeightBits:   bits,
		GroupSize:    512,
		ActGPUPct:    1, // hg = 100 in every ZeRO row of Table 3
	}
	if weightsOnGPU {
		s.WeightsGPUPct = 1
		s.CompressGPUWeights = true
	}
	return s
}

// LMOffload builds the full LM-Offload system: block size chosen with the
// quantized KV footprint, the quantization-aware policy search over the full
// space, and the parallelism-controlled execution profile.
func LMOffload(plat *hw.Platform, mod model.Config, gpuBatch, promptLen, genLen int) (*System, error) {
	// LM-Offload can afford the same block sizes as FlexGen (Table 3 keeps
	// bsz equal); choose with uncompressed KV so the workloads match.
	work, err := policy.ChooseBlock(plat, mod, gpuBatch, promptLen, genLen, 1)
	if err != nil {
		return nil, fmt.Errorf("baselines: lm-offload block choice: %w", err)
	}
	exec := perfmodel.LMOffloadProfile()
	res, err := policy.Plan(plat, mod, work, exec, policy.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("baselines: lm-offload policy: %w", err)
	}
	return &System{Name: "LM-Offload", Work: work, Strategy: res.Strategy, Exec: exec, Estimator: res.Estimator}, nil
}

// LMOffloadNoPC is the §5.3 ablation: the quantization-aware policy under
// FlexGen's execution environment (no parallelism control).
func LMOffloadNoPC(plat *hw.Platform, mod model.Config, gpuBatch, promptLen, genLen int) (*System, error) {
	work, err := policy.ChooseBlock(plat, mod, gpuBatch, promptLen, genLen, 1)
	if err != nil {
		return nil, err
	}
	exec := perfmodel.LMOffloadNoParallelismControl()
	res, err := policy.Plan(plat, mod, work, exec, policy.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &System{Name: "LM-Offload (no PC)", Work: work, Strategy: res.Strategy, Exec: exec, Estimator: res.Estimator}, nil
}
