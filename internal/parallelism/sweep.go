package parallelism

import "fmt"

// SweepPoint is one measurement of the §4.1 characterization study.
type SweepPoint struct {
	// Parallelism is the swept knob's value (threads or co-running ops).
	Parallelism int
	// StepTime is the per-layer step time under the setting (seconds).
	StepTime float64
	// Throughput is a relative tokens/s proxy (1/StepTime, normalized by the
	// caller if desired).
	Throughput float64
}

// SweepIntraOp reproduces the left half of Figure 5: vary the intra-op
// width with inter-op parallelism at the PyTorch default (all hardware
// threads). Expected shape: throughput rises steeply and saturates once the
// memory-bandwidth-bound operators stop scaling (~8 threads).
func (c *Controller) SweepIntraOp(og *OpGraph, transfers []TransferTask, widths []int) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(widths))
	for _, w := range widths {
		if w < 1 {
			return nil, fmt.Errorf("parallelism: intra-op width %d < 1", w)
		}
		compute, err := c.Profile.ComputeTaskTime(og, c.Machine.Threads, w)
		if err != nil {
			return nil, err
		}
		step := c.stepTime(compute, transfers, 1)
		out = append(out, SweepPoint{Parallelism: w, StepTime: step, Throughput: 1 / step})
	}
	return out, nil
}

// SweepInterOp reproduces the right half of Figure 5: vary the inter-op
// parallelism with intra-op width at the default (all physical cores).
// Expected shape: throughput peaks near the operator graph's maximum
// concurrency (12 on the evaluation machine) and declines beyond it as
// cross-socket traffic and co-running cache conflicts grow (§4.1).
func (c *Controller) SweepInterOp(og *OpGraph, transfers []TransferTask, inters []int) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(inters))
	for _, k := range inters {
		if k < 1 {
			return nil, fmt.Errorf("parallelism: inter-op parallelism %d < 1", k)
		}
		compute, err := c.Profile.ComputeTaskTime(og, k, c.Machine.Cores)
		if err != nil {
			return nil, err
		}
		step := c.stepTime(compute, transfers, 1)
		out = append(out, SweepPoint{Parallelism: k, StepTime: step, Throughput: 1 / step})
	}
	return out, nil
}

// stepTime composes the compute task with the transfer tasks at the given
// per-task thread count.
func (c *Controller) stepTime(compute float64, transfers []TransferTask, threadsEach int) float64 {
	step := compute
	for _, tr := range transfers {
		if t := c.transferTime(tr, threadsEach); t > step {
			step = t
		}
	}
	return step
}
