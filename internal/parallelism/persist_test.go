package parallelism

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	p := NewProfile(Xeon6330())
	if err := p.Record("qk_bmm", 4, 0.02); err != nil {
		t.Fatal(err)
	}
	if err := p.Record("qk_bmm", 8, 0.011); err != nil {
		t.Fatal(err)
	}
	if err := p.Record("softmax", 8, 0.002); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q := NewProfile(Xeon6330())
	if err := q.LoadJSON(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	op := Op{Name: "qk_bmm", Flops: 1, Bytes: 1}
	if got := q.OpTime(op, 8); got != 0.011 {
		t.Errorf("loaded OpTime = %g, want 0.011", got)
	}
	if got := q.OpTime(op, 6); got <= 0.011 || got >= 0.02 {
		t.Errorf("interpolation after load = %g", got)
	}
	ops := q.MeasuredOps()
	if len(ops) != 2 || ops[0] != "qk_bmm" || ops[1] != "softmax" {
		t.Errorf("MeasuredOps = %v", ops)
	}
}

func TestProfileLoadErrors(t *testing.T) {
	p := NewProfile(Xeon6330())
	if err := p.LoadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if err := p.LoadJSON(strings.NewReader(`{"overrides": {"x": {"zero": 1}}}`)); err == nil {
		t.Error("non-numeric width accepted")
	}
	if err := p.LoadJSON(strings.NewReader(`{"overrides": {"x": {"4": -1}}}`)); err == nil {
		t.Error("negative time accepted")
	}
	if err := p.LoadJSON(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}
