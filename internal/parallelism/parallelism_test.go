package parallelism

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/trace"
)

func testGraph(t *testing.T) *OpGraph {
	t.Helper()
	og, err := BuildAttentionGraph(model.OPT30B, trace.ParallelismStudy(), 68, DefaultHeadGroups)
	if err != nil {
		t.Fatal(err)
	}
	return og
}

func testTransfers() []TransferTask {
	// OPT-30B per-layer step volumes (order of magnitude from Table 1).
	return []TransferTask{
		{Name: "load_weight", Bytes: 550e6},
		{Name: "store_cache", Bytes: 18e6},
		{Name: "load_cache", Bytes: 0},
		{Name: "load_activation", Bytes: 9e6},
		{Name: "store_activation", Bytes: 9e6},
	}
}

func testController(t *testing.T) *Controller {
	t.Helper()
	c, err := NewController(Xeon6330(), 12.5e9)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMachineModelFromCPU(t *testing.T) {
	m := Xeon6330()
	if m.Cores != 56 || m.Threads != 112 || m.Sockets != 2 {
		t.Errorf("machine geometry %d/%d/%d", m.Cores, m.Threads, m.Sockets)
	}
	if m.CoresPerSocket() != 28 {
		t.Errorf("CoresPerSocket = %d, want 28", m.CoresPerSocket())
	}
	if _, err := NewMachineModel(hw.CPU{}); err == nil {
		t.Error("NewMachineModel accepted empty CPU")
	}
}

func TestOpTimeSaturatesAfterEightThreads(t *testing.T) {
	m := Xeon6330()
	op := Op{Name: "bmm", Flops: 1e8, Bytes: 1e9} // heavily memory-bound
	t1 := m.OpTime(op, 1)
	t8 := m.OpTime(op, 8)
	t16 := m.OpTime(op, 16)
	if t8 >= t1 {
		t.Errorf("no speedup from 1 to 8 threads: %g >= %g", t8, t1)
	}
	if ratio := t1 / t8; ratio < 4 {
		t.Errorf("1->8 thread speedup %.1fx, want >= 4x", ratio)
	}
	// §4.1: stable beyond 8 — within 15% of the 8-thread time.
	if t16 > t8*1.05 || t16 < t8*0.80 {
		t.Errorf("memory-bound op should be ~flat past 8 threads: t8=%g t16=%g", t8, t16)
	}
}

func TestAttentionGraphStructure(t *testing.T) {
	og := testGraph(t)
	if og.MaxConcurrency() != DefaultHeadGroups {
		t.Errorf("max concurrency = %d, want %d head groups", og.MaxConcurrency(), DefaultHeadGroups)
	}
	// 3 ops per group plus concat.
	if want := 3*DefaultHeadGroups + 1; len(og.Ops) != want {
		t.Errorf("ops = %d, want %d", len(og.Ops), want)
	}
	if og.WorkingSetBytes() <= 0 {
		t.Error("non-positive working set")
	}
}

func TestAttentionGraphErrors(t *testing.T) {
	if _, err := BuildAttentionGraph(model.OPT30B, trace.ParallelismStudy(), 0, 12); err == nil {
		t.Error("zero sequence accepted")
	}
	if _, err := BuildAttentionGraph(model.OPT30B, trace.ParallelismStudy(), 68, 0); err == nil {
		t.Error("zero head groups accepted")
	}
	if _, err := BuildAttentionGraph(model.OPT30B, trace.ParallelismStudy(), 68, model.OPT30B.Heads+1); err == nil {
		t.Error("too many head groups accepted")
	}
}

func TestProfileRecordAndInterpolate(t *testing.T) {
	p := NewProfile(Xeon6330())
	op := Op{Name: "measured", Flops: 1, Bytes: 1}
	if err := p.Record("measured", 2, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := p.Record("measured", 8, 0.05); err != nil {
		t.Fatal(err)
	}
	if got := p.OpTime(op, 2); got != 0.2 {
		t.Errorf("exact lookup = %g, want 0.2", got)
	}
	if got := p.OpTime(op, 5); got <= 0.05 || got >= 0.2 {
		t.Errorf("interpolated value %g outside (0.05, 0.2)", got)
	}
	if got := p.OpTime(op, 1); got != 0.2 {
		t.Errorf("below-range clamp = %g, want 0.2", got)
	}
	if got := p.OpTime(op, 64); got != 0.05 {
		t.Errorf("above-range clamp = %g, want 0.05", got)
	}
	if err := p.Record("x", 0, 1); err == nil {
		t.Error("Record accepted width 0")
	}
	if err := p.Record("x", 1, 0); err == nil {
		t.Error("Record accepted non-positive time")
	}
}

func TestFigure5IntraOpShape(t *testing.T) {
	c := testController(t)
	og := testGraph(t)
	widths := []int{1, 2, 4, 8, 16, 32, 56}
	pts, err := c.SweepIntraOp(og, testTransfers(), widths)
	if err != nil {
		t.Fatal(err)
	}
	byWidth := map[int]float64{}
	for _, p := range pts {
		byWidth[p.Parallelism] = p.Throughput
	}
	// Rising region: 1 -> 8 must improve substantially.
	if byWidth[8] < byWidth[1]*2 {
		t.Errorf("intra-op 8 (%.3g) should be >= 2x intra-op 1 (%.3g)", byWidth[8], byWidth[1])
	}
	// Stable region: 16..56 within ±25% of the 8-thread value.
	for _, w := range []int{16, 32, 56} {
		r := byWidth[w] / byWidth[8]
		if r < 0.75 || r > 1.25 {
			t.Errorf("intra-op %d throughput ratio vs 8 = %.2f, want ~stable", w, r)
		}
	}
}

func TestFigure5InterOpShape(t *testing.T) {
	c := testController(t)
	og := testGraph(t)
	inters := []int{1, 2, 4, 8, 12, 16, 32, 64, 112}
	pts, err := c.SweepInterOp(og, testTransfers(), inters)
	if err != nil {
		t.Fatal(err)
	}
	byK := map[int]float64{}
	var bestK int
	var bestTput float64
	for _, p := range pts {
		byK[p.Parallelism] = p.Throughput
		if p.Throughput > bestTput {
			bestTput, bestK = p.Throughput, p.Parallelism
		}
	}
	// §4.1: best at 12.
	if bestK != 12 {
		t.Errorf("best inter-op = %d, want 12", bestK)
	}
	// Declines beyond the peak.
	if byK[112] >= byK[12] {
		t.Errorf("inter-op 112 (%.3g) should be below the peak at 12 (%.3g)", byK[112], byK[12])
	}
	// Rises toward the peak.
	if !(byK[1] < byK[4] && byK[4] < byK[12]) {
		t.Errorf("inter-op throughput not rising to the peak: %v", byK)
	}
}

func TestOptimizeMatchesPaperTuning(t *testing.T) {
	c := testController(t)
	og := testGraph(t)
	s, err := c.Optimize(og, testTransfers())
	if err != nil {
		t.Fatal(err)
	}
	// §5.4: LM-Offload uses 12 inter-op and 16 intra-op threads. Accept the
	// neighborhood: inter-op = head groups exactly, intra-op in [6, 24].
	if s.InterOpCompute != DefaultHeadGroups {
		t.Errorf("inter-op compute = %d, want %d", s.InterOpCompute, DefaultHeadGroups)
	}
	if s.InterOp != DefaultHeadGroups+reservedTransferThreads {
		t.Errorf("total inter-op = %d, want compute+5", s.InterOp)
	}
	if s.IntraOp < 6 || s.IntraOp > 24 {
		t.Errorf("intra-op = %d, want ~16", s.IntraOp)
	}
	// Thread budget respected.
	total := s.InterOpCompute * s.IntraOp
	for _, n := range s.TransferThreads {
		total += n
	}
	if total > c.Machine.Threads {
		t.Errorf("setting uses %d threads, machine has %d", total, c.Machine.Threads)
	}
	// Proportionality: the biggest transfer gets the most threads.
	if s.TransferThreads["load_weight"] < s.TransferThreads["store_cache"] {
		t.Errorf("load_weight (%d threads) should get >= store_cache (%d)",
			s.TransferThreads["load_weight"], s.TransferThreads["store_cache"])
	}
	for name, n := range s.TransferThreads {
		if n < 1 {
			t.Errorf("task %s got %d threads, want >= 1", name, n)
		}
	}
}

func TestFigure8Improvement(t *testing.T) {
	c := testController(t)
	og := testGraph(t)
	def, err := c.DefaultSetting(og, testTransfers())
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := c.Optimize(og, testTransfers())
	if err != nil {
		t.Fatal(err)
	}
	imp := Compare(def, tuned)
	// §5.4: 32% compute-task reduction. Accept 15–60%.
	if imp.ComputeReduction < 0.15 || imp.ComputeReduction > 0.60 {
		t.Errorf("compute reduction = %.0f%%, want ~32%%", imp.ComputeReduction*100)
	}
	if imp.StepReduction < 0 {
		t.Errorf("tuned step time worse than default: %+v", imp)
	}
}

func TestTable5LLCMisses(t *testing.T) {
	m := Xeon6330()
	og := testGraph(t)
	ws := og.WorkingSetBytes()
	// Default: 112 inter-op pool threads, 56-wide ops, 12 active operators.
	defLoads, defStores := m.LLCMisses(112, 12, 56, ws)
	// Tuned: 12 inter-op, 8-wide ops.
	tunedLoads, tunedStores := m.LLCMisses(12, 12, 8, ws)
	if tunedLoads >= defLoads || tunedStores >= defStores {
		t.Errorf("parallelism control should reduce misses: loads %d->%d stores %d->%d",
			defLoads, tunedLoads, defStores, tunedStores)
	}
	// Table 5 reports ~38-40% reductions; accept 20-60%.
	lr := 1 - float64(tunedLoads)/float64(defLoads)
	if lr < 0.10 || lr > 0.70 {
		t.Errorf("load miss reduction = %.0f%%, want ~38%%", lr*100)
	}
	// Table 5: store misses exceed load misses (19B vs 10B).
	if defStores <= defLoads {
		t.Errorf("store misses (%d) should exceed load misses (%d)", defStores, defLoads)
	}
}

func TestBundleMergesSmallOps(t *testing.T) {
	c := testController(t)
	og := testGraph(t)
	bundled := og.Bundle(c.Profile, 8, 1.0) // huge threshold: everything chains
	if len(bundled.Ops) >= len(og.Ops) {
		t.Errorf("bundling did not reduce op count: %d -> %d", len(og.Ops), len(bundled.Ops))
	}
	// Total work is conserved.
	var before, after float64
	for _, op := range og.Ops {
		before += op.Flops + op.Bytes
	}
	for _, op := range bundled.Ops {
		after += op.Flops + op.Bytes
	}
	if before != after {
		t.Errorf("bundling lost work: %g -> %g", before, after)
	}
	// Concurrency is preserved (chains merge within groups, not across).
	if bundled.MaxConcurrency() != og.MaxConcurrency() {
		t.Errorf("bundling changed concurrency: %d -> %d", og.MaxConcurrency(), bundled.MaxConcurrency())
	}
	// Zero threshold leaves the graph unchanged.
	same := og.Bundle(c.Profile, 8, 0)
	if len(same.Ops) != len(og.Ops) {
		t.Errorf("zero-threshold bundle changed the graph: %d -> %d ops", len(og.Ops), len(same.Ops))
	}
}

func TestCPUEfficiencyBounds(t *testing.T) {
	c := testController(t)
	og := testGraph(t)
	def, _ := c.DefaultSetting(og, testTransfers())
	tuned, _ := c.Optimize(og, testTransfers())
	ed := c.CPUEfficiency(og, def)
	et := c.CPUEfficiency(og, tuned)
	if ed <= 0 || ed > 1 || et <= 0 || et > 1 {
		t.Fatalf("efficiencies out of range: default %g tuned %g", ed, et)
	}
	if et <= ed {
		t.Errorf("tuned efficiency (%.2f) should exceed default (%.2f)", et, ed)
	}
}

func TestOptimizeErrors(t *testing.T) {
	c := testController(t)
	og := testGraph(t)
	if _, err := c.Optimize(og, nil); err == nil {
		t.Error("Optimize accepted empty transfers")
	}
	if _, err := NewController(Xeon6330(), 0); err == nil {
		t.Error("NewController accepted zero bandwidth")
	}
	if _, err := c.SweepIntraOp(og, testTransfers(), []int{0}); err == nil {
		t.Error("SweepIntraOp accepted width 0")
	}
	if _, err := c.SweepInterOp(og, testTransfers(), []int{0}); err == nil {
		t.Error("SweepInterOp accepted inter-op 0")
	}
}

func TestAssignTransferThreadsExhaustsBudget(t *testing.T) {
	transfers := testTransfers()
	for _, free := range []int{5, 9, 20, 51} {
		got := assignTransferThreads(transfers, free)
		total := 0
		for _, n := range got {
			if n < 1 {
				t.Fatalf("free=%d: task got %d threads", free, n)
			}
			total += n
		}
		if total != free {
			t.Errorf("free=%d: assigned %d threads", free, total)
		}
	}
}
