package parallelism

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// MeasureBmmProfile replaces the analytical operator times with *measured*
// ones: it runs a real batched Q·Kᵀ-shaped matmul on the Go worker pool at
// each candidate width and records the wall-clock times into the profile —
// the offline-profiling step §4.2 describes, executed for real.
//
// rows×inner is the per-operator matmul shape (scaled down from the
// production shape; only the relative scaling across widths matters to
// Algorithm 3). The measurements are inherently machine-dependent, so
// callers use this to tune on the machine they run on, not in tests of
// modeled behaviour.
func MeasureBmmProfile(p *Profile, pool *threadpool.Pool, opNames []string, rows, inner int, widths []int, reps int) error {
	if pool == nil {
		return fmt.Errorf("parallelism: measurement needs a worker pool")
	}
	if rows <= 0 || inner <= 0 || reps <= 0 {
		return fmt.Errorf("parallelism: invalid measurement shape %dx%d x%d", rows, inner, reps)
	}
	rng := rand.New(rand.NewSource(1))
	a := tensor.RandN(rng, 1, rows, inner)
	b := tensor.RandN(rng, 1, rows, inner)
	for _, w := range widths {
		if w < 1 {
			return fmt.Errorf("parallelism: width %d < 1", w)
		}
		// Warm up once, then time the repetitions.
		tensor.MatMulT(pool, w, a, b)
		start := time.Now()
		for r := 0; r < reps; r++ {
			tensor.MatMulT(pool, w, a, b)
		}
		elapsed := time.Since(start).Seconds() / float64(reps)
		if elapsed <= 0 {
			// Sub-resolution measurement; clamp so Record accepts it.
			elapsed = 1e-9
		}
		for _, name := range opNames {
			if err := p.Record(name, w, elapsed); err != nil {
				return err
			}
		}
	}
	return nil
}

// MeasureGraphProfile measures every distinct operator name in the graph
// with a matmul shaped by its byte volume, filling the profile with real
// observations for Algorithm 3 to consume.
func MeasureGraphProfile(p *Profile, pool *threadpool.Pool, og *OpGraph, widths []int, reps int) error {
	names := make([]string, 0, len(og.Ops))
	for _, op := range og.Ops {
		names = append(names, op.Name)
	}
	// A modest fixed shape: measurement cost stays bounded; Algorithm 3
	// only needs the relative width scaling.
	return MeasureBmmProfile(p, pool, names, 96, 96, widths, reps)
}
