package parallelism

import (
	"testing"

	"repro/internal/model"
	"repro/internal/threadpool"
	"repro/internal/trace"
)

func TestMeasureGraphProfileRecords(t *testing.T) {
	p := NewProfile(Xeon6330())
	pool := threadpool.MustNew(4)
	og, err := BuildAttentionGraph(model.OPT30B, trace.ParallelismStudy(), 68, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := MeasureGraphProfile(p, pool, og, []int{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	// Every operator now has a recorded (not modeled) time at the measured
	// widths, and the times are positive.
	for _, op := range og.Ops {
		if got := p.OpTime(op, 1); got <= 0 {
			t.Fatalf("op %s: non-positive measured time %g", op.Name, got)
		}
	}
	// Algorithm 3 runs on measured profiles too.
	ctrl, err := NewController(Xeon6330(), 12.5e9)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Profile = p
	if _, err := ctrl.Optimize(og, testTransfers()); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureValidation(t *testing.T) {
	p := NewProfile(Xeon6330())
	if err := MeasureBmmProfile(p, nil, []string{"x"}, 8, 8, []int{1}, 1); err == nil {
		t.Error("nil pool accepted")
	}
	pool := threadpool.MustNew(2)
	if err := MeasureBmmProfile(p, pool, []string{"x"}, 0, 8, []int{1}, 1); err == nil {
		t.Error("zero rows accepted")
	}
	if err := MeasureBmmProfile(p, pool, []string{"x"}, 8, 8, []int{0}, 1); err == nil {
		t.Error("zero width accepted")
	}
}
