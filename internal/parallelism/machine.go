// Package parallelism implements LM-Offload's thread-level parallelism
// control (§4): the operator dependency graph of the offloaded attention
// computation (Fig. 6), an offline profiling model for operator times under
// varying intra-op widths, and Algorithm 3 — the enumeration that picks
// intra-op and inter-op parallelism for the compute task and distributes the
// remaining threads over the five load/store tasks in proportion to their
// transfer volumes.
package parallelism

import (
	"fmt"

	"repro/internal/hw"
)

// MachineModel captures the CPU behaviour that shapes Figure 5: per-core
// compute rate, per-socket memory bandwidth that saturates after a few
// streaming threads, a shared last-level cache whose overflow penalizes
// co-running operators, and a NUMA penalty once work spills across sockets.
type MachineModel struct {
	Cores   int
	Threads int
	Sockets int
	// CoreFlops is one core's sustained dense-math rate (FLOP/s).
	CoreFlops float64
	// SocketBW is one socket's DRAM bandwidth (bytes/s).
	SocketBW float64
	// BWSaturation is the number of streaming threads that saturate one
	// operator's achievable bandwidth (§4.1: "performance ... becomes
	// stable when the number of threads is larger than 8").
	BWSaturation int
	// OpBWCap is the memory bandwidth one operator's address stream can
	// extract regardless of thread count (strided batched-matmul streams
	// reach only a fraction of STREAM bandwidth).
	OpBWCap float64
	// LLCBytes is the aggregate last-level cache size.
	LLCBytes int64
	// NUMAFactor is the slowdown of cross-socket traffic (> 1).
	NUMAFactor float64
	// OversubFactor is the slowdown per unit of active-thread
	// oversubscription (active operators x intra-op width vs hardware
	// threads).
	OversubFactor float64
	// SpinFactor is the slowdown per surplus inter-op scheduler thread
	// beyond the graph's usable concurrency (idle pool threads still spin
	// and steal cache) — what makes inter-op 112 lose to 12 in Fig. 5.
	SpinFactor float64
	// MissFraction is the fraction of cache-line touches that miss the LLC
	// under uncontended streaming (hardware prefetchers hide the rest);
	// calibrated against Table 5's absolute counts.
	MissFraction float64
}

// NewMachineModel derives a model from a hardware CPU description.
func NewMachineModel(cpu hw.CPU) (*MachineModel, error) {
	if cpu.Cores <= 0 || cpu.Sockets <= 0 {
		return nil, fmt.Errorf("parallelism: CPU must have positive cores and sockets, got %d/%d", cpu.Cores, cpu.Sockets)
	}
	socketBW := cpu.MemBandwidth / float64(cpu.Sockets)
	return &MachineModel{
		Cores:         cpu.Cores,
		Threads:       cpu.Threads,
		Sockets:       cpu.Sockets,
		CoreFlops:     cpu.Flops / float64(cpu.Cores),
		SocketBW:      socketBW,
		BWSaturation:  8,
		OpBWCap:       socketBW / 6,
		LLCBytes:      int64(cpu.Sockets) * 42 * hw.MiB, // Xeon Gold 6330: 42 MB per socket
		NUMAFactor:    1.35,
		OversubFactor: 0.01,
		SpinFactor:    0.005,
		MissFraction:  0.018,
	}, nil
}

// Xeon6330 returns the model of the paper's evaluation CPU complex.
func Xeon6330() *MachineModel {
	m, err := NewMachineModel(hw.SingleGPUA100().CPU)
	if err != nil {
		panic(err)
	}
	return m
}

// CoresPerSocket returns the per-socket core count.
func (m *MachineModel) CoresPerSocket() int { return m.Cores / m.Sockets }

// OpTime models one operator's execution time with `width` intra-op threads
// running alone: a roofline over compute (scales with threads) and memory
// bandwidth, which ramps linearly to BWSaturation threads and then hits the
// per-operator stream cap (§4.1's saturation at ~8 threads).
func (m *MachineModel) OpTime(op Op, width int) float64 {
	if width < 1 {
		width = 1
	}
	compute := op.Flops / (float64(width) * m.CoreFlops)
	bw := m.OpBWCap * float64(width) / float64(m.BWSaturation)
	if bw > m.OpBWCap {
		bw = m.OpBWCap
	}
	memory := op.Bytes / bw
	if compute > memory {
		return compute
	}
	return memory
}

// TotalBW is the machine's aggregate DRAM bandwidth.
func (m *MachineModel) TotalBW() float64 { return m.SocketBW * float64(m.Sockets) }

// ContentionFactor is the multiplicative slowdown when `active` operators
// co-run (each `intraOp` threads wide) under an inter-op pool of `slots`
// scheduler threads: surplus pool threads spin and pollute caches, and
// active-thread oversubscription adds scheduling churn.
func (m *MachineModel) ContentionFactor(slots, active, intraOp int) float64 {
	f := 1.0
	if slots > active {
		f += m.SpinFactor * float64(slots-active)
	}
	if total := active * intraOp; total > m.Threads {
		f += m.OversubFactor * (float64(total)/float64(m.Threads) - 1)
	}
	return f
}

// LLCMisses estimates last-level cache misses for one pass of the compute
// task over its working set under a threading configuration — the Table 5
// metric. Surplus inter-op pool threads and thread oversubscription amplify
// the uncontended streaming miss count.
func (m *MachineModel) LLCMisses(slots, active, intraOp int, workingSet int64) (loads, stores int64) {
	lineBytes := int64(64)
	base := float64(workingSet/lineBytes) * m.MissFraction
	amp := 1.0
	if slots > active {
		amp += 0.005 * float64(slots-active)
	}
	if total := active * intraOp; total > m.Threads {
		amp += 0.0005 * float64(total-m.Threads)
	}
	loads = int64(base * amp)
	// The unfused attention path materializes intermediates, so store misses
	// exceed load misses (Table 5: 19B stores vs 10B loads).
	stores = int64(base * amp * 1.9)
	return loads, stores
}
