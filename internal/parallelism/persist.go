package parallelism

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The paper runs offline profiling once and reuses the results "repeatedly
// during the online LLM inference" (§4.2). SaveJSON/LoadJSON persist the
// measured overrides so a deployment profiles on first boot and loads the
// table afterwards.

// profileDoc is the on-disk schema: op name -> width -> seconds.
type profileDoc struct {
	Overrides map[string]map[string]float64 `json:"overrides"`
}

// SaveJSON writes the profile's measured overrides (analytical fallbacks are
// recomputed from the machine model and are not persisted).
func (p *Profile) SaveJSON(w io.Writer) error {
	doc := profileDoc{Overrides: map[string]map[string]float64{}}
	for op, widths := range p.overrides {
		m := map[string]float64{}
		for width, secs := range widths {
			m[fmt.Sprintf("%d", width)] = secs
		}
		doc.Overrides[op] = m
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadJSON merges persisted overrides into the profile, validating every
// entry through Record.
func (p *Profile) LoadJSON(r io.Reader) error {
	var doc profileDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("parallelism: decoding profile: %w", err)
	}
	// Deterministic order for reproducible error reporting.
	ops := make([]string, 0, len(doc.Overrides))
	for op := range doc.Overrides {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		for widthStr, secs := range doc.Overrides[op] {
			var width int
			if _, err := fmt.Sscanf(widthStr, "%d", &width); err != nil {
				return fmt.Errorf("parallelism: bad width %q for op %q", widthStr, op)
			}
			if err := p.Record(op, width, secs); err != nil {
				return fmt.Errorf("parallelism: op %q: %w", op, err)
			}
		}
	}
	return nil
}

// MeasuredOps returns the operator names with recorded overrides, sorted.
func (p *Profile) MeasuredOps() []string {
	ops := make([]string, 0, len(p.overrides))
	for op := range p.overrides {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}
