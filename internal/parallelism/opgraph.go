package parallelism

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/trace"
)

// Op is one node of the compute task's operator dependency graph (Fig. 6),
// characterized by the work it performs — the inputs to the offline
// profiling model.
type Op struct {
	Name string
	// Flops is the floating-point work of the operator.
	Flops float64
	// Bytes is the memory traffic of the operator (reads + writes).
	Bytes float64
}

// OpGraph is the compute task's dependency structure plus the operator
// descriptions, ready for Algorithm 3.
type OpGraph struct {
	Ops []Op
	// DAG node IDs correspond to Ops indices.
	DAG *graph.DAG
	// HeadGroups is the width of the per-head-group fan-out.
	HeadGroups int
}

// DefaultHeadGroups is how many independent head-group operators the
// CPU-side attention exposes on the evaluation machine; it sets the graph's
// maximum concurrency, and therefore Algorithm 3's inter-op parallelism to
// the paper's tuned value of 12 (§5.4).
const DefaultHeadGroups = 12

// cpuAttnPasses is the effective number of memory passes PyTorch's unfused
// CPU attention makes over its operands, calibrated so the compute task's
// absolute time matches the §5.4 measurements.
const cpuAttnPasses = 20

// BuildAttentionGraph constructs the operator dependency graph of the
// CPU-offloaded attention computation for one transformer layer over one GPU
// batch (Fig. 6). FlexGen's CPU attention covers only the cache-resident
// part of the layer — the Q·Kᵀ batched matmul, the softmax, and the
// scores·V matmul; the Q/K/V/output projections and the MLP stay on the GPU
// (§2.2). PyTorch schedules each head group as an independent operator
// chain:
//
//	per head group g: QKᵀ(g) → scale+softmax(g) → scores·V(g)
//	all groups → concat
//
// Every operator is memory-bandwidth-bound (the per-head reduction dk is
// small), which is why intra-op scaling saturates around eight threads
// (Fig. 5, §4.1).
func BuildAttentionGraph(cfg model.Config, work trace.Workload, seqLen, headGroups int) (*OpGraph, error) {
	if seqLen <= 0 {
		return nil, fmt.Errorf("parallelism: sequence length must be positive, got %d", seqLen)
	}
	if headGroups <= 0 || headGroups > cfg.Heads {
		return nil, fmt.Errorf("parallelism: head groups %d outside [1, %d]", headGroups, cfg.Heads)
	}
	// The compute task covers the whole zig-zag block: every GPU batch's
	// attention runs on the CPU within one layer step (Algorithm 1's k
	// loop).
	b := float64(work.BlockSize())
	s := float64(seqLen)
	// The CPU-side attention works on float32 copies, and PyTorch's unfused
	// path makes many passes over the data (fp16->fp32 conversion, score
	// materialization, masking, softmax temporaries); cpuAttnPasses folds
	// that amplification into the operator byte counts.
	const bytesPer = 4 * cpuAttnPasses

	g := graph.New()
	og := &OpGraph{DAG: g, HeadGroups: headGroups}
	add := func(op Op) int {
		og.Ops = append(og.Ops, op)
		return g.AddNode(op.Name, 0) // weights assigned later by the profiler
	}

	groupEnds := make([]int, 0, headGroups)
	perGroupHeads := float64(cfg.Heads) / float64(headGroups)
	dk := float64(cfg.HeadDim())
	for gi := 0; gi < headGroups; gi++ {
		// Q·Kᵀ: for each sequence and head, a (1 × dk) · (dk × s) product.
		qk := add(Op{
			Name:  fmt.Sprintf("qk_bmm_%d", gi),
			Flops: 2 * b * perGroupHeads * s * dk,
			Bytes: b * perGroupHeads * (s*dk + dk + s) * bytesPer,
		})
		sm := add(Op{
			Name:  fmt.Sprintf("softmax_%d", gi),
			Flops: 5 * b * perGroupHeads * s,
			Bytes: 2 * b * perGroupHeads * s * bytesPer,
		})
		g.AddEdge(qk, sm)
		av := add(Op{
			Name:  fmt.Sprintf("av_bmm_%d", gi),
			Flops: 2 * b * perGroupHeads * s * dk,
			Bytes: b * perGroupHeads * (s*dk + s + dk) * bytesPer,
		})
		g.AddEdge(sm, av)
		groupEnds = append(groupEnds, av)
	}

	concat := add(Op{
		Name:  "concat",
		Flops: 0,
		Bytes: 2 * b * float64(cfg.Hidden) * bytesPer,
	})
	for _, e := range groupEnds {
		g.AddEdge(e, concat)
	}
	return og, nil
}

// WorkingSetBytes estimates the aggregate data the graph touches — the LLC
// pressure the contention model and the Table 5 miss counts key off.
func (og *OpGraph) WorkingSetBytes() int64 {
	var total float64
	for _, op := range og.Ops {
		total += op.Bytes
	}
	return int64(total)
}

// MaxConcurrency returns the graph's maximum concurrency level (Kahn-based
// level analysis — Algorithm 3 line 4).
func (og *OpGraph) MaxConcurrency() int {
	mc, err := og.DAG.MaxConcurrency()
	if err != nil {
		// The builder only produces DAGs; a cycle is a programming error.
		panic(err)
	}
	return mc
}

// ApplyProfile assigns each node its profiled execution time at the given
// intra-op width so the DAG can be schedule-analyzed.
func (og *OpGraph) ApplyProfile(p *Profile, intraOp int) {
	for i, op := range og.Ops {
		og.DAG.SetWeight(i, p.OpTime(op, intraOp))
	}
}

// Bundle merges operators whose profiled time at the given width falls below
// threshold into their single predecessor where dependencies allow — the
// paper's small-operator bundling that avoids scheduling overhead and cache
// thrashing. It returns a new graph; the receiver is unchanged.
func (og *OpGraph) Bundle(p *Profile, intraOp int, threshold float64) *OpGraph {
	n := len(og.Ops)
	// Union-find over ops: a small op with exactly one predecessor merges
	// into that predecessor's bundle.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n; i++ {
		preds := og.DAG.Predecessors(i)
		if len(preds) == 1 && p.OpTime(og.Ops[i], intraOp) < threshold {
			parent[find(i)] = find(preds[0])
		}
	}
	// Build the bundled graph.
	repr := map[int]int{} // root -> new ID
	out := &OpGraph{DAG: graph.New(), HeadGroups: og.HeadGroups}
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := repr[r]; !ok {
			repr[r] = out.DAG.AddNode(og.Ops[r].Name, 0)
			out.Ops = append(out.Ops, Op{Name: og.Ops[r].Name})
		}
		id := repr[r]
		out.Ops[id].Flops += og.Ops[i].Flops
		out.Ops[id].Bytes += og.Ops[i].Bytes
	}
	for i := 0; i < n; i++ {
		for _, s := range og.DAG.Successors(i) {
			a, b := repr[find(i)], repr[find(s)]
			if a != b {
				out.DAG.AddEdge(a, b)
			}
		}
	}
	return out
}
