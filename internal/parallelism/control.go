package parallelism

import (
	"fmt"
	"sort"
)

// TransferTask describes one of the five load/store tasks of Algorithm 1
// that Algorithm 3 assigns leftover threads to.
type TransferTask struct {
	Name string
	// Bytes is the per-step transfer volume.
	Bytes float64
}

// Setting is a complete thread-level parallelism configuration.
type Setting struct {
	// IntraOp is the thread width of each compute-task operator.
	IntraOp int
	// InterOpCompute is the compute task's operator concurrency (the graph's
	// maximum concurrency level).
	InterOpCompute int
	// InterOp is the total inter-op parallelism: compute plus the five
	// load/store tasks.
	InterOp int
	// TransferThreads maps each load/store task to its thread count,
	// proportional to transfer volume.
	TransferThreads map[string]int
	// ComputeTime is the profiled compute-task makespan under this setting.
	ComputeTime float64
	// StepTime is the estimated per-layer step time (Eq. 2 over all tasks).
	StepTime float64
}

// Controller runs Algorithm 3.
type Controller struct {
	Machine *MachineModel
	Profile *Profile
	// LinkBandwidth is the interconnect's per-direction bandwidth the
	// load/store tasks share (bytes/s).
	LinkBandwidth float64
	// BundleThreshold merges compute operators shorter than this many
	// seconds before scheduling (§4.2: bundling small operators avoids
	// cache thrashing); zero disables bundling.
	BundleThreshold float64
}

// NewController wires a controller for the machine.
func NewController(m *MachineModel, linkBandwidth float64) (*Controller, error) {
	if linkBandwidth <= 0 {
		return nil, fmt.Errorf("parallelism: link bandwidth must be positive, got %g", linkBandwidth)
	}
	return &Controller{
		Machine:         m,
		Profile:         NewProfile(m),
		LinkBandwidth:   linkBandwidth,
		BundleThreshold: 2e-3,
	}, nil
}

// reservedTransferThreads is the minimum thread count Algorithm 3 keeps for
// the five load/store tasks (Algorithm 3 lines 3 and 7).
const reservedTransferThreads = 5

// Optimize is Algorithm 3: enumerate intra-op widths, derive the compute
// task's inter-op parallelism from the dependency graph's maximum
// concurrency, give the remaining threads to the load/store tasks in
// proportion to their volumes, and keep the setting with the best estimated
// step time.
func (c *Controller) Optimize(og *OpGraph, transfers []TransferTask) (Setting, error) {
	if len(transfers) == 0 {
		return Setting{}, fmt.Errorf("parallelism: no transfer tasks given")
	}
	maxThreads := c.Machine.Threads
	work := og
	if c.BundleThreshold > 0 {
		work = og.Bundle(c.Profile, 8, c.BundleThreshold)
	}
	interCompute := work.MaxConcurrency()

	best := Setting{}
	found := false
	for intra := 1; intra <= maxThreads-reservedTransferThreads; intra++ {
		free := maxThreads - interCompute*intra
		if free < reservedTransferThreads {
			continue // Algorithm 3 line 7
		}
		compute, err := c.Profile.ComputeTaskTime(work, interCompute, intra)
		if err != nil {
			return Setting{}, err
		}
		threads := assignTransferThreads(transfers, free)
		step := compute
		for _, tr := range transfers {
			t := c.transferTime(tr, threads[tr.Name])
			if t > step {
				step = t
			}
		}
		if !found || step < best.StepTime {
			best = Setting{
				IntraOp:         intra,
				InterOpCompute:  interCompute,
				InterOp:         interCompute + reservedTransferThreads,
				TransferThreads: threads,
				ComputeTime:     compute,
				StepTime:        step,
			}
			found = true
		}
	}
	if !found {
		return Setting{}, fmt.Errorf("parallelism: no feasible setting with %d threads and inter-op %d", maxThreads, interCompute)
	}
	return best, nil
}

// Evaluate profiles one forced intra-op width under the controller's machine
// model — the counterpart of Optimize for a setting the caller is already
// running. The adapt loop uses it to price the *current* policy under a
// refitted profile, so a candidate's predicted gain is a ratio of two step
// times estimated the same way. Unlike Optimize, an over-wide width that
// leaves fewer than the reserved transfer threads is still evaluated (each
// load/store task keeps its minimum single thread): the running system may
// well be in exactly that infeasible-but-real configuration.
func (c *Controller) Evaluate(og *OpGraph, transfers []TransferTask, intra int) (Setting, error) {
	if intra < 1 {
		return Setting{}, fmt.Errorf("parallelism: intra-op width must be >= 1, got %d", intra)
	}
	if len(transfers) == 0 {
		return Setting{}, fmt.Errorf("parallelism: no transfer tasks given")
	}
	work := og
	if c.BundleThreshold > 0 {
		work = og.Bundle(c.Profile, 8, c.BundleThreshold)
	}
	interCompute := work.MaxConcurrency()
	compute, err := c.Profile.ComputeTaskTime(work, interCompute, intra)
	if err != nil {
		return Setting{}, err
	}
	free := c.Machine.Threads - interCompute*intra
	threads := assignTransferThreads(transfers, free)
	step := compute
	for _, tr := range transfers {
		if t := c.transferTime(tr, threads[tr.Name]); t > step {
			step = t
		}
	}
	return Setting{
		IntraOp:         intra,
		InterOpCompute:  interCompute,
		InterOp:         interCompute + reservedTransferThreads,
		TransferThreads: threads,
		ComputeTime:     compute,
		StepTime:        step,
	}, nil
}

// DefaultSetting is PyTorch's default on the evaluation machine: intra-op =
// physical cores (56), inter-op = hardware threads (112) — the §4.1 baseline.
func (c *Controller) DefaultSetting(og *OpGraph, transfers []TransferTask) (Setting, error) {
	intra := c.Machine.Cores
	inter := c.Machine.Threads
	compute, err := c.Profile.ComputeTaskTime(og, inter, intra)
	if err != nil {
		return Setting{}, err
	}
	// Default threading gives every task the full machine; model transfer
	// threads as one each (the data-copy threads PyTorch spawns).
	threads := map[string]int{}
	step := compute
	for _, tr := range transfers {
		threads[tr.Name] = 1
		if t := c.transferTime(tr, 1); t > step {
			step = t
		}
	}
	return Setting{
		IntraOp:         intra,
		InterOpCompute:  inter,
		InterOp:         inter,
		TransferThreads: threads,
		ComputeTime:     compute,
		StepTime:        step,
	}, nil
}

// transferTime models a load/store task's duration: the link bandwidth is
// only saturated with enough feeder threads (pinned-buffer staging copies).
func (c *Controller) transferTime(tr TransferTask, threads int) float64 {
	if tr.Bytes == 0 {
		return 0
	}
	eff := linkEfficiency(threads)
	return tr.Bytes / (c.LinkBandwidth * eff)
}

// linkEfficiency is the achieved link fraction with the given staging
// threads: one thread drives ~55%, saturating around three.
func linkEfficiency(threads int) float64 {
	switch {
	case threads <= 0:
		return 0.10
	case threads == 1:
		return 0.55
	case threads == 2:
		return 0.80
	default:
		return 0.95
	}
}

// assignTransferThreads distributes free threads over the tasks in
// proportion to their volumes (Algorithm 3: "the intra-op parallelism for
// each load/store task is in proportion to the data transfer volume"),
// guaranteeing at least one thread each. Leftover threads from rounding go
// to the largest transfers first, deterministically.
func assignTransferThreads(transfers []TransferTask, free int) map[string]int {
	out := make(map[string]int, len(transfers))
	var total float64
	for _, tr := range transfers {
		out[tr.Name] = 1
		total += tr.Bytes
	}
	extra := free - len(transfers)
	if extra <= 0 || total == 0 {
		return out
	}
	// Proportional floor shares, then largest-volume-first for remainders.
	idx := make([]int, len(transfers))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ta, tb := transfers[idx[a]], transfers[idx[b]]
		if ta.Bytes != tb.Bytes {
			return ta.Bytes > tb.Bytes
		}
		return ta.Name < tb.Name
	})
	given := 0
	for _, i := range idx {
		share := int(float64(extra) * transfers[i].Bytes / total)
		out[transfers[i].Name] += share
		given += share
	}
	for _, i := range idx {
		if given >= extra {
			break
		}
		out[transfers[i].Name]++
		given++
	}
	return out
}

// Improvement quantifies a tuned setting against the default, in fractional
// reduction of compute-task and step time — the Figure 8 metrics.
type Improvement struct {
	ComputeReduction float64
	StepReduction    float64
}

// Compare returns the improvement of tuned over def.
func Compare(def, tuned Setting) Improvement {
	imp := Improvement{}
	if def.ComputeTime > 0 {
		imp.ComputeReduction = 1 - tuned.ComputeTime/def.ComputeTime
	}
	if def.StepTime > 0 {
		imp.StepReduction = 1 - tuned.StepTime/def.StepTime
	}
	return imp
}

// CPUEfficiency translates a setting into the perfmodel's CPUCompute factor:
// the ratio of the machine's ideal roofline time for the graph's work to the
// setting's profiled compute time. Feeding this into an ExecProfile closes
// the loop between §4's control and §3's model.
func (c *Controller) CPUEfficiency(og *OpGraph, s Setting) float64 {
	var flops, bytes float64
	for _, op := range og.Ops {
		flops += op.Flops
		bytes += op.Bytes
	}
	idealCompute := flops / (float64(c.Machine.Cores) * c.Machine.CoreFlops)
	idealMemory := bytes / (c.Machine.SocketBW * float64(c.Machine.Sockets))
	ideal := idealCompute
	if idealMemory > ideal {
		ideal = idealMemory
	}
	if s.ComputeTime <= 0 {
		return 1
	}
	eff := ideal / s.ComputeTime
	if eff > 1 {
		eff = 1
	}
	return eff
}
