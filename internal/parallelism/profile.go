package parallelism

import (
	"fmt"
	"sort"
)

// Profile is the offline profiling table of §4.2: operator execution times
// under each candidate intra-op width. The paper profiles once on the target
// machine and reuses the table during online inference; here the table is
// filled from the machine model (or from real measurements via Measure).
type Profile struct {
	machine *MachineModel
	// overrides maps op name -> width -> measured seconds, taking precedence
	// over the analytical model.
	overrides map[string]map[int]float64
}

// NewProfile creates a profile backed by the machine model.
func NewProfile(m *MachineModel) *Profile {
	return &Profile{machine: m, overrides: map[string]map[int]float64{}}
}

// Record stores a measured execution time for (op, width), overriding the
// analytical estimate — the hook real offline profiling uses.
func (p *Profile) Record(opName string, width int, seconds float64) error {
	if width < 1 {
		return fmt.Errorf("parallelism: profile width must be >= 1, got %d", width)
	}
	if seconds <= 0 {
		return fmt.Errorf("parallelism: profile time must be positive, got %g", seconds)
	}
	if p.overrides[opName] == nil {
		p.overrides[opName] = map[int]float64{}
	}
	p.overrides[opName][width] = seconds
	return nil
}

// OpTime returns the profiled time of op at the given intra-op width:
// a recorded measurement if present (with interpolation between recorded
// widths), otherwise the machine model's roofline estimate.
func (p *Profile) OpTime(op Op, width int) float64 {
	if width < 1 {
		width = 1
	}
	if m := p.overrides[op.Name]; len(m) > 0 {
		if t, ok := m[width]; ok {
			return t
		}
		return interpolate(m, width)
	}
	return p.machine.OpTime(op, width)
}

// interpolate linearly interpolates (or clamps) a sparse width->time table.
func interpolate(m map[int]float64, width int) float64 {
	widths := make([]int, 0, len(m))
	for w := range m {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	if width <= widths[0] {
		return m[widths[0]]
	}
	if width >= widths[len(widths)-1] {
		return m[widths[len(widths)-1]]
	}
	for i := 1; i < len(widths); i++ {
		if width <= widths[i] {
			lo, hi := widths[i-1], widths[i]
			f := float64(width-lo) / float64(hi-lo)
			return m[lo]*(1-f) + m[hi]*f
		}
	}
	return m[widths[len(widths)-1]]
}

// ComputeTaskTime estimates the compute task's makespan when the operator
// graph runs with `interOp` concurrent operators, each `intraOp` threads
// wide, including the machine's contention factor. This is Algorithm 3's
// inner evaluation.
func (p *Profile) ComputeTaskTime(og *OpGraph, interOp, intraOp int) (float64, error) {
	if interOp < 1 || intraOp < 1 {
		return 0, fmt.Errorf("parallelism: parallelism degrees must be >= 1, got inter=%d intra=%d", interOp, intraOp)
	}
	og.ApplyProfile(p, intraOp)
	makespan, err := og.DAG.ListScheduleMakespan(interOp)
	if err != nil {
		return 0, err
	}
	// Aggregate-bandwidth floor: no schedule can stream the graph's bytes
	// faster than the machine's DRAM system allows.
	var bytes float64
	for _, op := range og.Ops {
		bytes += op.Bytes
	}
	if floor := bytes / p.machine.TotalBW(); makespan < floor {
		makespan = floor
	}
	// Contention depends on the *active* concurrency (the scheduler can
	// never co-run more operators than the graph exposes) plus the surplus
	// pool threads that spin (§4.1's decline past the optimum).
	active := interOp
	if mc := og.MaxConcurrency(); active > mc {
		active = mc
	}
	f := p.machine.ContentionFactor(interOp, active, intraOp)
	return makespan * f, nil
}
