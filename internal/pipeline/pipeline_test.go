package pipeline

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
)

func TestSimulateValidation(t *testing.T) {
	plat := hw.MultiGPUV100()
	if _, err := Simulate(plat, model.OPT13B, LMOffloadConfig(0)); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := Simulate(plat, model.OPT13B, LMOffloadConfig(5)); err == nil {
		t.Error("five GPUs accepted on a four-GPU platform")
	}
	bad := LMOffloadConfig(2)
	bad.InFlight = 0
	if _, err := Simulate(plat, model.OPT13B, bad); err == nil {
		t.Error("zero in-flight accepted")
	}
}

func TestFigure9LMOffloadBeatsFlexGen(t *testing.T) {
	plat := hw.MultiGPUV100()
	for _, mod := range []model.Config{model.OPT13B, model.LLaMA13B} {
		for gpus := 1; gpus <= 4; gpus++ {
			lm, err := Simulate(plat, mod, LMOffloadConfig(gpus))
			if err != nil {
				t.Fatalf("%s/%d: %v", mod.Name, gpus, err)
			}
			fg, err := Simulate(plat, mod, FlexGenConfig(gpus))
			if err != nil {
				t.Fatalf("%s/%d: %v", mod.Name, gpus, err)
			}
			if lm.Throughput <= fg.Throughput {
				t.Errorf("%s %d GPUs: LM-Offload (%.1f) does not beat FlexGen (%.1f)",
					mod.Name, gpus, lm.Throughput, fg.Throughput)
			}
		}
	}
}

func TestFigure9GapGrowsWithGPUs(t *testing.T) {
	// §5.5: the absolute throughput gap between LM-Offload and FlexGen
	// grows with the GPU count (the paper reports up to 13.9x growth from
	// 1 to 4 GPUs).
	plat := hw.MultiGPUV100()
	lm, err := WeakScaling(plat, model.OPT13B, LMOffloadConfig, 4)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := WeakScaling(plat, model.OPT13B, FlexGenConfig, 4)
	if err != nil {
		t.Fatal(err)
	}
	gap1 := lm[0].Throughput - fg[0].Throughput
	gap4 := lm[3].Throughput - fg[3].Throughput
	if gap1 <= 0 || gap4 <= 0 {
		t.Fatalf("non-positive gaps: %g, %g", gap1, gap4)
	}
	growth := gap4 / gap1
	if growth < 2 {
		t.Errorf("gap growth 1->4 GPUs = %.1fx, want >= 2x (paper: up to 13.9x)", growth)
	}
}

func TestWeakScalingLMOffloadScales(t *testing.T) {
	// Weak scaling with doubled batches: LM-Offload's throughput should
	// increase with GPU count.
	plat := hw.MultiGPUV100()
	res, err := WeakScaling(plat, model.LLaMA13B, LMOffloadConfig, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Throughput <= res[i-1].Throughput {
			t.Errorf("LM-Offload throughput fell from %.1f (%d GPUs) to %.1f (%d GPUs)",
				res[i-1].Throughput, res[i-1].GPUs, res[i].Throughput, res[i].GPUs)
		}
	}
	// Scaling 1 -> 4 GPUs with 4x the batch should yield a clear speedup.
	if s := res[3].Throughput / res[0].Throughput; s < 1.5 {
		t.Errorf("weak-scaling speedup 1->4 GPUs = %.2fx, want >= 1.5x", s)
	}
}

func TestBubbleFractionGrowsWithStagesForFlexGen(t *testing.T) {
	plat := hw.MultiGPUV100()
	fg1, err := Simulate(plat, model.OPT13B, FlexGenConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	fg4, err := Simulate(plat, model.OPT13B, FlexGenConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if fg4.BubbleFraction <= fg1.BubbleFraction {
		t.Errorf("FlexGen bubble did not grow with stages: %.2f -> %.2f", fg1.BubbleFraction, fg4.BubbleFraction)
	}
	lm4, err := Simulate(plat, model.OPT13B, LMOffloadConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if lm4.BubbleFraction >= fg4.BubbleFraction {
		t.Errorf("LM-Offload's deeper pipeline should bubble less: %.2f >= %.2f", lm4.BubbleFraction, fg4.BubbleFraction)
	}
}

func TestWeakScalingValidation(t *testing.T) {
	plat := hw.MultiGPUV100()
	if _, err := WeakScaling(plat, model.OPT13B, LMOffloadConfig, 0); err == nil {
		t.Error("zero maxGPUs accepted")
	}
	if _, err := WeakScaling(plat, model.OPT13B, LMOffloadConfig, 9); err == nil {
		t.Error("maxGPUs beyond platform accepted")
	}
}
