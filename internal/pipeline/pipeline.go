// Package pipeline models multi-GPU inference with pipeline parallelism for
// the weak-scaling study of §5.5: the transformer's layers are split into
// contiguous stages, one per GPU, and zig-zag batches flow through the
// stages as micro-batches. LM-Offload keeps many micro-batches in flight and
// overlaps the inter-stage activation transfers; FlexGen's per-token
// synchronization keeps its pipeline mostly drained, which is why the gap
// grows with the GPU count.
package pipeline

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Config selects the pipeline run.
type Config struct {
	// GPUs is the stage count (1–len(platform GPUs)).
	GPUs int
	// PromptLen and GenLen define the workload (§5.5: 256 and 64).
	PromptLen, GenLen int
	// BaseBatch is the per-GPU batch at one GPU; weak scaling multiplies it
	// by the GPU count.
	BaseBatch int
	// InFlight is the number of micro-batches the runtime keeps in the
	// pipeline. LM-Offload sustains its full zig-zag block; FlexGen's
	// per-token layer synchronization limits it to ~2.
	InFlight int
	// Exec is the runtime's execution profile.
	Exec perfmodel.ExecProfile
	// Opts drives the per-stage policy search.
	Opts policy.Options
}

// Result is one weak-scaling measurement.
type Result struct {
	GPUs int
	// Throughput is tokens/s across the whole pipeline.
	Throughput float64
	// StageTime is the bottleneck stage's per-token time.
	StageTime float64
	// BubbleFraction is the share of time lost to pipeline fill/drain and
	// synchronization.
	BubbleFraction float64
	// Strategy is the per-stage offloading policy chosen.
	Strategy perfmodel.Strategy
}

// FlexGenConfig returns the §5.5 FlexGen setup for the given GPU count.
func FlexGenConfig(gpus int) Config {
	opts := policy.DefaultOptions()
	opts.QuantAware = false
	opts.AllowGPUAttention = false
	opts.Bits = nil
	return Config{
		GPUs: gpus, PromptLen: 256, GenLen: 64, BaseBatch: 32,
		// FlexGen's per-layer synchronize() drains the pipeline every step,
		// so effectively one micro-batch is in flight.
		InFlight: 1, Exec: perfmodel.FlexGenProfile(), Opts: opts,
	}
}

// LMOffloadConfig returns the §5.5 LM-Offload setup.
func LMOffloadConfig(gpus int) Config {
	return Config{
		GPUs: gpus, PromptLen: 256, GenLen: 64, BaseBatch: 32,
		InFlight: 8, Exec: perfmodel.LMOffloadProfile(), Opts: policy.DefaultOptions(),
	}
}

// Simulate runs the weak-scaling pipeline on the multi-GPU platform.
func Simulate(plat *hw.Platform, mod model.Config, cfg Config) (Result, error) {
	if cfg.GPUs < 1 || cfg.GPUs > plat.NumGPUs() {
		return Result{}, fmt.Errorf("pipeline: %d GPUs outside [1, %d]", cfg.GPUs, plat.NumGPUs())
	}
	if cfg.InFlight < 1 {
		return Result{}, fmt.Errorf("pipeline: in-flight micro-batches must be >= 1, got %d", cfg.InFlight)
	}
	if mod.Layers%cfg.GPUs != 0 && mod.Layers < cfg.GPUs {
		return Result{}, fmt.Errorf("pipeline: cannot split %d layers over %d GPUs", mod.Layers, cfg.GPUs)
	}

	// Weak scaling: the batch grows with the GPU count.
	work := trace.Workload{
		PromptLen:  cfg.PromptLen,
		GenLen:     cfg.GenLen,
		GPUBatch:   cfg.BaseBatch * cfg.GPUs,
		NumBatches: maxInt(cfg.InFlight, 1),
	}
	if err := work.Validate(); err != nil {
		return Result{}, err
	}

	// Each stage owns layers/GPUs layers and one GPU; the host memory and
	// disk are shared, so each stage sees a platform slice with its share.
	stagePlat := plat.WithGPUCount(1)
	stagePlat.CPU.MemBytes = plat.CPU.MemBytes / int64(cfg.GPUs)
	stageLayers := (mod.Layers + cfg.GPUs - 1) / cfg.GPUs
	stageMod := mod
	stageMod.Name = fmt.Sprintf("%s/stage", mod.Name)
	stageMod.Layers = stageLayers

	res, err := policy.Plan(stagePlat, stageMod, work, cfg.Exec, cfg.Opts)
	if err != nil {
		return Result{}, fmt.Errorf("pipeline: stage policy: %w", err)
	}
	est := res.Estimator

	// Per-token, per-stage time: the stage's layers plus the inter-stage
	// activation hop. LM-Offload overlaps the hop with compute (it only
	// shows when it exceeds the stage work); FlexGen serializes it.
	stageCompute := est.TGen() * float64(stageLayers)
	hop := 0.0
	if cfg.GPUs > 1 {
		actBytes := float64(mod.ActivationBytes(work))
		hop = actBytes / (plat.Link.BandwidthPerDir * cfg.Exec.LinkEff)
	}
	var stageTime float64
	if cfg.Exec.OverlapBeta <= 0.9 {
		stageTime = stageCompute
		if hop > stageTime {
			stageTime = hop
		}
	} else {
		stageTime = stageCompute + hop
	}

	// Pipeline efficiency: with M micro-batches in flight over S stages, the
	// steady-state utilization is M/(M+S-1); per-token synchronization keeps
	// FlexGen near the fill/drain regime every step.
	m := float64(cfg.InFlight)
	sStages := float64(cfg.GPUs)
	efficiency := m / (m + sStages - 1)
	bubble := 1 - efficiency

	perTokenTime := stageTime / efficiency
	n := float64(work.GenLen)
	l := float64(stageLayers)
	prefill := est.TPrefill() * l * sStages
	total := prefill + perTokenTime*(n-1)
	return Result{
		GPUs:           cfg.GPUs,
		Throughput:     float64(work.TotalTokens()) / total,
		StageTime:      stageTime,
		BubbleFraction: bubble,
		Strategy:       res.Strategy,
	}, nil
}

// WeakScaling sweeps 1..maxGPUs and returns one Result per point.
func WeakScaling(plat *hw.Platform, mod model.Config, mk func(gpus int) Config, maxGPUs int) ([]Result, error) {
	if maxGPUs < 1 || maxGPUs > plat.NumGPUs() {
		return nil, fmt.Errorf("pipeline: maxGPUs %d outside [1, %d]", maxGPUs, plat.NumGPUs())
	}
	out := make([]Result, 0, maxGPUs)
	for g := 1; g <= maxGPUs; g++ {
		r, err := Simulate(plat, mod, mk(g))
		if err != nil {
			return nil, fmt.Errorf("pipeline: %d GPUs: %w", g, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
