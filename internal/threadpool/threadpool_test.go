package threadpool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) succeeded", n)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestParallelForCoversAllIndicesOnce(t *testing.T) {
	p := MustNew(4)
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, width := range []int{1, 2, 4, 9} {
			counts := make([]int32, n)
			p.ParallelFor(n, width, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d width=%d: index %d visited %d times", n, width, i, c)
				}
			}
		}
	}
}

func TestParallelRangeCoversAllIndicesOnce(t *testing.T) {
	p := MustNew(3)
	n := 257
	counts := make([]int32, n)
	p.ParallelRange(n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestParallelForWidthNeverExceedsPool(t *testing.T) {
	p := MustNew(2)
	var inFlight, peak int32
	var mu sync.Mutex
	p.ParallelFor(64, 64, func(i int) {
		cur := atomic.AddInt32(&inFlight, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		atomic.AddInt32(&inFlight, -1)
	})
	if peak > 2 {
		t.Errorf("observed %d concurrent workers with pool size 2", peak)
	}
}

func TestInterOpBoundsConcurrency(t *testing.T) {
	p := MustNew(8)
	s, err := NewInterOp(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	var inFlight, peak int32
	var mu sync.Mutex
	gate := make(chan struct{})
	for i := 0; i < 6; i++ {
		s.Submit(Op{Name: "op", Width: 1, Run: func(_ *Pool, _ int) {
			cur := atomic.AddInt32(&inFlight, 1)
			mu.Lock()
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			<-gate
			atomic.AddInt32(&inFlight, -1)
		}})
		if i == 1 {
			// First two submitted; the third Submit below must block until a
			// slot frees, so release the gate in the background.
			go func() {
				for j := 0; j < 6; j++ {
					gate <- struct{}{}
				}
			}()
		}
	}
	s.Wait()
	if peak > 2 {
		t.Errorf("inter-op peak concurrency %d, want <= 2", peak)
	}
}

func TestNewInterOpRejectsNonPositive(t *testing.T) {
	p := MustNew(1)
	if _, err := NewInterOp(p, 0); err == nil {
		t.Error("NewInterOp(p, 0) succeeded")
	}
}

func TestRunGraphRespectsDependencies(t *testing.T) {
	p := MustNew(4)
	s, err := NewInterOp(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	mk := func(id int) Op {
		return Op{Name: "op", Width: 1, Run: func(_ *Pool, _ int) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}}
	}
	// Diamond: 0 -> {1, 2} -> 3.
	ops := []Op{mk(0), mk(1), mk(2), mk(3)}
	deps := [][]int{nil, {0}, {0}, {1, 2}}
	if err := s.RunGraph(ops, deps); err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	if len(order) != 4 {
		t.Fatalf("ran %d ops, want 4", len(order))
	}
	if pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] || pos[2] > pos[3] {
		t.Errorf("execution order %v violates dependencies", order)
	}
}

func TestRunGraphDetectsCycle(t *testing.T) {
	p := MustNew(2)
	s, _ := NewInterOp(p, 2)
	noop := Op{Name: "n", Width: 1, Run: func(_ *Pool, _ int) {}}
	ops := []Op{noop, noop}
	deps := [][]int{{1}, {0}}
	if err := s.RunGraph(ops, deps); err == nil {
		t.Error("RunGraph accepted a cyclic dependency graph")
	}
}

func TestRunGraphRejectsBadDeps(t *testing.T) {
	p := MustNew(2)
	s, _ := NewInterOp(p, 2)
	noop := Op{Name: "n", Width: 1, Run: func(_ *Pool, _ int) {}}
	if err := s.RunGraph([]Op{noop}, [][]int{{5}}); err == nil {
		t.Error("RunGraph accepted out-of-range dependency")
	}
}

func TestPropertyParallelForSum(t *testing.T) {
	p := MustNew(6)
	f := func(nRaw uint16, widthRaw uint8) bool {
		n := int(nRaw % 2000)
		width := 1 + int(widthRaw%10)
		var sum int64
		p.ParallelFor(n, width, func(i int) {
			atomic.AddInt64(&sum, int64(i))
		})
		return sum == int64(n)*int64(n-1)/2 || n == 0 && sum == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestParallelForRecoversWorkerPanic: a panic in a worker must not kill the
// process; it is rethrown on the submitting goroutine as *PanicError and is
// recoverable there.
func TestParallelForRecoversWorkerPanic(t *testing.T) {
	p := MustNew(4)
	var recovered *PanicError
	func() {
		defer func() {
			if r := recover(); r != nil {
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("recovered %T, want *PanicError", r)
				}
				recovered = pe
			}
		}()
		p.ParallelFor(8, 4, func(i int) {
			if i == 3 {
				panic("kaboom")
			}
		})
	}()
	if recovered == nil {
		t.Fatal("worker panic not rethrown at the caller")
	}
	if recovered.Value != "kaboom" {
		t.Errorf("panic value = %v, want kaboom", recovered.Value)
	}
	if len(recovered.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	// The pool must remain usable: all slots were released.
	sum := 0
	var mu sync.Mutex
	p.ParallelFor(8, 4, func(i int) { mu.Lock(); sum += i; mu.Unlock() })
	if sum != 28 {
		t.Errorf("pool broken after panic: sum = %d, want 28", sum)
	}
}

// TestParallelRangeRecoversWorkerPanic: same contract for the range variant.
func TestParallelRangeRecoversWorkerPanic(t *testing.T) {
	p := MustNew(2)
	caught := false
	func() {
		defer func() { caught = recover() != nil }()
		p.ParallelRange(4, 2, func(lo, hi int) { panic(lo) })
	}()
	if !caught {
		t.Fatal("range worker panic not rethrown")
	}
}

// TestInterOpWaitReturnsPanicError: Submit recovers op panics and Wait
// surfaces the first as an error; the error unwraps to the panicked error
// value.
func TestInterOpWaitReturnsPanicError(t *testing.T) {
	p := MustNew(2)
	s, err := NewInterOp(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	s.Submit(Op{Name: "ok", Width: 1, Run: func(*Pool, int) {}})
	s.Submit(Op{Name: "bad", Width: 1, Run: func(*Pool, int) { panic(boom) }})
	werr := s.Wait()
	if werr == nil {
		t.Fatal("Wait returned nil after op panic")
	}
	var pe *PanicError
	if !errors.As(werr, &pe) || pe.Op != "bad" {
		t.Fatalf("Wait error = %v, want *PanicError from op bad", werr)
	}
	if !errors.Is(werr, boom) {
		t.Error("PanicError does not unwrap to the panicked error value")
	}
}

// TestRunGraphSurvivesOpPanic: a panicking op still completes the graph (its
// dependents run) and the panic comes back as the returned error, not a
// deadlock or crash.
func TestRunGraphSurvivesOpPanic(t *testing.T) {
	p := MustNew(2)
	s, err := NewInterOp(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	ran := make([]bool, 3)
	var mu sync.Mutex
	mark := func(i int) { mu.Lock(); ran[i] = true; mu.Unlock() }
	ops := []Op{
		{Name: "a", Width: 1, Run: func(*Pool, int) { mark(0); panic("a died") }},
		{Name: "b", Width: 1, Run: func(*Pool, int) { mark(1) }},
		{Name: "c", Width: 1, Run: func(*Pool, int) { mark(2) }},
	}
	deps := [][]int{nil, {0}, {1}}
	gerr := s.RunGraph(ops, deps)
	if gerr == nil {
		t.Fatal("RunGraph returned nil after op panic")
	}
	var pe *PanicError
	if !errors.As(gerr, &pe) || pe.Op != "a" {
		t.Fatalf("RunGraph error = %v, want *PanicError from op a", gerr)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("op %d never ran after upstream panic", i)
		}
	}
}
