// Package threadpool provides the execution substrate that LM-Offload's
// parallelism control drives: a fixed-size worker pool with data-parallel
// ParallelFor (intra-op parallelism) and an inter-op scheduler that bounds how
// many operations co-run and how many workers each one receives.
//
// The pool mirrors the PyTorch model described in §4 of the paper:
// torch.set_num_threads controls intra-op width, and
// torch.set_num_interop_threads controls how many operators execute
// concurrently. Here both are explicit per call so the tuner can explore the
// space without global state.
package threadpool

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError is a panic recovered from a pool worker. Without recovery a
// panic in a worker goroutine kills the whole process; the pool instead
// captures the first one and rethrows it on the *submitting* goroutine
// (ParallelFor/ParallelRange) or returns it as an error (inter-op
// scheduler), so the submitter can recover and degrade instead of crashing.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Op names the operation, when known.
	Op string
	// Stack is the worker's stack at the panic site.
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("threadpool: panic in op %q: %v", e.Op, e.Value)
	}
	return fmt.Sprintf("threadpool: worker panic: %v", e.Value)
}

// Unwrap exposes a panic value that was itself an error (e.g. an injected
// fault), so errors.Is/As see through the recovery.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// panicCatcher records the first panic recovered across a set of workers.
type panicCatcher struct {
	mu sync.Mutex
	pe *PanicError
}

// capture must be deferred inside the worker goroutine.
func (c *panicCatcher) capture(op string) {
	if r := recover(); r != nil {
		c.mu.Lock()
		if c.pe == nil {
			c.pe = &PanicError{Value: r, Op: op, Stack: debug.Stack()}
		}
		c.mu.Unlock()
	}
}

// rethrow re-panics the captured panic, if any, on the caller's goroutine.
func (c *panicCatcher) rethrow() {
	if c.pe != nil {
		panic(c.pe)
	}
}

// err returns the captured panic as an error, or nil.
func (c *panicCatcher) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pe == nil {
		return nil
	}
	return c.pe
}

// Pool is a bounded set of reusable workers. The zero value is not usable;
// construct with New.
type Pool struct {
	size int
	sem  chan struct{}
}

// New creates a pool with the given number of workers. Size must be positive.
func New(size int) (*Pool, error) {
	if size <= 0 {
		return nil, fmt.Errorf("threadpool: pool size must be positive, got %d", size)
	}
	return &Pool{size: size, sem: make(chan struct{}, size)}, nil
}

// MustNew is New for static configurations that cannot fail.
func MustNew(size int) *Pool {
	p, err := New(size)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the worker count.
func (p *Pool) Size() int { return p.size }

// acquire blocks until a worker slot is free.
func (p *Pool) acquire() { p.sem <- struct{}{} }

// release frees a worker slot.
func (p *Pool) release() { <-p.sem }

// ParallelFor executes fn(i) for i in [0, n) using at most `width` workers
// from the pool, partitioning the index space into contiguous chunks (one per
// worker) to preserve cache locality — the same reason the paper bundles
// small operators. width is clamped to [1, pool size] and to n.
//
// A panic in fn is recovered from the worker goroutine and rethrown as a
// *PanicError on the calling goroutine after all workers finish, so the
// submitter can recover it (an unrecovered goroutine panic would abort the
// process).
func (p *Pool) ParallelFor(n, width int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if width < 1 {
		width = 1
	}
	if width > p.size {
		width = p.size
	}
	if width > n {
		width = n
	}
	if width == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var catcher panicCatcher
	chunk := (n + width - 1) / width
	for w := 0; w < width; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.acquire()
		go func(lo, hi int) {
			defer wg.Done()
			defer p.release()
			defer catcher.capture("")
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	catcher.rethrow()
}

// ParallelRange executes fn(lo, hi) over contiguous sub-ranges of [0, n),
// letting the callee iterate its own chunk (cheaper than per-index closures
// for tight numeric kernels). Worker panics are rethrown on the calling
// goroutine as *PanicError, as in ParallelFor.
func (p *Pool) ParallelRange(n, width int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if width < 1 {
		width = 1
	}
	if width > p.size {
		width = p.size
	}
	if width > n {
		width = n
	}
	if width == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	var catcher panicCatcher
	chunk := (n + width - 1) / width
	for w := 0; w < width; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.acquire()
		go func(lo, hi int) {
			defer wg.Done()
			defer p.release()
			defer catcher.capture("")
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	catcher.rethrow()
}

// Op is a unit of work submitted to the inter-op scheduler. Width is the
// intra-op parallelism the operation should run with; Run receives the pool
// and that width.
type Op struct {
	Name  string
	Width int
	Run   func(p *Pool, width int)
}

// InterOpScheduler bounds how many Ops execute concurrently, independent of
// how many workers each Op consumes, mirroring inter-op parallelism.
type InterOpScheduler struct {
	pool    *Pool
	slots   chan struct{}
	wg      sync.WaitGroup
	catcher panicCatcher
}

// NewInterOp creates a scheduler over pool that co-runs at most maxConcurrent
// operations.
func NewInterOp(pool *Pool, maxConcurrent int) (*InterOpScheduler, error) {
	if maxConcurrent <= 0 {
		return nil, fmt.Errorf("threadpool: inter-op concurrency must be positive, got %d", maxConcurrent)
	}
	return &InterOpScheduler{pool: pool, slots: make(chan struct{}, maxConcurrent)}, nil
}

// Submit enqueues op for asynchronous execution, blocking only while all
// inter-op slots are busy. A panic inside the op is recovered and surfaced
// as an error from Wait instead of killing the process.
func (s *InterOpScheduler) Submit(op Op) {
	s.slots <- struct{}{}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() { <-s.slots }()
		defer s.catcher.capture(op.Name)
		op.Run(s.pool, op.Width)
	}()
}

// Wait blocks until every submitted operation has finished and returns the
// first recovered worker panic as a *PanicError (nil when every op
// completed normally).
func (s *InterOpScheduler) Wait() error {
	s.wg.Wait()
	return s.catcher.err()
}

// RunGraph executes ops respecting a dependency relation: deps[i] lists the
// indices that must finish before ops[i] starts. The scheduler's inter-op
// bound still applies. It returns an error on out-of-range dependencies,
// cycles (detected as a stall), or a recovered op panic.
func (s *InterOpScheduler) RunGraph(ops []Op, deps [][]int) error {
	n := len(ops)
	remaining := make([]int, n)
	dependents := make([][]int, n)
	for i, ds := range deps {
		if i >= n {
			return fmt.Errorf("threadpool: deps has %d entries for %d ops", len(deps), n)
		}
		for _, d := range ds {
			if d < 0 || d >= n {
				return fmt.Errorf("threadpool: op %d depends on out-of-range op %d", i, d)
			}
			remaining[i]++
			dependents[d] = append(dependents[d], i)
		}
	}
	done := make(chan int, n)
	launched := 0
	launch := func(i int) {
		launched++
		op := ops[i]
		s.slots <- struct{}{}
		s.wg.Add(1)
		go func() {
			// The completion send is deferred so a panicking op still
			// reports in and the drain loop below cannot deadlock.
			defer func() { done <- i }()
			defer s.wg.Done()
			defer func() { <-s.slots }()
			defer s.catcher.capture(op.Name)
			op.Run(s.pool, op.Width)
		}()
	}
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			launch(i)
		}
	}
	finished := 0
	for finished < n {
		if launched == finished {
			return fmt.Errorf("threadpool: dependency cycle, %d/%d ops finished", finished, n)
		}
		i := <-done
		finished++
		for _, dep := range dependents[i] {
			remaining[dep]--
			if remaining[dep] == 0 {
				launch(dep)
			}
		}
	}
	return s.catcher.err()
}
