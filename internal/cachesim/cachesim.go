// Package cachesim models the CPU last-level cache as a set-associative
// LRU array and replays synthetic access streams shaped like the offloaded
// attention computation. It demonstrates the mechanism behind Table 5:
// PyTorch's default threading interleaves many concurrent access streams
// finely, thrashing the shared LLC, while LM-Offload's parallelism control
// runs fewer, coarser streams with better locality.
package cachesim

import "fmt"

// Cache is a set-associative write-allocate cache with LRU replacement.
type Cache struct {
	sets      int
	ways      int
	lineBytes int64

	tags [][]uint64
	age  [][]uint64
	used [][]bool

	clock uint64

	loads, stores           int64
	loadMisses, storeMisses int64
}

// New builds a cache of the given total size, associativity, and line size.
// Size must be a positive multiple of ways*lineBytes; the resulting set
// count need not be a power of two (sets are modulo-indexed).
func New(sizeBytes int64, ways int, lineBytes int64) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cachesim: non-positive geometry (%d, %d, %d)", sizeBytes, ways, lineBytes)
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d not a power of two", lineBytes)
	}
	setBytes := int64(ways) * lineBytes
	if sizeBytes%setBytes != 0 {
		return nil, fmt.Errorf("cachesim: size %d not divisible by ways*line %d", sizeBytes, setBytes)
	}
	// Non-power-of-two set counts are allowed: Access indexes sets with a
	// modulo, so sliced LLCs (e.g. 33 MB / 12-way / 64 B lines = 45056 sets)
	// model exactly. Real hardware hashes slices similarly; a power-of-two
	// restriction would exclude most server parts.
	sets := int(sizeBytes / setBytes)
	c := &Cache{sets: sets, ways: ways, lineBytes: lineBytes}
	c.tags = make([][]uint64, sets)
	c.age = make([][]uint64, sets)
	c.used = make([][]bool, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.age[i] = make([]uint64, ways)
		c.used[i] = make([]bool, ways)
	}
	return c, nil
}

// Access touches addr; isWrite selects the store counters. It returns true
// on a hit.
func (c *Cache) Access(addr uint64, isWrite bool) bool {
	c.clock++
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)

	if isWrite {
		c.stores++
	} else {
		c.loads++
	}

	ways := c.tags[set]
	for w := 0; w < c.ways; w++ {
		if c.used[set][w] && ways[w] == tag {
			c.age[set][w] = c.clock
			return true
		}
	}
	// Miss: fill an empty way if one exists, otherwise evict the LRU.
	victim := -1
	for w := 0; w < c.ways; w++ {
		if !c.used[set][w] {
			victim = w
			break
		}
	}
	if victim == -1 {
		victim = 0
		for w := 1; w < c.ways; w++ {
			if c.age[set][w] < c.age[set][victim] {
				victim = w
			}
		}
	}
	c.used[set][victim] = true
	c.tags[set][victim] = tag
	c.age[set][victim] = c.clock
	if isWrite {
		c.storeMisses++
	} else {
		c.loadMisses++
	}
	return false
}

// Stats reports the counters.
type Stats struct {
	Loads, Stores           int64
	LoadMisses, StoreMisses int64
}

// Stats returns a snapshot.
func (c *Cache) Stats() Stats {
	return Stats{Loads: c.loads, Stores: c.stores, LoadMisses: c.loadMisses, StoreMisses: c.storeMisses}
}

// LoadMissRate returns load misses per load.
func (s Stats) LoadMissRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.LoadMisses) / float64(s.Loads)
}

// StoreMissRate returns store misses per store.
func (s Stats) StoreMissRate() float64 {
	if s.Stores == 0 {
		return 0
	}
	return float64(s.StoreMisses) / float64(s.Stores)
}

// Reset clears the counters but keeps the cache contents.
func (c *Cache) Reset() {
	c.loads, c.stores, c.loadMisses, c.storeMisses = 0, 0, 0, 0
}

// StreamConfig describes a threading configuration's memory behaviour for
// ReplayAttention: `Streams` concurrent operator streams, each making
// interleaved passes over its own region of the working set, switching
// between streams every `ChunkBytes` (finer interleaving = more thrashing).
type StreamConfig struct {
	// Streams is the number of concurrently active operator access streams
	// (roughly active operators x threads per operator).
	Streams int
	// ChunkBytes is how much one stream touches before the scheduler
	// switches to another stream.
	ChunkBytes int64
	// ReusePasses is how many times each region is re-read (attention reads
	// K then V, plus softmax re-reads scores).
	ReusePasses int
	// StoreRatio is stores per load (the unfused path materializes
	// intermediates, so the attention kernel writes more than it reads).
	StoreRatio float64
}

// ReplayAttention streams a working set of totalBytes through the cache
// under cfg and returns the stats. The address space is partitioned across
// streams into set-aligned regions (as large contiguous tensor allocations
// are in practice), and the replay interleaves the streams chunk by chunk:
//
//	for each chunk position:
//	  for each reuse pass:            // operators re-read their tiles
//	    for each stream: touch chunk  // co-running operators interleave
//
// With few streams the re-read passes hit (each set holds every stream's
// line); once the stream count exceeds the associativity, the LRU evicts a
// stream's lines before it returns to them and every pass misses — the
// §4.1 cache-thrashing effect Table 5 quantifies.
func ReplayAttention(c *Cache, totalBytes int64, cfg StreamConfig) (Stats, error) {
	if totalBytes <= 0 {
		return Stats{}, fmt.Errorf("cachesim: non-positive working set %d", totalBytes)
	}
	if cfg.Streams <= 0 || cfg.ChunkBytes <= 0 || cfg.ReusePasses <= 0 {
		return Stats{}, fmt.Errorf("cachesim: invalid stream config %+v", cfg)
	}
	if cfg.StoreRatio < 0 {
		return Stats{}, fmt.Errorf("cachesim: negative store ratio")
	}
	c.Reset()
	line := c.lineBytes
	setStride := int64(c.sets) * line
	region := totalBytes / int64(cfg.Streams)
	// Align regions to the set stride so concurrent streams collide in the
	// same sets, as large page-aligned tensor buffers do.
	region = (region / setStride) * setStride
	if region < setStride {
		region = setStride
	}
	chunkLines := cfg.ChunkBytes / line
	if chunkLines < 1 {
		chunkLines = 1
	}
	regionLines := region / line
	storeAcc := 0.0
	// Each stream writes consecutive distinct lines of its own output
	// region: the unfused path materializes intermediates, producing more
	// distinct written data than read data.
	storeCursor := make([]int64, cfg.Streams)

	for offset := int64(0); offset < regionLines; offset += chunkLines {
		for pass := 0; pass < cfg.ReusePasses; pass++ {
			for s := 0; s < cfg.Streams; s++ {
				base := uint64(int64(s) * region)
				// Stores land in a disjoint set-aligned output region past
				// every input region.
				storeBase := uint64(int64(cfg.Streams+s) * region * 4)
				for l := int64(0); l < chunkLines && offset+l < regionLines; l++ {
					addr := base + uint64((offset+l)*line)
					c.Access(addr, false)
					storeAcc += cfg.StoreRatio
					for storeAcc >= 1 {
						c.Access(storeBase+uint64(storeCursor[s]*line), true)
						storeCursor[s]++
						storeAcc--
					}
				}
			}
		}
	}
	return c.Stats(), nil
}

// DefaultThreadingStreams returns the per-socket stream shape of PyTorch's
// default configuration on the evaluation machine: ~24 concurrent operator
// access streams per socket (12 active operators x 56 threads spread over
// two sockets collapses to roughly this many distinct streams) with fine
// interleaving. Loads plus their store streams far exceed the LLC's
// associativity, so reuse passes thrash.
func DefaultThreadingStreams() StreamConfig {
	return StreamConfig{Streams: 24, ChunkBytes: 4 << 10, ReusePasses: 2, StoreRatio: 1.9}
}

// ControlledThreadingStreams returns LM-Offload's tuned per-socket shape:
// 6 operator streams per socket (12 operators over 2 sockets) with coarse
// chunks; load and store streams together just fit a 12-way LLC, so the
// reuse passes hit.
func ControlledThreadingStreams() StreamConfig {
	return StreamConfig{Streams: 6, ChunkBytes: 256 << 10, ReusePasses: 2, StoreRatio: 1.9}
}
