package cachesim

import (
	"testing"
	"testing/quick"
)

// xeonLLC approximates one socket's last-level cache (42 MB, 12-way) with
// the nearest power-of-two set count: 48 MiB, 12-way, 64 B lines.
func xeonLLC(t *testing.T) *Cache {
	t.Helper()
	c, err := New(48<<20, 12, 64)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		size  int64
		ways  int
		line  int64
		valid bool
	}{
		{48 << 20, 12, 64, true},
		{1 << 20, 16, 64, true},
		{0, 12, 64, false},
		{48 << 20, 0, 64, false},
		{48 << 20, 12, 0, false},
		{48 << 20, 12, 63, false},   // line not power of two
		{100, 12, 64, false},        // size not divisible
		{3 * 64 * 12, 12, 64, true}, // sets=3: modulo-indexed
		{42 << 20, 12, 64, true},    // 42 MB/12-way: non-power-of-two sets
		{33 << 20, 12, 64, true},    // 33 MB/12-way sliced LLC: 45056 sets
	}
	for _, tc := range cases {
		_, err := New(tc.size, tc.ways, tc.line)
		if (err == nil) != tc.valid {
			t.Errorf("New(%d, %d, %d) err=%v, want valid=%v", tc.size, tc.ways, tc.line, err, tc.valid)
		}
	}
}

// TestNonPowerOfTwoSets pins modulo set indexing on a non-power-of-two
// geometry: 2-way with 3 sets, so lines 0, 3, 6 share set 0 while lines 1
// and 2 land in their own sets.
func TestNonPowerOfTwoSets(t *testing.T) {
	c, err := New(3*2*64, 2, 64) // 3 sets, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	line := func(i int) uint64 { return uint64(i) * 64 }
	c.Access(line(0), false)
	c.Access(line(3), false)
	c.Access(line(0), false) // line 0 now MRU in set 0
	c.Access(line(6), false) // evicts line 3 (LRU of set 0)
	if !c.Access(line(0), false) {
		t.Error("line 0 evicted despite being MRU in its modulo-indexed set")
	}
	if c.Access(line(3), false) {
		t.Error("line 3 hit despite being the LRU victim")
	}
	// Other residues are independent sets: untouched lines are cold, and a
	// single access warms them without disturbing set 0.
	if c.Access(line(1), false) {
		t.Error("cold line in residue-1 set hit")
	}
	if !c.Access(line(1), false) {
		t.Error("warm line in residue-1 set missed")
	}
}

// TestRealisticSlicedLLC exercises the geometry the tile tuner uses by
// default: 33 MB / 12-way / 64 B lines = 45056 sets (2^12 x 11). Thirteen
// same-set lines exceed the associativity and evict the LRU.
func TestRealisticSlicedLLC(t *testing.T) {
	c, err := New(33<<20, 12, 64)
	if err != nil {
		t.Fatal(err)
	}
	setStride := uint64(45056 * 64)
	for i := 0; i < 13; i++ {
		c.Access(uint64(i)*setStride, false)
	}
	if c.Access(0, false) {
		t.Error("oldest line survived 13 fills of a 12-way set")
	}
	if st := c.Stats(); st.LoadMisses != 14 {
		t.Errorf("load misses = %d, want 14 (every access cold or evicted)", st.LoadMisses)
	}
}

func TestAccessHitAfterMiss(t *testing.T) {
	c, err := New(1<<14, 2, 64) // 16 KB, 2-way
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x1000, false) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000, false) {
		t.Error("warm access missed")
	}
	st := c.Stats()
	if st.Loads != 2 || st.LoadMisses != 1 {
		t.Errorf("stats = %+v, want 2 loads / 1 miss", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache: three lines in one set evict the least recently used.
	c, err := New(2*64*4, 2, 64) // 4 sets, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	setStride := uint64(4 * 64)
	a, b, d := uint64(0), setStride, 2*setStride // same set (set 0)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a now MRU
	c.Access(d, false) // evicts b
	if !c.Access(a, false) {
		t.Error("a was evicted despite being MRU")
	}
	if c.Access(b, false) {
		t.Error("b hit despite being the LRU victim")
	}
}

func TestWriteCountsSeparately(t *testing.T) {
	c := xeonLLC(t)
	c.Access(0, true)
	c.Access(0, true)
	st := c.Stats()
	if st.Stores != 2 || st.StoreMisses != 1 || st.Loads != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.StoreMissRate() != 0.5 {
		t.Errorf("store miss rate = %g, want 0.5", st.StoreMissRate())
	}
}

func TestResetClearsCountersKeepsContents(t *testing.T) {
	c := xeonLLC(t)
	c.Access(0x40, false)
	c.Reset()
	if st := c.Stats(); st.Loads != 0 || st.LoadMisses != 0 {
		t.Errorf("Reset left counters: %+v", st)
	}
	if !c.Access(0x40, false) {
		t.Error("Reset dropped cache contents")
	}
}

// TestTable5Mechanism: default threading's many fine streams must miss far
// more often than the controlled configuration on the same working set.
func TestTable5Mechanism(t *testing.T) {
	ws := int64(192 << 20) // attention working set slice per layer step

	def, err := ReplayAttention(xeonLLC(t), ws, DefaultThreadingStreams())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := ReplayAttention(xeonLLC(t), ws, ControlledThreadingStreams())
	if err != nil {
		t.Fatal(err)
	}

	// Loads: the controlled configuration's reuse passes hit; the default
	// configuration's thrash. Table 5 reports ~40% reductions.
	if def.LoadMissRate() <= ctl.LoadMissRate() {
		t.Errorf("default load miss rate %.3f not above controlled %.3f", def.LoadMissRate(), ctl.LoadMissRate())
	}
	red := 1 - ctl.LoadMissRate()/def.LoadMissRate()
	if red < 0.25 || red > 0.75 {
		t.Errorf("load miss-rate reduction = %.0f%%, want ~40%%", red*100)
	}
	// Store misses exceed load misses under the unfused path (Table 5: 19B
	// stores vs 10B loads) — intermediates are written as distinct lines.
	if def.StoreMisses <= def.LoadMisses {
		t.Errorf("store misses (%d) should exceed load misses (%d)", def.StoreMisses, def.LoadMisses)
	}
	// Total misses drop under parallelism control.
	if ctl.LoadMisses+ctl.StoreMisses >= def.LoadMisses+def.StoreMisses {
		t.Errorf("controlled total misses (%d) not below default (%d)",
			ctl.LoadMisses+ctl.StoreMisses, def.LoadMisses+def.StoreMisses)
	}
}

func TestReplayValidation(t *testing.T) {
	c := xeonLLC(t)
	if _, err := ReplayAttention(c, 0, DefaultThreadingStreams()); err == nil {
		t.Error("zero working set accepted")
	}
	bad := DefaultThreadingStreams()
	bad.Streams = 0
	if _, err := ReplayAttention(c, 1<<20, bad); err == nil {
		t.Error("zero streams accepted")
	}
	bad = DefaultThreadingStreams()
	bad.ReusePasses = 0
	if _, err := ReplayAttention(c, 1<<20, bad); err == nil {
		t.Error("zero passes accepted")
	}
	bad = DefaultThreadingStreams()
	bad.StoreRatio = -1
	if _, err := ReplayAttention(c, 1<<20, bad); err == nil {
		t.Error("negative store ratio accepted")
	}
}

// Property: misses never exceed accesses, and a second identical replay on a
// warm cache never misses more than the cold one.
func TestPropertyMissBounds(t *testing.T) {
	f := func(streamsRaw, passesRaw uint8) bool {
		streams := 1 + int(streamsRaw%30)
		passes := 1 + int(passesRaw%3)
		cfg := StreamConfig{Streams: streams, ChunkBytes: 8 << 10, ReusePasses: passes, StoreRatio: 0.5}
		c, err := New(1<<20, 8, 64)
		if err != nil {
			return false
		}
		st, err := ReplayAttention(c, 8<<20, cfg)
		if err != nil {
			return false
		}
		if st.LoadMisses > st.Loads || st.StoreMisses > st.Stores {
			return false
		}
		warm, err := ReplayAttention(c, 8<<20, cfg)
		if err != nil {
			return false
		}
		return warm.LoadMisses <= st.LoadMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
