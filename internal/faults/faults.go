// Package faults is the deterministic fault-injection layer shared by the
// functional engine and the discrete-event simulator. A single Injector holds
// per-site rules (fire probability, fire cap, stall duration) and a
// seed-derived random stream *per site*, so the fault sequence a component
// observes is reproducible regardless of how probes from different sites
// interleave — the property chaos tests need to replay a failure.
//
// The injection sites model the degraded conditions that dominate real
// offloading deployments (LLMServingSim and APEX both stress that
// serving-scale evaluation must cover them): weight-transfer stalls and
// transient failures on the CPU–GPU link, in-flight KV chunk corruption
// (caught by the stores' checksums), device memory-pressure spikes, and
// worker panics inside the compute pool.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Site names one injection point. The engine probes a site every time the
// corresponding operation runs; the simulator maps sites onto resources.
type Site string

// The built-in injection sites.
const (
	// WeightTransfer covers the per-layer weight stream (load_weight):
	// stalls and transient transfer failures.
	WeightTransfer Site = "weight-transfer"
	// KVTransfer covers KV chunk movement in both directions (load_cache /
	// store_cache): stalls and transient transfer failures.
	KVTransfer Site = "kv-transfer"
	// KVCorruption flips bits in a KV chunk in flight; the store's checksum
	// must detect it (the fetch is then retried from the intact host copy).
	KVCorruption Site = "kv-corruption"
	// MemPressure makes a device-arena allocation transiently fail, modeling
	// fragmentation or a co-tenant's allocation spike.
	MemPressure Site = "mem-pressure"
	// WorkerPanic panics inside a threadpool worker, exercising the pool's
	// recovery and the engine's step retry.
	WorkerPanic Site = "worker-panic"
)

// Sites returns every built-in site in stable order.
func Sites() []Site {
	return []Site{WeightTransfer, KVTransfer, KVCorruption, MemPressure, WorkerPanic}
}

// Rule configures one site. The zero Rule never fires.
type Rule struct {
	// Prob is the per-probe fire probability in [0, 1].
	Prob float64
	// Max caps the number of fires (0 = unlimited).
	Max int
	// Stall is the delay injected per fire at stall-capable sites.
	Stall time.Duration
}

// Validate reports malformed rules.
func (r Rule) Validate() error {
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("faults: probability %g outside [0, 1]", r.Prob)
	}
	if r.Max < 0 {
		return fmt.Errorf("faults: negative fire cap %d", r.Max)
	}
	if r.Stall < 0 {
		return fmt.Errorf("faults: negative stall %v", r.Stall)
	}
	return nil
}

// Error is an injected fault surfaced as an error. Every injected fault is
// transient by construction: the underlying data (host copies, weights) is
// intact, so a retry may succeed.
type Error struct {
	Site Site
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s fault: %s", e.Site, e.Msg)
}

// Transient reports whether retrying the failed operation can succeed.
// Injected faults model in-flight failures, so this is always true.
func (e *Error) Transient() bool { return true }

// IsTransient reports whether err is (or wraps) a transient injected fault.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Transient()
}

// Injector is a deterministic, seed-driven fault source. The nil *Injector
// is valid and never fires, so call sites need no guards. All methods are
// safe for concurrent use.
type Injector struct {
	mu       sync.Mutex
	seed     int64
	rules    map[Site]Rule
	rngs     map[Site]*rand.Rand
	fired    map[Site]int
	inactive bool // window gating: when set, no site fires

	// drift is the time-driven slowdown schedule (drift.go), anchored at
	// driftEpoch; empty means no drift.
	drift      DriftSchedule
	driftEpoch time.Time
}

// New builds an injector. Rules for unknown sites are allowed (callers may
// define their own probes); invalid rules return an error.
func New(seed int64, rules map[Site]Rule) (*Injector, error) {
	for site, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("%w (site %s)", err, site)
		}
	}
	cp := make(map[Site]Rule, len(rules))
	for s, r := range rules {
		cp[s] = r
	}
	return &Injector{
		seed:  seed,
		rules: cp,
		rngs:  map[Site]*rand.Rand{},
		fired: map[Site]int{},
	}, nil
}

// MustNew is New for static rule sets that cannot fail.
func MustNew(seed int64, rules map[Site]Rule) *Injector {
	in, err := New(seed, rules)
	if err != nil {
		panic(err)
	}
	return in
}

// siteRNG returns the site's private stream, derived from the injector seed
// and the site name so per-site sequences are interleaving-independent.
func (in *Injector) siteRNG(site Site) *rand.Rand {
	if r, ok := in.rngs[site]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(site))
	r := rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))
	in.rngs[site] = r
	return r
}

// fire rolls the site's die under its rule, honoring the fire cap.
func (in *Injector) fire(site Site) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.inactive {
		return false
	}
	rule, ok := in.rules[site]
	if !ok || rule.Prob <= 0 {
		return false
	}
	if rule.Max > 0 && in.fired[site] >= rule.Max {
		return false
	}
	if in.siteRNG(site).Float64() >= rule.Prob {
		return false
	}
	in.fired[site]++
	return true
}

// SetActive opens or closes the injector's fault window. While inactive, no
// site fires (probes still run, keeping per-site streams deterministic: an
// inactive probe does not consume randomness). Chaos harnesses use this to
// schedule bounded fault windows inside a longer run.
func (in *Injector) SetActive(active bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.inactive = !active
	in.mu.Unlock()
}

// Active reports whether the fault window is open. The nil injector is
// permanently inactive.
func (in *Injector) Active() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return !in.inactive
}

// Enabled reports whether the site has a rule that can ever fire. Callers
// use it to skip expensive probe scaffolding (e.g. spawning a pool task just
// to probe WorkerPanic).
func (in *Injector) Enabled(site Site) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r, ok := in.rules[site]
	return ok && r.Prob > 0
}

// Fail returns an injected transient error when the site fires, nil
// otherwise.
func (in *Injector) Fail(site Site) error {
	if !in.fire(site) {
		return nil
	}
	return &Error{Site: site, Msg: "transient failure"}
}

// StallFor returns the stall to insert at the site (zero when it does not
// fire or the rule has no stall configured).
func (in *Injector) StallFor(site Site) time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	stall := in.rules[site].Stall
	in.mu.Unlock()
	if stall <= 0 || !in.fire(site) {
		return 0
	}
	return stall
}

// ShouldCorrupt reports whether the site's in-flight payload should be
// corrupted this probe.
func (in *Injector) ShouldCorrupt(site Site) bool { return in.fire(site) }

// MaybePanic panics with an *Error when the site fires. Run it inside a
// threadpool worker to exercise panic recovery end to end.
func (in *Injector) MaybePanic(site Site) {
	if in.fire(site) {
		panic(&Error{Site: site, Msg: "worker panic"})
	}
}

// Fired returns how many times the site has fired.
func (in *Injector) Fired(site Site) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// Counts returns a copy of the per-site fire counts (only sites that fired
// at least once appear).
func (in *Injector) Counts() map[Site]int {
	out := map[Site]int{}
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for s, n := range in.fired {
		if n > 0 {
			out[s] = n
		}
	}
	return out
}

// String summarizes the configured rules and fire counts.
func (in *Injector) String() string {
	if in == nil {
		return "faults: disabled"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	sites := make([]string, 0, len(in.rules))
	for s := range in.rules {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	var b strings.Builder
	fmt.Fprintf(&b, "faults(seed=%d)", in.seed)
	for _, s := range sites {
		r := in.rules[Site(s)]
		fmt.Fprintf(&b, " %s:p=%g", s, r.Prob)
		if r.Max > 0 {
			fmt.Fprintf(&b, ":n=%d", r.Max)
		}
		if r.Stall > 0 {
			fmt.Fprintf(&b, ":stall=%v", r.Stall)
		}
		fmt.Fprintf(&b, "(fired %d)", in.fired[Site(s)])
	}
	return b.String()
}

// ParseRules parses a flag-friendly rule spec: comma-separated site clauses,
// each "site:key=value[:key=value...]" with keys p (probability), n (fire
// cap), and stall (Go duration). Example:
//
//	weight-transfer:p=0.2:stall=2ms,worker-panic:p=0.05:n=2
func ParseRules(spec string) (map[Site]Rule, error) {
	rules := map[Site]Rule{}
	if strings.TrimSpace(spec) == "" {
		return rules, nil
	}
	known := map[Site]bool{}
	for _, s := range Sites() {
		known[s] = true
	}
	for _, clause := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(clause), ":")
		site := Site(parts[0])
		if !known[site] {
			return nil, fmt.Errorf("faults: unknown site %q (have %v)", parts[0], Sites())
		}
		var rule Rule
		for _, kv := range parts[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faults: malformed option %q in clause %q", kv, clause)
			}
			switch key {
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("faults: bad probability %q: %w", val, err)
				}
				rule.Prob = p
			case "n":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("faults: bad fire cap %q: %w", val, err)
				}
				rule.Max = n
			case "stall":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("faults: bad stall %q: %w", val, err)
				}
				rule.Stall = d
			default:
				return nil, fmt.Errorf("faults: unknown option %q in clause %q", key, clause)
			}
		}
		if err := rule.Validate(); err != nil {
			return nil, fmt.Errorf("%w (site %s)", err, site)
		}
		rules[site] = rule
	}
	return rules, nil
}
