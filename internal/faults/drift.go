package faults

import (
	"fmt"
	"sort"
	"time"
)

// DriftPoint is one knot of a drift schedule: from At (relative to the
// schedule's epoch) onward, compute at drift-capable sites runs Factor times
// slower, until the next point takes over. Factor 1 is nominal speed; the
// schedule before the first point is nominal.
type DriftPoint struct {
	At     time.Duration
	Factor float64
}

// DriftSchedule is a deterministic piecewise-constant slowdown profile — the
// injector-side model of thermal throttling and co-tenant interference. It
// is a pure value; the Injector anchors it to an epoch via SetDrift.
type DriftSchedule []DriftPoint

// Validate reports malformed schedules: factors must be positive (a factor
// below 1 models the machine speeding back up) and points must not move
// backwards in time.
func (ds DriftSchedule) Validate() error {
	last := time.Duration(-1)
	for i, p := range ds {
		if p.Factor <= 0 {
			return fmt.Errorf("faults: drift point %d has non-positive factor %g", i, p.Factor)
		}
		if p.At < 0 {
			return fmt.Errorf("faults: drift point %d at negative offset %v", i, p.At)
		}
		if p.At < last {
			return fmt.Errorf("faults: drift point %d at %v precedes point %d", i, p.At, i-1)
		}
		last = p.At
	}
	return nil
}

// FactorAt evaluates the schedule at offset t from its epoch.
func (ds DriftSchedule) FactorAt(t time.Duration) float64 {
	f := 1.0
	for _, p := range ds {
		if p.At > t {
			break
		}
		f = p.Factor
	}
	return f
}

// SustainedSlowdown is the simplest drift scenario: nominal until start,
// then a flat factor forever — a thermal cap or a co-tenant that moved in
// and stayed.
func SustainedSlowdown(start time.Duration, factor float64) DriftSchedule {
	return DriftSchedule{{At: start, Factor: factor}}
}

// RampSlowdown models progressive thermal throttling: nominal until start,
// then the factor climbs linearly from 1 to peak over rampDur in `steps`
// piecewise-constant increments, holding peak afterwards.
func RampSlowdown(start, rampDur time.Duration, peak float64, steps int) DriftSchedule {
	if steps < 1 {
		steps = 1
	}
	ds := make(DriftSchedule, 0, steps)
	for i := 1; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		ds = append(ds, DriftPoint{
			At:     start + time.Duration(frac*float64(rampDur)),
			Factor: 1 + frac*(peak-1),
		})
	}
	return ds
}

// InterferenceWindows models a bursty co-tenant: `count` windows of `width`
// at the given period (first window opens at start), each slowing compute by
// factor, nominal in between.
func InterferenceWindows(start, period, width time.Duration, factor float64, count int) DriftSchedule {
	var ds DriftSchedule
	for i := 0; i < count; i++ {
		at := start + time.Duration(i)*period
		ds = append(ds, DriftPoint{At: at, Factor: factor}, DriftPoint{At: at + width, Factor: 1})
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].At < ds[b].At })
	return ds
}

// SetDrift installs a drift schedule anchored at time.Now. The schedule is
// evaluated by DriftDelay on every probe; a nil/empty schedule clears drift.
// Unlike the probabilistic sites, drift is time-driven and deterministic:
// the same schedule produces the same factor sequence regardless of probe
// interleaving.
func (in *Injector) SetDrift(ds DriftSchedule) error {
	if in == nil {
		return nil
	}
	if err := ds.Validate(); err != nil {
		return err
	}
	cp := append(DriftSchedule(nil), ds...)
	in.mu.Lock()
	in.drift = cp
	in.driftEpoch = time.Now()
	in.mu.Unlock()
	return nil
}

// DriftFactor returns the schedule's current slowdown factor (1 when no
// schedule is installed). The window gate (SetActive) does not apply: drift
// models the machine itself changing, not an injected fault event.
func (in *Injector) DriftFactor() float64 {
	if in == nil {
		return 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.drift) == 0 {
		return 1
	}
	return in.drift.FactorAt(time.Since(in.driftEpoch))
}

// DriftDelay converts an operation that took `elapsed` at nominal speed into
// the extra stall the current drift factor implies: elapsed*(factor-1),
// i.e. the operation behaves as if the machine ran `factor` times slower.
// Zero when no schedule is installed or the factor is <= 1 (a speed-up
// cannot un-spend time already spent).
func (in *Injector) DriftDelay(elapsed time.Duration) time.Duration {
	if in == nil || elapsed <= 0 {
		return 0
	}
	f := in.DriftFactor()
	if f <= 1 {
		return 0
	}
	return time.Duration(float64(elapsed) * (f - 1))
}
