package faults

import (
	"errors"
	"testing"
	"time"
)

// TestDeterminism: two injectors with the same seed and rules produce the
// same fire sequence per site, independent of probe interleaving across
// sites.
func TestDeterminism(t *testing.T) {
	rules := map[Site]Rule{
		WeightTransfer: {Prob: 0.3},
		KVTransfer:     {Prob: 0.5},
	}
	a := MustNew(7, rules)
	b := MustNew(7, rules)

	var seqA []bool
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.Fail(WeightTransfer) != nil)
	}
	// Interleave probes of another site on b; WeightTransfer's stream must
	// be unaffected.
	var seqB []bool
	for i := 0; i < 200; i++ {
		b.Fail(KVTransfer)
		seqB = append(seqB, b.Fail(WeightTransfer) != nil)
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("fire sequence diverged at probe %d", i)
		}
	}
	if a.Fired(WeightTransfer) == 0 {
		t.Fatal("p=0.3 over 200 probes never fired")
	}
}

// TestSeedChangesSequence: different seeds give different sequences.
func TestSeedChangesSequence(t *testing.T) {
	rules := map[Site]Rule{KVCorruption: {Prob: 0.5}}
	a := MustNew(1, rules)
	b := MustNew(2, rules)
	same := true
	for i := 0; i < 64; i++ {
		if a.ShouldCorrupt(KVCorruption) != b.ShouldCorrupt(KVCorruption) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 64-probe sequences")
	}
}

// TestFireCap: Max bounds the number of fires.
func TestFireCap(t *testing.T) {
	in := MustNew(3, map[Site]Rule{WorkerPanic: {Prob: 1, Max: 2}})
	fires := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fires++
				}
			}()
			in.MaybePanic(WorkerPanic)
		}()
	}
	if fires != 2 {
		t.Fatalf("fired %d times, cap was 2", fires)
	}
	if in.Fired(WorkerPanic) != 2 {
		t.Fatalf("Fired() = %d, want 2", in.Fired(WorkerPanic))
	}
}

// TestNilInjectorSafe: the nil injector never fires and never panics.
func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Fail(WeightTransfer) != nil || in.StallFor(KVTransfer) != 0 ||
		in.ShouldCorrupt(KVCorruption) || in.Enabled(MemPressure) || in.Fired(WorkerPanic) != 0 {
		t.Fatal("nil injector fired")
	}
	in.MaybePanic(WorkerPanic) // must not panic
	if len(in.Counts()) != 0 {
		t.Fatal("nil injector has counts")
	}
}

// TestTransientClassification: injected errors are transient, others are not.
func TestTransientClassification(t *testing.T) {
	in := MustNew(5, map[Site]Rule{MemPressure: {Prob: 1}})
	err := in.Fail(MemPressure)
	if err == nil || !IsTransient(err) {
		t.Fatalf("p=1 fault not transient: %v", err)
	}
	if !IsTransient(errorsWrap(err)) {
		t.Fatal("wrapped injected fault not recognized")
	}
	if IsTransient(errors.New("disk on fire")) {
		t.Fatal("ordinary error classified transient")
	}
}

func errorsWrap(err error) error { return &wrapped{err} }

type wrapped struct{ inner error }

func (w *wrapped) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapped) Unwrap() error { return w.inner }

// TestStall: stall fires return the configured duration.
func TestStall(t *testing.T) {
	in := MustNew(9, map[Site]Rule{WeightTransfer: {Prob: 1, Stall: 3 * time.Millisecond}})
	if d := in.StallFor(WeightTransfer); d != 3*time.Millisecond {
		t.Fatalf("stall = %v, want 3ms", d)
	}
	// Sites without a stall never stall even at p=1.
	in2 := MustNew(9, map[Site]Rule{WeightTransfer: {Prob: 1}})
	if d := in2.StallFor(WeightTransfer); d != 0 {
		t.Fatalf("stall-less rule stalled %v", d)
	}
}

// TestParseRules covers the flag syntax and its error cases.
func TestParseRules(t *testing.T) {
	rules, err := ParseRules("weight-transfer:p=0.2:stall=2ms,worker-panic:p=0.05:n=2")
	if err != nil {
		t.Fatal(err)
	}
	if r := rules[WeightTransfer]; r.Prob != 0.2 || r.Stall != 2*time.Millisecond {
		t.Fatalf("weight-transfer rule = %+v", r)
	}
	if r := rules[WorkerPanic]; r.Prob != 0.05 || r.Max != 2 {
		t.Fatalf("worker-panic rule = %+v", r)
	}
	if rules, err := ParseRules(""); err != nil || len(rules) != 0 {
		t.Fatalf("empty spec: %v %v", rules, err)
	}
	for _, bad := range []string{
		"bogus-site:p=0.5",
		"kv-transfer:p=nope",
		"kv-transfer:p",
		"kv-transfer:q=1",
		"kv-transfer:p=1.5",
		"kv-transfer:stall=-1ms",
		"kv-transfer:n=-1",
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestValidateRule rejects out-of-range fields at construction.
func TestValidateRule(t *testing.T) {
	if _, err := New(1, map[Site]Rule{WeightTransfer: {Prob: -0.1}}); err == nil {
		t.Fatal("negative probability accepted")
	}
	if _, err := New(1, map[Site]Rule{WeightTransfer: {Prob: 0.5, Max: -1}}); err == nil {
		t.Fatal("negative cap accepted")
	}
}
