package faults

import (
	"testing"
	"time"
)

func TestDriftScheduleFactorAt(t *testing.T) {
	ds := SustainedSlowdown(100*time.Millisecond, 2)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if f := ds.FactorAt(50 * time.Millisecond); f != 1 {
		t.Fatalf("pre-onset factor = %g, want 1", f)
	}
	if f := ds.FactorAt(100 * time.Millisecond); f != 2 {
		t.Fatalf("at-onset factor = %g, want 2", f)
	}
	if f := ds.FactorAt(time.Hour); f != 2 {
		t.Fatalf("sustained factor = %g, want 2", f)
	}
}

func TestRampSlowdown(t *testing.T) {
	ds := RampSlowdown(0, 100*time.Millisecond, 3, 4)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// The ramp is monotone non-decreasing and reaches the peak.
	prev := 0.0
	for off := time.Duration(0); off <= 150*time.Millisecond; off += 5 * time.Millisecond {
		f := ds.FactorAt(off)
		if f < prev {
			t.Fatalf("ramp decreased at %v: %g < %g", off, f, prev)
		}
		prev = f
	}
	if prev != 3 {
		t.Fatalf("ramp peak = %g, want 3", prev)
	}
}

func TestInterferenceWindows(t *testing.T) {
	ds := InterferenceWindows(10*time.Millisecond, 50*time.Millisecond, 20*time.Millisecond, 4, 2)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1},
		{15 * time.Millisecond, 4},  // inside window 1
		{35 * time.Millisecond, 1},  // between windows
		{65 * time.Millisecond, 4},  // inside window 2
		{200 * time.Millisecond, 1}, // after the last window closes
	}
	for _, c := range cases {
		if f := ds.FactorAt(c.at); f != c.want {
			t.Fatalf("factor at %v = %g, want %g", c.at, f, c.want)
		}
	}
}

func TestDriftScheduleValidate(t *testing.T) {
	bad := []DriftSchedule{
		{{At: 0, Factor: 0}},
		{{At: 0, Factor: -1}},
		{{At: -time.Second, Factor: 2}},
		{{At: time.Second, Factor: 2}, {At: 0, Factor: 1}},
	}
	for i, ds := range bad {
		if err := ds.Validate(); err == nil {
			t.Fatalf("schedule %d should fail validation", i)
		}
	}
}

func TestInjectorDrift(t *testing.T) {
	var nilInj *Injector
	if nilInj.DriftFactor() != 1 || nilInj.DriftDelay(time.Second) != 0 {
		t.Fatal("nil injector must report nominal drift")
	}
	if err := nilInj.SetDrift(SustainedSlowdown(0, 2)); err != nil {
		t.Fatal(err)
	}

	in := MustNew(1, nil)
	if in.DriftFactor() != 1 {
		t.Fatal("fresh injector must be nominal")
	}
	if err := in.SetDrift(DriftSchedule{{At: 0, Factor: -1}}); err == nil {
		t.Fatal("invalid schedule must be rejected")
	}
	if err := in.SetDrift(SustainedSlowdown(0, 2)); err != nil {
		t.Fatal(err)
	}
	if f := in.DriftFactor(); f != 2 {
		t.Fatalf("factor = %g, want 2", f)
	}
	if d := in.DriftDelay(10 * time.Millisecond); d != 10*time.Millisecond {
		t.Fatalf("2x drift delay for 10ms = %v, want 10ms", d)
	}
	// Drift ignores the fault window gate: the machine is slow whether or
	// not injected faults are firing.
	in.SetActive(false)
	if in.DriftFactor() != 2 {
		t.Fatal("drift must not be gated by SetActive")
	}
	// A sub-unity factor never produces a negative delay.
	if err := in.SetDrift(SustainedSlowdown(0, 0.5)); err != nil {
		t.Fatal(err)
	}
	if d := in.DriftDelay(10 * time.Millisecond); d != 0 {
		t.Fatalf("speed-up delay = %v, want 0", d)
	}
	// Clearing restores nominal.
	if err := in.SetDrift(nil); err != nil {
		t.Fatal(err)
	}
	if in.DriftFactor() != 1 {
		t.Fatal("nil schedule must clear drift")
	}
}
