// Package lp provides a small dense simplex solver for linear programs in
// the inequality form
//
//	maximize    c·x
//	subject to  A·x ≤ b,  x ≥ 0
//
// which is the shape of FlexGen's offloading policy search: the variables are
// the fractions of weights, KV cache, and activations placed on each device,
// the constraints are the GPU and CPU memory capacities, and the objective is
// (negated) estimated latency.
//
// The solver uses the standard tableau method with Bland's rule, which
// guarantees termination at the cost of speed — irrelevant at the handful of
// variables the policy search needs. Problems with negative b entries are
// handled with a two-phase method.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a linear program in inequality standard form.
type Problem struct {
	// C is the objective vector (length n).
	C []float64
	// A is the constraint matrix (m rows of length n).
	A [][]float64
	// B is the right-hand side (length m).
	B []float64
}

// Result is the solver output.
type Result struct {
	// X is the optimal point (length n).
	X []float64
	// Objective is c·x at the optimum.
	Objective float64
}

// Common solver failures.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
)

const eps = 1e-9

// Solve maximizes the problem. It returns ErrInfeasible or ErrUnbounded for
// the corresponding degenerate cases, and a validation error for malformed
// inputs.
func Solve(p Problem) (Result, error) {
	n := len(p.C)
	m := len(p.A)
	if n == 0 {
		return Result{}, fmt.Errorf("lp: empty objective")
	}
	if len(p.B) != m {
		return Result{}, fmt.Errorf("lp: %d constraint rows but %d bounds", m, len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return Result{}, fmt.Errorf("lp: constraint row %d has %d coefficients, want %d", i, len(row), n)
		}
	}

	t := newTableau(p)
	if t.needsPhase1 {
		if err := t.phase1(); err != nil {
			return Result{}, err
		}
	}
	if err := t.phase2(); err != nil {
		return Result{}, err
	}
	return t.result(), nil
}

// tableau holds the dense simplex tableau. Columns: n structural variables,
// m slacks, (optionally) artificials, then the RHS.
type tableau struct {
	n, m        int
	nArt        int
	rows        [][]float64 // m constraint rows
	obj         []float64   // phase-2 objective row (maximization, stored negated like textbook z-row)
	artObj      []float64   // phase-1 objective row
	basis       []int       // basic variable per row
	needsPhase1 bool
	cols        int
}

func newTableau(p Problem) *tableau {
	n, m := len(p.C), len(p.A)
	t := &tableau{n: n, m: m}
	for _, bi := range p.B {
		if bi < -eps {
			t.nArt++
		}
	}
	t.needsPhase1 = t.nArt > 0
	t.cols = n + m + t.nArt + 1
	rhs := t.cols - 1

	t.rows = make([][]float64, m)
	t.basis = make([]int, m)
	art := 0
	for i := 0; i < m; i++ {
		row := make([]float64, t.cols)
		sign := 1.0
		if p.B[i] < -eps {
			// Multiply the row by -1 so the RHS is non-negative; the slack
			// coefficient becomes -1, requiring an artificial variable.
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			row[j] = sign * p.A[i][j]
		}
		row[n+i] = sign // slack
		row[rhs] = sign * p.B[i]
		if sign < 0 {
			row[n+m+art] = 1
			t.basis[i] = n + m + art
			art++
		} else {
			t.basis[i] = n + i
		}
		t.rows[i] = row
	}

	t.obj = make([]float64, t.cols)
	for j := 0; j < n; j++ {
		t.obj[j] = -p.C[j] // z - c·x = 0 row
	}

	if t.needsPhase1 {
		t.artObj = make([]float64, t.cols)
		for j := n + m; j < n+m+t.nArt; j++ {
			t.artObj[j] = 1
		}
		// Price out the artificial basics.
		for i, b := range t.basis {
			if b >= n+m {
				for j := range t.artObj {
					t.artObj[j] -= t.rows[i][j]
				}
			}
		}
	}
	return t
}

// pivot performs a pivot on (row, col) updating constraint rows and both
// objective rows.
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	apply := func(r []float64) {
		f := r[col]
		if f == 0 {
			return
		}
		for j := range r {
			r[j] -= f * pr[j]
		}
	}
	for i, r := range t.rows {
		if i != row {
			apply(r)
		}
	}
	apply(t.obj)
	if t.artObj != nil {
		apply(t.artObj)
	}
	t.basis[row] = col
}

// iterate runs simplex iterations on the given objective row until optimal.
// maxCol bounds the entering-variable search (to exclude artificials in
// phase 2). Bland's rule: pick the lowest-index negative reduced cost and the
// lowest-index row among ratio ties.
func (t *tableau) iterate(obj []float64, maxCol int) error {
	rhs := t.cols - 1
	for iter := 0; ; iter++ {
		if iter > 10000*(t.cols+t.m) {
			return fmt.Errorf("lp: iteration limit exceeded")
		}
		col := -1
		for j := 0; j < maxCol; j++ {
			if obj[j] < -eps {
				col = j
				break
			}
		}
		if col == -1 {
			return nil // optimal
		}
		row := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][col]
			if a > eps {
				ratio := t.rows[i][rhs] / a
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (row == -1 || t.basis[i] < t.basis[row])) {
					best = ratio
					row = i
				}
			}
		}
		if row == -1 {
			return ErrUnbounded
		}
		t.pivot(row, col)
	}
}

func (t *tableau) phase1() error {
	if err := t.iterate(t.artObj, t.cols-1); err != nil {
		if errors.Is(err, ErrUnbounded) {
			// Phase 1 is bounded below by 0; unbounded here means a bug, but
			// surface it as infeasibility rather than panicking.
			return ErrInfeasible
		}
		return err
	}
	rhs := t.cols - 1
	if t.artObj[rhs] < -eps {
		return ErrInfeasible
	}
	// Drive any artificial variables out of the basis if possible.
	for i, b := range t.basis {
		if b < t.n+t.m {
			continue
		}
		pivoted := false
		for j := 0; j < t.n+t.m; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted && math.Abs(t.rows[i][rhs]) > eps {
			return ErrInfeasible
		}
	}
	return nil
}

func (t *tableau) phase2() error {
	return t.iterate(t.obj, t.n+t.m)
}

func (t *tableau) result() Result {
	rhs := t.cols - 1
	x := make([]float64, t.n)
	for i, b := range t.basis {
		if b < t.n {
			x[b] = t.rows[i][rhs]
		}
	}
	// The z-row was initialized as z - c·x = 0, so after pivoting its RHS
	// holds the objective value.
	return Result{X: x, Objective: t.obj[rhs]}
}
