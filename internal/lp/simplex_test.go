package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimple2D(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  => x=4, y=0, obj=12.
	res, err := Solve(Problem{
		C: []float64{3, 2},
		A: [][]float64{{1, 1}, {1, 3}},
		B: []float64{4, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Objective, 12, 1e-6) {
		t.Errorf("objective = %g, want 12", res.Objective)
	}
	if !approx(res.X[0], 4, 1e-6) || !approx(res.X[1], 0, 1e-6) {
		t.Errorf("x = %v, want [4 0]", res.X)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// max x + y s.t. 2x + y <= 4, x + 2y <= 4 => x=y=4/3, obj=8/3.
	res, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{2, 1}, {1, 2}},
		B: []float64{4, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Objective, 8.0/3, 1e-6) {
		t.Errorf("objective = %g, want 8/3", res.Objective)
	}
}

func TestUnbounded(t *testing.T) {
	_, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{-1}},
		B: []float64{1},
	})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and -x <= -3 (i.e. x >= 3) cannot both hold.
	_, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -3},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestNegativeRHSFeasible(t *testing.T) {
	// x >= 2 (as -x <= -2), x <= 5, max -x => x=2, obj=-2.
	res, err := Solve(Problem{
		C: []float64{-1},
		A: [][]float64{{-1}, {1}},
		B: []float64{-2, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.X[0], 2, 1e-6) {
		t.Errorf("x = %v, want [2]", res.X)
	}
	if !approx(res.Objective, -2, 1e-6) {
		t.Errorf("objective = %g, want -2", res.Objective)
	}
}

func TestEqualityViaPairedInequalities(t *testing.T) {
	// x + y = 1 encoded as <= and >=; max 2x + y => x=1, y=0, obj=2.
	res, err := Solve(Problem{
		C: []float64{2, 1},
		A: [][]float64{{1, 1}, {-1, -1}},
		B: []float64{1, -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Objective, 2, 1e-6) {
		t.Errorf("objective = %g, want 2", res.Objective)
	}
	if !approx(res.X[0]+res.X[1], 1, 1e-6) {
		t.Errorf("x+y = %g, want 1", res.X[0]+res.X[1])
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Redundant constraints meeting at a degenerate vertex; Bland's rule
	// must still terminate. max x+y, x<=1, y<=1, x+y<=2 (redundant).
	res, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{1, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Objective, 2, 1e-6) {
		t.Errorf("objective = %g, want 2", res.Objective)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Error("empty problem accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("ragged constraint row accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}); err == nil {
		t.Error("mismatched bounds accepted")
	}
}

// Property: for random feasible bounded problems, the solution is feasible
// and at least as good as a large random sample of feasible points.
func TestPropertySolutionDominatesRandomFeasiblePoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.C {
			p.C[j] = rng.Float64() * 5
		}
		for i := range p.A {
			row := make([]float64, n)
			for j := range row {
				row[j] = 0.1 + rng.Float64() // strictly positive => bounded
			}
			p.A[i] = row
			p.B[i] = 1 + rng.Float64()*10 // positive => x=0 feasible
		}
		res, err := Solve(p)
		if err != nil {
			return false
		}
		// Feasibility.
		for i := range p.A {
			var dot float64
			for j := range p.C {
				if res.X[j] < -1e-7 {
					return false
				}
				dot += p.A[i][j] * res.X[j]
			}
			if dot > p.B[i]+1e-6 {
				return false
			}
		}
		// Optimality vs random sampling.
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 5
			}
			feasible := true
			var obj float64
			for i := range p.A {
				var dot float64
				for j := range x {
					dot += p.A[i][j] * x[j]
				}
				if dot > p.B[i] {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			for j := range x {
				obj += p.C[j] * x[j]
			}
			if obj > res.Objective+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: objective value equals C·X.
func TestPropertyObjectiveConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		p := Problem{C: make([]float64, n), A: [][]float64{make([]float64, n)}, B: []float64{5}}
		for j := range p.C {
			p.C[j] = rng.Float64()*4 - 1
			p.A[0][j] = 0.5 + rng.Float64()
		}
		res, err := Solve(p)
		if err != nil {
			return false
		}
		var dot float64
		for j := range p.C {
			dot += p.C[j] * res.X[j]
		}
		return approx(dot, res.Objective, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
