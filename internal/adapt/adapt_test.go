package adapt

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/perfmodel"
	"repro/internal/runtime"
)

// fakePlant applies swaps synchronously, so confirmation is instant.
type fakePlant struct {
	mu     sync.Mutex
	pol    runtime.ExecPolicy
	stable bool
	refuse bool
	swaps  int
}

func (p *fakePlant) ExecPolicy() runtime.ExecPolicy {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pol
}

func (p *fakePlant) RequestSwap(q runtime.ExecPolicy) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.refuse {
		return errors.New("refused")
	}
	p.pol = q
	p.swaps++
	return nil
}

func (p *fakePlant) Stable() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stable
}

func (p *fakePlant) set(f func(*fakePlant)) {
	p.mu.Lock()
	f(p)
	p.mu.Unlock()
}

// fakeSearcher returns a fixed candidate.
type fakeSearcher struct {
	mu    sync.Mutex
	cand  Candidate
	err   error
	calls int
}

func (s *fakeSearcher) Search(factor float64, cur runtime.ExecPolicy) (Candidate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	return s.cand, s.err
}

func (s *fakeSearcher) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// testConfig is tuned for deterministic manual ticking: no cooldown, tiny
// streaks and canary, instant confirmation against the synchronous fake.
func testConfig() Config {
	return Config{
		Interval:        10 * time.Millisecond,
		MinSamples:      4,
		QErrThreshold:   1.5,
		RatioThreshold:  1.3,
		DriftStreak:     2,
		ClearStreak:     2,
		MinGain:         1.05,
		CanaryTicks:     2,
		CanaryRegress:   1.2,
		Cooldown:        0,
		MaxSwapsPerHour: 100,
		ConfirmTimeout:  200 * time.Millisecond,
	}
}

// feed pushes n TPOT estimator samples with the given prediction/actual.
func feed(col *perfmodel.EstCollector, n int, pred, act float64) {
	for i := 0; i < n; i++ {
		col.ObserveEstimate(perfmodel.EstTPOT, pred, act)
	}
}

// newTestController wires a controller over a 16-sample window.
func newTestController(t *testing.T, plant Plant, search Searcher, cfg Config) (*Controller, *perfmodel.EstCollector) {
	t.Helper()
	col := perfmodel.NewEstCollector()
	col.SetWindowSize(16)
	c, err := New(plant, col, search, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, col
}

// anchor brings a fresh controller to Stable with a 10ms TPOT baseline.
func anchor(c *Controller, col *perfmodel.EstCollector) {
	feed(col, 16, 0.010, 0.010)
	c.Tick() // anchors the baseline
	c.Tick() // first real stable evaluation
}

// driftTo flips the window to the given actual latency and ticks until the
// controller confirms drift.
func driftTo(t *testing.T, c *Controller, col *perfmodel.EstCollector, act float64) {
	t.Helper()
	feed(col, 16, 0.010, act)
	for i := 0; i < 10; i++ {
		c.Tick()
		if c.Status().State != Stable {
			return
		}
	}
	t.Fatalf("drift never detected; status %+v", c.Status())
}

// TestDetectSwapCommit walks the happy path: drift raised, search run, swap
// confirmed, canary clean, policy committed and baseline re-anchored.
func TestDetectSwapCommit(t *testing.T) {
	plant := &fakePlant{pol: runtime.ExecPolicy{IntraOp: 2}, stable: true}
	cand := Candidate{Policy: runtime.ExecPolicy{IntraOp: 4}, PredictedGain: 1.5}
	search := &fakeSearcher{cand: cand}
	c, col := newTestController(t, plant, search, testConfig())

	anchor(c, col)
	if st := c.Status(); st.State != Stable || st.BaselineTPOT == 0 {
		t.Fatalf("anchor failed: %+v", st)
	}
	driftTo(t, c, col, 0.025)
	if st := c.Status(); st.State != Drifted {
		t.Fatalf("state %v after drift, want Drifted", st.State)
	}
	c.Tick() // drifted tick: search + swap -> canary
	st := c.Status()
	if st.State != Canary || st.SwapsConfirmed != 1 {
		t.Fatalf("swap did not land: %+v", st)
	}
	if got := plant.ExecPolicy(); got != cand.Policy {
		t.Fatalf("plant policy %+v, want candidate %+v", got, cand.Policy)
	}
	// Post-swap window is clean: the swap genuinely helped.
	feed(col, 16, 0.010, 0.010)
	for i := 0; i < 4 && c.Status().State == Canary; i++ {
		c.Tick()
	}
	st = c.Status()
	if st.State != Stable || st.Commits != 1 || st.Rollbacks != 0 {
		t.Fatalf("commit did not happen: %+v", st)
	}
	if st.BaselineTPOT > 0.015 {
		t.Fatalf("baseline not re-anchored on the post-swap world: %g", st.BaselineTPOT)
	}
}

// TestPoisonedRollback: a swap whose canary window measurably regresses is
// reverted and the pre-swap policy restored.
func TestPoisonedRollback(t *testing.T) {
	before := runtime.ExecPolicy{IntraOp: 2}
	plant := &fakePlant{pol: before, stable: true}
	search := &fakeSearcher{cand: Candidate{Policy: runtime.ExecPolicy{IntraOp: 1}, PredictedGain: 2}}
	c, col := newTestController(t, plant, search, testConfig())

	anchor(c, col)
	driftTo(t, c, col, 0.025)
	c.Tick()
	if st := c.Status(); st.State != Canary {
		t.Fatalf("no canary: %+v", st)
	}
	// The poisoned policy makes things worse than the pre-swap window.
	feed(col, 16, 0.010, 0.040)
	for i := 0; i < 6 && c.Status().State == Canary; i++ {
		c.Tick()
	}
	st := c.Status()
	if st.Rollbacks != 1 || st.Commits != 0 {
		t.Fatalf("rollback did not happen: %+v", st)
	}
	if st.State != Drifted {
		t.Fatalf("state %v after rollback, want Drifted (the drift is still there)", st.State)
	}
	if got := plant.ExecPolicy(); got != before {
		t.Fatalf("policy %+v after rollback, want pre-swap %+v", got, before)
	}
}

// TestRollbackRetriesWhileUnstable: a rollback refused by the plant's
// interlock is retried every tick until it lands — reverting is the safety
// action and must not be abandoned.
func TestRollbackRetriesWhileUnstable(t *testing.T) {
	before := runtime.ExecPolicy{IntraOp: 2}
	plant := &fakePlant{pol: before, stable: true}
	search := &fakeSearcher{cand: Candidate{Policy: runtime.ExecPolicy{IntraOp: 1}, PredictedGain: 2}}
	c, col := newTestController(t, plant, search, testConfig())

	anchor(c, col)
	driftTo(t, c, col, 0.025)
	c.Tick()
	feed(col, 16, 0.010, 0.040)
	// Refuse swaps right as the rollback verdict arrives.
	plant.set(func(p *fakePlant) { p.refuse = true })
	for i := 0; i < 6; i++ {
		c.Tick()
	}
	if st := c.Status(); st.Rollbacks != 0 || st.State != Canary {
		t.Fatalf("rollback should still be pending: %+v", st)
	}
	plant.set(func(p *fakePlant) { p.refuse = false })
	c.Tick()
	st := c.Status()
	if st.Rollbacks != 1 || plant.ExecPolicy() != before {
		t.Fatalf("rollback never landed after the plant recovered: %+v", st)
	}
}

// TestInterlockUnstablePlant: while the plant reports unstable, a confirmed
// drift produces no searches and no swaps.
func TestInterlockUnstablePlant(t *testing.T) {
	plant := &fakePlant{pol: runtime.ExecPolicy{IntraOp: 2}, stable: true}
	search := &fakeSearcher{cand: Candidate{Policy: runtime.ExecPolicy{IntraOp: 4}, PredictedGain: 2}}
	c, col := newTestController(t, plant, search, testConfig())

	anchor(c, col)
	driftTo(t, c, col, 0.025)
	plant.set(func(p *fakePlant) { p.stable = false })
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	if n := search.callCount(); n != 0 {
		t.Fatalf("%d searches ran against an unstable plant", n)
	}
	if plant.swaps != 0 {
		t.Fatalf("%d swaps applied against an unstable plant", plant.swaps)
	}
	// Recovery: the first stable tick may search and swap again.
	plant.set(func(p *fakePlant) { p.stable = true })
	c.Tick()
	if n := search.callCount(); n != 1 {
		t.Fatalf("search count %d after recovery, want 1", n)
	}
}

// TestInterlockCooldownAndBudget: the cooldown spaces attempts, and the
// hourly budget caps confirmed forward swaps.
func TestInterlockCooldownAndBudget(t *testing.T) {
	cfg := testConfig()
	cfg.Cooldown = time.Hour // effectively infinite for this test
	plant := &fakePlant{pol: runtime.ExecPolicy{IntraOp: 2}, stable: true}
	// Gain below MinGain: search runs but no swap follows.
	search := &fakeSearcher{cand: Candidate{Policy: runtime.ExecPolicy{IntraOp: 4}, PredictedGain: 1.01}}
	c, col := newTestController(t, plant, search, cfg)

	anchor(c, col)
	driftTo(t, c, col, 0.025)
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	if n := search.callCount(); n != 1 {
		t.Fatalf("cooldown did not space searches: %d", n)
	}
	if plant.swaps != 0 {
		t.Fatal("sub-threshold gain still swapped")
	}

	// Budget: a fresh controller with one swap allowed commits once, then
	// re-drifts and must not search again.
	cfg = testConfig()
	cfg.MaxSwapsPerHour = 1
	plant = &fakePlant{pol: runtime.ExecPolicy{IntraOp: 2}, stable: true}
	search = &fakeSearcher{cand: Candidate{Policy: runtime.ExecPolicy{IntraOp: 4}, PredictedGain: 2}}
	c, col = newTestController(t, plant, search, cfg)
	anchor(c, col)
	driftTo(t, c, col, 0.025)
	c.Tick() // swap 1 -> canary
	feed(col, 16, 0.010, 0.010)
	for i := 0; i < 4 && c.Status().State == Canary; i++ {
		c.Tick()
	}
	if st := c.Status(); st.Commits != 1 {
		t.Fatalf("first cycle did not commit: %+v", st)
	}
	calls := search.callCount()
	driftTo(t, c, col, 0.030)
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	if n := search.callCount(); n != calls {
		t.Fatalf("budget-exhausted controller still searched (%d -> %d)", calls, n)
	}
}

// TestHysteresisBlip: a transient bad window shorter than the drift streak
// never leaves Stable.
func TestHysteresisBlip(t *testing.T) {
	cfg := testConfig()
	cfg.DriftStreak = 3
	plant := &fakePlant{pol: runtime.ExecPolicy{IntraOp: 2}, stable: true}
	search := &fakeSearcher{cand: Candidate{Policy: runtime.ExecPolicy{IntraOp: 4}, PredictedGain: 2}}
	c, col := newTestController(t, plant, search, cfg)

	anchor(c, col)
	feed(col, 16, 0.010, 0.025) // blip
	c.Tick()                    // streak 1 of 3
	feed(col, 16, 0.010, 0.010) // recovered
	for i := 0; i < 6; i++ {
		c.Tick()
	}
	if st := c.Status(); st.State != Stable || st.Searches != 0 {
		t.Fatalf("blip escalated: %+v", st)
	}
}

// TestDriftClear: confirmed drift that goes away (without any swap) walks
// back to Stable after the clear streak.
func TestDriftClear(t *testing.T) {
	plant := &fakePlant{pol: runtime.ExecPolicy{IntraOp: 2}, stable: false} // unstable: no swaps interfere
	search := &fakeSearcher{cand: Candidate{PredictedGain: 1}}
	c, col := newTestController(t, plant, search, testConfig())

	anchor(c, col)
	driftTo(t, c, col, 0.025)
	feed(col, 16, 0.010, 0.010)
	for i := 0; i < 6 && c.Status().State != Stable; i++ {
		c.Tick()
	}
	if st := c.Status(); st.State != Stable {
		t.Fatalf("drift never cleared: %+v", st)
	}
}

// TestStartStop: the background loop starts, ticks, and stops without
// leaking; Stop on a never-started controller returns immediately.
func TestStartStop(t *testing.T) {
	plant := &fakePlant{pol: runtime.ExecPolicy{IntraOp: 1}, stable: true}
	search := &fakeSearcher{}
	cfg := testConfig()
	cfg.Interval = time.Millisecond
	c, col := newTestController(t, plant, search, cfg)
	feed(col, 16, 0.010, 0.010)
	c.Start()
	deadline := time.Now().Add(time.Second)
	for c.Status().BaselineTPOT == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never anchored the baseline")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent

	c2, _ := newTestController(t, plant, search, cfg)
	done := make(chan struct{})
	go func() { c2.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop on a never-started controller hung")
	}
}

// TestConfigValidate rejects degenerate configurations.
func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Interval = 0 },
		func(c *Config) { c.MinSamples = 0 },
		func(c *Config) { c.QErrThreshold = 1 },
		func(c *Config) { c.RatioThreshold = 0.9 },
		func(c *Config) { c.DriftStreak = 0 },
		func(c *Config) { c.MinGain = 1 },
		func(c *Config) { c.CanaryTicks = 0 },
		func(c *Config) { c.CanaryRegress = 1 },
		func(c *Config) { c.Cooldown = -time.Second },
		func(c *Config) { c.MaxSwapsPerHour = 0 },
		func(c *Config) { c.ConfirmTimeout = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
