// Package adapt is the online self-tuning loop that closes LM-Offload's
// performance model back onto a *running* server: it watches live estimator
// accuracy and measured decode latency for drift, refits the execution
// profile's hardware coefficients off the hot path, re-runs the
// policy/parallelism search under the refitted profile, and hot-swaps the
// resulting exec policy at a step boundary — guarded by a canary window whose
// measured regression triggers automatic rollback.
//
// The controller is deliberately paranoid about touching a live server:
//
//   - it never requests a swap unless the plant reports Stable (for the
//     serving scheduler that means circuit breaker Healthy and not closing),
//     and the scheduler re-checks the same interlock at apply time;
//   - a cooldown separates consecutive swap attempts, and confirmed forward
//     swaps are rate-limited per hour (rollbacks are exempt — reverting a bad
//     policy is a safety action, not an experiment);
//   - a swap only goes out when the search predicts a gain above a hysteresis
//     threshold, so model noise cannot thrash the policy;
//   - after a swap the pre-swap policy and its measured TPOT are retained,
//     and the canary window's median is compared against them: a measured
//     regression beyond CanaryRegress reverts the swap.
//
// Detection is dual-signal: the windowed median q-error of the TPOT estimator
// (prediction quality collapses the moment the machine leaves the fitted
// regime, before the decayed fit catches up) OR the windowed actual TPOT
// median against a stable-period baseline (still firing after the estimator
// has re-converged on the slow regime). Both use streak hysteresis.
package adapt

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/perfmodel"
	"repro/internal/runtime"
	"repro/internal/xtrace"
)

// Plant is the controller's view of the system it tunes. The serving
// scheduler (internal/serve.Scheduler) implements it; tests use fakes.
type Plant interface {
	// ExecPolicy returns the exec policy currently applied.
	ExecPolicy() runtime.ExecPolicy
	// RequestSwap asks for p to be installed at the next step boundary.
	// Application is asynchronous: poll ExecPolicy to confirm.
	RequestSwap(p runtime.ExecPolicy) error
	// Stable reports whether policy experiments are safe right now.
	Stable() bool
}

// Candidate is one search result: a policy plus the search's own prediction
// of how much faster it is than the current one.
type Candidate struct {
	Policy runtime.ExecPolicy
	// PredictedGain is current-step-time / candidate-step-time under the
	// refitted profile (>1 means the candidate is predicted faster).
	PredictedGain float64
	// Profile names the execution profile the search ran under.
	Profile string
}

// Searcher re-runs the policy/parallelism search under a measured slowdown
// factor. Implementations must be safe to call from the controller goroutine.
type Searcher interface {
	Search(factor float64, cur runtime.ExecPolicy) (Candidate, error)
}

// State is the controller's position in the adaptation lifecycle.
type State int

const (
	// Stable: no drift detected; the baseline TPOT anchor tracks slowly.
	Stable State = iota
	// Drifted: drift confirmed; searches run and swaps may be requested.
	Drifted
	// Canary: a swap was applied and is being measured against the pre-swap
	// window; regression beyond the threshold rolls it back.
	Canary
)

// String returns the state's wire name (the /stats JSON value).
func (s State) String() string {
	switch s {
	case Stable:
		return "stable"
	case Drifted:
		return "drifted"
	case Canary:
		return "canary"
	default:
		return "unknown"
	}
}

// Config tunes the controller. DefaultConfig's values suit the tiny-model
// serving stack; production knobs scale with Interval.
type Config struct {
	// Interval is the tick period of the background loop.
	Interval time.Duration
	// MinSamples gates every windowed judgment: ticks with fewer TPOT
	// estimator samples in the window are inconclusive and change nothing.
	MinSamples int
	// QErrThreshold raises the drift signal when the windowed median q-error
	// of the TPOT estimator exceeds it (1 = perfect predictions).
	QErrThreshold float64
	// RatioThreshold raises the drift signal when windowed actual TPOT
	// exceeds this multiple of the stable baseline.
	RatioThreshold float64
	// DriftStreak and ClearStreak are the hysteresis: consecutive drifted
	// ticks to enter Drifted, consecutive clean ticks to leave it.
	DriftStreak int
	ClearStreak int
	// MinGain is the swap hysteresis: candidates predicting less than this
	// step-time ratio are discarded.
	MinGain float64
	// CanaryTicks is how many conclusive post-swap ticks the canary observes
	// before its verdict.
	CanaryTicks int
	// CanaryRegress rolls the swap back when canary TPOT median exceeds this
	// multiple of the pre-swap window median.
	CanaryRegress float64
	// Cooldown is the minimum gap between swap attempts (searches included).
	Cooldown time.Duration
	// MaxSwapsPerHour bounds confirmed forward swaps; rollbacks are exempt.
	MaxSwapsPerHour int
	// ConfirmTimeout bounds the wait for an async swap to be applied; an
	// unconfirmed swap counts as refused (the scheduler's apply-time
	// interlock dropped it).
	ConfirmTimeout time.Duration
}

// DefaultConfig returns the tuning used by lmo-serve -adapt and the drift
// experiments.
func DefaultConfig() Config {
	return Config{
		Interval:        250 * time.Millisecond,
		MinSamples:      8,
		QErrThreshold:   1.5,
		RatioThreshold:  1.4,
		DriftStreak:     3,
		ClearStreak:     6,
		MinGain:         1.05,
		CanaryTicks:     4,
		CanaryRegress:   1.15,
		Cooldown:        5 * time.Second,
		MaxSwapsPerHour: 12,
		ConfirmTimeout:  2 * time.Second,
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	switch {
	case c.Interval <= 0:
		return fmt.Errorf("adapt: interval must be positive, got %v", c.Interval)
	case c.MinSamples < 1:
		return fmt.Errorf("adapt: min samples must be >= 1, got %d", c.MinSamples)
	case c.QErrThreshold <= 1:
		return fmt.Errorf("adapt: q-error threshold must be > 1, got %g", c.QErrThreshold)
	case c.RatioThreshold <= 1:
		return fmt.Errorf("adapt: ratio threshold must be > 1, got %g", c.RatioThreshold)
	case c.DriftStreak < 1 || c.ClearStreak < 1:
		return fmt.Errorf("adapt: streaks must be >= 1, got drift %d clear %d", c.DriftStreak, c.ClearStreak)
	case c.MinGain <= 1:
		return fmt.Errorf("adapt: min gain must be > 1, got %g", c.MinGain)
	case c.CanaryTicks < 1:
		return fmt.Errorf("adapt: canary ticks must be >= 1, got %d", c.CanaryTicks)
	case c.CanaryRegress <= 1:
		return fmt.Errorf("adapt: canary regression threshold must be > 1, got %g", c.CanaryRegress)
	case c.Cooldown < 0:
		return fmt.Errorf("adapt: cooldown must be >= 0, got %v", c.Cooldown)
	case c.MaxSwapsPerHour < 1:
		return fmt.Errorf("adapt: max swaps per hour must be >= 1, got %d", c.MaxSwapsPerHour)
	case c.ConfirmTimeout <= 0:
		return fmt.Errorf("adapt: confirm timeout must be positive, got %v", c.ConfirmTimeout)
	}
	return nil
}

// Status is a point-in-time controller snapshot for /stats and tests.
type Status struct {
	State State
	// DriftFactor is the refitter's current slowdown estimate (1 = nominal).
	DriftFactor float64
	// BaselineTPOT is the stable-period anchor (seconds; 0 until anchored).
	BaselineTPOT float64
	// WindowTPOT and WindowQErr are the latest conclusive window's medians.
	WindowTPOT float64
	WindowQErr float64
	// WindowCount is the latest window's sample count.
	WindowCount int

	Searches       int64
	SwapsRequested int64
	SwapsConfirmed int64
	Commits        int64
	Rollbacks      int64
	// Refusals counts swap requests refused by the plant's interlocks,
	// including apply-time drops observed as confirmation timeouts.
	Refusals int64

	// LastSwap is when the most recent swap was confirmed (zero if never).
	LastSwap time.Time
	// Candidate is the most recent search result (zero value if none yet).
	Candidate Candidate
}

// Controller runs the detect → refit/search → swap → canary loop. Create it
// with New, then either Start a background goroutine or drive Tick directly
// (tests do the latter for determinism).
type Controller struct {
	cfg    Config
	plant  Plant
	col    *perfmodel.EstCollector
	search Searcher
	refit  *perfmodel.ProfileRefitter
	tracer *xtrace.Recorder

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	mu sync.Mutex
	st Status
	// Detection state.
	driftStreak int
	clearStreak int
	// Swap state.
	lastAttempt time.Time   // cooldown anchor: searches and swap requests
	swapTimes   []time.Time // confirmed forward swaps inside the rate window
	preSwap     runtime.ExecPolicy
	preTPOT     float64 // pre-swap window actual median (seconds)
	canarySeen  int     // conclusive canary ticks observed
	canaryIdle  int     // inconclusive canary ticks (no traffic)
	rollback    bool    // a rollback request is pending confirmation
}

// New wires a controller. The collector must be the same EstObserver the
// serving scheduler feeds (serve.Config.EstObserver), so the controller sees
// the live TPOT estimator stream.
func New(plant Plant, col *perfmodel.EstCollector, search Searcher, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if plant == nil || col == nil || search == nil {
		return nil, fmt.Errorf("adapt: plant, collector, and searcher are all required")
	}
	return &Controller{
		cfg:    cfg,
		plant:  plant,
		col:    col,
		search: search,
		refit:  &perfmodel.ProfileRefitter{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// SetTracer records adaptation lifecycle events (drift_detect, refit,
// policy_commit, policy_rollback, ...) into the given recorder on the adapt
// lane. Call before Start.
func (c *Controller) SetTracer(r *xtrace.Recorder) { c.tracer = r }

// Start launches the background tick loop. Safe to call once; Stop ends it.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			tick := time.NewTicker(c.cfg.Interval)
			defer tick.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-tick.C:
					c.Tick()
				}
			}
		}()
	})
}

// Stop ends the background loop and waits for it to exit. Idempotent; a
// controller that was never started returns immediately.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	// If Start never ran, consume its Once so the wait below returns.
	c.startOnce.Do(func() { close(c.done) })
	<-c.done
}

// Status snapshots the controller.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// StatsMap renders the status as the /stats "adapt" block. Suitable for
// serve.Scheduler.SetAdaptStatsFunc.
func (c *Controller) StatsMap() map[string]any {
	st := c.Status()
	out := map[string]any{
		"state":           st.State.String(),
		"drift_factor":    st.DriftFactor,
		"baseline_tpot_s": st.BaselineTPOT,
		"window_tpot_s":   st.WindowTPOT,
		"window_qerr":     st.WindowQErr,
		"window_count":    st.WindowCount,
		"searches":        st.Searches,
		"swaps_requested": st.SwapsRequested,
		"swaps_confirmed": st.SwapsConfirmed,
		"commits":         st.Commits,
		"rollbacks":       st.Rollbacks,
		"refusals":        st.Refusals,
	}
	if !st.LastSwap.IsZero() {
		out["last_swap_unix_ms"] = st.LastSwap.UnixMilli()
	}
	if st.Candidate.PredictedGain > 0 {
		out["candidate_gain"] = st.Candidate.PredictedGain
		out["candidate_intra_op"] = st.Candidate.Policy.IntraOp
	}
	return out
}

// Tick runs one controller iteration. Exported so tests (and callers that
// want their own scheduling) can drive the loop deterministically; Start's
// goroutine just calls it on a timer.
func (c *Controller) Tick() {
	ws := c.col.WindowStats(perfmodel.EstTPOT)
	c.mu.Lock()
	defer c.mu.Unlock()
	if ws.Count >= c.cfg.MinSamples {
		c.st.WindowTPOT = ws.ActualMedian
		c.st.WindowQErr = ws.QErrMedian
	}
	c.st.WindowCount = ws.Count
	c.st.DriftFactor = c.refit.Factor()
	switch c.st.State {
	case Stable:
		c.tickStable(ws)
	case Drifted:
		c.tickDrifted(ws)
	case Canary:
		c.tickCanary(ws)
	}
}

// drifted evaluates the dual detection condition on a conclusive window.
func (c *Controller) drifted(ws perfmodel.EstWindowStats) bool {
	if ws.QErrMedian > c.cfg.QErrThreshold {
		return true
	}
	base := c.st.BaselineTPOT
	return base > 0 && ws.ActualMedian > c.cfg.RatioThreshold*base
}

func (c *Controller) tickStable(ws perfmodel.EstWindowStats) {
	if ws.Count < c.cfg.MinSamples {
		return
	}
	if c.st.BaselineTPOT == 0 {
		// First conclusive window anchors the baseline.
		c.st.BaselineTPOT = ws.ActualMedian
		return
	}
	c.refit.Observe(ws.ActualMedian, c.st.BaselineTPOT)
	c.st.DriftFactor = c.refit.Factor()
	if c.drifted(ws) {
		c.driftStreak++
		if c.driftStreak >= c.cfg.DriftStreak {
			c.st.State = Drifted
			c.clearStreak = 0
			c.event(xtrace.TaskDriftDetect)
		}
		return
	}
	c.driftStreak = 0
	// Track slow legitimate shifts (workload mix, occupancy) without letting
	// a fast drift drag the anchor along: heavy smoothing, undrifted only.
	c.st.BaselineTPOT = 0.9*c.st.BaselineTPOT + 0.1*ws.ActualMedian
}

func (c *Controller) tickDrifted(ws perfmodel.EstWindowStats) {
	if ws.Count < c.cfg.MinSamples {
		return
	}
	c.refit.Observe(ws.ActualMedian, c.st.BaselineTPOT)
	c.st.DriftFactor = c.refit.Factor()
	if !c.drifted(ws) {
		c.clearStreak++
		if c.clearStreak >= c.cfg.ClearStreak {
			c.st.State = Stable
			c.driftStreak = 0
			c.event(xtrace.TaskDriftClear)
		}
		return
	}
	c.clearStreak = 0

	// Interlocks: a degraded plant, a live cooldown, or an exhausted swap
	// budget all silently skip this tick; detection state is untouched.
	now := time.Now()
	if !c.plant.Stable() ||
		(!c.lastAttempt.IsZero() && now.Sub(c.lastAttempt) < c.cfg.Cooldown) ||
		!c.budgetOKLocked(now) {
		return
	}
	c.lastAttempt = now

	// Refit + re-search off the hot path (this goroutine IS off the hot
	// path: the serving loop never blocks on the controller).
	factor := c.refit.Factor()
	cur := c.plant.ExecPolicy()
	t0 := time.Now()
	cand, err := c.search.Search(factor, cur)
	c.span(xtrace.TaskRefit, t0)
	c.st.Searches++
	if err != nil {
		return
	}
	c.st.Candidate = cand
	if cand.PredictedGain < c.cfg.MinGain || cand.Policy == cur {
		return
	}

	// Swap: remember the pre-swap world, request, await confirmation.
	c.st.SwapsRequested++
	preTPOT := ws.ActualMedian
	if err := c.plant.RequestSwap(cand.Policy); err != nil {
		c.st.Refusals++
		return
	}
	if !c.awaitPolicyLocked(cand.Policy) {
		// Dropped at the apply-time interlock (or the plant is wedged);
		// either way the swap did not land.
		c.st.Refusals++
		return
	}
	c.preSwap = cur
	c.preTPOT = preTPOT
	c.st.SwapsConfirmed++
	c.st.LastSwap = time.Now()
	c.swapTimes = append(c.swapTimes, c.st.LastSwap)
	c.canarySeen, c.canaryIdle = 0, 0
	c.rollback = false
	c.st.State = Canary
	// The canary must judge post-swap behavior only.
	c.col.ResetWindow(perfmodel.EstTPOT)
}

func (c *Controller) tickCanary(ws perfmodel.EstWindowStats) {
	if c.rollback {
		// A prior rollback request was refused (plant unstable); keep
		// retrying — reverting is the safety action.
		c.finishRollback()
		return
	}
	if !c.plant.Stable() {
		// Pause the canary clock while the plant is unstable: its latency is
		// dominated by whatever tripped the breaker, not by our swap.
		return
	}
	if ws.Count < c.cfg.MinSamples {
		c.canaryIdle++
		if c.canaryIdle > 8*c.cfg.CanaryTicks {
			// No traffic arrived to judge the swap. Commit by default: an
			// idle server's policy is consequence-free, and the detector
			// re-arms the moment traffic returns.
			c.commitLocked(ws)
		}
		return
	}
	c.canarySeen++
	if c.canarySeen < c.cfg.CanaryTicks {
		return
	}
	if c.preTPOT > 0 && ws.ActualMedian > c.cfg.CanaryRegress*c.preTPOT {
		// Measured regression: the swap made things worse. Revert.
		c.rollback = true
		c.finishRollback()
		return
	}
	c.commitLocked(ws)
}

// commitLocked accepts the canaried policy: re-anchor the baseline on the
// post-swap world and return to Stable.
func (c *Controller) commitLocked(ws perfmodel.EstWindowStats) {
	if ws.Count >= c.cfg.MinSamples {
		c.st.BaselineTPOT = ws.ActualMedian
	}
	// Old ratios were measured against the pre-swap baseline; start the
	// slowdown fit fresh.
	c.refit.Reset()
	c.st.DriftFactor = 1
	c.st.Commits++
	c.driftStreak, c.clearStreak = 0, 0
	c.st.State = Stable
	c.event(xtrace.TaskPolicyCommit)
}

// finishRollback requests the pre-swap policy and, once confirmed, returns to
// Drifted (the underlying drift is still there; the cooldown prevents an
// immediate identical retry).
func (c *Controller) finishRollback() {
	if err := c.plant.RequestSwap(c.preSwap); err != nil {
		// Breaker interlock refused the revert; retry next tick.
		return
	}
	if !c.awaitPolicyLocked(c.preSwap) {
		return
	}
	c.rollback = false
	c.st.Rollbacks++
	c.lastAttempt = time.Now() // cooldown before the next experiment
	c.st.State = Drifted
	c.clearStreak = 0
	c.event(xtrace.TaskPolicyRollback)
	// Post-rollback measurements should not be judged against canary noise.
	c.col.ResetWindow(perfmodel.EstTPOT)
}

// awaitPolicyLocked polls the plant until it reports the requested policy or
// the confirm timeout lapses. Called with c.mu held; the wait is bounded and
// only the controller goroutine contends for the lock in practice (Status
// readers may block for up to ConfirmTimeout in the worst case).
func (c *Controller) awaitPolicyLocked(want runtime.ExecPolicy) bool {
	deadline := time.Now().Add(c.cfg.ConfirmTimeout)
	step := c.cfg.Interval / 8
	if step <= 0 || step > 50*time.Millisecond {
		step = 5 * time.Millisecond
	}
	for {
		if c.plant.ExecPolicy() == want {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(step)
	}
}

// budgetOKLocked prunes the hourly swap window and reports whether another
// forward swap is allowed.
func (c *Controller) budgetOKLocked(now time.Time) bool {
	cutoff := now.Add(-time.Hour)
	kept := c.swapTimes[:0]
	for _, t := range c.swapTimes {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	c.swapTimes = kept
	return len(c.swapTimes) < c.cfg.MaxSwapsPerHour
}

// event records an instantaneous adaptation marker on the adapt lane.
func (c *Controller) event(name string) {
	if c.tracer != nil {
		c.tracer.Event(name, xtrace.LaneAdapt, time.Now(), xtrace.NoLabels)
	}
}

// span records a timed adaptation span (the refit+search) on the adapt lane.
func (c *Controller) span(name string, t0 time.Time) {
	if c.tracer != nil {
		c.tracer.Record(name, xtrace.LaneAdapt, t0, time.Since(t0), xtrace.NoLabels)
	}
}
