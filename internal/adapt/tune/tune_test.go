package tune

import (
	"testing"
	"time"

	lmoffload "repro"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
)

// TestAutoTuneSearcher: the paper-faithful searcher produces a valid
// candidate under a slowdown factor, clamps the width, and preserves the
// non-searched policy fields.
func TestAutoTuneSearcher(t *testing.T) {
	work, err := lmoffload.NewWorkload(64, 32, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := &AutoTuneSearcher{
		Plat:       lmoffload.SingleGPUA100(),
		Mod:        lmoffload.OPT30B,
		Work:       work,
		Base:       perfmodel.LMOffloadProfile(),
		MaxIters:   3,
		MaxIntraOp: 4,
	}
	cur := runtime.ExecPolicy{IntraOp: 2, Prefetch: true, StepTimeout: time.Second}
	cand, err := s.Search(2.0, cur)
	if err != nil {
		t.Fatal(err)
	}
	if cand.Policy.IntraOp < 1 || cand.Policy.IntraOp > 4 {
		t.Fatalf("candidate width %d outside clamp", cand.Policy.IntraOp)
	}
	if !cand.Policy.Prefetch || cand.Policy.StepTimeout != time.Second {
		t.Fatalf("non-searched fields not preserved: %+v", cand.Policy)
	}
	if cand.PredictedGain <= 0 {
		t.Fatalf("gain %g", cand.PredictedGain)
	}
	if err := cand.Policy.Validate(); err != nil {
		t.Fatal(err)
	}
	// The searcher's candidate under a slowdown should differ meaningfully
	// from a degenerate one: the gain is a ratio of model step times, so it
	// is finite and positive even when the tuned width equals the current.
	if _, err := s.Search(-1, cur); err == nil {
		t.Fatal("negative factor accepted")
	}
}
