// Package tune provides the paper-faithful adapt.Searcher backed by the root
// package's AutoTune loop. It lives apart from the adapt core so that the
// serving layer (which the root package transitively imports via the cluster
// facade) can depend on adapt without an import cycle.
package tune

import (
	"fmt"

	lmoffload "repro"
	"repro/internal/adapt"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
)

// AutoTuneSearcher is the paper-faithful Searcher: it projects the measured
// slowdown factor onto the execution profile's hardware coefficients
// (perfmodel.RefitProfile), re-runs the full §3 policy / §4 parallelism
// autotune loop under the refitted profile, and prices the *current* width
// the same way (lmoffload.EvaluateIntraOp) so PredictedGain is a ratio of two
// step times estimated by one model.
//
// The candidate keeps the current policy's InterOp, Prefetch, and StepTimeout
// — the model's operator-graph concurrency is not the engine's GPU-batch
// inter-op knob, and the other two are outside the search space. Only the
// intra-op width moves, clamped to MaxIntraOp so a 56-core machine model
// cannot prescribe a width the live thread pool does not have.
type AutoTuneSearcher struct {
	Plat *lmoffload.Platform
	Mod  lmoffload.ModelConfig
	Work lmoffload.Workload
	// Base is the reference profile drift is measured against (typically
	// perfmodel.LMOffloadProfile()).
	Base perfmodel.ExecProfile
	// MaxIters bounds the policy/parallelism rounds per search (>=1).
	MaxIters int
	// MaxIntraOp clamps the candidate width to the live pool (0 = no clamp).
	MaxIntraOp int
}

// Search implements Searcher.
func (s *AutoTuneSearcher) Search(factor float64, cur runtime.ExecPolicy) (adapt.Candidate, error) {
	if s.Plat == nil {
		return adapt.Candidate{}, fmt.Errorf("adapt: searcher has no platform")
	}
	iters := s.MaxIters
	if iters < 1 {
		iters = 4
	}
	prof, err := perfmodel.RefitProfile(s.Base, factor)
	if err != nil {
		return adapt.Candidate{}, err
	}
	tuned, err := lmoffload.AutoTuneWithProfile(s.Plat, s.Mod, s.Work, prof, iters)
	if err != nil {
		return adapt.Candidate{}, err
	}
	curIntra := cur.IntraOp
	if curIntra < 1 {
		curIntra = 1
	}
	curSet, err := lmoffload.EvaluateIntraOp(s.Plat, s.Mod, s.Work, prof, curIntra)
	if err != nil {
		return adapt.Candidate{}, err
	}
	gain := 1.0
	if tuned.Parallelism.StepTime > 0 {
		gain = curSet.StepTime / tuned.Parallelism.StepTime
	}
	intra := tuned.Parallelism.IntraOp
	if s.MaxIntraOp > 0 && intra > s.MaxIntraOp {
		intra = s.MaxIntraOp
	}
	pol := cur
	pol.IntraOp = intra
	return adapt.Candidate{Policy: pol, PredictedGain: gain, Profile: tuned.Profile.Name}, nil
}
