package tensor

import "math"

// IEEE 754 binary16 support. The paper's deployment precision is FP16;
// the functional runtime stores offloaded tensors as half-precision words so
// transfer sizes and rounding behaviour match the modeled 2-byte elements,
// while compute still runs in float32 (as CPU attention does in FlexGen).

// F16 is one half-precision value in its raw bit representation.
type F16 uint16

// F16FromFloat32 converts with round-to-nearest-even, handling subnormals,
// infinities, and NaN.
func F16FromFloat32(f float32) F16 {
	bits := math.Float32bits(f)
	sign := uint16(bits >> 16 & 0x8000)
	exp := int32(bits>>23&0xff) - 127
	frac := bits & 0x7fffff

	switch {
	case exp == 128: // Inf or NaN
		if frac != 0 {
			// Preserve a quiet NaN.
			return F16(sign | 0x7e00)
		}
		return F16(sign | 0x7c00)
	case exp > 15: // overflow -> Inf
		return F16(sign | 0x7c00)
	case exp >= -14: // normal range
		// Round to nearest even on the 13 dropped bits.
		mant := frac | 0x800000 // implicit leading 1
		shifted := mant >> 13
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && shifted&1 == 1) {
			shifted++
		}
		// A mantissa carry bumps the exponent (and may overflow to Inf).
		e := uint32(exp+15) + (shifted >> 11)
		shifted &= 0x3ff
		if shifted == 0 && e > uint32(exp+15) {
			// carry rolled the mantissa over; e already incremented
		}
		if e >= 31 {
			return F16(sign | 0x7c00)
		}
		return F16(sign | uint16(e<<10) | uint16(shifted&0x3ff))
	case exp >= -24: // subnormal
		mant := frac | 0x800000
		shift := uint32(-exp - 14 + 13)
		shifted := mant >> shift
		rem := mant & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && shifted&1 == 1) {
			shifted++
		}
		return F16(sign | uint16(shifted))
	default: // underflow -> signed zero
		return F16(sign)
	}
}

// Float32 converts back to single precision exactly (every F16 value is
// representable in float32).
func (h F16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	frac := uint32(h & 0x3ff)

	switch exp {
	case 0:
		if frac == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= 0x3ff
		return math.Float32frombits(sign | e<<23 | frac<<13)
	case 31:
		if frac == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7fc00000 | frac<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | frac<<13)
	}
}

// F16Slice is a packed half-precision buffer with the source shape, the
// storage format the runtime's host-side tensor stores use.
type F16Slice struct {
	data  []F16
	shape []int
}

// ToF16 converts a float32 tensor to packed half precision.
func ToF16(t *Tensor) *F16Slice {
	out := &F16Slice{
		data:  make([]F16, t.Numel()),
		shape: append([]int(nil), t.Shape()...),
	}
	for i, v := range t.Data() {
		out.data[i] = F16FromFloat32(v)
	}
	return out
}

// ToFloat32 expands back to a float32 tensor (with FP16 rounding applied).
func (s *F16Slice) ToFloat32() *Tensor {
	out := New(s.shape...)
	for i, h := range s.data {
		out.Data()[i] = h.Float32()
	}
	return out
}

// Bytes returns the packed size (2 bytes per element).
func (s *F16Slice) Bytes() int64 { return int64(len(s.data)) * 2 }

// Shape returns the source shape.
func (s *F16Slice) Shape() []int { return s.shape }

// Numel returns the element count.
func (s *F16Slice) Numel() int { return len(s.data) }

// RoundTripF16 applies FP16 rounding to every element in place, modeling a
// tensor that lived in half precision.
func RoundTripF16(t *Tensor) {
	for i, v := range t.Data() {
		t.Data()[i] = F16FromFloat32(v).Float32()
	}
}
