package tensor

import (
	"fmt"

	"repro/internal/threadpool"
)

// MatMul computes C = A·B for rank-2 tensors A (m×k) and B (k×n) into a new
// tensor, parallelizing over rows of A with `width` workers from pool. Pass
// pool == nil (or width <= 1) for a serial computation.
//
// The kernel is an ikj loop order with the inner j loop over contiguous rows
// of B, which keeps accesses streaming and vectorizable — the same
// memory-bandwidth-bound profile that makes the paper's AddmmBackward
// saturate around eight threads.
func MatMul(pool *threadpool.Pool, width int, a, b *Tensor) *Tensor {
	m, k, n := checkMatMulShapes(a, b)
	c := New(m, n)
	matMulInto(pool, width, a, b, c, m, k, n)
	return c
}

// MatMulInto is MatMul writing into a preallocated m×n destination,
// overwriting its contents.
func MatMulInto(pool *threadpool.Pool, width int, a, b, c *Tensor) {
	m, k, n := checkMatMulShapes(a, b)
	if c.Rank() != 2 || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto destination shape %v, want [%d %d]", c.Shape(), m, n))
	}
	for i := range c.data {
		c.data[i] = 0
	}
	matMulInto(pool, width, a, b, c, m, k, n)
}

func checkMatMulShapes(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul on ranks %d and %d, want 2 and 2", a.Rank(), b.Rank()))
	}
	m, k = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions %d and %d differ", k, b.Dim(0)))
	}
	return m, k, b.Dim(1)
}

func matMulInto(pool *threadpool.Pool, width int, a, b, c *Tensor, m, k, n int) {
	nf := skipFlags(a.data, b.data, k, n)
	kernel := func(lo, hi int) {
		ad, bd, cd := a.data, b.data, c.data
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			crow := cd[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 && (nf == nil || !nf[p]) {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	if pool == nil || width <= 1 {
		kernel(0, m)
		return
	}
	pool.ParallelRange(m, width, kernel)
}

// isNonFinite reports NaN or ±Inf: v-v is zero for every finite v and NaN
// otherwise, and a NaN comparison against zero is unequal.
func isNonFinite(v float32) bool { return v-v != 0 }

func hasZero(xs []float32) bool {
	for _, v := range xs {
		if v == 0 {
			return true
		}
	}
	return false
}

func hasNonFinite(xs []float32) bool {
	for _, v := range xs {
		if isNonFinite(v) {
			return true
		}
	}
	return false
}

// skipFlags decides when the zero-skip in matMulInto is allowed to drop a
// product. Skipping av == 0 is only value-preserving when row p of B is
// finite: the skipped products are then ±0, and an accumulator that starts
// at +0 and never adds two -0 terms in a row stays bit-identical whether or
// not ±0 terms are added. With a non-finite row, 0×NaN and 0×Inf must
// produce NaN, so the row cannot be skipped. The scan costs O(k) when A has
// no zeros (the common dense case) and one pass over B otherwise; it returns
// nil — "always skip" — when A has no zeros or B is entirely finite.
func skipFlags(ad, bd []float32, k, n int) []bool {
	if !hasZero(ad) {
		return nil
	}
	var nf []bool
	for p := 0; p < k; p++ {
		if hasNonFinite(bd[p*n : (p+1)*n]) {
			if nf == nil {
				nf = make([]bool, k)
			}
			nf[p] = true
		}
	}
	return nf
}

// MatMulT computes C = A·Bᵀ for A (m×k) and B (n×k). This is the natural
// layout for attention scores Q·Kᵀ where both operands are stored row-major
// per token.
func MatMulT(pool *threadpool.Pool, width int, a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulT on ranks %d and %d, want 2 and 2", a.Rank(), b.Rank()))
	}
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(0)
	if b.Dim(1) != k {
		panic(fmt.Sprintf("tensor: MatMulT inner dimensions %d and %d differ", k, b.Dim(1)))
	}
	c := New(m, n)
	kernel := func(lo, hi int) {
		ad, bd, cd := a.data, b.data, c.data
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var sum float32
				for p := range arow {
					sum += arow[p] * brow[p]
				}
				cd[i*n+j] = sum
			}
		}
	}
	if pool == nil || width <= 1 {
		kernel(0, m)
		return c
	}
	pool.ParallelRange(m, width, kernel)
	return c
}

// Transpose2D returns a copied transpose of a rank-2 tensor.
func Transpose2D(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D on rank-%d tensor", t.Rank()))
	}
	m, n := t.Dim(0), t.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j*m+i] = v
		}
	}
	return out
}
