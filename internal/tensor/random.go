package tensor

import "math/rand"

// RandN fills a new tensor of the given shape with pseudo-normal values of
// the given standard deviation, drawn from rng. Deterministic for a fixed
// seed, which keeps every test and experiment reproducible.
func RandN(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// RandUniform fills a new tensor with values uniform in [lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*span)
	}
	return t
}

// Full returns a new tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a new tensor of ones, handy for layer-norm gains.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Eye returns the n×n identity matrix.
func Eye(n int) *Tensor {
	t := New(n, n)
	for i := 0; i < n; i++ {
		t.data[i*n+i] = 1
	}
	return t
}
