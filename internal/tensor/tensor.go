// Package tensor implements the dense float32 tensor substrate used by the
// functional LM-Offload runtime: row-major n-dimensional arrays with the
// operations a transformer forward pass needs (blocked parallel matrix
// multiplication, softmax, layer normalization, GELU, concatenation), all
// executed on the threadpool so intra-op parallelism is an explicit input.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 array. Data is shared on slicing
// operations that say so and copied otherwise; each method documents which.
type Tensor struct {
	data  []float32
	shape []int
}

// New allocates a zero tensor with the given shape. Every dimension must be
// positive.
func New(shape ...int) *Tensor {
	n := checkedNumel(shape)
	return &Tensor{data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor of the given shape without copying.
// len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkedNumel(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d != shape product %d", len(data), n))
	}
	return &Tensor{data: data, shape: append([]int(nil), shape...)}
}

func checkedNumel(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		if n > math.MaxInt/d {
			panic(fmt.Sprintf("tensor: shape %v overflows element count", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the dimensions. The returned slice must not be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Numel returns the total element count.
func (t *Tensor) Numel() int { return len(t.data) }

// Data exposes the backing slice (row-major). Mutations are visible to every
// view sharing it.
func (t *Tensor) Data() []float32 { return t.data }

// Bytes returns the in-memory size assuming 4-byte elements.
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %d (size %d)", x, i, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	data := make([]float32, len(t.data))
	copy(data, t.data)
	return &Tensor{data: data, shape: append([]int(nil), t.shape...)}
}

// Reshape returns a view with a new shape sharing the same data. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkedNumel(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{data: t.data, shape: append([]int(nil), shape...)}
}

// Row returns row i of a rank-2 tensor as a shared view of length cols.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.shape)))
	}
	cols := t.shape[1]
	return t.data[i*cols : (i+1)*cols]
}

// SliceRows returns rows [lo, hi) of a rank-2 tensor as a shared view.
func (t *Tensor) SliceRows(lo, hi int) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SliceRows on rank-%d tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	if lo < 0 || hi > rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows[%d:%d] out of range for %d rows", lo, hi, rows))
	}
	return &Tensor{data: t.data[lo*cols : hi*cols], shape: []int{hi - lo, cols}}
}

// Equal reports element-wise equality of shape and data.
func (t *Tensor) Equal(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between two
// same-shaped tensors, used by quantization round-trip tests.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if len(t.data) != len(o.data) {
		panic("tensor: MaxAbsDiff on different sizes")
	}
	var m float64
	for i := range t.data {
		d := math.Abs(float64(t.data[i] - o.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// String formats small tensors for debugging.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%d elems]", t.shape, len(t.data))
}
