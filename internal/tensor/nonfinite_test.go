package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/threadpool"
)

// naiveMatMul is the skip-free reference: every product is formed and added
// in ascending p order, so IEEE-754 non-finite propagation is exact.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float32
			for p := 0; p < k; p++ {
				sum += a.data[i*k+p] * b.data[p*n+j]
			}
			c.data[i*n+j] = sum
		}
	}
	return c
}

// bitsEqual compares tensors bit-for-bit — so -0 != +0 and Inf signs count —
// except that any NaN matches any NaN: hardware NaN payload/sign propagation
// depends on the operand order the compiler happens to emit (x86 addss
// returns its first operand's payload), which no kernel contract can pin.
func bitsEqual(t *testing.T, label string, got, want *Tensor) {
	t.Helper()
	for i, w := range want.data {
		g := got.data[i]
		if math.IsNaN(float64(w)) && math.IsNaN(float64(g)) {
			continue
		}
		if math.Float32bits(g) != math.Float32bits(w) {
			t.Fatalf("%s: element %d = %x (%g), want %x (%g)",
				label, i, math.Float32bits(g), g, math.Float32bits(w), w)
		}
	}
}

// TestMatMulZeroTimesNonFinite pins the zero-skip bugfix: a zero in A must
// not short-circuit a NaN or Inf in B — IEEE 754 says 0·NaN and 0·Inf are
// NaN, and the kernel must propagate that exactly like the naive loop.
func TestMatMulZeroTimesNonFinite(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	cases := []struct {
		name string
		a, b []float32
		m, k int
		n    int
	}{
		{"0xNaN", []float32{0}, []float32{nan}, 1, 1, 1},
		{"0xInf", []float32{0}, []float32{inf}, 1, 1, 1},
		{"0x-Inf", []float32{0}, []float32{float32(math.Inf(-1))}, 1, 1, 1},
		{"negzero-x-NaN", []float32{float32(math.Copysign(0, -1))}, []float32{nan}, 1, 1, 1},
		{"mixed-row", []float32{0, 2, 0}, []float32{nan, 1, 3, 1, inf, 1}, 1, 3, 2},
		{"finite-col-untouched", []float32{0, 1}, []float32{nan, 5, 2, 7}, 1, 2, 2},
	}
	pool := threadpool.MustNew(4)
	for _, tc := range cases {
		a := FromSlice(tc.a, tc.m, tc.k)
		b := FromSlice(tc.b, tc.k, tc.n)
		want := naiveMatMul(a, b)
		bitsEqual(t, tc.name+"/serial", MatMul(nil, 1, a, b), want)
		bitsEqual(t, tc.name+"/parallel", MatMul(pool, 4, a, b), want)
	}
	// Direct regression for the original bug: a zero must yield NaN when the
	// paired B element is NaN.
	got := MatMul(nil, 1, FromSlice([]float32{0}, 1, 1), FromSlice([]float32{nan}, 1, 1))
	if !math.IsNaN(float64(got.data[0])) {
		t.Fatalf("0 x NaN = %g, want NaN", got.data[0])
	}
}

// TestMatMulSkipPreservesSignedZero: the skip path can only be taken when B's
// row is finite, and then skipping a ±0 product is bitwise identical to
// adding it — because the accumulator starts at +0 and +0 + ±0 = +0, while a
// nonzero accumulator absorbs ±0 unchanged.
func TestMatMulSkipPreservesSignedZero(t *testing.T) {
	negz := float32(math.Copysign(0, -1))
	pool := threadpool.MustNew(2)
	cases := []struct {
		a, b []float32
		m, k int
		n    int
	}{
		// 0 · (-5): naive forms -0 then adds to +0 → +0; skip keeps +0.
		{[]float32{0}, []float32{-5}, 1, 1, 1},
		// -0 · 5 = -0 added to +0 → +0.
		{[]float32{negz}, []float32{5}, 1, 1, 1},
		// A nonzero sum followed by skipped zeros stays put.
		{[]float32{1, 0, negz}, []float32{-2, 3, -7}, 1, 3, 1},
	}
	for _, tc := range cases {
		a := FromSlice(tc.a, tc.m, tc.k)
		b := FromSlice(tc.b, tc.k, tc.n)
		want := naiveMatMul(a, b)
		bitsEqual(t, "serial", MatMul(nil, 1, a, b), want)
		bitsEqual(t, "parallel", MatMul(pool, 2, a, b), want)
	}
}

// injectSpecials overwrites random positions with IEEE specials.
func injectSpecials(rng *rand.Rand, xs []float32, frac float64) {
	specials := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)),
	}
	for i := range xs {
		if rng.Float64() < frac {
			xs[i] = specials[rng.Intn(len(specials))]
		}
	}
}

// TestPropertyMatMulNonFiniteEquivalence: for random shapes seeded with
// NaN/±Inf/±0, serial and parallel kernels are bit-identical to the
// skip-free naive reference.
func TestPropertyMatMulNonFiniteEquivalence(t *testing.T) {
	pool := threadpool.MustNew(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(24), 1+rng.Intn(24)
		a, b := RandN(rng, 2, m, k), RandN(rng, 2, k, n)
		injectSpecials(rng, a.data, 0.3)
		injectSpecials(rng, b.data, 0.15)
		want := naiveMatMul(a, b)
		for _, w := range []int{1, 4} {
			got := MatMul(pool, w, a, b)
			for i := range want.data {
				wv, gv := want.data[i], got.data[i]
				if math.IsNaN(float64(wv)) && math.IsNaN(float64(gv)) {
					continue
				}
				if math.Float32bits(gv) != math.Float32bits(wv) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// FuzzMatMulNonFinite drives the same equivalence from fuzzed bytes: each
// byte pair selects an element value, including the IEEE specials.
func FuzzMatMulNonFinite(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(2))
	f.Add(int64(99), uint8(1), uint8(1), uint8(1))
	pool := threadpool.MustNew(3)
	f.Fuzz(func(t *testing.T, seed int64, mr, kr, nr uint8) {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+int(mr%4), 1+int(kr%16), 1+int(nr%16)
		a, b := RandN(rng, 1, m, k), RandN(rng, 1, k, n)
		injectSpecials(rng, a.data, 0.4)
		injectSpecials(rng, b.data, 0.25)
		want := naiveMatMul(a, b)
		bitsEqual(t, "serial", MatMul(nil, 1, a, b), want)
		bitsEqual(t, "parallel", MatMul(pool, 3, a, b), want)
	})
}
