package tensor

import (
	"math"
	"testing"
)

// FuzzF16RoundTrip checks the half-precision conversion invariants on
// arbitrary float32 bit patterns: finite inputs inside the representable
// range convert within half a ULP; Inf/NaN classes are preserved; every
// conversion output survives a second round trip bit-exactly.
func FuzzF16RoundTrip(f *testing.F) {
	f.Add(uint32(0))
	f.Add(math.Float32bits(1.0))
	f.Add(math.Float32bits(-65504))
	f.Add(math.Float32bits(6e-8))
	f.Add(uint32(0x7f800001)) // NaN
	f.Fuzz(func(t *testing.T, bits uint32) {
		x := math.Float32frombits(bits)
		h := F16FromFloat32(x)
		back := h.Float32()
		switch {
		case math.IsNaN(float64(x)):
			if !math.IsNaN(float64(back)) {
				t.Fatalf("NaN lost: %#08x -> %#04x -> %g", bits, h, back)
			}
		case math.IsInf(float64(x), 0) || x > 65504 || x < -65504:
			if !math.IsInf(float64(back), 0) && math.Abs(float64(back)) < 65504 {
				t.Fatalf("overflow mishandled: %g -> %g", x, back)
			}
		default:
			rel := math.Abs(float64(back) - float64(x))
			bound := math.Max(math.Abs(float64(x))*math.Pow(2, -11), 3.0e-8)
			if rel > bound {
				t.Fatalf("error %g exceeds bound %g for %g", rel, bound, x)
			}
		}
		// Idempotence: the half lattice is a fixed point.
		again := F16FromFloat32(back)
		if !math.IsNaN(float64(back)) && again != h {
			t.Fatalf("not idempotent: %#04x -> %g -> %#04x", h, back, again)
		}
	})
}
