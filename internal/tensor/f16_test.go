package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits F16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // max finite half
		{float32(math.Inf(1)), 0x7c00},  // +Inf
		{float32(math.Inf(-1)), 0xfc00}, // -Inf
		{5.9604645e-08, 0x0001},         // smallest subnormal
		{0.000060975552, 0x03ff},        // largest subnormal
	}
	for _, c := range cases {
		if got := F16FromFloat32(c.f); got != c.bits {
			t.Errorf("F16FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if back := c.bits.Float32(); back != c.f {
			t.Errorf("F16(%#04x).Float32() = %g, want %g", c.bits, back, c.f)
		}
	}
}

func TestF16Overflow(t *testing.T) {
	if got := F16FromFloat32(70000); got != 0x7c00 {
		t.Errorf("70000 -> %#04x, want +Inf", got)
	}
	if got := F16FromFloat32(-70000); got != 0xfc00 {
		t.Errorf("-70000 -> %#04x, want -Inf", got)
	}
}

func TestF16Underflow(t *testing.T) {
	if got := F16FromFloat32(1e-10); got != 0 {
		t.Errorf("1e-10 -> %#04x, want +0", got)
	}
	if got := F16FromFloat32(-1e-10); got != 0x8000 {
		t.Errorf("-1e-10 -> %#04x, want -0", got)
	}
}

func TestF16NaN(t *testing.T) {
	h := F16FromFloat32(float32(math.NaN()))
	if !math.IsNaN(float64(h.Float32())) {
		t.Errorf("NaN round trip = %g", h.Float32())
	}
}

func TestF16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 lies exactly between 1.0 and the next half (1 + 2^-10);
	// round-to-even picks 1.0.
	x := float32(1) + float32(math.Pow(2, -11))
	if got := F16FromFloat32(x).Float32(); got != 1 {
		t.Errorf("midpoint rounded to %g, want 1 (even)", got)
	}
	// 1 + 3*2^-11 lies between 1+2^-10 and 1+2^-9; even is 1+2^-9.
	y := float32(1) + 3*float32(math.Pow(2, -11))
	want := float32(1) + float32(math.Pow(2, -9))
	if got := F16FromFloat32(y).Float32(); got != want {
		t.Errorf("midpoint rounded to %g, want %g (even)", got, want)
	}
}

// Property: every exact F16 value survives a float32 round trip bit-exactly.
func TestPropertyF16Exhaustive(t *testing.T) {
	for bits := 0; bits <= 0xffff; bits++ {
		h := F16(bits)
		f := h.Float32()
		if math.IsNaN(float64(f)) {
			if !math.IsNaN(float64(F16FromFloat32(f).Float32())) {
				t.Fatalf("NaN %#04x lost", bits)
			}
			continue
		}
		if got := F16FromFloat32(f); got != h {
			// -0 vs +0 must still be preserved by our conversion.
			t.Fatalf("F16 %#04x -> %g -> %#04x", bits, f, got)
		}
	}
}

// Property: conversion error is bounded by half a ULP of the half format.
func TestPropertyF16ErrorBound(t *testing.T) {
	f := func(raw float32) bool {
		if math.IsNaN(float64(raw)) || math.IsInf(float64(raw), 0) {
			return true
		}
		if raw > 65504 || raw < -65504 {
			return true // overflow maps to Inf by design
		}
		got := float64(F16FromFloat32(raw).Float32())
		diff := math.Abs(got - float64(raw))
		// Relative bound 2^-11 for normals, absolute bound for subnormals.
		bound := math.Max(math.Abs(float64(raw))*math.Pow(2, -11), 5.97e-8/2*1.001)
		return diff <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestF16SliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(rng, 1, 5, 7)
	s := ToF16(x)
	if s.Bytes() != 70 || s.Numel() != 35 {
		t.Errorf("packed geometry: %d bytes, %d elems", s.Bytes(), s.Numel())
	}
	y := s.ToFloat32()
	if y.Dim(0) != 5 || y.Dim(1) != 7 {
		t.Fatalf("shape lost: %v", y.Shape())
	}
	if d := x.MaxAbsDiff(y); d > 0.01 {
		t.Errorf("round-trip error %g too large for unit-variance data", d)
	}
	// The fp16 lattice is idempotent.
	z := ToF16(y).ToFloat32()
	if d := y.MaxAbsDiff(z); d != 0 {
		t.Errorf("second round trip changed values by %g", d)
	}
}

func TestRoundTripF16InPlace(t *testing.T) {
	x := FromSlice([]float32{1.0000001, 2, 3.14159}, 3)
	want := ToF16(x).ToFloat32()
	RoundTripF16(x)
	if !x.Equal(want) {
		t.Errorf("RoundTripF16 = %v, want %v", x.Data(), want.Data())
	}
}
