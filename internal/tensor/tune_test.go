package tensor

import (
	"testing"

	"repro/internal/cachesim"
)

func TestCandidateTilesClipAndDedup(t *testing.T) {
	// A tiny problem degenerates to the single full-matrix tile.
	small := candidateTiles(8, 8)
	if len(small) != 1 || small[0] != (Tile{KC: 8, NC: 8}) {
		t.Fatalf("candidateTiles(8,8) = %v, want [{8 8}]", small)
	}
	// A large problem keeps the full grid.
	big := candidateTiles(4096, 4096)
	if len(big) != 20 {
		t.Fatalf("candidateTiles(4096,4096) has %d candidates, want 20", len(big))
	}
	seen := map[Tile]bool{}
	for _, c := range big {
		if c.KC < 1 || c.NC < 1 || c.KC > 4096 || c.NC > 4096 {
			t.Fatalf("candidate %v out of range", c)
		}
		if seen[c] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c] = true
	}
}

func TestTileForValidAndMemoized(t *testing.T) {
	a := TileFor(512, 768)
	if a.KC < 1 || a.KC > 512 || a.NC < 1 || a.NC > 768 {
		t.Fatalf("TileFor(512,768) = %v out of bounds", a)
	}
	if b := TileFor(512, 768); b != a {
		t.Fatalf("memoized TileFor changed: %v vs %v", b, a)
	}
	// Degenerate shapes are clamped, never panic.
	if d := TileFor(0, -3); d.KC != 1 || d.NC != 1 {
		t.Fatalf("TileFor(0,-3) = %v, want {1 1}", d)
	}
}

func TestTileSelectionIsDeterministic(t *testing.T) {
	g := LLC()
	x := searchTile(513, 640, g)
	if y := searchTile(513, 640, g); y != x {
		t.Fatalf("searchTile not deterministic: %v vs %v", y, x)
	}
}

// TestSetLLCInvalidatesMemo: retargeting the tuner must drop memoized
// choices, so TileFor re-searches under the new geometry — the replay works
// against both the sliced (non-power-of-two set count) default and a tiny
// power-of-two cache.
func TestSetLLCInvalidatesMemo(t *testing.T) {
	defer SetLLC(DefaultLLC)

	SetLLC(DefaultLLC)
	TileFor(640, 640) // populate the memo under the default geometry

	tiny := LLCGeometry{SizeBytes: 16 << 10, Ways: 2, LineBytes: 64}
	SetLLC(tiny)
	if got := LLC(); got != tiny {
		t.Fatalf("LLC() = %+v after SetLLC(tiny)", got)
	}
	// Whatever TileFor returns now must be the fresh tiny-geometry search
	// result, not a stale memo entry.
	if got, want := TileFor(640, 640), searchTile(640, 640, tiny); got != want {
		t.Fatalf("TileFor after SetLLC = %v, want fresh search %v", got, want)
	}
}

// TestSearchTileFallsBackOnBadGeometry: an invalid cache geometry (rejected
// by cachesim.New) must yield the fixed fallback tile instead of panicking.
func TestSearchTileFallsBackOnBadGeometry(t *testing.T) {
	bad := LLCGeometry{SizeBytes: 100, Ways: 3, LineBytes: 64} // 100/(3*64) < 1 set
	got := searchTile(1000, 1000, bad)
	want := Tile{KC: 128, NC: 128}
	if got != want {
		t.Fatalf("fallback tile = %v, want %v", got, want)
	}
	if s := searchTile(64, 50, bad); s != (Tile{KC: 64, NC: 50}) {
		t.Fatalf("clipped fallback = %v, want {64 50}", s)
	}
}

// TestReplayCountsTraffic: the replay must actually generate cache traffic,
// and a full-matrix tile on a problem that fits in cache must miss only on
// compulsory (first-touch) lines — sanity that the model is wired to the
// simulator, not returning zeros.
func TestReplayCountsTraffic(t *testing.T) {
	c, err := cachesim.New(1<<20, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	s := replayMatMulQ(c, 64, 64, Tile{KC: 64, NC: 64})
	if s.Loads == 0 || s.Stores == 0 {
		t.Fatalf("replay generated no traffic: %+v", s)
	}
	if s.LoadMisses == 0 {
		t.Fatalf("replay has no compulsory misses: %+v", s)
	}
}
