package tensor

import (
	"fmt"
	"math"

	"repro/internal/threadpool"
)

// Add computes a + b element-wise into a new tensor. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Tensor) {
	checkSameShape("AddInPlace", a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
}

// AddBias adds a length-n bias vector to every row of an m×n tensor in place.
func AddBias(t *Tensor, bias *Tensor) {
	if t.Rank() != 2 || bias.Rank() != 1 || bias.Dim(0) != t.Dim(1) {
		panic(fmt.Sprintf("tensor: AddBias shapes %v and %v incompatible", t.Shape(), bias.Shape()))
	}
	m, n := t.Dim(0), t.Dim(1)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j := range row {
			row[j] += bias.data[j]
		}
	}
}

// Scale multiplies every element by s in place and returns t for chaining.
func Scale(t *Tensor, s float32) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

func checkSameShape(op string, a, b *Tensor) {
	if len(a.shape) != len(b.shape) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
		}
	}
}

// SoftmaxRows applies a numerically stable softmax to each row of an m×n
// tensor in place, parallelized over rows.
func SoftmaxRows(pool *threadpool.Pool, width int, t *Tensor) {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows on rank-%d tensor", t.Rank()))
	}
	m, n := t.Dim(0), t.Dim(1)
	kernel := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.data[i*n : (i+1)*n]
			maxV := row[0]
			for _, v := range row[1:] {
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for j, v := range row {
				e := math.Exp(float64(v - maxV))
				row[j] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			for j := range row {
				row[j] *= inv
			}
		}
	}
	if pool == nil || width <= 1 {
		kernel(0, m)
		return
	}
	pool.ParallelRange(m, width, kernel)
}

// LayerNormRows normalizes each row of an m×n tensor to zero mean and unit
// variance, then applies elementwise gain and (optional) bias, in place.
func LayerNormRows(t *Tensor, gain, bias *Tensor, eps float32) {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: LayerNormRows on rank-%d tensor", t.Rank()))
	}
	m, n := t.Dim(0), t.Dim(1)
	if gain.Rank() != 1 || gain.Dim(0) != n {
		panic(fmt.Sprintf("tensor: LayerNormRows gain shape %v, want [%d]", gain.Shape(), n))
	}
	if bias != nil && (bias.Rank() != 1 || bias.Dim(0) != n) {
		panic(fmt.Sprintf("tensor: LayerNormRows bias shape %v, want [%d]", bias.Shape(), n))
	}
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(n)
		var variance float64
		for _, v := range row {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(n)
		inv := float32(1 / math.Sqrt(variance+float64(eps)))
		for j := range row {
			v := (row[j] - float32(mean)) * inv * gain.data[j]
			if bias != nil {
				v += bias.data[j]
			}
			row[j] = v
		}
	}
}

// GELU applies the tanh-approximated Gaussian error linear unit in place,
// the MLP activation used by OPT and LLaMA-family models.
func GELU(t *Tensor) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range t.data {
		x := float64(v)
		t.data[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
}

// ReLU applies max(0, x) in place.
func ReLU(t *Tensor) {
	for i, v := range t.data {
		if v < 0 {
			t.data[i] = 0
		}
	}
}

// ConcatRows stacks two rank-2 tensors with equal column counts vertically
// into a new tensor — the KV-cache append operation.
func ConcatRows(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(1) {
		panic(fmt.Sprintf("tensor: ConcatRows shapes %v and %v incompatible", a.Shape(), b.Shape()))
	}
	out := New(a.Dim(0)+b.Dim(0), a.Dim(1))
	copy(out.data, a.data)
	copy(out.data[len(a.data):], b.data)
	return out
}

// ArgmaxRows returns, for each row of an m×n tensor, the column index of the
// maximum value — greedy decoding over logits.
func ArgmaxRows(t *Tensor) []int {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: ArgmaxRows on rank-%d tensor", t.Rank()))
	}
	m, n := t.Dim(0), t.Dim(1)
	out := make([]int, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// Mean returns the arithmetic mean of all elements.
func Mean(t *Tensor) float64 {
	var sum float64
	for _, v := range t.data {
		sum += float64(v)
	}
	return sum / float64(len(t.data))
}

// L2Norm returns the Euclidean norm of all elements.
func L2Norm(t *Tensor) float64 {
	var sum float64
	for _, v := range t.data {
		sum += float64(v) * float64(v)
	}
	return math.Sqrt(sum)
}
