package tensor

// Tile tuning for the fused quantized-domain kernels: instead of measuring
// candidate tile shapes on the machine, MatMulQ's KC×NC blocking is chosen
// by replaying the kernel's memory-access stream against the modeled LLC in
// internal/cachesim (the Table 5 cache model) and picking the candidate with
// the fewest misses. Selection is deterministic, cheap (one replay per
// candidate per distinct (k, n) problem shape, memoized), and retargetable:
// SetLLC points the tuner at a different cache geometry, including the
// non-power-of-two set counts of sliced server LLCs.

import (
	"sync"

	"repro/internal/cachesim"
)

// Tile is a loop-blocking choice for MatMulQ: panels of KC packed rows by
// NC columns are dequantized into scratch and streamed against A.
type Tile struct {
	KC int // rows of B dequantized per panel
	NC int // columns per panel (one worker's column-tile width)
}

// LLCGeometry describes the last-level cache the tuner replays against.
type LLCGeometry struct {
	SizeBytes int64
	Ways      int
	LineBytes int64
}

// DefaultLLC models a sliced server LLC: 33 MB, 12-way, 64-byte lines —
// 45056 sets, not a power of two, which is exactly why cachesim supports
// modulo set indexing.
var DefaultLLC = LLCGeometry{SizeBytes: 33 << 20, Ways: 12, LineBytes: 64}

var (
	llcMu  sync.RWMutex
	llcGeo = DefaultLLC

	tileMemo sync.Map // tileKey -> Tile
)

type tileKey struct{ k, n int }

// SetLLC retargets the tuner at a different cache geometry (e.g. from a CLI
// flag) and drops previously memoized tile choices.
func SetLLC(g LLCGeometry) {
	llcMu.Lock()
	llcGeo = g
	llcMu.Unlock()
	tileMemo.Range(func(key, _ any) bool {
		tileMemo.Delete(key)
		return true
	})
}

// LLC returns the geometry the tuner currently replays against.
func LLC() LLCGeometry {
	llcMu.RLock()
	defer llcMu.RUnlock()
	return llcGeo
}

// TileFor returns the tile the tuner selects for a k×n packed operand,
// memoized per problem shape.
func TileFor(k, n int) Tile {
	if k < 1 {
		k = 1
	}
	if n < 1 {
		n = 1
	}
	key := tileKey{k, n}
	if v, ok := tileMemo.Load(key); ok {
		return v.(Tile)
	}
	t := searchTile(k, n, LLC())
	tileMemo.Store(key, t)
	return t
}

// candidateTiles enumerates the clipped KC×NC grid. Candidates are clipped
// to the problem and deduplicated, so tiny problems degenerate to a single
// full-matrix "tile".
func candidateTiles(k, n int) []Tile {
	kcs := []int{32, 64, 128, 256}
	ncs := []int{32, 64, 128, 256, 512}
	seen := map[Tile]bool{}
	var out []Tile
	for _, kc := range kcs {
		if kc > k {
			kc = k
		}
		for _, nc := range ncs {
			if nc > n {
				nc = n
			}
			t := Tile{KC: kc, NC: nc}
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// searchTile replays each candidate's access stream against a fresh modeled
// cache and returns the one with the fewest total misses; ties break toward
// the earlier (smaller) candidate so selection is deterministic. If the
// geometry is rejected by cachesim, it falls back to a fixed mid-grid tile.
func searchTile(k, n int, geo LLCGeometry) Tile {
	cands := candidateTiles(k, n)
	best := cands[0]
	bestMiss := int64(-1)
	for _, t := range cands {
		c, err := cachesim.New(geo.SizeBytes, geo.Ways, geo.LineBytes)
		if err != nil {
			return Tile{KC: min2(128, k), NC: min2(128, n)}
		}
		s := replayMatMulQ(c, k, n, t)
		miss := s.LoadMisses + s.StoreMisses
		if bestMiss < 0 || miss < bestMiss {
			best, bestMiss = t, miss
		}
	}
	return best
}

// replayMatMulQ models MatMulQ's memory traffic for one worker at line
// granularity: per (column tile, row tile) it reads the packed codes for the
// panel, writes then re-reads the scratch panel, and streams A rows against
// it while reading and writing the C tile. A representative A height of 8
// rows stands in for the (shape-independent) activation operand. Address
// regions are laid out disjointly, as the real allocations are.
func replayMatMulQ(c *cachesim.Cache, k, n int, t Tile) cachesim.Stats {
	const (
		repM     = 8
		elem     = 4 // float32 bytes
		codeBits = 4 // representative packed width
	)
	line := int64(64)
	aBase := int64(0)
	bBase := aBase + int64(repM*k*elem)
	panelBase := bBase + int64(k*n*codeBits/8+64)
	cBase := panelBase + int64(t.KC*t.NC*elem+64)

	touch := func(base, lo, hi int64, write bool) {
		for a := lo &^ (line - 1); a < hi; a += line {
			c.Access(uint64(base+a), write)
		}
	}
	for jlo := 0; jlo < n; jlo += t.NC {
		jhi := jlo + t.NC
		if jhi > n {
			jhi = n
		}
		tw := jhi - jlo
		for plo := 0; plo < k; plo += t.KC {
			phi := plo + t.KC
			if phi > k {
				phi = k
			}
			for p := plo; p < phi; p++ {
				// Packed codes for this panel row segment, then the scratch
				// panel write.
				lo := int64((p*n + jlo) * codeBits / 8)
				touch(bBase, lo, lo+int64(tw*codeBits/8), false)
				po := int64((p - plo) * tw * elem)
				touch(panelBase, po, po+int64(tw*elem), true)
			}
			for i := 0; i < repM; i++ {
				alo := int64((i*k + plo) * elem)
				touch(aBase, alo, alo+int64((phi-plo)*elem), false)
				for p := plo; p < phi; p++ {
					po := int64((p - plo) * tw * elem)
					touch(panelBase, po, po+int64(tw*elem), false)
					clo := int64((i*n + jlo) * elem)
					touch(cBase, clo, clo+int64(tw*elem), false)
					touch(cBase, clo, clo+int64(tw*elem), true)
				}
			}
		}
	}
	return c.Stats()
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
