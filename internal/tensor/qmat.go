package tensor

import (
	"fmt"

	"repro/internal/threadpool"
)

// QMat is a read-only view of a rank-2 matrix in the packed group-wise
// quantized form of internal/quant (Eq. 10/11): bit-packed codes over the
// flat row-major element stream, with per-group min and scale. It lives in
// this package — rather than quant, which imports tensor — so the fused
// kernels below can consume packed blocks directly without an import cycle.
//
// The fused kernels dequantize per cache-blocked tile into a small scratch
// panel instead of materializing the whole float32 matrix, and are
// bit-identical to dequantize-then-MatMul on the same packed payload: they
// use the exact Eq. 11 arithmetic per element, accumulate each output in a
// single register/slot in ascending inner-dimension order, and preserve the
// reference kernels' zero-skip semantics (see skipFlags).
type QMat struct {
	Packed    []byte    // bit-packed codes, Bits per element, flat row-major
	Mins      []float32 // per-group minimum
	Scales    []float32 // per-group range (max - min); 0 collapses to Mins
	Bits      int       // code width in [1, 8]
	GroupSize int       // elements per group along the flat stream
	Rows      int       // logical row count
	Cols      int       // logical column count
}

func (q QMat) check() {
	if q.Bits < 1 || q.Bits > 8 || q.GroupSize <= 0 || q.Rows < 0 || q.Cols < 0 {
		panic(fmt.Sprintf("tensor: invalid QMat geometry bits=%d group=%d shape=[%d %d]",
			q.Bits, q.GroupSize, q.Rows, q.Cols))
	}
}

// dequantFlat reconstructs flat elements [start, start+count) of the packed
// stream into dst[:count], walking group chunks so every value uses its own
// group's parameters. The arithmetic is exactly quant.Dequantize's Eq. 11:
// float32(code)/levels*scale + min, with a degenerate (zero-range) group
// collapsing to its minimum — bit-for-bit, so fused kernels reproduce the
// dequantize-then-matmul reference exactly.
func (q QMat) dequantFlat(dst []float32, start, count int) {
	levels := float32(int(1)<<q.Bits - 1)
	pos, end, di := start, start+count, 0
	for pos < end {
		g := pos / q.GroupSize
		chunk := (g + 1) * q.GroupSize
		if chunk > end {
			chunk = end
		}
		mn, scale := q.Mins[g], q.Scales[g]
		n := chunk - pos
		switch {
		case scale == 0:
			for i := 0; i < n; i++ {
				dst[di+i] = mn
			}
		case q.Bits == 4:
			// Nibble fast path for the FlexGen default: codes never straddle
			// a byte boundary.
			for i := 0; i < n; i++ {
				bp := (pos + i) * 4
				c := (q.Packed[bp>>3] >> (bp & 7)) & 0xF
				dst[di+i] = float32(c)/levels*scale + mn
			}
		case q.Bits == 8:
			for i := 0; i < n; i++ {
				dst[di+i] = float32(q.Packed[pos+i])/levels*scale + mn
			}
		default:
			// General path, mirroring quant.unpackBits: a code may straddle
			// two bytes.
			mask := uint16(1)<<q.Bits - 1
			for i := 0; i < n; i++ {
				bitPos := (pos + i) * q.Bits
				byteIdx := bitPos >> 3
				shift := bitPos & 7
				v := uint16(q.Packed[byteIdx]) >> shift
				if shift+q.Bits > 8 && byteIdx+1 < len(q.Packed) {
					v |= uint16(q.Packed[byteIdx+1]) << (8 - shift)
				}
				dst[di+i] = float32(uint8(v&mask))/levels*scale + mn
			}
		}
		di += n
		pos = chunk
	}
}

// MatMulQ computes C = A·B where B is packed (k×n). It is bit-identical to
// MatMul(pool, width, a, Dequantize(b)) but never materializes the float32
// B: each worker dequantizes one KC×NC tile at a time into a scratch panel
// (tile shape chosen by the cachesim-driven tuner, see TileFor) and streams
// A against it. Workers split the column tiles, so their C segments are
// disjoint and the parallel result matches the serial one exactly.
func MatMulQ(pool *threadpool.Pool, width int, a *Tensor, b QMat) *Tensor {
	b.check()
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulQ on rank %d, want 2", a.Rank()))
	}
	m, k := a.Dim(0), a.Dim(1)
	if b.Rows != k {
		panic(fmt.Sprintf("tensor: MatMulQ inner dimensions %d and %d differ", k, b.Rows))
	}
	n := b.Cols
	c := New(m, n)
	tile := TileFor(k, n)
	numJT := (n + tile.NC - 1) / tile.NC
	az := hasZero(a.data)
	kernel := func(lo, hi int) {
		panel := make([]float32, tile.KC*tile.NC)
		var flags []bool
		if az {
			flags = make([]bool, tile.KC)
		}
		for jt := lo; jt < hi; jt++ {
			jlo := jt * tile.NC
			jhi := jlo + tile.NC
			if jhi > n {
				jhi = n
			}
			tw := jhi - jlo
			for plo := 0; plo < k; plo += tile.KC {
				phi := plo + tile.KC
				if phi > k {
					phi = k
				}
				for p := plo; p < phi; p++ {
					row := panel[(p-plo)*tw : (p-plo+1)*tw]
					b.dequantFlat(row, p*n+jlo, tw)
					if az {
						flags[p-plo] = hasNonFinite(row)
					}
				}
				for i := 0; i < m; i++ {
					arow := a.data[i*k+plo : i*k+phi]
					crow := c.data[i*n+jlo : i*n+jhi]
					for pp, av := range arow {
						// Same semantics as matMulInto's skip: ±0 products
						// against a finite panel row are bit-level no-ops on
						// the accumulator; non-finite rows must propagate.
						if av == 0 && (flags == nil || !flags[pp]) {
							continue
						}
						brow := panel[pp*tw : (pp+1)*tw]
						for j, bv := range brow {
							crow[j] += av * bv
						}
					}
				}
			}
		}
	}
	if pool == nil || width <= 1 {
		kernel(0, numJT)
		return c
	}
	pool.ParallelRange(numJT, width, kernel)
	return c
}

// MatMulQT computes C = A·Bᵀ where B is packed (n×k) — the attention-score
// layout with both operands stored row-major per token. Bit-identical to
// MatMulT against the dequantized B.
func MatMulQT(pool *threadpool.Pool, width int, a *Tensor, b QMat) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulQT on rank %d, want 2", a.Rank()))
	}
	if b.Cols != a.Dim(1) {
		panic(fmt.Sprintf("tensor: MatMulQT inner dimensions %d and %d differ", a.Dim(1), b.Cols))
	}
	c := New(a.Dim(0), b.Rows)
	MatMulQTSegInto(pool, width, a, b, 0, c, 0)
	return c
}

// MatMulQTSegInto computes the score segment C[i, colBase+j] = A_i · B_j
// over the column window [off, off+w) of packed B's rows, where w is A's
// width — the per-head Q·Kᵀ against one packed KV chunk, written into its
// column range of the full score matrix. Each worker dequantizes its B-row
// segments into a w-length scratch; the dot product accumulates ascending
// in a single register exactly like MatMulT.
func MatMulQTSegInto(pool *threadpool.Pool, width int, a *Tensor, b QMat, off int, c *Tensor, colBase int) {
	b.check()
	m, w := a.Dim(0), a.Dim(1)
	if off < 0 || off+w > b.Cols {
		panic(fmt.Sprintf("tensor: MatMulQTSegInto window [%d,%d) outside %d columns", off, off+w, b.Cols))
	}
	cn := c.Dim(1)
	if c.Dim(0) != m || colBase < 0 || colBase+b.Rows > cn {
		panic(fmt.Sprintf("tensor: MatMulQTSegInto destination %v cannot hold %d rows at column %d", c.Shape(), b.Rows, colBase))
	}
	kernel := func(lo, hi int) {
		buf := make([]float32, w)
		for j := lo; j < hi; j++ {
			b.dequantFlat(buf, j*b.Cols+off, w)
			for i := 0; i < m; i++ {
				arow := a.data[i*w : (i+1)*w]
				var sum float32
				for p := range arow {
					sum += arow[p] * buf[p]
				}
				c.data[i*cn+colBase+j] = sum
			}
		}
	}
	if pool == nil || width <= 1 {
		kernel(0, b.Rows)
		return
	}
	pool.ParallelRange(b.Rows, width, kernel)
}

// MatMulQSegAcc accumulates C += A[:, aLo:aLo+b.Rows] · B[:, off:off+w]
// where B is packed and w = C's width — the probs·V leg of fused attention:
// one packed KV chunk contributes its segment of the probability columns
// into the context accumulator. Calls over consecutive [aLo, aLo+rows)
// windows in ascending order reproduce the monolithic reference matmul
// bit-for-bit, because each C element still accumulates in ascending global
// p order with the reference's skip semantics.
func MatMulQSegAcc(pool *threadpool.Pool, width int, a *Tensor, aLo int, b QMat, off int, c *Tensor) {
	b.check()
	m, t := a.Dim(0), a.Dim(1)
	rows := b.Rows
	if aLo < 0 || aLo+rows > t {
		panic(fmt.Sprintf("tensor: MatMulQSegAcc window [%d,%d) outside %d columns", aLo, aLo+rows, t))
	}
	w := c.Dim(1)
	if c.Dim(0) != m || off < 0 || off+w > b.Cols {
		panic(fmt.Sprintf("tensor: MatMulQSegAcc segment [%d,%d) outside %d columns", off, off+w, b.Cols))
	}
	// The skip gate scans all of A (the full probability matrix), matching
	// the reference kernel's scan domain so the two paths skip identically.
	az := hasZero(a.data)
	kc := TileFor(rows, w).KC
	kernel := func(lo, hi int) {
		panel := make([]float32, kc*w)
		var flags []bool
		if az {
			flags = make([]bool, kc)
		}
		for plo := 0; plo < rows; plo += kc {
			phi := plo + kc
			if phi > rows {
				phi = rows
			}
			for p := plo; p < phi; p++ {
				row := panel[(p-plo)*w : (p-plo+1)*w]
				b.dequantFlat(row, p*b.Cols+off, w)
				if az {
					flags[p-plo] = hasNonFinite(row)
				}
			}
			for i := lo; i < hi; i++ {
				arow := a.data[i*t+aLo+plo : i*t+aLo+phi]
				crow := c.data[i*w : (i+1)*w]
				for pp, av := range arow {
					if av == 0 && (flags == nil || !flags[pp]) {
						continue
					}
					brow := panel[pp*w : (pp+1)*w]
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
		}
	}
	if pool == nil || width <= 1 {
		kernel(0, m)
		return
	}
	pool.ParallelRange(m, width, kernel)
}

// MatMulSegAcc is MatMulQSegAcc's dense counterpart: C += A[:, aLo:aLo+r]·B
// for a float32 B (r×w) — the raw (not yet offloaded) tail rows of a fused
// attention step. It shares the reference kernel's skip semantics, with the
// zero-scan over all of A.
func MatMulSegAcc(pool *threadpool.Pool, width int, a *Tensor, aLo int, b, c *Tensor) {
	m, t := a.Dim(0), a.Dim(1)
	rows, w := b.Dim(0), b.Dim(1)
	if aLo < 0 || aLo+rows > t {
		panic(fmt.Sprintf("tensor: MatMulSegAcc window [%d,%d) outside %d columns", aLo, aLo+rows, t))
	}
	if c.Dim(0) != m || c.Dim(1) != w {
		panic(fmt.Sprintf("tensor: MatMulSegAcc destination %v, want [%d %d]", c.Shape(), m, w))
	}
	var nf []bool
	if hasZero(a.data) {
		for p := 0; p < rows; p++ {
			if hasNonFinite(b.data[p*w : (p+1)*w]) {
				if nf == nil {
					nf = make([]bool, rows)
				}
				nf[p] = true
			}
		}
	}
	kernel := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*t+aLo : i*t+aLo+rows]
			crow := c.data[i*w : (i+1)*w]
			for p, av := range arow {
				if av == 0 && (nf == nil || !nf[p]) {
					continue
				}
				brow := b.data[p*w : (p+1)*w]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	if pool == nil || width <= 1 {
		kernel(0, m)
		return
	}
	pool.ParallelRange(m, width, kernel)
}
