// Fused-vs-reference exactness: every quantized-domain kernel must be
// bit-identical to dequantize-then-dense-matmul. The tests live in the
// external test package so they can build real packed operands with
// internal/quant (which imports tensor).
package tensor_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// qmatFor quantizes x and returns both the packed view and the exact
// dequantized reference tensor.
func qmatFor(t *testing.T, x *tensor.Tensor, cfg quant.Config) (tensor.QMat, *tensor.Tensor) {
	t.Helper()
	q, err := quant.Quantize(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := q.QMat()
	if err != nil {
		t.Fatal(err)
	}
	return qm, quant.Dequantize(q)
}

// identical asserts bit-for-bit equality, with NaN matching any NaN (payload
// propagation is compiler-scheduled; see nonfinite_test.go).
func identical(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("%s: size %d vs %d", label, len(gd), len(wd))
	}
	for i := range wd {
		if math.IsNaN(float64(wd[i])) && math.IsNaN(float64(gd[i])) {
			continue
		}
		if math.Float32bits(gd[i]) != math.Float32bits(wd[i]) {
			t.Fatalf("%s: element %d = %g (bits %x), want %g (bits %x)",
				label, i, gd[i], math.Float32bits(gd[i]), wd[i], math.Float32bits(wd[i]))
		}
	}
}

func sliceColsT(t *tensor.Tensor, off, w int) *tensor.Tensor {
	rows, cols := t.Dim(0), t.Dim(1)
	out := tensor.New(rows, w)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), t.Data()[i*cols+off:i*cols+off+w])
	}
	return out
}

// exactnessGrid is the ISSUE's matrix: group sizes {16, 64, 100} (100 is not
// byte-aligned at 3 bits and forces padded tails) × A widths {1, 4}, at 3-,
// 4- and 8-bit codes.
var exactnessGrid = []struct {
	bits, group int
}{
	{3, 16}, {3, 100}, {4, 16}, {4, 64}, {4, 100}, {8, 64}, {8, 100},
}

func TestMatMulQMatchesDequantReference(t *testing.T) {
	pool := threadpool.MustNew(4)
	rng := rand.New(rand.NewSource(11))
	for _, g := range exactnessGrid {
		cfg := quant.Config{Bits: g.bits, GroupSize: g.group}
		// k×n chosen so k·n is not a multiple of the group size.
		b := tensor.RandN(rng, 1.3, 33, 29)
		qm, dq := qmatFor(t, b, cfg)
		for _, m := range []int{1, 4} {
			a := tensor.RandN(rng, 1.1, m, 33)
			want := tensor.MatMul(pool, 4, a, dq)
			for _, w := range []int{1, 4} {
				got := tensor.MatMulQ(pool, w, a, qm)
				identical(t, fmt.Sprintf("b%dg%d/MatMulQ", g.bits, g.group), got, want)
			}
		}
	}
}

func TestMatMulQTMatchesDequantReference(t *testing.T) {
	pool := threadpool.MustNew(4)
	rng := rand.New(rand.NewSource(12))
	for _, g := range exactnessGrid {
		cfg := quant.Config{Bits: g.bits, GroupSize: g.group}
		b := tensor.RandN(rng, 1.3, 31, 18) // packed [n, k]
		qm, dq := qmatFor(t, b, cfg)
		for _, m := range []int{1, 4} {
			a := tensor.RandN(rng, 1.1, m, 18)
			want := tensor.MatMulT(pool, 4, a, dq)
			for _, w := range []int{1, 4} {
				got := tensor.MatMulQT(pool, w, a, qm)
				identical(t, fmt.Sprintf("b%dg%d/MatMulQT", g.bits, g.group), got, want)
			}
		}
	}
}

// TestMatMulQTSegIntoWindow checks the head-slice path of fused attention:
// scores for a column window [off, off+w) of the packed rows, written at a
// column base of a wider destination, must match slicing the dequantized
// chunk and running dense MatMulT.
func TestMatMulQTSegIntoWindow(t *testing.T) {
	pool := threadpool.MustNew(2)
	rng := rand.New(rand.NewSource(13))
	cfg := quant.Config{Bits: 4, GroupSize: 16}
	b := tensor.RandN(rng, 1.2, 7, 24)
	qm, dq := qmatFor(t, b, cfg)
	const off, w, colBase = 8, 8, 3
	a := tensor.RandN(rng, 1, 3, w)
	want := tensor.MatMulT(pool, 2, a, sliceColsT(dq, off, w))
	c := tensor.New(3, 7+colBase+2)
	tensor.MatMulQTSegInto(pool, 2, a, qm, off, c, colBase)
	for i := 0; i < 3; i++ {
		for j := 0; j < 7; j++ {
			if got, wv := c.At(i, colBase+j), want.At(i, j); math.Float32bits(got) != math.Float32bits(wv) {
				t.Fatalf("c[%d,%d] = %g, want %g", i, j, got, wv)
			}
		}
	}
}

// TestMatMulQSegAccComposition: accumulating consecutive packed chunks (the
// probs·V leg) must reproduce the monolithic dense matmul bit-for-bit, also
// when mixed with a dense chunk via MatMulSegAcc.
func TestMatMulQSegAccComposition(t *testing.T) {
	pool := threadpool.MustNew(4)
	rng := rand.New(rand.NewSource(14))
	for _, g := range exactnessGrid {
		cfg := quant.Config{Bits: g.bits, GroupSize: g.group}
		const cols, w, off = 20, 8, 4
		rows := []int{5, 9, 3} // chunk heights; total t = 17
		t17 := 0
		for _, r := range rows {
			t17 += r
		}
		chunks := make([]*tensor.Tensor, len(rows))
		for i, r := range rows {
			chunks[i] = tensor.RandN(rng, 1.4, r, cols)
		}
		for _, m := range []int{1, 4} {
			a := tensor.RandN(rng, 1, m, t17)
			// Reference: dense B assembled from the dequantized chunk windows.
			bDense := tensor.New(t17, w)
			c := tensor.New(m, w)
			aLo := 0
			for i, ch := range chunks {
				if i == 1 {
					// Middle chunk stays dense — the pressure-ladder mixed
					// case — and goes through MatMulSegAcc.
					seg := sliceColsT(ch, off, w)
					for r := 0; r < rows[i]; r++ {
						copy(bDense.Row(aLo+r), seg.Row(r))
					}
					tensor.MatMulSegAcc(pool, 2, a, aLo, seg, c)
				} else {
					qm, dq := qmatFor(t, ch, cfg)
					seg := sliceColsT(dq, off, w)
					for r := 0; r < rows[i]; r++ {
						copy(bDense.Row(aLo+r), seg.Row(r))
					}
					tensor.MatMulQSegAcc(pool, 2, a, aLo, qm, off, c)
				}
				aLo += rows[i]
			}
			want := tensor.MatMul(pool, 4, a, bDense)
			identical(t, fmt.Sprintf("b%dg%d/SegAcc", g.bits, g.group), c, want)
		}
	}
}

// TestMatMulQNonFiniteA: the fused kernel inherits the fixed zero-skip
// semantics — zeros and NaN/Inf in the activation operand propagate exactly
// as in the dense reference.
func TestMatMulQNonFiniteA(t *testing.T) {
	pool := threadpool.MustNew(2)
	rng := rand.New(rand.NewSource(15))
	cfg := quant.Config{Bits: 4, GroupSize: 16}
	b := tensor.RandN(rng, 1.2, 24, 10)
	qm, dq := qmatFor(t, b, cfg)
	a := tensor.RandN(rng, 1, 3, 24)
	ad := a.Data()
	ad[0] = 0
	ad[5] = float32(math.NaN())
	ad[13] = float32(math.Inf(1))
	ad[24] = float32(math.Copysign(0, -1))
	ad[30] = 0
	want := tensor.MatMul(pool, 2, a, dq)
	for _, w := range []int{1, 2} {
		identical(t, "nonfinite-A", tensor.MatMulQ(pool, w, a, qm), want)
	}
}
