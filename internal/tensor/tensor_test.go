package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/threadpool"
)

func TestNewZeroed(t *testing.T) {
	x := New(2, 3)
	if x.Numel() != 6 || x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("unexpected geometry: shape=%v numel=%d", x.Shape(), x.Numel())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
	if x.Bytes() != 24 {
		t.Errorf("Bytes = %d, want 24", x.Bytes())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Errorf("At(2,1) = %g, want 7.5", got)
	}
	if got := x.Data()[2*4+1]; got != 7.5 {
		t.Errorf("row-major layout violated: data[9] = %g", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	x.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Error("Clone shares storage with the original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Error("Reshape copied data; want a shared view")
	}
	defer func() {
		if recover() == nil {
			t.Error("Reshape to wrong numel did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestRowAndSliceRowsViews(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	row := x.Row(1)
	if row[0] != 3 || row[1] != 4 {
		t.Errorf("Row(1) = %v, want [3 4]", row)
	}
	row[0] = 30
	if x.At(1, 0) != 30 {
		t.Error("Row is not a shared view")
	}
	s := x.SliceRows(1, 3)
	if s.Dim(0) != 2 || s.At(1, 1) != 6 {
		t.Errorf("SliceRows wrong contents: %v", s.Data())
	}
}

func TestMatMulSmallKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(nil, 1, a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(rng, 1, 5, 5)
	c := MatMul(nil, 1, a, Eye(5))
	if !a.Equal(c) {
		t.Error("A · I != A")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := threadpool.MustNew(4)
	a := RandN(rng, 1, 33, 17)
	b := RandN(rng, 1, 17, 29)
	serial := MatMul(nil, 1, a, b)
	for _, width := range []int{2, 3, 4, 8} {
		par := MatMul(pool, width, a, b)
		if d := serial.MaxAbsDiff(par); d > 0 {
			t.Errorf("width %d differs from serial by %g", width, d)
		}
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandN(rng, 1, 8, 6)
	b := RandN(rng, 1, 10, 6)
	got := MatMulT(nil, 1, a, b)
	want := MatMul(nil, 1, a, Transpose2D(b))
	if d := got.MaxAbsDiff(want); d > 1e-5 {
		t.Errorf("MatMulT differs from MatMul(A, Bᵀ) by %g", d)
	}
}

func TestMatMulIntoOverwrites(t *testing.T) {
	a := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := Full(99, 2, 2)
	MatMulInto(nil, 1, a, b, c)
	if !c.Equal(b) {
		t.Errorf("MatMulInto = %v, want %v", c.Data(), b.Data())
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	defer func() {
		if recover() == nil {
			t.Error("MatMul with mismatched inner dims did not panic")
		}
	}()
	MatMul(nil, 1, a, b)
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := RandN(rng, 3, 6, 10)
	SoftmaxRows(nil, 1, x)
	for i := 0; i < 6; i++ {
		var sum float64
		for _, v := range x.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax output %g outside [0,1]", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %g", i, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := FromSlice([]float32{1000, 1001, 1002}, 1, 3)
	SoftmaxRows(nil, 1, x)
	for _, v := range x.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax produced %g on large inputs", v)
		}
	}
}

func TestSoftmaxParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pool := threadpool.MustNew(4)
	x := RandN(rng, 2, 40, 16)
	y := x.Clone()
	SoftmaxRows(nil, 1, x)
	SoftmaxRows(pool, 4, y)
	if d := x.MaxAbsDiff(y); d > 0 {
		t.Errorf("parallel softmax differs by %g", d)
	}
}

func TestLayerNormRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := RandN(rng, 5, 4, 32)
	LayerNormRows(x, Ones(32), nil, 1e-5)
	for i := 0; i < 4; i++ {
		row := x.Row(i)
		var mean, varSum float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= 32
		for _, v := range row {
			d := float64(v) - mean
			varSum += d * d
		}
		varSum /= 32
		if math.Abs(mean) > 1e-4 {
			t.Errorf("row %d mean = %g, want ~0", i, mean)
		}
		if math.Abs(varSum-1) > 1e-2 {
			t.Errorf("row %d variance = %g, want ~1", i, varSum)
		}
	}
}

func TestGELUKnownValues(t *testing.T) {
	x := FromSlice([]float32{-10, 0, 10, 1}, 1, 4)
	GELU(x)
	d := x.Data()
	if math.Abs(float64(d[0])) > 1e-3 {
		t.Errorf("GELU(-10) = %g, want ~0", d[0])
	}
	if d[1] != 0 {
		t.Errorf("GELU(0) = %g, want 0", d[1])
	}
	if math.Abs(float64(d[2])-10) > 1e-3 {
		t.Errorf("GELU(10) = %g, want ~10", d[2])
	}
	if math.Abs(float64(d[3])-0.8412) > 1e-3 {
		t.Errorf("GELU(1) = %g, want ~0.8412", d[3])
	}
}

func TestConcatRows(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := FromSlice([]float32{3, 4, 5, 6}, 2, 2)
	c := ConcatRows(a, b)
	want := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	if !c.Equal(want) {
		t.Errorf("ConcatRows = %v", c.Data())
	}
}

func TestArgmaxRows(t *testing.T) {
	x := FromSlice([]float32{0, 5, 2, 9, 1, 3}, 2, 3)
	got := ArgmaxRows(x)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgmaxRows = %v, want [1 0]", got)
	}
}

func TestAddBiasAndScale(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	AddBias(x, FromSlice([]float32{10, 20}, 2))
	want := FromSlice([]float32{11, 22, 13, 24}, 2, 2)
	if !x.Equal(want) {
		t.Fatalf("AddBias = %v", x.Data())
	}
	Scale(x, 2)
	if x.At(0, 0) != 22 {
		t.Errorf("Scale result = %v", x.Data())
	}
}

// Property: (A·B)·C == A·(B·C) within float tolerance.
func TestPropertyMatMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n, p := 2+rng.Intn(6), 2+rng.Intn(6), 2+rng.Intn(6), 2+rng.Intn(6)
		a := RandN(rng, 1, m, k)
		b := RandN(rng, 1, k, n)
		c := RandN(rng, 1, n, p)
		left := MatMul(nil, 1, MatMul(nil, 1, a, b), c)
		right := MatMul(nil, 1, a, MatMul(nil, 1, b, c))
		return left.MaxAbsDiff(right) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: transpose is an involution.
func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(10), 1+rng.Intn(10)
		a := RandN(rng, 1, m, n)
		return a.Equal(Transpose2D(Transpose2D(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: softmax is invariant to adding a constant to a row.
func TestPropertySoftmaxShiftInvariance(t *testing.T) {
	f := func(seed int64, shift float32) bool {
		if math.IsNaN(float64(shift)) || math.IsInf(float64(shift), 0) || math.Abs(float64(shift)) > 100 {
			shift = 3
		}
		rng := rand.New(rand.NewSource(seed))
		x := RandN(rng, 2, 3, 8)
		y := x.Clone()
		for i := range y.Data() {
			y.Data()[i] += shift
		}
		SoftmaxRows(nil, 1, x)
		SoftmaxRows(nil, 1, y)
		return x.MaxAbsDiff(y) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddAndAddInPlace(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	c := Add(a, b)
	want := FromSlice([]float32{11, 22, 33, 44}, 2, 2)
	if !c.Equal(want) {
		t.Errorf("Add = %v", c.Data())
	}
	if a.At(0, 0) != 1 {
		t.Error("Add mutated its input")
	}
	AddInPlace(a, b)
	if !a.Equal(want) {
		t.Errorf("AddInPlace = %v", a.Data())
	}
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched shapes did not panic")
		}
	}()
	Add(a, New(3, 3))
}

func TestReLU(t *testing.T) {
	x := FromSlice([]float32{-2, 0, 3.5}, 3)
	ReLU(x)
	want := FromSlice([]float32{0, 0, 3.5}, 3)
	if !x.Equal(want) {
		t.Errorf("ReLU = %v", x.Data())
	}
}

func TestMeanAndL2Norm(t *testing.T) {
	x := FromSlice([]float32{3, 4}, 2)
	if m := Mean(x); m != 3.5 {
		t.Errorf("Mean = %g", m)
	}
	if n := L2Norm(x); n != 5 {
		t.Errorf("L2Norm = %g", n)
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := RandUniform(rng, -2, 3, 100)
	for _, v := range x.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("value %g outside [-2, 3)", v)
		}
	}
}

func TestStringFormats(t *testing.T) {
	small := FromSlice([]float32{1, 2}, 2)
	if s := small.String(); !strings.Contains(s, "1") {
		t.Errorf("small String = %q", s)
	}
	big := New(100, 100)
	if s := big.String(); !strings.Contains(s, "10000 elems") {
		t.Errorf("big String = %q", s)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Error("different shapes reported equal")
	}
	if New(2).Equal(New(2, 1)) {
		t.Error("different ranks reported equal")
	}
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 3}, 2)
	if a.Equal(b) {
		t.Error("different data reported equal")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestSliceRowsOutOfRangePanics(t *testing.T) {
	x := New(3, 2)
	defer func() {
		if recover() == nil {
			t.Error("SliceRows out of range did not panic")
		}
	}()
	x.SliceRows(2, 5)
}

func TestF16SliceShape(t *testing.T) {
	s := ToF16(New(3, 5))
	if s.Shape()[0] != 3 || s.Shape()[1] != 5 {
		t.Errorf("Shape = %v", s.Shape())
	}
}
