package sim

import (
	"fmt"
	"strings"

	"repro/internal/perfmodel"
)

// ChunkedPrefillResult summarizes a simulated chunked prefill pass.
type ChunkedPrefillResult struct {
	// Total is the whole-prompt makespan across all chunks and layers.
	Total float64
	// Chunks is how many chunks the prompt was split into.
	Chunks int
	// TaskBusy is the total busy time per task kind (load_weight,
	// prefill_compute, store_cache), in seconds, summed over every chunk and
	// layer — NOT normalized per step the way OffloadResult.TaskBusy is.
	// Busy totals are schedule-independent, so the conformance suite pins
	// them against Estimator.ChunkedPrefillTasks at hard float tolerance.
	TaskBusy map[string]float64
	// Utilization per resource.
	Utilization map[string]float64
}

// SimulateChunkedPrefill expands a chunked prefill into a task graph: the
// prompt is split into ceil(s/chunk) chunks; each chunk streams every layer
// (weight upload prefetched on the uplink), computes causal attention of its
// rows against all earlier positions plus the MLP on the GPU, and offloads
// its KV rows on the downlink, overlapping the next layer's work. Compute
// chains across chunk boundaries exactly as it does across layers — chunk
// k's layer 0 waits on chunk k-1's final layer — which is the serving
// engine's execution order (Session.PrefillChunk runs chunks sequentially).
// chunk <= 0 or >= the prompt degenerates to SimulatePrefill's graph.
func SimulateChunkedPrefill(e *perfmodel.Estimator, chunk int) (*ChunkedPrefillResult, error) {
	layers := e.Mod.Layers
	if layers < 1 {
		return nil, fmt.Errorf("sim: model has no layers")
	}
	prompt := e.Work.PromptLen
	if prompt < 1 {
		return nil, fmt.Errorf("sim: workload has no prompt")
	}
	if chunk <= 0 || chunk > prompt {
		chunk = prompt
	}

	s := New()
	for _, r := range []string{ResGPU, ResH2D, ResD2H} {
		s.AddResource(r)
	}
	var prevCompute TaskID = -1
	chunks := 0
	for base := 0; base < prompt; base += chunk {
		t := chunk
		if prompt-base < t {
			t = prompt - base
		}
		weightUp, compute, kvDown := e.ChunkPrefillParts(base, t)
		for j := 0; j < layers; j++ {
			lw := s.AddTask(TaskSpec{
				Name: fmt.Sprintf("load_weight[%d,%d]", chunks, j), Resource: ResH2D, Duration: weightUp,
			})
			deps := []TaskID{lw}
			if prevCompute >= 0 {
				deps = append(deps, prevCompute)
			}
			comp := s.AddTask(TaskSpec{
				Name: fmt.Sprintf("prefill_compute[%d,%d]", chunks, j), Resource: ResGPU, Duration: compute,
				Deps: deps,
			})
			if kvDown > 0 {
				s.AddTask(TaskSpec{
					Name: fmt.Sprintf("store_cache[%d,%d]", chunks, j), Resource: ResD2H, Duration: kvDown,
					Deps: []TaskID{comp},
				})
			}
			prevCompute = comp
		}
		chunks++
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	out := &ChunkedPrefillResult{
		Total:       res.Makespan,
		Chunks:      chunks,
		TaskBusy:    map[string]float64{},
		Utilization: map[string]float64{},
	}
	for i, task := range s.tasks {
		kind := task.Name
		if idx := strings.IndexByte(kind, '['); idx >= 0 {
			kind = kind[:idx]
		}
		out.TaskBusy[kind] += res.End[i] - res.Start[i]
	}
	for _, r := range []string{ResGPU, ResH2D, ResD2H} {
		out.Utilization[r] = res.Utilization(r)
	}
	return out, nil
}
