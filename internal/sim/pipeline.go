package sim

import "fmt"

// PipelineSpec describes a multi-GPU pipeline decode to simulate: S stages
// (one GPU each), M independent micro-batches flowing through them, and per
// unit times derived from the per-stage estimator.
type PipelineSpec struct {
	// Stages is the GPU count.
	Stages int
	// MicroBatches is the number of independent in-flight streams.
	MicroBatches int
	// Tokens is the decode window to simulate.
	Tokens int
	// StageTime is one micro-batch's compute+offload time on one stage for
	// one token.
	StageTime float64
	// HopTime is the inter-stage activation transfer for one micro-batch.
	HopTime float64
}

// Validate reports malformed specs.
func (p PipelineSpec) Validate() error {
	if p.Stages < 1 || p.MicroBatches < 1 || p.Tokens < 1 {
		return fmt.Errorf("sim: pipeline spec must be positive, got %+v", p)
	}
	if p.StageTime < 0 || p.HopTime < 0 {
		return fmt.Errorf("sim: negative pipeline times: %+v", p)
	}
	return nil
}

// PipelineResult is the simulated schedule summary.
type PipelineResult struct {
	// Makespan covers the whole simulated window.
	Makespan float64
	// PerToken is the steady-state time per token (all micro-batches).
	PerToken float64
	// StageUtilization is the bottleneck stage's busy fraction.
	StageUtilization float64
	// Efficiency is the achieved fraction of the zero-bubble ideal.
	Efficiency float64
}

// SimulatePipeline expands the decode wavefront into a task graph:
// task (m, t, s) — micro-batch m's token t on stage s — depends on
// (m, t, s-1) (the activation arriving from the previous stage, through a
// hop task on the inter-stage link) and (m, t-1, last stage) (autoregressive
// order: a micro-batch's next token needs its previous token finished).
// Stage occupancy serializes across micro-batches through the stage's FIFO
// resource — the pipeline bubble emerges from the simulation.
func SimulatePipeline(spec PipelineSpec) (*PipelineResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := New()
	for st := 0; st < spec.Stages; st++ {
		s.AddResource(fmt.Sprintf("gpu%d", st))
		if st > 0 {
			s.AddResource(fmt.Sprintf("link%d", st))
		}
	}

	// ids[m][s] is micro-batch m's latest task on stage s for the current
	// token; lastOut[m] is its previous token's final-stage task.
	lastOut := make([]TaskID, spec.MicroBatches)
	for m := range lastOut {
		lastOut[m] = -1
	}
	deps := func(ids ...TaskID) []TaskID {
		out := make([]TaskID, 0, len(ids))
		for _, id := range ids {
			if id >= 0 {
				out = append(out, id)
			}
		}
		return out
	}

	for t := 0; t < spec.Tokens; t++ {
		for m := 0; m < spec.MicroBatches; m++ {
			prev := TaskID(-1)
			for st := 0; st < spec.Stages; st++ {
				var hop TaskID = -1
				if st > 0 {
					hop = s.AddTask(TaskSpec{
						Name:     fmt.Sprintf("hop[m%d,t%d,s%d]", m, t, st),
						Resource: fmt.Sprintf("link%d", st),
						Duration: spec.HopTime,
						Deps:     deps(prev),
					})
				}
				compDeps := deps(hop)
				if st == 0 {
					compDeps = deps(lastOut[m]) // autoregressive order
				}
				prev = s.AddTask(TaskSpec{
					Name:     fmt.Sprintf("stage[m%d,t%d,s%d]", m, t, st),
					Resource: fmt.Sprintf("gpu%d", st),
					Duration: spec.StageTime,
					Deps:     compDeps,
				})
			}
			lastOut[m] = prev
		}
	}

	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	out := &PipelineResult{
		Makespan: res.Makespan,
		PerToken: res.Makespan / float64(spec.Tokens),
	}
	for st := 0; st < spec.Stages; st++ {
		if u := res.Utilization(fmt.Sprintf("gpu%d", st)); u > out.StageUtilization {
			out.StageUtilization = u
		}
	}
	// Zero-bubble ideal: every stage continuously busy with M streams.
	ideal := float64(spec.Tokens) * float64(spec.MicroBatches) * spec.StageTime
	if res.Makespan > 0 && ideal > 0 {
		out.Efficiency = ideal / res.Makespan
		if out.Efficiency > 1 {
			out.Efficiency = 1
		}
	}
	return out, nil
}
