package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
)

// FleetConfig drives a discrete-event simulation of the cluster router at
// scale: N replicas × S slots serving a Poisson request stream, routed by the
// SAME cluster.Policy the live router uses (the policy is pure arithmetic
// over ReplicaViews, so simulated and live routing decisions come from one
// code path). Where the live cluster tops out at a handful of in-process
// engines, the fleet runs hundreds of replicas and tens of thousands of
// requests in milliseconds, which is how routing changes are evaluated before
// they ship: outage windows exercise failover, slowdown windows exercise
// hedging, and shared-prefix request families exercise affinity.
type FleetConfig struct {
	Replicas int
	Slots    int
	Requests int
	// ArrivalRate is the Poisson arrival intensity in requests/second across
	// the whole fleet.
	ArrivalRate float64
	// PromptLen and GenLen are mean request shapes (actual draws are uniform
	// in [mean/2, 3·mean/2)).
	PromptLen int
	GenLen    int
	// PrefillTokenCost and TokenCost are the per-token service times in
	// seconds for prefill and decode — the simulated replicas' "fitted"
	// performance model.
	PrefillTokenCost float64
	TokenCost        float64
	// PrefixGroups > 0 partitions requests into shared-prefix families: each
	// request draws a family and shares its first PromptLen/2 tokens with
	// every sibling, so a replica that completed a family request holds its
	// prefix (MatchedTokens) and skips that prefill work on a hit.
	PrefixGroups int
	// Policy is the routing rule set; the zero value takes
	// cluster.DefaultPolicy.
	Policy cluster.Policy
	// BlindAffinity hides cached prefixes from routing (views report no
	// match and full-prompt prefill cost) while service still benefits from
	// hits — the control arm for measuring what affinity-aware routing buys.
	BlindAffinity bool
	// Hedge enables hedged second attempts per the policy's HedgeDelay.
	Hedge bool
	Seed  int64
	// Down and Slow schedule replica fault windows: Down replicas are
	// unroutable and fail their in-flight requests over; Slow replicas serve
	// at 1/Factor rate and route as degraded.
	Down []FleetWindow
	Slow []FleetWindow
}

// FleetWindow degrades one simulated replica for [Start, Start+Duration)
// seconds. Factor is only meaningful for slowdowns (service rate 1/Factor).
// Silent (slowdowns only) hides the degradation from routing: the replica
// serves at 1/Factor but its views report Up — the undetected-slow-replica
// regime where hedging, not health-aware scoring, is the defense.
type FleetWindow struct {
	Replica  int
	Start    float64
	Duration float64
	Factor   float64
	Silent   bool
}

// Validate reports malformed fleet configurations.
func (c FleetConfig) Validate() error {
	if c.Replicas <= 0 || c.Slots <= 0 || c.Requests <= 0 {
		return fmt.Errorf("sim: fleet needs positive replicas/slots/requests, got %d/%d/%d", c.Replicas, c.Slots, c.Requests)
	}
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("sim: fleet arrival rate %g must be positive", c.ArrivalRate)
	}
	if c.PromptLen <= 0 || c.GenLen <= 0 {
		return fmt.Errorf("sim: fleet prompt/gen lengths must be positive, got %d/%d", c.PromptLen, c.GenLen)
	}
	if c.PrefillTokenCost <= 0 || c.TokenCost <= 0 {
		return fmt.Errorf("sim: fleet token costs must be positive, got %g/%g", c.PrefillTokenCost, c.TokenCost)
	}
	for _, w := range append(append([]FleetWindow{}, c.Down...), c.Slow...) {
		if w.Replica < 0 || w.Replica >= c.Replicas {
			return fmt.Errorf("sim: fleet window on replica %d outside [0, %d)", w.Replica, c.Replicas)
		}
		if w.Start < 0 || w.Duration <= 0 {
			return fmt.Errorf("sim: fleet window [%g, +%g) must have start >= 0 and positive duration", w.Start, w.Duration)
		}
	}
	for _, w := range c.Slow {
		if w.Factor < 1 {
			return fmt.Errorf("sim: fleet slowdown factor %g must be >= 1", w.Factor)
		}
	}
	return nil
}

// FleetResult summarizes one fleet run.
type FleetResult struct {
	Offered   int
	Completed int
	// Failed counts requests that found no routable replica (at arrival or
	// after exhausting failover targets) — the availability loss.
	Failed       int
	Availability float64
	Failovers    int
	Hedges       int
	HedgeWins    int
	PrefixHits   int
	// TTFT percentiles over completed requests in seconds (arrival to the
	// winning attempt's first token).
	TTFTp50, TTFTp95, TTFTp99 float64
	MeanTTFT                  float64
	Makespan                  float64
}

// fleetReq is one simulated request.
type fleetReq struct {
	id        int
	group     int // prefix family, -1 when PrefixGroups is 0
	sharedLen int // tokens shared with the family
	promptLen int
	genLen    int
	arrival   float64

	tried    map[int]bool
	attempts []*fleetAttempt
	done     bool
	failed   bool
	ttft     float64
}

// fleetAttempt is one dispatch of a request onto one replica.
type fleetAttempt struct {
	req      *fleetReq
	replica  int
	hedge    bool
	inQueue  bool
	serving  bool
	canceled bool
	firstAt  float64
	finishAt float64
}

// live reports whether the attempt can still win.
func (a *fleetAttempt) live() bool { return !a.canceled && (a.inQueue || a.serving) }

// fleetReplica is one simulated cluster member.
type fleetReplica struct {
	down   bool
	factor float64 // 1 = nominal, >1 = slowdown in effect
	silent bool    // slowdown hidden from routing (views report Up)
	busy   int
	queue  []*fleetAttempt
	// cached prefix families (the simulated PrefixStore's MatchTokens).
	cached map[int]bool
}

// fleet event kinds; lower kinds win time ties so state edges (windows)
// apply before arrivals and completions at the same instant.
const (
	evWindow = iota
	evArrival
	evFinish
	evHedge
)

type fleetEvent struct {
	time float64
	kind int
	seq  int
	fn   func(now float64)
}

type fleetHeap []fleetEvent

func (h fleetHeap) Len() int { return len(h) }
func (h fleetHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h fleetHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fleetHeap) Push(x interface{}) { *h = append(*h, x.(fleetEvent)) }
func (h *fleetHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunFleet executes the fleet simulation. Runs are deterministic in the
// config (seeded arrivals, deterministic tie-breaking in both the event heap
// and the routing policy).
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pol := cfg.Policy
	if pol == (cluster.Policy{}) {
		pol = cluster.DefaultPolicy()
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	replicas := make([]*fleetReplica, cfg.Replicas)
	for i := range replicas {
		replicas[i] = &fleetReplica{factor: 1, cached: map[int]bool{}}
	}
	res := &FleetResult{Offered: cfg.Requests}
	var reqs []*fleetReq

	var events fleetHeap
	seq := 0
	push := func(t float64, kind int, fn func(now float64)) {
		heap.Push(&events, fleetEvent{time: t, kind: kind, seq: seq, fn: fn})
		seq++
	}

	// meanService seeds the drain estimate: the simulated scheduler predicts
	// drain as pending service over slot parallelism (in-service requests
	// count half, being half done on average).
	meanService := float64(cfg.PromptLen)*cfg.PrefillTokenCost + float64(cfg.GenLen)*cfg.TokenCost

	state := func(r *fleetReplica) cluster.ReplicaState {
		switch {
		case r.down:
			return cluster.DownReplica
		case r.factor > 1 && !r.silent:
			return cluster.DegradedReplica
		default:
			return cluster.Up
		}
	}
	view := func(i int, req *fleetReq) cluster.ReplicaView {
		r := replicas[i]
		v := cluster.ReplicaView{
			State:        state(r),
			QueueDepth:   len(r.queue),
			ActiveSlots:  r.busy,
			TotalSlots:   cfg.Slots,
			PromptTokens: req.promptLen,
		}
		if v.State == cluster.DownReplica {
			return v
		}
		if !cfg.BlindAffinity && req.group >= 0 && r.cached[req.group] {
			v.MatchedTokens = req.sharedLen
		}
		v.PrefillCost = durSec(float64(req.promptLen-v.MatchedTokens) * cfg.PrefillTokenCost)
		v.PredictedDrain = durSec((float64(len(r.queue)) + float64(r.busy)*0.5) * meanService / float64(cfg.Slots))
		return v
	}

	var startService func(i int, now float64)
	var dispatch func(req *fleetReq, hedge bool, now float64) bool

	// finishAttempt settles a completed service: the first attempt to finish
	// wins its request; stale events for canceled attempts (whose slot was
	// already freed) are ignored.
	finishAttempt := func(a *fleetAttempt, now float64) {
		if !a.serving {
			return
		}
		a.serving = false
		r := replicas[a.replica]
		r.busy--
		if !a.canceled && !a.req.done {
			a.req.done = true
			a.req.ttft = a.firstAt - a.req.arrival
			res.Completed++
			if a.hedge {
				res.HedgeWins++
			}
			if a.req.group >= 0 {
				r.cached[a.req.group] = true
			}
			// First finish wins: cancel the losing attempts so their slots
			// free immediately (the live router cancels the loser's context).
			for _, sib := range a.req.attempts {
				if sib != a && sib.live() {
					sib.canceled = true
					if sib.serving {
						sib.serving = false
						replicas[sib.replica].busy--
						startService(sib.replica, now)
					}
				}
			}
		}
		startService(a.replica, now)
	}

	startService = func(i int, now float64) {
		r := replicas[i]
		for r.busy < cfg.Slots && !r.down && len(r.queue) > 0 {
			a := r.queue[0]
			r.queue = r.queue[1:]
			a.inQueue = false
			if a.canceled || a.req.done {
				continue
			}
			matched := 0
			if a.req.group >= 0 && r.cached[a.req.group] {
				matched = a.req.sharedLen
				res.PrefixHits++
			}
			prefill := float64(a.req.promptLen-matched) * cfg.PrefillTokenCost * r.factor
			decode := float64(a.req.genLen) * cfg.TokenCost * r.factor
			a.serving = true
			a.firstAt = now + prefill
			a.finishAt = now + prefill + decode
			r.busy++
			att := a
			push(a.finishAt, evFinish, func(now float64) { finishAttempt(att, now) })
		}
	}

	dispatch = func(req *fleetReq, hedge bool, now float64) bool {
		views := make([]cluster.ReplicaView, cfg.Replicas)
		for i := range views {
			views[i] = view(i, req)
		}
		for _, i := range pol.Rank(views) {
			if req.tried[i] {
				continue
			}
			req.tried[i] = true
			a := &fleetAttempt{req: req, replica: i, hedge: hedge, inQueue: true}
			req.attempts = append(req.attempts, a)
			replicas[i].queue = append(replicas[i].queue, a)
			startService(i, now)
			switch {
			case hedge:
				res.Hedges++
			case len(req.attempts) > 1:
				res.Failovers++
			}
			// Schedule the hedge check against the primary's predicted TTFT.
			if cfg.Hedge && !hedge && len(req.attempts) == 1 && cfg.Replicas > 1 {
				delay := pol.HedgeDelay(views[i]).Seconds()
				r := req
				push(now+delay, evHedge, func(now float64) {
					if r.done || r.failed || r.firstTokenBy(now) {
						return
					}
					dispatch(r, true, now)
				})
			}
			return true
		}
		return false
	}

	// Window edges.
	for _, w := range cfg.Slow {
		w := w
		push(w.Start, evWindow, func(float64) {
			replicas[w.Replica].factor = w.Factor
			replicas[w.Replica].silent = w.Silent
		})
		push(w.Start+w.Duration, evWindow, func(float64) {
			replicas[w.Replica].factor = 1
			replicas[w.Replica].silent = false
		})
	}
	for _, w := range cfg.Down {
		w := w
		push(w.Start, evWindow, func(now float64) {
			r := replicas[w.Replica]
			r.down = true
			// Everything in flight on the replica dies with it; orphaned
			// requests re-dispatch in arrival order (deterministic).
			for _, a := range r.queue {
				a.canceled = true
				a.inQueue = false
			}
			r.queue = nil
			var orphans []*fleetReq
			for _, req := range reqs {
				if req.done || req.failed {
					continue
				}
				for _, a := range req.attempts {
					if a.replica == w.Replica && a.serving && !a.canceled {
						a.canceled = true
						a.serving = false
						r.busy--
					}
				}
				if req.tried[w.Replica] && !alive(req.attempts) {
					orphans = append(orphans, req)
				}
			}
			for _, req := range orphans {
				if !dispatch(req, false, now) {
					req.failed = true
					res.Failed++
				}
			}
		})
		push(w.Start+w.Duration, evWindow, func(now float64) {
			replicas[w.Replica].down = false
			startService(w.Replica, now)
		})
	}

	// Poisson arrivals.
	t := 0.0
	for i := 0; i < cfg.Requests; i++ {
		t += rng.ExpFloat64() / cfg.ArrivalRate
		group := -1
		shared := 0
		promptLen := cfg.PromptLen/2 + rng.Intn(cfg.PromptLen)
		if cfg.PrefixGroups > 0 {
			group = rng.Intn(cfg.PrefixGroups)
			shared = cfg.PromptLen / 2
			if shared > promptLen {
				shared = promptLen
			}
		}
		req := &fleetReq{
			id:        i,
			group:     group,
			sharedLen: shared,
			promptLen: promptLen,
			genLen:    cfg.GenLen/2 + rng.Intn(cfg.GenLen),
			arrival:   t,
			tried:     map[int]bool{},
		}
		reqs = append(reqs, req)
		push(t, evArrival, func(now float64) {
			if !dispatch(req, false, now) {
				req.failed = true
				res.Failed++
			}
		})
	}

	for events.Len() > 0 {
		ev := heap.Pop(&events).(fleetEvent)
		ev.fn(ev.time)
		if ev.time > res.Makespan {
			res.Makespan = ev.time
		}
	}

	// TTFT percentiles over completed requests.
	var ttfts []float64
	sum := 0.0
	for _, req := range reqs {
		if req.done {
			ttfts = append(ttfts, req.ttft)
			sum += req.ttft
		}
	}
	sort.Float64s(ttfts)
	if len(ttfts) > 0 {
		res.TTFTp50 = percentile(ttfts, 0.50)
		res.TTFTp95 = percentile(ttfts, 0.95)
		res.TTFTp99 = percentile(ttfts, 0.99)
		res.MeanTTFT = sum / float64(len(ttfts))
	}
	res.Availability = float64(res.Completed) / float64(res.Offered)
	return res, nil
}

// firstTokenBy reports whether any live attempt emitted its first token by
// time t — the hedge check's "primary answered in time" condition.
func (r *fleetReq) firstTokenBy(t float64) bool {
	if r.done {
		return true
	}
	for _, a := range r.attempts {
		if !a.canceled && a.serving && a.firstAt <= t {
			return true
		}
	}
	return false
}

// alive reports whether the request still has an attempt that can win.
func alive(atts []*fleetAttempt) bool {
	for _, a := range atts {
		if a.live() {
			return true
		}
	}
	return false
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// durSec converts seconds to a time.Duration for ReplicaView fields.
func durSec(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
