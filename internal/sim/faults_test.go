package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

func TestFaultOutagePushesCompletion(t *testing.T) {
	s := New()
	s.AddResource("link")
	if err := s.AddFault(FaultEvent{Resource: "link", Start: 1, Duration: 1}); err != nil {
		t.Fatal(err)
	}
	// 2s of work: 1s before the outage, then stalled over [1, 2), then 1s more.
	id := s.AddTask(TaskSpec{Name: "xfer", Resource: "link", Duration: 2})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.End[id] != 3 {
		t.Errorf("end = %g, want 3 (2s work + 1s outage)", res.End[id])
	}
}

func TestFaultSlowdownStretchesWork(t *testing.T) {
	s := New()
	s.AddResource("link")
	// Rate drops to 1/2 over [1, 2): the window serves only 0.5 of work.
	if err := s.AddFault(FaultEvent{Resource: "link", Start: 1, Duration: 1, Factor: 2}); err != nil {
		t.Fatal(err)
	}
	id := s.AddTask(TaskSpec{Name: "xfer", Resource: "link", Duration: 2})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 1s full rate (1 work) + window (0.5 work) + 0.5s full rate = end 2.5.
	if res.End[id] != 2.5 {
		t.Errorf("end = %g, want 2.5", res.End[id])
	}
}

func TestFaultWindowBeforeAndAfterTaskIsFree(t *testing.T) {
	s := New()
	s.AddResource("r")
	if err := s.AddFault(FaultEvent{Resource: "r", Start: 10, Duration: 5}); err != nil {
		t.Fatal(err)
	}
	id := s.AddTask(TaskSpec{Name: "a", Resource: "r", Duration: 2})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.End[id] != 2 {
		t.Errorf("end = %g, want 2 (window opens after completion)", res.End[id])
	}
}

func TestFaultZeroDurationSyncNotDelayed(t *testing.T) {
	// A synchronize() pseudo-task carries no work, so an open outage window
	// must not push it: it completes the instant its dependencies do.
	s := New()
	s.AddResource("gpu")
	s.AddResource("sync")
	if err := s.AddFault(FaultEvent{Resource: "sync", Start: 0, Duration: 100}); err != nil {
		t.Fatal(err)
	}
	a := s.AddTask(TaskSpec{Name: "work", Resource: "gpu", Duration: 3})
	b := s.AddTask(TaskSpec{Name: "sync", Resource: "sync", Duration: 0, Deps: []TaskID{a}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.End[b] != 3 {
		t.Errorf("sync end = %g, want 3", res.End[b])
	}
}

func TestFaultOnIdleResourceLeavesScheduleUnchanged(t *testing.T) {
	build := func(withFault bool) *Result {
		s := New()
		s.AddResource("gpu")
		s.AddResource("link")
		if withFault {
			if err := s.AddFault(FaultEvent{Resource: "link", Start: 0, Duration: 50}); err != nil {
				t.Fatal(err)
			}
		}
		a := s.AddTask(TaskSpec{Name: "a", Resource: "gpu", Duration: 1})
		s.AddTask(TaskSpec{Name: "b", Resource: "gpu", Duration: 2, Deps: []TaskID{a}})
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean, faulted := build(false), build(true)
	if clean.Makespan != faulted.Makespan {
		t.Errorf("makespan changed %g -> %g though no task touches the faulted resource",
			clean.Makespan, faulted.Makespan)
	}
}

func TestFaultValidation(t *testing.T) {
	s := New()
	s.AddResource("r")
	cases := []struct {
		name string
		ev   FaultEvent
	}{
		{"no resource", FaultEvent{Start: 0, Duration: 1}},
		{"negative start", FaultEvent{Resource: "r", Start: -1, Duration: 1}},
		{"zero duration", FaultEvent{Resource: "r", Start: 0, Duration: 0}},
		{"factor below 1", FaultEvent{Resource: "r", Start: 0, Duration: 1, Factor: 0.5}},
		{"unregistered resource", FaultEvent{Resource: "ghost", Start: 0, Duration: 1}},
	}
	for _, tc := range cases {
		fresh := New()
		fresh.AddResource("r")
		if err := fresh.AddFault(tc.ev); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := s.AddFault(FaultEvent{Resource: "r", Start: 1, Duration: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFault(FaultEvent{Resource: "r", Start: 2.5, Duration: 1}); err == nil {
		t.Error("overlapping windows accepted")
	}
	if err := s.AddFault(FaultEvent{Resource: "r", Start: 3, Duration: 1, Factor: 2}); err != nil {
		t.Errorf("adjacent window rejected: %v", err)
	}
}

func TestAddTaskEagerValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func(s *Sim)
		want  string
	}{
		{
			"unregistered resource",
			func(s *Sim) { s.AddTask(TaskSpec{Name: "t", Resource: "nope", Duration: 1}) },
			"unregistered resource",
		},
		{
			"negative duration",
			func(s *Sim) { s.AddTask(TaskSpec{Name: "t", Resource: "r", Duration: -2}) },
			"negative duration",
		},
		{
			"self dependency",
			func(s *Sim) { s.AddTask(TaskSpec{Name: "t", Resource: "r", Duration: 1, Deps: []TaskID{0}}) },
			"dependencies must point backwards",
		},
		{
			"forward dependency",
			func(s *Sim) {
				s.AddTask(TaskSpec{Name: "a", Resource: "r", Duration: 1})
				s.AddTask(TaskSpec{Name: "b", Resource: "r", Duration: 1, Deps: []TaskID{5}})
			},
			"dependencies must point backwards",
		},
	}
	for _, tc := range cases {
		s := New()
		s.AddResource("r")
		tc.build(s)
		err := s.Err()
		if err == nil {
			t.Errorf("%s: Err() nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
		if _, rerr := s.Run(); rerr == nil {
			t.Errorf("%s: Run() succeeded on malformed graph", tc.name)
		}
	}

	// A valid graph keeps Err nil.
	s := New()
	s.AddResource("r")
	a := s.AddTask(TaskSpec{Name: "a", Resource: "r", Duration: 1})
	s.AddTask(TaskSpec{Name: "b", Resource: "r", Duration: 1, Deps: []TaskID{a}})
	if err := s.Err(); err != nil {
		t.Errorf("valid graph reports %v", err)
	}
}

func TestParseFaultEvents(t *testing.T) {
	good, err := ParseFaultEvents(" h2d@0.5+0.2, gpu@1.0+0.5x3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{Resource: "h2d", Start: 0.5, Duration: 0.2},
		{Resource: "gpu", Start: 1.0, Duration: 0.5, Factor: 3},
	}
	if len(good) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(good), len(want))
	}
	for i := range want {
		if good[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, good[i], want[i])
		}
	}
	if empty, err := ParseFaultEvents("  "); err != nil || len(empty) != 0 {
		t.Errorf("blank spec: %v, %v", empty, err)
	}
	for _, bad := range []string{
		"h2d",            // no window
		"@0.5+0.2",       // no resource
		"h2d@0.5",        // no duration
		"h2d@x+0.2",      // bad start
		"h2d@0.5+y",      // bad duration
		"h2d@0.5+0.2xz",  // bad factor
		"h2d@0.5+0.2x.5", // factor below 1
		"h2d@-1+0.2",     // negative start
	} {
		if _, err := ParseFaultEvents(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestSimulateDecodeFaultRetention(t *testing.T) {
	mod, err := model.ByName("OPT-30B")
	if err != nil {
		t.Fatal(err)
	}
	work := trace.Workload{PromptLen: 64, GenLen: 8, GPUBatch: 16, NumBatches: 4}
	strat := perfmodel.Strategy{WeightsGPUPct: 0.2, QuantKV: true, KVBits: 4, GroupSize: 64}
	est, err := perfmodel.New(hw.SingleGPUA100(), mod, work, strat, perfmodel.FlexGenProfile())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := SimulateDecode(est, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Same call with an explicit empty event list must be numerically
	// identical: the fault path only alters behavior inside windows.
	again, err := SimulateDecode(est, 3)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Throughput != again.Throughput || clean.StepTime != again.StepTime {
		t.Errorf("clean runs differ: %g vs %g tok/s", clean.Throughput, again.Throughput)
	}
	// An H2D outage covering part of the window must cost throughput: the
	// schedule is link-bound, so stalling the link stalls tokens.
	outage := FaultEvent{Resource: ResH2D, Start: 0, Duration: clean.StepTime * float64(mod.Layers)}
	faulted, err := SimulateDecode(est, 3, outage)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Throughput >= clean.Throughput {
		t.Errorf("outage did not reduce throughput: %g >= %g", faulted.Throughput, clean.Throughput)
	}
	retention := faulted.Throughput / clean.Throughput
	if retention <= 0 || retention >= 1 || math.IsNaN(retention) {
		t.Errorf("retention %g out of (0, 1)", retention)
	}
	// A malformed event surfaces as an error, not a corrupt schedule.
	if _, err := SimulateDecode(est, 3, FaultEvent{Resource: "ghost", Start: 0, Duration: 1}); err == nil {
		t.Error("unregistered fault resource accepted")
	}
}
