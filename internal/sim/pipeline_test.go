package sim

import (
	"math"
	"testing"
)

func TestPipelineSingleStageSerial(t *testing.T) {
	// One stage, one micro-batch: tokens serialize exactly.
	res, err := SimulatePipeline(PipelineSpec{Stages: 1, MicroBatches: 1, Tokens: 10, StageTime: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 20 {
		t.Errorf("makespan = %g, want 20", res.Makespan)
	}
	if math.Abs(res.Efficiency-1) > 1e-9 {
		t.Errorf("efficiency = %g, want 1", res.Efficiency)
	}
}

func TestPipelineBubbleWithOneMicroBatch(t *testing.T) {
	// S stages with a single stream: each stage idles S-1 of every S slots.
	res, err := SimulatePipeline(PipelineSpec{Stages: 4, MicroBatches: 1, Tokens: 8, StageTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Per token the single stream takes 4 stage slots.
	if math.Abs(res.PerToken-4) > 1e-9 {
		t.Errorf("per-token = %g, want 4", res.PerToken)
	}
	if res.Efficiency > 0.3 {
		t.Errorf("efficiency %g too high for a drained pipeline", res.Efficiency)
	}
}

func TestPipelineFillsWithMicroBatches(t *testing.T) {
	// Enough micro-batches hide the pipeline depth: steady-state per-token
	// time approaches M x stage time (each stage processes M batches per
	// token) with high efficiency.
	shallow, err := SimulatePipeline(PipelineSpec{Stages: 4, MicroBatches: 1, Tokens: 16, StageTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := SimulatePipeline(PipelineSpec{Stages: 4, MicroBatches: 8, Tokens: 16, StageTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Throughput per stream: shallow moves 1 token per 4 time units; deep
	// moves 8 tokens per ~8 time units at steady state.
	shallowPerStream := shallow.PerToken
	deepPerStream := deep.PerToken / 8
	if deepPerStream >= shallowPerStream {
		t.Errorf("micro-batching did not improve per-stream time: %g >= %g", deepPerStream, shallowPerStream)
	}
	if deep.Efficiency < 0.8 {
		t.Errorf("deep pipeline efficiency = %g, want >= 0.8", deep.Efficiency)
	}
	if deep.StageUtilization < 0.8 {
		t.Errorf("bottleneck stage utilization = %g, want >= 0.8", deep.StageUtilization)
	}
}

func TestPipelineEfficiencyMatchesClosedForm(t *testing.T) {
	// The wavefront's steady state: a micro-batch's next token waits for
	// its previous token to clear all S stages, so each stage fits M tasks
	// into every S-slot cycle — efficiency min(1, M/S). (The analytic
	// pipeline package's M/(M+S-1) models a per-token flush, a *worse*
	// regime than this dependency structure permits; the simulator
	// quantifies how much the flush costs.)
	for _, tc := range []struct{ s, m int }{{3, 2}, {4, 1}, {4, 3}, {2, 5}} {
		spec := PipelineSpec{Stages: tc.s, MicroBatches: tc.m, Tokens: 64, StageTime: 1}
		res, err := SimulatePipeline(spec)
		if err != nil {
			t.Fatal(err)
		}
		closed := math.Min(1, float64(tc.m)/float64(tc.s))
		if r := res.Efficiency / closed; r < 0.9 || r > 1.1 {
			t.Errorf("S=%d M=%d: simulated efficiency %g vs closed form %g (ratio %.2f)",
				tc.s, tc.m, res.Efficiency, closed, r)
		}
	}
}

func TestPipelineHopsSlowTheWave(t *testing.T) {
	free, err := SimulatePipeline(PipelineSpec{Stages: 4, MicroBatches: 2, Tokens: 8, StageTime: 1, HopTime: 0})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := SimulatePipeline(PipelineSpec{Stages: 4, MicroBatches: 2, Tokens: 8, StageTime: 1, HopTime: 2})
	if err != nil {
		t.Fatal(err)
	}
	if costly.Makespan <= free.Makespan {
		t.Errorf("hops did not slow the pipeline: %g <= %g", costly.Makespan, free.Makespan)
	}
}

func TestPipelineValidation(t *testing.T) {
	bad := []PipelineSpec{
		{Stages: 0, MicroBatches: 1, Tokens: 1, StageTime: 1},
		{Stages: 1, MicroBatches: 0, Tokens: 1, StageTime: 1},
		{Stages: 1, MicroBatches: 1, Tokens: 0, StageTime: 1},
		{Stages: 1, MicroBatches: 1, Tokens: 1, StageTime: -1},
	}
	for _, spec := range bad {
		if _, err := SimulatePipeline(spec); err == nil {
			t.Errorf("accepted invalid spec %+v", spec)
		}
	}
}
