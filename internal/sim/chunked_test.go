package sim

import (
	"math"
	"testing"

	"repro/internal/perfmodel"
)

func TestSimulateChunkedPrefillDegeneratesToMonolithic(t *testing.T) {
	e := mkEstimator(t, perfmodel.Strategy{WeightsGPUPct: 0.55}, perfmodel.FlexGenProfile())
	mono, err := SimulatePrefill(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{0, -1, e.Work.PromptLen, e.Work.PromptLen + 100} {
		res, err := SimulateChunkedPrefill(e, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if res.Chunks != 1 {
			t.Errorf("chunk=%d: got %d chunks, want 1", chunk, res.Chunks)
		}
		if d := math.Abs(res.Total - mono.Total); d > 1e-9*mono.Total {
			t.Errorf("chunk=%d: makespan %.9g != monolithic %.9g", chunk, res.Total, mono.Total)
		}
	}
}

func TestSimulateChunkedPrefillBusyMatchesAnalyticalModel(t *testing.T) {
	// Per-kind busy totals are schedule-independent, so the DES and the
	// closed form must agree to float rounding, not calibration error.
	cases := []perfmodel.Strategy{
		{WeightsGPUPct: 0.55},
		{AttnOnCPU: true, WeightsGPUPct: 0.55},
		{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64},
	}
	kinds := []struct {
		name string
		pick func(perfmodel.TaskTimes) float64
	}{
		{"load_weight", func(tt perfmodel.TaskTimes) float64 { return tt.LoadWeight }},
		{"prefill_compute", func(tt perfmodel.TaskTimes) float64 { return tt.Compute }},
		{"store_cache", func(tt perfmodel.TaskTimes) float64 { return tt.StoreCache }},
	}
	for _, strat := range cases {
		e := mkEstimator(t, strat, perfmodel.FlexGenProfile())
		for _, chunk := range []int{1, 5, 16, 63, e.Work.PromptLen} {
			res, err := SimulateChunkedPrefill(e, chunk)
			if err != nil {
				t.Fatal(err)
			}
			want := e.ChunkedPrefillTasks(chunk)
			for _, k := range kinds {
				w := k.pick(want)
				got := res.TaskBusy[k.name]
				diff := math.Abs(got - w)
				if ref := math.Max(math.Abs(got), math.Abs(w)); ref > 0 && diff/ref > 1e-6 {
					t.Errorf("%v chunk=%d: %s busy %.12g != model %.12g", strat, chunk, k.name, got, w)
				}
			}
			// Structural makespan bounds: at least the busiest kind, at most
			// the serial sum of everything.
			maxKind, sum := 0.0, 0.0
			for _, b := range res.TaskBusy {
				sum += b
				if b > maxKind {
					maxKind = b
				}
			}
			if res.Total < maxKind-1e-9 || res.Total > sum+1e-9 {
				t.Errorf("%v chunk=%d: makespan %.9g outside [%.9g, %.9g]", strat, chunk, res.Total, maxKind, sum)
			}
		}
	}
}

func TestSimulateChunkedPrefillComputeShrinksWithChunking(t *testing.T) {
	// Causal chunked prefill never recomputes attention rows; smaller chunks
	// mean earlier rows attend over shorter history, so total GPU busy time
	// strictly decreases versus the monolithic pass.
	e := mkEstimator(t, perfmodel.Strategy{WeightsGPUPct: 0.55}, perfmodel.FlexGenProfile())
	mono, err := SimulateChunkedPrefill(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := SimulateChunkedPrefill(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	if chunked.Chunks != (e.Work.PromptLen+7)/8 {
		t.Fatalf("got %d chunks", chunked.Chunks)
	}
	if chunked.TaskBusy["prefill_compute"] >= mono.TaskBusy["prefill_compute"] {
		t.Errorf("chunked compute busy %.9g should be below monolithic %.9g",
			chunked.TaskBusy["prefill_compute"], mono.TaskBusy["prefill_compute"])
	}
	// But weight streaming repeats per chunk, so the uplink pays for it.
	if chunked.TaskBusy["load_weight"] <= mono.TaskBusy["load_weight"] {
		t.Errorf("chunked load busy %.9g should exceed monolithic %.9g",
			chunked.TaskBusy["load_weight"], mono.TaskBusy["load_weight"])
	}
}
