// Package sim is a discrete-event simulator for offloaded LLM inference: a
// resource-constrained task-graph kernel (FIFO bandwidth and compute
// servers, dependency-triggered dispatch) plus a builder that expands
// Algorithm 1's zig-zag decode schedule into a task graph whose durations
// come from the analytical component models. Where the perfmodel composes
// one layer's resource times with a calibrated β, the simulator derives the
// overlap from first principles: tasks queue on their resources and start
// when their dependencies complete.
package sim

import (
	"container/heap"
	"fmt"
)

// TaskID identifies a task within one Sim.
type TaskID int

// TaskSpec describes one unit of work.
type TaskSpec struct {
	Name string
	// Resource names the server this task occupies for Duration seconds.
	Resource string
	// Duration is the service time in seconds (zero is allowed for
	// synchronization pseudo-tasks).
	Duration float64
	// Deps must complete before this task may start.
	Deps []TaskID
}

// Sim accumulates a task graph and executes it.
type Sim struct {
	resources map[string]bool
	tasks     []TaskSpec
}

// New returns an empty simulator.
func New() *Sim {
	return &Sim{resources: map[string]bool{}}
}

// AddResource registers a FIFO server. Registering twice is harmless.
func (s *Sim) AddResource(name string) {
	s.resources[name] = true
}

// AddTask appends a task and returns its ID. Dependencies must reference
// already-added tasks (enforced at Run).
func (s *Sim) AddTask(spec TaskSpec) TaskID {
	s.tasks = append(s.tasks, spec)
	return TaskID(len(s.tasks) - 1)
}

// Result is the executed schedule.
type Result struct {
	// Makespan is the completion time of the last task.
	Makespan float64
	// Start and End give each task's executed interval.
	Start, End []float64
	// Busy is the total service time per resource.
	Busy map[string]float64
}

// Utilization returns a resource's busy fraction of the makespan.
func (r *Result) Utilization(resource string) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.Busy[resource] / r.Makespan
}

// completion is a scheduled task end event.
type completion struct {
	time float64
	id   TaskID
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].id < h[j].id
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes the task graph: each resource serves ready tasks one at a
// time in issue order; a task is ready when all dependencies have completed.
// It returns an error for malformed graphs (unknown resources, bad or
// circular dependencies, negative durations).
func (s *Sim) Run() (*Result, error) {
	n := len(s.tasks)
	res := &Result{
		Start: make([]float64, n),
		End:   make([]float64, n),
		Busy:  map[string]float64{},
	}
	if n == 0 {
		return res, nil
	}

	remaining := make([]int, n)
	dependents := make([][]TaskID, n)
	for i, t := range s.tasks {
		if !s.resources[t.Resource] {
			return nil, fmt.Errorf("sim: task %d (%s) uses unregistered resource %q", i, t.Name, t.Resource)
		}
		if t.Duration < 0 {
			return nil, fmt.Errorf("sim: task %d (%s) has negative duration", i, t.Name)
		}
		for _, d := range t.Deps {
			if int(d) < 0 || int(d) >= n {
				return nil, fmt.Errorf("sim: task %d (%s) depends on unknown task %d", i, t.Name, d)
			}
			if int(d) >= i {
				return nil, fmt.Errorf("sim: task %d (%s) depends on later task %d (graphs must be issued in order)", i, t.Name, d)
			}
			remaining[i]++
			dependents[d] = append(dependents[d], TaskID(i))
		}
	}

	// Per-resource FIFO queues of ready tasks (issue order preserved).
	queues := map[string][]TaskID{}
	busyUntil := map[string]float64{}
	running := map[string]bool{}

	var events completionHeap
	now := 0.0
	finished := 0

	enqueue := func(id TaskID) {
		r := s.tasks[id].Resource
		queues[r] = append(queues[r], id)
	}
	dispatch := func(r string) {
		if running[r] || len(queues[r]) == 0 {
			return
		}
		id := queues[r][0]
		queues[r] = queues[r][1:]
		start := now
		if busyUntil[r] > start {
			start = busyUntil[r]
		}
		t := s.tasks[id]
		end := start + t.Duration
		res.Start[id] = start
		res.End[id] = end
		res.Busy[r] += t.Duration
		busyUntil[r] = end
		running[r] = true
		heap.Push(&events, completion{time: end, id: id})
	}

	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			enqueue(TaskID(i))
		}
	}
	for r := range s.resources {
		dispatch(r)
	}

	for finished < n {
		if events.Len() == 0 {
			return nil, fmt.Errorf("sim: deadlock with %d/%d tasks finished (dependency cycle?)", finished, n)
		}
		ev := heap.Pop(&events).(completion)
		now = ev.time
		finished++
		r := s.tasks[ev.id].Resource
		running[r] = false
		if now > res.Makespan {
			res.Makespan = now
		}
		for _, dep := range dependents[ev.id] {
			remaining[dep]--
			if remaining[dep] == 0 {
				enqueue(dep)
			}
		}
		// Re-dispatch every resource: the completed task may have unblocked
		// work anywhere.
		for name := range s.resources {
			dispatch(name)
		}
	}
	return res, nil
}
