// Package sim is a discrete-event simulator for offloaded LLM inference: a
// resource-constrained task-graph kernel (FIFO bandwidth and compute
// servers, dependency-triggered dispatch) plus a builder that expands
// Algorithm 1's zig-zag decode schedule into a task graph whose durations
// come from the analytical component models. Where the perfmodel composes
// one layer's resource times with a calibrated β, the simulator derives the
// overlap from first principles: tasks queue on their resources and start
// when their dependencies complete.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TaskID identifies a task within one Sim.
type TaskID int

// TaskSpec describes one unit of work.
type TaskSpec struct {
	Name string
	// Resource names the server this task occupies for Duration seconds.
	Resource string
	// Duration is the service time in seconds (zero is allowed for
	// synchronization pseudo-tasks).
	Duration float64
	// Deps must complete before this task may start.
	Deps []TaskID
}

// FaultEvent degrades one resource for a time window: with Factor 0 the
// resource suffers a total outage (no progress inside the window); with
// Factor f >= 1 its service rate drops to 1/f (a task needing w seconds of
// work consumes f*w seconds of window). Tasks already in service when the
// window opens are slowed, not aborted — the window stretches their
// completion, modeling bandwidth contention or a transient device loss.
type FaultEvent struct {
	Resource string
	Start    float64
	Duration float64
	Factor   float64
}

// Validate reports malformed events.
func (f FaultEvent) Validate() error {
	if f.Resource == "" {
		return fmt.Errorf("sim: fault event without a resource")
	}
	if f.Start < 0 || f.Duration <= 0 {
		return fmt.Errorf("sim: fault window [%g, +%g) on %q must have start >= 0 and positive duration", f.Start, f.Duration, f.Resource)
	}
	if f.Factor != 0 && f.Factor < 1 {
		return fmt.Errorf("sim: fault factor %g on %q must be 0 (outage) or >= 1 (slowdown)", f.Factor, f.Resource)
	}
	return nil
}

// End returns the window's closing time.
func (f FaultEvent) End() float64 { return f.Start + f.Duration }

// Sim accumulates a task graph and executes it.
type Sim struct {
	resources map[string]bool
	tasks     []TaskSpec
	faults    map[string][]FaultEvent
	addErr    error // first malformed AddTask/AddFault, surfaced by Run
}

// New returns an empty simulator.
func New() *Sim {
	return &Sim{resources: map[string]bool{}, faults: map[string][]FaultEvent{}}
}

// AddResource registers a FIFO server. Registering twice is harmless.
func (s *Sim) AddResource(name string) {
	s.resources[name] = true
}

// AddTask appends a task and returns its ID. The spec is validated eagerly —
// the resource must already be registered, the duration non-negative, and
// every dependency must reference an earlier task (graphs are issued in
// order, so a forward or out-of-range dependency can never be satisfied and
// would deadlock the run). The first violation is recorded with the task's
// identity and returned by Err and Run.
func (s *Sim) AddTask(spec TaskSpec) TaskID {
	id := TaskID(len(s.tasks))
	if s.addErr == nil {
		switch {
		case !s.resources[spec.Resource]:
			s.addErr = fmt.Errorf("sim: task %d (%s) uses unregistered resource %q", id, spec.Name, spec.Resource)
		case spec.Duration < 0:
			s.addErr = fmt.Errorf("sim: task %d (%s) has negative duration %g", id, spec.Name, spec.Duration)
		default:
			for _, d := range spec.Deps {
				if d < 0 || d >= id {
					s.addErr = fmt.Errorf("sim: task %d (%s) depends on task %d, but only tasks 0..%d exist (dependencies must point backwards)",
						id, spec.Name, d, id-1)
					break
				}
			}
		}
	}
	s.tasks = append(s.tasks, spec)
	return id
}

// AddFault schedules a resource degradation window. Windows on the same
// resource must not overlap.
func (s *Sim) AddFault(ev FaultEvent) error {
	if err := ev.Validate(); err != nil {
		if s.addErr == nil {
			s.addErr = err
		}
		return err
	}
	if !s.resources[ev.Resource] {
		err := fmt.Errorf("sim: fault event on unregistered resource %q", ev.Resource)
		if s.addErr == nil {
			s.addErr = err
		}
		return err
	}
	for _, prev := range s.faults[ev.Resource] {
		if ev.Start < prev.End() && prev.Start < ev.End() {
			err := fmt.Errorf("sim: fault windows [%g, %g) and [%g, %g) on %q overlap",
				prev.Start, prev.End(), ev.Start, ev.End(), ev.Resource)
			if s.addErr == nil {
				s.addErr = err
			}
			return err
		}
	}
	s.faults[ev.Resource] = append(s.faults[ev.Resource], ev)
	sort.Slice(s.faults[ev.Resource], func(i, j int) bool {
		return s.faults[ev.Resource][i].Start < s.faults[ev.Resource][j].Start
	})
	return nil
}

// Err returns the first graph-construction error, or nil.
func (s *Sim) Err() error { return s.addErr }

// finishTime integrates work on a resource from start across its fault
// windows: full rate outside windows, rate 1/Factor inside a slowdown, no
// progress inside an outage.
func (s *Sim) finishTime(resource string, start, work float64) float64 {
	t := start
	remaining := work
	for _, ev := range s.faults[resource] {
		if remaining <= 0 {
			break
		}
		if ev.End() <= t {
			continue
		}
		if ev.Start > t {
			seg := ev.Start - t
			if remaining <= seg {
				return t + remaining
			}
			remaining -= seg
			t = ev.Start
		}
		if ev.Factor == 0 {
			t = ev.End()
			continue
		}
		span := ev.End() - t
		capacity := span / ev.Factor
		if remaining <= capacity {
			return t + remaining*ev.Factor
		}
		remaining -= capacity
		t = ev.End()
	}
	return t + remaining
}

// Result is the executed schedule.
type Result struct {
	// Makespan is the completion time of the last task.
	Makespan float64
	// Start and End give each task's executed interval.
	Start, End []float64
	// Busy is the total service time per resource.
	Busy map[string]float64
}

// Utilization returns a resource's busy fraction of the makespan.
func (r *Result) Utilization(resource string) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.Busy[resource] / r.Makespan
}

// completion is a scheduled task end event.
type completion struct {
	time float64
	id   TaskID
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].id < h[j].id
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ParseFaultEvents parses a flag-friendly event spec: comma-separated
// clauses "resource@START+DURATION" (outage) or
// "resource@START+DURATIONxFACTOR" (slowdown), times in seconds. Example:
//
//	h2d@0.5+0.2,gpu@1.0+0.5x3
func ParseFaultEvents(spec string) ([]FaultEvent, error) {
	var out []FaultEvent
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		resource, rest, ok := strings.Cut(clause, "@")
		if !ok || resource == "" {
			return nil, fmt.Errorf("sim: malformed fault clause %q (want resource@start+duration[xfactor])", clause)
		}
		startStr, rest, ok := strings.Cut(rest, "+")
		if !ok {
			return nil, fmt.Errorf("sim: malformed fault clause %q (missing +duration)", clause)
		}
		durStr, factorStr, hasFactor := strings.Cut(rest, "x")
		ev := FaultEvent{Resource: resource}
		var err error
		if ev.Start, err = strconv.ParseFloat(startStr, 64); err != nil {
			return nil, fmt.Errorf("sim: bad fault start %q: %w", startStr, err)
		}
		if ev.Duration, err = strconv.ParseFloat(durStr, 64); err != nil {
			return nil, fmt.Errorf("sim: bad fault duration %q: %w", durStr, err)
		}
		if hasFactor {
			if ev.Factor, err = strconv.ParseFloat(factorStr, 64); err != nil {
				return nil, fmt.Errorf("sim: bad fault factor %q: %w", factorStr, err)
			}
		}
		if err := ev.Validate(); err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// Run executes the task graph: each resource serves ready tasks one at a
// time in issue order; a task is ready when all dependencies have completed.
// It returns an error for malformed graphs (unknown resources, bad or
// circular dependencies, negative durations).
func (s *Sim) Run() (*Result, error) {
	if s.addErr != nil {
		return nil, s.addErr
	}
	n := len(s.tasks)
	res := &Result{
		Start: make([]float64, n),
		End:   make([]float64, n),
		Busy:  map[string]float64{},
	}
	if n == 0 {
		return res, nil
	}

	remaining := make([]int, n)
	dependents := make([][]TaskID, n)
	for i, t := range s.tasks {
		if !s.resources[t.Resource] {
			return nil, fmt.Errorf("sim: task %d (%s) uses unregistered resource %q", i, t.Name, t.Resource)
		}
		if t.Duration < 0 {
			return nil, fmt.Errorf("sim: task %d (%s) has negative duration", i, t.Name)
		}
		for _, d := range t.Deps {
			if int(d) < 0 || int(d) >= n {
				return nil, fmt.Errorf("sim: task %d (%s) depends on unknown task %d", i, t.Name, d)
			}
			if int(d) >= i {
				return nil, fmt.Errorf("sim: task %d (%s) depends on later task %d (graphs must be issued in order)", i, t.Name, d)
			}
			remaining[i]++
			dependents[d] = append(dependents[d], TaskID(i))
		}
	}

	// Per-resource FIFO queues of ready tasks (issue order preserved).
	queues := map[string][]TaskID{}
	busyUntil := map[string]float64{}
	running := map[string]bool{}

	var events completionHeap
	now := 0.0
	finished := 0

	enqueue := func(id TaskID) {
		r := s.tasks[id].Resource
		queues[r] = append(queues[r], id)
	}
	dispatch := func(r string) {
		if running[r] || len(queues[r]) == 0 {
			return
		}
		id := queues[r][0]
		queues[r] = queues[r][1:]
		start := now
		if busyUntil[r] > start {
			start = busyUntil[r]
		}
		t := s.tasks[id]
		end := s.finishTime(r, start, t.Duration)
		res.Start[id] = start
		res.End[id] = end
		res.Busy[r] += end - start
		busyUntil[r] = end
		running[r] = true
		heap.Push(&events, completion{time: end, id: id})
	}

	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			enqueue(TaskID(i))
		}
	}
	for r := range s.resources {
		dispatch(r)
	}

	for finished < n {
		if events.Len() == 0 {
			return nil, fmt.Errorf("sim: deadlock with %d/%d tasks finished (dependency cycle?)", finished, n)
		}
		ev := heap.Pop(&events).(completion)
		now = ev.time
		finished++
		r := s.tasks[ev.id].Resource
		running[r] = false
		if now > res.Makespan {
			res.Makespan = now
		}
		for _, dep := range dependents[ev.id] {
			remaining[dep]--
			if remaining[dep] == 0 {
				enqueue(dep)
			}
		}
		// Re-dispatch every resource: the completed task may have unblocked
		// work anywhere.
		for name := range s.resources {
			dispatch(name)
		}
	}
	return res, nil
}
