package sim

import (
	"fmt"

	"repro/internal/perfmodel"
)

// PrefillResult summarizes a simulated prefill pass.
type PrefillResult struct {
	// Total is the whole-prompt processing time across all layers.
	Total float64
	// PerLayer is the steady-state per-layer time.
	PerLayer float64
	// Utilization per resource.
	Utilization map[string]float64
}

// SimulatePrefill expands FlexGen's prefill (steps 1.1–1.3) into a task
// graph: per layer, the weight upload (prefetched), the GPU compute over the
// whole prompt, and the KV-cache offload to host memory, which overlaps the
// next layer's work on the downlink.
func SimulatePrefill(e *perfmodel.Estimator) (*PrefillResult, error) {
	layers := e.Mod.Layers
	if layers < 1 {
		return nil, fmt.Errorf("sim: model has no layers")
	}
	weightUp := e.WeightUpTime()
	compute, kvDown := e.PrefillParts()

	s := New()
	for _, r := range []string{ResGPU, ResH2D, ResD2H} {
		s.AddResource(r)
	}
	var prevCompute TaskID = -1
	for j := 0; j < layers; j++ {
		lw := s.AddTask(TaskSpec{
			Name: fmt.Sprintf("load_weight[%d]", j), Resource: ResH2D, Duration: weightUp,
		})
		deps := []TaskID{lw}
		if prevCompute >= 0 {
			deps = append(deps, prevCompute)
		}
		comp := s.AddTask(TaskSpec{
			Name: fmt.Sprintf("prefill_compute[%d]", j), Resource: ResGPU, Duration: compute,
			Deps: deps,
		})
		if kvDown > 0 {
			s.AddTask(TaskSpec{
				Name: fmt.Sprintf("store_cache[%d]", j), Resource: ResD2H, Duration: kvDown,
				Deps: []TaskID{comp},
			})
		}
		prevCompute = comp
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	out := &PrefillResult{
		Total:       res.Makespan,
		PerLayer:    res.Makespan / float64(layers),
		Utilization: map[string]float64{},
	}
	for _, r := range []string{ResGPU, ResH2D, ResD2H} {
		out.Utilization[r] = res.Utilization(r)
	}
	return out, nil
}

// SimulateRun combines the simulated prefill with the simulated decode into
// an end-to-end throughput figure (tokens/s over the whole workload),
// replacing both analytical phase estimates with DES results.
func SimulateRun(e *perfmodel.Estimator, decodeSteps int) (float64, error) {
	pf, err := SimulatePrefill(e)
	if err != nil {
		return 0, err
	}
	dec, err := SimulateDecode(e, decodeSteps)
	if err != nil {
		return 0, err
	}
	l := float64(e.Mod.Layers)
	n := float64(e.Work.GenLen)
	total := pf.Total + dec.StepTime*l*(n-1)
	return float64(e.Work.TotalTokens()) / total, nil
}
