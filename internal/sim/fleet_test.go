package sim

import (
	"testing"
)

func baseFleet() FleetConfig {
	return FleetConfig{
		Replicas:         3,
		Slots:            4,
		Requests:         2000,
		ArrivalRate:      400,
		PromptLen:        64,
		GenLen:           32,
		PrefillTokenCost: 40e-6,
		TokenCost:        300e-6,
		Seed:             1,
	}
}

// TestFleetBaselineServesEverything: a healthy, adequately provisioned fleet
// completes every request with no failovers.
func TestFleetBaselineServesEverything(t *testing.T) {
	res, err := RunFleet(baseFleet())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Offered || res.Failed != 0 {
		t.Fatalf("healthy fleet completed %d/%d with %d failed", res.Completed, res.Offered, res.Failed)
	}
	if res.Failovers != 0 {
		t.Fatalf("healthy fleet recorded %d failovers", res.Failovers)
	}
	if res.Availability != 1 {
		t.Fatalf("availability = %g, want 1", res.Availability)
	}
}

// TestFleetDeterministic: identical configs produce identical results — the
// property that makes fleet experiments reproducible artifacts.
func TestFleetDeterministic(t *testing.T) {
	cfg := baseFleet()
	cfg.Down = []FleetWindow{{Replica: 0, Start: 0.5, Duration: 1.0}}
	cfg.Hedge = true
	a, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same config diverged:\n%+v\n%+v", *a, *b)
	}
}

// TestFleetAvailabilityUnderKill: killing one of three replicas mid-run
// fails its in-flight requests over and the fleet stays >= 99% available —
// the same gate the live bench run enforces.
func TestFleetAvailabilityUnderKill(t *testing.T) {
	cfg := baseFleet()
	cfg.Down = []FleetWindow{{Replica: 0, Start: 0.5, Duration: 2.0}}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("kill window produced no failovers; in-flight requests were not re-dispatched")
	}
	if res.Availability < 0.99 {
		t.Fatalf("availability %.4f under one-of-three kill, want >= 0.99 (%d failed)", res.Availability, res.Failed)
	}
}

// TestFleetHedgingImprovesTailLatency: one replica goes 20x slow SILENTLY
// (health signals still say Up, so affinity/score routing keeps sending it
// traffic — the undetected-degradation regime). Hedging must cut p99 TTFT
// versus the identical run without hedging: requests stuck on the slow
// replica get rescued by the second attempt.
func TestFleetHedgingImprovesTailLatency(t *testing.T) {
	cfg := baseFleet()
	cfg.Slow = []FleetWindow{{Replica: 0, Start: 0.2, Duration: 3.0, Factor: 20, Silent: true}}

	plain, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hedge = true
	hedged, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hedged.Hedges == 0 {
		t.Fatal("slow window triggered no hedges")
	}
	if hedged.HedgeWins == 0 {
		t.Fatal("no hedge ever won against a 20x-slow primary")
	}
	if hedged.TTFTp99 >= plain.TTFTp99 {
		t.Fatalf("hedging did not improve p99 TTFT: %.4fs hedged vs %.4fs plain", hedged.TTFTp99, plain.TTFTp99)
	}
	t.Logf("p99 TTFT: plain %.4fs, hedged %.4fs (%d hedges, %d wins)",
		plain.TTFTp99, hedged.TTFTp99, hedged.Hedges, hedged.HedgeWins)
}

// TestFleetPrefixAffinityConcentratesFamilies: with many shared-prefix
// families spread over many replicas, affinity-aware routing concentrates
// each family onto the replicas already holding its prefix — more cache
// hits and a lower mean TTFT than the BlindAffinity control, where routing
// cannot see the caches and every family pays cold prefills on every
// replica it happens to land on.
func TestFleetPrefixAffinityConcentratesFamilies(t *testing.T) {
	cfg := baseFleet()
	cfg.Replicas = 8
	cfg.PrefixGroups = 64
	cfg.Requests = 4000

	affine, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if affine.PrefixHits == 0 {
		t.Fatal("affinity routing produced no prefix hits")
	}

	blind := cfg
	blind.BlindAffinity = true
	blindRes, err := RunFleet(blind)
	if err != nil {
		t.Fatal(err)
	}
	if affine.PrefixHits <= blindRes.PrefixHits {
		t.Fatalf("affinity hits %d not above blind routing's %d", affine.PrefixHits, blindRes.PrefixHits)
	}
	if affine.MeanTTFT >= blindRes.MeanTTFT {
		t.Fatalf("affinity mean TTFT %.5fs not below blind %.5fs", affine.MeanTTFT, blindRes.MeanTTFT)
	}
	t.Logf("prefix hits: affine %d vs blind %d; mean TTFT %.5fs vs %.5fs",
		affine.PrefixHits, blindRes.PrefixHits, affine.MeanTTFT, blindRes.MeanTTFT)
}

// TestFleetScalesToHundredReplicas: the router policy at 128 replicas and
// 20k requests — the scale the live harness cannot reach — still completes
// everything and runs in well under a second.
func TestFleetScalesToHundredReplicas(t *testing.T) {
	cfg := baseFleet()
	cfg.Replicas = 128
	cfg.Slots = 4
	cfg.Requests = 20000
	cfg.ArrivalRate = 20000
	cfg.PrefixGroups = 64
	cfg.Hedge = true
	cfg.Down = []FleetWindow{
		{Replica: 3, Start: 0.2, Duration: 0.5},
		{Replica: 77, Start: 0.4, Duration: 0.3},
	}
	cfg.Slow = []FleetWindow{{Replica: 9, Start: 0.1, Duration: 0.8, Factor: 10}}

	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability < 0.999 {
		t.Fatalf("availability %.5f at 128 replicas with two kills, want >= 0.999", res.Availability)
	}
	t.Logf("fleet 128x4: %d/%d completed, %d failovers, %d hedges, p99 TTFT %.4fs",
		res.Completed, res.Offered, res.Failovers, res.Hedges, res.TTFTp99)
}

// TestFleetConfigValidate rejects malformed configurations.
func TestFleetConfigValidate(t *testing.T) {
	bad := baseFleet()
	bad.Replicas = 0
	if _, err := RunFleet(bad); err == nil {
		t.Fatal("zero replicas accepted")
	}
	bad = baseFleet()
	bad.Down = []FleetWindow{{Replica: 99, Start: 0, Duration: 1}}
	if _, err := RunFleet(bad); err == nil {
		t.Fatal("out-of-range window replica accepted")
	}
	bad = baseFleet()
	bad.Slow = []FleetWindow{{Replica: 0, Start: 0, Duration: 1, Factor: 0.5}}
	if _, err := RunFleet(bad); err == nil {
		t.Fatal("slowdown factor < 1 accepted")
	}
}
