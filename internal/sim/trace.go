package sim

import (
	"encoding/json"
	"fmt"
)

// ChromeTraceEvent is one complete ("X") event in the Chrome trace format
// (chrome://tracing, Perfetto).
type ChromeTraceEvent struct {
	Name     string  `json:"name"`
	Phase    string  `json:"ph"`
	TimeUS   float64 `json:"ts"`
	DurUS    float64 `json:"dur"`
	PID      int     `json:"pid"`
	TID      int     `json:"tid"`
	Category string  `json:"cat"`
}

// ChromeTrace renders the executed schedule as a Chrome trace JSON document:
// one "thread" per resource, one complete event per task. Load the output in
// chrome://tracing or Perfetto to inspect task overlap.
func (s *Sim) ChromeTrace(res *Result) ([]byte, error) {
	if res == nil || len(res.Start) != len(s.tasks) {
		return nil, fmt.Errorf("sim: trace needs the Result of this Sim's Run")
	}
	// Stable resource -> tid mapping in first-use order.
	tids := map[string]int{}
	var events []ChromeTraceEvent
	for i, t := range s.tasks {
		if t.Duration == 0 {
			continue // synchronization pseudo-tasks clutter the view
		}
		tid, ok := tids[t.Resource]
		if !ok {
			tid = len(tids)
			tids[t.Resource] = tid
		}
		events = append(events, ChromeTraceEvent{
			Name:     t.Name,
			Phase:    "X",
			TimeUS:   res.Start[i] * 1e6,
			DurUS:    (res.End[i] - res.Start[i]) * 1e6,
			PID:      1,
			TID:      tid,
			Category: t.Resource,
		})
	}
	doc := struct {
		TraceEvents []ChromeTraceEvent `json:"traceEvents"`
	}{TraceEvents: events}
	return json.MarshalIndent(doc, "", " ")
}
