package sim

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

func TestKernelSerialChain(t *testing.T) {
	s := New()
	s.AddResource("r")
	a := s.AddTask(TaskSpec{Name: "a", Resource: "r", Duration: 1})
	b := s.AddTask(TaskSpec{Name: "b", Resource: "r", Duration: 2, Deps: []TaskID{a}})
	s.AddTask(TaskSpec{Name: "c", Resource: "r", Duration: 3, Deps: []TaskID{b}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6 {
		t.Errorf("makespan = %g, want 6", res.Makespan)
	}
	if res.Busy["r"] != 6 {
		t.Errorf("busy = %g, want 6", res.Busy["r"])
	}
	if res.Utilization("r") != 1 {
		t.Errorf("utilization = %g, want 1", res.Utilization("r"))
	}
}

func TestKernelIndependentResourcesOverlap(t *testing.T) {
	s := New()
	s.AddResource("x")
	s.AddResource("y")
	s.AddTask(TaskSpec{Name: "a", Resource: "x", Duration: 5})
	s.AddTask(TaskSpec{Name: "b", Resource: "y", Duration: 3})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 5 {
		t.Errorf("makespan = %g, want 5 (full overlap)", res.Makespan)
	}
}

func TestKernelResourceContention(t *testing.T) {
	// Two independent tasks on one resource serialize in issue order.
	s := New()
	s.AddResource("link")
	a := s.AddTask(TaskSpec{Name: "a", Resource: "link", Duration: 2})
	b := s.AddTask(TaskSpec{Name: "b", Resource: "link", Duration: 2})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4 {
		t.Errorf("makespan = %g, want 4 (serialized)", res.Makespan)
	}
	if res.Start[b] < res.End[a] {
		t.Errorf("task b started at %g before a ended at %g", res.Start[b], res.End[a])
	}
}

func TestKernelDiamondWithResources(t *testing.T) {
	// a -> {b, c} -> d where b and c use different resources: they overlap.
	s := New()
	s.AddResource("r1")
	s.AddResource("r2")
	a := s.AddTask(TaskSpec{Name: "a", Resource: "r1", Duration: 1})
	b := s.AddTask(TaskSpec{Name: "b", Resource: "r1", Duration: 4, Deps: []TaskID{a}})
	c := s.AddTask(TaskSpec{Name: "c", Resource: "r2", Duration: 4, Deps: []TaskID{a}})
	s.AddTask(TaskSpec{Name: "d", Resource: "r1", Duration: 1, Deps: []TaskID{b, c}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6 {
		t.Errorf("makespan = %g, want 6", res.Makespan)
	}
}

func TestKernelErrors(t *testing.T) {
	s := New()
	s.AddResource("r")
	s.AddTask(TaskSpec{Name: "bad", Resource: "unknown", Duration: 1})
	if _, err := s.Run(); err == nil {
		t.Error("unknown resource accepted")
	}

	s2 := New()
	s2.AddResource("r")
	s2.AddTask(TaskSpec{Name: "neg", Resource: "r", Duration: -1})
	if _, err := s2.Run(); err == nil {
		t.Error("negative duration accepted")
	}

	s3 := New()
	s3.AddResource("r")
	s3.AddTask(TaskSpec{Name: "self", Resource: "r", Duration: 1, Deps: []TaskID{0}})
	if _, err := s3.Run(); err == nil {
		t.Error("self/forward dependency accepted")
	}

	s4 := New()
	if res, err := s4.Run(); err != nil || res.Makespan != 0 {
		t.Errorf("empty sim: %v, %v", res, err)
	}
}

// Property: makespan is at least the busiest resource's work and at most the
// total serial work; every task starts after its dependencies end.
func TestPropertyKernelBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		resources := []string{"a", "b", "c"}
		for _, r := range resources {
			s.AddResource(r)
		}
		n := 1 + rng.Intn(40)
		var total float64
		for i := 0; i < n; i++ {
			var deps []TaskID
			for d := 0; d < i; d++ {
				if rng.Float64() < 0.1 {
					deps = append(deps, TaskID(d))
				}
			}
			dur := rng.Float64()
			total += dur
			s.AddTask(TaskSpec{
				Name:     "t",
				Resource: resources[rng.Intn(len(resources))],
				Duration: dur,
				Deps:     deps,
			})
		}
		res, err := s.Run()
		if err != nil {
			return false
		}
		maxBusy := 0.0
		for _, b := range res.Busy {
			if b > maxBusy {
				maxBusy = b
			}
		}
		if res.Makespan < maxBusy-1e-9 || res.Makespan > total+1e-9 {
			return false
		}
		for i, task := range s.tasks {
			for _, d := range task.Deps {
				if res.Start[i] < res.End[d]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mkEstimator(t *testing.T, s perfmodel.Strategy, exec perfmodel.ExecProfile) *perfmodel.Estimator {
	t.Helper()
	e, err := perfmodel.New(hw.SingleGPUA100(), model.OPT30B, trace.PaperDefault(), s, exec)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSimulateDecodeAgainstAnalyticalModel(t *testing.T) {
	// The DES derives overlap from first principles; it must land in the
	// same regime as the calibrated analytical composition (between the
	// ideal max and full serialization, and within ~2.5x of the β model).
	cases := []perfmodel.Strategy{
		{AttnOnCPU: true, WeightsGPUPct: 0.55},
		{WeightsGPUPct: 0.55},
		{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64},
	}
	for _, strat := range cases {
		e := mkEstimator(t, strat, perfmodel.FlexGenProfile())
		res, err := SimulateDecode(e, 3)
		if err != nil {
			t.Fatal(err)
		}
		analytic := e.TGen()
		serial := e.TGenSerial()
		if res.StepTime <= 0 {
			t.Fatalf("%v: non-positive step time", strat)
		}
		if res.StepTime > serial*1.05 {
			t.Errorf("%v: DES step %.4f exceeds full serialization %.4f", strat, res.StepTime, serial)
		}
		ratio := res.StepTime / analytic
		if ratio < 0.3 || ratio > 2.5 {
			t.Errorf("%v: DES/analytic ratio = %.2f, want within [0.3, 2.5]", strat, ratio)
		}
	}
}

func TestSimulatePreservesFigure3Ordering(t *testing.T) {
	// The simulator must agree with the paper on the key ordering: without
	// attention offloading, KV quantization helps.
	fg := perfmodel.FlexGenProfile()
	plain, err := SimulateDecode(mkEstimator(t, perfmodel.Strategy{WeightsGPUPct: 0.55}, fg), 3)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := SimulateDecode(mkEstimator(t, perfmodel.Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}, fg), 3)
	if err != nil {
		t.Fatal(err)
	}
	if quant.Throughput <= plain.Throughput {
		t.Errorf("KV quantization should help in simulation: %.1f <= %.1f", quant.Throughput, plain.Throughput)
	}
}

func TestSimulateLinkIsBottleneckWithoutQuant(t *testing.T) {
	e := mkEstimator(t, perfmodel.Strategy{WeightsGPUPct: 0.55}, perfmodel.FlexGenProfile())
	res, err := SimulateDecode(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization[ResH2D] < 0.5 {
		t.Errorf("H2D utilization = %.2f, expected the upload link to be the bottleneck", res.Utilization[ResH2D])
	}
	if res.Utilization[ResH2D] > 1.000001 {
		t.Errorf("utilization above 1: %v", res.Utilization)
	}
}

func TestSimulateCPUAttentionShiftsBottleneck(t *testing.T) {
	e := mkEstimator(t, perfmodel.Strategy{AttnOnCPU: true, WeightsGPUPct: 0.55}, perfmodel.FlexGenProfile())
	res, err := SimulateDecode(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization[ResCPU] < res.Utilization[ResGPU] {
		t.Errorf("with attention offloading the CPU (%.2f) should outwork the GPU (%.2f)",
			res.Utilization[ResCPU], res.Utilization[ResGPU])
	}
}

func TestSimulateStepsClamping(t *testing.T) {
	e := mkEstimator(t, perfmodel.Strategy{WeightsGPUPct: 0.55}, perfmodel.FlexGenProfile())
	if _, err := SimulateDecode(e, 0); err == nil {
		t.Error("zero steps accepted")
	}
	res, err := SimulateDecode(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedSteps != 2 {
		t.Errorf("SimulatedSteps = %d, want 2", res.SimulatedSteps)
	}
	if res.Tasks <= 0 {
		t.Error("no tasks simulated")
	}
}

func TestSimulateSteadyState(t *testing.T) {
	// Per-step time should be stable across window sizes (periodic schedule).
	e := mkEstimator(t, perfmodel.Strategy{WeightsGPUPct: 0.55}, perfmodel.FlexGenProfile())
	short, err := SimulateDecode(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	long, err := SimulateDecode(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r := long.StepTime / short.StepTime; math.Abs(r-1) > 0.25 {
		t.Errorf("step time drifts with window: %.4f vs %.4f", short.StepTime, long.StepTime)
	}
}

func TestChromeTraceExport(t *testing.T) {
	s := New()
	s.AddResource("gpu")
	s.AddResource("sync")
	a := s.AddTask(TaskSpec{Name: "compute", Resource: "gpu", Duration: 0.5})
	s.AddTask(TaskSpec{Name: "barrier", Resource: "sync", Duration: 0, Deps: []TaskID{a}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.ChromeTrace(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []ChromeTraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// The zero-duration barrier is filtered; the compute event remains.
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("events = %d, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "compute" || ev.DurUS != 0.5e6 || ev.Phase != "X" {
		t.Errorf("unexpected event %+v", ev)
	}
	if _, err := s.ChromeTrace(nil); err == nil {
		t.Error("nil result accepted")
	}
}

func TestSimulatePrefill(t *testing.T) {
	e := mkEstimator(t, perfmodel.Strategy{AttnOnCPU: true, WeightsGPUPct: 0.55}, perfmodel.FlexGenProfile())
	res, err := SimulatePrefill(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 || res.PerLayer <= 0 {
		t.Fatalf("non-positive prefill times: %+v", res)
	}
	// Prefill is compute-bound on the GPU for this config (whole-prompt
	// GEMMs), with the KV offload overlapped on the downlink.
	if res.Utilization[ResGPU] < 0.5 {
		t.Errorf("GPU utilization %.2f, expected compute-bound prefill", res.Utilization[ResGPU])
	}
	// The DES prefill should be close to the analytical per-layer estimate.
	analytic := e.TPrefill()
	if r := res.PerLayer / analytic; r < 0.5 || r > 2.5 {
		t.Errorf("DES/analytic prefill ratio = %.2f", r)
	}
}

func TestSimulateRunCombines(t *testing.T) {
	e := mkEstimator(t, perfmodel.Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}, perfmodel.FlexGenProfile())
	tput, err := SimulateRun(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 {
		t.Fatal("non-positive end-to-end throughput")
	}
	// End-to-end includes prefill, so it is below the decode-only figure.
	dec, err := SimulateDecode(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tput >= dec.Throughput*1.001 {
		t.Errorf("end-to-end %.1f should not exceed decode-only %.1f", tput, dec.Throughput)
	}
}

func TestPaperEq2IsOptimistic(t *testing.T) {
	// The literal Eq. 2 max is a lower bound on every other composition:
	// the β model and the simulator both sit at or above it.
	for _, strat := range []perfmodel.Strategy{
		{WeightsGPUPct: 0.55},
		{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64},
		{AttnOnCPU: true, WeightsGPUPct: 0.55},
	} {
		e := mkEstimator(t, strat, perfmodel.FlexGenProfile())
		paper := e.TGenPaper()
		if e.TGen() < paper*0.999 {
			t.Errorf("%v: β model (%.4f) below the Eq. 2 bound (%.4f)", strat, e.TGen(), paper)
		}
		res, err := SimulateDecode(e, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.StepTime < paper*0.9 {
			t.Errorf("%v: DES (%.4f) far below the Eq. 2 bound (%.4f)", strat, res.StepTime, paper)
		}
	}
}

func TestTaskBusyAccounting(t *testing.T) {
	e := mkEstimator(t, perfmodel.Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}, perfmodel.FlexGenProfile())
	res, err := SimulateDecode(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"load_weight", "load_cache", "compute", "store_cache", "dequan_cache", "quan_cache"} {
		if res.TaskBusy[kind] <= 0 {
			t.Errorf("task kind %q has no busy time: %v", kind, res.TaskBusy)
		}
	}
	if _, ok := res.TaskBusy["sync"]; ok {
		t.Error("sync pseudo-tasks leaked into TaskBusy")
	}
	// Per-layer-token load_cache busy should match the analytical component.
	if r := res.TaskBusy["load_cache"] / e.KVUpTime(); r < 0.95 || r > 1.05 {
		t.Errorf("load_cache busy ratio = %.2f, want ~1", r)
	}
}
