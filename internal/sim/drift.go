package sim

// Drift scenario builders: the simulator-side counterparts of the fault
// injector's DriftSchedule (faults/drift.go). Each returns slowdown
// FaultEvent windows (Factor >= 1) against one resource, so the DES replays
// the same thermal-ramp and co-tenant-interference regimes the live adapt
// loop is tested under.

// RampSlowdownEvents models progressive thermal throttling on a resource:
// starting at `start`, the service rate degrades in `steps`
// piecewise-constant increments from nominal to 1/peak over rampDur, then
// holds peak for holdDur. peak must be > 1 and steps >= 1 for any events to
// be produced.
func RampSlowdownEvents(resource string, start, rampDur, holdDur float64, peak float64, steps int) []FaultEvent {
	if resource == "" || peak <= 1 || steps < 1 || rampDur <= 0 {
		return nil
	}
	var out []FaultEvent
	stepDur := rampDur / float64(steps)
	for i := 1; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		dur := stepDur
		if i == steps {
			dur += holdDur // the final rung holds the peak
		}
		if dur <= 0 {
			continue
		}
		out = append(out, FaultEvent{
			Resource: resource,
			Start:    start + float64(i-1)*stepDur,
			Duration: dur,
			Factor:   1 + frac*(peak-1),
		})
	}
	return out
}

// InterferenceEvents models a bursty co-tenant: `count` slowdown windows of
// `width` seconds at the given period (the first opens at start), each
// degrading the resource's service rate to 1/factor. factor must be > 1 and
// width in (0, period] for any events to be produced.
func InterferenceEvents(resource string, start, period, width float64, factor float64, count int) []FaultEvent {
	if resource == "" || factor <= 1 || width <= 0 || period <= 0 || width > period {
		return nil
	}
	var out []FaultEvent
	for i := 0; i < count; i++ {
		out = append(out, FaultEvent{
			Resource: resource,
			Start:    start + float64(i)*period,
			Duration: width,
			Factor:   factor,
		})
	}
	return out
}
