package sim

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/xtrace"
)

// simSpanName maps a sim task kind onto the shared xtrace span vocabulary
// and the lane it ran on. The DES names CPU attention and GPU MLP separately
// (they occupy different resources); both are the Eq. 2 compute task,
// distinguished by lane. ok=false marks tasks that should not be exported
// (the zero-duration sync barriers).
func simSpanName(kind, resource string) (name, lane string, ok bool) {
	switch kind {
	case "load_weight":
		return xtrace.TaskLoadWgt, resource, true
	case "dequan_weight":
		return xtrace.TaskDequantWgt, resource, true
	case "load_cache":
		return xtrace.TaskLoadKV, resource, true
	case "dequan_cache":
		return xtrace.TaskDequantKV, resource, true
	case "load_act":
		return xtrace.TaskLoadAct, resource, true
	case "compute", "gpu_mlp", "cpu_attn":
		return xtrace.TaskCompute, resource, true
	case "quan_cache":
		return xtrace.TaskQuantKV, resource, true
	case "store_cache":
		return xtrace.TaskStoreKV, resource, true
	case "store_act":
		return xtrace.TaskStoreAct, resource, true
	case "sync":
		return "", "", false
	}
	return kind, resource, true
}

// parseSimLabels extracts the [step,layer,batch] coordinates a sim task name
// carries; missing coordinates stay -1.
func parseSimLabels(name string) xtrace.Labels {
	l := xtrace.NoLabels
	open := strings.IndexByte(name, '[')
	end := strings.IndexByte(name, ']')
	if open < 0 || end <= open {
		return l
	}
	parts := strings.Split(name[open+1:end], ",")
	dst := []*int{&l.Step, &l.Layer, &l.Slot}
	for i, p := range parts {
		if i >= len(dst) {
			break
		}
		if v, err := strconv.Atoi(strings.TrimSpace(p)); err == nil {
			*dst[i] = v
		}
	}
	return l
}

// traceInto replays an executed schedule into rec using the shared span
// vocabulary: virtual-time seconds become offsets from the recorder epoch,
// so the exported Chrome trace shows the simulated overlap structure exactly
// as the DES resolved it — directly comparable lane-for-lane with a live
// engine trace of the same workload.
func traceInto(rec *xtrace.Recorder, s *Sim, res *Result) {
	if rec == nil {
		return
	}
	for i, t := range s.tasks {
		kind := t.Name
		if cut := strings.IndexByte(kind, '['); cut >= 0 {
			kind = kind[:cut]
		}
		name, lane, ok := simSpanName(kind, t.Resource)
		if !ok {
			continue
		}
		start := time.Duration(res.Start[i] * float64(time.Second))
		dur := time.Duration((res.End[i] - res.Start[i]) * float64(time.Second))
		rec.RecordAt(name, lane, start, dur, parseSimLabels(t.Name))
	}
}
