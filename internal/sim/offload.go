package sim

import (
	"fmt"
	"strings"

	"repro/internal/perfmodel"
	"repro/internal/xtrace"
)

// Resources used by the offload schedule.
const (
	ResGPU  = "gpu"
	ResCPU  = "cpu"
	ResH2D  = "h2d"
	ResD2H  = "d2h"
	ResSync = "sync"
)

// OffloadResult summarizes a simulated decode run.
type OffloadResult struct {
	// StepTime is the steady-state per-token time across all layers.
	StepTime float64
	// Throughput is tokens/s for the whole workload, combining the
	// simulated decode with the analytical prefill estimate.
	Throughput float64
	// Utilization per resource over the simulated window.
	Utilization map[string]float64
	// SimulatedSteps is how many decode steps were expanded.
	SimulatedSteps int
	// Tasks is the number of tasks simulated.
	Tasks int
	// TaskBusy is the per-layer, per-token service time by task kind
	// (load_weight, load_cache, compute, ... — the Figure 8 axes), derived
	// from the executed schedule.
	TaskBusy map[string]float64
}

// Bottleneck returns the busiest resource of the simulated window.
func (r *OffloadResult) Bottleneck() string {
	best, bestU := "", -1.0
	for _, name := range []string{ResGPU, ResCPU, ResH2D, ResD2H} {
		if u := r.Utilization[name]; u > bestU {
			best, bestU = name, u
		}
	}
	return best
}

// SimulateDecode expands Algorithm 1's decode loop for a window of tokens
// into a task graph and executes it on the DES. Task durations come from the
// estimator's component models (transfer bytes over link bandwidth, compute
// over device rates, real quantization-phase costs); the *composition* —
// who waits for whom, where the per-layer synchronize() bites, what the
// prefetcher hides — emerges from the simulation instead of the perfmodel's
// calibrated β.
//
// steps bounds the simulated token window (the schedule is periodic, so a
// handful of steps reaches steady state).
//
// Optional fault events degrade resources for time windows (outages or
// bandwidth slowdowns); the resulting schedule shows how much of the clean
// throughput a policy retains under the degraded conditions.
func SimulateDecode(e *perfmodel.Estimator, steps int, events ...FaultEvent) (*OffloadResult, error) {
	return SimulateDecodeTraced(e, steps, nil, events...)
}

// SimulateDecodeTraced is SimulateDecode with the executed schedule replayed
// into rec (nil disables tracing) using the shared xtrace span vocabulary,
// so the simulated overlap structure exports to the same Chrome-trace format
// as a live engine run.
func SimulateDecodeTraced(e *perfmodel.Estimator, steps int, rec *xtrace.Recorder, events ...FaultEvent) (*OffloadResult, error) {
	if steps < 1 {
		return nil, fmt.Errorf("sim: steps must be >= 1, got %d", steps)
	}
	if n := e.Work.GenLen - 1; steps > n && n > 0 {
		steps = n
	}
	layers := e.Mod.Layers
	batches := e.Work.NumBatches
	parts := e.Parts()
	kb := float64(batches)

	// Per-task durations. Parts() is per layer per token for the whole
	// block; the k-loop tasks get 1/NumBatches each.
	weightUp := e.WeightUpTime()                // per layer per token (whole layer)
	kvUpPerBatch := e.KVUpTime() / kb           // per (layer, batch)
	kvDownPerBatch := e.KVDownTime() / kb       //
	actUpPerBatch := e.ActUpTime() / kb         //
	actDownPerBatch := e.ActDownTime() / kb     //
	gpuComputePerBatch := parts.GPUCompute / kb //
	cpuComputePerBatch := parts.CPUCompute / kb //
	dequanWgt := e.DequanWgtPerToken()          // per layer per token, GPU
	dequanKVPerBatch := e.DequanOldCache().Total() / kb
	quanKVPerBatch := e.QuanNewCache().Total() / kb
	stepOverheadPerBatch := e.Exec.StepOverhead

	s := New()
	for _, r := range []string{ResGPU, ResCPU, ResH2D, ResD2H, ResSync} {
		s.AddResource(r)
	}
	for _, ev := range events {
		if err := s.AddFault(ev); err != nil {
			return nil, err
		}
	}

	var prevBarrier TaskID = -1
	deps := func(ids ...TaskID) []TaskID {
		out := make([]TaskID, 0, len(ids)+1)
		for _, id := range ids {
			if id >= 0 {
				out = append(out, id)
			}
		}
		return out
	}

	for i := 0; i < steps; i++ {
		for j := 0; j < layers; j++ {
			// load_weight for the layer: prefetched — depends only on link
			// availability, not on the previous layer's barrier.
			lw := s.AddTask(TaskSpec{
				Name: fmt.Sprintf("load_weight[%d,%d]", i, j), Resource: ResH2D, Duration: weightUp,
			})
			// Weight dequantization runs on the GPU once the transfer lands.
			dq := TaskID(-1)
			if dequanWgt > 0 {
				dq = s.AddTask(TaskSpec{
					Name: fmt.Sprintf("dequan_weight[%d,%d]", i, j), Resource: ResGPU, Duration: dequanWgt,
					Deps: deps(lw),
				})
			}
			var layerTasks []TaskID
			for k := 0; k < batches; k++ {
				lc := TaskID(-1)
				if kvUpPerBatch > 0 {
					lc = s.AddTask(TaskSpec{
						Name: fmt.Sprintf("load_cache[%d,%d,%d]", i, j, k), Resource: ResH2D, Duration: kvUpPerBatch,
					})
				}
				la := TaskID(-1)
				if actUpPerBatch > 0 {
					la = s.AddTask(TaskSpec{
						Name: fmt.Sprintf("load_act[%d,%d,%d]", i, j, k), Resource: ResH2D, Duration: actUpPerBatch,
					})
				}
				dqkv := TaskID(-1)
				if dequanKVPerBatch > 0 {
					dqkv = s.AddTask(TaskSpec{
						Name: fmt.Sprintf("dequan_cache[%d,%d,%d]", i, j, k), Resource: ResGPU, Duration: dequanKVPerBatch,
						Deps: deps(lc),
					})
				}
				// Compute: attention on CPU overlaps the GPU-side MLP of the
				// same batch only through the pipeline across batches.
				computeDeps := deps(lw, dq, lc, la, dqkv, prevBarrier)
				var comp TaskID
				if cpuComputePerBatch > 0 {
					attn := s.AddTask(TaskSpec{
						Name: fmt.Sprintf("cpu_attn[%d,%d,%d]", i, j, k), Resource: ResCPU, Duration: cpuComputePerBatch,
						Deps: computeDeps,
					})
					comp = s.AddTask(TaskSpec{
						Name: fmt.Sprintf("gpu_mlp[%d,%d,%d]", i, j, k), Resource: ResGPU, Duration: gpuComputePerBatch + stepOverheadPerBatch,
						Deps: deps(attn),
					})
				} else {
					comp = s.AddTask(TaskSpec{
						Name: fmt.Sprintf("compute[%d,%d,%d]", i, j, k), Resource: ResGPU, Duration: gpuComputePerBatch + stepOverheadPerBatch,
						Deps: computeDeps,
					})
				}
				qkv := TaskID(-1)
				if quanKVPerBatch > 0 {
					qkv = s.AddTask(TaskSpec{
						Name: fmt.Sprintf("quan_cache[%d,%d,%d]", i, j, k), Resource: ResGPU, Duration: quanKVPerBatch,
						Deps: deps(comp),
					})
				}
				sc := TaskID(-1)
				if kvDownPerBatch > 0 {
					src := comp
					if qkv >= 0 {
						src = qkv
					}
					sc = s.AddTask(TaskSpec{
						Name: fmt.Sprintf("store_cache[%d,%d,%d]", i, j, k), Resource: ResD2H, Duration: kvDownPerBatch,
						Deps: deps(src),
					})
				}
				sa := TaskID(-1)
				if actDownPerBatch > 0 {
					sa = s.AddTask(TaskSpec{
						Name: fmt.Sprintf("store_act[%d,%d,%d]", i, j, k), Resource: ResD2H, Duration: actDownPerBatch,
						Deps: deps(comp),
					})
				}
				for _, id := range []TaskID{comp, qkv, sc, sa} {
					if id >= 0 {
						layerTasks = append(layerTasks, id)
					}
				}
			}
			// synchronize() — Algorithm 1 line 18.
			prevBarrier = s.AddTask(TaskSpec{
				Name: fmt.Sprintf("sync[%d,%d]", i, j), Resource: ResSync, Duration: 0,
				Deps: layerTasks,
			})
		}
	}

	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	traceInto(rec, s, res)
	stepTime := res.Makespan / float64(steps) / float64(layers)
	out := &OffloadResult{
		StepTime:       stepTime,
		SimulatedSteps: steps,
		Tasks:          len(s.tasks),
		Utilization:    map[string]float64{},
		TaskBusy:       map[string]float64{},
	}
	norm := float64(steps) * float64(layers)
	for i, t := range s.tasks {
		kind := t.Name
		if cut := strings.IndexByte(kind, '['); cut >= 0 {
			kind = kind[:cut]
		}
		out.TaskBusy[kind] += (res.End[i] - res.Start[i]) / norm
	}
	delete(out.TaskBusy, "sync")
	for _, r := range []string{ResGPU, ResCPU, ResH2D, ResD2H} {
		out.Utilization[r] = res.Utilization(r)
	}
	// Whole-workload throughput: simulated steady-state decode plus the
	// analytical prefill.
	l := float64(e.Mod.Layers)
	n := float64(e.Work.GenLen)
	total := e.TPrefill()*l + stepTime*l*(n-1)
	out.Throughput = float64(e.Work.TotalTokens()) / total
	return out, nil
}
