package sim

import "testing"

// TestRampSlowdownEvents checks the generated windows validate, tile the
// ramp contiguously, and reach the peak factor on the final (held) rung.
func TestRampSlowdownEvents(t *testing.T) {
	evs := RampSlowdownEvents("gpu", 5, 10, 20, 3, 4)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	prevEnd, prevFactor := 5.0, 1.0
	for i, ev := range evs {
		if err := ev.Validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if ev.Start != prevEnd {
			t.Fatalf("event %d starts at %g, want contiguous %g", i, ev.Start, prevEnd)
		}
		if ev.Factor <= prevFactor {
			t.Fatalf("event %d factor %g not increasing past %g", i, ev.Factor, prevFactor)
		}
		prevEnd, prevFactor = ev.End(), ev.Factor
	}
	last := evs[len(evs)-1]
	if last.Factor != 3 {
		t.Fatalf("final factor = %g, want peak 3", last.Factor)
	}
	if last.Duration != 10.0/4+20 {
		t.Fatalf("final rung duration = %g, want step+hold %g", last.Duration, 10.0/4+20)
	}
	// A ramp actually slows a simulated task: run one 10s task on the
	// resource under the ramp and require it to finish later than nominal.
	s := New()
	s.AddResource("gpu")
	s.AddTask(TaskSpec{Name: "work", Resource: "gpu", Duration: 30})
	for _, ev := range evs {
		if err := s.AddFault(ev); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 30 {
		t.Fatalf("ramped makespan %g not slower than nominal 30", res.Makespan)
	}
}

func TestInterferenceEvents(t *testing.T) {
	evs := InterferenceEvents("cpu", 1, 10, 4, 2, 3)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if err := ev.Validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if want := 1 + float64(i)*10; ev.Start != want {
			t.Fatalf("event %d start = %g, want %g", i, ev.Start, want)
		}
		if ev.Duration != 4 || ev.Factor != 2 {
			t.Fatalf("event %d = %+v, want width 4 factor 2", i, ev)
		}
	}
	// Degenerate parameters produce nothing rather than invalid windows.
	if evs := InterferenceEvents("cpu", 0, 10, 11, 2, 3); evs != nil {
		t.Fatal("width > period must produce no events")
	}
	if evs := InterferenceEvents("cpu", 0, 10, 4, 1, 3); evs != nil {
		t.Fatal("factor <= 1 must produce no events")
	}
	if evs := RampSlowdownEvents("", 0, 10, 0, 3, 4); evs != nil {
		t.Fatal("empty resource must produce no events")
	}
}
