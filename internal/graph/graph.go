// Package graph provides the directed-acyclic-graph machinery behind
// LM-Offload's parallelism control: Kahn's topological sort, concurrency-level
// analysis of operator dependency graphs, and critical-path computation.
//
// Nodes are identified by dense integer IDs issued by AddNode, which keeps the
// implementation allocation-light for the small operator graphs (tens of
// nodes) that attention computation produces.
package graph

import (
	"fmt"
	"sort"
)

// DAG is a directed acyclic graph with optional per-node weights
// (execution times, in seconds, for operator graphs).
type DAG struct {
	names   []string
	weights []float64
	succ    [][]int
	pred    [][]int
}

// New returns an empty DAG.
func New() *DAG { return &DAG{} }

// AddNode adds a node with a display name and weight, returning its ID.
func (g *DAG) AddNode(name string, weight float64) int {
	id := len(g.names)
	g.names = append(g.names, name)
	g.weights = append(g.weights, weight)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddEdge records that node from must complete before node to starts.
// It is an error (panic) to reference unknown nodes; duplicate edges are
// ignored.
func (g *DAG) AddEdge(from, to int) {
	if from < 0 || from >= len(g.names) || to < 0 || to >= len(g.names) {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0, %d)", from, to, len(g.names)))
	}
	for _, s := range g.succ[from] {
		if s == to {
			return
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
}

// Len returns the node count.
func (g *DAG) Len() int { return len(g.names) }

// Name returns the display name of node id.
func (g *DAG) Name(id int) string { return g.names[id] }

// Weight returns the weight of node id.
func (g *DAG) Weight(id int) float64 { return g.weights[id] }

// SetWeight updates the weight of node id.
func (g *DAG) SetWeight(id int, w float64) { g.weights[id] = w }

// Successors returns the out-neighbours of id. The returned slice must not
// be modified.
func (g *DAG) Successors(id int) []int { return g.succ[id] }

// Predecessors returns the in-neighbours of id. The returned slice must not
// be modified.
func (g *DAG) Predecessors(id int) []int { return g.pred[id] }

// TopoSort returns a topological order of the nodes using Kahn's algorithm,
// as cited by the paper for concurrency analysis. Ties are broken by node ID
// so the order is deterministic. It returns an error if the graph contains a
// cycle.
func (g *DAG) TopoSort() ([]int, error) {
	indeg := make([]int, len(g.names))
	for _, preds := range g.pred {
		_ = preds
	}
	for id := range g.names {
		indeg[id] = len(g.pred[id])
	}
	// ready is kept sorted ascending for determinism.
	var ready []int
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	order := make([]int, 0, len(g.names))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				// Insert keeping ready sorted.
				pos := sort.SearchInts(ready, s)
				ready = append(ready, 0)
				copy(ready[pos+1:], ready[pos:])
				ready[pos] = s
			}
		}
	}
	if len(order) != len(g.names) {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d nodes ordered)", len(order), len(g.names))
	}
	return order, nil
}

// Levels partitions the nodes into ASAP (as-soon-as-possible) levels: a node's
// level is one greater than the maximum level of its predecessors. Nodes in
// the same level have no dependencies between them and can run concurrently.
func (g *DAG) Levels() ([][]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	level := make([]int, len(g.names))
	maxLevel := 0
	for _, id := range order {
		l := 0
		for _, p := range g.pred[id] {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[id] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]int, maxLevel+1)
	for _, id := range order {
		out[level[id]] = append(out[level[id]], id)
	}
	return out, nil
}

// MaxConcurrency returns the maximum width over the ASAP levels — the
// paper's "maximum concurrency level" used as the inter-op parallelism of the
// compute task (Algorithm 3, line 4).
func (g *DAG) MaxConcurrency() (int, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	maxW := 0
	for _, l := range levels {
		if len(l) > maxW {
			maxW = len(l)
		}
	}
	return maxW, nil
}

// CriticalPath returns the length of the weight-sum-maximal path and the node
// IDs on one such path, in execution order. With unit weights this is the
// longest chain; with operator times it lower-bounds any schedule's makespan.
func (g *DAG) CriticalPath() (float64, []int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, nil, err
	}
	dist := make([]float64, len(g.names))
	from := make([]int, len(g.names))
	for i := range from {
		from[i] = -1
	}
	best, bestEnd := 0.0, -1
	for _, id := range order {
		d := g.weights[id]
		f := -1
		for _, p := range g.pred[id] {
			if dist[p]+g.weights[id] > d {
				d = dist[p] + g.weights[id]
				f = p
			}
		}
		dist[id], from[id] = d, f
		if d > best || bestEnd == -1 {
			best, bestEnd = d, id
		}
	}
	var path []int
	for id := bestEnd; id != -1; id = from[id] {
		path = append(path, id)
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path, nil
}

// ListScheduleMakespan simulates list scheduling of the DAG on `slots`
// identical workers, where each node occupies one worker for its weight
// duration. Ready nodes are dispatched lowest-ID-first. It returns the
// makespan. This is how parallelism control estimates the compute-task time
// under a given inter-op parallelism.
func (g *DAG) ListScheduleMakespan(slots int) (float64, error) {
	if slots <= 0 {
		return 0, fmt.Errorf("graph: ListScheduleMakespan needs slots > 0, got %d", slots)
	}
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	_ = order // validity check only
	indeg := make([]int, len(g.names))
	for id := range g.names {
		indeg[id] = len(g.pred[id])
	}
	var ready []int
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Ints(ready)
	type running struct {
		id   int
		done float64
	}
	var active []running
	now, finished := 0.0, 0
	for finished < len(g.names) {
		// Fill free slots from the ready queue.
		for len(active) < slots && len(ready) > 0 {
			id := ready[0]
			ready = ready[1:]
			active = append(active, running{id, now + g.weights[id]})
		}
		if len(active) == 0 {
			return 0, fmt.Errorf("graph: scheduler stalled with %d/%d nodes finished", finished, len(g.names))
		}
		// Advance to the earliest completion.
		minIdx := 0
		for i, r := range active {
			if r.done < active[minIdx].done {
				minIdx = i
			}
		}
		done := active[minIdx]
		active = append(active[:minIdx], active[minIdx+1:]...)
		now = done.done
		finished++
		for _, s := range g.succ[done.id] {
			indeg[s]--
			if indeg[s] == 0 {
				pos := sort.SearchInts(ready, s)
				ready = append(ready, 0)
				copy(ready[pos+1:], ready[pos:])
				ready[pos] = s
			}
		}
	}
	return now, nil
}

// TotalWeight returns the sum of all node weights (the serial execution
// time of an operator graph).
func (g *DAG) TotalWeight() float64 {
	var sum float64
	for _, w := range g.weights {
		sum += w
	}
	return sum
}
