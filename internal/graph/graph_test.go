package graph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the graph a -> {b, c} -> d with the given weights.
func diamond(wa, wb, wc, wd float64) (*DAG, [4]int) {
	g := New()
	a := g.AddNode("a", wa)
	b := g.AddNode("b", wb)
	c := g.AddNode("c", wc)
	d := g.AddNode("d", wd)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	return g, [4]int{a, b, c, d}
}

func TestTopoSortDiamond(t *testing.T) {
	g, n := diamond(1, 1, 1, 1)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	if pos[n[0]] > pos[n[1]] || pos[n[0]] > pos[n[2]] || pos[n[1]] > pos[n[3]] || pos[n[2]] > pos[n[3]] {
		t.Errorf("order %v violates dependencies", order)
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New()
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 1)
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := g.TopoSort(); err == nil {
		t.Error("TopoSort accepted a cyclic graph")
	}
	if _, err := g.Levels(); err == nil {
		t.Error("Levels accepted a cyclic graph")
	}
	if _, err := g.MaxConcurrency(); err == nil {
		t.Error("MaxConcurrency accepted a cyclic graph")
	}
	if _, _, err := g.CriticalPath(); err == nil {
		t.Error("CriticalPath accepted a cyclic graph")
	}
	if _, err := g.ListScheduleMakespan(2); err == nil {
		t.Error("ListScheduleMakespan accepted a cyclic graph")
	}
}

func TestLevelsAndMaxConcurrency(t *testing.T) {
	g, _ := diamond(1, 1, 1, 1)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if len(levels[1]) != 2 {
		t.Errorf("middle level width = %d, want 2", len(levels[1]))
	}
	mc, err := g.MaxConcurrency()
	if err != nil {
		t.Fatal(err)
	}
	if mc != 2 {
		t.Errorf("MaxConcurrency = %d, want 2", mc)
	}
}

func TestMaxConcurrencyIndependentNodes(t *testing.T) {
	g := New()
	for i := 0; i < 7; i++ {
		g.AddNode("n", 1)
	}
	mc, err := g.MaxConcurrency()
	if err != nil {
		t.Fatal(err)
	}
	if mc != 7 {
		t.Errorf("MaxConcurrency = %d, want 7 for edge-free graph", mc)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g, n := diamond(1, 5, 2, 1)
	length, path, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if length != 7 {
		t.Errorf("critical path length = %g, want 7", length)
	}
	want := []int{n[0], n[1], n[3]}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestListScheduleSerialEqualsTotalWeight(t *testing.T) {
	g, _ := diamond(1, 5, 2, 1)
	ms, err := g.ListScheduleMakespan(1)
	if err != nil {
		t.Fatal(err)
	}
	if ms != g.TotalWeight() {
		t.Errorf("serial makespan = %g, want total weight %g", ms, g.TotalWeight())
	}
}

func TestListScheduleTwoSlotsDiamond(t *testing.T) {
	g, _ := diamond(1, 5, 2, 1)
	ms, err := g.ListScheduleMakespan(2)
	if err != nil {
		t.Fatal(err)
	}
	// a(1) then b and c in parallel (5), then d(1) => 7.
	if ms != 7 {
		t.Errorf("2-slot makespan = %g, want 7", ms)
	}
}

func TestListScheduleRejectsZeroSlots(t *testing.T) {
	g, _ := diamond(1, 1, 1, 1)
	if _, err := g.ListScheduleMakespan(0); err == nil {
		t.Error("ListScheduleMakespan(0) did not fail")
	}
}

func TestAddEdgeDeduplicates(t *testing.T) {
	g := New()
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 1)
	g.AddEdge(a, b)
	g.AddEdge(a, b)
	if len(g.Successors(a)) != 1 {
		t.Errorf("duplicate edge stored: successors = %v", g.Successors(a))
	}
	if len(g.Predecessors(b)) != 1 {
		t.Errorf("duplicate edge stored: predecessors = %v", g.Predecessors(b))
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	g := New()
	g.AddNode("a", 1)
	defer func() {
		if recover() == nil {
			t.Error("AddEdge with unknown node did not panic")
		}
	}()
	g.AddEdge(0, 3)
}

// randomDAG builds a random DAG where edges only go from lower to higher IDs,
// guaranteeing acyclicity.
func randomDAG(rng *rand.Rand, n int) *DAG {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("n", 0.1+rng.Float64())
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.25 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestPropertyMakespanBounds(t *testing.T) {
	// For any DAG and slot count: critical path <= makespan <= total weight,
	// and makespan is non-increasing in the slot count.
	f := func(seed int64, nRaw uint8, slotsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%20)
		slots := 1 + int(slotsRaw%8)
		g := randomDAG(rng, n)
		cp, _, err := g.CriticalPath()
		if err != nil {
			return false
		}
		ms, err := g.ListScheduleMakespan(slots)
		if err != nil {
			return false
		}
		const eps = 1e-9
		// Note: makespan is NOT necessarily monotone in the slot count
		// (Graham's scheduling anomalies), so we only assert the two bounds.
		return ms >= cp-eps && ms <= g.TotalWeight()+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTopoOrderValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%30)
		g := randomDAG(rng, n)
		order, err := g.TopoSort()
		if err != nil || len(order) != n {
			return false
		}
		pos := make([]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for id := 0; id < n; id++ {
			for _, s := range g.Successors(id) {
				if pos[id] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnboundedSlotsHitCriticalPath(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%15)
		g := randomDAG(rng, n)
		cp, _, err := g.CriticalPath()
		if err != nil {
			return false
		}
		ms, err := g.ListScheduleMakespan(n) // one slot per node
		if err != nil {
			return false
		}
		return math.Abs(ms-cp) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDOTExport(t *testing.T) {
	g, _ := diamond(1, 5, 2, 1)
	dot := g.DOT("attention")
	for _, want := range []string{"digraph \"attention\"", "n0 -> n1", "n2 -> n3", "5 s"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
