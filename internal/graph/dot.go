package graph

import (
	"fmt"
	"strings"
)

// DOT renders the DAG in Graphviz dot syntax, with node weights shown in the
// labels — handy for inspecting the Fig. 6 operator graphs.
func (g *DAG) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	for id := 0; id < g.Len(); id++ {
		label := g.Name(id)
		if w := g.Weight(id); w > 0 {
			label = fmt.Sprintf("%s\\n%.3g s", label, w)
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", id, label)
	}
	for id := 0; id < g.Len(); id++ {
		for _, s := range g.Successors(id) {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
