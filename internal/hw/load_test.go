package hw

import (
	"strings"
	"testing"
)

const goodPlatformJSON = `{
  "name": "custom-l40",
  "gpus": [{"name": "L40", "memGiB": 48, "memBandwidthGBs": 864, "tflops": 90, "freqGHz": 2.0}],
  "cpu": {"name": "epyc", "sockets": 1, "cores": 32, "threads": 64,
          "memGiB": 256, "memBandwidthGBs": 200, "tflops": 1.5, "freqGHz": 2.5},
  "link": {"name": "pcie5", "perDirectionGBs": 50, "latencyUS": 5, "duplex": true},
  "diskGBs": 5
}`

func TestLoadPlatform(t *testing.T) {
	p, err := LoadPlatform(strings.NewReader(goodPlatformJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "custom-l40" || p.NumGPUs() != 1 {
		t.Fatalf("loaded %s with %d GPUs", p.Name, p.NumGPUs())
	}
	if p.GPU0().MemBytes != 48*GiB {
		t.Errorf("GPU memory = %d", p.GPU0().MemBytes)
	}
	if p.Link.BandwidthPerDir != 50e9 {
		t.Errorf("link bandwidth = %g", p.Link.BandwidthPerDir)
	}
	if p.CPU.QuantElemRate != 5e9 {
		t.Errorf("CPU quant rate default = %g", p.CPU.QuantElemRate)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("loaded platform invalid: %v", err)
	}
}

func TestLoadPlatformErrors(t *testing.T) {
	if _, err := LoadPlatform(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := LoadPlatform(strings.NewReader(`{"name": "x", "bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	// Missing GPUs fails validation.
	if _, err := LoadPlatform(strings.NewReader(`{"name": "x"}`)); err == nil {
		t.Error("platform without GPUs accepted")
	}
}
