package hw

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonPlatform is the on-disk schema. Capacities are in GiB and bandwidths
// in GB/s for human writability; rates convert to SI on load.
type jsonPlatform struct {
	Name string `json:"name"`
	GPUs []struct {
		Name          string  `json:"name"`
		MemGiB        float64 `json:"memGiB"`
		MemBWGBs      float64 `json:"memBandwidthGBs"`
		TFlops        float64 `json:"tflops"`
		FreqGHz       float64 `json:"freqGHz"`
		QuantElemRate float64 `json:"quantElemRate"`
	} `json:"gpus"`
	CPU struct {
		Name          string  `json:"name"`
		Sockets       int     `json:"sockets"`
		Cores         int     `json:"cores"`
		Threads       int     `json:"threads"`
		MemGiB        float64 `json:"memGiB"`
		MemBWGBs      float64 `json:"memBandwidthGBs"`
		TFlops        float64 `json:"tflops"`
		FreqGHz       float64 `json:"freqGHz"`
		QuantElemRate float64 `json:"quantElemRate"`
	} `json:"cpu"`
	Link struct {
		Name      string  `json:"name"`
		PerDirGBs float64 `json:"perDirectionGBs"`
		LatencyUS float64 `json:"latencyUS"`
		Duplex    bool    `json:"duplex"`
	} `json:"link"`
	DiskGBs float64 `json:"diskGBs"`
}

// LoadPlatform reads a platform description from JSON and validates it.
// Defaults: GPU quantElemRate 2e10, CPU quantElemRate 5e9, disk 2 GB/s.
func LoadPlatform(r io.Reader) (*Platform, error) {
	var raw jsonPlatform
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("hw: decoding platform: %w", err)
	}
	p := &Platform{Name: raw.Name}
	for _, g := range raw.GPUs {
		qr := g.QuantElemRate
		if qr == 0 {
			qr = 2e10
		}
		p.GPUs = append(p.GPUs, GPU{
			Name:          g.Name,
			MemBytes:      int64(g.MemGiB * float64(GiB)),
			MemBandwidth:  g.MemBWGBs * 1e9,
			Flops:         g.TFlops * 1e12,
			Freq:          g.FreqGHz * 1e9,
			QuantElemRate: qr,
		})
	}
	cq := raw.CPU.QuantElemRate
	if cq == 0 {
		cq = 5e9
	}
	p.CPU = CPU{
		Name:          raw.CPU.Name,
		Sockets:       raw.CPU.Sockets,
		Cores:         raw.CPU.Cores,
		Threads:       raw.CPU.Threads,
		MemBytes:      int64(raw.CPU.MemGiB * float64(GiB)),
		MemBandwidth:  raw.CPU.MemBWGBs * 1e9,
		Flops:         raw.CPU.TFlops * 1e12,
		Freq:          raw.CPU.FreqGHz * 1e9,
		QuantElemRate: cq,
	}
	p.Link = Link{
		Name:            raw.Link.Name,
		BandwidthPerDir: raw.Link.PerDirGBs * 1e9,
		LatencySec:      raw.Link.LatencyUS * 1e-6,
		Duplex:          raw.Link.Duplex,
	}
	p.DiskBandwidth = raw.DiskGBs * 1e9
	if p.DiskBandwidth == 0 {
		p.DiskBandwidth = 2e9
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
