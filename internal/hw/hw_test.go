package hw

import "testing"

func TestBuiltinPlatformsValidate(t *testing.T) {
	for _, p := range []*Platform{SingleGPUA100(), MultiGPUV100()} {
		if err := p.Validate(); err != nil {
			t.Errorf("platform %s failed validation: %v", p.Name, err)
		}
	}
}

func TestSingleGPUA100MatchesTable4(t *testing.T) {
	p := SingleGPUA100()
	if got, want := p.NumGPUs(), 1; got != want {
		t.Fatalf("NumGPUs = %d, want %d", got, want)
	}
	if got, want := p.GPU0().MemBytes, 40*GiB; got != want {
		t.Errorf("GPU memory = %d, want %d", got, want)
	}
	if got, want := p.CPU.Cores, 56; got != want {
		t.Errorf("CPU cores = %d, want %d", got, want)
	}
	if got, want := p.CPU.Threads, 112; got != want {
		t.Errorf("CPU threads = %d, want %d", got, want)
	}
	if got, want := p.CPU.MemBytes, 240*GiB; got != want {
		t.Errorf("CPU memory = %d, want %d", got, want)
	}
	// Paper: PCIe 4.0 x16 with 64 GB/s total bidirectional. Effective
	// per-direction bandwidth should be between a third and a half of that.
	if bw := p.Link.BandwidthPerDir; bw < 2.0e10 || bw > 3.2e10 {
		t.Errorf("PCIe per-direction bandwidth %g out of plausible range", bw)
	}
}

func TestMultiGPUV100MatchesTable4(t *testing.T) {
	p := MultiGPUV100()
	if got, want := p.NumGPUs(), 4; got != want {
		t.Fatalf("NumGPUs = %d, want %d", got, want)
	}
	if got, want := p.TotalGPUMem(), 4*16*GiB; got != want {
		t.Errorf("total GPU memory = %d, want %d", got, want)
	}
	if got, want := p.CPU.Cores, 44; got != want {
		t.Errorf("CPU cores = %d, want %d", got, want)
	}
}

func TestWithGPUCount(t *testing.T) {
	p := MultiGPUV100()
	for n := 1; n <= 4; n++ {
		sub := p.WithGPUCount(n)
		if sub.NumGPUs() != n {
			t.Errorf("WithGPUCount(%d).NumGPUs() = %d", n, sub.NumGPUs())
		}
		if err := sub.Validate(); err != nil {
			t.Errorf("WithGPUCount(%d) invalid: %v", n, err)
		}
	}
	// The original must not be mutated.
	if p.NumGPUs() != 4 {
		t.Errorf("WithGPUCount mutated receiver: %d GPUs", p.NumGPUs())
	}
}

func TestWithGPUCountPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithGPUCount(5) did not panic")
		}
	}()
	MultiGPUV100().WithGPUCount(5)
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Platform)
	}{
		{"no name", func(p *Platform) { p.Name = "" }},
		{"no gpus", func(p *Platform) { p.GPUs = nil }},
		{"zero gpu mem", func(p *Platform) { p.GPUs[0].MemBytes = 0 }},
		{"zero gpu bw", func(p *Platform) { p.GPUs[0].MemBandwidth = 0 }},
		{"zero gpu flops", func(p *Platform) { p.GPUs[0].Flops = 0 }},
		{"zero gpu freq", func(p *Platform) { p.GPUs[0].Freq = 0 }},
		{"zero cores", func(p *Platform) { p.CPU.Cores = 0 }},
		{"threads < cores", func(p *Platform) { p.CPU.Threads = p.CPU.Cores - 1 }},
		{"zero cpu mem", func(p *Platform) { p.CPU.MemBytes = 0 }},
		{"zero cpu bw", func(p *Platform) { p.CPU.MemBandwidth = 0 }},
		{"zero link bw", func(p *Platform) { p.Link.BandwidthPerDir = 0 }},
		{"zero disk bw", func(p *Platform) { p.DiskBandwidth = 0 }},
	}
	for _, tc := range cases {
		p := SingleGPUA100()
		tc.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken platform", tc.name)
		}
	}
}

func TestSingleGPUH100(t *testing.T) {
	p := SingleGPUH100()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	a100 := SingleGPUA100()
	if p.GPU0().MemBytes != 2*a100.GPU0().MemBytes {
		t.Errorf("H100 memory = %d, want double the A100", p.GPU0().MemBytes)
	}
	if p.Link.BandwidthPerDir <= a100.Link.BandwidthPerDir {
		t.Error("PCIe 5 should outrun PCIe 4")
	}
}
