// Package hw describes the hardware platforms used by the LM-Offload
// performance models and the discrete-event simulator.
//
// A Platform bundles one or more GPUs, a host CPU complex, and the
// interconnect between them. The two built-in platforms mirror Table 4 of the
// paper: a single NVIDIA A100 attached to a dual-socket Xeon Gold 6330 host
// over PCIe 4.0 x16, and a four-V100 IBM POWER9 node connected with
// NVLink 2.0.
//
// All capacities are in bytes, bandwidths in bytes/second, compute rates in
// FLOP/s, and frequencies in Hz, so model code never needs unit conversions.
package hw

import "fmt"

// Bytes helpers for readable platform definitions.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// GPU describes a single accelerator.
type GPU struct {
	Name string
	// MemBytes is the device (HBM) memory capacity.
	MemBytes int64
	// MemBandwidth is the HBM bandwidth in bytes/s.
	MemBandwidth float64
	// Flops is the sustained matrix-multiplication throughput in FLOP/s
	// (effective, not the marketing peak).
	Flops float64
	// Freq is the SM clock in Hz, used by the element-wise phases of the
	// quantization model (Eq. 21).
	Freq float64
	// QuantElemRate is the sustained element throughput (elements/s) of the
	// group-wise (de)quantization kernels. This is far below the GEMM FLOP
	// rate: FlexGen's quantization path is a chain of unfused element-wise
	// kernels (pad, min/max, normalize, clamp, pack — Algorithm 2), each
	// materializing an intermediate tensor through HBM with its own launch
	// overhead. Calibrated so the Figure 3/4 overhead shares reproduce.
	QuantElemRate float64
}

// CPU describes the host processor complex (all sockets together).
type CPU struct {
	Name string
	// Sockets is the number of NUMA domains.
	Sockets int
	// Cores is the total physical core count across sockets.
	Cores int
	// Threads is the total hardware thread count (with SMT).
	Threads int
	// MemBytes is the host DRAM capacity.
	MemBytes int64
	// MemBandwidth is the aggregate DRAM bandwidth in bytes/s.
	MemBandwidth float64
	// Flops is the sustained dense-math throughput of the whole complex in
	// FLOP/s.
	Flops float64
	// Freq is the core clock in Hz, used by the min/max scan phase of the
	// quantization model (Eq. 13).
	Freq float64
	// QuantElemRate is the sustained element throughput (elements/s) of the
	// CPU-side quantization kernels (see GPU.QuantElemRate).
	QuantElemRate float64
}

// Link describes the CPU<->GPU interconnect.
type Link struct {
	Name string
	// BandwidthPerDir is the effective bandwidth of one direction in
	// bytes/s. The paper quotes total bidirectional figures (64 GB/s for
	// PCIe 4.0 x16); each direction sustains roughly half.
	BandwidthPerDir float64
	// LatencySec is the fixed per-transfer latency.
	LatencySec float64
	// Duplex reports whether the two directions are independent channels.
	Duplex bool
}

// Platform is a complete evaluation machine.
type Platform struct {
	Name string
	GPUs []GPU
	CPU  CPU
	Link Link
	// DiskBandwidth is the read bandwidth for the initial weight load from
	// storage into host memory (the T_init term of Eq. 1).
	DiskBandwidth float64
}

// NumGPUs returns the accelerator count.
func (p *Platform) NumGPUs() int { return len(p.GPUs) }

// GPU0 returns the first accelerator. Every built-in platform has at least
// one GPU, so this never fails for them.
func (p *Platform) GPU0() GPU { return p.GPUs[0] }

// TotalGPUMem returns the summed device memory in bytes.
func (p *Platform) TotalGPUMem() int64 {
	var total int64
	for _, g := range p.GPUs {
		total += g.MemBytes
	}
	return total
}

// Validate reports configuration errors such as zero bandwidths, which would
// otherwise surface as division-by-zero infinities deep inside the models.
func (p *Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("hw: platform has no name")
	}
	if len(p.GPUs) == 0 {
		return fmt.Errorf("hw: platform %s has no GPUs", p.Name)
	}
	for i, g := range p.GPUs {
		switch {
		case g.MemBytes <= 0:
			return fmt.Errorf("hw: %s GPU %d has non-positive memory", p.Name, i)
		case g.MemBandwidth <= 0:
			return fmt.Errorf("hw: %s GPU %d has non-positive HBM bandwidth", p.Name, i)
		case g.Flops <= 0:
			return fmt.Errorf("hw: %s GPU %d has non-positive FLOP rate", p.Name, i)
		case g.Freq <= 0:
			return fmt.Errorf("hw: %s GPU %d has non-positive frequency", p.Name, i)
		case g.QuantElemRate <= 0:
			return fmt.Errorf("hw: %s GPU %d has non-positive quantization rate", p.Name, i)
		}
	}
	c := p.CPU
	switch {
	case c.Cores <= 0 || c.Threads <= 0:
		return fmt.Errorf("hw: %s CPU has no cores", p.Name)
	case c.Threads < c.Cores:
		return fmt.Errorf("hw: %s CPU has fewer threads (%d) than cores (%d)", p.Name, c.Threads, c.Cores)
	case c.MemBytes <= 0:
		return fmt.Errorf("hw: %s CPU has non-positive memory", p.Name)
	case c.MemBandwidth <= 0 || c.Flops <= 0 || c.Freq <= 0 || c.QuantElemRate <= 0:
		return fmt.Errorf("hw: %s CPU has non-positive rate parameters", p.Name)
	}
	if p.Link.BandwidthPerDir <= 0 {
		return fmt.Errorf("hw: %s link has non-positive bandwidth", p.Name)
	}
	if p.DiskBandwidth <= 0 {
		return fmt.Errorf("hw: %s disk has non-positive bandwidth", p.Name)
	}
	return nil
}

// SingleGPUA100 reproduces the paper's single-GPU platform (Table 4):
// one 40 GB A100 and two Intel Xeon Gold 6330 sockets (56 cores, 112
// hardware threads, 240 GB DRAM) connected by PCIe 4.0 x16.
func SingleGPUA100() *Platform {
	return &Platform{
		Name: "single-gpu-a100",
		GPUs: []GPU{{
			Name:          "NVIDIA A100 40GB",
			MemBytes:      40 * GiB,
			MemBandwidth:  1.555e12, // 1555 GB/s HBM2e
			Flops:         1.4e14,   // sustained FP16 GEMM ~140 TFLOP/s
			Freq:          1.41e9,
			QuantElemRate: 2.7e10,
		}},
		CPU: CPU{
			Name:          "2x Intel Xeon Gold 6330",
			Sockets:       2,
			Cores:         56,
			Threads:       112,
			MemBytes:      240 * GiB,
			MemBandwidth:  3.5e11, // ~350 GB/s across 16 DDR4-2933 channels
			Flops:         2.0e12, // sustained AVX-512 dense math
			Freq:          2.0e9,
			QuantElemRate: 5.0e9,
		},
		Link: Link{
			Name:            "PCIe 4.0 x16",
			BandwidthPerDir: 2.5e10, // 25 GB/s effective per direction
			LatencySec:      10e-6,
			Duplex:          true,
		},
		DiskBandwidth: 2.0e9, // NVMe read, 2 GB/s
	}
}

// SingleGPUH100 models a contemporary successor platform: one 80 GB H100
// with PCIe 5.0 x16 and a newer host. It is not part of the paper's
// evaluation; the library ships it so downstream users can ask how the
// policies shift when the GPU doubles its memory and the link doubles its
// bandwidth.
func SingleGPUH100() *Platform {
	return &Platform{
		Name: "single-gpu-h100",
		GPUs: []GPU{{
			Name:          "NVIDIA H100 80GB",
			MemBytes:      80 * GiB,
			MemBandwidth:  3.35e12, // 3350 GB/s HBM3
			Flops:         4.0e14,  // sustained FP16 GEMM ~400 TFLOP/s
			Freq:          1.8e9,
			QuantElemRate: 5.4e10,
		}},
		CPU: CPU{
			Name:          "2x Intel Xeon Platinum 8480+",
			Sockets:       2,
			Cores:         112,
			Threads:       224,
			MemBytes:      512 * GiB,
			MemBandwidth:  6.0e11,
			Flops:         6.0e12,
			Freq:          2.0e9,
			QuantElemRate: 1.0e10,
		},
		Link: Link{
			Name:            "PCIe 5.0 x16",
			BandwidthPerDir: 5.0e10,
			LatencySec:      8e-6,
			Duplex:          true,
		},
		DiskBandwidth: 6.0e9,
	}
}

// MultiGPUV100 reproduces the paper's multi-GPU platform (Table 4): four
// 16 GB V100s on a dual-socket IBM POWER9 host with NVLink 2.0.
func MultiGPUV100() *Platform {
	gpu := GPU{
		Name:          "NVIDIA V100 16GB",
		MemBytes:      16 * GiB,
		MemBandwidth:  9.0e11, // 900 GB/s HBM2
		Flops:         6.0e13, // sustained FP16 GEMM ~60 TFLOP/s
		Freq:          1.38e9,
		QuantElemRate: 1.5e10,
	}
	return &Platform{
		Name: "multi-gpu-v100",
		GPUs: []GPU{gpu, gpu, gpu, gpu},
		CPU: CPU{
			Name:          "2x IBM POWER9",
			Sockets:       2,
			Cores:         44,
			Threads:       176, // SMT4
			MemBytes:      280 * GiB,
			MemBandwidth:  3.0e11,
			Flops:         1.2e12,
			Freq:          3.0e9,
			QuantElemRate: 3.0e9,
		},
		Link: Link{
			Name:            "NVLink 2.0",
			BandwidthPerDir: 1.5e11, // 150 GB/s per direction (300 total)
			LatencySec:      2e-6,
			Duplex:          true,
		},
		DiskBandwidth: 2.0e9,
	}
}

// WithGPUCount returns a copy of p restricted to the first n GPUs, for
// scaling studies. It panics if n is out of range.
func (p *Platform) WithGPUCount(n int) *Platform {
	if n <= 0 || n > len(p.GPUs) {
		panic(fmt.Sprintf("hw: WithGPUCount(%d) out of range for %s with %d GPUs", n, p.Name, len(p.GPUs)))
	}
	cp := *p
	cp.GPUs = append([]GPU(nil), p.GPUs[:n]...)
	cp.Name = fmt.Sprintf("%s[x%d]", p.Name, n)
	return &cp
}
