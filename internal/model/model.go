package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// Model is an executable decoder-only transformer with real weights, used by
// the functional offloading runtime and the tests. Large configurations are
// never instantiated as Models — they exist only as Configs feeding the
// analytical layer.
type Model struct {
	Cfg       Config
	Embedding *tensor.Tensor // [vocab, hidden]
	Layers    []*LayerWeights
	FinalGain *tensor.Tensor // [hidden]
	// Unembed shares the embedding matrix (weight tying), so logits are
	// hidden · Embeddingᵀ.
}

// NewModel instantiates cfg with deterministic random weights.
func NewModel(rng *rand.Rand, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		Cfg:       cfg,
		Embedding: tensor.RandN(rng, 1/math.Sqrt(float64(cfg.Hidden)), cfg.Vocab, cfg.Hidden),
		FinalGain: tensor.Ones(cfg.Hidden),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.Layers = append(m.Layers, NewLayerWeights(rng, cfg))
	}
	return m, nil
}

// Embed converts token IDs to a [len(ids), hidden] tensor with sinusoidal
// position offsets starting at startPos.
func (m *Model) Embed(ids []int, startPos int) *tensor.Tensor {
	h := m.Cfg.Hidden
	out := tensor.New(len(ids), h)
	for i, id := range ids {
		if id < 0 || id >= m.Cfg.Vocab {
			panic(fmt.Sprintf("model: token %d outside vocab %d", id, m.Cfg.Vocab))
		}
		row := out.Row(i)
		copy(row, m.Embedding.Row(id))
		pos := float64(startPos + i)
		for j := 0; j < h; j += 2 {
			angle := pos / math.Pow(10000, float64(j)/float64(h))
			row[j] += 0.1 * float32(math.Sin(angle))
			if j+1 < h {
				row[j+1] += 0.1 * float32(math.Cos(angle))
			}
		}
	}
	return out
}

// Logits projects [batch, hidden] states onto the vocabulary.
func (m *Model) Logits(pool *threadpool.Pool, width int, hidden *tensor.Tensor) *tensor.Tensor {
	norm := hidden.Clone()
	tensor.LayerNormRows(norm, m.FinalGain, nil, 1e-5)
	return tensor.MatMulT(pool, width, norm, m.Embedding)
}

// Prefill runs the prompt through every layer, populating cache, and returns
// the last-position hidden state per sequence ([batch, hidden]).
// prompts[i] is sequence i's token IDs; all must share one length.
func (m *Model) Prefill(pool *threadpool.Pool, width int, cache *KVCache, prompts [][]int) (*tensor.Tensor, error) {
	if len(prompts) == 0 {
		return nil, fmt.Errorf("model: empty prompt batch")
	}
	s := len(prompts[0])
	x := make([]*tensor.Tensor, len(prompts))
	for i, p := range prompts {
		if len(p) != s {
			return nil, fmt.Errorf("model: ragged prompt lengths %d and %d", s, len(p))
		}
		x[i] = m.Embed(p, 0)
	}
	var hidden *tensor.Tensor
	for l := 0; l < m.Cfg.Layers; l++ {
		out := Attention(pool, width, m.Cfg, m.Layers[l], cache, l, x)
		MLPSeq(pool, width, m.Cfg, m.Layers[l], x)
		hidden = out.Hidden
	}
	// Hidden from the attention call excludes the final MLP; rebuild the
	// last-row view after the MLP pass.
	for i, xs := range x {
		copy(hidden.Row(i), xs.Row(s-1))
	}
	return hidden, nil
}

// DecodeStep feeds one token per sequence through every layer, extending
// cache, and returns the new hidden state ([batch, hidden]).
// pos is the absolute position of these tokens (prompt length + tokens
// generated so far).
func (m *Model) DecodeStep(pool *threadpool.Pool, width int, cache *KVCache, tokens []int, pos int) *tensor.Tensor {
	x := make([]*tensor.Tensor, len(tokens))
	for i, tok := range tokens {
		x[i] = m.Embed([]int{tok}, pos)
	}
	var hidden *tensor.Tensor
	for l := 0; l < m.Cfg.Layers; l++ {
		out := Attention(pool, width, m.Cfg, m.Layers[l], cache, l, x)
		for i := range x {
			// x[i] is [1, hidden]; run the MLP in place.
			MLP(pool, width, m.Cfg, m.Layers[l], x[i])
		}
		hidden = out.Hidden
	}
	for i, xs := range x {
		copy(hidden.Row(i), xs.Row(0))
	}
	return hidden
}

// Generate runs greedy decoding end to end: prefill then genLen decode
// steps. It returns the generated token IDs per sequence. This is the
// reference (non-offloaded) path the offloading runtime's output is checked
// against.
func (m *Model) Generate(pool *threadpool.Pool, width int, prompts [][]int, genLen int) ([][]int, error) {
	cache := NewKVCache(m.Cfg.Layers, len(prompts), m.Cfg.Hidden)
	hidden, err := m.Prefill(pool, width, cache, prompts)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(prompts))
	pos := len(prompts[0])
	current := tensor.ArgmaxRows(m.Logits(pool, width, hidden))
	for i := range out {
		out[i] = append(out[i], current[i])
	}
	for step := 1; step < genLen; step++ {
		hidden = m.DecodeStep(pool, width, cache, current, pos)
		pos++
		current = tensor.ArgmaxRows(m.Logits(pool, width, hidden))
		for i := range out {
			out[i] = append(out[i], current[i])
		}
	}
	return out, nil
}
