package model

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Checkpoint format: a minimal self-describing binary layout so tiny models
// can be persisted and reloaded bit-exactly across runs and machines
// (little-endian, versioned).
//
//	magic "LMOF" | version u32 | config (7 x i64) | per tensor: rank u32,
//	dims i64..., float32 data...
const (
	checkpointMagic   = "LMOF"
	checkpointVersion = 1
)

// Save serializes the model's configuration and weights.
func (m *Model) Save(w io.Writer) error {
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(checkpointVersion)); err != nil {
		return err
	}
	cfgInts := []int64{
		int64(m.Cfg.Layers), int64(m.Cfg.Hidden), int64(m.Cfg.FFN),
		int64(m.Cfg.Heads), int64(m.Cfg.Vocab), int64(m.Cfg.BytesPerElem),
		int64(len(m.Cfg.Name)),
	}
	if err := binary.Write(w, binary.LittleEndian, cfgInts); err != nil {
		return err
	}
	if _, err := io.WriteString(w, m.Cfg.Name); err != nil {
		return err
	}
	for _, t := range m.allTensors() {
		if err := writeTensor(w, t); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a checkpoint written by Save, reconstructing the model.
func Load(r io.Reader) (*Model, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("model: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("model: bad checkpoint magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("model: unsupported checkpoint version %d", version)
	}
	cfgInts := make([]int64, 7)
	if err := binary.Read(r, binary.LittleEndian, cfgInts); err != nil {
		return nil, err
	}
	nameLen := cfgInts[6]
	if nameLen < 0 || nameLen > 4096 {
		return nil, fmt.Errorf("model: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	cfg := Config{
		Name:   string(name),
		Layers: int(cfgInts[0]), Hidden: int(cfgInts[1]), FFN: int(cfgInts[2]),
		Heads: int(cfgInts[3]), Vocab: int(cfgInts[4]), BytesPerElem: int(cfgInts[5]),
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg}
	for i := 0; i < cfg.Layers; i++ {
		m.Layers = append(m.Layers, &LayerWeights{})
	}
	for _, slot := range m.allTensorSlots() {
		t, err := readTensor(r)
		if err != nil {
			return nil, err
		}
		*slot = t
	}
	return m, nil
}

// allTensors returns every weight tensor in checkpoint order.
func (m *Model) allTensors() []*tensor.Tensor {
	out := []*tensor.Tensor{m.Embedding, m.FinalGain}
	for _, lw := range m.Layers {
		out = append(out, lw.WQ, lw.WK, lw.WV, lw.WO, lw.W1, lw.W2, lw.LN1Gain, lw.LN2Gain)
	}
	return out
}

// allTensorSlots returns the assignable destinations in the same order.
func (m *Model) allTensorSlots() []**tensor.Tensor {
	out := []**tensor.Tensor{&m.Embedding, &m.FinalGain}
	for _, lw := range m.Layers {
		out = append(out, &lw.WQ, &lw.WK, &lw.WV, &lw.WO, &lw.W1, &lw.W2, &lw.LN1Gain, &lw.LN2Gain)
	}
	return out
}

func writeTensor(w io.Writer, t *tensor.Tensor) error {
	shape := t.Shape()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
		return err
	}
	dims := make([]int64, len(shape))
	for i, d := range shape {
		dims[i] = int64(d)
	}
	if err := binary.Write(w, binary.LittleEndian, dims); err != nil {
		return err
	}
	buf := make([]byte, 4*len(t.Data()))
	for i, v := range t.Data() {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readTensor(r io.Reader) (*tensor.Tensor, error) {
	var rank uint32
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return nil, err
	}
	if rank == 0 || rank > 8 {
		return nil, fmt.Errorf("model: implausible tensor rank %d", rank)
	}
	dims := make([]int64, rank)
	if err := binary.Read(r, binary.LittleEndian, dims); err != nil {
		return nil, err
	}
	shape := make([]int, rank)
	n := 1
	for i, d := range dims {
		if d <= 0 || d > 1<<24 {
			return nil, fmt.Errorf("model: implausible dimension %d", d)
		}
		shape[i] = int(d)
		n *= int(d)
	}
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	data := make([]float32, n)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return tensor.FromSlice(data, shape...), nil
}
