package model

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	m, err := NewModel(rand.New(rand.NewSource(77)), Tiny())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != m.Cfg {
		t.Fatalf("config changed: %+v vs %+v", loaded.Cfg, m.Cfg)
	}
	// Bit-exact weights.
	a, b := m.allTensors(), loaded.allTensors()
	if len(a) != len(b) {
		t.Fatalf("tensor counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("tensor %d differs after round trip", i)
		}
	}
	// Same generations.
	prompts := [][]int{{1, 2, 3}, {4, 5, 6}}
	g1, err := m.Generate(nil, 1, prompts, 4)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := loaded.Generate(nil, 1, prompts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1 {
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatal("loaded model generates differently")
			}
		}
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	m, _ := NewModel(rand.New(rand.NewSource(1)), Tiny())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := Load(strings.NewReader("NOPE" + string(raw[4:]))); err == nil {
		t.Error("bad magic accepted")
	}
	truncated := bytes.NewReader(raw[:len(raw)/2])
	if _, err := Load(truncated); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	// Version bump rejected.
	bumped := append([]byte{}, raw...)
	bumped[4] = 99
	if _, err := Load(bytes.NewReader(bumped)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}
