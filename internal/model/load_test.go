package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadConfig(t *testing.T) {
	in := `{"name": "MyModel-7B", "layers": 32, "hidden": 4096, "ffn": 11008,
	        "heads": 32, "vocab": 32000}`
	c, err := LoadConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "MyModel-7B" || c.Layers != 32 || c.BytesPerElem != 2 {
		t.Fatalf("loaded %+v", c)
	}
	if c.HeadDim() != 128 {
		t.Errorf("HeadDim = %d", c.HeadDim())
	}
}

func TestLoadConfigErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"name": "x", "unknown": 1}`,
		`{"layers": 2, "hidden": 8, "ffn": 8, "heads": 2, "vocab": 4}`,              // no name
		`{"name": "x", "layers": 2, "hidden": 9, "ffn": 8, "heads": 2, "vocab": 4}`, // 9 % 2 != 0
	}
	for _, in := range cases {
		if _, err := LoadConfig(strings.NewReader(in)); err == nil {
			t.Errorf("accepted invalid config %q", in)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveConfig(&buf, OPT30B); err != nil {
		t.Fatal(err)
	}
	c, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c != OPT30B {
		t.Errorf("round trip changed config: %+v vs %+v", c, OPT30B)
	}
}
