package model

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// LayerWeights holds one transformer layer's parameters: the four attention
// projections, the two MLP linears, and the two layer norms.
type LayerWeights struct {
	WQ, WK, WV, WO *tensor.Tensor // [hidden, hidden]
	W1             *tensor.Tensor // [hidden, ffn]
	W2             *tensor.Tensor // [ffn, hidden]
	LN1Gain        *tensor.Tensor // [hidden]
	LN2Gain        *tensor.Tensor // [hidden]

	// Packed views for the fused quantized-domain kernels (QuantKernels
	// policy): when a view is non-nil the corresponding matmul consumes the
	// packed blocks directly via tensor.MatMulQ instead of a dense tensor,
	// and the dense field may be nil. Outputs are bit-identical to
	// dequantizing first.
	QWQ, QWK, QWV, QWO *tensor.QMat
	QW1, QW2           *tensor.QMat
}

// mulW dispatches one weight matmul to the fused quantized-domain kernel
// when a packed view is present.
func mulW(pool *threadpool.Pool, width int, x *tensor.Tensor, w *tensor.Tensor, qw *tensor.QMat) *tensor.Tensor {
	if qw != nil {
		return tensor.MatMulQ(pool, width, x, *qw)
	}
	return tensor.MatMul(pool, width, x, w)
}

// NewLayerWeights draws random weights with 1/sqrt(fanin) scaling, which
// keeps activations bounded through deep stacks.
func NewLayerWeights(rng *rand.Rand, cfg Config) *LayerWeights {
	h, f := cfg.Hidden, cfg.FFN
	sh := 1 / math.Sqrt(float64(h))
	sf := 1 / math.Sqrt(float64(f))
	return &LayerWeights{
		WQ:      tensor.RandN(rng, sh, h, h),
		WK:      tensor.RandN(rng, sh, h, h),
		WV:      tensor.RandN(rng, sh, h, h),
		WO:      tensor.RandN(rng, sh, h, h),
		W1:      tensor.RandN(rng, sh, h, f),
		W2:      tensor.RandN(rng, sf, f, h),
		LN1Gain: tensor.Ones(h),
		LN2Gain: tensor.Ones(h),
	}
}

// Tensors returns the layer's weight matrices in a fixed order, used by the
// offloading runtime to move them between memory arenas.
func (lw *LayerWeights) Tensors() []*tensor.Tensor {
	return []*tensor.Tensor{lw.WQ, lw.WK, lw.WV, lw.WO, lw.W1, lw.W2}
}

// Bytes returns the float32 footprint of the matrices (layer norms are
// negligible and stay resident).
func (lw *LayerWeights) Bytes() int64 {
	var n int64
	for _, t := range lw.Tensors() {
		n += t.Bytes()
	}
	return n
}

// AttentionOutput is the result of one layer's attention over a batch.
type AttentionOutput struct {
	// Hidden is the [batch, hidden] output after the output projection and
	// residual connection.
	Hidden *tensor.Tensor
	// NewK and NewV are the [batch][t, hidden] per-sequence projections that
	// were appended to the KV cache (exposed for offload accounting).
	NewK, NewV []*tensor.Tensor
}

// Attention runs multi-head self-attention for a decode step or prefill.
//
// x is [batch, t, hidden] flattened as batch rows of t×hidden (t = 1 for a
// decode step, t = prompt length for prefill). For each sequence the new
// K/V rows are appended to cache before scores are computed, so the current
// token attends to itself — matching the paper's Figure 1 dataflow
// (Q·Kᵀ/√d_k, softmax, ·V).
//
// pool/width select the intra-op parallelism of the matrix multiplies, the
// knob LM-Offload's parallelism control tunes.
func Attention(pool *threadpool.Pool, width int, cfg Config, lw *LayerWeights, cache *KVCache, layer int, x []*tensor.Tensor) AttentionOutput {
	return AttentionAt(pool, width, cfg, lw, cache, layer, 0, x)
}

// AttentionAt is Attention over a GPU batch that starts at cache sequence
// slot seqBase — the k-loop of Algorithm 1 processes the zig-zag block's
// batches one at a time against the shared cache.
func AttentionAt(pool *threadpool.Pool, width int, cfg Config, lw *LayerWeights, cache *KVCache, layer, seqBase int, x []*tensor.Tensor) AttentionOutput {
	batch := len(x)
	h := cfg.Hidden
	heads := cfg.Heads
	dk := cfg.HeadDim()
	scale := float32(1 / math.Sqrt(float64(dk)))

	out := AttentionOutput{
		Hidden: tensor.New(batch, h),
		NewK:   make([]*tensor.Tensor, batch),
		NewV:   make([]*tensor.Tensor, batch),
	}
	for s := 0; s < batch; s++ {
		xs := x[s] // [t, hidden]
		norm := xs.Clone()
		tensor.LayerNormRows(norm, lw.LN1Gain, nil, 1e-5)

		q := mulW(pool, width, norm, lw.WQ, lw.QWQ) // [t, h]
		k := mulW(pool, width, norm, lw.WK, lw.QWK)
		v := mulW(pool, width, norm, lw.WV, lw.QWV)
		cache.Append(layer, seqBase+s, k, v)
		out.NewK[s], out.NewV[s] = k, v

		t := q.Dim(0)
		var attnOut *tensor.Tensor
		if packed := cache.Packed(layer, seqBase+s); len(packed) > 0 {
			attnOut = fusedAttention(pool, width, cfg, packed,
				cache.Keys(layer, seqBase+s), cache.Values(layer, seqBase+s), q, scale)
		} else {
			keys := cache.Keys(layer, seqBase+s) // [T, h]
			values := cache.Values(layer, seqBase+s)
			T := keys.Dim(0)
			attnOut = tensor.New(t, h)

			// Per-head attention with causal masking for prefill rows.
			for head := 0; head < heads; head++ {
				off := head * dk
				qh := sliceCols(q, off, dk)                   // [t, dk]
				kh := sliceCols(keys, off, dk)                // [T, dk]
				vh := sliceCols(values, off, dk)              // [T, dk]
				scores := tensor.MatMulT(pool, width, qh, kh) // [t, T]
				tensor.Scale(scores, scale)
				// Causal mask: query row i (absolute position T - t + i) may only
				// attend to keys 0..T-t+i.
				base := T - t
				for i := 0; i < t; i++ {
					row := scores.Row(i)
					for j := base + i + 1; j < T; j++ {
						row[j] = float32(math.Inf(-1))
					}
				}
				tensor.SoftmaxRows(pool, width, scores)
				ctx := tensor.MatMul(pool, width, scores, vh) // [t, dk]
				copyCols(attnOut, ctx, off)
			}
		}

		proj := mulW(pool, width, attnOut, lw.WO, lw.QWO)
		tensor.AddInPlace(proj, xs) // residual
		// xs is updated in place so prefill (t > 1) carries every position to
		// the next layer; Hidden collects the last position per sequence,
		// which is all a decode step needs.
		copy(xs.Data(), proj.Data())
		copy(out.Hidden.Row(s), proj.Row(t-1))
	}
	return out
}

// fusedAttention computes multi-head attention when the KV history is
// staged in packed quantized form (see KVCache.SetPacked): per head, the
// score matrix is assembled segment by segment — each packed chunk via
// MatMulQTSegInto (dequantizing per tile, never materializing the float32
// history), dense chunks and the slot's fresh rows via MatMulT — and the
// context accumulates probs·V chunk by chunk the same way. Segments are
// visited in ascending token order with the reference kernels' exact
// arithmetic and skip semantics, so the result is bit-identical to
// dequantizing the history, concatenating, and running the dense path.
// rawK/rawV are the slot's dense rows appended after the staged history
// (nil when the step appended nothing, which cannot happen in practice).
func fusedAttention(pool *threadpool.Pool, width int, cfg Config, packed []PackedKV, rawK, rawV, q *tensor.Tensor, scale float32) *tensor.Tensor {
	heads, dk := cfg.Heads, cfg.HeadDim()
	t := q.Dim(0)
	T := 0
	for _, pc := range packed {
		T += pc.Rows()
	}
	if rawK != nil {
		T += rawK.Dim(0)
	}
	attnOut := tensor.New(t, cfg.Hidden)
	for head := 0; head < heads; head++ {
		off := head * dk
		qh := sliceCols(q, off, dk)
		scores := tensor.New(t, T)
		col := 0
		for _, pc := range packed {
			if pc.K != nil {
				tensor.MatMulQTSegInto(pool, width, qh, *pc.K, off, scores, col)
				col += pc.K.Rows
				continue
			}
			kh := sliceCols(pc.RawK, off, dk)
			seg := tensor.MatMulT(pool, width, qh, kh)
			for i := 0; i < t; i++ {
				copy(scores.Row(i)[col:col+kh.Dim(0)], seg.Row(i))
			}
			col += kh.Dim(0)
		}
		if rawK != nil {
			kh := sliceCols(rawK, off, dk)
			seg := tensor.MatMulT(pool, width, qh, kh)
			for i := 0; i < t; i++ {
				copy(scores.Row(i)[col:col+kh.Dim(0)], seg.Row(i))
			}
		}
		tensor.Scale(scores, scale)
		base := T - t
		for i := 0; i < t; i++ {
			row := scores.Row(i)
			for j := base + i + 1; j < T; j++ {
				row[j] = float32(math.Inf(-1))
			}
		}
		tensor.SoftmaxRows(pool, width, scores)
		ctx := tensor.New(t, dk)
		col = 0
		for _, pc := range packed {
			if pc.V != nil {
				tensor.MatMulQSegAcc(pool, width, scores, col, *pc.V, off, ctx)
				col += pc.V.Rows
				continue
			}
			vh := sliceCols(pc.RawV, off, dk)
			tensor.MatMulSegAcc(pool, width, scores, col, vh, ctx)
			col += vh.Dim(0)
		}
		if rawV != nil {
			vh := sliceCols(rawV, off, dk)
			tensor.MatMulSegAcc(pool, width, scores, col, vh, ctx)
		}
		copyCols(attnOut, ctx, off)
	}
	return attnOut
}

// MLP runs the feed-forward block on a [batch, hidden] tensor in place:
// LayerNorm → W1 → GELU → W2 → residual.
func MLP(pool *threadpool.Pool, width int, cfg Config, lw *LayerWeights, x *tensor.Tensor) {
	norm := x.Clone()
	tensor.LayerNormRows(norm, lw.LN2Gain, nil, 1e-5)
	h1 := mulW(pool, width, norm, lw.W1, lw.QW1)
	tensor.GELU(h1)
	h2 := mulW(pool, width, h1, lw.W2, lw.QW2)
	tensor.AddInPlace(x, h2)
}

// MLPSeq applies the feed-forward block to every row of each sequence in
// place (prefill path).
func MLPSeq(pool *threadpool.Pool, width int, cfg Config, lw *LayerWeights, x []*tensor.Tensor) {
	for _, xs := range x {
		MLP(pool, width, cfg, lw, xs)
	}
}

// sliceCols copies columns [off, off+w) of t into a new [rows, w] tensor.
func sliceCols(t *tensor.Tensor, off, w int) *tensor.Tensor {
	rows, cols := t.Dim(0), t.Dim(1)
	out := tensor.New(rows, w)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), t.Data()[i*cols+off:i*cols+off+w])
	}
	return out
}

// copyCols writes src ([rows, w]) into dst's columns starting at off.
func copyCols(dst, src *tensor.Tensor, off int) {
	rows, w := src.Dim(0), src.Dim(1)
	cols := dst.Dim(1)
	for i := 0; i < rows; i++ {
		copy(dst.Data()[i*cols+off:i*cols+off+w], src.Row(i))
	}
}
