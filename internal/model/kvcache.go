package model

import (
	"fmt"

	"repro/internal/tensor"
)

// KVCache stores the per-layer key and value projections of every processed
// token for one batch of sequences. Keys and values are stored per sequence
// as [seq, hidden] matrices so appending a token is a row concatenation —
// the linear growth the paper's Figure 1 shows.
type KVCache struct {
	layers int
	batch  int
	hidden int
	// keys[layer][seq] and values[layer][seq] are [tokens, hidden] tensors.
	keys   [][]*tensor.Tensor
	values [][]*tensor.Tensor
	// packed[layer][seq] is the staged packed KV history for the fused
	// quantized-domain attention path (see SetPacked); empty on the dense
	// path.
	packed [][][]PackedKV
}

// PackedKV is one offloaded KV chunk staged for the fused quantized-domain
// attention path: either a pair of packed views (K and V non-nil, still in
// their group-wise quantized form) or an already-dense pair (RawK/RawV, used
// for chunks stored raw or as float16 under a pressure-ladder slot
// override). A slot's staged history may mix both forms chunk by chunk.
type PackedKV struct {
	K, V       *tensor.QMat
	RawK, RawV *tensor.Tensor
}

// Rows returns the chunk's token count.
func (p PackedKV) Rows() int {
	if p.K != nil {
		return p.K.Rows
	}
	if p.RawK != nil {
		return p.RawK.Dim(0)
	}
	return 0
}

// NewKVCache creates an empty cache for the given geometry.
func NewKVCache(layers, batch, hidden int) *KVCache {
	if layers <= 0 || batch <= 0 || hidden <= 0 {
		panic(fmt.Sprintf("model: invalid KV cache geometry %d/%d/%d", layers, batch, hidden))
	}
	kc := &KVCache{layers: layers, batch: batch, hidden: hidden}
	kc.keys = make([][]*tensor.Tensor, layers)
	kc.values = make([][]*tensor.Tensor, layers)
	kc.packed = make([][][]PackedKV, layers)
	for l := 0; l < layers; l++ {
		kc.keys[l] = make([]*tensor.Tensor, batch)
		kc.values[l] = make([]*tensor.Tensor, batch)
		kc.packed[l] = make([][]PackedKV, batch)
	}
	return kc
}

// SetPacked stages the offloaded KV history for (layer, seq) in packed form
// for the fused attention path, in ascending token order. The slot's dense
// tensors then hold only rows appended after the staged history (the new
// token's K/V), and attention computes over staged-then-dense. Staged packed
// history is transient — it lives for one compute batch and is not part of
// the rollback surface (TruncateTo only rewinds dense rows).
func (kc *KVCache) SetPacked(layer, seq int, chunks []PackedKV) {
	kc.packed[layer][seq] = chunks
}

// Packed returns the staged packed history for (layer, seq), or nil.
func (kc *KVCache) Packed(layer, seq int) []PackedKV { return kc.packed[layer][seq] }

// PackedRows returns the token count of the staged packed history.
func (kc *KVCache) PackedRows(layer, seq int) int {
	var n int
	for _, c := range kc.packed[layer][seq] {
		n += c.Rows()
	}
	return n
}

// Append adds one layer's new key/value rows for sequence seq. k and v must
// be [t, hidden] tensors (t ≥ 1; the prefill appends the whole prompt at
// once, decode steps append one row).
func (kc *KVCache) Append(layer, seq int, k, v *tensor.Tensor) {
	if k.Dim(1) != kc.hidden || v.Dim(1) != kc.hidden {
		panic(fmt.Sprintf("model: KV append width %d/%d, want %d", k.Dim(1), v.Dim(1), kc.hidden))
	}
	if kc.keys[layer][seq] == nil {
		kc.keys[layer][seq] = k.Clone()
		kc.values[layer][seq] = v.Clone()
		return
	}
	kc.keys[layer][seq] = tensor.ConcatRows(kc.keys[layer][seq], k)
	kc.values[layer][seq] = tensor.ConcatRows(kc.values[layer][seq], v)
}

// Keys returns the [tokens, hidden] key matrix for (layer, seq), or nil if
// nothing has been appended.
func (kc *KVCache) Keys(layer, seq int) *tensor.Tensor { return kc.keys[layer][seq] }

// Values returns the [tokens, hidden] value matrix for (layer, seq).
func (kc *KVCache) Values(layer, seq int) *tensor.Tensor { return kc.values[layer][seq] }

// SetKV replaces the stored tensors for (layer, seq); the offloading runtime
// uses this to install dequantized copies fetched from host memory.
func (kc *KVCache) SetKV(layer, seq int, k, v *tensor.Tensor) {
	kc.keys[layer][seq] = k
	kc.values[layer][seq] = v
}

// SeqLen returns the token count cached for (layer, seq).
func (kc *KVCache) SeqLen(layer, seq int) int {
	if kc.keys[layer][seq] == nil {
		return 0
	}
	return kc.keys[layer][seq].Dim(0)
}

// SeqLens snapshots the cached token count of every (layer, seq) slot —
// a rollback mark for fault recovery (see TruncateTo).
func (kc *KVCache) SeqLens() [][]int {
	out := make([][]int, kc.layers)
	for l := range out {
		out[l] = make([]int, kc.batch)
		for s := 0; s < kc.batch; s++ {
			out[l][s] = kc.SeqLen(l, s)
		}
	}
	return out
}

// TruncateTo rewinds every slot to the token counts recorded by an earlier
// SeqLens call, discarding rows appended since. The offloading runtime uses
// this to undo a partially completed decode step before retrying it.
func (kc *KVCache) TruncateTo(lens [][]int) {
	for l := range lens {
		for s, n := range lens[l] {
			cur := kc.SeqLen(l, s)
			if n >= cur {
				continue
			}
			if n == 0 {
				kc.keys[l][s], kc.values[l][s] = nil, nil
				continue
			}
			kc.keys[l][s] = truncRows(kc.keys[l][s], n)
			kc.values[l][s] = truncRows(kc.values[l][s], n)
		}
	}
}

// truncRows copies the first n rows of a [rows, hidden] tensor.
func truncRows(t *tensor.Tensor, n int) *tensor.Tensor {
	w := t.Dim(1)
	return tensor.FromSlice(append([]float32(nil), t.Data()[:n*w]...), n, w)
}

// Batch returns the sequence count.
func (kc *KVCache) Batch() int { return kc.batch }

// Layers returns the layer count.
func (kc *KVCache) Layers() int { return kc.layers }

// Bytes returns the total cache footprint at 4 bytes per element (the
// functional runtime's float32 representation).
func (kc *KVCache) Bytes() int64 {
	var total int64
	for l := 0; l < kc.layers; l++ {
		for s := 0; s < kc.batch; s++ {
			if kc.keys[l][s] != nil {
				total += kc.keys[l][s].Bytes() + kc.values[l][s].Bytes()
			}
		}
	}
	return total
}
