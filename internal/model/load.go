package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// LoadConfig reads a model configuration from JSON, e.g.
//
//	{"name": "MyModel-7B", "layers": 32, "hidden": 4096, "ffn": 11008,
//	 "heads": 32, "vocab": 32000, "bytesPerElem": 2}
//
// Missing bytesPerElem defaults to 2 (FP16). The result is validated.
func LoadConfig(r io.Reader) (Config, error) {
	var raw struct {
		Name         string `json:"name"`
		Layers       int    `json:"layers"`
		Hidden       int    `json:"hidden"`
		FFN          int    `json:"ffn"`
		Heads        int    `json:"heads"`
		Vocab        int    `json:"vocab"`
		BytesPerElem int    `json:"bytesPerElem"`
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return Config{}, fmt.Errorf("model: decoding config: %w", err)
	}
	c := Config{
		Name:         raw.Name,
		Layers:       raw.Layers,
		Hidden:       raw.Hidden,
		FFN:          raw.FFN,
		Heads:        raw.Heads,
		Vocab:        raw.Vocab,
		BytesPerElem: raw.BytesPerElem,
	}
	if c.BytesPerElem == 0 {
		c.BytesPerElem = 2
	}
	if c.Name == "" {
		return Config{}, fmt.Errorf("model: config has no name")
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// SaveConfig writes the configuration as JSON.
func SaveConfig(w io.Writer, c Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]interface{}{
		"name":         c.Name,
		"layers":       c.Layers,
		"hidden":       c.Hidden,
		"ffn":          c.FFN,
		"heads":        c.Heads,
		"vocab":        c.Vocab,
		"bytesPerElem": c.BytesPerElem,
	})
}
