// Package model defines the transformer models LM-Offload serves: the
// large OPT and LLaMA configurations used by the paper's evaluation (as
// metadata driving the analytical models and the simulator) and tiny
// configurations with real weights that the functional runtime executes.
package model

import (
	"fmt"

	"repro/internal/trace"
)

// Config describes a decoder-only transformer's geometry. The analytical
// performance model needs only these fields; the functional runtime
// instantiates real weights from them.
type Config struct {
	Name string
	// Layers is l, the transformer layer count.
	Layers int
	// Hidden is h1, the model (embedding) dimension.
	Hidden int
	// FFN is h2, the hidden size of the MLP's first linear layer.
	FFN int
	// Heads is the attention head count; Hidden must divide evenly by it.
	Heads int
	// Vocab is the vocabulary size.
	Vocab int
	// BytesPerElem is the storage width of one weight/KV element in the
	// deployment precision (2 for FP16, the paper's baseline precision).
	BytesPerElem int
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Hidden <= 0 || c.FFN <= 0 || c.Heads <= 0 || c.Vocab <= 0:
		return fmt.Errorf("model: %s has non-positive dimensions", c.Name)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model: %s hidden %d not divisible by %d heads", c.Name, c.Hidden, c.Heads)
	case c.BytesPerElem <= 0:
		return fmt.Errorf("model: %s has non-positive element width", c.Name)
	}
	return nil
}

// HeadDim returns d_k, the per-head dimension.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// WeightsPerLayer returns the paper's num_weights for one transformer layer:
// 4·h1² for the Q, K, V and output projections plus 2·h1·h2 for the two MLP
// linears.
func (c Config) WeightsPerLayer() int64 {
	h1, h2 := int64(c.Hidden), int64(c.FFN)
	return 4*h1*h1 + 2*h1*h2
}

// TotalWeights returns the parameter count of all transformer layers plus the
// token embedding / unembedding matrix.
func (c Config) TotalWeights() int64 {
	return int64(c.Layers)*c.WeightsPerLayer() + int64(c.Vocab)*int64(c.Hidden)
}

// WeightBytes returns the weight footprint in the deployment precision.
func (c Config) WeightBytes() int64 { return c.TotalWeights() * int64(c.BytesPerElem) }

// LayerWeightBytes returns one layer's weight footprint.
func (c Config) LayerWeightBytes() int64 { return c.WeightsPerLayer() * int64(c.BytesPerElem) }

// KVElemsPerTokenLayer returns the KV-cache elements added per token per
// layer per sequence: 2·h1 (one K row and one V row).
func (c Config) KVElemsPerTokenLayer() int64 { return 2 * int64(c.Hidden) }

// KVCacheBytes returns the peak KV-cache footprint for a workload: all
// layers, the full block, prompt plus all generated tokens.
func (c Config) KVCacheBytes(w trace.Workload) int64 {
	seq := int64(w.PromptLen + w.GenLen)
	return int64(c.Layers) * c.KVElemsPerTokenLayer() * seq * int64(w.BlockSize()) * int64(c.BytesPerElem)
}

// KVCacheBytesAtToken returns the per-layer KV-cache footprint when the
// sequence holds the prompt plus `generated` tokens (Eq. 18's instantaneous
// size before averaging).
func (c Config) KVCacheBytesAtToken(w trace.Workload, generated int) int64 {
	seq := int64(w.PromptLen + generated)
	return c.KVElemsPerTokenLayer() * seq * int64(w.BlockSize()) * int64(c.BytesPerElem)
}

// ActivationBytes returns the per-layer activation (hidden state) size for a
// decode step: one h1 vector per sequence in the block.
func (c Config) ActivationBytes(w trace.Workload) int64 {
	return int64(c.Hidden) * int64(w.BlockSize()) * int64(c.BytesPerElem)
}

// AttnFlopsDecode returns the FLOPs of one decode-step attention for the
// whole block at sequence length seq: Q·Kᵀ and scores·V dominate at
// 2 · 2 · seq · h1 per sequence, plus the four h1×h1 projections.
func (c Config) AttnFlopsDecode(w trace.Workload, seq int) float64 {
	perSeq := 4*float64(seq)*float64(c.Hidden) + 8*float64(c.Hidden)*float64(c.Hidden)
	return perSeq * float64(w.BlockSize())
}

// MLPFlopsDecode returns the FLOPs of one decode-step MLP for the block:
// two h1×h2 GEMVs per sequence.
func (c Config) MLPFlopsDecode(w trace.Workload) float64 {
	return 4 * float64(c.Hidden) * float64(c.FFN) * float64(w.BlockSize())
}

// Built-in configurations. Layer counts and dimensions follow the published
// model cards; vocabularies are 50272 for OPT and 32000 for LLaMA.
var (
	OPT6B7 = Config{Name: "OPT-6.7B", Layers: 32, Hidden: 4096, FFN: 16384, Heads: 32, Vocab: 50272, BytesPerElem: 2}
	OPT13B = Config{Name: "OPT-13B", Layers: 40, Hidden: 5120, FFN: 20480, Heads: 40, Vocab: 50272, BytesPerElem: 2}
	OPT30B = Config{Name: "OPT-30B", Layers: 48, Hidden: 7168, FFN: 28672, Heads: 56, Vocab: 50272, BytesPerElem: 2}
	OPT66B = Config{Name: "OPT-66B", Layers: 64, Hidden: 9216, FFN: 36864, Heads: 72, Vocab: 50272, BytesPerElem: 2}
	// OPT175B is beyond the paper's evaluation; the scale-sweep ablation
	// uses it to probe where even offloaded inference runs out of host
	// memory.
	OPT175B = Config{Name: "OPT-175B", Layers: 96, Hidden: 12288, FFN: 49152, Heads: 96, Vocab: 50272, BytesPerElem: 2}

	LLaMA7B  = Config{Name: "LLaMA-7B", Layers: 32, Hidden: 4096, FFN: 11008, Heads: 32, Vocab: 32000, BytesPerElem: 2}
	LLaMA13B = Config{Name: "LLaMA-13B", Layers: 40, Hidden: 5120, FFN: 13824, Heads: 40, Vocab: 32000, BytesPerElem: 2}
	LLaMA30B = Config{Name: "LLaMA-30B", Layers: 60, Hidden: 6656, FFN: 17920, Heads: 52, Vocab: 32000, BytesPerElem: 2}
	LLaMA65B = Config{Name: "LLaMA-65B", Layers: 80, Hidden: 8192, FFN: 22016, Heads: 64, Vocab: 32000, BytesPerElem: 2}
)

// Evaluated returns the four single-GPU evaluation models of Table 3.
func Evaluated() []Config { return []Config{OPT30B, OPT66B, LLaMA30B, LLaMA65B} }

// ByName looks up a built-in configuration.
func ByName(name string) (Config, error) {
	for _, c := range []Config{OPT6B7, OPT13B, OPT30B, OPT66B, OPT175B, LLaMA7B, LLaMA13B, LLaMA30B, LLaMA65B} {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown configuration %q", name)
}

// Tiny returns a small configuration the functional runtime can execute in
// milliseconds while exercising every code path (multi-head attention, KV
// cache, quantization, offloading).
func Tiny() Config {
	return Config{Name: "Tiny", Layers: 4, Hidden: 64, FFN: 128, Heads: 4, Vocab: 128, BytesPerElem: 2}
}

// Small returns a mid-size functional configuration for throughput-shaped
// runs of the real engine.
func Small() Config {
	return Config{Name: "Small", Layers: 8, Hidden: 128, FFN: 512, Heads: 8, Vocab: 512, BytesPerElem: 2}
}
