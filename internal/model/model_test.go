package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
	"repro/internal/threadpool"
	"repro/internal/trace"
)

func TestBuiltinConfigsValidate(t *testing.T) {
	for _, c := range []Config{OPT13B, OPT30B, OPT66B, LLaMA13B, LLaMA30B, LLaMA65B, Tiny(), Small()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("OPT-30B")
	if err != nil || c.Layers != 48 {
		t.Errorf("ByName(OPT-30B) = %+v, %v", c, err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Error("ByName accepted unknown model")
	}
}

func TestOPT30BFootprintsMatchPaper(t *testing.T) {
	// §3.1: OPT-30B parameters take ~55 GB and the KV cache up to ~157 GB
	// for s=64, n=128, bls=640 in FP16. Allow ±20% because the paper does
	// not state exactly which matrices it counts.
	w := trace.PaperDefault()
	gb := func(b int64) float64 { return float64(b) / (1 << 30) }
	weights := gb(OPT30B.WeightBytes())
	if weights < 44 || weights > 66 {
		t.Errorf("OPT-30B weights = %.1f GB, want ~55 GB", weights)
	}
	kv := gb(OPT30B.KVCacheBytes(w))
	if kv < 126 || kv > 190 {
		t.Errorf("OPT-30B KV cache = %.1f GB, want ~157 GB", kv)
	}
}

func TestWeightsPerLayerFormula(t *testing.T) {
	c := Config{Name: "x", Layers: 1, Hidden: 10, FFN: 7, Heads: 2, Vocab: 5, BytesPerElem: 2}
	// 4·h1² + 2·h1·h2 = 400 + 140.
	if got := c.WeightsPerLayer(); got != 540 {
		t.Errorf("WeightsPerLayer = %d, want 540", got)
	}
	if got := c.TotalWeights(); got != 540+50 {
		t.Errorf("TotalWeights = %d, want 590", got)
	}
}

func TestKVCacheBytesGrowsLinearly(t *testing.T) {
	c := Tiny()
	w := trace.Workload{PromptLen: 4, GenLen: 8, GPUBatch: 2, NumBatches: 1}
	b0 := c.KVCacheBytesAtToken(w, 0)
	b4 := c.KVCacheBytesAtToken(w, 4)
	b8 := c.KVCacheBytesAtToken(w, 8)
	if b4-b0 != b8-b4 {
		t.Errorf("KV growth not linear: %d, %d, %d", b0, b4, b8)
	}
	if b0 != int64(c.Layers)*0+2*int64(c.Hidden)*4*2*2 {
		t.Errorf("KV at token 0 = %d", b0)
	}
}

func TestKVCacheAppendAndViews(t *testing.T) {
	kc := NewKVCache(2, 3, 4)
	k := tensor.Full(1, 2, 4)
	v := tensor.Full(2, 2, 4)
	kc.Append(0, 1, k, v)
	if kc.SeqLen(0, 1) != 2 {
		t.Errorf("SeqLen = %d, want 2", kc.SeqLen(0, 1))
	}
	if kc.SeqLen(0, 0) != 0 || kc.SeqLen(1, 1) != 0 {
		t.Error("Append leaked into other slots")
	}
	kc.Append(0, 1, tensor.Full(3, 1, 4), tensor.Full(4, 1, 4))
	if kc.SeqLen(0, 1) != 3 {
		t.Errorf("SeqLen after second append = %d, want 3", kc.SeqLen(0, 1))
	}
	if got := kc.Keys(0, 1).At(2, 0); got != 3 {
		t.Errorf("appended key = %g, want 3", got)
	}
	if kc.Bytes() != (3*4+3*4)*4 {
		t.Errorf("Bytes = %d", kc.Bytes())
	}
}

func TestKVCacheAppendIsDefensiveCopy(t *testing.T) {
	kc := NewKVCache(1, 1, 2)
	k := tensor.Full(1, 1, 2)
	kc.Append(0, 0, k, k.Clone())
	k.Set(99, 0, 0)
	if kc.Keys(0, 0).At(0, 0) != 1 {
		t.Error("first Append aliased caller's tensor")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Tiny()
	m1, err := NewModel(rand.New(rand.NewSource(42)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := NewModel(rand.New(rand.NewSource(42)), cfg)
	prompts := [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}}
	g1, err := m1.Generate(nil, 1, prompts, 5)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := m2.Generate(nil, 1, prompts, 5)
	for i := range g1 {
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatalf("generation not deterministic: %v vs %v", g1, g2)
			}
		}
	}
	for _, seq := range g1 {
		if len(seq) != 5 {
			t.Fatalf("generated %d tokens, want 5", len(seq))
		}
		for _, tok := range seq {
			if tok < 0 || tok >= cfg.Vocab {
				t.Fatalf("token %d outside vocab", tok)
			}
		}
	}
}

func TestGenerateParallelMatchesSerial(t *testing.T) {
	cfg := Tiny()
	pool := threadpool.MustNew(4)
	mk := func() *Model {
		m, err := NewModel(rand.New(rand.NewSource(7)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	prompts := [][]int{{1, 2, 3}, {9, 10, 11}}
	serial, err := mk().Generate(nil, 1, prompts, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := mk().Generate(pool, 4, prompts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for j := range serial[i] {
			if serial[i][j] != par[i][j] {
				t.Fatalf("parallel generation differs: %v vs %v", serial, par)
			}
		}
	}
}

func TestPrefillThenDecodeMatchesJointPrefill(t *testing.T) {
	// Decoding token x after prefill [a b c] must equal prefilling
	// [a b c x] — the KV cache must be transparent.
	cfg := Tiny()
	mk := func() *Model {
		m, _ := NewModel(rand.New(rand.NewSource(3)), cfg)
		return m
	}
	prompt := []int{1, 2, 3}
	next := 4

	mA := mk()
	cacheA := NewKVCache(cfg.Layers, 1, cfg.Hidden)
	if _, err := mA.Prefill(nil, 1, cacheA, [][]int{prompt}); err != nil {
		t.Fatal(err)
	}
	hA := mA.DecodeStep(nil, 1, cacheA, []int{next}, len(prompt))

	mB := mk()
	cacheB := NewKVCache(cfg.Layers, 1, cfg.Hidden)
	hB, err := mB.Prefill(nil, 1, cacheB, [][]int{append(append([]int{}, prompt...), next)})
	if err != nil {
		t.Fatal(err)
	}

	var maxDiff float64
	for j := 0; j < cfg.Hidden; j++ {
		d := math.Abs(float64(hA.At(0, j) - hB.At(0, j)))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Errorf("incremental decode diverges from joint prefill by %g", maxDiff)
	}
}

func TestPrefillRejectsRaggedPrompts(t *testing.T) {
	cfg := Tiny()
	m, _ := NewModel(rand.New(rand.NewSource(1)), cfg)
	cache := NewKVCache(cfg.Layers, 2, cfg.Hidden)
	if _, err := m.Prefill(nil, 1, cache, [][]int{{1, 2}, {3}}); err == nil {
		t.Error("Prefill accepted ragged prompts")
	}
	if _, err := m.Prefill(nil, 1, cache, nil); err == nil {
		t.Error("Prefill accepted empty batch")
	}
}

func TestEmbedPanicsOnBadToken(t *testing.T) {
	cfg := Tiny()
	m, _ := NewModel(rand.New(rand.NewSource(1)), cfg)
	defer func() {
		if recover() == nil {
			t.Error("Embed accepted out-of-vocab token")
		}
	}()
	m.Embed([]int{cfg.Vocab}, 0)
}

func TestAttnAndMLPFlopsPositiveAndScale(t *testing.T) {
	w := trace.PaperDefault()
	f1 := OPT30B.AttnFlopsDecode(w, 64)
	f2 := OPT30B.AttnFlopsDecode(w, 128)
	if f1 <= 0 || f2 <= f1 {
		t.Errorf("attention FLOPs not increasing with sequence: %g, %g", f1, f2)
	}
	if OPT30B.MLPFlopsDecode(w) <= 0 {
		t.Error("MLP FLOPs non-positive")
	}
}
