package policy

import (
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

func TestPlanFindsFeasibleStrategy(t *testing.T) {
	plat := hw.SingleGPUA100()
	res, err := Plan(plat, model.OPT30B, trace.PaperDefault(), perfmodel.LMOffloadProfile(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("non-positive throughput %g", res.Throughput)
	}
	if res.Memory.GPU > plat.GPU0().MemBytes {
		t.Errorf("chosen strategy exceeds GPU memory: %d > %d", res.Memory.GPU, plat.GPU0().MemBytes)
	}
	if res.Memory.CPU > plat.CPU.MemBytes {
		t.Errorf("chosen strategy exceeds CPU memory: %d > %d", res.Memory.CPU, plat.CPU.MemBytes)
	}
	if err := res.Strategy.Validate(); err != nil {
		t.Errorf("chosen strategy invalid: %v", err)
	}
}

func TestQuantAwarePlanUsesKVQuantizationForLongGen(t *testing.T) {
	// For the §3.1 workload, the quantization-aware search should land on
	// GPU attention with KV quantization — the Figure 3 winner.
	plat := hw.SingleGPUA100()
	res, err := Plan(plat, model.OPT30B, trace.PaperDefault(), perfmodel.LMOffloadProfile(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.AttnOnCPU {
		t.Errorf("quant-aware plan chose CPU attention: %v", res.Strategy)
	}
	if !res.Strategy.QuantKV {
		t.Errorf("quant-aware plan skipped KV quantization: %v", res.Strategy)
	}
}

func TestQuantAwareBeatsQuantBlind(t *testing.T) {
	plat := hw.SingleGPUA100()
	exec := perfmodel.LMOffloadProfile()
	aware, err := Plan(plat, model.OPT30B, trace.PaperDefault(), exec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	blindOpts := DefaultOptions()
	blindOpts.QuantAware = false
	blind, err := Plan(plat, model.OPT30B, trace.PaperDefault(), exec, blindOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The blind objective may pick a strategy whose true throughput is lower.
	if aware.Throughput < blind.Throughput-1e-9 {
		t.Errorf("quant-aware plan (%.1f) worse than quant-blind plan (%.1f)", aware.Throughput, blind.Throughput)
	}
}

func TestPlanRespectsRestrictedSpaces(t *testing.T) {
	plat := hw.SingleGPUA100()
	opts := DefaultOptions()
	opts.AllowGPUAttention = false
	res, err := Plan(plat, model.OPT30B, trace.PaperDefault(), perfmodel.FlexGenProfile(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Strategy.AttnOnCPU {
		t.Error("CPU-only space returned a GPU-attention strategy")
	}
	opts = DefaultOptions()
	opts.Bits = nil
	res, err = Plan(plat, model.OPT30B, trace.PaperDefault(), perfmodel.FlexGenProfile(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.QuantWeights || res.Strategy.QuantKV {
		t.Errorf("no-quant space returned a quantized strategy: %v", res.Strategy)
	}
}

func TestPlanErrors(t *testing.T) {
	plat := hw.SingleGPUA100()
	opts := DefaultOptions()
	opts.AllowCPUAttention = false
	opts.AllowGPUAttention = false
	if _, err := Plan(plat, model.OPT30B, trace.PaperDefault(), perfmodel.FlexGenProfile(), opts); err == nil {
		t.Error("empty search space did not error")
	}
	opts = DefaultOptions()
	opts.GPUReserve = 1.5
	if _, err := Plan(plat, model.OPT30B, trace.PaperDefault(), perfmodel.FlexGenProfile(), opts); err == nil {
		t.Error("invalid reserve did not error")
	}
}

func TestPlanInfeasibleWorkload(t *testing.T) {
	// A block so large its KV cache cannot fit host memory even fully
	// offloaded and compressed.
	plat := hw.SingleGPUA100()
	work := trace.Workload{PromptLen: 2048, GenLen: 2048, GPUBatch: 512, NumBatches: 64}
	if _, err := Plan(plat, model.OPT66B, work, perfmodel.LMOffloadProfile(), DefaultOptions()); err == nil {
		t.Error("grossly infeasible workload did not error")
	}
}

func TestChooseBlockFillsHostMemory(t *testing.T) {
	plat := hw.SingleGPUA100()
	// Table 3 shape: the block size shrinks as the generation length grows.
	var prev int
	for i, n := range trace.GenLengthSweep() {
		w, err := ChooseBlock(plat, model.OPT30B, 64, 64, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if w.BlockSize()%64 != 0 {
			t.Errorf("block %d not a multiple of the GPU batch", w.BlockSize())
		}
		if i > 0 && w.BlockSize() > prev {
			t.Errorf("block size grew with generation length: %d -> %d at n=%d", prev, w.BlockSize(), n)
		}
		prev = w.BlockSize()
		// The paper's OPT-30B blocks range from 1792 (n=8) to 640 (n=128).
		if n == 8 && (w.BlockSize() < 900 || w.BlockSize() > 3600) {
			t.Errorf("n=8 block = %d, want ~1792", w.BlockSize())
		}
		if n == 128 && (w.BlockSize() < 320 || w.BlockSize() > 1300) {
			t.Errorf("n=128 block = %d, want ~640", w.BlockSize())
		}
	}
}

func TestChooseBlockQuantizedKVGrowsBlock(t *testing.T) {
	plat := hw.SingleGPUA100()
	plain, err := ChooseBlock(plat, model.OPT30B, 64, 64, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := ChooseBlock(plat, model.OPT30B, 64, 64, 128, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if packed.BlockSize() <= plain.BlockSize() {
		t.Errorf("4-bit KV should allow a larger block: %d <= %d", packed.BlockSize(), plain.BlockSize())
	}
}

func TestChooseBlockErrors(t *testing.T) {
	plat := hw.SingleGPUA100()
	if _, err := ChooseBlock(plat, model.OPT30B, 0, 64, 8, 1); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := ChooseBlock(plat, model.OPT30B, 64, 64, 8, 0); err == nil {
		t.Error("zero quant ratio accepted")
	}
	// A model whose weights exceed host memory entirely.
	giant := model.Config{Name: "giant", Layers: 400, Hidden: 20000, FFN: 80000, Heads: 100, Vocab: 50000, BytesPerElem: 2}
	if _, err := ChooseBlock(plat, giant, 64, 64, 8, 1); err == nil {
		t.Error("oversized model accepted")
	}
}

func TestPlanOnMultiGPUPlatform(t *testing.T) {
	// A 16 GB V100 with OPT-13B needs heavy offloading but must be feasible.
	plat := hw.MultiGPUV100().WithGPUCount(1)
	work := trace.MultiGPU(1)
	res, err := Plan(plat, model.OPT13B, work, perfmodel.LMOffloadProfile(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.WeightsGPUPct > 0.5 {
		t.Errorf("16 GB V100 cannot hold %.0f%% of OPT-13B weights", res.Strategy.WeightsGPUPct*100)
	}
}

func TestExplain(t *testing.T) {
	plat := hw.SingleGPUA100()
	res, err := Plan(plat, model.OPT30B, trace.PaperDefault(), perfmodel.LMOffloadProfile(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Explain(res)
	if err != nil {
		t.Fatal(err)
	}
	// The chosen GPU-attention strategy must be consistent with the
	// decision procedures: KV quantization should be beneficial here.
	if !ex.KVQuantBeneficial {
		t.Error("Explain contradicts the chosen KV quantization")
	}
	if ex.KVMoveQuant >= ex.KVMovePlain {
		t.Errorf("quantized KV move %.4f not below plain %.4f", ex.KVMoveQuant, ex.KVMovePlain)
	}
	if ex.GPUAttnThroughput <= 0 || ex.CPUAttnThroughput <= 0 {
		t.Error("missing placement arm throughputs")
	}
	if ex.Bottleneck == "" {
		t.Error("no bottleneck identified")
	}
	out := ex.Format()
	for _, want := range []string{"decision 1", "decision 2", "decision 3", "bottleneck"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q", want)
		}
	}
	if _, err := Explain(Result{}); err == nil {
		t.Error("Explain accepted a result without estimator")
	}
}
