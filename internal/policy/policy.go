// Package policy implements LM-Offload's offloading policy search: given a
// platform, model and workload, it chooses where attention runs, the
// wg/cg/hg placement percentages, whether and how to quantize weights and KV
// cache, and the zig-zag block size.
//
// The search composes two levels, mirroring the paper. The inner level is
// FlexGen's linear program: for a fixed set of discrete choices (attention
// placement, quantization bits), maximize the GPU-resident fractions subject
// to the memory capacities — a fractional-knapsack LP solved with
// internal/lp. The outer level is LM-Offload's contribution: enumerate the
// discrete choices and compare them with the full quantization-aware
// performance model (§3.2), which FlexGen's quantization-blind objective
// cannot do.
package policy

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

// Options tunes the search space.
type Options struct {
	// QuantAware enables the quantization cost/benefit models. Disabling it
	// reproduces FlexGen's quantization-blind objective (the Fig. 7
	// ablation compares the two).
	QuantAware bool
	// AllowCPUAttention includes attention-offloading strategies.
	AllowCPUAttention bool
	// AllowGPUAttention includes GPU-attention strategies.
	AllowGPUAttention bool
	// Bits are the candidate quantization widths.
	Bits []int
	// GroupSize for quantization.
	GroupSize int
	// GPUReserve is the fraction of GPU memory kept free for fragmentation
	// and temporaries.
	GPUReserve float64
	// CPUReserve is the same for host memory.
	CPUReserve float64
}

// DefaultOptions returns LM-Offload's full search space.
func DefaultOptions() Options {
	return Options{
		QuantAware:        true,
		AllowCPUAttention: true,
		AllowGPUAttention: true,
		Bits:              []int{4, 8},
		GroupSize:         64,
		GPUReserve:        0.08,
		CPUReserve:        0.05,
	}
}

// Result is a chosen policy with its modeled performance.
type Result struct {
	Strategy   perfmodel.Strategy
	Throughput float64
	Memory     perfmodel.MemoryUse
	// Estimator re-evaluates the chosen strategy (e.g. for breakdowns).
	Estimator *perfmodel.Estimator
}

// Plan runs LM-Offload's policy search and returns the best strategy.
func Plan(plat *hw.Platform, mod model.Config, work trace.Workload, exec perfmodel.ExecProfile, opts Options) (Result, error) {
	if !opts.AllowCPUAttention && !opts.AllowGPUAttention {
		return Result{}, fmt.Errorf("policy: no attention placement allowed")
	}
	if opts.GPUReserve < 0 || opts.GPUReserve >= 1 || opts.CPUReserve < 0 || opts.CPUReserve >= 1 {
		return Result{}, fmt.Errorf("policy: reserves must be in [0, 1)")
	}

	var best Result
	bestObjective := 0.0
	found := false
	consider := func(s perfmodel.Strategy) error {
		est, err := perfmodel.New(plat, mod, work, s, exec)
		if err != nil {
			return err
		}
		if !fitsWithReserve(est, opts) {
			return nil
		}
		tput := est.Throughput()
		if !opts.QuantAware {
			// FlexGen's objective ignores quantization overheads: evaluate
			// with the quant terms stripped, so the search cannot see the
			// cost it will pay at runtime (the paper's core criticism).
			tput = quantBlindThroughput(est)
		}
		if !found || tput > bestObjective {
			// Record the *true* modeled throughput for reporting, even when
			// the blind objective selected the strategy.
			best = Result{Strategy: s, Throughput: est.Throughput(), Memory: est.Memory(), Estimator: est}
			bestObjective = tput
			found = true
		}
		return nil
	}

	for _, cand := range enumerate(plat, mod, work, opts) {
		if err := consider(cand); err != nil {
			return Result{}, err
		}
	}
	if !found {
		return Result{}, fmt.Errorf("policy: no feasible strategy for %s on %s with %s", mod.Name, plat.Name, work)
	}
	return best, nil
}

// fitsWithReserve applies the capacity constraints with headroom.
func fitsWithReserve(e *perfmodel.Estimator, opts Options) bool {
	m := e.Memory()
	gpuCap := float64(e.Plat.GPU0().MemBytes) * (1 - opts.GPUReserve)
	cpuCap := float64(e.Plat.CPU.MemBytes) * (1 - opts.CPUReserve)
	return float64(m.GPU) <= gpuCap && float64(m.CPU) <= cpuCap
}

// quantBlindThroughput evaluates a strategy with all (de)quantization
// overheads zeroed — FlexGen's view of the world. I/O volume reductions from
// quantization still show (FlexGen knows compressed tensors are smaller); it
// is the kernel overheads it does not model.
func quantBlindThroughput(e *perfmodel.Estimator) float64 {
	blind := *e
	blind.Exec.QuantKernelScale = 1e12 // overheads vanish
	return blind.Throughput()
}

// enumerate produces the candidate strategies: the cross product of
// attention placement, quantization choices, and LP-optimized placements.
func enumerate(plat *hw.Platform, mod model.Config, work trace.Workload, opts Options) []perfmodel.Strategy {
	type quantChoice struct {
		qw, qkv  bool
		wb, kb   int
		compress bool
	}
	choices := []quantChoice{{}}
	if len(opts.Bits) > 0 {
		for _, wb := range opts.Bits {
			choices = append(choices,
				quantChoice{qw: true, wb: wb},
				quantChoice{qw: true, wb: wb, compress: true},
			)
			for _, kb := range opts.Bits {
				choices = append(choices,
					quantChoice{qkv: true, kb: kb},
					quantChoice{qw: true, qkv: true, wb: wb, kb: kb},
					quantChoice{qw: true, qkv: true, wb: wb, kb: kb, compress: true},
				)
			}
		}
	}

	var attns []bool
	if opts.AllowGPUAttention {
		attns = append(attns, false)
	}
	if opts.AllowCPUAttention {
		attns = append(attns, true)
	}

	var out []perfmodel.Strategy
	for _, attnCPU := range attns {
		for _, qc := range choices {
			s := perfmodel.Strategy{
				AttnOnCPU:          attnCPU,
				QuantWeights:       qc.qw,
				WeightBits:         qc.wb,
				QuantKV:            qc.qkv,
				KVBits:             qc.kb,
				CompressGPUWeights: qc.compress,
				GroupSize:          opts.GroupSize,
			}
			wg, cg, hg, ok := placeLP(plat, mod, work, s, opts)
			if !ok {
				continue
			}
			s.WeightsGPUPct, s.CacheGPUPct, s.ActGPUPct = wg, cg, hg
			if s.AttnOnCPU {
				s.CacheGPUPct = 0
			}
			out = append(out, s)
		}
	}
	return out
}

// placeLP solves FlexGen's placement problem for fixed discrete choices:
// maximize the link traffic avoided by GPU residency, subject to the GPU
// capacity (CPU capacity constrains the complement). Variables are wg, cg,
// hg ∈ [0, 1].
func placeLP(plat *hw.Platform, mod model.Config, work trace.Workload, s perfmodel.Strategy, opts Options) (wg, cg, hg float64, ok bool) {
	wBytes := float64(mod.WeightBytes())
	kvBytes := float64(mod.KVCacheBytes(work))
	actBytes := float64(mod.ActivationBytes(work)) * 2

	// GPU bytes occupied per unit of each variable. GPU-resident weights are
	// compressed only under CompressGPUWeights.
	wUnit := wBytes
	if s.CompressGPUWeights {
		wUnit = wBytes * float64(s.WeightBits) / 16
	}

	// Workspace that is always resident on the GPU: streamed weight double
	// buffers plus the attention working set when attention runs on GPU
	// (mirrors perfmodel.Memory).
	workspace := float64(mod.LayerWeightBytes()) * 2
	if !s.AttnOnCPU {
		seq := float64(work.PromptLen + work.GenLen)
		workspace += 2 * 2 * seq * float64(mod.Hidden) * float64(work.BlockSize()) * float64(mod.BytesPerElem)
	}
	gpuCap := float64(plat.GPU0().MemBytes)*(1-opts.GPUReserve) - workspace
	if gpuCap <= 0 {
		return 0, 0, 0, false
	}

	// Marginal benefit per unit of each variable: the total link traffic
	// avoided by GPU residency. Weights move every token; the KV cache moves
	// only when attention is on GPU; activations are a small free benefit.
	objW := wBytes
	objC := 0.0
	if !s.AttnOnCPU {
		objC = kvBytes
	}
	objH := actBytes

	prob := lp.Problem{
		C: []float64{objW, objC, objH},
		A: [][]float64{
			{wUnit, kvBytes, actBytes}, // GPU capacity
			{1, 0, 0},                  // wg <= 1
			{0, 1, 0},                  // cg <= 1
			{0, 0, 1},                  // hg <= 1
		},
		B: []float64{gpuCap, 1, 1, 1},
	}
	res, err := lp.Solve(prob)
	if err != nil {
		return 0, 0, 0, false
	}
	wg = clamp01(res.X[0])
	cg = clamp01(res.X[1])
	hg = clamp01(res.X[2])

	// Round to whole percentage points like the paper's tables, rounding
	// down so the capacity constraint still holds.
	wg = math.Floor(wg*100) / 100
	cg = math.Floor(cg*100) / 100
	hg = math.Floor(hg*100) / 100

	// CPU side must hold the complement.
	cpuNeed := wBytes*(1-wg)*quantRatio(s.QuantWeights, s.WeightBits) +
		kvBytes*(1-cg)*quantRatio(s.QuantKV, s.KVBits) +
		actBytes*(1-hg)
	if cpuNeed > float64(plat.CPU.MemBytes)*(1-opts.CPUReserve) {
		return 0, 0, 0, false
	}
	return wg, cg, hg, true
}

func quantRatio(on bool, bits int) float64 {
	if !on {
		return 1
	}
	return float64(bits) / 16
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ChooseBlock picks the zig-zag block size: the largest multiple of the GPU
// batch whose KV cache (plus the weight complement) still fits in host
// memory — how FlexGen and LM-Offload reach block sizes like 1792 at n=8 and
// 640 at n=128 on the 240 GB host (Table 3).
func ChooseBlock(plat *hw.Platform, mod model.Config, gpuBatch, promptLen, genLen int, kvQuantRatio float64) (trace.Workload, error) {
	if gpuBatch <= 0 || promptLen <= 0 || genLen <= 0 {
		return trace.Workload{}, fmt.Errorf("policy: invalid workload parameters %d/%d/%d", gpuBatch, promptLen, genLen)
	}
	if kvQuantRatio <= 0 || kvQuantRatio > 1 {
		return trace.Workload{}, fmt.Errorf("policy: KV quant ratio %g outside (0, 1]", kvQuantRatio)
	}
	budget := float64(plat.CPU.MemBytes) * 0.92
	// Weights likely live mostly on CPU; charge them fully (conservative).
	budget -= float64(mod.WeightBytes())
	if budget <= 0 {
		return trace.Workload{}, fmt.Errorf("policy: %s weights alone exceed host memory", mod.Name)
	}
	seq := float64(promptLen + genLen)
	kvPerSeq := float64(mod.Layers) * 2 * seq * float64(mod.Hidden) * float64(mod.BytesPerElem) * kvQuantRatio
	maxSeqs := int(budget / kvPerSeq)
	numBatches := maxSeqs / gpuBatch
	if numBatches < 1 {
		numBatches = 1
	}
	w := trace.Workload{PromptLen: promptLen, GenLen: genLen, GPUBatch: gpuBatch, NumBatches: numBatches}
	return w, w.Validate()
}
