package policy

import (
	"fmt"
	"strings"

	"repro/internal/perfmodel"
)

// Explanation walks through the §3.2 decision procedures for a chosen
// strategy, showing the comparisons the performance model made — the
// paper's "how to use the models" rendered for a human.
type Explanation struct {
	Strategy perfmodel.Strategy
	// WeightQuant compares load_weight with and without quantization
	// (decision procedure 1).
	WeightQuantBeneficial bool
	WeightLoadPlain       float64
	WeightLoadQuant       float64
	// KVQuant compares load_cache+store_cache with and without quantization
	// (decision procedure 2).
	KVQuantBeneficial bool
	KVMovePlain       float64
	KVMoveQuant       float64
	// Attention placement compares the two arms' end-to-end throughput
	// (decision procedure 3).
	CPUAttnThroughput float64
	GPUAttnThroughput float64
	// Tasks is the chosen strategy's six-task decomposition.
	Tasks perfmodel.TaskTimes
	// Bottleneck names the slowest task.
	Bottleneck string
}

// Explain analyzes a planned result.
func Explain(res Result) (*Explanation, error) {
	if res.Estimator == nil {
		return nil, fmt.Errorf("policy: result has no estimator")
	}
	e := res.Estimator
	out := &Explanation{Strategy: res.Strategy}

	bits := res.Strategy.WeightBits
	if bits == 0 {
		bits = 4
	}
	out.WeightQuantBeneficial = e.WeightQuantizationBeneficial(bits)
	plainW := res.Strategy
	plainW.QuantWeights = false
	plainW.CompressGPUWeights = false
	quantW := res.Strategy
	quantW.QuantWeights = true
	quantW.WeightBits = bits
	if quantW.GroupSize <= 0 {
		quantW.GroupSize = 64
	}
	out.WeightLoadPlain = e.With(plainW).DecodeTasks().LoadWeight
	out.WeightLoadQuant = e.With(quantW).DecodeTasks().LoadWeight

	kvBits := res.Strategy.KVBits
	if kvBits == 0 {
		kvBits = 4
	}
	out.KVQuantBeneficial = e.KVQuantizationBeneficial(kvBits)
	plainKV := res.Strategy
	plainKV.QuantKV = false
	quantKV := res.Strategy
	if !quantKV.AttnOnCPU {
		quantKV.QuantKV = true
		quantKV.KVBits = kvBits
		if quantKV.GroupSize <= 0 {
			quantKV.GroupSize = 64
		}
	}
	pt := e.With(plainKV).DecodeTasks()
	qt := e.With(quantKV).DecodeTasks()
	out.KVMovePlain = pt.LoadCache + pt.StoreCache
	out.KVMoveQuant = qt.LoadCache + qt.StoreCache

	// Attention placement arms: best-effort mirror of the chosen strategy.
	cpuArm := res.Strategy
	cpuArm.AttnOnCPU = true
	cpuArm.CacheGPUPct = 0
	cpuArm.QuantKV = false
	gpuArm := res.Strategy
	gpuArm.AttnOnCPU = false
	out.CPUAttnThroughput = e.With(cpuArm).Throughput()
	out.GPUAttnThroughput = e.With(gpuArm).Throughput()

	out.Tasks = e.DecodeTasks()
	out.Bottleneck = bottleneck(out.Tasks)
	return out, nil
}

func bottleneck(t perfmodel.TaskTimes) string {
	names := []string{"load_weight", "load_cache", "load_activation", "store_cache", "store_activation", "compute"}
	vals := []float64{t.LoadWeight, t.LoadCache, t.LoadActivation, t.StoreCache, t.StoreActivation, t.Compute}
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return names[best]
}

// Format renders the walkthrough.
func (ex *Explanation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chosen strategy: %v\n\n", ex.Strategy)
	fmt.Fprintf(&b, "decision 1 — weight quantization: load_weight %.1f ms plain vs %.1f ms quantized -> beneficial=%v\n",
		ex.WeightLoadPlain*1e3, ex.WeightLoadQuant*1e3, ex.WeightQuantBeneficial)
	fmt.Fprintf(&b, "decision 2 — KV quantization: load+store cache %.1f ms plain vs %.1f ms quantized -> beneficial=%v\n",
		ex.KVMovePlain*1e3, ex.KVMoveQuant*1e3, ex.KVQuantBeneficial)
	fmt.Fprintf(&b, "decision 3 — attention placement: CPU arm %.1f tok/s vs GPU arm %.1f tok/s\n\n",
		ex.CPUAttnThroughput, ex.GPUAttnThroughput)
	t := ex.Tasks
	fmt.Fprintf(&b, "six-task times (ms/layer/token): load_weight %.1f, load_cache %.1f, load_act %.2f, store_cache %.1f, store_act %.2f, compute %.1f\n",
		t.LoadWeight*1e3, t.LoadCache*1e3, t.LoadActivation*1e3, t.StoreCache*1e3, t.StoreActivation*1e3, t.Compute*1e3)
	fmt.Fprintf(&b, "bottleneck task: %s\n", ex.Bottleneck)
	return b.String()
}
