package runtime

import (
	"context"
	"testing"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/threadpool"
)

// chunkedPrefill drives a full chunked admission on slot: BeginPrefill, then
// PrefillChunk in chunk-sized increments until the final chunk activates the
// slot and yields the first token. Along the way it asserts the chunk budget
// (no call advances more than chunk tokens) and that the slot stays inactive
// until the last chunk.
func chunkedPrefill(t *testing.T, sess *Session, slot int, prompt []int, chunk int, quantKV bool) int {
	t.Helper()
	ctx := context.Background()
	if err := sess.BeginPrefill(slot, prompt, quantKV); err != nil {
		t.Fatalf("begin prefill: %v", err)
	}
	prev, total := sess.PrefillProgress(slot)
	if total != len(prompt) {
		t.Fatalf("prefill total = %d, want %d", total, len(prompt))
	}
	for {
		done, _, tok, err := sess.PrefillChunk(ctx, slot, chunk)
		if err != nil {
			t.Fatalf("prefill chunk at %d/%d: %v", prev, total, err)
		}
		if done-prev > chunk {
			t.Fatalf("chunk advanced %d tokens, budget %d", done-prev, chunk)
		}
		if done < total && sess.IsActive(slot) {
			t.Fatalf("slot active at %d/%d, before the final chunk", done, total)
		}
		prev = done
		if done == total {
			if !sess.IsActive(slot) {
				t.Fatal("slot inactive after final chunk")
			}
			return tok
		}
	}
}

// TestChunkedPrefillMatchesSoloGenerate: chunked admission is token-exact
// versus a solo Generate run across chunk sizes {1, odd, 16, full-prompt} in
// every KV storage mode {staged-raw, host-resident, quantized}.
func TestChunkedPrefillMatchesSoloGenerate(t *testing.T) {
	const seed = 42
	prompt := make([]int, 21)
	for i := range prompt {
		prompt[i] = (i*5 + 2) % model.Tiny().Vocab
	}
	const genLen = 5
	want := soloReference(t, seed, prompt, genLen)

	modes := []struct {
		name    string
		pol     Policy
		quantKV bool
	}{
		{"staged-raw", Policy{IntraOp: 1}, false},
		{"host-attn", Policy{IntraOp: 1, AttnOnCPU: true}, false},
		{"quantized", Policy{IntraOp: 1}, true},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			for _, chunk := range []int{1, 5, 16, len(prompt)} {
				eng, err := NewEngine(tinyModel(t, seed), mode.pol, bigArena, nil)
				if err != nil {
					t.Fatal(err)
				}
				sess, err := eng.NewSession(1)
				if err != nil {
					t.Fatal(err)
				}
				if mode.quantKV {
					if err := sess.SetQuantizeNewSlots(true, quant.Config{Bits: 4, GroupSize: 32}); err != nil {
						t.Fatal(err)
					}
				}
				got := []int{chunkedPrefill(t, sess, 0, prompt, chunk, mode.quantKV)}
				ctx := context.Background()
				for len(got) < genLen {
					toks, err := sess.Step(ctx)
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, toks[0].Token)
				}
				if sess.ChunkHostBytes() != 0 {
					t.Errorf("chunk=%d: %d live chunk bytes leaked after completion", chunk, sess.ChunkHostBytes())
				}
				assertTokens(t, [][]int{got}, [][]int{want})
				if eng.gpu.Used() != 0 {
					t.Errorf("chunk=%d: arena leak %d bytes", chunk, eng.gpu.Used())
				}
			}
		})
	}
}

// TestChunkedPrefillInterleavedWithDecode: a live decode stream keeps stepping
// while a second slot prefills chunk-by-chunk between its decode steps; both
// sequences match their solo references exactly — the core serving invariant
// chunking must preserve.
func TestChunkedPrefillInterleavedWithDecode(t *testing.T) {
	const seed = 42
	decPrompt := []int{9, 8, 7, 6, 5}
	prePrompt := make([]int, 24)
	for i := range prePrompt {
		prePrompt[i] = (i*3 + 1) % model.Tiny().Vocab
	}
	const decLen, preLen = 12, 4
	wantDec := soloReference(t, seed, decPrompt, decLen)
	wantPre := soloReference(t, seed, prePrompt, preLen)

	pool := threadpool.MustNew(2)
	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 2, InterOp: 2, Prefetch: true}, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	gotDec := []int{}
	tok, err := sess.Admit(ctx, 0, decPrompt)
	if err != nil {
		t.Fatal(err)
	}
	gotDec = append(gotDec, tok)
	if err := sess.BeginPrefill(1, prePrompt, false); err != nil {
		t.Fatal(err)
	}
	// Alternate one decode step and one 4-token chunk until the prefill
	// completes, then drain the decode stream.
	var gotPre []int
	const chunk = 4
	for len(gotPre) == 0 {
		toks, err := sess.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range toks {
			if st.Slot == 0 {
				gotDec = append(gotDec, st.Token)
			}
		}
		done, total, ptok, err := sess.PrefillChunk(ctx, 1, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if done == total {
			gotPre = append(gotPre, ptok)
		}
	}
	for len(gotDec) < decLen || len(gotPre) < preLen {
		toks, err := sess.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range toks {
			switch st.Slot {
			case 0:
				if len(gotDec) < decLen {
					gotDec = append(gotDec, st.Token)
				}
			case 1:
				if len(gotPre) < preLen {
					gotPre = append(gotPre, st.Token)
				}
			}
		}
	}
	assertTokens(t, [][]int{gotDec, gotPre}, [][]int{wantDec, wantPre})
	if eng.gpu.Used() != 0 {
		t.Errorf("arena leak: %d bytes", eng.gpu.Used())
	}
}

// TestChunkedPrefillPrefixHit: a warm prefix store seeds the first chunk, the
// remaining chunks run suffix-only, and output is token-identical to the cold
// run. Per-chunk block commits mean the second request's BeginPrefill starts
// with done > 0.
func TestChunkedPrefillPrefixHit(t *testing.T) {
	const seed = 42
	shared := make([]int, 24)
	for i := range shared {
		shared[i] = (i*7 + 3) % model.Tiny().Vocab
	}
	promptA := append(append([]int(nil), shared...), 7, 8, 9, 10)
	promptB := append(append([]int(nil), shared...), 11, 12, 13)
	const genLen = 5
	wantA := soloReference(t, seed, promptA, genLen)
	wantB := soloReference(t, seed, promptB, genLen)

	for _, quantKV := range []bool{false, true} {
		name := "raw"
		if quantKV {
			name = "quantized"
		}
		t.Run(name, func(t *testing.T) {
			ps, err := NewPrefixStore(4<<20, 8, model.Tiny().Layers, model.Tiny().Hidden)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 1}, bigArena, nil)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := eng.NewSession(1)
			if err != nil {
				t.Fatal(err)
			}
			sess.UsePrefixStore(ps)
			if quantKV {
				if err := sess.SetQuantizeNewSlots(true, quant.Config{Bits: 4, GroupSize: 32}); err != nil {
					t.Fatal(err)
				}
			}
			ctx := context.Background()
			run := func(prompt []int, want []int) {
				got := []int{chunkedPrefill(t, sess, 0, prompt, 6, quantKV)}
				for len(got) < genLen {
					toks, err := sess.Step(ctx)
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, toks[0].Token)
				}
				sess.Retire(0)
				assertTokens(t, [][]int{got}, [][]int{want})
			}
			run(promptA, wantA)
			// B shares A's prefix: its chunked prefill must start from the
			// committed blocks rather than position zero.
			if err := sess.BeginPrefill(0, promptB, quantKV); err != nil {
				t.Fatal(err)
			}
			done, _ := sess.PrefillProgress(0)
			if done == 0 {
				t.Error("prefix hit did not seed the chunked prefill (done = 0)")
			}
			sess.CancelPrefill(0)
			run(promptB, wantB)
			st := ps.Stats()
			if st.Hits == 0 || st.ReusedTokens == 0 {
				t.Errorf("stats %+v: chunked prefill never hit the prefix store", st)
			}
			if n := ps.refsTotal(); n != 0 {
				t.Errorf("%d prefix refs leaked", n)
			}
		})
	}
}

// TestChunkedPrefillCancelAndResume: cancelling mid-prefill frees the slot and
// drops partial KV, and a subsequent chunked prefill of the same prompt
// resumes from the last committed chunk boundary (not position zero) while
// remaining token-exact.
func TestChunkedPrefillCancelAndResume(t *testing.T) {
	const seed = 42
	prompt := make([]int, 30)
	for i := range prompt {
		prompt[i] = (i*11 + 5) % model.Tiny().Vocab
	}
	const genLen = 4
	want := soloReference(t, seed, prompt, genLen)

	ps, err := NewPrefixStore(4<<20, 8, model.Tiny().Layers, model.Tiny().Hidden)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	sess.UsePrefixStore(ps)
	ctx := context.Background()

	// Run two 9-token chunks (18 tokens, 2 full 8-token blocks committed),
	// then cancel — the eviction path.
	if err := sess.BeginPrefill(0, prompt, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, _, err := sess.PrefillChunk(ctx, 0, 9); err != nil {
			t.Fatal(err)
		}
	}
	sess.CancelPrefill(0)
	if sess.PrefillPending(0) {
		t.Fatal("prefill still pending after cancel")
	}
	if sess.ChunkHostBytes() != 0 {
		t.Errorf("%d live chunk bytes leaked after cancel", sess.ChunkHostBytes())
	}
	for j := 0; j < model.Tiny().Layers; j++ {
		if n := sess.kv.SeqLen(j, 0); n != 0 {
			t.Fatalf("layer %d kept %d KV rows after cancel", j, n)
		}
	}

	// Resume: the committed blocks seed the restart at a chunk boundary.
	if err := sess.BeginPrefill(0, prompt, false); err != nil {
		t.Fatal(err)
	}
	done, _ := sess.PrefillProgress(0)
	if done < 16 {
		t.Errorf("resume started at %d tokens, want >= 16 (two committed blocks)", done)
	}
	got := []int{}
	for {
		d, total, tok, err := sess.PrefillChunk(ctx, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if d == total {
			got = append(got, tok)
			break
		}
	}
	for len(got) < genLen {
		toks, err := sess.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, toks[0].Token)
	}
	assertTokens(t, [][]int{got}, [][]int{want})
	sess.Retire(0)
	if n := ps.refsTotal(); n != 0 {
		t.Errorf("%d prefix refs leaked after retire", n)
	}
}

// TestChunkedPrefillSpillAfterAdmit: a chunk-prefilled slot subsequently
// spilled to host keeps decoding the exact solo token stream — chunking
// composes with the pressure ladder's spill rung.
func TestChunkedPrefillSpillAfterAdmit(t *testing.T) {
	const seed = 42
	prompt := make([]int, 18)
	for i := range prompt {
		prompt[i] = (i*13 + 2) % model.Tiny().Vocab
	}
	const genLen = 6
	want := soloReference(t, seed, prompt, genLen)

	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	got := []int{chunkedPrefill(t, sess, 0, prompt, 7, false)}
	toks, err := sess.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, toks[0].Token)
	if err := sess.SpillSlot(ctx, 0); err != nil {
		t.Fatal(err)
	}
	for len(got) < genLen {
		toks, err := sess.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, toks[0].Token)
	}
	assertTokens(t, [][]int{got}, [][]int{want})
}

// TestChunkedPrefillChaosStaysExact: transfer faults, KV corruption, memory
// pressure, and worker panics landing mid-chunk retry/roll back (possibly
// climbing the degradation ladder, including the staged→host migration with a
// live chunk in flight) without changing a single token.
func TestChunkedPrefillChaosStaysExact(t *testing.T) {
	const seed = 42
	prompt := make([]int, 26)
	for i := range prompt {
		prompt[i] = (i*9 + 4) % model.Tiny().Vocab
	}
	const genLen = 6
	want := soloReference(t, seed, prompt, genLen)

	for _, injSeed := range []int64{7, 13, 29} {
		pool := threadpool.MustNew(4)
		inj := faults.MustNew(injSeed, map[faults.Site]faults.Rule{
			faults.WeightTransfer: {Prob: 0.1},
			faults.KVTransfer:     {Prob: 0.08},
			faults.KVCorruption:   {Prob: 0.08},
			faults.MemPressure:    {Prob: 0.04, Max: 4},
			faults.WorkerPanic:    {Prob: 0.08, Max: 3},
		})
		eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 2, Prefetch: true}, bigArena, pool)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetFaultInjector(inj)
		eng.SetRetryConfig(RetryConfig{MaxAttempts: 4})
		sess, err := eng.NewSession(1)
		if err != nil {
			t.Fatal(err)
		}
		got := []int{chunkedPrefill(t, sess, 0, prompt, 5, false)}
		ctx := context.Background()
		for len(got) < genLen {
			toks, err := sess.Step(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, toks[0].Token)
		}
		assertTokens(t, [][]int{got}, [][]int{want})
		if len(inj.Counts()) == 0 {
			t.Errorf("seed %d: no faults fired; chaos run is vacuous", injSeed)
		}
		if eng.gpu.Used() != 0 {
			t.Errorf("seed %d: arena leak %d bytes", injSeed, eng.gpu.Used())
		}
	}
}

// TestChunkedPrefillValidation covers the error paths of the chunked API.
func TestChunkedPrefillValidation(t *testing.T) {
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sess.BeginPrefill(-1, []int{1}, false); err == nil {
		t.Error("negative slot accepted")
	}
	if err := sess.BeginPrefill(0, nil, false); err == nil {
		t.Error("empty prompt accepted")
	}
	if err := sess.BeginPrefill(0, []int{1}, true); err == nil {
		t.Error("quantized prefill without ladder config accepted")
	}
	if _, _, _, err := sess.PrefillChunk(ctx, 0, 4); err == nil {
		t.Error("chunk with no prefill in flight accepted")
	}
	if err := sess.BeginPrefill(0, []int{1, 2, 3}, false); err != nil {
		t.Fatal(err)
	}
	if err := sess.BeginPrefill(0, []int{4}, false); err == nil {
		t.Error("double prefill into one slot accepted")
	}
	if _, _, _, err := sess.PrefillChunk(ctx, 0, 0); err == nil {
		t.Error("zero chunk size accepted")
	}
	// A monolithic admit must refuse a slot with a prefill in flight.
	if _, err := sess.Admit(ctx, 0, []int{9}); err == nil {
		t.Error("admit into a chunk-prefilling slot accepted")
	}
	sess.CancelPrefill(0)
	if _, err := sess.Admit(ctx, 0, []int{9}); err != nil {
		t.Errorf("admit after cancel failed: %v", err)
	}
}
