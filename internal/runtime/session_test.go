package runtime

import (
	"context"
	"testing"

	"repro/internal/faults"
	"repro/internal/threadpool"
)

// soloReference generates genLen tokens for one prompt on a fresh engine —
// the sequential baseline every session sequence must match token-for-token.
func soloReference(t *testing.T, seed int64, prompt []int, genLen int) []int {
	t.Helper()
	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Generate(context.Background(), [][]int{prompt}, genLen)
	if err != nil {
		t.Fatal(err)
	}
	return out[0]
}

// driveSession admits prompts[i] at decode-step arrivals[i] (measured in
// session steps since start), runs each for genLens[i] tokens, and returns
// the per-request outputs. It exercises the continuous-batching lifecycle:
// staggered joins, per-slot positions, retire-on-completion, slot reuse.
func driveSession(t *testing.T, s *Session, prompts [][]int, arrivals, genLens []int) [][]int {
	t.Helper()
	ctx := context.Background()
	out := make([][]int, len(prompts))
	slotOf := make(map[int]int) // slot -> request index
	next := 0                   // next request to admit
	for step := 0; ; step++ {
		// Admit every request whose arrival step has come, as slots allow.
		for next < len(prompts) && arrivals[next] <= step {
			slot := -1
			for c := 0; c < s.Slots(); c++ {
				if !s.IsActive(c) {
					slot = c
					break
				}
			}
			if slot < 0 {
				break // batch full; retry next step boundary
			}
			tok, err := s.Admit(ctx, slot, prompts[next])
			if err != nil {
				t.Fatalf("admit request %d: %v", next, err)
			}
			out[next] = append(out[next], tok)
			if genLens[next] == 1 {
				s.Retire(slot)
			} else {
				slotOf[slot] = next
			}
			next++
		}
		if s.NumActive() == 0 {
			if next >= len(prompts) {
				return out
			}
			continue // idle until the next arrival
		}
		toks, err := s.Step(ctx)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for _, st := range toks {
			r := slotOf[st.Slot]
			out[r] = append(out[r], st.Token)
			if len(out[r]) >= genLens[r] {
				s.Retire(st.Slot)
				delete(slotOf, st.Slot)
			}
		}
	}
}

// TestSessionMatchesSoloGenerate: ragged prompts admitted at staggered steps
// through a 2-slot session (forcing queuing and slot reuse) produce exactly
// the tokens each request would get from a dedicated offline run.
func TestSessionMatchesSoloGenerate(t *testing.T) {
	const seed = 42
	prompts := [][]int{
		{1, 2, 3, 4},
		{9, 8, 7, 6, 5},
		{20, 21, 22},
		{40, 41, 42, 43, 44, 45},
		{3, 1, 4, 1, 5},
	}
	arrivals := []int{0, 0, 1, 3, 4}
	genLens := []int{6, 4, 8, 3, 5}

	pool := threadpool.MustNew(2)
	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 2, Prefetch: true}, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	got := driveSession(t, sess, prompts, arrivals, genLens)
	for i := range prompts {
		want := soloReference(t, seed, prompts[i], genLens[i])
		assertTokens(t, [][]int{got[i]}, [][]int{want})
	}
	if eng.gpu.Used() != 0 {
		t.Errorf("arena leak after session run: %d bytes", eng.gpu.Used())
	}
}

// TestSessionHostAttention: the same lifecycle under the AttnOnCPU policy
// (host-resident cache) stays exact.
func TestSessionHostAttention(t *testing.T) {
	const seed = 42
	prompts := [][]int{{1, 2, 3, 4}, {9, 8, 7, 6, 5}, {20, 21, 22}}
	arrivals := []int{0, 1, 2}
	genLens := []int{5, 4, 6}
	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 1, AttnOnCPU: true}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	got := driveSession(t, sess, prompts, arrivals, genLens)
	for i := range prompts {
		want := soloReference(t, seed, prompts[i], genLens[i])
		assertTokens(t, [][]int{got[i]}, [][]int{want})
	}
}

// TestSessionChaosStaysExact: continuous batching under injected transfer
// faults, KV corruption, memory pressure, and worker panics still matches the
// solo reference for every request — the serving counterpart of
// TestChaosGenerationStaysExact.
func TestSessionChaosStaysExact(t *testing.T) {
	const seed = 42
	prompts := [][]int{{1, 2, 3, 4}, {9, 8, 7, 6, 5}, {20, 21, 22}, {11, 12, 13, 14}}
	arrivals := []int{0, 0, 2, 3}
	genLens := []int{6, 5, 4, 6}

	pool := threadpool.MustNew(4)
	inj := faults.MustNew(7, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 0.1},
		faults.KVTransfer:     {Prob: 0.08},
		faults.KVCorruption:   {Prob: 0.08},
		faults.MemPressure:    {Prob: 0.04, Max: 4},
		faults.WorkerPanic:    {Prob: 0.05, Max: 2},
	})
	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 2, Prefetch: true}, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(RetryConfig{MaxAttempts: 4})
	sess, err := eng.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	got := driveSession(t, sess, prompts, arrivals, genLens)
	for i := range prompts {
		want := soloReference(t, seed, prompts[i], genLens[i])
		assertTokens(t, [][]int{got[i]}, [][]int{want})
	}
	if len(inj.Counts()) == 0 {
		t.Error("no faults fired; chaos test is vacuous")
	}
	if eng.gpu.Used() != 0 {
		t.Errorf("arena leak after faulted session: %d bytes", eng.gpu.Used())
	}
}

// TestSessionDegradationStaysExact: a worker-panic burst climbs the session
// ladder (prefetch-off, then migration to host attention) mid-stream without
// changing any request's tokens.
func TestSessionDegradationStaysExact(t *testing.T) {
	const seed = 42
	prompts := [][]int{{1, 2, 3, 4}, {9, 8, 7, 6, 5}}
	arrivals := []int{0, 1}
	genLens := []int{8, 6}

	pool := threadpool.MustNew(2)
	inj := faults.MustNew(13, map[faults.Site]faults.Rule{
		faults.WorkerPanic: {Prob: 1, Max: 4},
	})
	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 2, Prefetch: true}, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(RetryConfig{MaxAttempts: 2})
	sess, err := eng.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	got := driveSession(t, sess, prompts, arrivals, genLens)
	for i := range prompts {
		want := soloReference(t, seed, prompts[i], genLens[i])
		assertTokens(t, [][]int{got[i]}, [][]int{want})
	}
	if len(eng.Stats().Degradations) == 0 {
		t.Error("panic burst did not climb the session degradation ladder")
	}
	if eng.gpu.Used() != 0 {
		t.Errorf("arena leak after degraded session: %d bytes", eng.gpu.Used())
	}
}

// TestSessionSlotRecycling: a retired slot's KV is fully dropped, so a new
// sequence admitted into it is unaffected by the previous occupant.
func TestSessionSlotRecycling(t *testing.T) {
	const seed = 42
	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first := []int{5, 6, 7, 8}
	if _, err := sess.Admit(ctx, 0, first); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(ctx); err != nil {
		t.Fatal(err)
	}
	sess.Retire(0)
	if sess.HostKVBytes() != 0 {
		t.Errorf("retired slot kept %d KV bytes", sess.HostKVBytes())
	}
	second := []int{1, 2, 3}
	tok, err := sess.Admit(ctx, 0, second)
	if err != nil {
		t.Fatal(err)
	}
	want := soloReference(t, seed, second, 3)
	got := []int{tok}
	for len(got) < 3 {
		toks, err := sess.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, toks[0].Token)
	}
	assertTokens(t, [][]int{got}, [][]int{want})
}

// TestSessionValidation covers the admission error paths and the empty-step
// no-op.
func TestSessionValidation(t *testing.T) {
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.NewSession(0); err == nil {
		t.Error("zero-slot session accepted")
	}
	sess, err := eng.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Admit(ctx, -1, []int{1}); err == nil {
		t.Error("negative slot accepted")
	}
	if _, err := sess.Admit(ctx, 1, []int{1}); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := sess.Admit(ctx, 0, nil); err == nil {
		t.Error("empty prompt accepted")
	}
	if toks, err := sess.Step(ctx); err != nil || toks != nil {
		t.Errorf("idle step = %v, %v; want nil, nil", toks, err)
	}
	if _, err := sess.Admit(ctx, 0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Admit(ctx, 0, []int{3}); err == nil {
		t.Error("double admission into an occupied slot accepted")
	}
	// Cancelled context surfaces at the boundary and leaves the slot usable.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := sess.Step(cctx); err == nil {
		t.Error("cancelled step did not fail")
	}
	if _, err := sess.Step(ctx); err != nil {
		t.Errorf("step after cancelled attempt failed: %v", err)
	}
}
