package runtime

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/tensor"
)

// Checkpoint is a resumable snapshot of an in-flight generation: the token
// state plus the full KV cache in float32 form. Resuming under the same
// unquantized (or HostF16) policy reproduces the remaining tokens exactly;
// resuming under KV quantization re-quantizes the snapshot, so the restored
// cache is approximate in the same way a freshly offloaded cache is.
type Checkpoint struct {
	Pos    int // next token position
	Step   int // next decode step index
	GenLen int
	Layers int
	Hidden int

	Prompts [][]int
	Tokens  [][]int // generated so far, per sequence

	// Keys[layer][seq] and Values[layer][seq] are [tokens, hidden] tensors;
	// nil when the slot is empty.
	Keys   [][]*tensor.Tensor
	Values [][]*tensor.Tensor
}

// Validate reports structurally broken checkpoints.
func (ck *Checkpoint) Validate() error {
	if ck == nil {
		return fmt.Errorf("runtime: nil checkpoint")
	}
	if ck.Layers <= 0 || ck.Hidden <= 0 {
		return fmt.Errorf("runtime: checkpoint geometry %d layers x %d hidden must be positive", ck.Layers, ck.Hidden)
	}
	if len(ck.Prompts) == 0 || len(ck.Prompts) != len(ck.Tokens) {
		return fmt.Errorf("runtime: checkpoint has %d prompts and %d token rows", len(ck.Prompts), len(ck.Tokens))
	}
	if ck.Step < 1 || ck.GenLen < ck.Step {
		return fmt.Errorf("runtime: checkpoint step %d outside [1, genLen=%d]", ck.Step, ck.GenLen)
	}
	if len(ck.Keys) != ck.Layers || len(ck.Values) != ck.Layers {
		return fmt.Errorf("runtime: checkpoint KV has %d/%d layers, want %d", len(ck.Keys), len(ck.Values), ck.Layers)
	}
	for i, toks := range ck.Tokens {
		if len(toks) == 0 {
			return fmt.Errorf("runtime: checkpoint has no tokens for sequence %d", i)
		}
	}
	return nil
}

func cloneTokens(src [][]int) [][]int {
	out := make([][]int, len(src))
	for i, s := range src {
		out[i] = append([]int(nil), s...)
	}
	return out
}

// snapshot captures the run's current state as the engine's last checkpoint.
// KV fetches go through the usual retry machinery (a checkpoint read can hit
// the same transient faults as a load_cache); a final failure leaves the
// previous checkpoint in place rather than aborting generation.
func (e *Engine) snapshot(ctx context.Context, run *genRun) error {
	t0 := time.Now()
	defer func() { e.stats.addTask("checkpoint", time.Since(t0)) }()
	cfg := e.mod.Cfg
	batch := len(run.prompts)
	ck := &Checkpoint{
		Pos:     run.pos,
		Step:    run.step,
		GenLen:  run.genLen,
		Layers:  cfg.Layers,
		Hidden:  cfg.Hidden,
		Prompts: cloneTokens(run.prompts),
		Tokens:  cloneTokens(run.out),
		Keys:    make([][]*tensor.Tensor, cfg.Layers),
		Values:  make([][]*tensor.Tensor, cfg.Layers),
	}
	for l := 0; l < cfg.Layers; l++ {
		ck.Keys[l] = make([]*tensor.Tensor, batch)
		ck.Values[l] = make([]*tensor.Tensor, batch)
		for s := 0; s < batch; s++ {
			var k, v *tensor.Tensor
			if run.hostCache != nil {
				if kk := run.hostCache.Keys(l, s); kk != nil {
					k, v = kk.Clone(), run.hostCache.Values(l, s).Clone()
				}
			} else {
				err := e.withRetry(ctx, "checkpoint_fetch", func() error {
					var ferr error
					k, v, _, ferr = run.kvStore.Fetch(l, s)
					return ferr
				})
				if err != nil {
					return err
				}
			}
			ck.Keys[l][s], ck.Values[l][s] = k, v
		}
	}
	e.ckptMu.Lock()
	e.lastCkpt = ck
	e.ckptMu.Unlock()
	e.stats.addCheckpoint()
	return nil
}

// Resume continues generation from a checkpoint: the KV state is rebuilt
// under the engine's current policy (re-quantized if the policy says so) and
// the decode loop picks up at the checkpointed step. The returned tokens
// include everything generated before the checkpoint.
func (e *Engine) Resume(ctx context.Context, ck *Checkpoint, onStep func(step int, tokens []int) bool) ([][]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	cfg := e.mod.Cfg
	if ck.Layers != cfg.Layers || ck.Hidden != cfg.Hidden {
		return nil, fmt.Errorf("runtime: checkpoint geometry %dx%d does not match model %dx%d",
			ck.Layers, ck.Hidden, cfg.Layers, cfg.Hidden)
	}
	batch := len(ck.Prompts)
	run := &genRun{
		prompts: cloneTokens(ck.Prompts),
		out:     cloneTokens(ck.Tokens),
		pos:     ck.Pos,
		step:    ck.Step,
		genLen:  ck.GenLen,
		onStep:  onStep,
		start:   time.Now(),
	}
	run.current = make([]int, batch)
	for i, toks := range run.out {
		run.current[i] = toks[len(toks)-1]
	}
	if err := e.resetStores(run); err != nil {
		return nil, err
	}
	for l := 0; l < cfg.Layers; l++ {
		for s := 0; s < batch; s++ {
			k, v := ck.Keys[l][s], ck.Values[l][s]
			if k == nil {
				continue
			}
			if run.hostCache != nil {
				run.hostCache.SetKV(l, s, k.Clone(), v.Clone())
			} else if _, err := run.kvStore.Append(l, s, k, v); err != nil {
				return nil, err
			}
		}
	}
	return e.decodeLoop(ctx, run)
}

// Checkpoint serialization: a little-endian binary format under the "LMGC"
// magic. Layout:
//
//	magic [4]byte, version uint32
//	pos, step, genLen, layers, hidden, batch uint32
//	per sequence: prompt len uint32 + tokens, generated len uint32 + tokens
//	per (layer, seq): present uint8; if present, rows uint32 then
//	  rows*hidden float32 keys and rows*hidden float32 values
const (
	ckptMagic   = "LMGC"
	ckptVersion = 1
)

// Save serializes the checkpoint in the "LMGC" binary format.
func (ck *Checkpoint) Save(w io.Writer) error {
	if err := ck.Validate(); err != nil {
		return err
	}
	if _, err := w.Write([]byte(ckptMagic)); err != nil {
		return err
	}
	hdr := []uint32{ckptVersion, uint32(ck.Pos), uint32(ck.Step), uint32(ck.GenLen),
		uint32(ck.Layers), uint32(ck.Hidden), uint32(len(ck.Prompts))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for i := range ck.Prompts {
		if err := writeInts(w, ck.Prompts[i]); err != nil {
			return err
		}
		if err := writeInts(w, ck.Tokens[i]); err != nil {
			return err
		}
	}
	for l := 0; l < ck.Layers; l++ {
		for s := 0; s < len(ck.Prompts); s++ {
			k, v := ck.Keys[l][s], ck.Values[l][s]
			if k == nil {
				if err := binary.Write(w, binary.LittleEndian, uint8(0)); err != nil {
					return err
				}
				continue
			}
			if err := binary.Write(w, binary.LittleEndian, uint8(1)); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(k.Dim(0))); err != nil {
				return err
			}
			if err := writeFloats(w, k.Data()); err != nil {
				return err
			}
			if err := writeFloats(w, v.Data()); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint written by Save.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("runtime: reading checkpoint magic: %w", err)
	}
	if string(magic[:]) != ckptMagic {
		return nil, fmt.Errorf("runtime: bad checkpoint magic %q", magic[:])
	}
	var hdr [7]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("runtime: reading checkpoint header: %w", err)
		}
	}
	if hdr[0] != ckptVersion {
		return nil, fmt.Errorf("runtime: unsupported checkpoint version %d", hdr[0])
	}
	ck := &Checkpoint{
		Pos:    int(hdr[1]),
		Step:   int(hdr[2]),
		GenLen: int(hdr[3]),
		Layers: int(hdr[4]),
		Hidden: int(hdr[5]),
	}
	batch := int(hdr[6])
	if ck.Layers <= 0 || ck.Layers > 1<<20 || batch <= 0 || batch > 1<<20 || ck.Hidden <= 0 || ck.Hidden > 1<<24 {
		return nil, fmt.Errorf("runtime: implausible checkpoint geometry %d/%d/%d", ck.Layers, batch, ck.Hidden)
	}
	ck.Prompts = make([][]int, batch)
	ck.Tokens = make([][]int, batch)
	for i := 0; i < batch; i++ {
		var err error
		if ck.Prompts[i], err = readInts(r); err != nil {
			return nil, err
		}
		if ck.Tokens[i], err = readInts(r); err != nil {
			return nil, err
		}
	}
	ck.Keys = make([][]*tensor.Tensor, ck.Layers)
	ck.Values = make([][]*tensor.Tensor, ck.Layers)
	for l := 0; l < ck.Layers; l++ {
		ck.Keys[l] = make([]*tensor.Tensor, batch)
		ck.Values[l] = make([]*tensor.Tensor, batch)
		for s := 0; s < batch; s++ {
			var present uint8
			if err := binary.Read(r, binary.LittleEndian, &present); err != nil {
				return nil, fmt.Errorf("runtime: reading KV slot (%d, %d): %w", l, s, err)
			}
			if present == 0 {
				continue
			}
			var rows uint32
			if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
				return nil, err
			}
			if rows == 0 || rows > 1<<24 {
				return nil, fmt.Errorf("runtime: implausible KV row count %d", rows)
			}
			k, err := readFloats(r, int(rows), ck.Hidden)
			if err != nil {
				return nil, err
			}
			v, err := readFloats(r, int(rows), ck.Hidden)
			if err != nil {
				return nil, err
			}
			ck.Keys[l][s], ck.Values[l][s] = k, v
		}
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

func writeInts(w io.Writer, xs []int) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(xs))); err != nil {
		return err
	}
	for _, x := range xs {
		if err := binary.Write(w, binary.LittleEndian, int32(x)); err != nil {
			return err
		}
	}
	return nil
}

func readInts(r io.Reader) ([]int, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("runtime: implausible token count %d", n)
	}
	out := make([]int, n)
	for i := range out {
		var x int32
		if err := binary.Read(r, binary.LittleEndian, &x); err != nil {
			return nil, err
		}
		out[i] = int(x)
	}
	return out, nil
}

func writeFloats(w io.Writer, xs []float32) error {
	buf := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, rows, cols int) (*tensor.Tensor, error) {
	buf := make([]byte, 4*rows*cols)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("runtime: reading KV payload: %w", err)
	}
	data := make([]float32, rows*cols)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return tensor.FromSlice(data, rows, cols), nil
}
