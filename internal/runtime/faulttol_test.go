package runtime

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	goruntime "runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

func refTokens(t *testing.T, seed int64, genLen int) [][]int {
	t.Helper()
	want, err := tinyModel(t, seed).Generate(nil, 1, testPrompts(), genLen)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func assertTokens(t *testing.T, got, want [][]int) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokens diverged:\n got %v\nwant %v", got, want)
	}
}

func TestPolicyValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		pol     Policy
		wantErr string // empty = valid
	}{
		{"minimal valid", Policy{IntraOp: 1}, ""},
		{"full valid", Policy{IntraOp: 4, GPUBatch: 2, InterOp: 2, Prefetch: true,
			ResidentLayers: 1, StepTimeout: time.Second}, ""},
		{"quantized valid", Policy{IntraOp: 1, QuantKV: true, KVCfg: quant.Config{Bits: 4, GroupSize: 32},
			QuantWeights: true, WeightCfg: quant.Config{Bits: 8, GroupSize: 32}, CompressResident: true}, ""},
		{"zero intra-op", Policy{}, "intra-op"},
		{"negative gpu batch", Policy{IntraOp: 1, GPUBatch: -1}, "GPU batch"},
		{"negative inter-op", Policy{IntraOp: 1, InterOp: -2}, "inter-op"},
		{"negative resident layers", Policy{IntraOp: 1, ResidentLayers: -1}, "resident layers"},
		{"compress without quant", Policy{IntraOp: 1, CompressResident: true}, "CompressResident"},
		{"negative step timeout", Policy{IntraOp: 1, StepTimeout: -time.Second}, "step timeout"},
		{"cpu attention with kv quant", Policy{IntraOp: 1, AttnOnCPU: true, QuantKV: true,
			KVCfg: quant.Config{Bits: 4, GroupSize: 32}}, "pointless"},
		{"bad kv config", Policy{IntraOp: 1, QuantKV: true, KVCfg: quant.Config{Bits: 99, GroupSize: 32}}, "bits"},
		{"bad weight config", Policy{IntraOp: 1, QuantWeights: true, WeightCfg: quant.Config{Bits: 8}}, "group size"},
	}
	for _, tc := range cases {
		err := tc.pol.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: invalid policy accepted", tc.name)
		} else if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.wantErr)) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestChaosGenerationStaysExact is the acceptance chaos test: generation under
// simultaneous injection of transfer failures, KV corruption, memory pressure,
// and worker panics must still produce exactly the reference tokens — every
// fault class is either retried or degraded around, never silently absorbed
// into wrong output.
func TestChaosGenerationStaysExact(t *testing.T) {
	const genLen = 10
	want := refTokens(t, 42, genLen)
	pool := threadpool.MustNew(4)
	inj := faults.MustNew(7, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 0.15},
		faults.KVTransfer:     {Prob: 0.1},
		faults.KVCorruption:   {Prob: 0.1},
		faults.MemPressure:    {Prob: 0.05, Max: 4},
		faults.WorkerPanic:    {Prob: 0.1, Max: 3},
	})
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 2, GPUBatch: 2, Prefetch: true}, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(RetryConfig{MaxAttempts: 4}) // no backoff sleeps in tests

	out, err := eng.Generate(context.Background(), testPrompts(), genLen)
	if err != nil {
		t.Fatalf("generation did not survive the chaos: %v\ninjector: %s", err, inj)
	}
	assertTokens(t, out, want)

	counts := inj.Counts()
	if len(counts) < 3 {
		t.Errorf("chaos run exercised only %d fault kinds (%v); want >= 3 — raise probabilities or genLen", len(counts), counts)
	}
	st := eng.Stats()
	if st.TotalRetries() == 0 && len(st.Degradations) == 0 {
		t.Errorf("faults fired (%v) but neither retries nor degradations were recorded", counts)
	}
	if eng.gpu.Used() != 0 {
		t.Errorf("arena leak after faulted run: %d bytes still allocated", eng.gpu.Used())
	}
}

// TestChaosQuantizedRunCompletes: the same chaos under KV quantization cannot
// assert exact tokens (quantization is lossy) but must complete, detect every
// injected corruption via chunk checksums, and leak nothing.
func TestChaosQuantizedRunCompletes(t *testing.T) {
	pool := threadpool.MustNew(2)
	inj := faults.MustNew(11, map[faults.Site]faults.Rule{
		faults.KVTransfer:   {Prob: 0.15},
		faults.KVCorruption: {Prob: 0.2},
	})
	eng, err := NewEngine(tinyModel(t, 5), Policy{
		IntraOp: 2, QuantKV: true, KVCfg: quant.Config{Bits: 4, GroupSize: 32}, Prefetch: true,
	}, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(RetryConfig{MaxAttempts: 4})
	out, err := eng.Generate(context.Background(), testPrompts(), 8)
	if err != nil {
		t.Fatalf("quantized chaos run failed: %v\ninjector: %s", err, inj)
	}
	for i, seq := range out {
		if len(seq) != 8 {
			t.Errorf("seq %d generated %d tokens, want 8", i, len(seq))
		}
	}
	if fired := inj.Fired(faults.KVCorruption); fired > 0 && eng.Stats().FaultsCleared == 0 {
		t.Errorf("%d corruptions injected but none cleared by retry", fired)
	}
	if eng.gpu.Used() != 0 {
		t.Errorf("arena leak: %d bytes", eng.gpu.Used())
	}
}

func TestCancellationStopsAtStepBoundary(t *testing.T) {
	pool := threadpool.MustNew(2)
	before := goruntime.NumGoroutine()
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 2, Prefetch: true}, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, err := eng.GenerateStream(ctx, testPrompts(), 16, func(step int, tokens []int) bool {
		if step == 1 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Steps 0 and 1 completed before the cancellation was observed.
	for i, seq := range out {
		if len(seq) != 2 {
			t.Errorf("seq %d has %d tokens after cancel at step 1, want 2", i, len(seq))
		}
	}
	if eng.gpu.Used() != 0 {
		t.Errorf("arena leak after cancel: %d bytes", eng.gpu.Used())
	}
	// The prefetch pipelines must drain: no goroutine may outlive the call.
	deadline := time.Now().Add(3 * time.Second)
	for goruntime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := goruntime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf[:goruntime.Stack(buf, true)])
	}
}

func TestCancellationBeforeStart(t *testing.T) {
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Generate(ctx, testPrompts(), 4); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestStepTimeoutRetriesStalledStep: an injected stall longer than the step
// deadline forces a timeout; once the stall budget is exhausted the retried
// step succeeds and the output is still exact.
func TestStepTimeoutRetriesStalledStep(t *testing.T) {
	const genLen = 4
	want := refTokens(t, 42, genLen)
	inj := faults.MustNew(3, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 1, Max: 2, Stall: 300 * time.Millisecond},
	})
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1, StepTimeout: 30 * time.Millisecond}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(RetryConfig{MaxAttempts: 2})
	out, err := eng.Generate(context.Background(), testPrompts(), genLen)
	if err != nil {
		t.Fatalf("stalled run failed: %v", err)
	}
	assertTokens(t, out, want)
	if inj.Fired(faults.WeightTransfer) != 2 {
		t.Errorf("stall fired %d times, want 2", inj.Fired(faults.WeightTransfer))
	}
	if eng.Stats().TotalRetries() == 0 {
		t.Error("timeout recovery recorded no retries")
	}
}

func TestWithRetryBudgetAndPermanentErrors(t *testing.T) {
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetRetryConfig(RetryConfig{MaxAttempts: 3})

	// Transient errors consume the whole budget, and the wrapped result still
	// reports transient for upstream step retry.
	calls := 0
	rerr := eng.withRetry(context.Background(), "op", func() error {
		calls++
		return &faults.Error{Site: faults.KVTransfer, Msg: "boom"}
	})
	if calls != 3 {
		t.Errorf("transient op attempted %d times, want 3", calls)
	}
	if rerr == nil || !faults.IsTransient(rerr) {
		t.Errorf("final error %v lost its transience", rerr)
	}

	// Permanent errors are not retried.
	calls = 0
	perm := errors.New("permanent")
	rerr = eng.withRetry(context.Background(), "op", func() error { calls++; return perm })
	if calls != 1 {
		t.Errorf("permanent op attempted %d times, want 1", calls)
	}
	if !errors.Is(rerr, perm) {
		t.Errorf("error chain lost the cause: %v", rerr)
	}

	// Success after failures clears the fault.
	calls = 0
	cleared := eng.Stats().FaultsCleared
	rerr = eng.withRetry(context.Background(), "op", func() error {
		calls++
		if calls < 3 {
			return &faults.Error{Site: faults.KVTransfer, Msg: "flaky"}
		}
		return nil
	})
	if rerr != nil || calls != 3 {
		t.Errorf("flaky op: err=%v calls=%d", rerr, calls)
	}
	if eng.Stats().FaultsCleared != cleared+1 {
		t.Error("cleared fault not counted")
	}

	// Cancellation preempts the backoff sleep.
	eng.SetRetryConfig(RetryConfig{MaxAttempts: 10, BaseBackoff: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- eng.withRetry(ctx, "op", func() error {
			return &faults.Error{Site: faults.KVTransfer, Msg: "always"}
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case rerr = <-done:
		if !errors.Is(rerr, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", rerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("withRetry slept through cancellation")
	}
}

func TestDegradationLadder(t *testing.T) {
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1, Prefetch: true}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := &genRun{prompts: testPrompts(), genLen: 4}
	if err := eng.resetStores(run); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	eng.degradeOnce(ctx, run)
	if eng.policy.Prefetch {
		t.Fatal("rung 1 did not disable prefetch")
	}
	eng.degradeOnce(ctx, run)
	if eng.policy.GPUBatch != 1 {
		t.Fatalf("rung 2: GPUBatch = %d, want 1", eng.policy.GPUBatch)
	}
	eng.degradeOnce(ctx, run)
	if !eng.policy.AttnOnCPU || run.kvStore != nil || run.hostCache == nil {
		t.Fatalf("rung 3 did not migrate to host attention: %+v", eng.policy)
	}
	// The ladder is exhausted; another rung must be a no-op.
	before := len(eng.Stats().Degradations)
	eng.degradeOnce(ctx, run)
	got := eng.Stats().Degradations
	if len(got) != before {
		t.Errorf("exhausted ladder still degraded: %v", got)
	}
	want := []string{"prefetch-off", "gpu-batch=1", "attn-on-cpu"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("degradations = %v, want %v", got, want)
	}
}

// TestDegradationKeepsTokensExact: force the full ladder during a real run (a
// burst of non-transient step failures) and check the output is still exact —
// every rung is a lossless transformation for an unquantized policy.
func TestDegradationKeepsTokensExact(t *testing.T) {
	const genLen = 8
	want := refTokens(t, 42, genLen)
	pool := threadpool.MustNew(2)
	inj := faults.MustNew(13, map[faults.Site]faults.Rule{
		// Panics are not retried inside withRetry, so each fire burns a whole
		// step attempt and climbs the ladder fast.
		faults.WorkerPanic: {Prob: 1, Max: 3},
	})
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 2, Prefetch: true, GPUBatch: 2}, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(RetryConfig{MaxAttempts: 2})
	out, err := eng.Generate(context.Background(), testPrompts(), genLen)
	if err != nil {
		t.Fatalf("run failed: %v (injector %s)", err, inj)
	}
	assertTokens(t, out, want)
	if len(eng.Stats().Degradations) == 0 {
		t.Error("panic burst did not climb the degradation ladder")
	}
	if inj.Fired(faults.WorkerPanic) != 3 {
		t.Errorf("worker panic fired %d times, want 3", inj.Fired(faults.WorkerPanic))
	}
}

func TestStoreMarkRollback(t *testing.T) {
	st, err := NewKVStore(2, 2, false, quant.Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(0, 0, tensor.Full(1, 3, 4), tensor.Full(2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	m := st.Mark()
	if _, err := st.Append(0, 0, tensor.Full(3, 1, 4), tensor.Full(4, 1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(1, 1, tensor.Full(5, 2, 4), tensor.Full(6, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if st.SeqLen(0, 0) != 4 || st.SeqLen(1, 1) != 2 {
		t.Fatalf("pre-rollback lens %d/%d", st.SeqLen(0, 0), st.SeqLen(1, 1))
	}
	st.Rollback(m)
	if st.SeqLen(0, 0) != 3 || st.SeqLen(1, 1) != 0 {
		t.Errorf("post-rollback lens %d/%d, want 3/0", st.SeqLen(0, 0), st.SeqLen(1, 1))
	}
	k, _, _, err := st.Fetch(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Dim(0) != 3 || k.At(0, 0) != 1 {
		t.Errorf("rolled-back fetch wrong: %d rows, first %g", k.Dim(0), k.At(0, 0))
	}
}

// TestStoreCorruptionDetection: injected in-flight corruption must surface as
// a transient checksum error (the host copy is intact), while real host-side
// corruption is permanent — retrying cannot help, so it must not be retried.
func TestStoreCorruptionDetection(t *testing.T) {
	for _, mode := range []struct {
		name     string
		quantize bool
		f16      bool
	}{
		{"raw", false, false},
		{"f16", false, true},
		{"quantized", true, false},
	} {
		st, err := NewKVStore(1, 1, mode.quantize, quant.Config{Bits: 4, GroupSize: 4}, mode.f16)
		if err != nil {
			t.Fatal(err)
		}
		k := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 2, 4)
		if _, err := st.Append(0, 0, k, k.Clone()); err != nil {
			t.Fatal(err)
		}
		st.UseFaults(faults.MustNew(1, map[faults.Site]faults.Rule{
			faults.KVCorruption: {Prob: 1, Max: 1},
		}))
		_, _, _, err = st.Fetch(0, 0)
		if err == nil {
			t.Fatalf("%s: injected corruption not detected", mode.name)
		}
		if !faults.IsTransient(err) {
			t.Errorf("%s: injected corruption not transient: %v", mode.name, err)
		}
		// The cap is spent, and the host copy was never touched.
		if _, _, _, err := st.Fetch(0, 0); err != nil {
			t.Errorf("%s: retry after injected corruption failed: %v", mode.name, err)
		}
	}

	// Genuine host-side damage (flip a stored byte) is permanent.
	st, err := NewKVStore(1, 1, false, quant.Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(0, 0, tensor.Full(1, 2, 4), tensor.Full(2, 2, 4)); err != nil {
		t.Fatal(err)
	}
	st.chunks[0][0][0].k.Data()[0] = 42
	_, _, _, err = st.Fetch(0, 0)
	if err == nil {
		t.Fatal("host-side corruption not detected")
	}
	if faults.IsTransient(err) {
		t.Errorf("host-side corruption reported transient: %v", err)
	}
}

func TestCheckpointRoundTripAndResume(t *testing.T) {
	const genLen = 9
	want := refTokens(t, 42, genLen)

	// Interrupted run: stop after step 4; checkpointing every 2 steps leaves
	// the last snapshot at step 4 (5 tokens generated).
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1, GPUBatch: 2}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableCheckpointing(2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.GenerateStream(context.Background(), testPrompts(), genLen, func(step int, tokens []int) bool {
		return step < 4
	}); err != nil {
		t.Fatal(err)
	}
	ck := eng.LastCheckpoint()
	if ck == nil {
		t.Fatal("no checkpoint captured")
	}
	if ck.Step != 4 {
		t.Fatalf("checkpoint at step %d, want 4", ck.Step)
	}
	if eng.Stats().Checkpoints == 0 {
		t.Error("checkpoint counter not advanced")
	}

	// Serialization round trip is lossless.
	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != ck.Pos || got.Step != ck.Step || got.GenLen != ck.GenLen ||
		!reflect.DeepEqual(got.Prompts, ck.Prompts) || !reflect.DeepEqual(got.Tokens, ck.Tokens) {
		t.Fatalf("round trip mutated the checkpoint: %+v vs %+v", got, ck)
	}
	for l := range ck.Keys {
		for s := range ck.Keys[l] {
			if (ck.Keys[l][s] == nil) != (got.Keys[l][s] == nil) {
				t.Fatalf("slot (%d,%d) presence changed", l, s)
			}
			if ck.Keys[l][s] == nil {
				continue
			}
			if !reflect.DeepEqual(ck.Keys[l][s].Data(), got.Keys[l][s].Data()) ||
				!reflect.DeepEqual(ck.Values[l][s].Data(), got.Values[l][s].Data()) {
				t.Fatalf("slot (%d,%d) payload changed", l, s)
			}
		}
	}

	// Resuming on a fresh engine reproduces the uninterrupted run exactly
	// (unquantized KV restores bit-for-bit).
	eng2, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng2.Resume(context.Background(), got, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertTokens(t, out, want)
}

func TestResumeUnderCPUAttentionPolicy(t *testing.T) {
	const genLen = 7
	want := refTokens(t, 42, genLen)
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.EnableCheckpointing(3)
	if _, err := eng.GenerateStream(context.Background(), testPrompts(), genLen, func(step int, tokens []int) bool {
		return step < 3
	}); err != nil {
		t.Fatal(err)
	}
	ck := eng.LastCheckpoint()
	if ck == nil {
		t.Fatal("no checkpoint")
	}
	// Resume on an engine whose policy keeps attention on the CPU: the
	// checkpoint is policy-agnostic (plain float32 KV), so this is lossless.
	eng2, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1, AttnOnCPU: true}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng2.Resume(context.Background(), ck, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertTokens(t, out, want)
}

func TestCheckpointValidation(t *testing.T) {
	var nilCk *Checkpoint
	if err := nilCk.Validate(); err == nil {
		t.Error("nil checkpoint accepted")
	}
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.EnableCheckpointing(1)
	if _, err := eng.Generate(context.Background(), testPrompts(), 3); err != nil {
		t.Fatal(err)
	}
	ck := eng.LastCheckpoint()
	if ck == nil {
		t.Fatal("no checkpoint")
	}
	if err := ck.Validate(); err != nil {
		t.Fatalf("healthy checkpoint rejected: %v", err)
	}
	// A geometry mismatch must be refused at resume time.
	bad := *ck
	bad.Hidden++
	if _, err := eng.Resume(context.Background(), &bad, nil); err == nil {
		t.Error("geometry mismatch accepted")
	}
	bad = *ck
	bad.Step = bad.GenLen + 1
	if err := bad.Validate(); err == nil {
		t.Error("step past genLen accepted")
	}
	bad = *ck
	bad.Keys = bad.Keys[:1]
	if err := bad.Validate(); err == nil {
		t.Error("truncated KV accepted")
	}
	if err := eng.EnableCheckpointing(-1); err == nil {
		t.Error("negative checkpoint interval accepted")
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader("NOPE-not-a-checkpoint")); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid magic, truncated body.
	if _, err := ReadCheckpoint(strings.NewReader("LMGC\x01\x00\x00")); err == nil {
		t.Error("truncated header accepted")
	}
	// Implausible geometry.
	var buf bytes.Buffer
	buf.WriteString("LMGC")
	for _, v := range []uint32{1, 4, 1, 8, 0xFFFFFFFF, 16, 1} {
		for i := 0; i < 4; i++ {
			buf.WriteByte(byte(v >> (8 * i)))
		}
	}
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("implausible layer count accepted")
	}
}

// TestFaultsDisabledIsFree: a nil injector must leave behavior and output
// exactly as before the fault-tolerance machinery existed.
func TestFaultsDisabledIsFree(t *testing.T) {
	const genLen = 6
	want := refTokens(t, 42, genLen)
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1, Prefetch: true}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Generate(context.Background(), testPrompts(), genLen)
	if err != nil {
		t.Fatal(err)
	}
	assertTokens(t, out, want)
	st := eng.Stats()
	if st.TotalRetries() != 0 || st.FaultsCleared != 0 || len(st.Degradations) != 0 {
		t.Errorf("clean run recorded recovery activity: %+v", st)
	}
}

// TestInjectorDeterminism: two injectors with the same seed drive two engines
// to identical fault sequences and identical stats — the replay property
// chaos debugging depends on.
func TestInjectorDeterminism(t *testing.T) {
	run := func() (map[faults.Site]int, [][]int) {
		inj := faults.MustNew(99, map[faults.Site]faults.Rule{
			faults.WeightTransfer: {Prob: 0.2},
			faults.KVTransfer:     {Prob: 0.2},
		})
		eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetFaultInjector(inj)
		eng.SetRetryConfig(RetryConfig{MaxAttempts: 6})
		out, err := eng.Generate(context.Background(), testPrompts(), 6)
		if err != nil {
			t.Fatal(err)
		}
		return inj.Counts(), out
	}
	c1, o1 := run()
	c2, o2 := run()
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("fire counts differ across identical runs: %v vs %v", c1, c2)
	}
	assertTokens(t, o1, o2)
	if len(c1) == 0 {
		t.Error("no faults fired; determinism test is vacuous")
	}
}

func TestGenerateInputValidation(t *testing.T) {
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Generate(context.Background(), nil, 4); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := eng.Generate(context.Background(), testPrompts(), 0); err == nil {
		t.Error("zero genLen accepted")
	}
	if err := eng.SetRetryConfig(RetryConfig{MaxAttempts: 0}); err == nil {
		t.Error("zero retry attempts accepted")
	}
	if err := eng.SetRetryConfig(RetryConfig{MaxAttempts: 1, BaseBackoff: -time.Second}); err == nil {
		t.Error("negative backoff accepted")
	}
}

func ExampleEngine_Generate_faultTolerant() {
	// Sketch of the fault-tolerant generation loop: inject transient
	// transfer faults, retry through them, and verify nothing changed.
	fmt.Println("see TestChaosGenerationStaysExact")
	// Output: see TestChaosGenerationStaysExact
}
