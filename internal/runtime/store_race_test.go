package runtime

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// kvRow builds one deterministic KV row pair for the race tests.
func kvRow(rng *rand.Rand, hidden int) (*tensor.Tensor, *tensor.Tensor) {
	k, v := tensor.New(1, hidden), tensor.New(1, hidden)
	for i := range k.Data() {
		k.Data()[i] = rng.Float32() - 0.5
		v.Data()[i] = rng.Float32() - 0.5
	}
	return k, v
}

// TestKVStoreConcurrentResetRollback hammers a KVStore with concurrent
// Append/Fetch traffic on some slots while other goroutines ResetSlot,
// Rollback, and flip SetSlotQuant on the same store — the serving-layer
// access pattern once the pressure ladder spills and evicts mid-decode. Run
// under -race this pins the RWMutex discipline; in any mode it checks the
// store never tears a chunk list (fetched lengths are whole multiples of the
// appended row height).
func TestKVStoreConcurrentResetRollback(t *testing.T) {
	const (
		layers = 2
		batch  = 4
		hidden = 64
	)
	iters := 120
	if testing.Short() {
		iters = 40
	}
	st, err := NewKVStore(layers, batch, false, quant.DefaultConfig(), false)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Writers: each owns one slot and appends/fetches rows in a loop.
	for seq := 0; seq < batch-1; seq++ {
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seq)))
			for i := 0; i < iters; i++ {
				k, v := kvRow(rng, hidden)
				for layer := 0; layer < layers; layer++ {
					if _, err := st.Append(layer, seq, k, v); err != nil {
						t.Errorf("append slot %d: %v", seq, err)
						return
					}
				}
				for layer := 0; layer < layers; layer++ {
					fk, fv, _, err := st.Fetch(layer, seq)
					if err != nil {
						t.Errorf("fetch slot %d: %v", seq, err)
						return
					}
					if fk == nil {
						continue // raced with a concurrent rollback to empty
					}
					if fk.Shape()[1] != hidden || fv.Shape()[1] != hidden {
						t.Errorf("torn fetch on slot %d: shapes %v/%v", seq, fk.Shape(), fv.Shape())
						return
					}
				}
				_ = st.SeqLen(0, seq)
				_ = st.HostBytes()
			}
		}(seq)
	}

	// Resetter: the evict path clearing the last slot while others run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		victim := batch - 1
		for i := 0; i < iters; i++ {
			k, v := kvRow(rng, hidden)
			if _, err := st.Append(0, victim, k, v); err != nil {
				t.Errorf("victim append: %v", err)
				return
			}
			if i%3 == 0 {
				st.ResetSlot(victim)
			}
			if i%5 == 0 {
				cfg := quant.DefaultConfig()
				if err := st.SetSlotQuant(victim, &cfg); err != nil {
					t.Errorf("SetSlotQuant: %v", err)
					return
				}
				st.ResetSlot(victim) // also clears the per-slot override
			}
		}
	}()

	// Roller: checkpoint/rollback cycles over the whole store, the
	// retry path's mark discipline racing live appends.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			mark := st.Mark()
			st.Rollback(mark)
			_ = st.ChunkCount(0, 0)
		}
	}()

	wg.Wait()
}
