package runtime

import (
	"context"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/threadpool"
)

func TestExecPolicyValidate(t *testing.T) {
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []ExecPolicy{
		{IntraOp: 0},
		{IntraOp: -1},
		{IntraOp: 1, InterOp: -1},
		{IntraOp: 1, StepTimeout: -time.Second},
	}
	for _, p := range bad {
		if err := eng.ApplyExecPolicy(p); err == nil {
			t.Errorf("ApplyExecPolicy(%+v) accepted an invalid policy", p)
		}
	}
	// A rejected swap must leave the current policy untouched.
	if got := eng.ExecPolicy(); got.IntraOp != 1 {
		t.Fatalf("policy mutated by rejected swap: %+v", got)
	}
}

func TestExecPolicyRoundTrip(t *testing.T) {
	pool := threadpool.MustNew(2)
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 2, Prefetch: true}, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	want := ExecPolicy{IntraOp: 1, InterOp: 2, Prefetch: false, StepTimeout: 250 * time.Millisecond}
	if err := eng.ApplyExecPolicy(want); err != nil {
		t.Fatal(err)
	}
	if got := eng.ExecPolicy(); got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	// The full policy view agrees with the swapped subset.
	if p := eng.Policy(); p.IntraOp != 1 || p.Prefetch || p.StepTimeout != want.StepTimeout {
		t.Fatalf("engine policy not updated: %+v", p)
	}
}

// TestExecPolicySwapTokenExact is the core hot-swap safety property: flipping
// the swappable fields between steps of a live session must not change a
// single served token relative to an uninterrupted run.
func TestExecPolicySwapTokenExact(t *testing.T) {
	const seed = 42
	prompts := [][]int{{1, 2, 3, 4}, {9, 8, 7, 6, 5}}
	const genLen = 12

	pool := threadpool.MustNew(3)
	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 2, Prefetch: true}, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	out := make([][]int, len(prompts))
	for i, p := range prompts {
		tok, err := sess.Admit(ctx, i, p)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = append(out[i], tok)
	}
	// A different swap before every step boundary: widths up and down,
	// prefetch toggled, a deadline appearing and vanishing.
	swaps := []ExecPolicy{
		{IntraOp: 1},
		{IntraOp: 3, Prefetch: true},
		{IntraOp: 2, InterOp: 2},
		{IntraOp: 1, StepTimeout: time.Second},
		{IntraOp: 2, Prefetch: true},
	}
	for step := 0; len(out[0]) < genLen; step++ {
		if err := eng.ApplyExecPolicy(swaps[step%len(swaps)]); err != nil {
			t.Fatal(err)
		}
		toks, err := sess.Step(ctx)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for _, st := range toks {
			out[st.Slot] = append(out[st.Slot], st.Token)
		}
	}
	for i := range prompts {
		want := soloReference(t, seed, prompts[i], genLen)
		assertTokens(t, [][]int{out[i][:genLen]}, [][]int{want})
	}
}

// TestDriftStallStretchesStep: a sustained slowdown schedule on the fault
// injector makes completed steps take measurably longer without changing the
// tokens they produce.
func TestDriftStallStretchesStep(t *testing.T) {
	const seed = 42
	prompt := []int{1, 2, 3, 4}
	const genLen = 8

	run := func(factor float64) (time.Duration, []int) {
		eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 1}, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		if factor > 1 {
			inj := faults.MustNew(1, nil)
			if err := inj.SetDrift(faults.SustainedSlowdown(0, factor)); err != nil {
				t.Fatal(err)
			}
			eng.SetFaultInjector(inj)
		}
		sess, err := eng.NewSession(1)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		tok, err := sess.Admit(ctx, 0, prompt)
		if err != nil {
			t.Fatal(err)
		}
		toks := []int{tok}
		start := time.Now()
		for len(toks) < genLen {
			st, err := sess.Step(ctx)
			if err != nil {
				t.Fatal(err)
			}
			toks = append(toks, st[0].Token)
		}
		return time.Since(start), toks
	}

	base, baseToks := run(1)
	drifted, driftToks := run(50)
	// Factor 50 stretches each step ~50x; require a conservative 3x so the
	// assertion stays robust under scheduler noise on slow CI machines.
	if drifted < 3*base {
		t.Fatalf("drifted run %v not measurably slower than baseline %v", drifted, base)
	}
	assertTokens(t, [][]int{driftToks}, [][]int{baseToks})
}
