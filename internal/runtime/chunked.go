package runtime

import (
	"context"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/xtrace"
)

// Chunked prefill: a prompt is admitted incrementally, ChunkTokens positions
// at a time, so a long prefill never monopolizes a serving step — the
// scheduler interleaves one bounded chunk between decode steps and the live
// batch's TPOT spike is capped by construction (the APEX/HeteGen split).
//
// Exactness. Chunk-by-chunk prefill is bit-identical to the monolithic
// prefill because the model is strictly causal and strictly per-row:
// AttentionAt appends the chunk's K/V rows to the slot's cache and masks each
// new row to attend only to positions ≤ its own, and every other per-row
// operation (layer norms, projections, per-row softmax, MLP) never mixes
// rows. Splitting the prompt therefore changes neither any row's inputs nor
// the order of its floating-point operations.
//
// Quantized slots need one extra invariant: a monolithic prefill computes ALL
// prompt attention against raw float32 K/V (quantization happens only when
// the finished rows are appended to the slot's store). So while a chunked
// prefill is in flight, the session retains the raw rows of every processed
// chunk in a live host-side cache and later chunks attend against those —
// never against the store's quantized copies. The per-chunk store appends are
// still exact because quantization groups align to rows (the ladder config's
// group size divides the hidden dimension), so chunk boundaries never split a
// quantization group.
type chunkState struct {
	prompt []int
	match  *PrefixMatch // pinned prefix chain seeding the first chunk (may be nil)
	reused int          // prompt tokens seeded from the prefix store
	done   int          // prompt tokens processed so far (including reused)

	// live holds the raw float32 K/V rows of prompt[:done] for every layer
	// while the prefill is in flight (staged-store mode only; host-resident
	// mode accumulates into the slot's host cache directly, which is already
	// raw). It is released when the prefill completes or cancels.
	live *model.KVCache

	// committed tracks how many prompt tokens are already durable in the
	// prefix store (block-aligned). Completed chunks commit their full blocks
	// immediately, so a cancelled or evicted prefill resumes from the last
	// committed chunk boundary instead of redoing the whole prompt.
	committed int
}

// PrefillPending reports whether slot has a chunked prefill in flight.
func (s *Session) PrefillPending(slot int) bool {
	return slot >= 0 && slot < s.slots && s.chunk[slot] != nil
}

// PrefillProgress returns the processed and total prompt token counts of the
// slot's in-flight chunked prefill (0, 0 when none is pending).
func (s *Session) PrefillProgress(slot int) (done, total int) {
	if !s.PrefillPending(slot) {
		return 0, 0
	}
	st := s.chunk[slot]
	return st.done, len(st.prompt)
}

// ChunkHostBytes returns the host bytes retained by in-flight chunked
// prefills: the raw live K/V rows held until each prefill completes. The
// admission model's ChunkStateBytes term predicts this peak per slot.
func (s *Session) ChunkHostBytes() int64 {
	var total int64
	for _, st := range s.chunk {
		if st != nil && st.live != nil {
			total += st.live.Bytes()
		}
	}
	return total
}

// BeginPrefill opens a chunked prefill of prompt into a free slot: the slot's
// KV storage mode is pinned exactly as AdmitKV pins it, the longest cached
// prefix is acquired and counts as already done, and subsequent PrefillChunk
// calls advance through the remaining tokens. The slot stays inactive (Step
// skips it) until the final chunk completes.
func (s *Session) BeginPrefill(slot int, prompt []int, quantKV bool) error {
	if slot < 0 || slot >= s.slots {
		return fmt.Errorf("runtime: prefill slot %d outside [0, %d)", slot, s.slots)
	}
	if s.active[slot] {
		return fmt.Errorf("runtime: chunked prefill into occupied slot %d", slot)
	}
	if s.chunk[slot] != nil {
		return fmt.Errorf("runtime: slot %d already has a prefill in flight", slot)
	}
	if len(prompt) == 0 {
		return fmt.Errorf("runtime: chunked prefill with empty prompt")
	}
	s.spilled[slot] = false
	switch {
	case s.kv != nil && s.kv.Quantized():
		s.quantKV[slot] = true
		s.slotCfgs[slot] = s.e.policy.KVCfg
	case quantKV && s.kv != nil:
		if s.ladderCfg.Bits == 0 {
			return fmt.Errorf("runtime: quantized prefill without a ladder config (call SetQuantizeNewSlots first)")
		}
		if err := s.kv.SetSlotQuant(slot, &s.ladderCfg); err != nil {
			return err
		}
		s.quantKV[slot] = true
		s.slotCfgs[slot] = s.ladderCfg
	default:
		s.quantKV[slot] = false
	}
	st := &chunkState{prompt: append([]int(nil), prompt...)}
	if s.prefix != nil {
		t0 := time.Now()
		if m := s.prefix.Acquire(prompt, len(prompt)-1); m != nil {
			st.match = m
			st.reused, st.done, st.committed = m.Tokens(), m.Tokens(), m.Tokens()
			s.e.stats.RecordPrefixHit(m.Tokens())
			s.e.task(xtrace.TaskPrefixHit, xtrace.LaneServe, t0, xtrace.At(-1, -1, slot))
		} else {
			s.e.stats.RecordPrefixMiss()
		}
	}
	if s.kv != nil {
		cfg := s.e.mod.Cfg
		st.live = model.NewKVCache(cfg.Layers, 1, cfg.Hidden)
	}
	s.chunk[slot] = st
	return nil
}

// CancelPrefill abandons a slot's in-flight chunked prefill: the prefix pins
// are released, the slot's partial store appends are dropped, and the slot
// becomes admissible again. Blocks already committed to the prefix store stay
// — that is what lets an evicted or cancelled prefill resume from its last
// completed chunk boundary. Cancelling a slot with no pending prefill is a
// no-op.
func (s *Session) CancelPrefill(slot int) {
	if slot < 0 || slot >= s.slots {
		return
	}
	st := s.chunk[slot]
	if st == nil {
		return
	}
	s.chunk[slot] = nil
	st.match.Release()
	s.quantKV[slot] = false
	if s.kv != nil {
		s.kv.ResetSlot(slot)
	}
	if s.host != nil {
		for l := 0; l < s.host.Layers(); l++ {
			s.host.SetKV(l, slot, nil, nil)
		}
	}
}

// PrefillChunk advances the slot's chunked prefill by up to maxTokens prompt
// tokens, with the same per-attempt mark/rollback/degradation discipline as a
// monolithic admit. It returns the new progress; when done == total the final
// chunk just ran, the slot is active, and tok is the first generated token
// (the same token AdmitKV would have returned).
func (s *Session) PrefillChunk(ctx context.Context, slot, maxTokens int) (done, total int, tok int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if slot < 0 || slot >= s.slots || s.chunk[slot] == nil {
		return 0, 0, 0, fmt.Errorf("runtime: no prefill in flight on slot %d", slot)
	}
	if maxTokens <= 0 {
		return 0, 0, 0, fmt.Errorf("runtime: chunk size must be positive, got %d", maxTokens)
	}
	st := s.chunk[slot]
	total = len(st.prompt)
	n := total - st.done
	if n > maxTokens {
		n = maxTokens
	}
	final := st.done+n == total
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return st.done, total, 0, err
		}
		m := s.mark()
		var liveLens [][]int
		if st.live != nil {
			liveLens = st.live.SeqLens()
		}
		stepCtx, cancel := s.e.stepContext(ctx)
		t0 := time.Now()
		tok, cerr := s.chunkOnce(stepCtx, slot, st, n, final)
		cancel()
		// The chunk span carries its token count in the Step label so the
		// conformance harness can assert structurally that no chunk exceeded
		// the configured bound.
		s.e.task(xtrace.TaskPrefillChunk, xtrace.LaneEngine, t0, xtrace.At(n, -1, slot))
		if cerr == nil {
			st.done += n
			s.commitChunkBlocks(slot, st)
			if final {
				s.active[slot] = true
				s.pos[slot] = total
				s.last[slot] = tok
				s.prefixRefs[slot] = st.match
				s.reused[slot] = st.reused
				s.chunk[slot] = nil
				s.e.stats.mu.Lock()
				s.e.stats.TokensGenerated++
				s.e.stats.mu.Unlock()
			}
			s.e.driftStall(ctx, time.Since(t0))
			return st.done, total, tok, nil
		}
		s.rollback(m)
		if st.live != nil && liveLens != nil {
			st.live.TruncateTo(liveLens)
		}
		if cctx := ctx.Err(); cctx != nil {
			return st.done, total, 0, cctx
		}
		if attempt >= maxStepAttempts {
			return st.done, total, 0, fmt.Errorf("runtime: prefill chunk on slot %d failed after %d attempts: %w", slot, attempt, cerr)
		}
		s.e.stats.addRetry("prefill_chunk")
		if attempt >= 2 {
			s.degradeOnce(ctx)
			if s.kv == nil && st.live != nil {
				// The store migrated to host mid-prefill. The live cache holds
				// the raw rows of every completed chunk — install those as the
				// slot's host rows (the values prefill attention reads in every
				// mode) and continue host-resident; per-slot quantization no
				// longer applies.
				for j := 0; j < s.host.Layers(); j++ {
					s.host.SetKV(j, slot, st.live.Keys(j, 0), st.live.Values(j, 0))
				}
				st.live = nil
				s.quantKV[slot] = false
			}
		}
	}
}

// chunkOnce is one attempt at one prefill chunk: embed the chunk's tokens at
// their absolute positions, stream every layer once (with prefetch overlap
// when enabled), append the chunk's K/V rows to the live raw cache, and
// persist them to the slot's store. The final chunk additionally projects the
// last row's logits into the first generated token.
func (s *Session) chunkOnce(ctx context.Context, slot int, st *chunkState, n int, final bool) (tok int, err error) {
	defer recoverAsError(&err)
	e := s.e
	cfg := e.mod.Cfg
	base := st.done
	x := e.mod.Embed(st.prompt[base:base+n], base)
	xs := []*tensor.Tensor{x}
	e.stats.addBytes(&e.stats.ActUpBytes, int64(n*cfg.Hidden)*4)
	// The first computed chunk of a prefix-seeded slot persists the seeded
	// rows along with its own, so the store ends up holding the full prompt
	// exactly as a monolithic admit leaves it.
	storeFull := st.reused > 0 && st.done == st.reused

	pipe := e.newLoadPipeline(ctx)
	defer pipe.drain()
	if e.policy.Prefetch {
		pipe.start(0)
	}
	for j := 0; j < cfg.Layers; j++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		var ll loadedLayer
		if e.policy.Prefetch {
			ll = pipe.take()
			if j+1 < cfg.Layers {
				pipe.start(j + 1)
			}
		} else {
			ll = e.loadLayer(ctx, j)
		}
		if ll.err != nil {
			return 0, fmt.Errorf("runtime: prefill chunk layer %d: %w", j, ll.err)
		}

		t0 := time.Now()
		var out model.AttentionOutput
		if st.live != nil {
			if st.match != nil && st.live.SeqLen(j, 0) == 0 {
				pk, pv := st.match.SeedLayer(j)
				st.live.SetKV(j, 0, pk, pv)
			}
			out = model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, st.live, j, 0, xs)
		} else {
			if st.match != nil && s.host.SeqLen(j, slot) == 0 {
				pk, pv := st.match.SeedLayer(j)
				s.host.SetKV(j, slot, pk, pv)
			}
			out = model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, s.host, j, slot, xs)
		}
		model.MLP(e.pool, e.policy.IntraOp, cfg, ll.weights, x)
		e.task(xtrace.TaskCompute, xtrace.LaneGPU, t0, xtrace.At(-1, j, slot))
		e.freeGPU(ll.resident)

		if st.live != nil {
			k, v := out.NewK[0], out.NewV[0]
			if storeFull {
				k, v = st.live.Keys(j, 0), st.live.Values(j, 0)
			}
			if err := e.storeChunk(ctx, s.kv, j, slot, k, v); err != nil {
				return 0, err
			}
		}
	}
	if !final {
		return 0, nil
	}
	hidden := tensor.New(1, cfg.Hidden)
	copy(hidden.Row(0), x.Row(n-1))
	return tensor.ArgmaxRows(e.mod.Logits(e.pool, e.policy.IntraOp, hidden))[0], nil
}

// commitChunkBlocks makes the completed chunks' full prefix blocks durable in
// the prefix store. Committing per chunk (rather than once at admit success,
// as the monolithic path does) is what lets a later cancellation or eviction
// resume from the last completed chunk: the committed blocks match a resume
// prompt's prefix and seed its restart.
func (s *Session) commitChunkBlocks(slot int, st *chunkState) {
	if s.prefix == nil {
		return
	}
	bt := s.prefix.BlockTokens()
	target := st.done - st.done%bt
	if target <= st.committed {
		return
	}
	cand := s.prefix.NewCandidate(st.prompt[:target], st.committed)
	if cand != nil {
		cfg := s.e.mod.Cfg
		for j := 0; j < cfg.Layers; j++ {
			if st.live != nil {
				cand.CaptureLayer(j, st.live.Keys(j, 0), st.live.Values(j, 0))
			} else {
				cand.CaptureLayer(j, s.host.Keys(j, slot), s.host.Values(j, slot))
			}
		}
		inserted, evicted := s.prefix.Commit(cand)
		if inserted > 0 {
			s.e.stats.RecordPrefixInserts(int64(inserted))
			s.prefixEvent(xtrace.TaskPrefixInsert, slot)
		}
		if evicted > 0 {
			s.e.stats.RecordPrefixEvictions(int64(evicted))
			s.prefixEvent(xtrace.TaskPrefixEvict, slot)
		}
	}
	st.committed = target
}
