package runtime

import (
	"context"
	"fmt"
	"time"
)

// ExecPolicy is the numerics-preserving subset of Policy that the online
// adapt loop may hot-swap at a step boundary: thread widths, prefetch, and
// the step deadline. Fields that change what is computed or how tensors are
// stored (quantization, residency, attention/activation placement, GPU
// batching) are deliberately excluded — swapping those mid-stream would
// change a live slot's storage mode or its served tokens, and the serving
// layer's differential tests require token-exactness across a swap.
type ExecPolicy struct {
	// IntraOp is the worker width for tensor operators.
	IntraOp int
	// InterOp co-runs independent attention chunks within a GPU batch.
	InterOp int
	// Prefetch overlaps the next layer's weight load with compute.
	Prefetch bool
	// StepTimeout bounds each generation step (zero disables the deadline).
	StepTimeout time.Duration
	// QuantKernels selects the fused quantized-domain kernels for packed
	// operands. Bit-identical outputs make it numerics-safe to flip between
	// steps; it is included here so the adapt loop can A/B it online.
	QuantKernels bool
}

// Validate reports malformed exec policies.
func (p ExecPolicy) Validate() error {
	if p.IntraOp < 1 {
		return fmt.Errorf("runtime: exec-policy intra-op width must be >= 1, got %d", p.IntraOp)
	}
	if p.InterOp < 0 {
		return fmt.Errorf("runtime: exec-policy inter-op parallelism must be >= 0, got %d", p.InterOp)
	}
	if p.StepTimeout < 0 {
		return fmt.Errorf("runtime: exec-policy step timeout must be >= 0, got %v", p.StepTimeout)
	}
	return nil
}

// ExecPolicy returns the swappable subset of the engine's current policy.
func (e *Engine) ExecPolicy() ExecPolicy {
	return ExecPolicy{
		IntraOp:      e.policy.IntraOp,
		InterOp:      e.policy.InterOp,
		Prefetch:     e.policy.Prefetch,
		StepTimeout:  e.policy.StepTimeout,
		QuantKernels: e.policy.QuantKernels,
	}
}

// ApplyExecPolicy installs the swappable policy fields. It must be called
// from the goroutine that steps the engine's sessions, between steps — the
// serving scheduler applies pending swaps at the top of its loop, which is a
// step boundary by construction. The engine reads these fields afresh each
// step, so the next step runs entirely under the new setting; no step ever
// observes a mix.
func (e *Engine) ApplyExecPolicy(p ExecPolicy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e.policy.IntraOp = p.IntraOp
	e.policy.InterOp = p.InterOp
	e.policy.Prefetch = p.Prefetch
	e.policy.StepTimeout = p.StepTimeout
	e.policy.QuantKernels = p.QuantKernels
	// The weight store dequantizes with its own cached width; keep it in
	// lockstep with the compute operators.
	e.weights.UsePool(e.pool, p.IntraOp)
	return nil
}

// driftStall injects the fault injector's current drift slowdown for an
// operation that took `elapsed` at real speed: the machine under a drift
// factor f behaves as if every compute window were f times longer. The stall
// aborts early on context cancellation (the completed work is still valid;
// callers return their result regardless).
func (e *Engine) driftStall(ctx context.Context, elapsed time.Duration) {
	d := e.faults.DriftDelay(elapsed)
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
