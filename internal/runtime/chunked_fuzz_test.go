package runtime

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/quant"
)

// FuzzChunkedAdmission fuzzes the chunked-admission state machine over
// prompt length × chunk size × prefix-hit length × arena pressure × KV
// quantization, and asserts the invariants the serving layer relies on:
//
//   - chunk budget: no PrefillChunk call advances more than the requested
//     chunk of prompt positions, and progress is monotone with a constant
//     total — position conservation;
//   - the live chunk-state footprint never exceeds the admission model's
//     ChunkStateBytes bound, and drops to zero once the slot activates or
//     the prefill is cancelled — KV-byte conservation;
//   - the admission model's peak-arena estimate upper-bounds the observed
//     arena peak of a completed chunked admission;
//   - completion is token-exact against the monolithic AdmitKV reference
//     with identical quantization settings (4-bit KV legitimately drifts
//     from the *raw* solo run on adversarial prompts, so the oracle is the
//     engine's own all-at-once path, which chunking must reproduce bit for
//     bit), or, under arena pressure, failure cleans up completely (no
//     chunk bytes, no arena bytes, slot admissible again).
// monolithicReference runs the prompt through a fresh session's all-at-once
// AdmitKV path with the same quantization settings — the engine's own
// monolithic behavior, which chunked admission must reproduce exactly.
func monolithicReference(t *testing.T, seed int64, prompt []int, genLen int, quantKV bool) []int {
	t.Helper()
	eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	if quantKV {
		if err := sess.SetQuantizeNewSlots(true, quant.Config{Bits: 4, GroupSize: 32}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	tok, err := sess.AdmitKV(ctx, 0, prompt, quantKV)
	if err != nil {
		t.Fatal(err)
	}
	got := []int{tok}
	for len(got) < genLen {
		toks, err := sess.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, toks[0].Token)
	}
	return got
}

func FuzzChunkedAdmission(f *testing.F) {
	f.Add(21, 4, 8, uint8(0), false)
	f.Add(33, 1, 16, uint8(1), true)
	f.Add(48, 16, 0, uint8(2), false)
	f.Add(9, 9, 8, uint8(0), true)
	f.Add(30, 7, 24, uint8(1), true)
	f.Fuzz(func(t *testing.T, plen, chunk, prefixLen int, pressure uint8, quantKV bool) {
		const seed = 42
		cfg := model.Tiny()
		if plen < 1 || plen > 48 || chunk < 1 || chunk > plen+4 || prefixLen < 0 || prefixLen > plen {
			t.Skip()
		}
		arena := int64(1) << 30
		switch pressure % 3 {
		case 1:
			arena = 1 << 22
		case 2:
			arena = 1 << 21
		}
		prompt := make([]int, plen)
		for i := range prompt {
			prompt[i] = (i*5 + int(pressure)) % cfg.Vocab
		}
		const genLen = 3
		want := monolithicReference(t, seed, prompt, genLen, quantKV)

		ps, err := NewPrefixStore(4<<20, 8, cfg.Layers, cfg.Hidden)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(tinyModel(t, seed), Policy{IntraOp: 1}, arena, nil)
		if err != nil {
			t.Skip() // arena too small for the model's resident set
		}
		sess, err := eng.NewSession(1)
		if err != nil {
			t.Fatal(err)
		}
		sess.UsePrefixStore(ps)
		if quantKV {
			if err := sess.SetQuantizeNewSlots(true, quant.Config{Bits: 4, GroupSize: 32}); err != nil {
				t.Fatal(err)
			}
		}
		ctx := context.Background()

		// Warm the prefix store with the prompt's first prefixLen tokens so
		// the fuzzed admission sees a real partial hit (block-aligned commits
		// mean short warm prefixes legitimately contribute nothing).
		if prefixLen >= 8 {
			if err := sess.BeginPrefill(0, prompt[:prefixLen], quantKV); err != nil {
				t.Fatalf("warm begin: %v", err)
			}
			for {
				done, total, _, err := sess.PrefillChunk(ctx, 0, chunk)
				if err != nil {
					sess.CancelPrefill(0)
					t.Skip() // pressure killed the warm run; nothing to fuzz
				}
				if done == total {
					break
				}
			}
			sess.Retire(0)
		}

		am := perfmodel.AdmissionModel{
			HiddenDim:     cfg.Hidden,
			BytesPerElem:  4, // staged KV working copies are float32
			ResidentBase:  eng.ResidentBaseBytes(),
			LayerBytes:    eng.MaxStreamLayerBytes(),
			WeightBuffers: 1,
			Slack:         1.15,
		}
		stateBound := am.ChunkStateBytes(plen, cfg.Layers)

		if err := sess.BeginPrefill(0, prompt, quantKV); err != nil {
			t.Fatalf("begin prefill: %v", err)
		}
		prev, total := sess.PrefillProgress(0)
		if total != plen {
			t.Fatalf("prefill total = %d, want %d", total, plen)
		}
		var statePeak int64
		failed := false
		for {
			if hb := sess.ChunkHostBytes(); hb > statePeak {
				statePeak = hb
			}
			done, tot, tok, err := sess.PrefillChunk(ctx, 0, chunk)
			if err != nil {
				sess.CancelPrefill(0)
				failed = true
				break
			}
			if tot != plen {
				t.Fatalf("total drifted: %d -> %d", plen, tot)
			}
			if done < prev || done-prev > chunk {
				t.Fatalf("chunk advanced %d -> %d, budget %d", prev, done, chunk)
			}
			prev = done
			if done == tot {
				got := []int{tok}
				for len(got) < genLen {
					toks, err := sess.Step(ctx)
					if err != nil {
						failed = true
						break
					}
					got = append(got, toks[0].Token)
				}
				if !failed {
					assertTokens(t, [][]int{got}, [][]int{want})
				}
				break
			}
		}
		if statePeak > stateBound {
			t.Fatalf("live chunk state peaked at %d bytes, admission bound %d", statePeak, stateBound)
		}
		if hb := sess.ChunkHostBytes(); hb != 0 {
			t.Fatalf("%d live chunk bytes after completion/cancel", hb)
		}
		if !failed {
			estimate := am.PeakBytes(am.SlotKVBytes(plen, genLen))
			if peak := eng.ArenaPeak(); peak > estimate {
				t.Fatalf("arena peak %d exceeded admission estimate %d", peak, estimate)
			}
			if sess.kv != nil {
				for j := 0; j < cfg.Layers; j++ {
					if n := sess.kv.SeqLen(j, 0); n != plen+genLen-1 {
						t.Fatalf("layer %d holds %d KV rows, want %d", j, n, plen+genLen-1)
					}
				}
			}
			sess.Retire(0)
		}
		// The slot must be admissible again either way.
		if err := sess.BeginPrefill(0, prompt, quantKV); err != nil {
			t.Fatalf("slot not reusable after run: %v", err)
		}
		sess.CancelPrefill(0)
		if used := eng.gpu.Used(); used != 0 {
			t.Fatalf("arena leak: %d bytes", used)
		}
	})
}
