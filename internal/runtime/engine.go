package runtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/threadpool"
	"repro/internal/xtrace"
)

// Policy selects the engine's offloading behaviour — the executable subset
// of perfmodel.Strategy.
type Policy struct {
	// AttnOnCPU keeps the KV cache host-resident and computes attention
	// there: no KV traffic, no KV quantization (§3.1 Observation 1).
	AttnOnCPU bool
	// QuantWeights streams layer weights in quantized form, dequantizing on
	// load (Eqs. 3–4).
	QuantWeights bool
	WeightCfg    quant.Config
	// QuantKV stores offloaded KV chunks in quantized form (Eqs. 5–7).
	QuantKV bool
	KVCfg   quant.Config
	// HostF16 stores unquantized host-side tensors (streamed weights, KV
	// chunks) as IEEE half-precision words — the paper's FP16 deployment
	// precision, halving transfer bytes at the cost of FP16 rounding.
	HostF16 bool
	// GPUBatch splits the block into GPU batches of this many sequences,
	// processed one at a time per layer — Algorithm 1's k loop. Zero means
	// the whole block is one batch.
	GPUBatch int
	// ResidentLayers pins the weights of the first N layers in the GPU
	// arena permanently — the functional counterpart of the wg fraction
	// (layer-granular, as real systems place whole matrices).
	ResidentLayers int
	// CompressResident stores the pinned layers in their quantized form
	// (requires QuantWeights), trading a dequantization per use for arena
	// capacity — the functional counterpart of CompressGPUWeights, which is
	// how LM-Offload fits wg=75% of OPT-30B into 40 GB (§5.2).
	CompressResident bool
	// IntraOp is the worker width for tensor operators.
	IntraOp int
	// InterOp co-runs this many independent attention chunks (sequence
	// slices) concurrently within a GPU batch — the engine-level
	// counterpart of §4's inter-op parallelism. Zero or one runs serially.
	InterOp int
	// ActOnCPU keeps hidden activations host-resident between layers
	// (hg = 0): every layer pays the load_activation/store_activation pair
	// of Algorithm 1, with FP16 storage when HostF16 is on.
	ActOnCPU bool
	// Prefetch enables asynchronous task execution: the next layer's
	// weights load while the current layer computes, and KV stores complete
	// in the background (Algorithm 1's overlap).
	Prefetch bool
	// StepTimeout bounds each generation step (prefill or one decode step).
	// A step exceeding it is cancelled, rolled back, and retried — possibly
	// under a degraded policy. Zero disables the deadline.
	StepTimeout time.Duration
	// QuantKernels routes quantized operands through the fused
	// quantized-domain kernels: streamed weights compute via tensor.MatMulQ
	// on their packed blocks and quantized KV history attends via the packed
	// attention path, dequantizing per cache-blocked tile instead of
	// materializing float32 copies. Outputs are bit-identical to the
	// dequantize-first path, so the toggle is numerics-safe and
	// hot-swappable (part of ExecPolicy). A no-op when neither weights nor
	// KV are quantized.
	QuantKernels bool
}

// Validate reports inconsistent policies.
func (p Policy) Validate() error {
	if p.AttnOnCPU && p.QuantKV {
		return fmt.Errorf("runtime: KV quantization is pointless with attention on CPU (the cache never moves)")
	}
	if p.QuantWeights {
		if err := p.WeightCfg.Validate(); err != nil {
			return err
		}
	}
	if p.QuantKV {
		if err := p.KVCfg.Validate(); err != nil {
			return err
		}
	}
	if p.IntraOp < 1 {
		return fmt.Errorf("runtime: intra-op width must be >= 1, got %d", p.IntraOp)
	}
	if p.GPUBatch < 0 {
		return fmt.Errorf("runtime: GPU batch must be >= 0, got %d", p.GPUBatch)
	}
	if p.InterOp < 0 {
		return fmt.Errorf("runtime: inter-op parallelism must be >= 0, got %d", p.InterOp)
	}
	if p.ResidentLayers < 0 {
		return fmt.Errorf("runtime: resident layers must be >= 0, got %d", p.ResidentLayers)
	}
	if p.CompressResident && !p.QuantWeights {
		return fmt.Errorf("runtime: CompressResident requires QuantWeights")
	}
	if p.StepTimeout < 0 {
		return fmt.Errorf("runtime: step timeout must be >= 0, got %v", p.StepTimeout)
	}
	return nil
}

// maxStepAttempts bounds how many times one generation step (prefill or a
// decode step) is attempted before the run fails. Attempts past the second
// each take one rung of the degradation ladder first.
const maxStepAttempts = 6

// Engine executes generation for one model under an offloading policy.
type Engine struct {
	mod      *model.Model
	weights  *WeightStore
	gpu      *Arena
	pool     *threadpool.Pool
	policy   Policy
	stats    *Stats
	resident []*model.LayerWeights // pinned layers (wg's functional analogue)

	// residentBase is the pinned layers' permanent arena footprint;
	// maxStreamBytes is the largest transient per-layer staging buffer any
	// load can claim. Together they parameterize the admission controller's
	// peak-footprint estimate (internal/perfmodel's memory equations).
	residentBase   int64
	maxStreamBytes int64

	faults    *faults.Injector
	retry     RetryConfig
	ckptEvery int // snapshot every N decode steps (0 = off)
	ckptMu    sync.Mutex
	lastCkpt  *Checkpoint

	// tracer is the optional execution-span recorder. It is an atomic
	// pointer so tracing can be enabled or disabled mid-run (including
	// mid-serve) without synchronizing with in-flight steps; a nil pointer
	// (the default) makes every trace site a single atomic load.
	tracer atomic.Pointer[xtrace.Recorder]
}

// NewEngine builds an engine. gpuArenaBytes bounds the simulated device
// memory; pool supplies the compute workers (nil for serial execution).
func NewEngine(m *model.Model, policy Policy, gpuArenaBytes int64, pool *threadpool.Pool) (*Engine, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	arena, err := NewArena("gpu", gpuArenaBytes)
	if err != nil {
		return nil, err
	}
	if policy.ResidentLayers > m.Cfg.Layers {
		return nil, fmt.Errorf("runtime: %d resident layers exceed the model's %d", policy.ResidentLayers, m.Cfg.Layers)
	}
	// NewWeightStore performs the Eq. 3 one-time weight quantization.
	ws, err := NewWeightStore(m.Layers, policy.QuantWeights, policy.WeightCfg, policy.HostF16)
	if err != nil {
		return nil, err
	}
	ws.UsePool(pool, policy.IntraOp)
	e := &Engine{mod: m, weights: ws, gpu: arena, pool: pool, policy: policy, stats: newStats(), retry: DefaultRetryConfig()}
	// Pin the resident layers: the one-time upload claims arena space for
	// the rest of the run. Compressed residency charges only the packed
	// size but leaves the per-use dequantization to loadLayer.
	e.resident = make([]*model.LayerWeights, policy.ResidentLayers)
	for j := 0; j < policy.ResidentLayers; j++ {
		footprint := ws.ResidentBytes(j)
		if policy.CompressResident {
			footprint = ws.TransferBytes(j)
		}
		if err := arena.Alloc(footprint); err != nil {
			return nil, fmt.Errorf("runtime: pinning layer %d: %w", j, err)
		}
		e.residentBase += footprint
		e.stats.addBytes(&e.stats.WeightUpBytes, ws.TransferBytes(j))
		if !policy.CompressResident {
			e.resident[j] = ws.Load(j)
		}
	}
	// The largest transient staging buffer a layer load can claim: streamed
	// layers stage their dequantized resident copy; compressed-resident
	// layers stage the same scratch per use; uncompressed residents never
	// stage.
	for j := 0; j < m.Cfg.Layers; j++ {
		if j < policy.ResidentLayers && !policy.CompressResident {
			continue
		}
		if b := ws.ResidentBytes(j); b > e.maxStreamBytes {
			e.maxStreamBytes = b
		}
	}
	return e, nil
}

// freeGPU releases arena bytes, downgrading an accounting underflow (a
// rollback racing a pipeline drain) to a counted error instead of a crash.
func (e *Engine) freeGPU(n int64) {
	if err := e.gpu.Free(n); err != nil {
		e.stats.addArenaFreeError()
	}
}

// Stats returns the accumulated accounting.
func (e *Engine) Stats() *Stats { return e.stats }

// ArenaUsed returns the GPU arena bytes currently allocated. Outside an
// in-flight step it must be the pinned resident layers' footprint plus any
// live session staging — zero extra, which the serving layer's leak checks
// assert after drain.
func (e *Engine) ArenaUsed() int64 { return e.gpu.Used() }

// ArenaCapacity returns the simulated device pool's byte capacity.
func (e *Engine) ArenaCapacity() int64 { return e.gpu.Capacity() }

// ArenaPeak returns the arena's high-water mark — the actual peak footprint
// the admission controller's estimate is validated against.
func (e *Engine) ArenaPeak() int64 { return e.gpu.Peak() }

// ResidentBaseBytes returns the pinned layers' permanent arena footprint.
func (e *Engine) ResidentBaseBytes() int64 { return e.residentBase }

// MaxStreamLayerBytes returns the largest transient per-layer weight staging
// buffer (dequantized resident size of the biggest streamed layer).
func (e *Engine) MaxStreamLayerBytes() int64 { return e.maxStreamBytes }

// ModelConfig returns the geometry of the model the engine executes.
func (e *Engine) ModelConfig() model.Config { return e.mod.Cfg }

// Policy returns the engine's current policy. Degradation mutates it
// mid-run, so this reflects the policy generation is actually running under.
func (e *Engine) Policy() Policy { return e.policy }

// SetFaultInjector wires a fault injector into every probe site. A nil
// injector (the default) disables injection.
func (e *Engine) SetFaultInjector(inj *faults.Injector) { e.faults = inj }

// SetTracer installs (or, with nil, removes) the execution-span recorder.
// Safe to call while generation or serving is in flight: in-flight tasks
// finish recording into whichever recorder they loaded at task start.
func (e *Engine) SetTracer(r *xtrace.Recorder) { e.tracer.Store(r) }

// Tracer returns the currently installed recorder, or nil.
func (e *Engine) Tracer() *xtrace.Recorder { return e.tracer.Load() }

// task closes out one timed task: it feeds the Stats accounting (always) and
// the span recorder (when installed) with the same task name, so trace
// aggregates and Stats.TaskTime line up key-for-key. With tracing disabled
// the only cost over the bare stats update is one atomic load.
func (e *Engine) task(name, lane string, t0 time.Time, l xtrace.Labels) {
	d := time.Since(t0)
	e.stats.addTask(name, d)
	e.tracer.Load().Record(name, lane, t0, d, l)
}

// trace records a span without touching Stats — for lifecycle intervals
// (decode_step) that are not part of the task-time accounting.
func (e *Engine) trace(name, lane string, t0 time.Time, l xtrace.Labels) {
	if r := e.tracer.Load(); r != nil {
		r.Record(name, lane, t0, time.Since(t0), l)
	}
}

// SetRetryConfig replaces the transient-fault retry policy.
func (e *Engine) SetRetryConfig(rc RetryConfig) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	e.retry = rc
	return nil
}

// EnableCheckpointing snapshots the generation state after prefill and then
// every `every` decode steps; LastCheckpoint returns the most recent
// snapshot. Zero disables checkpointing.
func (e *Engine) EnableCheckpointing(every int) error {
	if every < 0 {
		return fmt.Errorf("runtime: checkpoint interval must be >= 0, got %d", every)
	}
	e.ckptEvery = every
	return nil
}

// LastCheckpoint returns the most recent generation snapshot, or nil.
func (e *Engine) LastCheckpoint() *Checkpoint {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	return e.lastCkpt
}

// genRun is the mutable state of one generation (or resumed generation).
type genRun struct {
	prompts [][]int
	out     [][]int
	current []int // last generated token per sequence
	pos     int   // next token position
	step    int   // next decode step index, in [1, genLen)
	genLen  int
	onStep  func(step int, tokens []int) bool

	// Exactly one of these is non-nil: the host-resident cache when
	// attention runs on CPU, the chunked store when it runs on GPU.
	hostCache *model.KVCache
	kvStore   *KVStore

	start time.Time
}

// runMark is a rollback point: enough state to undo a partially completed
// step's KV appends.
type runMark struct {
	kv   [][]int
	host [][]int
}

func (r *genRun) mark() runMark {
	var m runMark
	if r.kvStore != nil {
		m.kv = r.kvStore.Mark()
	}
	if r.hostCache != nil {
		m.host = r.hostCache.SeqLens()
	}
	return m
}

func (r *genRun) rollback(m runMark) {
	if r.kvStore != nil && m.kv != nil {
		r.kvStore.Rollback(m.kv)
	}
	if r.hostCache != nil && m.host != nil {
		r.hostCache.TruncateTo(m.host)
	}
}

// resetStores installs fresh (empty) KV storage for the run under the
// current policy.
func (e *Engine) resetStores(run *genRun) error {
	cfg := e.mod.Cfg
	batch := len(run.prompts)
	if e.policy.AttnOnCPU {
		run.hostCache = model.NewKVCache(cfg.Layers, batch, cfg.Hidden)
		run.kvStore = nil
		return nil
	}
	st, err := NewKVStore(cfg.Layers, batch, e.policy.QuantKV, e.policy.KVCfg, e.policy.HostF16)
	if err != nil {
		return err
	}
	st.UsePool(e.pool, e.policy.IntraOp)
	st.UseFaults(e.faults)
	run.hostCache, run.kvStore = nil, st
	return nil
}

// Generate runs prefill plus genLen greedy decode steps over the prompt
// batch, returning the generated token IDs per sequence. Cancelling ctx
// stops generation at the next step boundary; the error is ctx.Err() and
// the tokens generated so far are returned.
func (e *Engine) Generate(ctx context.Context, prompts [][]int, genLen int) ([][]int, error) {
	return e.GenerateStream(ctx, prompts, genLen, nil)
}

// GenerateStream is Generate with a per-step callback: after each decode
// step, onStep receives the step index (0-based) and the freshly generated
// token per sequence. Returning false stops generation early; the tokens
// produced so far are returned. A nil callback streams nothing.
func (e *Engine) GenerateStream(ctx context.Context, prompts [][]int, genLen int, onStep func(step int, tokens []int) bool) ([][]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(prompts) == 0 {
		return nil, fmt.Errorf("runtime: empty prompt batch")
	}
	if genLen <= 0 {
		return nil, fmt.Errorf("runtime: generation length must be positive, got %d", genLen)
	}
	run := &genRun{prompts: prompts, genLen: genLen, onStep: onStep, start: time.Now()}
	batch := len(prompts)

	// --- Prefill (FlexGen steps 1.1-1.3), retried from scratch on transient
	// failure: each attempt rebuilds the KV stores, so a partial prefill
	// never leaks into the next try.
	var hidden *tensor.Tensor
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := e.resetStores(run); err != nil {
			return nil, err
		}
		stepCtx, cancel := e.stepContext(ctx)
		t0 := time.Now()
		h, err := e.prefill(stepCtx, run)
		cancel()
		e.task(xtrace.TaskPrefill, xtrace.LaneEngine, t0, xtrace.NoLabels)
		if err == nil {
			hidden = h
			break
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if attempt >= maxStepAttempts {
			return nil, fmt.Errorf("runtime: prefill failed after %d attempts: %w", attempt, err)
		}
		e.stats.addRetry("prefill")
		if attempt >= 2 {
			e.degradeOnce(ctx, run)
		}
	}

	run.out = make([][]int, batch)
	run.current = tensor.ArgmaxRows(e.mod.Logits(e.pool, e.policy.IntraOp, hidden))
	for i := range run.out {
		run.out[i] = append(run.out[i], run.current[i])
	}
	e.stats.mu.Lock()
	e.stats.TokensGenerated += int64(batch)
	e.stats.mu.Unlock()
	run.pos = len(prompts[0])
	run.step = 1
	if e.ckptEvery > 0 {
		e.snapshot(ctx, run)
	}
	if onStep != nil && !onStep(0, run.current) {
		e.stats.WallTime = time.Since(run.start)
		return run.out, nil
	}
	return e.decodeLoop(ctx, run)
}

// decodeLoop advances the run to completion, one decode step at a time.
// Each step is atomic: a failed attempt rolls the KV state back before the
// retry, and retries past the second first take one rung of the degradation
// ladder. Cancellation is honoured at step boundaries.
func (e *Engine) decodeLoop(ctx context.Context, run *genRun) ([][]int, error) {
	stepAttempts := 0
	for run.step < run.genLen {
		if err := ctx.Err(); err != nil {
			e.stats.WallTime = time.Since(run.start)
			return run.out, err
		}
		m := run.mark()
		stepCtx, cancel := e.stepContext(ctx)
		t0 := time.Now()
		next, err := e.decodeStep(stepCtx, run)
		cancel()
		e.trace(xtrace.TaskDecodeStep, xtrace.LaneEngine, t0, xtrace.At(run.step, -1, -1))
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				e.stats.WallTime = time.Since(run.start)
				return run.out, cerr
			}
			run.rollback(m)
			stepAttempts++
			if stepAttempts >= maxStepAttempts {
				e.stats.WallTime = time.Since(run.start)
				return nil, fmt.Errorf("runtime: decode step %d failed after %d attempts: %w", run.step, stepAttempts, err)
			}
			e.stats.addRetry("decode_step")
			if stepAttempts >= 2 {
				e.degradeOnce(ctx, run)
			}
			continue
		}
		stepAttempts = 0
		run.current = next
		run.pos++
		for i := range run.out {
			run.out[i] = append(run.out[i], next[i])
		}
		e.stats.mu.Lock()
		e.stats.TokensGenerated += int64(len(next))
		e.stats.mu.Unlock()
		step := run.step
		run.step++
		if e.ckptEvery > 0 && run.step%e.ckptEvery == 0 {
			e.snapshot(ctx, run)
		}
		if run.onStep != nil && !run.onStep(step, next) {
			break
		}
	}
	e.stats.WallTime = time.Since(run.start)
	return run.out, nil
}

// stepContext derives the per-step deadline context.
func (e *Engine) stepContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.policy.StepTimeout > 0 {
		return context.WithTimeout(ctx, e.policy.StepTimeout)
	}
	return ctx, func() {}
}

// degradeOnce takes the next rung of the degradation ladder, trading
// throughput for survivability after repeated step failures: first drop the
// overlap (prefetch pipelines are the most fault-exposed machinery), then
// shrink the GPU batch (halving the peak arena footprint under memory
// pressure), and finally migrate the KV cache to the host and keep attention
// there — after which no KV bytes cross the faulty interconnect at all.
func (e *Engine) degradeOnce(ctx context.Context, run *genRun) {
	switch {
	case e.policy.Prefetch:
		e.policy.Prefetch = false
		e.stats.addDegradation("prefetch-off")
	case run.kvStore != nil && len(run.prompts) > 1 && e.policy.GPUBatch != 1:
		nb := e.policy.GPUBatch
		if nb <= 0 || nb > len(run.prompts) {
			nb = len(run.prompts)
		}
		nb /= 2
		if nb < 1 {
			nb = 1
		}
		e.policy.GPUBatch = nb
		e.stats.addDegradation(fmt.Sprintf("gpu-batch=%d", nb))
	case run.kvStore != nil:
		if err := e.migrateToHost(ctx, run); err != nil {
			e.stats.addDegradation("attn-on-cpu(migration failed)")
			return
		}
		e.policy.AttnOnCPU = true
		e.policy.QuantKV = false
		e.stats.addDegradation("attn-on-cpu")
	}
}

// migrateToHost converts the chunked KV store into a host-resident cache so
// subsequent steps compute attention on the CPU (the AttnOnCPU fallback).
func (e *Engine) migrateToHost(ctx context.Context, run *genRun) error {
	hc, err := e.fetchAllToHost(ctx, run.kvStore, len(run.prompts))
	if err != nil {
		return err
	}
	run.hostCache, run.kvStore = hc, nil
	return nil
}

// fetchAllToHost drains a chunked KV store into a host-resident cache,
// fetching (and dequantizing) every slot with transient-fault retry — the
// bulk move behind the attn-on-cpu degradation rung, shared by the offline
// run and the serving session.
func (e *Engine) fetchAllToHost(ctx context.Context, kvStore *KVStore, batch int) (*model.KVCache, error) {
	cfg := e.mod.Cfg
	hc := model.NewKVCache(cfg.Layers, batch, cfg.Hidden)
	for l := 0; l < cfg.Layers; l++ {
		for s := 0; s < batch; s++ {
			var k, v *tensor.Tensor
			err := e.withRetry(ctx, "kv_migrate", func() error {
				var ferr error
				k, v, _, ferr = kvStore.Fetch(l, s)
				return ferr
			})
			if err != nil {
				return nil, err
			}
			if k != nil {
				hc.SetKV(l, s, k, v)
			}
		}
	}
	return hc, nil
}

// prefill runs the prompt through every layer with the same streamed-weight
// machinery the decode loop uses: load layer j's weights (1.1), compute
// attention and MLP on the "GPU" (1.2), and offload the layer's KV cache to
// host storage (1.3). It returns the last-position hidden state per
// sequence.
func (e *Engine) prefill(ctx context.Context, run *genRun) (hidden *tensor.Tensor, err error) {
	defer recoverAsError(&err)
	cfg := e.mod.Cfg
	prompts := run.prompts
	batch := len(prompts)
	s := len(prompts[0])
	x := make([]*tensor.Tensor, batch)
	for i, p := range prompts {
		if len(p) != s {
			return nil, fmt.Errorf("runtime: ragged prompt lengths %d and %d", s, len(p))
		}
		x[i] = e.mod.Embed(p, 0)
	}
	e.stats.addBytes(&e.stats.ActUpBytes, int64(batch*s*cfg.Hidden)*4)

	// Prefill computes into a live cache; with GPU attention the layer's KV
	// is offloaded (and the live copy dropped) as soon as the layer is done.
	live := run.hostCache
	if live == nil {
		live = model.NewKVCache(cfg.Layers, batch, cfg.Hidden)
	}

	pipe := e.newLoadPipeline(ctx)
	defer pipe.drain()
	if e.policy.Prefetch {
		pipe.start(0)
	}
	for j := 0; j < cfg.Layers; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var ll loadedLayer
		if e.policy.Prefetch {
			ll = pipe.take()
			if j+1 < cfg.Layers {
				pipe.start(j + 1)
			}
		} else {
			ll = e.loadLayer(ctx, j)
		}
		if ll.err != nil {
			return nil, fmt.Errorf("runtime: prefill layer %d: %w", j, ll.err)
		}

		t0 := time.Now()
		model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, live, j, 0, x)
		for i := range x {
			model.MLP(e.pool, e.policy.IntraOp, cfg, ll.weights, x[i])
		}
		e.task(xtrace.TaskCompute, xtrace.LaneGPU, t0, xtrace.At(-1, j, -1))
		e.freeGPU(ll.resident)

		if run.kvStore != nil {
			// Step 1.3: offload this layer's KV, quantized when enabled
			// (Eq. 5), and release the live copy. storeChunk times each
			// chunk's store_cache (and quant_kv) itself.
			for seq := 0; seq < batch; seq++ {
				if err := e.storeChunk(ctx, run.kvStore, j, seq, live.Keys(j, seq), live.Values(j, seq)); err != nil {
					return nil, err
				}
				live.SetKV(j, seq, nil, nil)
			}
		}
	}

	hidden = tensor.New(batch, cfg.Hidden)
	for i, xs := range x {
		copy(hidden.Row(i), xs.Row(s-1))
	}
	return hidden, nil
}

// storeChunk performs one store_cache transfer with fault probes and retry.
// Each attempt is timed individually (so retry backoff never inflates the
// task time), with a nested quant_kv span over the Eq. 20–23 quantize+pack
// when KV quantization is on.
func (e *Engine) storeChunk(ctx context.Context, kvStore *KVStore, layer, seq int, k, v *tensor.Tensor) error {
	return e.withRetry(ctx, "store_cache", func() error {
		t0 := time.Now()
		defer func() { e.task(xtrace.TaskStoreKV, xtrace.LaneKVDown, t0, xtrace.At(-1, layer, seq)) }()
		if err := e.stallOrFail(ctx, faults.KVTransfer); err != nil {
			return err
		}
		rec := e.tracer.Load()
		var tq time.Time
		if rec != nil && e.policy.QuantKV {
			tq = time.Now()
		}
		n, err := kvStore.Append(layer, seq, k, v)
		if err != nil {
			return err
		}
		if e.policy.QuantKV {
			if rec != nil {
				rec.Record(xtrace.TaskQuantKV, xtrace.LaneKVDown, tq, time.Since(tq), xtrace.At(-1, layer, seq))
			}
			e.stats.addOps(2, 0)
		}
		e.stats.addBytes(&e.stats.KVDownBytes, n)
		return nil
	})
}

// loadedLayer is a weight buffer staged into the GPU arena.
type loadedLayer struct {
	weights  *model.LayerWeights
	resident int64
	err      error
}

// loadPipeline overlaps the next layer's load_weight with the current
// layer's compute. At most one load is outstanding; drain must run before
// the owner returns so an abandoned in-flight load cannot leak its arena
// reservation (or its goroutine).
type loadPipeline struct {
	e       *Engine
	ctx     context.Context
	ch      chan loadedLayer
	pending bool
}

func (e *Engine) newLoadPipeline(ctx context.Context) *loadPipeline {
	return &loadPipeline{e: e, ctx: ctx, ch: make(chan loadedLayer, 1)}
}

func (p *loadPipeline) start(j int) {
	p.pending = true
	go func() { p.ch <- p.e.loadLayer(p.ctx, j) }()
}

func (p *loadPipeline) take() loadedLayer {
	ll := <-p.ch
	p.pending = false
	return ll
}

func (p *loadPipeline) drain() {
	if p.pending {
		ll := <-p.ch
		p.e.freeGPU(ll.resident)
		p.pending = false
	}
}

// loadLayer performs the load_weight task with transient-fault retry:
// charge the transfer, allocate the resident (dequantized) buffer, and
// materialize the tensors.
func (e *Engine) loadLayer(ctx context.Context, j int) loadedLayer {
	var out loadedLayer
	err := e.withRetry(ctx, "load_weight", func() error {
		out = e.loadLayerOnce(ctx, j)
		return out.err
	})
	if err != nil {
		return loadedLayer{err: err}
	}
	return out
}

// loadLayerOnce is one load_weight attempt, with the weight-transfer and
// memory-pressure fault probes. A panic during dequantization (e.g. an
// injected worker panic) is recovered into the returned error.
func (e *Engine) loadLayerOnce(ctx context.Context, j int) (out loadedLayer) {
	defer func() {
		if r := recover(); r != nil {
			e.freeGPU(out.resident)
			out = loadedLayer{err: panicAsError(r)}
		}
	}()
	// Pinned layers never move: no transfer. Compressed residents still pay
	// a dequantization per use (into transient arena space); uncompressed
	// residents are served directly.
	if j < len(e.resident) {
		if !e.policy.CompressResident {
			return loadedLayer{weights: e.resident[j]}
		}
		t0 := time.Now()
		defer func() { e.task(xtrace.TaskLoadWgt, xtrace.LaneWeights, t0, xtrace.At(-1, j, -1)) }()
		scratch := e.weights.ResidentBytes(j)
		if err := e.allocGPU(scratch); err != nil {
			return loadedLayer{err: err}
		}
		lw := e.loadWeightsTraced(j)
		if !e.policy.QuantKernels {
			e.stats.addOps(0, 6)
		}
		return loadedLayer{weights: lw, resident: scratch}
	}
	t0 := time.Now()
	defer func() { e.task(xtrace.TaskLoadWgt, xtrace.LaneWeights, t0, xtrace.At(-1, j, -1)) }()
	if err := e.stallOrFail(ctx, faults.WeightTransfer); err != nil {
		return loadedLayer{err: err}
	}
	resident := e.weights.ResidentBytes(j)
	if err := e.allocGPU(resident); err != nil {
		return loadedLayer{err: err}
	}
	e.stats.addBytes(&e.stats.WeightUpBytes, e.weights.TransferBytes(j))
	lw := e.loadWeightsTraced(j)
	if e.weights.Quantized() && !e.policy.QuantKernels {
		e.stats.addOps(0, 6) // six matrices dequantized
	}
	return loadedLayer{weights: lw, resident: resident}
}

// loadWeightsTraced materializes layer j's weights, recording the Eq. 12–16
// dequantization as a dequant_weight span (nested in the enclosing
// load_weight span) when the store is quantized and tracing is on. Under
// the QuantKernels policy the packed blocks are staged as-is for the fused
// kernels: no dequantization happens, so no span is recorded and the model
// folds the work into the compute term instead.
func (e *Engine) loadWeightsTraced(j int) *model.LayerWeights {
	if e.policy.QuantKernels && e.weights.Quantized() {
		return e.weights.LoadPacked(j)
	}
	rec := e.tracer.Load()
	if rec == nil || !e.weights.Quantized() {
		return e.weights.Load(j)
	}
	t0 := time.Now()
	lw := e.weights.Load(j)
	rec.Record(xtrace.TaskDequantWgt, xtrace.LaneWeights, t0, time.Since(t0), xtrace.At(-1, j, -1))
	return lw
}

// allocGPU claims arena space, first probing the memory-pressure fault site
// (a transient allocation failure under co-tenant pressure).
func (e *Engine) allocGPU(n int64) error {
	if err := e.faults.Fail(faults.MemPressure); err != nil {
		return err
	}
	return e.gpu.Alloc(n)
}

// decodeStep advances every sequence by one token through all layers, with
// the six tasks of Algorithm 1 overlapped when Prefetch is on. Any panic
// escaping the compute path (including recovered worker panics rethrown by
// the pool) is converted into the returned error so the caller can roll the
// step back and retry.
func (e *Engine) decodeStep(ctx context.Context, run *genRun) (next []int, err error) {
	defer recoverAsError(&err)
	cfg := e.mod.Cfg
	tokens := run.current
	batch := len(tokens)

	// Embed the current tokens (the load_activation task's payload).
	x := make([]*tensor.Tensor, batch)
	actBytes := int64(batch) * int64(cfg.Hidden) * 4
	e.stats.addBytes(&e.stats.ActUpBytes, actBytes)
	for i, tok := range tokens {
		x[i] = e.mod.Embed([]int{tok}, run.pos)
	}

	// Weight prefetch pipeline (asynchronous load_weight of layer j+1).
	pipe := e.newLoadPipeline(ctx)
	defer pipe.drain()
	if e.policy.Prefetch {
		pipe.start(0)
	}

	for j := 0; j < cfg.Layers; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var ll loadedLayer
		if e.policy.Prefetch {
			ll = pipe.take()
			if j+1 < cfg.Layers {
				pipe.start(j + 1)
			}
		} else {
			ll = e.loadLayer(ctx, j)
		}
		if ll.err != nil {
			return nil, fmt.Errorf("runtime: layer %d: %w", j, ll.err)
		}

		e.loadActivations(x)
		if err := e.computeLayer(ctx, run, j, ll.weights, x); err != nil {
			e.freeGPU(ll.resident)
			return nil, err
		}
		e.storeActivations(x)
		e.freeGPU(ll.resident)
		// synchronize() — Algorithm 1 line 18 — is implicit: computeLayer
		// waits for its background stores before returning.
	}

	t0 := time.Now()
	logits := e.mod.Logits(e.pool, e.policy.IntraOp, rowsOf(x, cfg.Hidden))
	next = tensor.ArgmaxRows(logits)
	// Layer -1 marks the logits projection so per-layer aggregation can
	// separate it from transformer-block compute.
	e.task(xtrace.TaskCompute, xtrace.LaneGPU, t0, xtrace.NoLabels)
	e.stats.addBytes(&e.stats.ActDownBytes, actBytes)
	return next, nil
}

// fetchedKV is one GPU batch's reconstructed KV slice, staged into the
// arena by the load_cache task.
type fetchedKV struct {
	cache   *model.KVCache
	fetched int64
	err     error
}

// kvPipeline overlaps the next GPU batch's load_cache with the current
// batch's compute, with the same drain discipline as loadPipeline.
type kvPipeline struct {
	e       *Engine
	ch      chan fetchedKV
	pending bool
}

func (p *kvPipeline) take() fetchedKV {
	kv := <-p.ch
	p.pending = false
	return kv
}

func (p *kvPipeline) drain() {
	if p.pending {
		kv := <-p.ch
		p.e.freeGPU(kv.fetched)
		p.pending = false
	}
}

// loadCacheBatch performs the load_cache task for the sequences
// [seqBase, seqBase+batch) with transient-fault retry: fetch (and
// dequantize) every chunk, verify checksums, charge the arena, and return
// the staged cache slice.
func (e *Engine) loadCacheBatch(ctx context.Context, kvStore *KVStore, j, seqBase, batch int) fetchedKV {
	var out fetchedKV
	rerr := e.withRetry(ctx, "load_cache", func() error {
		out = e.loadCacheOnce(ctx, kvStore, j, seqBase, batch)
		if out.err != nil {
			e.freeGPU(out.fetched)
			ferr := out.err
			out = fetchedKV{}
			return ferr
		}
		return nil
	})
	if rerr != nil {
		return fetchedKV{err: rerr}
	}
	return out
}

// loadCacheOnce is one load_cache attempt, probing the KV-transfer fault
// site and verifying chunk checksums via the store.
func (e *Engine) loadCacheOnce(ctx context.Context, kvStore *KVStore, j, seqBase, batch int) (out fetchedKV) {
	defer func() {
		if r := recover(); r != nil {
			e.freeGPU(out.fetched)
			out = fetchedKV{err: panicAsError(r)}
		}
	}()
	t0 := time.Now()
	defer func() { e.task(xtrace.TaskLoadKV, xtrace.LaneKVUp, t0, xtrace.At(-1, j, seqBase)) }()
	cfg := e.mod.Cfg
	out = fetchedKV{cache: model.NewKVCache(cfg.Layers, seqBase+batch, cfg.Hidden)}
	if err := e.stallOrFail(ctx, faults.KVTransfer); err != nil {
		out.err = err
		return out
	}
	if e.policy.QuantKernels {
		// Fused path: quantized chunks stage as packed views for the
		// quantized-domain attention kernels — verified but never
		// dequantized, so there is no dequant_kv span to record. The arena
		// charge stays in dequantized-equivalent terms so admission
		// estimates and peak tracking are invariant under the toggle.
		for s := 0; s < batch; s++ {
			chunks, rows, bytes, err := kvStore.FetchPacked(j, seqBase+s)
			e.stats.addBytes(&e.stats.KVUpBytes, bytes)
			if err != nil {
				out.err = err
				return out
			}
			if rows > 0 {
				kb := int64(rows) * int64(cfg.Hidden) * 4 * 2
				if err := e.allocGPU(kb); err != nil {
					out.err = err
					return out
				}
				out.fetched += kb
				out.cache.SetPacked(j, seqBase+s, chunks)
			}
		}
		return out
	}
	// The dequant_kv span (Eqs. 12–16 applied to the old cache) carries only
	// the time spent inside the dequantization kernels, as reported by
	// FetchTimed — transfer accounting, checksum verification, and arena
	// staging stay outside it so trace attribution cannot over-credit
	// dequantization.
	rec := e.tracer.Load()
	var td time.Time
	var dequant time.Duration
	if rec != nil && e.policy.QuantKV {
		td = time.Now()
	}
	for s := 0; s < batch; s++ {
		k, v, bytes, d, err := kvStore.FetchTimed(j, seqBase+s)
		dequant += d
		e.stats.addBytes(&e.stats.KVUpBytes, bytes)
		if err != nil {
			out.err = err
			return out
		}
		if e.policy.QuantKV {
			e.stats.addOps(0, 2*int64(kvStore.ChunkCount(j, seqBase+s)))
		}
		if k != nil {
			kb := k.Bytes() + v.Bytes()
			if err := e.allocGPU(kb); err != nil {
				out.err = err
				return out
			}
			out.fetched += kb
			out.cache.SetKV(j, seqBase+s, k, v)
		}
	}
	if rec != nil && e.policy.QuantKV {
		rec.Record(xtrace.TaskDequantKV, xtrace.LaneKVUp, td, dequant, xtrace.At(-1, j, seqBase))
	}
	return out
}

// computeLayer runs one layer's attention and MLP using the staged weights
// lw, iterating the block's GPU batches one at a time (Algorithm 1's k
// loop). Under Prefetch, batch k+1's load_cache runs while batch k computes
// (Algorithm 1 lines 11-13).
func (e *Engine) computeLayer(ctx context.Context, run *genRun, j int, lw *model.LayerWeights, x []*tensor.Tensor) error {
	kvStore := run.kvStore
	blockSize := len(x)
	gpuBatch := e.policy.GPUBatch
	if gpuBatch <= 0 || gpuBatch > blockSize {
		gpuBatch = blockSize
	}

	// Batch boundaries.
	type span struct{ lo, hi int }
	var spans []span
	for base := 0; base < blockSize; base += gpuBatch {
		hi := base + gpuBatch
		if hi > blockSize {
			hi = blockSize
		}
		spans = append(spans, span{base, hi})
	}

	async := e.policy.Prefetch && kvStore != nil
	var pipe *kvPipeline
	if async {
		pipe = &kvPipeline{e: e, ch: make(chan fetchedKV, 1)}
		defer pipe.drain()
		sp := spans[0]
		pipe.pending = true
		go func() { pipe.ch <- e.loadCacheBatch(ctx, kvStore, j, sp.lo, sp.hi-sp.lo) }()
	}
	for i, sp := range spans {
		var kv fetchedKV
		switch {
		case async:
			kv = pipe.take()
			if i+1 < len(spans) {
				nsp := spans[i+1]
				pipe.pending = true
				go func() { pipe.ch <- e.loadCacheBatch(ctx, kvStore, j, nsp.lo, nsp.hi-nsp.lo) }()
			}
		case kvStore != nil:
			kv = e.loadCacheBatch(ctx, kvStore, j, sp.lo, sp.hi-sp.lo)
		}
		if kv.err != nil {
			return kv.err
		}
		if err := e.computeBatch(ctx, run, j, sp.lo, lw, x[sp.lo:sp.hi], kv); err != nil {
			return err
		}
	}
	return nil
}

// computeBatch runs one (layer, GPU batch) iteration: compute and
// store_cache for the sequences [seqBase, seqBase+len(x)), using the staged
// KV slice kv when attention runs on the GPU.
func (e *Engine) computeBatch(ctx context.Context, run *genRun, j, seqBase int, lw *model.LayerWeights, x []*tensor.Tensor, kv fetchedKV) error {
	cfg := e.mod.Cfg
	batch := len(x)
	kvStore := run.kvStore

	cache := run.hostCache
	fetched := kv.fetched
	if kvStore != nil {
		cache = kv.cache
	}

	if err := e.probeWorkerPanic(); err != nil {
		e.freeGPU(fetched)
		return err
	}
	t0 := time.Now()
	outAttn, err := e.runAttention(cfg, lw, cache, j, seqBase, x)
	if err != nil {
		e.freeGPU(fetched)
		return err
	}
	for i := range x {
		model.MLP(e.pool, e.policy.IntraOp, cfg, lw, x[i])
	}
	e.task(xtrace.TaskCompute, xtrace.LaneGPU, t0, xtrace.At(-1, j, seqBase))

	if kvStore != nil {
		// store_cache: persist the new rows (quantized when enabled). Stores
		// complete before the layer's synchronize() (Algorithm 1 line 18);
		// storeChunk times each chunk itself.
		for s := 0; s < batch; s++ {
			if err := e.storeChunk(ctx, kvStore, j, seqBase+s, outAttn.NewK[s], outAttn.NewV[s]); err != nil {
				e.freeGPU(fetched)
				return err
			}
		}
		e.freeGPU(fetched)
	}
	return nil
}

// probeWorkerPanic fires the worker-panic fault site inside a pool worker so
// the whole recovery chain runs: the pool recovers the panic, rethrows it on
// the submitting goroutine, and this probe converts it into an error the
// step retry handles.
func (e *Engine) probeWorkerPanic() (err error) {
	if !e.faults.Enabled(faults.WorkerPanic) {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = panicAsError(r)
		}
	}()
	if e.pool != nil && e.pool.Size() >= 2 {
		e.pool.ParallelFor(2, 2, func(i int) {
			if i == 0 {
				e.faults.MaybePanic(faults.WorkerPanic)
			}
		})
	} else {
		e.faults.MaybePanic(faults.WorkerPanic)
	}
	return nil
}

// recoverAsError converts a panic into the caller's returned error. Worker
// panics arrive as *threadpool.PanicError and keep their identity for
// errors.As; anything else is wrapped.
func recoverAsError(err *error) {
	if r := recover(); r != nil {
		*err = panicAsError(r)
	}
}

func panicAsError(r any) error {
	if pe, ok := r.(*threadpool.PanicError); ok {
		return pe
	}
	return fmt.Errorf("runtime: recovered panic: %v", r)
}

// loadActivations performs the load_activation task when activations live
// on the host: the hidden states cross to the "GPU" (through FP16 rounding
// when HostF16 is on) before the layer computes.
func (e *Engine) loadActivations(x []*tensor.Tensor) {
	if !e.policy.ActOnCPU {
		return
	}
	t0 := time.Now()
	var bytes int64
	for _, xs := range x {
		if e.policy.HostF16 {
			h := tensor.ToF16(xs)
			bytes += h.Bytes()
			copy(xs.Data(), h.ToFloat32().Data())
		} else {
			bytes += xs.Bytes()
		}
	}
	e.stats.addBytes(&e.stats.ActUpBytes, bytes)
	e.task(xtrace.TaskLoadAct, xtrace.LaneActUp, t0, xtrace.NoLabels)
}

// storeActivations performs the store_activation task: the layer's output
// hidden states return to host memory.
func (e *Engine) storeActivations(x []*tensor.Tensor) {
	if !e.policy.ActOnCPU {
		return
	}
	t0 := time.Now()
	var bytes int64
	for _, xs := range x {
		if e.policy.HostF16 {
			bytes += int64(xs.Numel()) * 2
		} else {
			bytes += xs.Bytes()
		}
	}
	e.stats.addBytes(&e.stats.ActDownBytes, bytes)
	e.task(xtrace.TaskStoreAct, xtrace.LaneActDown, t0, xtrace.NoLabels)
}

// runAttention executes one layer's attention over the batch, co-running
// independent sequence chunks when inter-op parallelism is enabled.
// Sequences own disjoint cache slots and hidden tensors, so chunked
// execution is bit-identical to serial execution regardless of scheduling
// order.
func (e *Engine) runAttention(cfg model.Config, lw *model.LayerWeights, cache *model.KVCache, j, seqBase int, x []*tensor.Tensor) (model.AttentionOutput, error) {
	interOp := e.policy.InterOp
	if interOp <= 1 || e.pool == nil || len(x) < 2 {
		return model.AttentionAt(e.pool, e.policy.IntraOp, cfg, lw, cache, j, seqBase, x), nil
	}
	if interOp > len(x) {
		interOp = len(x)
	}
	out := model.AttentionOutput{
		Hidden: tensor.New(len(x), cfg.Hidden),
		NewK:   make([]*tensor.Tensor, len(x)),
		NewV:   make([]*tensor.Tensor, len(x)),
	}
	sched, err := threadpool.NewInterOp(e.pool, interOp)
	if err != nil {
		return out, err
	}
	chunk := (len(x) + interOp - 1) / interOp
	for lo := 0; lo < len(x); lo += chunk {
		hi := lo + chunk
		if hi > len(x) {
			hi = len(x)
		}
		lo, hi := lo, hi
		sched.Submit(threadpool.Op{
			Name:  fmt.Sprintf("attn[%d:%d]", lo, hi),
			Width: e.policy.IntraOp,
			Run: func(pool *threadpool.Pool, width int) {
				part := model.AttentionAt(pool, width, cfg, lw, cache, j, seqBase+lo, x[lo:hi])
				copy(out.NewK[lo:hi], part.NewK)
				copy(out.NewV[lo:hi], part.NewV)
				for i := 0; i < hi-lo; i++ {
					copy(out.Hidden.Row(lo+i), part.Hidden.Row(i))
				}
			},
		})
	}
	if err := sched.Wait(); err != nil {
		return out, err
	}
	return out, nil
}

// rowsOf stacks per-sequence [1, hidden] tensors into one [batch, hidden]
// tensor for the logits projection.
func rowsOf(x []*tensor.Tensor, hidden int) *tensor.Tensor {
	out := tensor.New(len(x), hidden)
	for i, xi := range x {
		copy(out.Row(i), xi.Row(0))
	}
	return out
}

func len64[T any](s []T) int64 { return int64(len(s)) }
