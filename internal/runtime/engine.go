package runtime

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// Policy selects the engine's offloading behaviour — the executable subset
// of perfmodel.Strategy.
type Policy struct {
	// AttnOnCPU keeps the KV cache host-resident and computes attention
	// there: no KV traffic, no KV quantization (§3.1 Observation 1).
	AttnOnCPU bool
	// QuantWeights streams layer weights in quantized form, dequantizing on
	// load (Eqs. 3–4).
	QuantWeights bool
	WeightCfg    quant.Config
	// QuantKV stores offloaded KV chunks in quantized form (Eqs. 5–7).
	QuantKV bool
	KVCfg   quant.Config
	// HostF16 stores unquantized host-side tensors (streamed weights, KV
	// chunks) as IEEE half-precision words — the paper's FP16 deployment
	// precision, halving transfer bytes at the cost of FP16 rounding.
	HostF16 bool
	// GPUBatch splits the block into GPU batches of this many sequences,
	// processed one at a time per layer — Algorithm 1's k loop. Zero means
	// the whole block is one batch.
	GPUBatch int
	// ResidentLayers pins the weights of the first N layers in the GPU
	// arena permanently — the functional counterpart of the wg fraction
	// (layer-granular, as real systems place whole matrices).
	ResidentLayers int
	// CompressResident stores the pinned layers in their quantized form
	// (requires QuantWeights), trading a dequantization per use for arena
	// capacity — the functional counterpart of CompressGPUWeights, which is
	// how LM-Offload fits wg=75% of OPT-30B into 40 GB (§5.2).
	CompressResident bool
	// IntraOp is the worker width for tensor operators.
	IntraOp int
	// InterOp co-runs this many independent attention chunks (sequence
	// slices) concurrently within a GPU batch — the engine-level
	// counterpart of §4's inter-op parallelism. Zero or one runs serially.
	InterOp int
	// ActOnCPU keeps hidden activations host-resident between layers
	// (hg = 0): every layer pays the load_activation/store_activation pair
	// of Algorithm 1, with FP16 storage when HostF16 is on.
	ActOnCPU bool
	// Prefetch enables asynchronous task execution: the next layer's
	// weights load while the current layer computes, and KV stores complete
	// in the background (Algorithm 1's overlap).
	Prefetch bool
}

// Validate reports inconsistent policies.
func (p Policy) Validate() error {
	if p.AttnOnCPU && p.QuantKV {
		return fmt.Errorf("runtime: KV quantization is pointless with attention on CPU (the cache never moves)")
	}
	if p.QuantWeights {
		if err := p.WeightCfg.Validate(); err != nil {
			return err
		}
	}
	if p.QuantKV {
		if err := p.KVCfg.Validate(); err != nil {
			return err
		}
	}
	if p.IntraOp < 1 {
		return fmt.Errorf("runtime: intra-op width must be >= 1, got %d", p.IntraOp)
	}
	if p.GPUBatch < 0 {
		return fmt.Errorf("runtime: GPU batch must be >= 0, got %d", p.GPUBatch)
	}
	if p.InterOp < 0 {
		return fmt.Errorf("runtime: inter-op parallelism must be >= 0, got %d", p.InterOp)
	}
	if p.ResidentLayers < 0 {
		return fmt.Errorf("runtime: resident layers must be >= 0, got %d", p.ResidentLayers)
	}
	if p.CompressResident && !p.QuantWeights {
		return fmt.Errorf("runtime: CompressResident requires QuantWeights")
	}
	return nil
}

// Engine executes generation for one model under an offloading policy.
type Engine struct {
	mod      *model.Model
	weights  *WeightStore
	gpu      *Arena
	pool     *threadpool.Pool
	policy   Policy
	stats    *Stats
	resident []*model.LayerWeights // pinned layers (wg's functional analogue)
}

// NewEngine builds an engine. gpuArenaBytes bounds the simulated device
// memory; pool supplies the compute workers (nil for serial execution).
func NewEngine(m *model.Model, policy Policy, gpuArenaBytes int64, pool *threadpool.Pool) (*Engine, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	arena, err := NewArena("gpu", gpuArenaBytes)
	if err != nil {
		return nil, err
	}
	if policy.ResidentLayers > m.Cfg.Layers {
		return nil, fmt.Errorf("runtime: %d resident layers exceed the model's %d", policy.ResidentLayers, m.Cfg.Layers)
	}
	// NewWeightStore performs the Eq. 3 one-time weight quantization.
	ws, err := NewWeightStore(m.Layers, policy.QuantWeights, policy.WeightCfg, policy.HostF16)
	if err != nil {
		return nil, err
	}
	ws.UsePool(pool, policy.IntraOp)
	e := &Engine{mod: m, weights: ws, gpu: arena, pool: pool, policy: policy, stats: newStats()}
	// Pin the resident layers: the one-time upload claims arena space for
	// the rest of the run. Compressed residency charges only the packed
	// size but leaves the per-use dequantization to loadLayer.
	e.resident = make([]*model.LayerWeights, policy.ResidentLayers)
	for j := 0; j < policy.ResidentLayers; j++ {
		footprint := ws.ResidentBytes(j)
		if policy.CompressResident {
			footprint = ws.TransferBytes(j)
		}
		if err := arena.Alloc(footprint); err != nil {
			return nil, fmt.Errorf("runtime: pinning layer %d: %w", j, err)
		}
		e.stats.addBytes(&e.stats.WeightUpBytes, ws.TransferBytes(j))
		if !policy.CompressResident {
			e.resident[j] = ws.Load(j)
		}
	}
	return e, nil
}

// Stats returns the accumulated accounting.
func (e *Engine) Stats() *Stats { return e.stats }

// Generate runs prefill plus genLen greedy decode steps over the prompt
// batch, returning the generated token IDs per sequence.
func (e *Engine) Generate(prompts [][]int, genLen int) ([][]int, error) {
	return e.GenerateStream(prompts, genLen, nil)
}

// GenerateStream is Generate with a per-step callback: after each decode
// step, onStep receives the step index (0-based) and the freshly generated
// token per sequence. Returning false stops generation early; the tokens
// produced so far are returned. A nil callback streams nothing.
func (e *Engine) GenerateStream(prompts [][]int, genLen int, onStep func(step int, tokens []int) bool) ([][]int, error) {
	if len(prompts) == 0 {
		return nil, fmt.Errorf("runtime: empty prompt batch")
	}
	if genLen <= 0 {
		return nil, fmt.Errorf("runtime: generation length must be positive, got %d", genLen)
	}
	start := time.Now()
	cfg := e.mod.Cfg
	batch := len(prompts)

	// Host-side KV: the persistent cache when attention stays on CPU, or
	// the chunked (possibly quantized) store when attention runs on GPU.
	var hostCache *model.KVCache
	var kvStore *KVStore
	if e.policy.AttnOnCPU {
		hostCache = model.NewKVCache(cfg.Layers, batch, cfg.Hidden)
	} else {
		var err error
		kvStore, err = NewKVStore(cfg.Layers, batch, e.policy.QuantKV, e.policy.KVCfg, e.policy.HostF16)
		if err != nil {
			return nil, err
		}
		kvStore.UsePool(e.pool, e.policy.IntraOp)
	}

	// --- Prefill (FlexGen steps 1.1-1.3): layer-major with streamed
	// weights, offloading each layer's freshly computed KV before moving on.
	t0 := time.Now()
	hidden, err := e.prefill(hostCache, kvStore, prompts)
	if err != nil {
		return nil, err
	}
	e.stats.addTask("prefill", time.Since(t0))

	out := make([][]int, batch)
	current := tensor.ArgmaxRows(e.mod.Logits(e.pool, e.policy.IntraOp, hidden))
	for i := range out {
		out[i] = append(out[i], current[i])
	}
	e.stats.mu.Lock()
	e.stats.TokensGenerated += int64(batch)
	e.stats.mu.Unlock()
	if onStep != nil && !onStep(0, current) {
		e.stats.WallTime = time.Since(start)
		return out, nil
	}

	pos := len(prompts[0])
	for step := 1; step < genLen; step++ {
		next, err := e.decodeStep(hostCache, kvStore, current, pos)
		if err != nil {
			return nil, err
		}
		current = next
		pos++
		for i := range out {
			out[i] = append(out[i], current[i])
		}
		e.stats.mu.Lock()
		e.stats.TokensGenerated += int64(batch)
		e.stats.mu.Unlock()
		if onStep != nil && !onStep(step, current) {
			break
		}
	}
	e.stats.WallTime = time.Since(start)
	return out, nil
}

// prefill runs the prompt through every layer with the same streamed-weight
// machinery the decode loop uses: load layer j's weights (1.1), compute
// attention and MLP on the "GPU" (1.2), and offload the layer's KV cache to
// host storage (1.3). It returns the last-position hidden state per
// sequence.
func (e *Engine) prefill(hostCache *model.KVCache, kvStore *KVStore, prompts [][]int) (*tensor.Tensor, error) {
	cfg := e.mod.Cfg
	batch := len(prompts)
	s := len(prompts[0])
	x := make([]*tensor.Tensor, batch)
	for i, p := range prompts {
		if len(p) != s {
			return nil, fmt.Errorf("runtime: ragged prompt lengths %d and %d", s, len(p))
		}
		x[i] = e.mod.Embed(p, 0)
	}
	e.stats.addBytes(&e.stats.ActUpBytes, int64(batch*s*cfg.Hidden)*4)

	// Prefill computes into a live cache; with GPU attention the layer's KV
	// is offloaded (and the live copy dropped) as soon as the layer is done.
	live := hostCache
	if live == nil {
		live = model.NewKVCache(cfg.Layers, batch, cfg.Hidden)
	}

	loads := make(chan loadedLayer, 1)
	if e.policy.Prefetch {
		go func() { loads <- e.loadLayer(0) }()
	}
	for j := 0; j < cfg.Layers; j++ {
		var ll loadedLayer
		if e.policy.Prefetch {
			ll = <-loads
			if j+1 < cfg.Layers {
				next := j + 1
				go func() { loads <- e.loadLayer(next) }()
			}
		} else {
			ll = e.loadLayer(j)
		}
		if ll.err != nil {
			return nil, fmt.Errorf("runtime: prefill layer %d: %w", j, ll.err)
		}

		t0 := time.Now()
		model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, live, j, 0, x)
		for i := range x {
			model.MLP(e.pool, e.policy.IntraOp, cfg, ll.weights, x[i])
		}
		e.stats.addTask("compute", time.Since(t0))
		e.gpu.Free(ll.resident)

		if kvStore != nil {
			// Step 1.3: offload this layer's KV, quantized when enabled
			// (Eq. 5), and release the live copy.
			t1 := time.Now()
			for seq := 0; seq < batch; seq++ {
				n, err := kvStore.Append(j, seq, live.Keys(j, seq), live.Values(j, seq))
				if err != nil {
					return nil, err
				}
				e.stats.addBytes(&e.stats.KVDownBytes, n)
				if e.policy.QuantKV {
					e.stats.addOps(2, 0)
				}
				live.SetKV(j, seq, nil, nil)
			}
			e.stats.addTask("store_cache", time.Since(t1))
		}
	}

	hidden := tensor.New(batch, cfg.Hidden)
	for i, xs := range x {
		copy(hidden.Row(i), xs.Row(s-1))
	}
	return hidden, nil
}

// loadedLayer is a weight buffer staged into the GPU arena.
type loadedLayer struct {
	weights  *model.LayerWeights
	resident int64
	err      error
}

// loadLayer performs the load_weight task: charge the transfer, allocate the
// resident (dequantized) buffer, and materialize the tensors.
func (e *Engine) loadLayer(j int) loadedLayer {
	// Pinned layers never move: no transfer. Compressed residents still pay
	// a dequantization per use (into transient arena space); uncompressed
	// residents are served directly.
	if j < len(e.resident) {
		if !e.policy.CompressResident {
			return loadedLayer{weights: e.resident[j]}
		}
		t0 := time.Now()
		defer func() { e.stats.addTask("load_weight", time.Since(t0)) }()
		scratch := e.weights.ResidentBytes(j)
		if err := e.gpu.Alloc(scratch); err != nil {
			return loadedLayer{err: err}
		}
		lw := e.weights.Load(j)
		e.stats.addOps(0, 6)
		return loadedLayer{weights: lw, resident: scratch}
	}
	t0 := time.Now()
	defer func() { e.stats.addTask("load_weight", time.Since(t0)) }()
	resident := e.weights.ResidentBytes(j)
	if err := e.gpu.Alloc(resident); err != nil {
		return loadedLayer{err: err}
	}
	e.stats.addBytes(&e.stats.WeightUpBytes, e.weights.TransferBytes(j))
	lw := e.weights.Load(j)
	if e.weights.Quantized() {
		e.stats.addOps(0, 6) // six matrices dequantized
	}
	return loadedLayer{weights: lw, resident: resident}
}

// decodeStep advances every sequence by one token through all layers,
// with the six tasks of Algorithm 1 overlapped when Prefetch is on.
func (e *Engine) decodeStep(hostCache *model.KVCache, kvStore *KVStore, tokens []int, pos int) ([]int, error) {
	cfg := e.mod.Cfg
	batch := len(tokens)

	// Embed the current tokens (the load_activation task's payload).
	x := make([]*tensor.Tensor, batch)
	actBytes := int64(batch) * int64(cfg.Hidden) * 4
	e.stats.addBytes(&e.stats.ActUpBytes, actBytes)
	for i, tok := range tokens {
		x[i] = e.mod.Embed([]int{tok}, pos)
	}

	// Weight prefetch pipeline (asynchronous load_weight of layer j+1).
	loads := make(chan loadedLayer, 1)
	if e.policy.Prefetch {
		go func() { loads <- e.loadLayer(0) }()
	}

	for j := 0; j < cfg.Layers; j++ {
		var ll loadedLayer
		if e.policy.Prefetch {
			ll = <-loads
			if j+1 < cfg.Layers {
				next := j + 1
				go func() { loads <- e.loadLayer(next) }()
			}
		} else {
			ll = e.loadLayer(j)
		}
		if ll.err != nil {
			return nil, fmt.Errorf("runtime: layer %d: %w", j, ll.err)
		}

		e.loadActivations(x)
		if err := e.computeLayer(hostCache, kvStore, j, ll.weights, x); err != nil {
			e.gpu.Free(ll.resident)
			return nil, err
		}
		e.storeActivations(x)
		e.gpu.Free(ll.resident)
		// synchronize() — Algorithm 1 line 18 — is implicit: computeLayer
		// waits for its background stores before returning.
	}

	t0 := time.Now()
	logits := e.mod.Logits(e.pool, e.policy.IntraOp, rowsOf(x, cfg.Hidden))
	next := tensor.ArgmaxRows(logits)
	e.stats.addTask("compute", time.Since(t0))
	e.stats.addBytes(&e.stats.ActDownBytes, actBytes)
	return next, nil
}

// fetchedKV is one GPU batch's reconstructed KV slice, staged into the
// arena by the load_cache task.
type fetchedKV struct {
	cache   *model.KVCache
	fetched int64
	err     error
}

// loadCacheBatch performs the load_cache task for the sequences
// [seqBase, seqBase+batch): fetch (and dequantize) every chunk, charge the
// arena, and return the staged cache slice.
func (e *Engine) loadCacheBatch(kvStore *KVStore, j, seqBase, batch int) fetchedKV {
	t0 := time.Now()
	defer func() { e.stats.addTask("load_cache", time.Since(t0)) }()
	cfg := e.mod.Cfg
	out := fetchedKV{cache: model.NewKVCache(cfg.Layers, seqBase+batch, cfg.Hidden)}
	for s := 0; s < batch; s++ {
		k, v, bytes := kvStore.Fetch(j, seqBase+s)
		e.stats.addBytes(&e.stats.KVUpBytes, bytes)
		if e.policy.QuantKV {
			e.stats.addOps(0, 2*len64(kvStore.chunks[j][seqBase+s]))
		}
		if k != nil {
			kb := k.Bytes() + v.Bytes()
			if err := e.gpu.Alloc(kb); err != nil {
				out.err = err
				return out
			}
			out.fetched += kb
			out.cache.SetKV(j, seqBase+s, k, v)
		}
	}
	return out
}

// computeLayer runs one layer's attention and MLP using the staged weights
// lw, iterating the block's GPU batches one at a time (Algorithm 1's k
// loop). Under Prefetch, batch k+1's load_cache runs while batch k computes
// (Algorithm 1 lines 11-13).
func (e *Engine) computeLayer(hostCache *model.KVCache, kvStore *KVStore, j int, lw *model.LayerWeights, x []*tensor.Tensor) error {
	blockSize := len(x)
	gpuBatch := e.policy.GPUBatch
	if gpuBatch <= 0 || gpuBatch > blockSize {
		gpuBatch = blockSize
	}

	// Batch boundaries.
	type span struct{ lo, hi int }
	var spans []span
	for base := 0; base < blockSize; base += gpuBatch {
		hi := base + gpuBatch
		if hi > blockSize {
			hi = blockSize
		}
		spans = append(spans, span{base, hi})
	}

	async := e.policy.Prefetch && kvStore != nil
	var next chan fetchedKV
	if async {
		next = make(chan fetchedKV, 1)
		sp := spans[0]
		go func() { next <- e.loadCacheBatch(kvStore, j, sp.lo, sp.hi-sp.lo) }()
	}
	for i, sp := range spans {
		var kv fetchedKV
		switch {
		case async:
			kv = <-next
			if i+1 < len(spans) {
				nsp := spans[i+1]
				go func() { next <- e.loadCacheBatch(kvStore, j, nsp.lo, nsp.hi-nsp.lo) }()
			}
		case kvStore != nil:
			kv = e.loadCacheBatch(kvStore, j, sp.lo, sp.hi-sp.lo)
		}
		if kv.err != nil {
			return kv.err
		}
		if err := e.computeBatch(hostCache, kvStore, j, sp.lo, lw, x[sp.lo:sp.hi], kv); err != nil {
			return err
		}
	}
	return nil
}

// computeBatch runs one (layer, GPU batch) iteration: compute and
// store_cache for the sequences [seqBase, seqBase+len(x)), using the staged
// KV slice kv when attention runs on the GPU.
func (e *Engine) computeBatch(hostCache *model.KVCache, kvStore *KVStore, j, seqBase int, lw *model.LayerWeights, x []*tensor.Tensor, kv fetchedKV) error {
	cfg := e.mod.Cfg
	batch := len(x)

	cache := hostCache
	fetched := kv.fetched
	if kvStore != nil {
		cache = kv.cache
	}

	t0 := time.Now()
	outAttn, err := e.runAttention(cfg, lw, cache, j, seqBase, x)
	if err != nil {
		return err
	}
	for i := range x {
		model.MLP(e.pool, e.policy.IntraOp, cfg, lw, x[i])
	}
	e.stats.addTask("compute", time.Since(t0))

	if kvStore != nil {
		// store_cache: persist the new rows (quantized when enabled). Stores
		// complete before the layer's synchronize() (Algorithm 1 line 18).
		t1 := time.Now()
		for s := 0; s < batch; s++ {
			n, err := kvStore.Append(j, seqBase+s, outAttn.NewK[s], outAttn.NewV[s])
			if err != nil {
				return err
			}
			e.stats.addBytes(&e.stats.KVDownBytes, n)
			if e.policy.QuantKV {
				e.stats.addOps(2, 0)
			}
		}
		e.stats.addTask("store_cache", time.Since(t1))
		e.gpu.Free(fetched)
	}
	return nil
}

// loadActivations performs the load_activation task when activations live
// on the host: the hidden states cross to the "GPU" (through FP16 rounding
// when HostF16 is on) before the layer computes.
func (e *Engine) loadActivations(x []*tensor.Tensor) {
	if !e.policy.ActOnCPU {
		return
	}
	t0 := time.Now()
	var bytes int64
	for _, xs := range x {
		if e.policy.HostF16 {
			h := tensor.ToF16(xs)
			bytes += h.Bytes()
			copy(xs.Data(), h.ToFloat32().Data())
		} else {
			bytes += xs.Bytes()
		}
	}
	e.stats.addBytes(&e.stats.ActUpBytes, bytes)
	e.stats.addTask("load_activation", time.Since(t0))
}

// storeActivations performs the store_activation task: the layer's output
// hidden states return to host memory.
func (e *Engine) storeActivations(x []*tensor.Tensor) {
	if !e.policy.ActOnCPU {
		return
	}
	t0 := time.Now()
	var bytes int64
	for _, xs := range x {
		if e.policy.HostF16 {
			bytes += int64(xs.Numel()) * 2
		} else {
			bytes += xs.Bytes()
		}
	}
	e.stats.addBytes(&e.stats.ActDownBytes, bytes)
	e.stats.addTask("store_activation", time.Since(t0))
}

// runAttention executes one layer's attention over the batch, co-running
// independent sequence chunks when inter-op parallelism is enabled.
// Sequences own disjoint cache slots and hidden tensors, so chunked
// execution is bit-identical to serial execution regardless of scheduling
// order.
func (e *Engine) runAttention(cfg model.Config, lw *model.LayerWeights, cache *model.KVCache, j, seqBase int, x []*tensor.Tensor) (model.AttentionOutput, error) {
	interOp := e.policy.InterOp
	if interOp <= 1 || e.pool == nil || len(x) < 2 {
		return model.AttentionAt(e.pool, e.policy.IntraOp, cfg, lw, cache, j, seqBase, x), nil
	}
	if interOp > len(x) {
		interOp = len(x)
	}
	out := model.AttentionOutput{
		Hidden: tensor.New(len(x), cfg.Hidden),
		NewK:   make([]*tensor.Tensor, len(x)),
		NewV:   make([]*tensor.Tensor, len(x)),
	}
	sched, err := threadpool.NewInterOp(e.pool, interOp)
	if err != nil {
		return out, err
	}
	chunk := (len(x) + interOp - 1) / interOp
	for lo := 0; lo < len(x); lo += chunk {
		hi := lo + chunk
		if hi > len(x) {
			hi = len(x)
		}
		lo, hi := lo, hi
		sched.Submit(threadpool.Op{
			Name:  fmt.Sprintf("attn[%d:%d]", lo, hi),
			Width: e.policy.IntraOp,
			Run: func(pool *threadpool.Pool, width int) {
				part := model.AttentionAt(pool, width, cfg, lw, cache, j, seqBase+lo, x[lo:hi])
				copy(out.NewK[lo:hi], part.NewK)
				copy(out.NewV[lo:hi], part.NewV)
				for i := 0; i < hi-lo; i++ {
					copy(out.Hidden.Row(lo+i), part.Hidden.Row(i))
				}
			},
		})
	}
	sched.Wait()
	return out, nil
}

// rowsOf stacks per-sequence [1, hidden] tensors into one [batch, hidden]
// tensor for the logits projection.
func rowsOf(x []*tensor.Tensor, hidden int) *tensor.Tensor {
	out := tensor.New(len(x), hidden)
	for i, xi := range x {
		copy(out.Row(i), xi.Row(0))
	}
	return out
}

func len64[T any](s []T) int64 { return int64(len(s)) }
