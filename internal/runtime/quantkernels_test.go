package runtime

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/threadpool"
	"repro/internal/xtrace"
)

// TestQuantKernelsTokenExact: flipping the QuantKernels policy must not
// change a single generated token — the fused kernels are bit-identical to
// dequantize-then-matmul — across every quantized configuration and its
// interaction with batching, prefetch, inter-op attention, and compressed
// residency.
func TestQuantKernelsTokenExact(t *testing.T) {
	q4 := quant.Config{Bits: 4, GroupSize: 16}
	cases := []struct {
		name string
		pol  Policy
	}{
		{"w4", Policy{IntraOp: 1, QuantWeights: true, WeightCfg: q4}},
		{"kv4", Policy{IntraOp: 1, QuantKV: true, KVCfg: q4}},
		{"w4+kv4", Policy{IntraOp: 1, QuantWeights: true, WeightCfg: q4, QuantKV: true, KVCfg: q4}},
		{"w4+kv4-batched", Policy{IntraOp: 2, GPUBatch: 2, Prefetch: true, InterOp: 2,
			QuantWeights: true, WeightCfg: q4, QuantKV: true, KVCfg: q4}},
		{"w4-resident-compressed", Policy{IntraOp: 1, QuantWeights: true, WeightCfg: q4,
			ResidentLayers: 1, CompressResident: true}},
	}
	pool := threadpool.MustNew(4)
	for _, tc := range cases {
		run := func(fused bool) [][]int {
			pol := tc.pol
			pol.QuantKernels = fused
			eng, err := NewEngine(tinyModel(t, 21), pol, bigArena, pool)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			out, err := eng.Generate(context.Background(), testPrompts(), 6)
			if err != nil {
				t.Fatalf("%s (fused=%v): %v", tc.name, fused, err)
			}
			return out
		}
		ref, fus := run(false), run(true)
		for i := range ref {
			for j := range ref[i] {
				if ref[i][j] != fus[i][j] {
					t.Fatalf("%s: QuantKernels changed tokens at seq %d tok %d: %v vs %v",
						tc.name, i, j, ref[i], fus[i])
				}
			}
		}
	}
}

// TestQuantKernelsNoQuantNoOp: with nothing quantized the toggle must be a
// pure no-op (LoadPacked falls back to Load; the KV path never stages packed
// chunks), still matching the plain reference model.
func TestQuantKernelsNoQuantNoOp(t *testing.T) {
	ref, err := tinyModel(t, 42).Generate(nil, 1, testPrompts(), 6)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1, QuantKernels: true}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Generate(context.Background(), testPrompts(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for j := range ref[i] {
			if got[i][j] != ref[i][j] {
				t.Fatalf("QuantKernels-without-quant diverges: %v vs %v", got, ref)
			}
		}
	}
}

// TestExecPolicyCarriesQuantKernels: the toggle is hot-swappable — it rides
// the ExecPolicy surface and survives an apply round-trip.
func TestExecPolicyCarriesQuantKernels(t *testing.T) {
	eng, err := NewEngine(tinyModel(t, 3), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := eng.ExecPolicy()
	if p.QuantKernels {
		t.Fatal("QuantKernels unexpectedly on by default")
	}
	p.QuantKernels = true
	if err := eng.ApplyExecPolicy(p); err != nil {
		t.Fatal(err)
	}
	if got := eng.ExecPolicy(); !got.QuantKernels {
		t.Fatal("ApplyExecPolicy dropped QuantKernels")
	}
}

// TestFetchPackedMixedSlots drives the pressure-ladder mixed case at the
// store/model seam: a store-wide raw KV store with one slot overridden to
// quantized must stage a heterogeneous chunk list whose fused attention
// output is bit-identical to the dense Fetch path.
func TestFetchPackedMixedSlots(t *testing.T) {
	cfg := model.Tiny()
	q4 := quant.Config{Bits: 4, GroupSize: 16}
	st, err := NewKVStore(cfg.Layers, 2, false, quant.Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetSlotQuant(0, &q4); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// Slot 0: quantized chunk, then raw chunk (override lifted), then
	// quantized again — the mixed history SetSlotQuant produces live.
	for i, c := range []*quant.Config{&q4, nil, &q4} {
		if err := st.SetSlotQuant(0, c); err != nil {
			t.Fatal(err)
		}
		rows := 2 + i
		for l := 0; l < cfg.Layers; l++ {
			k := tensor.RandN(rng, 1, rows, cfg.Hidden)
			v := tensor.RandN(rng, 1, rows, cfg.Hidden)
			if _, err := st.Append(l, 0, k, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for l := 0; l < cfg.Layers; l++ {
		chunks, rows, _, err := st.FetchPacked(l, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) != 3 {
			t.Fatalf("layer %d: %d chunks, want 3", l, len(chunks))
		}
		if chunks[0].K == nil || chunks[1].RawK == nil || chunks[2].K == nil {
			t.Fatalf("layer %d: chunk forms %v, want packed/raw/packed", l,
				[]bool{chunks[0].K != nil, chunks[1].RawK != nil, chunks[2].K != nil})
		}
		if rows != 2+3+4 {
			t.Fatalf("layer %d: staged rows %d, want 9", l, rows)
		}
	}

	// Bit-exact attention: dense path via Fetch vs fused path via SetPacked.
	lw := model.NewLayerWeights(rand.New(rand.NewSource(6)), cfg)
	x := tensor.RandN(rand.New(rand.NewSource(7)), 1, 1, cfg.Hidden)
	denseCache := model.NewKVCache(cfg.Layers, 1, cfg.Hidden)
	fusedCache := model.NewKVCache(cfg.Layers, 1, cfg.Hidden)
	k0, v0, _, err := st.Fetch(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	denseCache.SetKV(0, 0, k0, v0)
	chunks, _, _, err := st.FetchPacked(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fusedCache.SetPacked(0, 0, chunks)
	dOut := model.Attention(nil, 1, cfg, lw, denseCache, 0, []*tensor.Tensor{x.Clone()})
	fOut := model.Attention(nil, 1, cfg, lw, fusedCache, 0, []*tensor.Tensor{x.Clone()})
	dd, fd := dOut.Hidden.Data(), fOut.Hidden.Data()
	for i := range dd {
		if math.Float32bits(dd[i]) != math.Float32bits(fd[i]) {
			t.Fatalf("fused attention diverges at %d: %g vs %g", i, fd[i], dd[i])
		}
	}
}

// TestFetchTimedDequantOnly pins the dequant_kv attribution fix at its
// source: FetchTimed's duration covers only the dequantization kernels — a
// non-quantized (f16) store reports zero even though it materializes and
// transfers every chunk, and a quantized store reports a positive duration
// bounded by the call's wall time.
func TestFetchTimedDequantOnly(t *testing.T) {
	cfg := model.Tiny()
	rng := rand.New(rand.NewSource(8))
	mk := func(quantize, f16 bool) *KVStore {
		st, err := NewKVStore(cfg.Layers, 1, quantize, quant.Config{Bits: 4, GroupSize: 16}, f16)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			k := tensor.RandN(rng, 1, 4, cfg.Hidden)
			v := tensor.RandN(rng, 1, 4, cfg.Hidden)
			if _, err := st.Append(0, 0, k, v); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}

	f16st := mk(false, true)
	if _, _, _, d, err := f16st.FetchTimed(0, 0); err != nil || d != 0 {
		t.Fatalf("f16 store FetchTimed dequant = %v err = %v, want 0 and nil", d, err)
	}

	qst := mk(true, false)
	t0 := time.Now()
	_, _, _, d, err := qst.FetchTimed(0, 0)
	wall := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("quantized store FetchTimed dequant = %v, want > 0", d)
	}
	if d > wall {
		t.Fatalf("dequant time %v exceeds the whole fetch wall time %v", d, wall)
	}
}

// TestDequantKVAttributionSplit is the engine-level regression for the
// dequant_kv over-attribution bug: every recorded dequant_kv span must nest
// inside a load_kv span of the same layer, and the total dequant_kv time
// must be a strict subset of load_kv — the span no longer brackets the whole
// fetch loop with its allocation, checksum, and staging work.
func TestDequantKVAttributionSplit(t *testing.T) {
	pol := Policy{IntraOp: 1, QuantKV: true, KVCfg: quant.Config{Bits: 4, GroupSize: 16}}
	eng, err := NewEngine(tinyModel(t, 9), pol, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := xtrace.NewRecorder(0)
	eng.SetTracer(rec)
	// A longer decode gives every slot many chunks, so per-chunk overheads
	// (alloc, CRC verify, staging) dominate the loop body.
	if _, err := eng.Generate(context.Background(), testPrompts(), 10); err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans()
	var dequant, loadKV time.Duration
	var nd int
	for _, s := range spans {
		switch s.Name {
		case xtrace.TaskDequantKV:
			nd++
			dequant += s.Dur
			contained := false
			for _, ls := range spans {
				if ls.Name == xtrace.TaskLoadKV && ls.Layer == s.Layer &&
					s.Start >= ls.Start && s.End() <= ls.End() {
					contained = true
					break
				}
			}
			if !contained {
				t.Fatalf("dequant_kv span (layer %d, start %v, dur %v) not nested in any load_kv span",
					s.Layer, s.Start, s.Dur)
			}
		case xtrace.TaskLoadKV:
			loadKV += s.Dur
		}
	}
	if nd == 0 {
		t.Fatal("no dequant_kv spans recorded under QuantKV")
	}
	if dequant >= loadKV {
		t.Fatalf("dequant_kv total %v >= load_kv total %v — span covers more than the dequant kernels", dequant, loadKV)
	}
	// The attribution view must agree: load_kv keeps the larger share of the
	// covered wall-clock.
	attr := xtrace.Attribution(spans, xtrace.TaskLoadKV, xtrace.TaskDequantKV)
	if attr[xtrace.TaskDequantKV] > attr[xtrace.TaskLoadKV] {
		t.Fatalf("attribution gives dequant_kv %v > load_kv %v", attr[xtrace.TaskDequantKV], attr[xtrace.TaskLoadKV])
	}
}

// TestQuantKernelsStatsInvariance: the fused path charges the same
// dequantized-equivalent bytes to the arena, so admission estimates and the
// arena peak stay comparable across the toggle. (Exact byte equality is the
// design contract; op counters differ because no dequant ops run.)
func TestQuantKernelsStatsInvariance(t *testing.T) {
	q4 := quant.Config{Bits: 4, GroupSize: 16}
	run := func(fused bool) (*Stats, int64) {
		pol := Policy{IntraOp: 1, QuantKV: true, KVCfg: q4, QuantWeights: true, WeightCfg: q4, QuantKernels: fused}
		eng, err := NewEngine(tinyModel(t, 31), pol, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Generate(context.Background(), testPrompts(), 5); err != nil {
			t.Fatal(err)
		}
		return eng.Stats(), eng.gpu.Peak()
	}
	off, offPeak := run(false)
	on, onPeak := run(true)
	if off.KVUpBytes != on.KVUpBytes {
		t.Fatalf("KV upload bytes differ across toggle: %d vs %d", off.KVUpBytes, on.KVUpBytes)
	}
	if off.WeightUpBytes != on.WeightUpBytes {
		t.Fatalf("weight upload bytes differ across toggle: %d vs %d", off.WeightUpBytes, on.WeightUpBytes)
	}
	if offPeak != onPeak {
		t.Fatalf("arena peak differs across toggle: %d vs %d", offPeak, onPeak)
	}
	if on.DequantizeOps >= off.DequantizeOps {
		t.Fatalf("fused run still counts dequant passes: %d vs %d unfused", on.DequantizeOps, off.DequantizeOps)
	}
}
