package runtime

import (
	"testing"
	"time"
)

// TestRetryDelayExponentialNoJitter pins the deterministic ladder: base,
// 2x, 4x, ... capped at MaxBackoff.
func TestRetryDelayExponentialNoJitter(t *testing.T) {
	rc := RetryConfig{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	want := []time.Duration{
		1 * time.Millisecond, // attempt 1
		2 * time.Millisecond,
		4 * time.Millisecond,
		5 * time.Millisecond, // capped
		5 * time.Millisecond,
	}
	for i, w := range want {
		if got := rc.delay(i + 1); got != w {
			t.Fatalf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestRetryDelayFullJitter drives the jitter with an injected source and
// checks the draw is (0, ceiling] of the exponential ladder.
func TestRetryDelayFullJitter(t *testing.T) {
	draws := []float64{0, 0.25, 0.5, 0.999999}
	idx := 0
	rc := RetryConfig{
		MaxAttempts: 8,
		BaseBackoff: 4 * time.Millisecond,
		MaxBackoff:  16 * time.Millisecond,
		Jitter:      true,
		Rand:        func() float64 { v := draws[idx%len(draws)]; idx++; return v },
	}
	// Attempt 1 ceiling is 4ms; draw 0 must yield the full ceiling (never a
	// zero sleep, which would defeat the backoff entirely).
	if got := rc.delay(1); got != 4*time.Millisecond {
		t.Fatalf("jittered delay with draw 0 = %v, want the 4ms ceiling", got)
	}
	// Attempt 2 ceiling is 8ms; draw 0.25 yields 6ms.
	if got := rc.delay(2); got != 6*time.Millisecond {
		t.Fatalf("jittered delay with draw 0.25 = %v, want 6ms", got)
	}
	// Attempt 3 ceiling is 16ms (capped); draw 0.5 yields 8ms.
	if got := rc.delay(3); got != 8*time.Millisecond {
		t.Fatalf("jittered delay with draw 0.5 = %v, want 8ms", got)
	}
	// Draw ~1 yields an arbitrarily small but positive sleep.
	if got := rc.delay(4); got <= 0 || got > 16*time.Millisecond {
		t.Fatalf("jittered delay with draw ~1 = %v, want in (0, 16ms]", got)
	}
}

// TestRetryDelayDecorrelatesReplicas is the thundering-herd regression: two
// configs with distinct jitter streams must not produce identical backoff
// schedules, while the zero-backoff test path stays exactly zero.
func TestRetryDelayDecorrelatesReplicas(t *testing.T) {
	mk := func(seed float64) RetryConfig {
		v := seed
		return RetryConfig{
			MaxAttempts: 4,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			Jitter:      true,
			Rand: func() float64 {
				v = v * 0.7312 // cheap deterministic per-replica stream
				return v
			},
		}
	}
	a, b := mk(0.9), mk(0.3)
	same := true
	for attempt := 1; attempt <= 3; attempt++ {
		if a.delay(attempt) != b.delay(attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("two replicas with distinct jitter streams produced identical backoff schedules")
	}

	zero := RetryConfig{MaxAttempts: 4, Jitter: true, Rand: func() float64 {
		t.Fatal("zero-backoff path must not draw randomness")
		return 0
	}}
	for attempt := 1; attempt <= 3; attempt++ {
		if d := zero.delay(attempt); d != 0 {
			t.Fatalf("zero BaseBackoff produced delay %v", d)
		}
	}
}

// TestDefaultRetryConfigJitterOn pins that the production default is
// decorrelated.
func TestDefaultRetryConfigJitterOn(t *testing.T) {
	rc := DefaultRetryConfig()
	if !rc.Jitter {
		t.Fatal("DefaultRetryConfig must enable full-jitter backoff")
	}
	if err := rc.Validate(); err != nil {
		t.Fatal(err)
	}
	// The nil-Rand path must produce a bounded positive delay.
	for i := 0; i < 32; i++ {
		d := rc.delay(3)
		if d <= 0 || d > 4*rc.BaseBackoff {
			t.Fatalf("default jittered delay(3) = %v outside (0, %v]", d, 4*rc.BaseBackoff)
		}
	}
}
