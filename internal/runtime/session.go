package runtime

import (
	"context"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/tensor"
)

// Session is the engine's continuous-batching surface: a fixed number of KV
// slots that independent sequences join and leave at decode-step boundaries.
// Admit prefills a prompt into a free slot, Step advances every active slot
// by one token (each at its own position), and Retire recycles a slot's KV
// storage for the next request. Because the model computes attention, MLP,
// and logits strictly per sequence, a sequence's tokens are bit-identical to
// what a solo Engine.Generate run would produce, regardless of which other
// sequences share the batch — the property the serving layer's differential
// tests pin down.
//
// A Session owns the engine's arena and stats while it is live: do not run
// Generate on the same engine concurrently, and drive the session from one
// goroutine (the serving scheduler's loop). Fault handling mirrors the
// offline path: transient faults retry inside each operation, failed steps
// roll back every slot's partial KV appends before retrying, and repeated
// failures take the session degradation ladder (prefetch-off, then migrating
// the whole KV store to host-resident CPU attention).
type Session struct {
	e     *Engine
	slots int

	// Exactly one of these is non-nil, as in genRun: kv when attention runs
	// on the GPU, host after AttnOnCPU (by policy or by degradation).
	kv   *KVStore
	host *model.KVCache

	active []bool
	pos    []int // per-slot next token position (tokens cached so far)
	last   []int // per-slot last generated token
}

// SlotToken is one decode-step result: the token generated for a slot.
type SlotToken struct {
	Slot  int
	Token int
}

// NewSession creates a continuous-batching session with the given number of
// sequence slots. The engine's fault injector must be wired (SetFaultInjector)
// before the session is created for KV corruption probes to reach the store.
func (e *Engine) NewSession(slots int) (*Session, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("runtime: session needs at least one slot, got %d", slots)
	}
	cfg := e.mod.Cfg
	s := &Session{
		e:      e,
		slots:  slots,
		active: make([]bool, slots),
		pos:    make([]int, slots),
		last:   make([]int, slots),
	}
	if e.policy.AttnOnCPU {
		s.host = model.NewKVCache(cfg.Layers, slots, cfg.Hidden)
		return s, nil
	}
	kv, err := NewKVStore(cfg.Layers, slots, e.policy.QuantKV, e.policy.KVCfg, e.policy.HostF16)
	if err != nil {
		return nil, err
	}
	kv.UsePool(e.pool, e.policy.IntraOp)
	kv.UseFaults(e.faults)
	s.kv = kv
	return s, nil
}

// Slots returns the session's slot count.
func (s *Session) Slots() int { return s.slots }

// IsActive reports whether slot holds a live sequence.
func (s *Session) IsActive(slot int) bool {
	return slot >= 0 && slot < s.slots && s.active[slot]
}

// ActiveSlots returns the live slot indices in slot order.
func (s *Session) ActiveSlots() []int {
	var out []int
	for i, a := range s.active {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// NumActive returns the live sequence count.
func (s *Session) NumActive() int {
	n := 0
	for _, a := range s.active {
		if a {
			n++
		}
	}
	return n
}

// Pos returns the next token position of a slot (its cached token count).
func (s *Session) Pos(slot int) int { return s.pos[slot] }

// HostKVBytes returns the host-side KV footprint of the session's store.
func (s *Session) HostKVBytes() int64 {
	if s.kv != nil {
		return s.kv.HostBytes()
	}
	return s.host.Bytes()
}

// sessionMark is a rollback point over the session's KV storage, taken
// before a mutating operation so a failed attempt can be undone without
// touching the slots the operation never reached.
type sessionMark struct {
	kv   [][]int
	host [][]int
}

func (s *Session) mark() sessionMark {
	var m sessionMark
	if s.kv != nil {
		m.kv = s.kv.Mark()
	}
	if s.host != nil {
		m.host = s.host.SeqLens()
	}
	return m
}

func (s *Session) rollback(m sessionMark) {
	// The store may have migrated to host between mark and rollback (a
	// degradation rung): per-slot lengths carry over 1:1, so replay the
	// chunk-count mark as a host truncation in that case.
	if s.kv != nil && m.kv != nil {
		s.kv.Rollback(m.kv)
		return
	}
	if s.host != nil && m.host != nil {
		s.host.TruncateTo(m.host)
	}
}

// Admit prefills prompt into a free slot and returns the first generated
// token. The slot becomes active; subsequent Step calls extend it. Transient
// failures retry with full rollback of the partial prefill, taking the
// degradation ladder past the second attempt, exactly like offline prefill.
func (s *Session) Admit(ctx context.Context, slot int, prompt []int) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if slot < 0 || slot >= s.slots {
		return 0, fmt.Errorf("runtime: admit slot %d outside [0, %d)", slot, s.slots)
	}
	if s.active[slot] {
		return 0, fmt.Errorf("runtime: admit into occupied slot %d", slot)
	}
	if len(prompt) == 0 {
		return 0, fmt.Errorf("runtime: admit with empty prompt")
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		m := s.mark()
		stepCtx, cancel := s.e.stepContext(ctx)
		t0 := time.Now()
		tok, err := s.admitOnce(stepCtx, slot, prompt)
		cancel()
		s.e.stats.addTask("prefill", time.Since(t0))
		if err == nil {
			s.active[slot] = true
			s.pos[slot] = len(prompt)
			s.last[slot] = tok
			s.e.stats.mu.Lock()
			s.e.stats.TokensGenerated++
			s.e.stats.mu.Unlock()
			return tok, nil
		}
		s.rollback(m)
		if cerr := ctx.Err(); cerr != nil {
			return 0, cerr
		}
		if attempt >= maxStepAttempts {
			return 0, fmt.Errorf("runtime: admit to slot %d failed after %d attempts: %w", slot, attempt, err)
		}
		s.e.stats.addRetry("admit")
		if attempt >= 2 {
			s.degradeOnce(ctx)
		}
	}
}

// admitOnce is one prefill attempt for a single sequence: stream every
// layer's weights (with prefetch overlap when enabled), compute attention
// and MLP over the whole prompt, and offload the slot's KV per layer.
func (s *Session) admitOnce(ctx context.Context, slot int, prompt []int) (tok int, err error) {
	defer recoverAsError(&err)
	e := s.e
	cfg := e.mod.Cfg
	x := e.mod.Embed(prompt, 0)
	xs := []*tensor.Tensor{x}
	e.stats.addBytes(&e.stats.ActUpBytes, int64(len(prompt)*cfg.Hidden)*4)

	// With GPU attention, prefill computes into a one-sequence live cache
	// whose layer slices are offloaded (and dropped) as each layer finishes;
	// with CPU attention it writes straight into the slot's host cache.
	var live *model.KVCache
	if s.kv != nil {
		live = model.NewKVCache(cfg.Layers, 1, cfg.Hidden)
	}

	pipe := e.newLoadPipeline(ctx)
	defer pipe.drain()
	if e.policy.Prefetch {
		pipe.start(0)
	}
	for j := 0; j < cfg.Layers; j++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		var ll loadedLayer
		if e.policy.Prefetch {
			ll = pipe.take()
			if j+1 < cfg.Layers {
				pipe.start(j + 1)
			}
		} else {
			ll = e.loadLayer(ctx, j)
		}
		if ll.err != nil {
			return 0, fmt.Errorf("runtime: admit layer %d: %w", j, ll.err)
		}

		t0 := time.Now()
		if s.kv != nil {
			model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, live, j, 0, xs)
		} else {
			model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, s.host, j, slot, xs)
		}
		model.MLP(e.pool, e.policy.IntraOp, cfg, ll.weights, x)
		e.stats.addTask("compute", time.Since(t0))
		e.gpu.Free(ll.resident)

		if s.kv != nil {
			t1 := time.Now()
			if err := e.storeChunk(ctx, s.kv, j, slot, live.Keys(j, 0), live.Values(j, 0)); err != nil {
				return 0, err
			}
			live.SetKV(j, 0, nil, nil)
			e.stats.addTask("store_cache", time.Since(t1))
		}
	}

	hidden := tensor.New(1, cfg.Hidden)
	copy(hidden.Row(0), x.Row(len(prompt)-1))
	return tensor.ArgmaxRows(e.mod.Logits(e.pool, e.policy.IntraOp, hidden))[0], nil
}

// Step advances every active slot by one token and returns the new token per
// slot (in slot order). It returns (nil, nil) when no slot is active. A
// failed step rolls every slot back to the pre-step mark before retrying —
// the same atomicity the offline decode loop guarantees — so a fault in one
// sequence never corrupts its neighbours.
func (s *Session) Step(ctx context.Context) ([]SlotToken, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	act := s.ActiveSlots()
	if len(act) == 0 {
		return nil, nil
	}
	stepAttempts := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m := s.mark()
		stepCtx, cancel := s.e.stepContext(ctx)
		next, err := s.stepOnce(stepCtx, act)
		cancel()
		if err == nil {
			out := make([]SlotToken, len(act))
			for i, slot := range act {
				s.pos[slot]++
				s.last[slot] = next[i]
				out[i] = SlotToken{Slot: slot, Token: next[i]}
			}
			s.e.stats.mu.Lock()
			s.e.stats.TokensGenerated += int64(len(act))
			s.e.stats.mu.Unlock()
			return out, nil
		}
		s.rollback(m)
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		stepAttempts++
		if stepAttempts >= maxStepAttempts {
			return nil, fmt.Errorf("runtime: session step failed after %d attempts: %w", stepAttempts, err)
		}
		s.e.stats.addRetry("decode_step")
		if stepAttempts >= 2 {
			s.degradeOnce(ctx)
		}
	}
}

// stepOnce is one decode-step attempt over the active slots. Each sequence
// embeds its token at its own absolute position — the per-slot generalization
// of the offline loop's single shared position — then every layer streams its
// weights once and the slots compute one at a time against their own KV.
func (s *Session) stepOnce(ctx context.Context, act []int) (next []int, err error) {
	defer recoverAsError(&err)
	e := s.e
	cfg := e.mod.Cfg

	x := make([]*tensor.Tensor, len(act))
	for i, slot := range act {
		x[i] = e.mod.Embed([]int{s.last[slot]}, s.pos[slot])
	}
	actBytes := int64(len(act)) * int64(cfg.Hidden) * 4
	e.stats.addBytes(&e.stats.ActUpBytes, actBytes)

	pipe := e.newLoadPipeline(ctx)
	defer pipe.drain()
	if e.policy.Prefetch {
		pipe.start(0)
	}
	for j := 0; j < cfg.Layers; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var ll loadedLayer
		if e.policy.Prefetch {
			ll = pipe.take()
			if j+1 < cfg.Layers {
				pipe.start(j + 1)
			}
		} else {
			ll = e.loadLayer(ctx, j)
		}
		if ll.err != nil {
			return nil, fmt.Errorf("runtime: session layer %d: %w", j, ll.err)
		}
		if err := s.stepLayer(ctx, j, ll, act, x); err != nil {
			return nil, err
		}
	}

	t0 := time.Now()
	logits := e.mod.Logits(e.pool, e.policy.IntraOp, rowsOf(x, cfg.Hidden))
	next = tensor.ArgmaxRows(logits)
	e.stats.addTask("compute", time.Since(t0))
	e.stats.addBytes(&e.stats.ActDownBytes, actBytes)
	return next, nil
}

// stepLayer runs one layer over every active slot, releasing the staged
// weights on every path.
func (s *Session) stepLayer(ctx context.Context, j int, ll loadedLayer, act []int, x []*tensor.Tensor) error {
	e := s.e
	defer e.gpu.Free(ll.resident)
	cfg := e.mod.Cfg
	for i, slot := range act {
		xs := x[i : i+1]
		if s.kv == nil {
			// Host-resident attention: compute in place against the slot's
			// cache; the new rows are appended by AttentionAt itself.
			if err := e.probeWorkerPanic(); err != nil {
				return err
			}
			t0 := time.Now()
			model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, s.host, j, slot, xs)
			model.MLP(e.pool, e.policy.IntraOp, cfg, ll.weights, x[i])
			e.stats.addTask("compute", time.Since(t0))
			continue
		}
		// GPU attention: stage the slot's KV into the arena (load_cache),
		// compute, persist the new rows (store_cache), release the staging.
		kv := e.loadCacheBatch(ctx, s.kv, j, slot, 1)
		if kv.err != nil {
			return kv.err
		}
		if err := func() error {
			defer e.gpu.Free(kv.fetched)
			if err := e.probeWorkerPanic(); err != nil {
				return err
			}
			t0 := time.Now()
			out := model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, kv.cache, j, slot, xs)
			model.MLP(e.pool, e.policy.IntraOp, cfg, ll.weights, x[i])
			e.stats.addTask("compute", time.Since(t0))
			t1 := time.Now()
			if err := e.storeChunk(ctx, s.kv, j, slot, out.NewK[0], out.NewV[0]); err != nil {
				return err
			}
			e.stats.addTask("store_cache", time.Since(t1))
			return nil
		}(); err != nil {
			return err
		}
	}
	return nil
}

// Retire frees a slot: its KV storage is dropped and the slot becomes
// admissible again. Retiring an inactive slot is a no-op.
func (s *Session) Retire(slot int) {
	if slot < 0 || slot >= s.slots || !s.active[slot] {
		return
	}
	s.active[slot] = false
	s.pos[slot] = 0
	s.last[slot] = 0
	if s.kv != nil {
		s.kv.ResetSlot(slot)
		return
	}
	for l := 0; l < s.host.Layers(); l++ {
		s.host.SetKV(l, slot, nil, nil)
	}
}

// degradeOnce takes the session degradation ladder: first drop the prefetch
// overlap, then migrate the whole store to host-resident CPU attention. The
// offline ladder's GPU-batch rung does not apply — the session already
// fetches KV one slot at a time, which is the rung's end state.
func (s *Session) degradeOnce(ctx context.Context) {
	e := s.e
	switch {
	case e.policy.Prefetch:
		e.policy.Prefetch = false
		e.stats.addDegradation("prefetch-off")
	case s.kv != nil:
		host, err := e.fetchAllToHost(ctx, s.kv, s.slots)
		if err != nil {
			e.stats.addDegradation("attn-on-cpu(migration failed)")
			return
		}
		s.host, s.kv = host, nil
		e.policy.AttnOnCPU = true
		e.policy.QuantKV = false
		e.stats.addDegradation("attn-on-cpu")
	}
}
