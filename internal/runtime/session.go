package runtime

import (
	"context"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/threadpool"
	"repro/internal/xtrace"
)

// Session is the engine's continuous-batching surface: a fixed number of KV
// slots that independent sequences join and leave at decode-step boundaries.
// Admit prefills a prompt into a free slot, Step advances every active slot
// by one token (each at its own position), and Retire recycles a slot's KV
// storage for the next request. Because the model computes attention, MLP,
// and logits strictly per sequence, a sequence's tokens are bit-identical to
// what a solo Engine.Generate run would produce, regardless of which other
// sequences share the batch — the property the serving layer's differential
// tests pin down.
//
// A Session owns the engine's arena and stats while it is live: do not run
// Generate on the same engine concurrently, and drive the session from one
// goroutine (the serving scheduler's loop). Fault handling mirrors the
// offline path: transient faults retry inside each operation, failed steps
// roll back every slot's partial KV appends before retrying, and repeated
// failures take the session degradation ladder (prefetch-off, then migrating
// the whole KV store to host-resident CPU attention).
//
// Under memory pressure, the serving scheduler can additionally move
// individual slots down the KV-pressure ladder: SetQuantizeNewSlots makes
// newly admitted slots store their KV quantized, and SpillSlot migrates one
// slot's KV to the host cache so it stops staging into the GPU arena (its
// attention runs on the CPU from then on). Both transitions preserve the
// slot's token stream exactly against the matching solo Generate run: a
// quantized slot produces the tokens a QuantKV engine would, and a spilled
// slot keeps producing the tokens its storage mode dictates, because the
// host copy round-trips through the same (de)quantization the staged path
// performs.
type Session struct {
	e     *Engine
	slots int

	// kv is the GPU-staged store (nil once the degradation ladder migrates
	// everything to host). host is the host-resident cache: it holds spilled
	// slots while kv is live, and every slot after full migration.
	kv   *KVStore
	host *model.KVCache

	active []bool
	pos    []int // per-slot next token position (tokens cached so far)
	last   []int // per-slot last generated token

	spilled   []bool         // slot's KV is host-resident (CPU attention)
	quantKV   []bool         // slot's KV is stored quantized
	slotCfgs  []quant.Config // quant config per quantized slot (for sealing)
	quantNew  bool           // ladder rung 1: quantize newly admitted slots
	ladderCfg quant.Config

	// prefix is the optional shared-prefix KV cache (UsePrefixStore). Each
	// admitted slot that seeded from it holds its match pinned until Retire;
	// reused records the seeded token count per slot.
	prefix     *PrefixStore
	prefixRefs []*PrefixMatch
	reused     []int

	// chunk holds per-slot in-flight chunked prefills (BeginPrefill /
	// PrefillChunk); a slot with a pending chunk state is not active yet.
	chunk []*chunkState
}

// SlotToken is one decode-step result: the token generated for a slot.
type SlotToken struct {
	Slot  int
	Token int
}

// NewSession creates a continuous-batching session with the given number of
// sequence slots. The engine's fault injector must be wired (SetFaultInjector)
// before the session is created for KV corruption probes to reach the store.
func (e *Engine) NewSession(slots int) (*Session, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("runtime: session needs at least one slot, got %d", slots)
	}
	cfg := e.mod.Cfg
	s := &Session{
		e:          e,
		slots:      slots,
		active:     make([]bool, slots),
		pos:        make([]int, slots),
		last:       make([]int, slots),
		spilled:    make([]bool, slots),
		quantKV:    make([]bool, slots),
		slotCfgs:   make([]quant.Config, slots),
		prefixRefs: make([]*PrefixMatch, slots),
		reused:     make([]int, slots),
		chunk:      make([]*chunkState, slots),
	}
	if e.policy.AttnOnCPU {
		s.host = model.NewKVCache(cfg.Layers, slots, cfg.Hidden)
		return s, nil
	}
	kv, err := NewKVStore(cfg.Layers, slots, e.policy.QuantKV, e.policy.KVCfg, e.policy.HostF16)
	if err != nil {
		return nil, err
	}
	kv.UsePool(e.pool, e.policy.IntraOp)
	kv.UseFaults(e.faults)
	s.kv = kv
	return s, nil
}

// Slots returns the session's slot count.
func (s *Session) Slots() int { return s.slots }

// IsActive reports whether slot holds a live sequence.
func (s *Session) IsActive(slot int) bool {
	return slot >= 0 && slot < s.slots && s.active[slot]
}

// ActiveSlots returns the live slot indices in slot order.
func (s *Session) ActiveSlots() []int {
	var out []int
	for i, a := range s.active {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// NumActive returns the live sequence count.
func (s *Session) NumActive() int {
	n := 0
	for _, a := range s.active {
		if a {
			n++
		}
	}
	return n
}

// Pos returns the next token position of a slot (its cached token count).
func (s *Session) Pos(slot int) int { return s.pos[slot] }

// slotOnHost reports whether the slot's KV lives in the host cache (either
// individually spilled or because the whole session migrated).
func (s *Session) slotOnHost(slot int) bool { return s.kv == nil || s.spilled[slot] }

// SlotSpilled reports whether the slot's KV was spilled to the host cache by
// the pressure ladder (false after a full degradation migration, which is a
// session-wide mode rather than per-slot pressure state).
func (s *Session) SlotSpilled(slot int) bool {
	return slot >= 0 && slot < s.slots && s.spilled[slot]
}

// SlotQuantizedKV reports whether the slot stores its KV quantized (by
// policy or by the pressure ladder's quantize-new-slots rung).
func (s *Session) SlotQuantizedKV(slot int) bool {
	return slot >= 0 && slot < s.slots && s.quantKV[slot]
}

// NumSpilled returns how many active slots are host-resident by spill.
func (s *Session) NumSpilled() int {
	n := 0
	for i, sp := range s.spilled {
		if sp && s.active[i] {
			n++
		}
	}
	return n
}

// StagedKVBytes returns the GPU-arena bytes the slot stages per decode step
// (the dequantized K+V working copy). Host-resident slots stage nothing.
func (s *Session) StagedKVBytes(slot int) int64 {
	if slot < 0 || slot >= s.slots || !s.active[slot] || s.slotOnHost(slot) {
		return 0
	}
	return 2 * int64(s.pos[slot]) * int64(s.e.mod.Cfg.Hidden) * 4
}

// HostKVBytes returns the host-side KV footprint of the session's storage
// (the staged store plus any spilled slots).
func (s *Session) HostKVBytes() int64 {
	var total int64
	if s.kv != nil {
		total += s.kv.HostBytes()
	}
	if s.host != nil {
		total += s.host.Bytes()
	}
	return total
}

// SetQuantizeNewSlots toggles the pressure ladder's first rung: when on,
// slots admitted from now on store their KV quantized with cfg. Existing
// slots are unaffected (their storage mode is fixed at admission so their
// token streams stay exact). The config's group size must divide the model's
// hidden dimension so quantization groups align to rows — the property that
// makes prefill-chunk and per-token-chunk quantization bit-identical.
func (s *Session) SetQuantizeNewSlots(on bool, cfg quant.Config) error {
	if !on {
		s.quantNew = false
		return nil
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if s.e.mod.Cfg.Hidden%cfg.GroupSize != 0 {
		return fmt.Errorf("runtime: ladder KV group size %d must divide hidden %d",
			cfg.GroupSize, s.e.mod.Cfg.Hidden)
	}
	s.quantNew, s.ladderCfg = true, cfg
	return nil
}

// QuantizeNewSlots reports whether ladder rung 1 is engaged.
func (s *Session) QuantizeNewSlots() bool { return s.quantNew }

// UsePrefixStore attaches a shared-prefix KV cache: subsequent admissions
// seed their slot from the longest cached prefix (prefilling only the
// suffix) and insert their own full blocks on success. Seeding is exact in
// every storage mode — the store holds the raw float32 prefill values, which
// is what live prefill attention reads before any per-slot quantization —
// so the slot's token stream stays bit-identical to a cold prefill. Call
// before the first Admit; passing nil disables reuse.
func (s *Session) UsePrefixStore(ps *PrefixStore) { s.prefix = ps }

// PrefixStore returns the attached shared-prefix cache (nil when disabled).
func (s *Session) PrefixStore() *PrefixStore { return s.prefix }

// SlotReusedTokens reports how many prompt tokens the slot seeded from the
// prefix cache at admission (0 for cold prefills and inactive slots).
func (s *Session) SlotReusedTokens(slot int) int {
	if slot < 0 || slot >= s.slots || !s.active[slot] {
		return 0
	}
	return s.reused[slot]
}

// prefixEvent records an instantaneous prefix-cache marker on the serve lane.
func (s *Session) prefixEvent(name string, slot int) {
	if rec := s.e.Tracer(); rec != nil {
		rec.Event(name, xtrace.LaneServe, time.Now(), xtrace.At(-1, -1, slot))
	}
}

// ensureHost lazily creates the host-side cache used by spilled slots.
func (s *Session) ensureHost() {
	if s.host == nil {
		cfg := s.e.mod.Cfg
		s.host = model.NewKVCache(cfg.Layers, s.slots, cfg.Hidden)
	}
}

// SpillSlot migrates one active slot's KV from the staged store to the host
// cache (ladder rung 2). The slot's attention runs on the CPU afterwards and
// it stops consuming GPU-arena staging space. The migration is exact: Fetch
// reconstructs precisely the float32 values the staged path would have seen
// (dequantized for quantized slots), and quantized slots keep sealing their
// new rows through the same quantization round-trip. On failure the staged
// copy is intact and the slot keeps running unspilled.
func (s *Session) SpillSlot(ctx context.Context, slot int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if slot < 0 || slot >= s.slots || !s.active[slot] {
		return fmt.Errorf("runtime: spill of inactive slot %d", slot)
	}
	if s.slotOnHost(slot) {
		return nil
	}
	s.ensureHost()
	t0 := time.Now()
	cfg := s.e.mod.Cfg
	for l := 0; l < cfg.Layers; l++ {
		var k, v *tensor.Tensor
		err := s.e.withRetry(ctx, "kv_spill", func() error {
			var ferr error
			k, v, _, ferr = s.kv.Fetch(l, slot)
			return ferr
		})
		if err != nil {
			for j := 0; j < l; j++ {
				s.host.SetKV(j, slot, nil, nil)
			}
			return fmt.Errorf("runtime: spilling slot %d layer %d: %w", slot, l, err)
		}
		s.host.SetKV(l, slot, k, v)
	}
	s.kv.ResetSlot(slot)
	s.spilled[slot] = true
	s.e.stats.RecordSpill()
	s.e.task(xtrace.TaskKVSpill, xtrace.LaneKVDown, t0, xtrace.At(-1, -1, slot))
	return nil
}

// sealHostRows round-trips the last rows of a host-resident quantized slot
// through its quantization config, so the values later attention reads match
// what a staged fetch would have dequantized. The current step's attention
// has already consumed the raw rows — the same order of operations as the
// staged path, where store_cache quantizes after compute.
func (s *Session) sealHostRows(layer, slot, rows int) error {
	cfg := s.e.mod.Cfg
	qc := s.slotCfgs[slot]
	for _, t := range []*tensor.Tensor{s.host.Keys(layer, slot), s.host.Values(layer, slot)} {
		n := t.Dim(0)
		if rows > n {
			return fmt.Errorf("runtime: sealing %d rows of %d (layer %d, slot %d)", rows, n, layer, slot)
		}
		sub := tensor.New(rows, cfg.Hidden)
		for r := 0; r < rows; r++ {
			copy(sub.Row(r), t.Row(n-rows+r))
		}
		q, err := quant.QuantizeParallel(s.e.pool, s.e.policy.IntraOp, sub, qc)
		if err != nil {
			return err
		}
		dq := quant.DequantizeParallel(s.e.pool, s.e.policy.IntraOp, q)
		for r := 0; r < rows; r++ {
			copy(t.Row(n-rows+r), dq.Row(r))
		}
	}
	return nil
}

// sessionMark is a rollback point over the session's KV storage, taken
// before a mutating operation so a failed attempt can be undone without
// touching the slots the operation never reached.
type sessionMark struct {
	kv   [][]int
	host [][]int
}

func (s *Session) mark() sessionMark {
	var m sessionMark
	if s.kv != nil {
		m.kv = s.kv.Mark()
	}
	if s.host != nil {
		m.host = s.host.SeqLens()
	}
	return m
}

// rollback undoes appends since the mark on both stores. When the store
// migrated to host between mark and rollback (a degradation rung), per-slot
// lengths carry over 1:1, so the host truncation covers the kv mark too.
func (s *Session) rollback(m sessionMark) {
	if s.kv != nil && m.kv != nil {
		s.kv.Rollback(m.kv)
	}
	if s.host != nil && m.host != nil {
		s.host.TruncateTo(m.host)
	}
}

// Admit prefills prompt into a free slot and returns the first generated
// token, quantizing the slot's KV when the pressure ladder says so. The slot
// becomes active; subsequent Step calls extend it. Transient failures retry
// with full rollback of the partial prefill, taking the degradation ladder
// past the second attempt, exactly like offline prefill.
func (s *Session) Admit(ctx context.Context, slot int, prompt []int) (int, error) {
	return s.AdmitKV(ctx, slot, prompt, s.quantNew)
}

// AdmitKV is Admit with the slot's KV storage mode pinned by the caller:
// quantKV stores the slot's KV quantized with the ladder config regardless
// of the ladder's current rung. The scheduler uses this to keep a request's
// storage mode sticky across evict/resume, so its token stream stays exact
// against one solo reference.
func (s *Session) AdmitKV(ctx context.Context, slot int, prompt []int, quantKV bool) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if slot < 0 || slot >= s.slots {
		return 0, fmt.Errorf("runtime: admit slot %d outside [0, %d)", slot, s.slots)
	}
	if s.active[slot] {
		return 0, fmt.Errorf("runtime: admit into occupied slot %d", slot)
	}
	if s.chunk[slot] != nil {
		return 0, fmt.Errorf("runtime: admit into slot %d with a chunked prefill in flight", slot)
	}
	if len(prompt) == 0 {
		return 0, fmt.Errorf("runtime: admit with empty prompt")
	}
	s.spilled[slot] = false
	switch {
	case s.kv != nil && s.kv.Quantized():
		s.quantKV[slot] = true
		s.slotCfgs[slot] = s.e.policy.KVCfg
	case quantKV && s.kv != nil:
		if s.ladderCfg.Bits == 0 {
			return 0, fmt.Errorf("runtime: quantized admit without a ladder config (call SetQuantizeNewSlots first)")
		}
		if err := s.kv.SetSlotQuant(slot, &s.ladderCfg); err != nil {
			return 0, err
		}
		s.quantKV[slot] = true
		s.slotCfgs[slot] = s.ladderCfg
	default:
		s.quantKV[slot] = false
	}
	// Seed from the longest cached prefix, leaving at least one prompt token
	// to prefill (the last token's forward pass produces the first generated
	// token). The match stays pinned until Retire; a failed admit releases it.
	var match *PrefixMatch
	if s.prefix != nil {
		t0 := time.Now()
		match = s.prefix.Acquire(prompt, len(prompt)-1)
		if match != nil {
			s.e.stats.RecordPrefixHit(match.Tokens())
			s.e.task(xtrace.TaskPrefixHit, xtrace.LaneServe, t0, xtrace.At(-1, -1, slot))
		} else {
			s.e.stats.RecordPrefixMiss()
		}
	}
	clearSlot := func() {
		if s.kv != nil {
			s.kv.SetSlotQuant(slot, nil)
		}
		s.quantKV[slot] = false
		match.Release()
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			clearSlot()
			return 0, err
		}
		m := s.mark()
		stepCtx, cancel := s.e.stepContext(ctx)
		t0 := time.Now()
		tok, cand, err := s.admitOnce(stepCtx, slot, prompt, match)
		cancel()
		s.e.task(xtrace.TaskPrefill, xtrace.LaneEngine, t0, xtrace.At(-1, -1, slot))
		if err == nil {
			s.active[slot] = true
			s.pos[slot] = len(prompt)
			s.last[slot] = tok
			s.prefixRefs[slot] = match
			if match != nil {
				s.reused[slot] = match.Tokens()
			}
			if cand != nil {
				// Insert only after the whole prefill succeeded: a rolled-back
				// attempt must never seed the shared cache.
				inserted, evicted := s.prefix.Commit(cand)
				if inserted > 0 {
					s.e.stats.RecordPrefixInserts(int64(inserted))
					s.prefixEvent(xtrace.TaskPrefixInsert, slot)
				}
				if evicted > 0 {
					s.e.stats.RecordPrefixEvictions(int64(evicted))
					s.prefixEvent(xtrace.TaskPrefixEvict, slot)
				}
			}
			s.e.stats.mu.Lock()
			s.e.stats.TokensGenerated++
			s.e.stats.mu.Unlock()
			// Prefill is compute too: a drifted machine stretches it the
			// same way Step is stretched.
			s.e.driftStall(ctx, time.Since(t0))
			return tok, nil
		}
		s.rollback(m)
		if cerr := ctx.Err(); cerr != nil {
			clearSlot()
			return 0, cerr
		}
		if attempt >= maxStepAttempts {
			clearSlot()
			return 0, fmt.Errorf("runtime: admit to slot %d failed after %d attempts: %w", slot, attempt, err)
		}
		s.e.stats.addRetry("admit")
		if attempt >= 2 {
			s.degradeOnce(ctx)
			if s.kv == nil {
				// The store migrated to host mid-admit: per-slot quantization
				// no longer applies.
				s.quantKV[slot] = false
			}
		}
	}
}

// admitOnce is one prefill attempt for a single sequence: stream every
// layer's weights (with prefetch overlap when enabled), compute attention
// and MLP over the prompt, and offload the slot's KV per layer.
//
// With a prefix match, only the suffix is embedded and computed: each
// layer's cache is seeded with the stored prefix K/V rows before the
// suffix's attention runs. Causal attention makes this bit-identical to a
// cold full prefill — a prefix token's K/V depends only on prefix tokens,
// every per-row operation (projections, softmax, norms) is independent of
// the other rows, and the slot's store still receives the full prompt's rows
// as one chunk, so downstream chunking and quantization are unchanged.
//
// On success it also returns the insert candidate: the prompt's full blocks
// the prefix store does not hold yet, captured before each layer's live rows
// are dropped. The caller commits it only after the attempt succeeds.
func (s *Session) admitOnce(ctx context.Context, slot int, prompt []int, match *PrefixMatch) (tok int, cand *PrefixCandidate, err error) {
	defer recoverAsError(&err)
	e := s.e
	cfg := e.mod.Cfg
	reused := 0
	if match != nil {
		reused = match.Tokens()
	}
	suffix := prompt[reused:]
	x := e.mod.Embed(suffix, reused)
	xs := []*tensor.Tensor{x}
	e.stats.addBytes(&e.stats.ActUpBytes, int64(len(suffix)*cfg.Hidden)*4)
	if s.prefix != nil {
		cand = s.prefix.NewCandidate(prompt, reused)
	}

	// With GPU attention, prefill computes into a one-sequence live cache
	// whose layer slices are offloaded (and dropped) as each layer finishes;
	// with CPU attention it writes straight into the slot's host cache.
	var live *model.KVCache
	if s.kv != nil {
		live = model.NewKVCache(cfg.Layers, 1, cfg.Hidden)
	}

	pipe := e.newLoadPipeline(ctx)
	defer pipe.drain()
	if e.policy.Prefetch {
		pipe.start(0)
	}
	for j := 0; j < cfg.Layers; j++ {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		var ll loadedLayer
		if e.policy.Prefetch {
			ll = pipe.take()
			if j+1 < cfg.Layers {
				pipe.start(j + 1)
			}
		} else {
			ll = e.loadLayer(ctx, j)
		}
		if ll.err != nil {
			return 0, nil, fmt.Errorf("runtime: admit layer %d: %w", j, ll.err)
		}

		t0 := time.Now()
		if s.kv != nil {
			if match != nil {
				pk, pv := match.SeedLayer(j)
				live.SetKV(j, 0, pk, pv)
			}
			model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, live, j, 0, xs)
		} else {
			if match != nil {
				pk, pv := match.SeedLayer(j)
				s.host.SetKV(j, slot, pk, pv)
			}
			model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, s.host, j, slot, xs)
		}
		model.MLP(e.pool, e.policy.IntraOp, cfg, ll.weights, x)
		e.task(xtrace.TaskCompute, xtrace.LaneGPU, t0, xtrace.At(-1, j, slot))
		e.freeGPU(ll.resident)

		if s.kv != nil {
			if cand != nil {
				cand.CaptureLayer(j, live.Keys(j, 0), live.Values(j, 0))
			}
			if err := e.storeChunk(ctx, s.kv, j, slot, live.Keys(j, 0), live.Values(j, 0)); err != nil {
				return 0, nil, err
			}
			live.SetKV(j, 0, nil, nil)
		} else if cand != nil {
			cand.CaptureLayer(j, s.host.Keys(j, slot), s.host.Values(j, slot))
		}
	}

	hidden := tensor.New(1, cfg.Hidden)
	copy(hidden.Row(0), x.Row(len(suffix)-1))
	return tensor.ArgmaxRows(e.mod.Logits(e.pool, e.policy.IntraOp, hidden))[0], cand, nil
}

// Step advances every active slot by one token and returns the new token per
// slot (in slot order). It returns (nil, nil) when no slot is active. A
// failed step rolls every slot back to the pre-step mark before retrying —
// the same atomicity the offline decode loop guarantees — so a fault in one
// sequence never corrupts its neighbours.
func (s *Session) Step(ctx context.Context) ([]SlotToken, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	act := s.ActiveSlots()
	if len(act) == 0 {
		return nil, nil
	}
	stepAttempts := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m := s.mark()
		stepCtx, cancel := s.e.stepContext(ctx)
		tStep := time.Now()
		next, err := s.stepOnce(stepCtx, act)
		cancel()
		if err == nil {
			out := make([]SlotToken, len(act))
			for i, slot := range act {
				s.pos[slot]++
				s.last[slot] = next[i]
				out[i] = SlotToken{Slot: slot, Token: next[i]}
			}
			s.e.stats.mu.Lock()
			s.e.stats.TokensGenerated += int64(len(act))
			s.e.stats.mu.Unlock()
			// Under an installed drift schedule the machine is `factor`
			// slower: stretch the completed step accordingly so serving
			// latency, the step-cost fit, and the adapt loop all observe the
			// drifted regime.
			s.e.driftStall(ctx, time.Since(tStep))
			return out, nil
		}
		s.rollback(m)
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		stepAttempts++
		if stepAttempts >= maxStepAttempts {
			return nil, fmt.Errorf("runtime: session step failed after %d attempts: %w", stepAttempts, err)
		}
		s.e.stats.addRetry("decode_step")
		if stepAttempts >= 2 {
			s.degradeOnce(ctx)
		}
	}
}

// stepOnce is one decode-step attempt over the active slots. Each sequence
// embeds its token at its own absolute position — the per-slot generalization
// of the offline loop's single shared position — then every layer streams its
// weights once and the slots compute one at a time against their own KV.
func (s *Session) stepOnce(ctx context.Context, act []int) (next []int, err error) {
	defer recoverAsError(&err)
	e := s.e
	cfg := e.mod.Cfg

	x := make([]*tensor.Tensor, len(act))
	for i, slot := range act {
		x[i] = e.mod.Embed([]int{s.last[slot]}, s.pos[slot])
	}
	actBytes := int64(len(act)) * int64(cfg.Hidden) * 4
	e.stats.addBytes(&e.stats.ActUpBytes, actBytes)

	pipe := e.newLoadPipeline(ctx)
	defer pipe.drain()
	if e.policy.Prefetch {
		pipe.start(0)
	}
	for j := 0; j < cfg.Layers; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var ll loadedLayer
		if e.policy.Prefetch {
			ll = pipe.take()
			if j+1 < cfg.Layers {
				pipe.start(j + 1)
			}
		} else {
			ll = e.loadLayer(ctx, j)
		}
		if ll.err != nil {
			return nil, fmt.Errorf("runtime: session layer %d: %w", j, ll.err)
		}
		if err := s.stepLayer(ctx, j, ll, act, x); err != nil {
			return nil, err
		}
	}

	t0 := time.Now()
	logits := e.mod.Logits(e.pool, e.policy.IntraOp, rowsOf(x, cfg.Hidden))
	next = tensor.ArgmaxRows(logits)
	e.task(xtrace.TaskCompute, xtrace.LaneGPU, t0, xtrace.NoLabels)
	e.stats.addBytes(&e.stats.ActDownBytes, actBytes)
	return next, nil
}

// stepLayer runs one layer over every active slot, releasing the staged
// weights on every path.
//
// When inter-op parallelism is enabled and the batch mixes host-resident and
// GPU-path slots, the host slots' CPU attention co-runs with the GPU slots'
// stage/compute/store chain — the Eq. 2 overlap extended with the CPU as a
// concurrent compute resource (APEX/HeteGen's heterogeneous split) instead of
// a serialization point. The two partitions own disjoint slots, caches, and
// hidden tensors, so overlapped execution is bit-identical to serial
// execution regardless of scheduling order (the same argument as
// Engine.runAttention).
func (s *Session) stepLayer(ctx context.Context, j int, ll loadedLayer, act []int, x []*tensor.Tensor) error {
	e := s.e
	defer e.freeGPU(ll.resident)
	var hostIdx, gpuIdx []int // indices into act
	for i, slot := range act {
		if s.slotOnHost(slot) {
			hostIdx = append(hostIdx, i)
		} else {
			gpuIdx = append(gpuIdx, i)
		}
	}
	if e.policy.InterOp > 1 && e.pool != nil && len(hostIdx) > 0 && len(gpuIdx) > 0 {
		if sched, err := threadpool.NewInterOp(e.pool, 2); err == nil {
			var hostErr error
			sched.Submit(threadpool.Op{
				Name:  fmt.Sprintf("cpu_attn[layer %d]", j),
				Width: e.policy.IntraOp,
				Run: func(pool *threadpool.Pool, width int) {
					for _, i := range hostIdx {
						if herr := s.hostSlotStep(j, ll, act[i], x[i], pool, width); herr != nil {
							hostErr = herr
							return
						}
					}
				},
			})
			var gpuErr error
			for _, i := range gpuIdx {
				if gpuErr = s.gpuSlotStep(ctx, j, ll, act[i], x[i]); gpuErr != nil {
					break
				}
			}
			if werr := sched.Wait(); werr != nil && gpuErr == nil {
				gpuErr = werr
			}
			if gpuErr != nil {
				return gpuErr
			}
			return hostErr
		}
	}
	for i, slot := range act {
		if s.slotOnHost(slot) {
			if err := s.hostSlotStep(j, ll, slot, x[i], e.pool, e.policy.IntraOp); err != nil {
				return err
			}
			continue
		}
		if err := s.gpuSlotStep(ctx, j, ll, slot, x[i]); err != nil {
			return err
		}
	}
	return nil
}

// hostSlotStep is one (layer, slot) iteration of host-resident attention:
// compute in place against the slot's cache; the new rows are appended by
// AttentionAt itself. The current row is consumed raw — matching the staged
// path, which quantizes only at store_cache time — then sealed for the steps
// that follow.
func (s *Session) hostSlotStep(j int, ll loadedLayer, slot int, xi *tensor.Tensor, pool *threadpool.Pool, width int) error {
	e := s.e
	cfg := e.mod.Cfg
	if err := e.probeWorkerPanic(); err != nil {
		return err
	}
	t0 := time.Now()
	model.AttentionAt(pool, width, cfg, ll.weights, s.host, j, slot, []*tensor.Tensor{xi})
	model.MLP(pool, width, cfg, ll.weights, xi)
	e.task(xtrace.TaskCompute, xtrace.LaneGPU, t0, xtrace.At(-1, j, slot))
	if s.quantKV[slot] {
		if err := s.sealHostRows(j, slot, 1); err != nil {
			return err
		}
	}
	return nil
}

// gpuSlotStep is one (layer, slot) iteration of GPU-path attention: stage the
// slot's KV into the arena (load_cache), compute, persist the new rows
// (store_cache), release the staging.
func (s *Session) gpuSlotStep(ctx context.Context, j int, ll loadedLayer, slot int, xi *tensor.Tensor) error {
	e := s.e
	cfg := e.mod.Cfg
	kv := e.loadCacheBatch(ctx, s.kv, j, slot, 1)
	if kv.err != nil {
		return kv.err
	}
	defer e.freeGPU(kv.fetched)
	if err := e.probeWorkerPanic(); err != nil {
		return err
	}
	t0 := time.Now()
	out := model.AttentionAt(e.pool, e.policy.IntraOp, cfg, ll.weights, kv.cache, j, slot, []*tensor.Tensor{xi})
	model.MLP(e.pool, e.policy.IntraOp, cfg, ll.weights, xi)
	e.task(xtrace.TaskCompute, xtrace.LaneGPU, t0, xtrace.At(-1, j, slot))
	return e.storeChunk(ctx, s.kv, j, slot, out.NewK[0], out.NewV[0])
}

// Retire frees a slot: its KV storage is dropped and the slot becomes
// admissible again. Retiring an inactive slot is a no-op.
func (s *Session) Retire(slot int) {
	if slot < 0 || slot >= s.slots || !s.active[slot] {
		return
	}
	s.active[slot] = false
	s.pos[slot] = 0
	s.last[slot] = 0
	s.spilled[slot] = false
	s.quantKV[slot] = false
	s.reused[slot] = 0
	if m := s.prefixRefs[slot]; m != nil {
		m.Release()
		s.prefixRefs[slot] = nil
	}
	if s.kv != nil {
		s.kv.ResetSlot(slot)
	}
	if s.host != nil {
		for l := 0; l < s.host.Layers(); l++ {
			s.host.SetKV(l, slot, nil, nil)
		}
	}
}

// degradeOnce takes the session degradation ladder: first drop the prefetch
// overlap, then migrate the whole store to host-resident CPU attention. The
// offline ladder's GPU-batch rung does not apply — the session already
// fetches KV one slot at a time, which is the rung's end state.
func (s *Session) degradeOnce(ctx context.Context) {
	e := s.e
	switch {
	case e.policy.Prefetch:
		e.policy.Prefetch = false
		e.stats.addDegradation("prefetch-off")
	case s.kv != nil:
		s.ensureHost()
		if err := s.migrateUnspilled(ctx); err != nil {
			e.stats.addDegradation("attn-on-cpu(migration failed)")
			return
		}
		s.kv = nil
		e.policy.AttnOnCPU = true
		e.policy.QuantKV = false
		e.stats.addDegradation("attn-on-cpu")
	}
}

// migrateUnspilled moves every slot the pressure ladder has not already
// spilled from the staged store into the host cache. Spilled slots keep
// their host rows — rebuilding them from the (now empty) staged store would
// lose them. On failure the host rows written so far are cleared and the
// staged store remains authoritative.
func (s *Session) migrateUnspilled(ctx context.Context) error {
	cfg := s.e.mod.Cfg
	cleanup := func(upto int) {
		for ss := 0; ss <= upto && ss < s.slots; ss++ {
			if s.spilled[ss] {
				continue
			}
			for j := 0; j < cfg.Layers; j++ {
				s.host.SetKV(j, ss, nil, nil)
			}
		}
	}
	for slot := 0; slot < s.slots; slot++ {
		if s.spilled[slot] {
			continue
		}
		for l := 0; l < cfg.Layers; l++ {
			var k, v *tensor.Tensor
			err := s.e.withRetry(ctx, "kv_migrate", func() error {
				var ferr error
				k, v, _, ferr = s.kv.Fetch(l, slot)
				return ferr
			})
			if err != nil {
				cleanup(slot)
				return err
			}
			s.host.SetKV(l, slot, k, v)
		}
	}
	return nil
}
