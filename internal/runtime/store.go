package runtime

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// WeightStore holds every layer's weights in host memory, optionally in
// quantized form, and materializes GPU-resident copies on demand. It is the
// functional analogue of the wc/wg weight split: layers listed as resident
// stay in the GPU arena permanently; the rest stream per use.
type WeightStore struct {
	layers    []*model.LayerWeights // always kept for layer norms and fallback
	packed    [][]*quant.Tensor     // per layer, per matrix; nil when not quantized
	half      [][]*tensor.F16Slice  // per layer, per matrix; nil unless f16 storage
	cfg       quant.Config
	quantized bool
	f16       bool

	pool  *threadpool.Pool // optional: parallel (de)quantization kernels
	width int
}

// UsePool routes the store's (de)quantization through a worker pool at the
// given width.
func (ws *WeightStore) UsePool(pool *threadpool.Pool, width int) {
	ws.pool, ws.width = pool, width
}

// NewWeightStore ingests the model's layers. With quantize, the matrices are
// group-quantized with cfg (the Eq. 3 one-time cost); with hostF16 (and no
// quantization) they are stored as IEEE half-precision words, matching the
// paper's FP16 deployment precision and its 2-byte transfer accounting.
func NewWeightStore(layers []*model.LayerWeights, quantize bool, cfg quant.Config, hostF16 bool) (*WeightStore, error) {
	ws := &WeightStore{layers: layers, cfg: cfg, quantized: quantize, f16: hostF16 && !quantize}
	if ws.f16 {
		ws.half = make([][]*tensor.F16Slice, len(layers))
		for i, lw := range layers {
			for _, t := range lw.Tensors() {
				ws.half[i] = append(ws.half[i], tensor.ToF16(t))
			}
		}
		return ws, nil
	}
	if !quantize {
		return ws, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws.packed = make([][]*quant.Tensor, len(layers))
	for i, lw := range layers {
		for _, t := range lw.Tensors() {
			q, err := quant.Quantize(t, cfg)
			if err != nil {
				return nil, fmt.Errorf("runtime: quantizing layer %d: %w", i, err)
			}
			ws.packed[i] = append(ws.packed[i], q)
		}
	}
	return ws, nil
}

// Quantized reports whether the store holds packed weights.
func (ws *WeightStore) Quantized() bool { return ws.quantized }

// TransferBytes returns the bytes that cross the interconnect when layer i
// is loaded: packed size when quantized, raw float32 size otherwise.
func (ws *WeightStore) TransferBytes(i int) int64 {
	if ws.quantized {
		var n int64
		for _, q := range ws.packed[i] {
			n += q.TotalBytes()
		}
		return n
	}
	if ws.f16 {
		var n int64
		for _, h := range ws.half[i] {
			n += h.Bytes()
		}
		return n
	}
	return ws.layers[i].Bytes()
}

// ResidentBytes returns the GPU-arena footprint of a loaded layer: the
// dequantized working copy.
func (ws *WeightStore) ResidentBytes(i int) int64 { return ws.layers[i].Bytes() }

// Load materializes layer i for GPU use, performing the real dequantization
// when the store is packed. The returned LayerWeights alias the originals in
// the unquantized case and are fresh tensors otherwise.
func (ws *WeightStore) Load(i int) *model.LayerWeights {
	if !ws.quantized && !ws.f16 {
		return ws.layers[i]
	}
	src := ws.layers[i]
	out := &model.LayerWeights{
		LN1Gain: src.LN1Gain,
		LN2Gain: src.LN2Gain,
	}
	dst := []**tensor.Tensor{&out.WQ, &out.WK, &out.WV, &out.WO, &out.W1, &out.W2}
	if ws.f16 {
		for j, h := range ws.half[i] {
			*dst[j] = h.ToFloat32()
		}
		return out
	}
	for j, q := range ws.packed[i] {
		*dst[j] = quant.DequantizeParallel(ws.pool, ws.width, q)
	}
	return out
}

// LoadPacked materializes layer i for the fused quantized-domain kernels:
// instead of dequantizing, the six matrices come back as packed views that
// tensor.MatMulQ consumes tile by tile, so no float32 copy of the weights
// is ever built. Falls back to Load when the store is not quantized (raw
// and f16 stores have no packed form). The views alias the host payload,
// which is immutable once ingested.
func (ws *WeightStore) LoadPacked(i int) *model.LayerWeights {
	if !ws.quantized {
		return ws.Load(i)
	}
	src := ws.layers[i]
	out := &model.LayerWeights{
		LN1Gain: src.LN1Gain,
		LN2Gain: src.LN2Gain,
	}
	dst := []**tensor.QMat{&out.QWQ, &out.QWK, &out.QWV, &out.QWO, &out.QW1, &out.QW2}
	for j, q := range ws.packed[i] {
		qm, err := q.QMat()
		if err != nil {
			// Weights are always rank-2; a failure here is a programming
			// error and surfaces through the load path's panic recovery.
			panic(err)
		}
		view := qm
		*dst[j] = &view
	}
	return out
}

// NumLayers returns the layer count.
func (ws *WeightStore) NumLayers() int { return len(ws.layers) }

// kvChunk is one appended KV segment for a (layer, sequence) slot, stored
// quantized, half-precision, or raw float32. Every chunk carries a checksum
// sealed at append time: quantized chunks via the quant tensors' own CRCs,
// raw and half-precision chunks via crc, the CRC-32 (IEEE) of the float32
// payload the fetch path reconstructs.
type kvChunk struct {
	k, v   *tensor.Tensor
	hk, hv *tensor.F16Slice
	qk, qv *quant.Tensor
	crc    uint32
}

// floatsCRC hashes float32 payloads by their IEEE-754 bit patterns.
func floatsCRC(payloads ...[]float32) uint32 {
	h := crc32.NewIEEE()
	var buf [4]byte
	for _, xs := range payloads {
		for _, x := range xs {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
			h.Write(buf[:])
		}
	}
	return h.Sum32()
}

func (c kvChunk) transferBytes() int64 {
	switch {
	case c.qk != nil:
		return c.qk.TotalBytes() + c.qv.TotalBytes()
	case c.hk != nil:
		return c.hk.Bytes() + c.hv.Bytes()
	default:
		return c.k.Bytes() + c.v.Bytes()
	}
}

// KVStore is the host-side KV cache: per (layer, sequence) chunk lists,
// quantized when the policy says so (Eqs. 6–7's real counterpart).
//
// The chunk table is guarded by an RWMutex so concurrent observers (metrics,
// a spill in flight next to a fetch retry) are safe; the serving session
// remains the sole mutator in practice, and the race-mode tests pin the
// locking down.
type KVStore struct {
	layers, batch int
	quantized     bool
	f16           bool
	cfg           quant.Config

	mu      sync.RWMutex
	chunks  [][][]kvChunk   // [layer][seq][]chunk
	slotCfg []*quant.Config // per-seq quantization override (pressure ladder rung 1)

	pool  *threadpool.Pool
	width int
	inj   *faults.Injector // optional: in-flight corruption injection
}

// UsePool routes the store's (de)quantization through a worker pool at the
// given width.
func (st *KVStore) UsePool(pool *threadpool.Pool, width int) {
	st.pool, st.width = pool, width
}

// UseFaults wires a fault injector into the fetch path: when the
// KVCorruption site fires, the chunk's in-flight copy is corrupted before
// verification (the host copy stays intact, so a retry succeeds).
func (st *KVStore) UseFaults(inj *faults.Injector) { st.inj = inj }

// NewKVStore creates an empty store. hostF16 stores unquantized chunks as
// half-precision words.
func NewKVStore(layers, batch int, quantize bool, cfg quant.Config, hostF16 bool) (*KVStore, error) {
	if layers <= 0 || batch <= 0 {
		return nil, fmt.Errorf("runtime: KV store geometry %d/%d must be positive", layers, batch)
	}
	if quantize {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	st := &KVStore{layers: layers, batch: batch, quantized: quantize, f16: hostF16 && !quantize, cfg: cfg}
	st.chunks = make([][][]kvChunk, layers)
	for l := range st.chunks {
		st.chunks[l] = make([][]kvChunk, batch)
	}
	st.slotCfg = make([]*quant.Config, batch)
	return st, nil
}

// Quantized reports whether new chunks are compressed store-wide.
func (st *KVStore) Quantized() bool { return st.quantized }

// SetSlotQuant overrides one sequence slot's storage form: a non-nil cfg
// quantizes that slot's future appends (the KV-pressure ladder's
// quantize-new-slots rung), nil restores the store-wide default. It has no
// effect when the whole store already quantizes.
func (st *KVStore) SetSlotQuant(seq int, cfg *quant.Config) error {
	if seq < 0 || seq >= st.batch {
		return fmt.Errorf("runtime: slot %d outside [0, %d)", seq, st.batch)
	}
	if cfg != nil {
		if err := cfg.Validate(); err != nil {
			return err
		}
		cp := *cfg
		cfg = &cp
	}
	st.mu.Lock()
	st.slotCfg[seq] = cfg
	st.mu.Unlock()
	return nil
}

// SlotQuantized reports whether (store-wide or per-slot) appends to seq are
// quantized.
func (st *KVStore) SlotQuantized(seq int) bool {
	if st.quantized {
		return true
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.slotCfg[seq] != nil
}

// Append stores the new K/V rows for (layer, seq), quantizing them when
// enabled (the store_cache task). It returns the bytes that crossed the
// interconnect.
func (st *KVStore) Append(layer, seq int, k, v *tensor.Tensor) (int64, error) {
	// Resolve the slot's storage form first; the (de)quantization kernels run
	// outside the lock so a slow append cannot starve concurrent fetches.
	cfg, doQuant, doF16 := st.cfg, st.quantized, st.f16
	if !doQuant {
		st.mu.RLock()
		if sc := st.slotCfg[seq]; sc != nil {
			cfg, doQuant, doF16 = *sc, true, false
		}
		st.mu.RUnlock()
	}
	var c kvChunk
	switch {
	case doQuant:
		qk, err := quant.QuantizeParallel(st.pool, st.width, k, cfg)
		if err != nil {
			return 0, err
		}
		qv, err := quant.QuantizeParallel(st.pool, st.width, v, cfg)
		if err != nil {
			return 0, err
		}
		c = kvChunk{qk: qk, qv: qv}
	case doF16:
		hk, hv := tensor.ToF16(k), tensor.ToF16(v)
		// Seal over the reconstructed float32 payload — the form the fetch
		// path verifies — so FP16 rounding cannot trip the checksum.
		c = kvChunk{hk: hk, hv: hv, crc: floatsCRC(hk.ToFloat32().Data(), hv.ToFloat32().Data())}
	default:
		ck, cv := k.Clone(), v.Clone()
		c = kvChunk{k: ck, v: cv, crc: floatsCRC(ck.Data(), cv.Data())}
	}
	st.mu.Lock()
	st.chunks[layer][seq] = append(st.chunks[layer][seq], c)
	st.mu.Unlock()
	return c.transferBytes(), nil
}

// Fetch reconstructs the full K and V matrices for (layer, seq), performing
// the real dequantization of every chunk (the load_cache task) and verifying
// every chunk's checksum. It returns the tensors, the transfer byte count,
// and a transient error when a chunk fails verification — the host copy is
// intact, so the caller retries the fetch.
func (st *KVStore) Fetch(layer, seq int) (k, v *tensor.Tensor, bytes int64, err error) {
	k, v, bytes, _, err = st.FetchTimed(layer, seq)
	return k, v, bytes, err
}

// FetchTimed is Fetch that also reports the time spent purely inside the
// dequantization kernels, excluding checksum verification, concatenation,
// and every other staging overhead — the number the engine's dequant_kv
// span must carry so trace attribution does not over-credit dequantization.
func (st *KVStore) FetchTimed(layer, seq int) (k, v *tensor.Tensor, bytes int64, dequant time.Duration, err error) {
	// Snapshot the chunk list under the read lock; chunks themselves are
	// immutable once appended, so materialization proceeds unlocked.
	st.mu.RLock()
	chunks := st.chunks[layer][seq]
	st.mu.RUnlock()
	var ks, vs *tensor.Tensor
	for ci, c := range chunks {
		bytes += c.transferBytes()
		ck, cv, d, cerr := st.materialize(c)
		dequant += d
		if cerr != nil {
			return nil, nil, bytes, dequant, fmt.Errorf("runtime: KV chunk %d of (layer %d, seq %d): %w", ci, layer, seq, cerr)
		}
		if ks == nil {
			ks, vs = ck, cv
			continue
		}
		ks = tensor.ConcatRows(ks, ck)
		vs = tensor.ConcatRows(vs, cv)
	}
	return ks, vs, bytes, dequant, nil
}

// FetchPacked reconstructs (layer, seq)'s chunk list for the fused
// quantized-domain attention path: quantized chunks come back as verified
// packed views — checksummed exactly like Fetch, but never dequantized —
// while raw and f16 chunks are materialized to float32. rows is the total
// staged token count and bytes the same transfer charge Fetch reports. The
// packed views alias the host payload (immutable once appended); they stay
// valid for the compute batch that staged them.
func (st *KVStore) FetchPacked(layer, seq int) (chunks []model.PackedKV, rows int, bytes int64, err error) {
	st.mu.RLock()
	list := st.chunks[layer][seq]
	st.mu.RUnlock()
	for ci, c := range list {
		bytes += c.transferBytes()
		if c.qk == nil {
			ck, cv, _, cerr := st.materialize(c)
			if cerr != nil {
				return nil, 0, bytes, fmt.Errorf("runtime: KV chunk %d of (layer %d, seq %d): %w", ci, layer, seq, cerr)
			}
			chunks = append(chunks, model.PackedKV{RawK: ck, RawV: cv})
			rows += ck.Dim(0)
			continue
		}
		qk, qv := c.qk, c.qv
		if st.inj.ShouldCorrupt(faults.KVCorruption) {
			qk = qk.Clone()
			qk.Corrupt(1, 0x10)
		}
		if verr := qk.Verify(); verr != nil {
			return nil, 0, bytes, fmt.Errorf("runtime: KV chunk %d of (layer %d, seq %d): %w", ci, layer, seq, wrapCorruption(qk != c.qk, verr))
		}
		if verr := qv.Verify(); verr != nil {
			return nil, 0, bytes, fmt.Errorf("runtime: KV chunk %d of (layer %d, seq %d): %w", ci, layer, seq, wrapCorruption(false, verr))
		}
		km, kerr := c.qk.QMat()
		if kerr != nil {
			return nil, 0, bytes, kerr
		}
		vm, verr2 := c.qv.QMat()
		if verr2 != nil {
			return nil, 0, bytes, verr2
		}
		chunks = append(chunks, model.PackedKV{K: &km, V: &vm})
		rows += km.Rows
	}
	return chunks, rows, bytes, nil
}

// materialize reconstructs one chunk's float32 tensors, modeling the
// host-to-device transfer: the injector may corrupt the in-flight copy, and
// the chunk's checksum is verified on arrival. The returned tensors never
// alias the stored payload. The duration covers only the dequantization
// kernels (zero for raw and f16 chunks).
func (st *KVStore) materialize(c kvChunk) (*tensor.Tensor, *tensor.Tensor, time.Duration, error) {
	corrupt := st.inj.ShouldCorrupt(faults.KVCorruption)
	switch {
	case c.qk != nil:
		qk, qv := c.qk, c.qv
		if corrupt {
			qk = qk.Clone()
			qk.Corrupt(1, 0x10)
		}
		if err := qk.Verify(); err != nil {
			return nil, nil, 0, wrapCorruption(corrupt, err)
		}
		if err := qv.Verify(); err != nil {
			return nil, nil, 0, wrapCorruption(corrupt, err)
		}
		t0 := time.Now()
		dk := quant.DequantizeParallel(st.pool, st.width, qk)
		dv := quant.DequantizeParallel(st.pool, st.width, qv)
		return dk, dv, time.Since(t0), nil
	case c.hk != nil:
		ck, cv := c.hk.ToFloat32(), c.hv.ToFloat32()
		if corrupt && ck.Numel() > 0 {
			ck.Data()[0] += 1 // in-flight bit flip on the staged copy
		}
		if got := floatsCRC(ck.Data(), cv.Data()); got != c.crc {
			return nil, nil, 0, wrapCorruption(corrupt,
				fmt.Errorf("runtime: KV checksum mismatch (stored %08x, computed %08x)", c.crc, got))
		}
		return ck, cv, 0, nil
	default:
		ck, cv := c.k.Clone(), c.v.Clone()
		if corrupt && ck.Numel() > 0 {
			ck.Data()[0] += 1
		}
		if got := floatsCRC(ck.Data(), cv.Data()); got != c.crc {
			return nil, nil, 0, wrapCorruption(corrupt,
				fmt.Errorf("runtime: KV checksum mismatch (stored %08x, computed %08x)", c.crc, got))
		}
		return ck, cv, 0, nil
	}
}

// wrapCorruption tags a checksum failure caused by injected corruption as a
// transient faults.Error so the retry classifier treats it as retryable;
// genuine (non-injected) mismatches pass through untagged.
func wrapCorruption(injected bool, err error) error {
	return fmt.Errorf("%w: %w", corruptionCause(injected), err)
}

func corruptionCause(injected bool) error {
	if injected {
		return &faults.Error{Site: faults.KVCorruption, Msg: "in-flight corruption"}
	}
	return errPermanentCorruption
}

var errPermanentCorruption = fmt.Errorf("runtime: host KV payload corrupted")

// Mark snapshots the per-slot chunk counts — a rollback point taken before
// a decode step so a failed step's partial appends can be undone.
func (st *KVStore) Mark() [][]int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([][]int, st.layers)
	for l := range out {
		out[l] = make([]int, st.batch)
		for s := range st.chunks[l] {
			out[l][s] = len(st.chunks[l][s])
		}
	}
	return out
}

// Rollback truncates every slot to the chunk counts recorded by Mark,
// discarding chunks appended since.
func (st *KVStore) Rollback(mark [][]int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for l := range mark {
		for s, n := range mark[l] {
			if n < len(st.chunks[l][s]) {
				st.chunks[l][s] = st.chunks[l][s][:n]
			}
		}
	}
}

// ResetSlot drops every chunk of one sequence slot across all layers,
// recycling the slot for a new sequence (the serving session's retire path).
func (st *KVStore) ResetSlot(seq int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for l := range st.chunks {
		st.chunks[l][seq] = nil
	}
	st.slotCfg[seq] = nil
}

// ChunkCount returns how many chunks are stored for (layer, seq).
func (st *KVStore) ChunkCount(layer, seq int) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.chunks[layer][seq])
}

// SeqLen returns the cached token count for (layer, seq).
func (st *KVStore) SeqLen(layer, seq int) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	for _, c := range st.chunks[layer][seq] {
		switch {
		case c.qk != nil:
			n += c.qk.Shape()[0]
		case c.hk != nil:
			n += c.hk.Shape()[0]
		default:
			n += c.k.Dim(0)
		}
	}
	return n
}

// HostBytes returns the store's host-memory footprint (compressed sizes for
// quantized chunks).
func (st *KVStore) HostBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var total int64
	for l := range st.chunks {
		for s := range st.chunks[l] {
			for _, c := range st.chunks[l][s] {
				total += c.transferBytes()
			}
		}
	}
	return total
}
