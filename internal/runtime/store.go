package runtime

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// WeightStore holds every layer's weights in host memory, optionally in
// quantized form, and materializes GPU-resident copies on demand. It is the
// functional analogue of the wc/wg weight split: layers listed as resident
// stay in the GPU arena permanently; the rest stream per use.
type WeightStore struct {
	layers    []*model.LayerWeights // always kept for layer norms and fallback
	packed    [][]*quant.Tensor     // per layer, per matrix; nil when not quantized
	half      [][]*tensor.F16Slice  // per layer, per matrix; nil unless f16 storage
	cfg       quant.Config
	quantized bool
	f16       bool

	pool  *threadpool.Pool // optional: parallel (de)quantization kernels
	width int
}

// UsePool routes the store's (de)quantization through a worker pool at the
// given width.
func (ws *WeightStore) UsePool(pool *threadpool.Pool, width int) {
	ws.pool, ws.width = pool, width
}

// NewWeightStore ingests the model's layers. With quantize, the matrices are
// group-quantized with cfg (the Eq. 3 one-time cost); with hostF16 (and no
// quantization) they are stored as IEEE half-precision words, matching the
// paper's FP16 deployment precision and its 2-byte transfer accounting.
func NewWeightStore(layers []*model.LayerWeights, quantize bool, cfg quant.Config, hostF16 bool) (*WeightStore, error) {
	ws := &WeightStore{layers: layers, cfg: cfg, quantized: quantize, f16: hostF16 && !quantize}
	if ws.f16 {
		ws.half = make([][]*tensor.F16Slice, len(layers))
		for i, lw := range layers {
			for _, t := range lw.Tensors() {
				ws.half[i] = append(ws.half[i], tensor.ToF16(t))
			}
		}
		return ws, nil
	}
	if !quantize {
		return ws, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws.packed = make([][]*quant.Tensor, len(layers))
	for i, lw := range layers {
		for _, t := range lw.Tensors() {
			q, err := quant.Quantize(t, cfg)
			if err != nil {
				return nil, fmt.Errorf("runtime: quantizing layer %d: %w", i, err)
			}
			ws.packed[i] = append(ws.packed[i], q)
		}
	}
	return ws, nil
}

// Quantized reports whether the store holds packed weights.
func (ws *WeightStore) Quantized() bool { return ws.quantized }

// TransferBytes returns the bytes that cross the interconnect when layer i
// is loaded: packed size when quantized, raw float32 size otherwise.
func (ws *WeightStore) TransferBytes(i int) int64 {
	if ws.quantized {
		var n int64
		for _, q := range ws.packed[i] {
			n += q.TotalBytes()
		}
		return n
	}
	if ws.f16 {
		var n int64
		for _, h := range ws.half[i] {
			n += h.Bytes()
		}
		return n
	}
	return ws.layers[i].Bytes()
}

// ResidentBytes returns the GPU-arena footprint of a loaded layer: the
// dequantized working copy.
func (ws *WeightStore) ResidentBytes(i int) int64 { return ws.layers[i].Bytes() }

// Load materializes layer i for GPU use, performing the real dequantization
// when the store is packed. The returned LayerWeights alias the originals in
// the unquantized case and are fresh tensors otherwise.
func (ws *WeightStore) Load(i int) *model.LayerWeights {
	if !ws.quantized && !ws.f16 {
		return ws.layers[i]
	}
	src := ws.layers[i]
	out := &model.LayerWeights{
		LN1Gain: src.LN1Gain,
		LN2Gain: src.LN2Gain,
	}
	dst := []**tensor.Tensor{&out.WQ, &out.WK, &out.WV, &out.WO, &out.W1, &out.W2}
	if ws.f16 {
		for j, h := range ws.half[i] {
			*dst[j] = h.ToFloat32()
		}
		return out
	}
	for j, q := range ws.packed[i] {
		*dst[j] = quant.DequantizeParallel(ws.pool, ws.width, q)
	}
	return out
}

// NumLayers returns the layer count.
func (ws *WeightStore) NumLayers() int { return len(ws.layers) }

// kvChunk is one appended KV segment for a (layer, sequence) slot, stored
// quantized, half-precision, or raw float32.
type kvChunk struct {
	k, v   *tensor.Tensor
	hk, hv *tensor.F16Slice
	qk, qv *quant.Tensor
}

func (c kvChunk) transferBytes() int64 {
	switch {
	case c.qk != nil:
		return c.qk.TotalBytes() + c.qv.TotalBytes()
	case c.hk != nil:
		return c.hk.Bytes() + c.hv.Bytes()
	default:
		return c.k.Bytes() + c.v.Bytes()
	}
}

// KVStore is the host-side KV cache: per (layer, sequence) chunk lists,
// quantized when the policy says so (Eqs. 6–7's real counterpart).
type KVStore struct {
	layers, batch int
	quantized     bool
	f16           bool
	cfg           quant.Config
	chunks        [][][]kvChunk // [layer][seq][]chunk

	pool  *threadpool.Pool
	width int
}

// UsePool routes the store's (de)quantization through a worker pool at the
// given width.
func (st *KVStore) UsePool(pool *threadpool.Pool, width int) {
	st.pool, st.width = pool, width
}

// NewKVStore creates an empty store. hostF16 stores unquantized chunks as
// half-precision words.
func NewKVStore(layers, batch int, quantize bool, cfg quant.Config, hostF16 bool) (*KVStore, error) {
	if layers <= 0 || batch <= 0 {
		return nil, fmt.Errorf("runtime: KV store geometry %d/%d must be positive", layers, batch)
	}
	if quantize {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	st := &KVStore{layers: layers, batch: batch, quantized: quantize, f16: hostF16 && !quantize, cfg: cfg}
	st.chunks = make([][][]kvChunk, layers)
	for l := range st.chunks {
		st.chunks[l] = make([][]kvChunk, batch)
	}
	return st, nil
}

// Quantized reports whether new chunks are compressed.
func (st *KVStore) Quantized() bool { return st.quantized }

// Append stores the new K/V rows for (layer, seq), quantizing them when
// enabled (the store_cache task). It returns the bytes that crossed the
// interconnect.
func (st *KVStore) Append(layer, seq int, k, v *tensor.Tensor) (int64, error) {
	var c kvChunk
	switch {
	case st.quantized:
		qk, err := quant.QuantizeParallel(st.pool, st.width, k, st.cfg)
		if err != nil {
			return 0, err
		}
		qv, err := quant.QuantizeParallel(st.pool, st.width, v, st.cfg)
		if err != nil {
			return 0, err
		}
		c = kvChunk{qk: qk, qv: qv}
	case st.f16:
		c = kvChunk{hk: tensor.ToF16(k), hv: tensor.ToF16(v)}
	default:
		c = kvChunk{k: k.Clone(), v: v.Clone()}
	}
	st.chunks[layer][seq] = append(st.chunks[layer][seq], c)
	return c.transferBytes(), nil
}

// Fetch reconstructs the full K and V matrices for (layer, seq), performing
// the real dequantization of every chunk (the load_cache task). It returns
// the tensors and the transfer byte count.
func (st *KVStore) Fetch(layer, seq int) (k, v *tensor.Tensor, bytes int64) {
	var ks, vs *tensor.Tensor
	for _, c := range st.chunks[layer][seq] {
		bytes += c.transferBytes()
		ck, cv := c.k, c.v
		switch {
		case c.qk != nil:
			ck = quant.DequantizeParallel(st.pool, st.width, c.qk)
			cv = quant.DequantizeParallel(st.pool, st.width, c.qv)
		case c.hk != nil:
			ck = c.hk.ToFloat32()
			cv = c.hv.ToFloat32()
		}
		if ks == nil {
			ks, vs = ck.Clone(), cv.Clone()
			continue
		}
		ks = tensor.ConcatRows(ks, ck)
		vs = tensor.ConcatRows(vs, cv)
	}
	return ks, vs, bytes
}

// SeqLen returns the cached token count for (layer, seq).
func (st *KVStore) SeqLen(layer, seq int) int {
	n := 0
	for _, c := range st.chunks[layer][seq] {
		switch {
		case c.qk != nil:
			n += c.qk.Shape()[0]
		case c.hk != nil:
			n += c.hk.Shape()[0]
		default:
			n += c.k.Dim(0)
		}
	}
	return n
}

// HostBytes returns the store's host-memory footprint (compressed sizes for
// quantized chunks).
func (st *KVStore) HostBytes() int64 {
	var total int64
	for l := range st.chunks {
		for s := range st.chunks[l] {
			for _, c := range st.chunks[l][s] {
				total += c.transferBytes()
			}
		}
	}
	return total
}
