package runtime

import (
	"fmt"
	"sync"
	"time"
)

// Stats accumulates the engine's I/O and task accounting — the functional
// counterpart of the perfmodel's traffic and task-time predictions.
type Stats struct {
	mu sync.Mutex

	// Interconnect bytes by direction and tensor kind.
	WeightUpBytes int64
	KVUpBytes     int64
	KVDownBytes   int64
	ActUpBytes    int64
	ActDownBytes  int64

	// Quantization operation counts.
	QuantizeOps   int64
	DequantizeOps int64

	// Wall-clock time per task kind (summed across the run).
	TaskTime map[string]time.Duration

	// TokensGenerated counts decoded tokens across all sequences.
	TokensGenerated int64
	// WallTime is the end-to-end generation time.
	WallTime time.Duration

	// Fault-tolerance accounting.
	//
	// Retries counts retried operations by name (e.g. "load_weight",
	// "decode_step"); Degradations records each rung of the degradation
	// ladder taken, in order; Checkpoints counts snapshots captured.
	Retries       map[string]int64
	Degradations  []string
	Checkpoints   int64
	FaultsCleared int64 // transient faults absorbed by a successful retry
}

func newStats() *Stats {
	return &Stats{TaskTime: map[string]time.Duration{}, Retries: map[string]int64{}}
}

func (s *Stats) addBytes(field *int64, n int64) {
	s.mu.Lock()
	*field += n
	s.mu.Unlock()
}

func (s *Stats) addTask(name string, d time.Duration) {
	s.mu.Lock()
	s.TaskTime[name] += d
	s.mu.Unlock()
}

func (s *Stats) addOps(quant, dequant int64) {
	s.mu.Lock()
	s.QuantizeOps += quant
	s.DequantizeOps += dequant
	s.mu.Unlock()
}

func (s *Stats) addRetry(op string) {
	s.mu.Lock()
	s.Retries[op]++
	s.mu.Unlock()
}

func (s *Stats) addDegradation(desc string) {
	s.mu.Lock()
	s.Degradations = append(s.Degradations, desc)
	s.mu.Unlock()
}

func (s *Stats) addCheckpoint() {
	s.mu.Lock()
	s.Checkpoints++
	s.mu.Unlock()
}

func (s *Stats) addCleared(n int64) {
	s.mu.Lock()
	s.FaultsCleared += n
	s.mu.Unlock()
}

// TotalRetries sums the per-operation retry counts.
func (s *Stats) TotalRetries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, c := range s.Retries {
		n += c
	}
	return n
}

// TotalUpBytes returns all CPU->GPU traffic.
func (s *Stats) TotalUpBytes() int64 { return s.WeightUpBytes + s.KVUpBytes + s.ActUpBytes }

// TotalDownBytes returns all GPU->CPU traffic.
func (s *Stats) TotalDownBytes() int64 { return s.KVDownBytes + s.ActDownBytes }

// Throughput returns generated tokens per wall-clock second.
func (s *Stats) Throughput() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.TokensGenerated) / s.WallTime.Seconds()
}

// String summarizes the run.
func (s *Stats) String() string {
	return fmt.Sprintf("tokens=%d wall=%v up=%.1fMB (w %.1f, kv %.1f) down=%.1fMB quant=%d dequant=%d",
		s.TokensGenerated, s.WallTime.Round(time.Millisecond),
		float64(s.TotalUpBytes())/1e6, float64(s.WeightUpBytes)/1e6, float64(s.KVUpBytes)/1e6,
		float64(s.TotalDownBytes())/1e6, s.QuantizeOps, s.DequantizeOps)
}
