package runtime

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Stats accumulates the engine's I/O and task accounting — the functional
// counterpart of the perfmodel's traffic and task-time predictions.
type Stats struct {
	mu sync.Mutex

	// Interconnect bytes by direction and tensor kind.
	WeightUpBytes int64
	KVUpBytes     int64
	KVDownBytes   int64
	ActUpBytes    int64
	ActDownBytes  int64

	// Quantization operation counts.
	QuantizeOps   int64
	DequantizeOps int64

	// Wall-clock time per task kind (summed across the run).
	TaskTime map[string]time.Duration

	// TokensGenerated counts decoded tokens across all sequences.
	TokensGenerated int64
	// WallTime is the end-to-end generation time.
	WallTime time.Duration

	// Fault-tolerance accounting.
	//
	// Retries counts retried operations by name (e.g. "load_weight",
	// "decode_step"); Degradations records each rung of the degradation
	// ladder taken, in order; Checkpoints counts snapshots captured.
	Retries       map[string]int64
	Degradations  []string
	Checkpoints   int64
	FaultsCleared int64 // transient faults absorbed by a successful retry

	// arenaFreeErrors counts Arena.Free underflows absorbed by the engine's
	// non-strict free path (rollback races that double-freed a staged buffer).
	arenaFreeErrors int64

	// Serving-layer accounting, recorded by internal/serve's scheduler.
	serve serveAccum
}

// defaultServeSampleCap bounds the latency sample rings when the serving
// layer does not configure a capacity; past it the oldest samples are
// overwritten, so quantiles describe the recent window.
const defaultServeSampleCap = 4096

// serveAccum is the scheduler-side counters behind ServeSummary, guarded by
// the owning Stats' mutex.
type serveAccum struct {
	admitted, completed, canceled, rejected int64
	batchSteps, occupancySum                int64
	queuePeak                               int
	ttft, tpot                              ring
	sampleCap                               int // 0 = defaultServeSampleCap

	// Overload-protection counters (admission controller + pressure ladder).
	rejected429  int64
	spilled      int64
	evicted      int64
	breakerFlips int64

	// Shared-prefix KV cache counters (admissions seeded from the store,
	// cold admissions while the store was attached, tokens skipped by
	// seeding, and block inserts/evictions).
	prefixHits      int64
	prefixMisses    int64
	prefixReused    int64
	prefixInserts   int64
	prefixEvictions int64
}

// ring is a fixed-capacity overwrite buffer of duration samples. Its
// capacity is latched from the owning serveAccum's configured cap (or the
// default) at the first sample.
type ring struct {
	cap   int
	buf   []time.Duration
	count int64
}

func (r *ring) add(d time.Duration, cap int) {
	if r.buf == nil {
		if cap <= 0 {
			cap = defaultServeSampleCap
		}
		r.cap = cap
		r.buf = make([]time.Duration, 0, r.cap)
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, d)
	} else {
		r.buf[r.count%int64(r.cap)] = d
	}
	r.count++
}

// ServeSummary is a point-in-time snapshot of the serving-layer metrics:
// admission outcomes, batch occupancy, and TTFT/TPOT latency quantiles over
// the recent sample window.
type ServeSummary struct {
	Admitted  int64
	Completed int64
	Canceled  int64
	Rejected  int64

	BatchSteps   int64
	AvgOccupancy float64 // mean active slots per decode step
	QueuePeak    int

	TTFTMean, TTFTP50, TTFTP99 time.Duration // submit -> first token
	TPOTMean                   time.Duration // mean inter-token gap

	// Overload protection: admission rejections (HTTP 429), KV slots spilled
	// to host, slots evicted for recompute-on-resume, and circuit-breaker
	// state transitions.
	Rejected429        int64
	Spilled            int64
	Evicted            int64
	BreakerTransitions int64

	// Shared-prefix KV cache: admissions seeded from the store vs. cold
	// admissions with the store attached, prompt tokens whose prefill was
	// skipped by seeding, and prefix blocks inserted/evicted.
	PrefixHits         int64
	PrefixMisses       int64
	PrefixReusedTokens int64
	PrefixInserts      int64
	PrefixEvictions    int64
}

// RecordPrefixHit counts one admission seeded from the prefix cache and the
// prompt tokens the seeding skipped.
func (s *Stats) RecordPrefixHit(reusedTokens int) {
	s.mu.Lock()
	s.serve.prefixHits++
	s.serve.prefixReused += int64(reusedTokens)
	s.mu.Unlock()
}

// RecordPrefixMiss counts one cold admission while the prefix cache was
// attached.
func (s *Stats) RecordPrefixMiss() {
	s.mu.Lock()
	s.serve.prefixMisses++
	s.mu.Unlock()
}

// RecordPrefixInserts counts blocks inserted into the prefix cache.
func (s *Stats) RecordPrefixInserts(n int64) {
	s.mu.Lock()
	s.serve.prefixInserts += n
	s.mu.Unlock()
}

// RecordPrefixEvictions counts blocks evicted from the prefix cache (LRU
// reclaim on insert or the pressure ladder's drop-unreferenced rung).
func (s *Stats) RecordPrefixEvictions(n int64) {
	s.mu.Lock()
	s.serve.prefixEvictions += n
	s.mu.Unlock()
}

// SetServeSampleCap sizes the TTFT/TPOT latency sample rings (before their
// first sample; rings that already latched a capacity keep it so samples are
// never dropped mid-run). Zero or negative restores the default.
func (s *Stats) SetServeSampleCap(n int) {
	s.mu.Lock()
	if n < 0 {
		n = 0
	}
	s.serve.sampleCap = n
	s.mu.Unlock()
}

// RecordAdmission counts one admitted request and its time-to-first-token.
func (s *Stats) RecordAdmission(ttft time.Duration) {
	s.mu.Lock()
	s.serve.admitted++
	s.serve.ttft.add(ttft, s.serve.sampleCap)
	s.mu.Unlock()
}

// RecordCompletion counts one finished request; tpot is its mean inter-token
// gap (zero when the request produced a single token).
func (s *Stats) RecordCompletion(tpot time.Duration) {
	s.mu.Lock()
	s.serve.completed++
	if tpot > 0 {
		s.serve.tpot.add(tpot, s.serve.sampleCap)
	}
	s.mu.Unlock()
}

// RecordCancellation counts a request that left before completing (context
// cancellation or deadline expiry).
func (s *Stats) RecordCancellation() {
	s.mu.Lock()
	s.serve.canceled++
	s.mu.Unlock()
}

// RecordRejection counts a request refused at admission (full queue or
// failed validation).
func (s *Stats) RecordRejection() {
	s.mu.Lock()
	s.serve.rejected++
	s.mu.Unlock()
}

// RecordOverloadRejection counts a request refused by the admission
// controller (HTTP 429 with Retry-After).
func (s *Stats) RecordOverloadRejection() {
	s.mu.Lock()
	s.serve.rejected429++
	s.mu.Unlock()
}

// RecordSpill counts one slot's KV cache spilled from the GPU staging path to
// host memory by the pressure ladder.
func (s *Stats) RecordSpill() {
	s.mu.Lock()
	s.serve.spilled++
	s.mu.Unlock()
}

// RecordEviction counts one slot evicted under memory pressure for
// recompute-on-resume.
func (s *Stats) RecordEviction() {
	s.mu.Lock()
	s.serve.evicted++
	s.mu.Unlock()
}

// RecordBreakerTransition counts one circuit-breaker state change.
func (s *Stats) RecordBreakerTransition() {
	s.mu.Lock()
	s.serve.breakerFlips++
	s.mu.Unlock()
}

// RecordBatchStep counts one continuous-batching decode step with the given
// slot occupancy and observed queue depth.
func (s *Stats) RecordBatchStep(occupancy, queueDepth int) {
	s.mu.Lock()
	s.serve.batchSteps++
	s.serve.occupancySum += int64(occupancy)
	if queueDepth > s.serve.queuePeak {
		s.serve.queuePeak = queueDepth
	}
	s.mu.Unlock()
}

// ServeSummary snapshots the serving metrics.
func (s *Stats) ServeSummary() ServeSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ServeSummary{
		Admitted:           s.serve.admitted,
		Completed:          s.serve.completed,
		Canceled:           s.serve.canceled,
		Rejected:           s.serve.rejected,
		BatchSteps:         s.serve.batchSteps,
		QueuePeak:          s.serve.queuePeak,
		Rejected429:        s.serve.rejected429,
		Spilled:            s.serve.spilled,
		Evicted:            s.serve.evicted,
		BreakerTransitions: s.serve.breakerFlips,
		PrefixHits:         s.serve.prefixHits,
		PrefixMisses:       s.serve.prefixMisses,
		PrefixReusedTokens: s.serve.prefixReused,
		PrefixInserts:      s.serve.prefixInserts,
		PrefixEvictions:    s.serve.prefixEvictions,
	}
	if s.serve.batchSteps > 0 {
		out.AvgOccupancy = float64(s.serve.occupancySum) / float64(s.serve.batchSteps)
	}
	out.TTFTMean, out.TTFTP50, out.TTFTP99 = quantiles(s.serve.ttft.buf)
	out.TPOTMean, _, _ = quantiles(s.serve.tpot.buf)
	return out
}

// quantiles returns the mean, p50, and p99 of a sample set (zeros when
// empty). The input is not modified.
func quantiles(samples []time.Duration) (mean, p50, p99 time.Duration) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	mean = sum / time.Duration(len(sorted))
	p50 = sorted[len(sorted)/2]
	p99 = sorted[(len(sorted)*99)/100]
	return mean, p50, p99
}

func newStats() *Stats {
	return &Stats{TaskTime: map[string]time.Duration{}, Retries: map[string]int64{}}
}

// NewStats returns an empty standalone accumulator. Engines create their own;
// harnesses and tests use this to exercise the recording paths directly.
func NewStats() *Stats { return newStats() }

func (s *Stats) addBytes(field *int64, n int64) {
	s.mu.Lock()
	*field += n
	s.mu.Unlock()
}

func (s *Stats) addTask(name string, d time.Duration) {
	s.mu.Lock()
	s.TaskTime[name] += d
	s.mu.Unlock()
}

func (s *Stats) addOps(quant, dequant int64) {
	s.mu.Lock()
	s.QuantizeOps += quant
	s.DequantizeOps += dequant
	s.mu.Unlock()
}

func (s *Stats) addRetry(op string) {
	s.mu.Lock()
	s.Retries[op]++
	s.mu.Unlock()
}

func (s *Stats) addDegradation(desc string) {
	s.mu.Lock()
	s.Degradations = append(s.Degradations, desc)
	s.mu.Unlock()
}

func (s *Stats) addCheckpoint() {
	s.mu.Lock()
	s.Checkpoints++
	s.mu.Unlock()
}

func (s *Stats) addCleared(n int64) {
	s.mu.Lock()
	s.FaultsCleared += n
	s.mu.Unlock()
}

func (s *Stats) addArenaFreeError() {
	s.mu.Lock()
	s.arenaFreeErrors++
	s.mu.Unlock()
}

// ArenaFreeErrorCount returns how many arena free underflows the engine has
// absorbed (each one is an accounting discrepancy worth alerting on).
func (s *Stats) ArenaFreeErrorCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.arenaFreeErrors
}

// TokensGeneratedCount returns the decoded-token counter under the stats
// lock — the race-safe read concurrent observers (the serving layer's
// metrics endpoint) need while generation is in flight.
func (s *Stats) TokensGeneratedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.TokensGenerated
}

// TotalRetries sums the per-operation retry counts.
func (s *Stats) TotalRetries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, c := range s.Retries {
		n += c
	}
	return n
}

// TotalUpBytes returns all CPU->GPU traffic.
func (s *Stats) TotalUpBytes() int64 { return s.WeightUpBytes + s.KVUpBytes + s.ActUpBytes }

// TotalDownBytes returns all GPU->CPU traffic.
func (s *Stats) TotalDownBytes() int64 { return s.KVDownBytes + s.ActDownBytes }

// Throughput returns generated tokens per wall-clock second.
func (s *Stats) Throughput() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.TokensGenerated) / s.WallTime.Seconds()
}

// String summarizes the run.
func (s *Stats) String() string {
	return fmt.Sprintf("tokens=%d wall=%v up=%.1fMB (w %.1f, kv %.1f) down=%.1fMB quant=%d dequant=%d",
		s.TokensGenerated, s.WallTime.Round(time.Millisecond),
		float64(s.TotalUpBytes())/1e6, float64(s.WeightUpBytes)/1e6, float64(s.KVUpBytes)/1e6,
		float64(s.TotalDownBytes())/1e6, s.QuantizeOps, s.DequantizeOps)
}
