package runtime

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

func tinyModel(t *testing.T, seed int64) *model.Model {
	t.Helper()
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), model.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testPrompts() [][]int {
	return [][]int{{1, 2, 3, 4}, {9, 8, 7, 6}, {20, 21, 22, 23}}
}

const bigArena = 1 << 30

func TestArenaAccounting(t *testing.T) {
	a, err := NewArena("gpu", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc(50); err == nil {
		t.Error("over-capacity allocation succeeded")
	}
	if err := a.Alloc(40); err != nil {
		t.Errorf("exact-fit allocation failed: %v", err)
	}
	a.Free(100)
	if a.Used() != 0 {
		t.Errorf("Used = %d after full free", a.Used())
	}
	if a.Peak() != 100 {
		t.Errorf("Peak = %d, want 100", a.Peak())
	}
	if _, err := NewArena("x", 0); err == nil {
		t.Error("zero-capacity arena accepted")
	}
}

func TestArenaFreeUnderflowError(t *testing.T) {
	a, _ := NewArena("gpu", 10)
	err := a.Free(1)
	if !errors.Is(err, ErrArenaUnderflow) {
		t.Fatalf("Free underflow error = %v, want ErrArenaUnderflow", err)
	}
	if a.Used() != 0 {
		t.Errorf("Used = %d after rejected free, want 0", a.Used())
	}
	if err := a.Alloc(4); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(4); err != nil {
		t.Errorf("balanced free failed: %v", err)
	}
}

func TestArenaFreePanicsOnUnderflowStrict(t *testing.T) {
	a, _ := NewArena("gpu", 10)
	a.SetStrict(true)
	defer func() {
		if recover() == nil {
			t.Error("strict-mode Free underflow did not panic")
		}
	}()
	a.Free(1)
}

func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{AttnOnCPU: true, QuantKV: true, KVCfg: quant.DefaultConfig(), IntraOp: 1},
		{QuantWeights: true, WeightCfg: quant.Config{Bits: 0}, IntraOp: 1},
		{QuantKV: true, KVCfg: quant.Config{Bits: 99}, IntraOp: 1},
		{IntraOp: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid policy", p)
		}
	}
}

// TestEngineMatchesReferenceNoQuant: with quantization off, the offloaded
// engine must produce bit-identical tokens to the plain model, whether
// attention is "on CPU" or "on GPU" and with or without prefetch.
func TestEngineMatchesReferenceNoQuant(t *testing.T) {
	ref, err := tinyModel(t, 42).Generate(nil, 1, testPrompts(), 6)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Policy{
		{AttnOnCPU: true, IntraOp: 1},
		{AttnOnCPU: false, IntraOp: 1},
		{AttnOnCPU: false, IntraOp: 1, Prefetch: true},
		{AttnOnCPU: true, IntraOp: 1, Prefetch: true},
		// Every lossless feature at once: batch loop, residency, host
		// activations, prefetch, inter-op attention.
		{IntraOp: 1, GPUBatch: 2, ResidentLayers: 2, ActOnCPU: true, Prefetch: true, InterOp: 2},
	}
	for _, pol := range cases {
		eng, err := NewEngine(tinyModel(t, 42), pol, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Generate(context.Background(), testPrompts(), 6)
		if err != nil {
			t.Fatalf("%+v: %v", pol, err)
		}
		for i := range ref {
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("policy %+v diverges from reference at seq %d tok %d: %v vs %v",
						pol, i, j, got[i], ref[i])
				}
			}
		}
	}
}

func TestEngineParallelMatchesSerial(t *testing.T) {
	pol := Policy{IntraOp: 4, Prefetch: true}
	pool := threadpool.MustNew(4)
	eng, err := NewEngine(tinyModel(t, 7), pol, bigArena, pool)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Generate(context.Background(), testPrompts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tinyModel(t, 7).Generate(nil, 1, testPrompts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for j := range ref[i] {
			if got[i][j] != ref[i][j] {
				t.Fatalf("parallel engine diverges: %v vs %v", got, ref)
			}
		}
	}
}

// TestKVQuantizationBoundedDrift: 8-bit KV quantization must not derail
// generation — outputs stay in vocabulary, deterministic, and mostly agree
// with the reference early in the sequence.
func TestKVQuantizationDeterministicAndInVocab(t *testing.T) {
	pol := Policy{QuantKV: true, KVCfg: quant.Config{Bits: 8, GroupSize: 32}, IntraOp: 1}
	run := func() [][]int {
		eng, err := NewEngine(tinyModel(t, 3), pol, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := eng.Generate(context.Background(), testPrompts(), 6)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	vocab := model.Tiny().Vocab
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("quantized generation not deterministic")
			}
			if a[i][j] < 0 || a[i][j] >= vocab {
				t.Fatalf("token %d outside vocab", a[i][j])
			}
		}
	}
}

func TestWeightQuantizationAccounting(t *testing.T) {
	pol := Policy{QuantWeights: true, WeightCfg: quant.DefaultConfig(), IntraOp: 1}
	eng, err := NewEngine(tinyModel(t, 5), pol, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Generate(context.Background(), testPrompts(), 3); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	// 4-bit weights: upload must be far below the raw float32 volume.
	cfg := model.Tiny()
	rawPerStep := int64(0)
	for _, lw := range tinyModel(t, 5).Layers {
		rawPerStep += lw.Bytes()
	}
	// Two decode steps stream every layer twice.
	raw := 2 * rawPerStep
	_ = cfg
	if st.WeightUpBytes >= raw/2 {
		t.Errorf("quantized weight upload %d not clearly below raw %d", st.WeightUpBytes, raw)
	}
	if st.DequantizeOps == 0 {
		t.Error("no dequantization recorded for quantized weights")
	}
	// GPU attention (the default here) must also be moving KV around.
	if st.KVUpBytes == 0 {
		t.Error("GPU attention recorded no KV uploads")
	}
}

func TestAttentionPlacementControlsKVTraffic(t *testing.T) {
	// CPU attention: zero KV traffic. GPU attention: KV crosses both ways.
	onCPU, err := NewEngine(tinyModel(t, 9), Policy{AttnOnCPU: true, IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := onCPU.Generate(context.Background(), testPrompts(), 4); err != nil {
		t.Fatal(err)
	}
	if onCPU.Stats().KVUpBytes != 0 || onCPU.Stats().KVDownBytes != 0 {
		t.Errorf("CPU attention moved KV: %s", onCPU.Stats())
	}

	onGPU, err := NewEngine(tinyModel(t, 9), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := onGPU.Generate(context.Background(), testPrompts(), 4); err != nil {
		t.Fatal(err)
	}
	if onGPU.Stats().KVUpBytes == 0 || onGPU.Stats().KVDownBytes == 0 {
		t.Errorf("GPU attention moved no KV: %s", onGPU.Stats())
	}
	// The paper's core observation, functionally: attention offloading
	// eliminates the dominant KV upload.
	if onCPU.Stats().TotalUpBytes() >= onGPU.Stats().TotalUpBytes() {
		t.Errorf("attention offload should reduce upload traffic: %d >= %d",
			onCPU.Stats().TotalUpBytes(), onGPU.Stats().TotalUpBytes())
	}
}

func TestKVQuantizationReducesKVTraffic(t *testing.T) {
	plain, _ := NewEngine(tinyModel(t, 11), Policy{IntraOp: 1}, bigArena, nil)
	if _, err := plain.Generate(context.Background(), testPrompts(), 4); err != nil {
		t.Fatal(err)
	}
	packed, _ := NewEngine(tinyModel(t, 11), Policy{QuantKV: true, KVCfg: quant.Config{Bits: 4, GroupSize: 32}, IntraOp: 1}, bigArena, nil)
	if _, err := packed.Generate(context.Background(), testPrompts(), 4); err != nil {
		t.Fatal(err)
	}
	ratio := float64(packed.Stats().KVUpBytes) / float64(plain.Stats().KVUpBytes)
	// 4-bit vs float32 is 8x ideal; group metadata costs some of it back.
	if ratio > 0.35 {
		t.Errorf("4-bit KV upload ratio = %.2f, want <= 0.35", ratio)
	}
	if packed.Stats().QuantizeOps == 0 || packed.Stats().DequantizeOps == 0 {
		t.Error("quantized KV run recorded no (de)quantization")
	}
}

func TestEngineOOMOnTinyArena(t *testing.T) {
	eng, err := NewEngine(tinyModel(t, 13), Policy{IntraOp: 1}, 1024, nil) // 1 KiB "GPU"
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Generate(context.Background(), testPrompts(), 3)
	if err == nil {
		t.Fatal("generation succeeded with a 1 KiB GPU arena")
	}
	if !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("error %v does not mention out of memory", err)
	}
}

func TestEngineInputValidation(t *testing.T) {
	eng, _ := NewEngine(tinyModel(t, 1), Policy{IntraOp: 1}, bigArena, nil)
	if _, err := eng.Generate(context.Background(), nil, 3); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := eng.Generate(context.Background(), testPrompts(), 0); err == nil {
		t.Error("zero generation length accepted")
	}
	if _, err := NewEngine(tinyModel(t, 1), Policy{IntraOp: 0}, bigArena, nil); err == nil {
		t.Error("invalid policy accepted")
	}
	if _, err := NewEngine(tinyModel(t, 1), Policy{IntraOp: 1}, 0, nil); err == nil {
		t.Error("zero arena accepted")
	}
}

func TestStatsThroughputAndString(t *testing.T) {
	eng, _ := NewEngine(tinyModel(t, 2), Policy{AttnOnCPU: true, IntraOp: 1}, bigArena, nil)
	if _, err := eng.Generate(context.Background(), testPrompts(), 4); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.TokensGenerated != int64(len(testPrompts())*4) {
		t.Errorf("TokensGenerated = %d, want %d", st.TokensGenerated, len(testPrompts())*4)
	}
	if st.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
	if st.TaskTime["compute"] <= 0 || st.TaskTime["load_weight"] <= 0 {
		t.Errorf("missing task times: %v", st.TaskTime)
	}
}

func TestWeightStoreRoundTrip(t *testing.T) {
	m := tinyModel(t, 21)
	ws, err := NewWeightStore(m.Layers, true, quant.Config{Bits: 8, GroupSize: 32}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ws.Quantized() || ws.NumLayers() != m.Cfg.Layers {
		t.Fatalf("store metadata wrong: quantized=%v layers=%d", ws.Quantized(), ws.NumLayers())
	}
	got := ws.Load(0)
	want := m.Layers[0]
	// 8-bit round trip stays close to the originals.
	if d := got.WQ.MaxAbsDiff(want.WQ); d > 0.01 {
		t.Errorf("WQ round-trip error %g too large", d)
	}
	if ws.TransferBytes(0) >= want.Bytes() {
		t.Errorf("packed transfer %d not below raw %d", ws.TransferBytes(0), want.Bytes())
	}
	if ws.ResidentBytes(0) != want.Bytes() {
		t.Errorf("resident bytes %d != raw %d", ws.ResidentBytes(0), want.Bytes())
	}
}

func TestKVStoreChunkRoundTrip(t *testing.T) {
	st, err := NewKVStore(2, 2, false, quant.Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	k1 := tensor.Full(1, 3, 4)
	v1 := tensor.Full(2, 3, 4)
	if _, err := st.Append(0, 1, k1, v1); err != nil {
		t.Fatal(err)
	}
	k2 := tensor.Full(3, 1, 4)
	v2 := tensor.Full(4, 1, 4)
	if _, err := st.Append(0, 1, k2, v2); err != nil {
		t.Fatal(err)
	}
	k, v, bytes, err := st.Fetch(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k.Dim(0) != 4 || v.Dim(0) != 4 {
		t.Fatalf("fetched %d/%d rows, want 4/4", k.Dim(0), v.Dim(0))
	}
	if k.At(3, 0) != 3 || v.At(3, 0) != 4 {
		t.Error("chunk order lost in fetch")
	}
	if bytes != k.Bytes()+v.Bytes() {
		t.Errorf("transfer bytes %d != tensor bytes %d", bytes, k.Bytes()+v.Bytes())
	}
	if st.SeqLen(0, 1) != 4 {
		t.Errorf("SeqLen = %d, want 4", st.SeqLen(0, 1))
	}
	if st.SeqLen(1, 0) != 0 {
		t.Error("empty slot reports tokens")
	}
	if st.HostBytes() != bytes {
		t.Errorf("HostBytes = %d, want %d", st.HostBytes(), bytes)
	}
	if _, err := NewKVStore(0, 1, false, quant.Config{}, false); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestGPUArenaPeakReflectsWorkingSet(t *testing.T) {
	m := tinyModel(t, 33)
	eng, err := NewEngine(m, Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Generate(context.Background(), testPrompts(), 4); err != nil {
		t.Fatal(err)
	}
	peak := eng.gpu.Peak()
	layerBytes := m.Layers[0].Bytes()
	if peak < layerBytes {
		t.Errorf("peak %d below one layer's weights %d", peak, layerBytes)
	}
	if eng.gpu.Used() != 0 {
		t.Errorf("arena leak: %d bytes still allocated", eng.gpu.Used())
	}
}
