package runtime

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/threadpool"
)

// TestGPUBatchLoopMatchesWholeBlock: Algorithm 1's k loop over GPU batches
// must produce exactly the same tokens as processing the whole block at
// once (the math is per-sequence).
func TestGPUBatchLoopMatchesWholeBlock(t *testing.T) {
	ref, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Generate(context.Background(), testPrompts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, gb := range []int{1, 2, 3, 5} {
		eng, err := NewEngine(tinyModel(t, 42), Policy{IntraOp: 1, GPUBatch: gb}, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Generate(context.Background(), testPrompts(), 5)
		if err != nil {
			t.Fatalf("GPUBatch=%d: %v", gb, err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("GPUBatch=%d diverges: %v vs %v", gb, got, want)
				}
			}
		}
	}
}

// TestGPUBatchReducesArenaPeak: smaller GPU batches hold less fetched KV at
// once, so the arena high-water mark drops — the reason zig-zag blocks can
// exceed what fits on the GPU.
func TestGPUBatchReducesArenaPeak(t *testing.T) {
	run := func(gb int) int64 {
		eng, err := NewEngine(tinyModel(t, 8), Policy{IntraOp: 1, GPUBatch: gb}, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Generate(context.Background(), testPrompts(), 6); err != nil {
			t.Fatal(err)
		}
		return eng.gpu.Peak()
	}
	whole := run(0)
	single := run(1)
	if single >= whole {
		t.Errorf("per-sequence batching should lower the peak: %d >= %d", single, whole)
	}
}

// TestResidentLayersSkipTransfers: pinning the first layers removes their
// per-step weight traffic, exactly like raising wg.
func TestResidentLayersSkipTransfers(t *testing.T) {
	layers := tinyModel(t, 5).Cfg.Layers
	run := func(resident int) (*Stats, int64) {
		m := tinyModel(t, 5)
		eng, err := NewEngine(m, Policy{IntraOp: 1, ResidentLayers: resident}, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Generate(context.Background(), testPrompts(), 4); err != nil {
			t.Fatal(err)
		}
		return eng.Stats(), eng.gpu.Used()
	}
	none, usedNone := run(0)
	half, usedHalf := run(layers / 2)
	all, usedAll := run(layers)

	if half.WeightUpBytes >= none.WeightUpBytes {
		t.Errorf("pinning half the layers did not reduce weight traffic: %d >= %d", half.WeightUpBytes, none.WeightUpBytes)
	}
	// All layers pinned: only the one-time upload remains.
	perLayer := tinyModel(t, 5).Layers[0].Bytes()
	if all.WeightUpBytes != int64(layers)*perLayer {
		t.Errorf("all-resident weight traffic = %d, want one-time %d", all.WeightUpBytes, int64(layers)*perLayer)
	}
	// Pinned layers keep arena space after the run; streamed layers do not.
	if usedNone != 0 {
		t.Errorf("no-resident run leaked %d arena bytes", usedNone)
	}
	if usedHalf != int64(layers/2)*perLayer || usedAll != int64(layers)*perLayer {
		t.Errorf("resident footprints %d/%d, want %d/%d", usedHalf, usedAll, int64(layers/2)*perLayer, int64(layers)*perLayer)
	}
}

// TestResidentLayersSameOutput: residency is a pure placement choice; the
// generated tokens must not change.
func TestResidentLayersSameOutput(t *testing.T) {
	ref, _ := NewEngine(tinyModel(t, 21), Policy{IntraOp: 1}, bigArena, nil)
	want, err := ref.Generate(context.Background(), testPrompts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tinyModel(t, 21), Policy{IntraOp: 1, ResidentLayers: 2}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Generate(context.Background(), testPrompts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("residency changed outputs: %v vs %v", got, want)
			}
		}
	}
}

func TestResidentLayersValidation(t *testing.T) {
	if _, err := NewEngine(tinyModel(t, 1), Policy{IntraOp: 1, ResidentLayers: 99}, bigArena, nil); err == nil {
		t.Error("resident layers beyond the model accepted")
	}
	if err := (Policy{IntraOp: 1, ResidentLayers: -1}).Validate(); err == nil {
		t.Error("negative resident layers accepted")
	}
	if err := (Policy{IntraOp: 1, GPUBatch: -1}).Validate(); err == nil {
		t.Error("negative GPU batch accepted")
	}
	// Pinning must fail cleanly when the arena cannot hold the layers.
	if _, err := NewEngine(tinyModel(t, 1), Policy{IntraOp: 1, ResidentLayers: 4}, 1024, nil); err == nil {
		t.Error("pinning into a 1 KiB arena succeeded")
	}
}

// TestHostF16HalvesTransfers: half-precision host storage halves the weight
// and KV transfer volumes relative to float32.
func TestHostF16HalvesTransfers(t *testing.T) {
	run := func(f16 bool) *Stats {
		eng, err := NewEngine(tinyModel(t, 31), Policy{IntraOp: 1, HostF16: f16}, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Generate(context.Background(), testPrompts(), 4); err != nil {
			t.Fatal(err)
		}
		return eng.Stats()
	}
	f32 := run(false)
	f16 := run(true)
	if 2*f16.WeightUpBytes != f32.WeightUpBytes {
		t.Errorf("FP16 weight traffic %d, want exactly half of %d", f16.WeightUpBytes, f32.WeightUpBytes)
	}
	if 2*f16.KVUpBytes != f32.KVUpBytes {
		t.Errorf("FP16 KV traffic %d, want exactly half of %d", f16.KVUpBytes, f32.KVUpBytes)
	}
}

// TestHostF16DeterministicAndClose: FP16 rounding may shift borderline
// argmax decisions but generation stays deterministic and in-vocabulary.
func TestHostF16DeterministicAndClose(t *testing.T) {
	run := func() [][]int {
		eng, err := NewEngine(tinyModel(t, 17), Policy{IntraOp: 1, HostF16: true}, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := eng.Generate(context.Background(), testPrompts(), 6)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("FP16 generation not deterministic")
			}
		}
	}
}

// TestQuantOverridesHostF16: when quantization is on, the packed format
// wins and HostF16 changes nothing.
func TestQuantOverridesHostF16(t *testing.T) {
	pol := Policy{QuantKV: true, KVCfg: quant.Config{Bits: 4, GroupSize: 32}, IntraOp: 1}
	polF16 := pol
	polF16.HostF16 = true
	run := func(p Policy) int64 {
		eng, err := NewEngine(tinyModel(t, 19), p, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Generate(context.Background(), testPrompts(), 4); err != nil {
			t.Fatal(err)
		}
		return eng.Stats().KVUpBytes
	}
	if a, b := run(pol), run(polF16); a != b {
		t.Errorf("HostF16 changed quantized KV traffic: %d vs %d", a, b)
	}
}

// TestGenerateStreamCallbacks: the callback sees every step in order and can
// stop generation early.
func TestGenerateStreamCallbacks(t *testing.T) {
	eng, err := NewEngine(tinyModel(t, 3), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	var steps []int
	out, err := eng.GenerateStream(context.Background(), testPrompts(), 6, func(step int, tokens []int) bool {
		steps = append(steps, step)
		if len(tokens) != len(testPrompts()) {
			t.Fatalf("callback got %d tokens", len(tokens))
		}
		return step < 2 // stop after the third step (0, 1, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("callback fired %d times, want 3: %v", len(steps), steps)
	}
	for i, s := range steps {
		if s != i {
			t.Fatalf("steps out of order: %v", steps)
		}
	}
	for _, seq := range out {
		if len(seq) != 3 {
			t.Fatalf("early stop produced %d tokens, want 3", len(seq))
		}
	}
}

// TestGenerateStreamMatchesGenerate: streaming with an always-true callback
// is identical to plain Generate.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	a, err := NewEngine(tinyModel(t, 4), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Generate(context.Background(), testPrompts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewEngine(tinyModel(t, 4), Policy{IntraOp: 1}, bigArena, nil)
	got, err := b.GenerateStream(context.Background(), testPrompts(), 5, func(int, []int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("stream diverges: %v vs %v", got, want)
			}
		}
	}
}

// TestPropertyEngineEquivalence: for random tiny model geometries, prompts,
// and lossless policies, the offloaded engine is token-for-token identical
// to the reference model.
func TestPropertyEngineEquivalence(t *testing.T) {
	f := func(seed int64, flags uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := model.Config{
			Name:         "prop",
			Layers:       1 + rng.Intn(4),
			Heads:        1 + rng.Intn(4),
			Vocab:        16 + rng.Intn(100),
			FFN:          8 * (1 + rng.Intn(8)),
			BytesPerElem: 2,
		}
		cfg.Hidden = cfg.Heads * (4 + rng.Intn(12)) // divisible by heads
		batch := 1 + rng.Intn(3)
		promptLen := 1 + rng.Intn(5)
		genLen := 1 + rng.Intn(5)
		prompts := make([][]int, batch)
		for i := range prompts {
			row := make([]int, promptLen)
			for j := range row {
				row[j] = rng.Intn(cfg.Vocab)
			}
			prompts[i] = row
		}
		pol := Policy{
			AttnOnCPU:      flags&1 != 0,
			Prefetch:       flags&2 != 0,
			GPUBatch:       int(flags>>2) % (batch + 1),
			ResidentLayers: int(flags>>4) % (cfg.Layers + 1),
			IntraOp:        1,
		}
		mkModel := func() *model.Model {
			m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		want, err := mkModel().Generate(nil, 1, prompts, genLen)
		if err != nil {
			return false
		}
		eng, err := NewEngine(mkModel(), pol, 1<<30, nil)
		if err != nil {
			return false
		}
		got, err := eng.Generate(context.Background(), prompts, genLen)
		if err != nil {
			return false
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPrefillStreamsWeights: with generation length 1 (no decode steps),
// all weight traffic comes from the layer-major prefill — exactly one pass
// over the model.
func TestPrefillStreamsWeights(t *testing.T) {
	m := tinyModel(t, 2)
	eng, err := NewEngine(m, Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Generate(context.Background(), testPrompts(), 1); err != nil {
		t.Fatal(err)
	}
	perLayer := m.Layers[0].Bytes()
	want := int64(m.Cfg.Layers) * perLayer
	if eng.Stats().WeightUpBytes != want {
		t.Errorf("prefill weight traffic = %d, want one pass = %d", eng.Stats().WeightUpBytes, want)
	}
	// KV was offloaded layer by layer during prefill.
	if eng.Stats().KVDownBytes == 0 {
		t.Error("prefill offloaded no KV")
	}
	if eng.gpu.Used() != 0 {
		t.Errorf("prefill leaked %d arena bytes", eng.gpu.Used())
	}
}

// TestInterOpAttentionMatchesSerial: co-running attention chunks is a pure
// scheduling choice — outputs must be bit-identical to the serial path.
func TestInterOpAttentionMatchesSerial(t *testing.T) {
	pool := threadpool.MustNew(4)
	ref, err := NewEngine(tinyModel(t, 6), Policy{IntraOp: 1}, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Generate(context.Background(), testPrompts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, inter := range []int{2, 3, 8} {
		eng, err := NewEngine(tinyModel(t, 6), Policy{IntraOp: 1, InterOp: inter, Prefetch: true}, bigArena, pool)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Generate(context.Background(), testPrompts(), 5)
		if err != nil {
			t.Fatalf("InterOp=%d: %v", inter, err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("InterOp=%d diverges: %v vs %v", inter, got, want)
				}
			}
		}
	}
	if err := (Policy{IntraOp: 1, InterOp: -1}).Validate(); err == nil {
		t.Error("negative inter-op accepted")
	}
}

// TestActOnCPUAccountsPerLayer: host-resident activations pay the
// load/store pair every layer of every decode step.
func TestActOnCPUAccountsPerLayer(t *testing.T) {
	m := tinyModel(t, 12)
	run := func(actCPU bool) *Stats {
		eng, err := NewEngine(m, Policy{IntraOp: 1, ActOnCPU: actCPU}, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Generate(context.Background(), testPrompts(), 3); err != nil {
			t.Fatal(err)
		}
		return eng.Stats()
	}
	m2 := tinyModel(t, 12)
	_ = m2
	off := run(false)
	m = tinyModel(t, 12)
	on := run(true)
	if on.ActUpBytes <= off.ActUpBytes {
		t.Errorf("ActOnCPU did not add activation traffic: %d <= %d", on.ActUpBytes, off.ActUpBytes)
	}
	if on.TaskTime["load_activation"] <= 0 || on.TaskTime["store_activation"] <= 0 {
		t.Errorf("activation tasks not timed: %v", on.TaskTime)
	}
	// Output unchanged (placement only; float32 host storage is lossless).
	engA, _ := NewEngine(tinyModel(t, 13), Policy{IntraOp: 1}, bigArena, nil)
	a, err := engA.Generate(context.Background(), testPrompts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	engB, _ := NewEngine(tinyModel(t, 13), Policy{IntraOp: 1, ActOnCPU: true}, bigArena, nil)
	b, err := engB.Generate(context.Background(), testPrompts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("activation placement changed outputs: %v vs %v", a, b)
			}
		}
	}
}

// TestBatchKVPrefetchMatchesSerial: overlapping batch k+1's load_cache with
// batch k's compute (Algorithm 1 lines 11-13) is a scheduling choice only.
func TestBatchKVPrefetchMatchesSerial(t *testing.T) {
	mk := func(prefetch bool) [][]int {
		eng, err := NewEngine(tinyModel(t, 27), Policy{IntraOp: 1, GPUBatch: 1, Prefetch: prefetch,
			QuantKV: true, KVCfg: quant.Config{Bits: 8, GroupSize: 32}}, bigArena, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := eng.Generate(context.Background(), testPrompts(), 5)
		if err != nil {
			t.Fatal(err)
		}
		if eng.gpu.Used() != 0 {
			t.Fatalf("prefetch=%v leaked %d arena bytes", prefetch, eng.gpu.Used())
		}
		return out
	}
	plain, pre := mk(false), mk(true)
	for i := range plain {
		for j := range plain[i] {
			if plain[i][j] != pre[i][j] {
				t.Fatalf("prefetch changed outputs: %v vs %v", pre, plain)
			}
		}
	}
}

// TestCompressResidentTradesCapacityForDequant: packed residency pins far
// fewer arena bytes but pays per-use dequantization; outputs are identical
// to the streamed-quantized path.
func TestCompressResidentTradesCapacityForDequant(t *testing.T) {
	cfg4 := quant.Config{Bits: 4, GroupSize: 32}
	layers := tinyModel(t, 23).Cfg.Layers
	plainPol := Policy{QuantWeights: true, WeightCfg: cfg4, IntraOp: 1, ResidentLayers: layers}
	packedPol := plainPol
	packedPol.CompressResident = true

	plain, err := NewEngine(tinyModel(t, 23), plainPol, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := NewEngine(tinyModel(t, 23), packedPol, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pinned footprint: packed residency holds roughly bits/32 of the
	// dequantized float32 copies.
	if packed.gpu.Used() >= plain.gpu.Used()/4 {
		t.Errorf("packed residency %d not clearly below float32 residency %d", packed.gpu.Used(), plain.gpu.Used())
	}
	a, err := plain.Generate(context.Background(), testPrompts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := packed.Generate(context.Background(), testPrompts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("compressed residency changed outputs: %v vs %v", b, a)
			}
		}
	}
	// The compressed path exercised the dequantizer every step.
	if packed.Stats().DequantizeOps <= plain.Stats().DequantizeOps {
		t.Errorf("packed residency dequant ops %d not above pinned-float32 %d",
			packed.Stats().DequantizeOps, plain.Stats().DequantizeOps)
	}
	if err := (Policy{IntraOp: 1, CompressResident: true}).Validate(); err == nil {
		t.Error("CompressResident without QuantWeights accepted")
	}
}
